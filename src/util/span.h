// Span / VecOrView: the zero-copy currency of the mmap-backed load path.
//
// Span<T> is a non-owning (pointer, length) view — the C++17 stand-in for
// std::span. VecOrView<T> is a sequence that either owns a std::vector (the
// build / v2-decode path) or views bytes inside a loaded container (the v3
// zero-copy path); the two modes expose one read API, so query code never
// branches on where an array lives. Views do not own their bytes: whoever
// holds a VecOrView view must also hold the backing serde::Blob.

#ifndef PTI_UTIL_SPAN_H_
#define PTI_UTIL_SPAN_H_

#include <cassert>
#include <cstddef>
#include <type_traits>
#include <vector>

namespace pti {

template <typename T>
class Span {
 public:
  using value_type = T;

  Span() = default;
  Span(T* data, size_t size) : data_(data), size_(size) {}
  /// Views a whole vector (implicit: vectors are the dominant source).
  template <typename U,
            typename = std::enable_if_t<std::is_same_v<const U, T>>>
  Span(const std::vector<U>& v) : data_(v.data()), size_(v.size()) {}

  T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }
  T* begin() const { return data_; }
  T* end() const { return data_ + size_; }
  T& front() const { return data_[0]; }
  T& back() const { return data_[size_ - 1]; }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

template <typename T, typename U>
bool operator==(Span<const T> a, const std::vector<U>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}
template <typename T, typename U>
bool operator==(const std::vector<U>& a, Span<const T> b) {
  return b == a;
}
template <typename T>
bool operator==(Span<const T> a, Span<const T> b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

/// Owned vector or borrowed view, one read interface. The owned mode derives
/// data/size from the vector on every call, so default moves can never
/// dangle; the view mode stores the raw pointer it was given. Mutators are
/// owned-mode only (they exist for the build paths, which never hold views).
template <typename T>
class VecOrView {
 public:
  VecOrView() = default;
  VecOrView(std::vector<T> v) : owned_(std::move(v)) {}

  static VecOrView View(Span<const T> s) {
    VecOrView v;
    v.is_view_ = true;
    v.view_data_ = s.data();
    v.view_size_ = s.size();
    return v;
  }

  bool is_view() const { return is_view_; }

  const T* data() const { return is_view_ ? view_data_ : owned_.data(); }
  size_t size() const { return is_view_ ? view_size_ : owned_.size(); }
  bool empty() const { return size() == 0; }
  const T& operator[](size_t i) const {
    assert(i < size());
    return data()[i];
  }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }
  const T& front() const { return data()[0]; }
  const T& back() const { return data()[size() - 1]; }
  Span<const T> span() const { return Span<const T>(data(), size()); }

  /// Bytes this container itself owns (0 for views: the backing blob is
  /// accounted where it is held).
  size_t OwnedBytes() const {
    return is_view_ ? 0 : owned_.capacity() * sizeof(T);
  }

  // ---- Owned-mode mutators (build paths only). ----
  void push_back(const T& v) {
    assert(!is_view_);
    owned_.push_back(v);
  }
  void reserve(size_t n) {
    assert(!is_view_);
    owned_.reserve(n);
  }
  void clear() {
    owned_.clear();
    is_view_ = false;
    view_data_ = nullptr;
    view_size_ = 0;
  }
  void assign(size_t n, const T& v) {
    assert(!is_view_);
    owned_.assign(n, v);
  }
  void resize(size_t n) {
    assert(!is_view_);
    owned_.resize(n);
  }
  T& mutable_at(size_t i) {
    assert(!is_view_);
    return owned_[i];
  }
  /// The owned vector itself, for in-place algorithms (sort etc.).
  std::vector<T>& mutable_vector() {
    assert(!is_view_);
    return owned_;
  }

 private:
  std::vector<T> owned_;
  const T* view_data_ = nullptr;
  size_t view_size_ = 0;
  bool is_view_ = false;
};

template <typename T, typename U>
bool operator==(const VecOrView<T>& a, const std::vector<U>& b) {
  return a.span() == b;
}
template <typename T, typename U>
bool operator==(const std::vector<U>& a, const VecOrView<T>& b) {
  return b.span() == a;
}

}  // namespace pti

#endif  // PTI_UTIL_SPAN_H_
