// Binary serialization primitives for index persistence.
//
// Little-endian fixed-width primitives plus length-prefixed containers.
// Top-level framing (magic, kind, version, sections, checksum) lives in
// core/serde.h. Readers are bounds-checked and return Status::Corruption
// instead of reading past the end, so truncated or garbage files fail
// cleanly (exercised by the failure-injection tests).

#ifndef PTI_UTIL_SERIAL_H_
#define PTI_UTIL_SERIAL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace pti {

/// Appends primitives and containers to a byte buffer.
class Writer {
 public:
  /// Serialized bytes so far.
  const std::string& data() const { return buf_; }
  std::string&& Take() { return std::move(buf_); }

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }

  /// Length-prefixed byte string.
  void PutString(const std::string& s) {
    PutU64(s.size());
    buf_.append(s);
  }

  /// Length-prefixed vector of a trivially copyable element type.
  template <typename T>
  void PutVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    PutU64(v.size());
    if (!v.empty()) PutRaw(v.data(), v.size() * sizeof(T));
  }

 private:
  void PutRaw(const void* p, size_t n) {
    buf_.append(reinterpret_cast<const char*>(p), n);
  }

  std::string buf_;
};

/// Bounds-checked reader over a byte buffer. All Get* methods return
/// Corruption on underflow and leave the output untouched. Does not own the
/// bytes; the buffer must outlive the Reader.
class Reader {
 public:
  Reader() : data_(nullptr), size_(0) {}
  explicit Reader(const std::string& data)
      : data_(data.data()), size_(data.size()) {}
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  /// Pointer to the next unread byte (for sub-range readers).
  const char* cursor() const { return data_ + pos_; }

  /// Advances past n bytes without copying them.
  Status Skip(size_t n) {
    if (n > remaining()) return Status::Corruption("skip past end of buffer");
    pos_ += n;
    return Status::OK();
  }

  Status GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetI64(int64_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetDouble(double* v) { return GetRaw(v, sizeof(*v)); }

  Status GetString(std::string* s) {
    uint64_t n = 0;
    PTI_RETURN_IF_ERROR(GetU64(&n));
    if (n > remaining()) return Status::Corruption("string length overruns buffer");
    s->assign(data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  template <typename T>
  Status GetVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    PTI_RETURN_IF_ERROR(GetU64(&n));
    if (n > remaining() / sizeof(T)) {
      return Status::Corruption("vector length overruns buffer");
    }
    v->resize(n);
    if (n > 0) return GetRaw(v->data(), n * sizeof(T));
    return Status::OK();
  }

 private:
  Status GetRaw(void* p, size_t n) {
    if (n > remaining()) return Status::Corruption("read past end of buffer");
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// FNV-1a 64-bit hash, the container checksum of core/serde.h.
inline uint64_t Fnv1a64(const char* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace pti

#endif  // PTI_UTIL_SERIAL_H_
