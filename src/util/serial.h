// Binary serialization primitives for index persistence.
//
// Little-endian fixed-width primitives plus length-prefixed containers.
// Top-level framing (magic, kind, version, sections, checksum) lives in
// core/serde.h. Readers are bounds-checked and return Status::Corruption
// instead of reading past the end, so truncated or garbage files fail
// cleanly (exercised by the failure-injection tests).
//
// Aligned mode (container v3): a Writer/Reader pair constructed with
// `aligned = true` pads to an 8-byte boundary before every length-prefixed
// container (vector, span, string), so the u64 count and the payload both
// start at offsets that are multiples of 8 *within the section*. The v3
// container framing keeps every section payload at an absolute offset that
// is a multiple of 8, so section-relative alignment is absolute alignment —
// which is what lets Reader::GetSpan hand out pointers into the buffer
// (including an mmap'd file) instead of copying. Scalar Put/Get never pad;
// padding bytes are zero and are covered by the container checksum.

#ifndef PTI_UTIL_SERIAL_H_
#define PTI_UTIL_SERIAL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/span.h"
#include "util/status.h"

namespace pti {

/// Appends primitives and containers to a byte buffer.
class Writer {
 public:
  Writer() = default;
  explicit Writer(bool aligned) : aligned_(aligned) {}

  bool aligned() const { return aligned_; }

  /// Serialized bytes so far.
  const std::string& data() const { return buf_; }
  std::string&& Take() { return std::move(buf_); }

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }

  /// Zero-pads to the next multiple of 8 bytes (no-op when already there).
  void Align8() {
    while (buf_.size() % 8 != 0) buf_.push_back('\0');
  }

  /// Length-prefixed byte string.
  void PutString(const std::string& s) {
    if (aligned_) Align8();
    PutU64(s.size());
    buf_.append(s);
  }

  /// Length-prefixed sequence of a trivially copyable element type.
  template <typename T>
  void PutSpan(Span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (aligned_) Align8();
    PutU64(v.size());
    if (!v.empty()) PutRaw(v.data(), v.size() * sizeof(T));
  }

  template <typename T>
  void PutVector(const std::vector<T>& v) {
    PutSpan(Span<const T>(v.data(), v.size()));
  }

 private:
  void PutRaw(const void* p, size_t n) {
    buf_.append(reinterpret_cast<const char*>(p), n);
  }

  std::string buf_;
  bool aligned_ = false;
};

/// Bounds-checked reader over a byte buffer. All Get* methods return
/// Corruption on underflow and leave the output untouched. Does not own the
/// bytes; the buffer must outlive the Reader (and anything a GetSpan view
/// points into).
class Reader {
 public:
  Reader() : data_(nullptr), size_(0) {}
  explicit Reader(std::string_view data)
      : data_(data.data()), size_(data.size()) {}
  Reader(const char* data, size_t size, bool aligned = false)
      : data_(data), size_(size), aligned_(aligned) {}

  bool aligned() const { return aligned_; }

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  /// Pointer to the next unread byte (for sub-range readers).
  const char* cursor() const { return data_ + pos_; }

  /// Advances past n bytes without copying them.
  Status Skip(size_t n) {
    if (n > remaining()) return Status::Corruption("skip past end of buffer");
    pos_ += n;
    return Status::OK();
  }

  Status GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetI64(int64_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetDouble(double* v) { return GetRaw(v, sizeof(*v)); }

  Status GetString(std::string* s) {
    std::string_view v;
    PTI_RETURN_IF_ERROR(GetStringView(&v));
    s->assign(v.data(), v.size());
    return Status::OK();
  }

  /// Like GetString without the copy; the view borrows the buffer.
  Status GetStringView(std::string_view* s) {
    if (aligned_) PTI_RETURN_IF_ERROR(SkipPadding());
    uint64_t n = 0;
    PTI_RETURN_IF_ERROR(GetU64(&n));
    if (n > remaining()) {
      return Status::Corruption("string length overruns buffer");
    }
    *s = std::string_view(data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  template <typename T>
  Status GetVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (aligned_) PTI_RETURN_IF_ERROR(SkipPadding());
    uint64_t n = 0;
    PTI_RETURN_IF_ERROR(GetU64(&n));
    if (n > remaining() / sizeof(T)) {
      return Status::Corruption("vector length overruns buffer");
    }
    v->resize(n);
    if (n > 0) return GetRaw(v->data(), n * sizeof(T));
    return Status::OK();
  }

  /// Zero-copy counterpart of GetVector: the returned span points into the
  /// buffer. Requires aligned mode (the writer padded so the payload is
  /// 8-byte aligned); the pointer alignment is still re-checked so a
  /// mis-framed buffer yields Corruption, not unaligned loads.
  template <typename T>
  Status GetSpan(Span<const T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(alignof(T) <= 8);
    if (!aligned_) {
      return Status::Corruption("zero-copy read from unaligned container");
    }
    PTI_RETURN_IF_ERROR(SkipPadding());
    uint64_t n = 0;
    PTI_RETURN_IF_ERROR(GetU64(&n));
    if (n > remaining() / sizeof(T)) {
      return Status::Corruption("vector length overruns buffer");
    }
    const char* p = data_ + pos_;
    if (reinterpret_cast<uintptr_t>(p) % alignof(T) != 0) {
      return Status::Corruption("section payload not aligned for zero-copy");
    }
    *out = Span<const T>(reinterpret_cast<const T*>(p), n);
    pos_ += n * sizeof(T);
    return Status::OK();
  }

 private:
  Status SkipPadding() {
    const size_t pad = (8 - pos_ % 8) % 8;
    return Skip(pad);
  }

  Status GetRaw(void* p, size_t n) {
    if (n > remaining()) return Status::Corruption("read past end of buffer");
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool aligned_ = false;
};

/// FNV-1a 64-bit hash, the container checksum of core/serde.h.
inline uint64_t Fnv1a64(const char* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace pti

#endif  // PTI_UTIL_SERIAL_H_
