// Binary serialization for index persistence.
//
// Little-endian fixed-width primitives plus length-prefixed containers,
// wrapped in a (magic, version) envelope per top-level object. Readers are
// bounds-checked and return Status::Corruption instead of reading past the
// end, so truncated or garbage files fail cleanly (exercised by the
// failure-injection tests).

#ifndef PTI_UTIL_SERIAL_H_
#define PTI_UTIL_SERIAL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace pti {

/// Appends primitives and containers to a byte buffer.
class Writer {
 public:
  /// Serialized bytes so far.
  const std::string& data() const { return buf_; }
  std::string&& Take() { return std::move(buf_); }

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }

  /// Length-prefixed byte string.
  void PutString(const std::string& s) {
    PutU64(s.size());
    buf_.append(s);
  }

  /// Length-prefixed vector of a trivially copyable element type.
  template <typename T>
  void PutVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    PutU64(v.size());
    if (!v.empty()) PutRaw(v.data(), v.size() * sizeof(T));
  }

 private:
  void PutRaw(const void* p, size_t n) {
    buf_.append(reinterpret_cast<const char*>(p), n);
  }

  std::string buf_;
};

/// Bounds-checked reader over a byte buffer. All Get* methods return
/// Corruption on underflow and leave the output untouched.
class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  Status GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetI64(int64_t* v) { return GetRaw(v, sizeof(*v)); }
  Status GetDouble(double* v) { return GetRaw(v, sizeof(*v)); }

  Status GetString(std::string* s) {
    uint64_t n = 0;
    PTI_RETURN_IF_ERROR(GetU64(&n));
    if (n > remaining()) return Status::Corruption("string length overruns buffer");
    s->assign(data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  template <typename T>
  Status GetVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    PTI_RETURN_IF_ERROR(GetU64(&n));
    if (n > remaining() / sizeof(T)) {
      return Status::Corruption("vector length overruns buffer");
    }
    v->resize(n);
    if (n > 0) return GetRaw(v->data(), n * sizeof(T));
    return Status::OK();
  }

 private:
  Status GetRaw(void* p, size_t n) {
    if (n > remaining()) return Status::Corruption("read past end of buffer");
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  const std::string& data_;
  size_t pos_ = 0;
};

/// Writes the standard (magic, version) envelope header.
inline void PutEnvelope(Writer* w, uint32_t magic, uint32_t version) {
  w->PutU32(magic);
  w->PutU32(version);
}

/// Validates the envelope header; max_version gates forward compatibility.
inline Status CheckEnvelope(Reader* r, uint32_t magic, uint32_t max_version,
                            uint32_t* version) {
  uint32_t m = 0;
  PTI_RETURN_IF_ERROR(r->GetU32(&m));
  if (m != magic) return Status::Corruption("bad magic number");
  PTI_RETURN_IF_ERROR(r->GetU32(version));
  if (*version == 0 || *version > max_version) {
    return Status::Corruption("unsupported format version");
  }
  return Status::OK();
}

}  // namespace pti

#endif  // PTI_UTIL_SERIAL_H_
