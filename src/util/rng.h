// Rng: deterministic pseudo-random numbers for dataset generation and tests.
//
// std::mt19937_64 is portable, but the standard *distributions* are
// implementation-defined, which would make datasets differ across standard
// libraries. We implement the few distributions we need (uniform ints/doubles,
// clamped normal via Box-Muller) on top of splitmix64/xoshiro256** so the same
// seed reproduces the same dataset everywhere.

#ifndef PTI_UTIL_RNG_H_
#define PTI_UTIL_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace pti {

/// xoshiro256** seeded through splitmix64. Deterministic across platforms.
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    uint64_t x = seed;
    for (auto& s : state_) s = SplitMix64(&x);
  }

  /// Next raw 64 random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. (Lemire's method with
  /// rejection for exact uniformity.)
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal via Box-Muller (one value per call; the pair's second
  /// value is cached).
  double Normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = UniformDouble();
    double u2 = UniformDouble();
    while (u1 <= 1e-300) u1 = UniformDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal(mean, stddev) clamped into [lo, hi] — the paper's "approximately
  /// normal in [20,45]" string-length distribution.
  double ClampedNormal(double mean, double stddev, double lo, double hi) {
    double v = mean + stddev * Normal();
    if (v < lo) v = lo;
    if (v > hi) v = hi;
    return v;
  }

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Weights must be non-negative with positive sum.
  size_t Discrete(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    assert(total > 0);
    double x = UniformDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0) return i;
    }
    return weights.size() - 1;
  }

 private:
  static uint64_t SplitMix64(uint64_t* x) {
    uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  double cached_ = 0;
  bool has_cached_ = false;
};

}  // namespace pti

#endif  // PTI_UTIL_RNG_H_
