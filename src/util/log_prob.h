// LogProb: probabilities kept in natural-log space.
//
// The index multiplies probabilities along substrings of texts that are
// millions of characters long; the paper's global prefix-product array C would
// underflow IEEE doubles after a few thousand characters. We therefore store
// log-probabilities and turn range products into differences of prefix sums.
// The paper's "multiply by a sufficiently large number and build the RMQ over
// integers" device is unnecessary: our RMQ engines compare doubles directly at
// construction time and then discard the array.

#ifndef PTI_UTIL_LOG_PROB_H_
#define PTI_UTIL_LOG_PROB_H_

#include <cassert>
#include <cmath>
#include <limits>

namespace pti {

/// A probability in [0,1] represented as its natural log in [-inf, 0].
/// Multiplication of probabilities is addition of LogProbs; the ordering of
/// LogProbs matches the ordering of the underlying probabilities.
class LogProb {
 public:
  /// Probability 1 (log 0).
  constexpr LogProb() : log_(0.0) {}

  /// The impossible event; also used as the "deleted entry" RMQ sentinel.
  static constexpr LogProb Zero() {
    return LogProb(-std::numeric_limits<double>::infinity());
  }
  /// The certain event.
  static constexpr LogProb One() { return LogProb(0.0); }

  /// From a linear-space probability p in [0,1]. The domain is an internal
  /// precondition: every external path (usformat parse, serde decode,
  /// UncertainString::Validate / AddCorrelation, CheckQuery's tau check)
  /// rejects out-of-range and NaN values with a Status first, so the assert
  /// guards against new unvalidated call sites, not hostile input. The
  /// tolerance matches UncertainString's kSumTolerance so a probability
  /// that passes Validate can never abort a debug build here.
  static LogProb FromLinear(double p) {
    assert(p >= 0.0 && p <= 1.0 + 1e-6);
    if (p <= 0.0) return Zero();
    if (p >= 1.0) return One();
    return LogProb(std::log(p));
  }

  /// From a raw log-space value (must be <= 0 or -inf).
  static constexpr LogProb FromLog(double log_p) { return LogProb(log_p); }

  /// Back to linear space. Exact enough for reporting; all *decisions* in the
  /// library are made in log space.
  double ToLinear() const { return std::exp(log_); }

  /// Raw log value.
  double log() const { return log_; }

  bool IsZero() const { return std::isinf(log_) && log_ < 0; }

  /// Product of the underlying probabilities.
  friend LogProb operator*(LogProb a, LogProb b) {
    if (a.IsZero() || b.IsZero()) return Zero();
    return LogProb(a.log_ + b.log_);
  }
  LogProb& operator*=(LogProb o) {
    *this = *this * o;
    return *this;
  }

  /// Quotient; caller guarantees b divides a sensibly (b != 0).
  friend LogProb operator/(LogProb a, LogProb b) {
    assert(!b.IsZero());
    if (a.IsZero()) return Zero();
    return LogProb(a.log_ - b.log_);
  }

  friend bool operator==(LogProb a, LogProb b) { return a.log_ == b.log_; }
  friend bool operator!=(LogProb a, LogProb b) { return !(a == b); }
  friend bool operator<(LogProb a, LogProb b) { return a.log_ < b.log_; }
  friend bool operator<=(LogProb a, LogProb b) { return a.log_ <= b.log_; }
  friend bool operator>(LogProb a, LogProb b) { return a.log_ > b.log_; }
  friend bool operator>=(LogProb a, LogProb b) { return a.log_ >= b.log_; }

  /// Threshold test used uniformly across indexes and oracles so that both
  /// sides of every cross-validation agree bit-for-bit. A tiny relative slack
  /// absorbs the rounding from prefix-sum differences: the chain
  /// C[b]-C[a-1] may differ from a direct summation in the last few ulps.
  bool MeetsThreshold(LogProb tau) const {
    if (IsZero()) return tau.IsZero();
    if (tau.IsZero()) return true;
    return log_ >= tau.log_ - kThresholdSlack;
  }

  /// Absolute slack, in log space, for MeetsThreshold. ~1e-9 relative.
  static constexpr double kThresholdSlack = 1e-9;

 private:
  explicit constexpr LogProb(double log_p) : log_(log_p) {}

  double log_;
};

}  // namespace pti

#endif  // PTI_UTIL_LOG_PROB_H_
