// ThreadPool: a fixed-size worker pool for the engine layer.
//
// The serving path (engine/sharded_index.h) fans one query batch out across
// index shards, and construction builds one SubstringIndex per shard
// concurrently — both need plain fork/join parallelism, nothing more. Tasks
// may not throw (the library is exception-free; fallible work communicates
// through Status captured by the task itself).
//
// ParallelFor is the main entry point: it degrades to a plain loop when the
// pool would have one thread or there is at most one task, so callers never
// special-case the serial path.

#ifndef PTI_UTIL_THREAD_POOL_H_
#define PTI_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pti {

/// Resolves a user-facing thread-count option: 0 means "one per hardware
/// thread", anything else is clamped to [1, 256].
inline int32_t ResolveThreadCount(int32_t requested) {
  if (requested <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int32_t>(hw);
  }
  return requested > 256 ? 256 : requested;
}

/// How a thread budget is divided between an outer fan-out and the nested
/// parallelism inside each fanned-out task.
struct ThreadBudget {
  int32_t outer = 1;  ///< tasks run concurrently (outer pool width)
  int32_t inner = 1;  ///< worker threads granted to each task's own pool
};

/// Splits `budget` (ResolveThreadCount semantics) across `num_tasks` tasks
/// that are themselves internally parallel, so that outer * inner never
/// exceeds the resolved budget. The outer fan-out is saturated first — with
/// at least as many tasks as threads each task runs serially (inner == 1),
/// and only leftover width is granted inward. ShardedIndex::Build/Load use
/// this so K shards times T intra-shard workers cannot oversubscribe the
/// machine.
inline ThreadBudget SplitThreadBudget(int32_t budget, size_t num_tasks) {
  const int32_t total = ResolveThreadCount(budget);
  ThreadBudget b;
  b.outer = static_cast<int32_t>(std::min<size_t>(
      std::max<size_t>(num_tasks, 1), static_cast<size_t>(total)));
  b.inner = total / b.outer;
  return b;
}

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (resolved via ResolveThreadCount).
  explicit ThreadPool(int32_t num_threads = 0) {
    const int32_t n = ResolveThreadCount(num_threads);
    workers_.reserve(static_cast<size_t>(n));
    for (int32_t t = 0; t < n; ++t) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Waits for every submitted task, then joins the workers.
  ~ThreadPool() {
    Stop();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Begins shutdown: every task already accepted still runs, but Submit
  /// rejects from this point on. Idempotent; the destructor calls it. Callers
  /// that race Submit against Stop (the serving engine's drain path) get a
  /// deterministic answer either way instead of a silently dropped task.
  void Stop() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stopping_ = true;
    }
    wake_.notify_all();
  }

  /// Enqueues a task and returns true, or returns false without enqueueing
  /// when shutdown has begun (a rejected task never runs, and never counts
  /// toward Wait). Tasks must not throw.
  bool Submit(std::function<void()> fn) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stopping_) return false;
      queue_.push_back(std::move(fn));
      ++outstanding_;
    }
    wake_.notify_one();
    return true;
  }

  /// Blocks until every task submitted so far has finished.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return outstanding_ == 0; });
  }

  /// Runs fn(i) for every i in [0, count), spread across the pool, and
  /// blocks until all complete. Runs inline when parallelism cannot help.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn) {
    if (count <= 1 || num_threads() <= 1) {
      for (size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    for (size_t i = 0; i < count; ++i) {
      if (!Submit([&fn, i] { fn(i); })) fn(i);  // pool stopped: run inline
    }
    Wait();
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (--outstanding_ == 0) idle_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  size_t outstanding_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace pti

#endif  // PTI_UTIL_THREAD_POOL_H_
