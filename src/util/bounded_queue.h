// BoundedQueue: a small lock-based MPMC queue with a hard capacity.
//
// The admission building block of the serving engine's load-shed path: a
// full queue makes TryPush fail immediately instead of growing, so the
// caller can resolve the request with Status::Unavailable rather than let
// the backlog (and every queued client's latency) grow without bound.
//
// Deliberately minimal: no blocking push, no internal condition variable.
// The owner decides what "full" means (shed, retry, spill) and owns the
// wakeup protocol for consumers — the engine multiplexes several queues
// (priority lanes) onto one worker condition variable, which a queue with
// its own cv cannot express. size() is an atomic mirror of the deque size
// so pollers (stats gauges, worker wake predicates) never touch the lock.

#ifndef PTI_UTIL_BOUNDED_QUEUE_H_
#define PTI_UTIL_BOUNDED_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace pti {

template <typename T>
class BoundedQueue {
 public:
  /// capacity == 0 means unbounded (TryPush never fails on size).
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Appends `v`; returns false (leaving `v` unmoved-from semantics aside,
  /// the queue unchanged) when the queue is at capacity.
  bool TryPush(T v) {
    std::lock_guard<std::mutex> lock(mu_);
    if (capacity_ != 0 && items_.size() >= capacity_) return false;
    items_.push_back(std::move(v));
    size_.store(items_.size(), std::memory_order_release);
    return true;
  }

  /// Pops the oldest element into *out; false when empty.
  bool TryPop(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    size_.store(items_.size(), std::memory_order_release);
    return true;
  }

  /// Appends up to `n` oldest elements to *out; returns how many were taken.
  size_t PopUpTo(size_t n, std::vector<T>* out) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t taken = 0;
    while (taken < n && !items_.empty()) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
      ++taken;
    }
    size_.store(items_.size(), std::memory_order_release);
    return taken;
  }

  /// Copies the oldest element into *out without removing it; false when
  /// empty. (T is a shared_ptr in the engine, so the copy is cheap.)
  bool PeekFront(T* out) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = items_.front();
    return true;
  }

  /// Lock-free size gauge; exact only as a point-in-time snapshot.
  size_t size() const { return size_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<T> items_;
  std::atomic<size_t> size_{0};
};

}  // namespace pti

#endif  // PTI_UTIL_BOUNDED_QUEUE_H_
