// LruCache: a sharded (striped-lock), byte-budgeted LRU map.
//
// The serving engine memoizes (pattern, tau) -> result vectors across query
// batches with one of these in front of execution; many worker and client
// threads hit it concurrently, so the key space is striped across
// independently locked shards (shard = hash(key) % num_shards) and every
// shard owns an equal slice of the byte budget. Eviction is per shard in
// strict LRU order; an entry whose charge alone exceeds the shard budget is
// not admitted (a single giant result must not wipe the whole shard).
//
// The cache stores values by copy and hands copies back, so a hit can never
// observe a concurrent eviction. Clear() empties every shard — the serving
// engine calls it when its index is replaced, which is what keeps reloads
// from serving stale results.

#ifndef PTI_UTIL_LRU_CACHE_H_
#define PTI_UTIL_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pti {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;   ///< Put calls that stored or replaced an entry
    uint64_t evictions = 0;    ///< entries pushed out by the byte budget
    size_t entries = 0;        ///< live entries across all shards
    size_t bytes = 0;          ///< summed charge of live entries
    size_t byte_budget = 0;    ///< total budget across all shards
  };

  /// A zero byte_budget disables the cache (every Get misses, Put is a
  /// no-op). num_shards is clamped to [1, 256].
  explicit LruCache(size_t byte_budget, int32_t num_shards = 8)
      : shards_(static_cast<size_t>(
            num_shards < 1 ? 1 : (num_shards > 256 ? 256 : num_shards))),
        per_shard_budget_(byte_budget / shards_.size()),
        total_budget_(byte_budget) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Copies the cached value into *out and returns true on a hit; the entry
  /// becomes most-recently used.
  bool Get(const Key& key, Value* out) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++shard.misses;
      return false;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.hits;
    *out = it->second->value;
    return true;
  }

  /// Stores (or replaces) the entry, charging `charge` bytes against the
  /// shard's budget and evicting LRU entries to make room. Entries larger
  /// than the shard budget are not admitted.
  void Put(const Key& key, Value value, size_t charge) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (charge > per_shard_budget_ || per_shard_budget_ == 0) {
      auto it = shard.map.find(key);
      if (it != shard.map.end()) {  // shrink-proof: drop the old entry too
        shard.bytes -= it->second->charge;
        shard.lru.erase(it->second);
        shard.map.erase(it);
      }
      return;
    }
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.bytes -= it->second->charge;
      it->second->value = std::move(value);
      it->second->charge = charge;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Entry{key, std::move(value), charge});
      shard.map.emplace(key, shard.lru.begin());
    }
    shard.bytes += charge;
    ++shard.insertions;
    while (shard.bytes > per_shard_budget_) {
      const Entry& victim = shard.lru.back();
      shard.bytes -= victim.charge;
      shard.map.erase(victim.key);
      shard.lru.pop_back();
      ++shard.evictions;
    }
  }

  /// Drops every entry (counters survive). Call on index reload so no stale
  /// result can ever be served against the new index.
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.lru.clear();
      shard.map.clear();
      shard.bytes = 0;
    }
  }

  Stats stats() const {
    Stats s;
    s.byte_budget = total_budget_;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      s.hits += shard.hits;
      s.misses += shard.misses;
      s.insertions += shard.insertions;
      s.evictions += shard.evictions;
      s.entries += shard.map.size();
      s.bytes += shard.bytes;
    }
    return s;
  }

  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    Key key;
    Value value;
    size_t charge;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> map;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const Key& key) {
    return shards_[Hash{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
  size_t per_shard_budget_;
  size_t total_budget_;
};

}  // namespace pti

#endif  // PTI_UTIL_LRU_CACHE_H_
