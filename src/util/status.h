// Status: RocksDB-style error propagation for the pti library.
//
// The public API of pti never throws; fallible operations return a Status (or
// a StatusOr<T> when they produce a value). Statuses are cheap to copy in the
// OK case and carry a message otherwise.

#ifndef PTI_UTIL_STATUS_H_
#define PTI_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace pti {

/// Outcome of a fallible pti operation. Inspect with ok() / code(); the
/// message() is for humans and never part of the API contract.
class Status {
 public:
  /// Machine-readable category of a failure.
  enum class Code {
    kOk = 0,
    kInvalidArgument = 1,
    kNotFound = 2,
    kCorruption = 3,
    kNotSupported = 4,
    kResourceExhausted = 5,
    kIOError = 6,
  };

  /// Default-constructed Status is success.
  Status() : code_(Code::kOk) {}

  /// Success value.
  static Status OK() { return Status(); }
  /// Caller passed something inconsistent (bad pdf, tau < tau_min, ...).
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  /// Requested entity does not exist.
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  /// Persistent data failed validation (bad magic, truncation, ...).
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  /// Valid request that this build/configuration cannot serve.
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  /// A configured limit (e.g. TransformOptions::max_total_length) was hit.
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  /// Underlying I/O failed.
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsResourceExhausted() const { return code_ == Code::kResourceExhausted; }
  bool IsIOError() const { return code_ == Code::kIOError; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<category>: <message>" for logs and test failure output.
  std::string ToString() const {
    switch (code_) {
      case Code::kOk:
        return "OK";
      case Code::kInvalidArgument:
        return "InvalidArgument: " + msg_;
      case Code::kNotFound:
        return "NotFound: " + msg_;
      case Code::kCorruption:
        return "Corruption: " + msg_;
      case Code::kNotSupported:
        return "NotSupported: " + msg_;
      case Code::kResourceExhausted:
        return "ResourceExhausted: " + msg_;
      case Code::kIOError:
        return "IOError: " + msg_;
    }
    return "Unknown";
  }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// Value-or-Status, for factory functions. Deliberately minimal: check ok()
/// before dereferencing; value access on a failed StatusOr asserts.
template <typename T>
class StatusOr {
 public:
  /// Implicit from a failure Status (must not be OK).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }
  /// Implicit from a value; Status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

/// Propagate a non-OK Status to the caller.
#define PTI_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::pti::Status _pti_status = (expr);      \
    if (!_pti_status.ok()) return _pti_status; \
  } while (0)

}  // namespace pti

#endif  // PTI_UTIL_STATUS_H_
