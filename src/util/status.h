// Status: RocksDB-style error propagation for the pti library.
//
// The public API of pti never throws; fallible operations return a Status (or
// a StatusOr<T> when they produce a value). Statuses are cheap to copy in the
// OK case and carry a message otherwise.
//
// Both types are [[nodiscard]]: any function returning Status or StatusOr by
// value inherits the annotation, so silently dropping a failure is a compile
// error under -Werror (and flagged by scripts/pti_lint.py as a backstop). An
// intentionally ignored status must be spelled explicitly, e.g.
// `Status ignored = ...` with a comment, never bare `(void)`-free discard.

#ifndef PTI_UTIL_STATUS_H_
#define PTI_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace pti {

namespace internal {

/// Terminates the process on a Status contract violation (e.g. constructing a
/// StatusOr from an OK status, or unwrapping a failed StatusOr). These are
/// programming errors, not runtime conditions: they abort in every build mode
/// rather than assert, so release builds cannot silently continue with a
/// default-constructed value. Abort (not throw) keeps the never-throw contract.
[[noreturn]] inline void StatusContractViolation(const char* msg) {
  std::fprintf(stderr, "pti: Status contract violation: %s\n", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

/// Outcome of a fallible pti operation. Inspect with ok() / code(); the
/// message() is for humans and never part of the API contract.
class [[nodiscard]] Status {
 public:
  /// Machine-readable category of a failure.
  enum class Code {
    kOk = 0,
    kInvalidArgument = 1,
    kNotFound = 2,
    kCorruption = 3,
    kNotSupported = 4,
    kResourceExhausted = 5,
    kIOError = 6,
    kUnavailable = 7,
  };

  /// Default-constructed Status is success.
  Status() : code_(Code::kOk) {}

  /// Success value.
  static Status OK() { return Status(); }
  /// Caller passed something inconsistent (bad pdf, tau < tau_min, ...).
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  /// Requested entity does not exist.
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  /// Persistent data failed validation (bad magic, truncation, ...).
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  /// Valid request that this build/configuration cannot serve.
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  /// A configured limit (e.g. TransformOptions::max_total_length) was hit.
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  /// Underlying I/O failed.
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  /// Transient overload: the request was load-shed (bounded admission queue
  /// full) and may succeed if retried later. Distinct from
  /// ResourceExhausted, which reports a configured hard limit on the
  /// request itself.
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == Code::kOk; }
  [[nodiscard]] bool IsInvalidArgument() const {
    return code_ == Code::kInvalidArgument;
  }
  [[nodiscard]] bool IsNotFound() const { return code_ == Code::kNotFound; }
  [[nodiscard]] bool IsCorruption() const { return code_ == Code::kCorruption; }
  [[nodiscard]] bool IsNotSupported() const {
    return code_ == Code::kNotSupported;
  }
  [[nodiscard]] bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  [[nodiscard]] bool IsIOError() const { return code_ == Code::kIOError; }
  [[nodiscard]] bool IsUnavailable() const {
    return code_ == Code::kUnavailable;
  }

  [[nodiscard]] Code code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return msg_; }

  /// "OK" or "<category>: <message>" for logs and test failure output.
  [[nodiscard]] std::string ToString() const {
    switch (code_) {
      case Code::kOk:
        return "OK";
      case Code::kInvalidArgument:
        return "InvalidArgument: " + msg_;
      case Code::kNotFound:
        return "NotFound: " + msg_;
      case Code::kCorruption:
        return "Corruption: " + msg_;
      case Code::kNotSupported:
        return "NotSupported: " + msg_;
      case Code::kResourceExhausted:
        return "ResourceExhausted: " + msg_;
      case Code::kIOError:
        return "IOError: " + msg_;
      case Code::kUnavailable:
        return "Unavailable: " + msg_;
    }
    return "Unknown";
  }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// Value-or-Status, for factory functions. Deliberately minimal: check ok()
/// before dereferencing. Contract violations — constructing from an OK status
/// (which would carry no value) or unwrapping a failed StatusOr — abort in
/// every build mode; see internal::StatusContractViolation.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from a failure Status (must not be OK: an OK status carries no
  /// value, so accepting one would silently yield a default-constructed T).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      internal::StatusContractViolation(
          "StatusOr constructed from an OK Status (no value)");
    }
  }
  /// Implicit from a value; Status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] const T& value() const& {
    CheckHasValue();
    return value_;
  }
  [[nodiscard]] T& value() & {
    CheckHasValue();
    return value_;
  }
  [[nodiscard]] T&& value() && {
    CheckHasValue();
    return std::move(value_);
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHasValue() const {
    if (!ok()) {
      internal::StatusContractViolation(
          "StatusOr::value() called on a failed StatusOr");
    }
  }

  Status status_;
  T value_{};
};

/// Propagate a non-OK Status to the caller.
#define PTI_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::pti::Status _pti_status = (expr);      \
    if (!_pti_status.ok()) return _pti_status; \
  } while (0)

#define PTI_MACRO_CONCAT_INNER_(a, b) a##b
#define PTI_MACRO_CONCAT_(a, b) PTI_MACRO_CONCAT_INNER_(a, b)

/// Unwraps a StatusOr expression into `lhs`, or propagates its Status to the
/// caller. `lhs` may be a new declaration or an existing lvalue:
///
///   PTI_ASSIGN_OR_RETURN(auto index, SubstringIndex::Build(s, mode));
///   PTI_ASSIGN_OR_RETURN(impl.shards[k], LoadShard(blobs[k]));
///
/// Expands to more than one statement; use inside braces, not as the body of
/// an unbraced if/else.
#define PTI_ASSIGN_OR_RETURN(lhs, expr)                                     \
  PTI_ASSIGN_OR_RETURN_IMPL_(PTI_MACRO_CONCAT_(_pti_statusor_, __LINE__), \
                             lhs, expr)

#define PTI_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                               \
  if (!var.ok()) return var.status();              \
  lhs = std::move(var).value()

}  // namespace pti

#endif  // PTI_UTIL_STATUS_H_
