// ServingEngine: the asynchronous request-queue front end over the query
// engine — one process serving many concurrent clients (ROADMAP: async
// serving front end + shard-level caching + admission control).
//
// Clients call Submit(Request) — Request (engine/request.h) carries
// (pattern, tau, metric, k, priority) and defaults to an exact interactive
// query — and get a std::future<Result>; worker threads (from a
// util/thread_pool.h pool owned by the engine) drain the pending lanes in
// micro-batches and answer through the batched query path, so concurrent
// traffic recovers the same locus-descent / backward-search sharing that
// SubstringIndex::QueryBatch gives a single caller:
//
//   clients ──Submit(Request)──▶ admission stripe (hash of key)
//      │            │  in flight? ──▶ attach to the existing execution
//      │            ▼                                  ┌──────────────┐
//      │   interactive lane ──┐ bounded; full ⇒ shed   │ worker:      │
//      │   batch lane ────────┤ with Unavailable       │ interactive  │
//      │                      └──coalesce (≤max_batch,─▶ first, then  │
//      ▼                         ≤linger_us wait)      │ batch        │
//   future<Result> ◀── fulfil ◀── LRU cache ◀──────────┴── QueryBatch ┘
//
// Admission control (the part PR 5 left to the caller) is now built in:
//   * the pending queue is bounded per lane (ServingOptions::max_pending);
//     a full lane load-sheds — the future resolves immediately with
//     Status::Unavailable instead of letting the backlog grow without
//     bound;
//   * two priority lanes: workers always drain Priority::kInteractive
//     before Priority::kBatch, so under overload batch traffic sheds and
//     interactive latency stays bounded;
//   * the admission path (in-flight dedup + enqueue) is lock-striped by
//     request key, so N clients submitting distinct keys do not serialize
//     on one engine-wide mutex.
//
// Three layers keep repeated work off the index: a sharded, byte-budgeted
// LRU cache on the request key holds full result vectors across batches
// (ServingOptions::cache_bytes; 0 disables); identical in-flight requests
// are merged (the second Submit of an identical (pattern, tau, metric, k)
// attaches its promise to the first execution instead of queueing again);
// and within one micro-batch, QueryBatch's own dedup and prefix/suffix
// resumption apply as usual.
//
// Results are bit-identical to the synchronous path: a cache entry is the
// exact vector QueryBatch produced, and QueryBatch's contract is that every
// entry equals what Query would report. When a micro-batch fails the batched
// path's all-or-nothing validation, the engine falls back to per-request
// queries so one client's invalid request cannot fail its batch-mates.
//
// Shutdown: Stop() (or the destructor) stops accepting — further Submits
// complete immediately with NotSupported — then drains every accepted
// request before the workers exit, so no future is ever abandoned.

#ifndef PTI_ENGINE_SERVING_ENGINE_H_
#define PTI_ENGINE_SERVING_ENGINE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/match.h"
#include "core/substring_index.h"
#include "engine/request.h"
#include "engine/sharded_index.h"
#include "util/span.h"
#include "util/status.h"

namespace pti {

struct ServingOptions {
  /// Micro-batch size cap: a worker dispatches as soon as this many unique
  /// requests are pending. Clamped to >= 1.
  int32_t max_batch = 64;
  /// How long a worker lets an under-full batch linger, waiting for
  /// coalescing partners, before dispatching anyway. 0 dispatches
  /// immediately (no coalescing beyond what is already queued).
  int64_t linger_us = 200;
  /// Drain worker threads; 0 means one per hardware thread
  /// (util/thread_pool.h ResolveThreadCount).
  int32_t num_workers = 0;
  /// Byte budget for the result cache; 0 disables caching.
  size_t cache_bytes = size_t{16} << 20;
  /// Lock stripes of the cache (util/lru_cache.h).
  int32_t cache_shards = 8;
  /// Bound on each priority lane's pending queue: admission past it sheds
  /// the request with Status::Unavailable instead of queueing. <= 0 means
  /// unbounded (the PR-5 behavior, for embedders that do their own
  /// admission control).
  int32_t max_pending = 65536;
  /// Lock stripes of the admission (in-flight dedup) table; rounded up to
  /// a power of two and clamped to [1, 256].
  int32_t admission_stripes = 16;
};

class ServingEngine {
 public:
  /// What a client's future resolves to. status mirrors exactly what the
  /// synchronous Query/QueryBatch would have returned for this request —
  /// except Status::Unavailable, which means the request was load-shed at
  /// admission (bounded lane full) and never reached the index.
  struct Result {
    Status status;
    std::vector<Match> matches;
  };

  /// Counter snapshot; all values are cumulative since construction except
  /// the explicitly-labeled gauges. Conservation: every Submit call lands in
  /// exactly one of completed / shed / rejected, so once the engine is
  /// drained, submitted == completed + shed + rejected. Per-lane counters
  /// tag each submission with its requested priority and exclude rejected
  /// (post-Stop) calls: lane_submitted == lane_completed + lane_shed.
  struct Stats {
    uint64_t submitted = 0;        ///< Submit calls, all outcomes
    uint64_t completed = 0;        ///< futures resolved with an answer
                                   ///< (including per-request query errors)
    uint64_t shed = 0;             ///< load-shed with Unavailable at
                                   ///< admission (bounded lane full)
    uint64_t rejected = 0;         ///< Submit calls after Stop
    uint64_t cache_hits = 0;       ///< answered from the cache at Submit
    uint64_t cache_misses = 0;     ///< lookups that missed (then merged
                                   ///< in flight or queued for execution)
    uint64_t inflight_merges = 0;  ///< attached to an identical request
    uint64_t batches = 0;          ///< micro-batches executed
    uint64_t batched_queries = 0;  ///< unique requests answered by the
                                   ///< batched path
    uint64_t fallback_queries = 0; ///< unique requests re-run individually
                                   ///< after a batch validation failure
                                   ///< (disjoint from batched_queries)
    size_t queue_depth = 0;        ///< gauge: pending requests across lanes
    uint64_t interactive_submitted = 0;  ///< non-rejected, interactive lane
    uint64_t interactive_completed = 0;
    uint64_t interactive_shed = 0;
    uint64_t batch_submitted = 0;        ///< non-rejected, batch lane
    uint64_t batch_completed = 0;
    uint64_t batch_shed = 0;
    size_t cache_entries = 0;      ///< live cached results
    size_t cache_bytes = 0;        ///< their summed charge
    uint64_t cache_evictions = 0;  ///< results evicted by the byte budget
    uint64_t reloads = 0;          ///< successful Reload calls
    uint64_t generation = 0;       ///< current index generation (starts at 1)
  };

  /// Serve a sharded index (the intended production shape).
  explicit ServingEngine(ShardedIndex index,
                         const ServingOptions& options = {});
  /// Serve a monolithic index (small deployments, tests).
  explicit ServingEngine(SubstringIndex index,
                         const ServingOptions& options = {});
  /// Stops and drains: blocks until every accepted request is answered.
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Enqueues one query — exact when request.k == 0, fuzzy otherwise (then
  /// the cache key carries (metric, k) alongside (pattern, tau), so fuzzy
  /// and exact results never collide). The future resolves once a worker
  /// (or the cache) answers it; never blocks on index work. Outcomes:
  /// the query's own result; Unavailable when request.priority's lane is
  /// full (load shed); NotSupported after Stop; InvalidArgument without
  /// queueing when k is outside [0, kMaxFuzzyErrors].
  std::future<Result> Submit(Request request);

  /// Submits every request of the batch; out[i] is the future for
  /// requests[i]. (Accepts a std::vector<Request> implicitly via Span.)
  std::vector<std::future<Result>> SubmitBatch(Span<const Request> requests);

  // ---- Deprecated PR-5 surface: thin shims over Submit(Request), kept for
  // one PR so out-of-tree embedders can migrate. All in-repo callers are on
  // Submit(Request) / SubmitBatch(Span<const Request>).

  [[deprecated("use Submit(Request)")]] std::future<Result> Submit(
      std::string pattern, double tau) {
    Request request;
    request.pattern = std::move(pattern);
    request.tau = tau;
    return Submit(std::move(request));
  }

  [[deprecated("use SubmitBatch(Span<const Request>)")]] std::vector<
      std::future<Result>>
  SubmitBatch(const std::vector<BatchQuery>& queries) {
    std::vector<std::future<Result>> futures;
    futures.reserve(queries.size());
    for (const auto& q : queries) {
      Request request;
      request.pattern = q.pattern;
      request.tau = q.tau;
      futures.push_back(Submit(std::move(request)));
    }
    return futures;
  }

  [[deprecated("use Submit(Request) with metric/k set")]] std::future<Result>
  SubmitFuzzy(std::string pattern, double tau, const FuzzyParams& params) {
    Request request;
    request.pattern = std::move(pattern);
    request.tau = tau;
    request.metric = params.metric;
    request.k = params.k;
    return Submit(std::move(request));
  }

  [[deprecated("use SubmitBatch(Span<const Request>)")]] std::vector<
      std::future<Result>>
  SubmitFuzzyBatch(const std::vector<FuzzyBatchQuery>& queries) {
    std::vector<std::future<Result>> futures;
    futures.reserve(queries.size());
    for (const auto& q : queries) {
      Request request;
      request.pattern = q.pattern;
      request.tau = q.tau;
      request.metric = q.params.metric;
      request.k = q.params.k;
      futures.push_back(Submit(std::move(request)));
    }
    return futures;
  }

  /// Atomically replaces the served index with an already-built one.
  /// In-flight micro-batches finish on the generation they started with
  /// (their futures resolve against the old index — never lost, never
  /// re-answered); batches popped after the swap see the new index; the
  /// result cache is cleared. The old generation — including any mmap
  /// backing — is freed once its last batch drains.
  Status Reload(ShardedIndex index);
  Status Reload(SubstringIndex index);

  /// Loads `path` (substring or sharded container; mmap'd zero-copy when
  /// use_mmap, read into memory otherwise) and swaps it in as above. On any
  /// load/validation failure the engine keeps serving the old generation
  /// untouched and returns the error.
  Status Reload(const std::string& path, bool use_mmap = true);

  /// Stops accepting new requests (they resolve with NotSupported) and lets
  /// the workers drain everything already accepted. Idempotent; does not
  /// block — destruction joins the workers.
  void Stop();

  Stats stats() const;

  /// Options with max_batch / num_workers / admission / cache sizing
  /// resolved to the values in effect.
  const ServingOptions& options() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pti

#endif  // PTI_ENGINE_SERVING_ENGINE_H_
