// ServingEngine: the asynchronous request-queue front end over the query
// engine — one process serving many concurrent clients (ROADMAP: async
// serving front end + shard-level caching).
//
// Clients call Submit(pattern, tau) — or SubmitFuzzy(pattern, tau, params)
// for approximate matching — and get a std::future<Result>; worker threads
// (from a util/thread_pool.h pool owned by the engine) drain the
// pending queue in micro-batches and answer through the batched query path,
// so concurrent traffic recovers the same locus-descent / backward-search
// sharing that SubstringIndex::QueryBatch gives a single caller:
//
//   clients ──Submit──▶ pending queue ──coalesce (≤ max_batch,    ┌────────┐
//      │                    │            ≤ linger_us wait) ──────▶│ worker │
//      │   (pattern,tau) in flight? ──▶ attach to the existing    │ drain  │
//      │    one execution, N futures     request (merge)          └───┬────┘
//      ▼                                                              ▼
//   future<Result> ◀── fulfil ◀── LRU cache (util/lru_cache.h) ◀── QueryBatch
//
// Three layers keep repeated work off the index:
//   * a sharded, byte-budgeted LRU cache on (pattern, tau) holds full result
//     vectors across batches (ServingOptions::cache_bytes; 0 disables);
//   * identical in-flight requests are merged: the second Submit of a
//     (pattern, tau) already queued or executing attaches its promise to the
//     first execution instead of queueing again;
//   * within one micro-batch, QueryBatch's own dedup and prefix/suffix
//     resumption apply as usual.
//
// Results are bit-identical to the synchronous path: a cache entry is the
// exact vector QueryBatch produced, and QueryBatch's contract is that every
// entry equals what Query would report. When a micro-batch fails the batched
// path's all-or-nothing validation, the engine falls back to per-request
// queries so one client's invalid request cannot fail its batch-mates.
//
// Shutdown: Stop() (or the destructor) stops accepting — further Submits
// complete immediately with NotSupported — then drains every accepted
// request before the workers exit, so no future is ever abandoned. The
// pending queue is unbounded; admission control is the caller's job.

#ifndef PTI_ENGINE_SERVING_ENGINE_H_
#define PTI_ENGINE_SERVING_ENGINE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/match.h"
#include "core/substring_index.h"
#include "engine/sharded_index.h"
#include "util/status.h"

namespace pti {

struct ServingOptions {
  /// Micro-batch size cap: a worker dispatches as soon as this many unique
  /// requests are pending. Clamped to >= 1.
  int32_t max_batch = 64;
  /// How long a worker lets an under-full batch linger, waiting for
  /// coalescing partners, before dispatching anyway. 0 dispatches
  /// immediately (no coalescing beyond what is already queued).
  int64_t linger_us = 200;
  /// Drain worker threads; 0 means one per hardware thread
  /// (util/thread_pool.h ResolveThreadCount).
  int32_t num_workers = 0;
  /// Byte budget for the (pattern, tau) result cache; 0 disables caching.
  size_t cache_bytes = size_t{16} << 20;
  /// Lock stripes of the cache (util/lru_cache.h).
  int32_t cache_shards = 8;
};

class ServingEngine {
 public:
  /// What a client's future resolves to. status mirrors exactly what the
  /// synchronous Query/QueryBatch would have returned for this request.
  struct Result {
    Status status;
    std::vector<Match> matches;
  };

  /// Counter snapshot; all values are cumulative since construction.
  struct Stats {
    uint64_t submitted = 0;        ///< Submit calls accepted (incl. merged)
    uint64_t rejected = 0;         ///< Submit calls after Stop
    uint64_t cache_hits = 0;       ///< answered from the cache at Submit
    uint64_t cache_misses = 0;     ///< lookups that missed (then merged
                                   ///< in flight or queued for execution)
    uint64_t inflight_merges = 0;  ///< attached to an identical request
    uint64_t batches = 0;          ///< micro-batches executed
    uint64_t batched_queries = 0;  ///< unique requests answered by the
                                   ///< batched path
    uint64_t fallback_queries = 0; ///< unique requests re-run individually
                                   ///< after a batch validation failure
                                   ///< (disjoint from batched_queries)
    size_t cache_entries = 0;      ///< live cached results
    size_t cache_bytes = 0;        ///< their summed charge
    uint64_t cache_evictions = 0;  ///< results evicted by the byte budget
    uint64_t reloads = 0;          ///< successful Reload calls
    uint64_t generation = 0;       ///< current index generation (starts at 1)
  };

  /// Serve a sharded index (the intended production shape).
  explicit ServingEngine(ShardedIndex index,
                         const ServingOptions& options = {});
  /// Serve a monolithic index (small deployments, tests).
  explicit ServingEngine(SubstringIndex index,
                         const ServingOptions& options = {});
  /// Stops and drains: blocks until every accepted request is answered.
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Enqueues one query; the future resolves once a worker (or the cache)
  /// answers it. Never blocks on index work. After Stop, resolves
  /// immediately with NotSupported.
  std::future<Result> Submit(std::string pattern, double tau);

  /// Submits every query of the batch; out[i] is the future for queries[i].
  std::vector<std::future<Result>> SubmitBatch(
      const std::vector<BatchQuery>& queries);

  /// Enqueues one fuzzy query (core/fuzzy.h); the future resolves to what
  /// QueryFuzzy(pattern, tau, params) reports. The cache key carries
  /// (metric, k) alongside (pattern, tau), so fuzzy and exact results never
  /// collide — except that params.k == 0, being bit-identical to the exact
  /// query by contract, is normalized onto the exact path and shares its
  /// cache entries. Invalid params resolve immediately, without queueing.
  std::future<Result> SubmitFuzzy(std::string pattern, double tau,
                                  const FuzzyParams& params);

  /// Submits every fuzzy query of the batch; out[i] is the future for
  /// queries[i].
  std::vector<std::future<Result>> SubmitFuzzyBatch(
      const std::vector<FuzzyBatchQuery>& queries);

  /// Atomically replaces the served index with an already-built one.
  /// In-flight micro-batches finish on the generation they started with
  /// (their futures resolve against the old index — never lost, never
  /// re-answered); requests popped after the swap see the new index; the
  /// result cache is cleared. The old generation — including any mmap
  /// backing — is freed once its last batch drains.
  Status Reload(ShardedIndex index);
  Status Reload(SubstringIndex index);

  /// Loads `path` (substring or sharded container; mmap'd zero-copy when
  /// use_mmap, read into memory otherwise) and swaps it in as above. On any
  /// load/validation failure the engine keeps serving the old generation
  /// untouched and returns the error.
  Status Reload(const std::string& path, bool use_mmap = true);

  /// Stops accepting new requests (they resolve with NotSupported) and lets
  /// the workers drain everything already accepted. Idempotent; does not
  /// block — destruction joins the workers.
  void Stop();

  Stats stats() const;

  /// Options with max_batch / num_workers / cache sizing resolved to the
  /// values in effect.
  const ServingOptions& options() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pti

#endif  // PTI_ENGINE_SERVING_ENGINE_H_
