#include "engine/sharded_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>

#include "core/serde.h"
#include "util/log_prob.h"
#include "util/serial.h"
#include "util/thread_pool.h"

namespace pti {

namespace {

// Upper bound on the shard count, enforced symmetrically: Build clamps to
// it and Load rejects manifests above it (bounding hostile section payloads
// before any allocation).
constexpr uint32_t kMaxPersistedShards = 1u << 16;

// Runs fn(k) for k in [0, count), on a transient pool when both the task
// count and the thread budget allow parallelism.
void RunShardTasks(size_t count, int32_t num_threads,
                   const std::function<void(size_t)>& fn) {
  if (count <= 1 || ResolveThreadCount(num_threads) <= 1) {
    for (size_t k = 0; k < count; ++k) fn(k);
    return;
  }
  ThreadPool pool(num_threads);
  pool.ParallelFor(count, fn);
}

// Extracts the slice [begin, end) of `s` as a standalone UncertainString,
// re-basing correlation rules. A rule whose dependency position falls
// outside the slice can only ever resolve via §3.3 case 2 — the dependency
// is outside every window the shard can match — so it is rewritten as a
// constant rule (pr+ == pr- == the case-2 marginal) anchored on a
// neighbouring in-slice position; the resolved value is identical to what
// the monolithic index computes for those windows.
Status MakeSlice(const UncertainString& s, int64_t begin, int64_t end,
                 UncertainString* out) {
  *out = UncertainString();
  for (int64_t p = begin; p < end; ++p) {
    out->AddPosition(s.options(p));
  }
  for (const CorrelationRule& rule : s.correlations()) {
    if (rule.pos < begin || rule.pos >= end) continue;
    CorrelationRule local = rule;
    local.pos = rule.pos - begin;
    if (rule.dep_pos >= begin && rule.dep_pos < end) {
      local.dep_pos = rule.dep_pos - begin;
    } else {
      const double dep = s.BaseProb(rule.dep_pos, rule.dep_ch);
      const double marginal = dep * rule.prob_if_present +
                              (1.0 - dep) * rule.prob_if_absent;
      const int64_t anchor = local.pos > 0 ? local.pos - 1 : local.pos + 1;
      if (anchor >= end - begin) {
        return Status::InvalidArgument(
            "shard slice too small to re-anchor a correlation rule");
      }
      uint8_t anchor_ch = 0;
      bool found = false;
      for (const CharOption& opt : s.options(begin + anchor)) {
        if (opt.prob > 0.0) {
          anchor_ch = opt.ch;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument(
            "no anchor character for an out-of-shard correlation rule");
      }
      local.dep_pos = anchor;
      local.dep_ch = anchor_ch;
      local.prob_if_present = marginal;
      local.prob_if_absent = marginal;
    }
    PTI_RETURN_IF_ERROR(out->AddCorrelation(local));
  }
  return Status::OK();
}

// Same status code, message prefixed with the failing query's index.
Status PrefixBatchError(const Status& st, size_t i) {
  const std::string msg =
      "batch query #" + std::to_string(i) + ": " + st.message();
  switch (st.code()) {
    case Status::Code::kNotSupported:
      return Status::NotSupported(msg);
    default:
      return Status::InvalidArgument(msg);
  }
}

}  // namespace

struct ShardedIndex::Impl {
  ShardedIndexOptions options;  // num_shards / overlap / num_threads resolved
  int64_t original_length = 0;
  std::vector<int64_t> begins;  // begins[k] = first owned position of shard k
  std::vector<SubstringIndex> shards;

  // Serving-path worker pool, created on the first parallel batch — a
  // transient pool per QueryBatch would pay thread spawn/join per call.
  mutable std::mutex pool_mu;
  mutable std::unique_ptr<ThreadPool> pool;

  ThreadPool* GetPool() const {
    std::lock_guard<std::mutex> lock(pool_mu);
    if (pool == nullptr) {
      pool = std::make_unique<ThreadPool>(options.num_threads);
    }
    return pool.get();
  }

  int32_t num_shards() const { return static_cast<int32_t>(shards.size()); }

  int64_t owned_end(int32_t k) const {
    return k + 1 < num_shards() ? begins[k + 1] : original_length;
  }

  int64_t slice_end(int32_t k) const {
    return std::min(original_length,
                    owned_end(k) + static_cast<int64_t>(options.overlap));
  }

  // Mirrors SubstringIndex's query validation (same messages, same LogProb
  // comparison) and adds the shard-specific pattern-length rules. Sets
  // *cannot_match when the pattern is longer than the string — a valid query
  // with a necessarily empty answer, exactly as the monolithic index treats
  // it.
  Status CheckQuery(const std::string& pattern, double tau,
                    bool* cannot_match) const {
    *cannot_match = false;
    if (pattern.empty()) {
      return Status::InvalidArgument("pattern must be non-empty");
    }
    if (!(tau > 0.0) || tau > 1.0) {
      return Status::InvalidArgument("tau must be in (0, 1]");
    }
    const LogProb lt = LogProb::FromLinear(tau);
    const LogProb lmin =
        LogProb::FromLinear(options.index.transform.tau_min);
    if (!lt.MeetsThreshold(lmin)) {
      return Status::InvalidArgument(
          "tau is below the construction-time tau_min");
    }
    const int64_t m = static_cast<int64_t>(pattern.size());
    if (m > original_length) {
      *cannot_match = true;
      return Status::OK();
    }
    if (m > static_cast<int64_t>(options.overlap) + 1) {
      return Status::NotSupported(
          "pattern length " + std::to_string(m) +
          " exceeds the shard overlap limit of " +
          std::to_string(options.overlap + 1) +
          "; rebuild the sharded index with a larger overlap");
    }
    return Status::OK();
  }

  // Re-bases one shard's matches to global coordinates, dropping overlap-
  // tail matches (owned — and reported — by a later shard).
  void MergeShardMatches(int32_t k, const std::vector<Match>& local,
                         std::vector<Match>* out) const {
    const int64_t owned = owned_end(k) - begins[k];
    for (const Match& m : local) {
      if (m.position >= owned) continue;
      out->push_back(Match{m.position + begins[k], m.probability});
    }
  }

  Status Query(const std::string& pattern, double tau,
               std::vector<Match>* out) const {
    out->clear();
    bool cannot_match = false;
    PTI_RETURN_IF_ERROR(CheckQuery(pattern, tau, &cannot_match));
    if (cannot_match) return Status::OK();
    std::vector<Match> local;
    for (int32_t k = 0; k < num_shards(); ++k) {
      PTI_RETURN_IF_ERROR(shards[k].Query(pattern, tau, &local));
      MergeShardMatches(k, local, out);
    }
    return Status::OK();
  }

  // Fuzzy variant of CheckQuery. The slice layout guarantees windows of up
  // to overlap+1 characters starting at an owned position stay in-slice;
  // under kEdit an admissible variant window can be params.k longer than
  // the pattern (and max(1, m - k) shorter, which is what decides
  // cannot_match), so the supported pattern length shrinks by k.
  Status CheckFuzzyQuery(const std::string& pattern, double tau,
                         const FuzzyParams& params, bool* cannot_match) const {
    *cannot_match = false;
    if (pattern.empty()) {
      return Status::InvalidArgument("pattern must be non-empty");
    }
    if (!(tau > 0.0) || tau > 1.0) {
      return Status::InvalidArgument("tau must be in (0, 1]");
    }
    const LogProb lt = LogProb::FromLinear(tau);
    const LogProb lmin =
        LogProb::FromLinear(options.index.transform.tau_min);
    if (!lt.MeetsThreshold(lmin)) {
      return Status::InvalidArgument(
          "tau is below the construction-time tau_min");
    }
    PTI_RETURN_IF_ERROR(CheckFuzzyParams(params));
    const int64_t m = static_cast<int64_t>(pattern.size());
    const bool edit = params.metric == FuzzyMetric::kEdit && params.k > 0;
    const int64_t min_len = edit ? std::max<int64_t>(1, m - params.k) : m;
    const int64_t max_len = edit ? m + params.k : m;
    if (min_len > original_length) {
      *cannot_match = true;
      return Status::OK();
    }
    if (max_len > static_cast<int64_t>(options.overlap) + 1) {
      return Status::NotSupported(
          "pattern length " + std::to_string(m) +
          (edit ? " widened by k=" + std::to_string(params.k) : "") +
          " exceeds the shard overlap limit of " +
          std::to_string(options.overlap + 1) +
          "; rebuild the sharded index with a larger overlap");
    }
    return Status::OK();
  }

  Status QueryFuzzy(const std::string& pattern, double tau,
                    const FuzzyParams& params, std::vector<Match>* out) const {
    out->clear();
    bool cannot_match = false;
    PTI_RETURN_IF_ERROR(CheckFuzzyQuery(pattern, tau, params, &cannot_match));
    if (cannot_match) return Status::OK();
    std::vector<Match> local;
    for (int32_t k = 0; k < num_shards(); ++k) {
      PTI_RETURN_IF_ERROR(shards[k].QueryFuzzy(pattern, tau, params, &local));
      MergeShardMatches(k, local, out);
    }
    return Status::OK();
  }

  Status QueryFuzzyBatch(const std::vector<FuzzyBatchQuery>& queries,
                         std::vector<std::vector<Match>>* out) const {
    out->clear();
    out->resize(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      bool cannot_match = false;
      const Status st = CheckFuzzyQuery(queries[i].pattern, queries[i].tau,
                                        queries[i].params, &cannot_match);
      if (!st.ok()) return PrefixBatchError(st, i);
    }
    const size_t n_shards = static_cast<size_t>(num_shards());
    std::vector<std::vector<std::vector<Match>>> per_shard(n_shards);
    std::vector<Status> statuses(n_shards);
    const auto run_shard = [&](size_t k) {
      statuses[k] = shards[k].QueryFuzzyBatch(queries, &per_shard[k]);
    };
    if (n_shards > 1 && options.num_threads > 1) {
      GetPool()->ParallelFor(n_shards, run_shard);
    } else {
      for (size_t k = 0; k < n_shards; ++k) run_shard(k);
    }
    for (const Status& st : statuses) PTI_RETURN_IF_ERROR(st);
    for (size_t i = 0; i < queries.size(); ++i) {
      for (size_t k = 0; k < n_shards; ++k) {
        MergeShardMatches(static_cast<int32_t>(k), per_shard[k][i],
                          &(*out)[i]);
      }
    }
    return Status::OK();
  }

  Status QueryBatch(const std::vector<BatchQuery>& queries,
                    std::vector<std::vector<Match>>* out) const {
    out->clear();
    out->resize(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      bool cannot_match = false;
      const Status st =
          CheckQuery(queries[i].pattern, queries[i].tau, &cannot_match);
      if (!st.ok()) return PrefixBatchError(st, i);
    }
    const size_t n_shards = static_cast<size_t>(num_shards());
    std::vector<std::vector<std::vector<Match>>> per_shard(n_shards);
    std::vector<Status> statuses(n_shards);
    const auto run_shard = [&](size_t k) {
      statuses[k] = shards[k].QueryBatch(queries, &per_shard[k]);
    };
    if (n_shards > 1 && options.num_threads > 1) {
      GetPool()->ParallelFor(n_shards, run_shard);
    } else {
      for (size_t k = 0; k < n_shards; ++k) run_shard(k);
    }
    for (const Status& st : statuses) PTI_RETURN_IF_ERROR(st);
    for (size_t i = 0; i < queries.size(); ++i) {
      for (size_t k = 0; k < n_shards; ++k) {
        MergeShardMatches(static_cast<int32_t>(k), per_shard[k][i],
                          &(*out)[i]);
      }
    }
    return Status::OK();
  }
};

ShardedIndex::ShardedIndex() = default;
ShardedIndex::~ShardedIndex() = default;
ShardedIndex::ShardedIndex(ShardedIndex&&) noexcept = default;
ShardedIndex& ShardedIndex::operator=(ShardedIndex&&) noexcept = default;

StatusOr<ShardedIndex> ShardedIndex::Build(const UncertainString& s,
                                           const ShardedIndexOptions& options) {
  PTI_RETURN_IF_ERROR(s.Validate());
  const int64_t n = s.size();

  ShardedIndex index;
  index.impl_ = std::make_unique<Impl>();
  Impl& impl = *index.impl_;
  impl.options = options;
  impl.original_length = n;

  // Resolve the layout: every shard must own >= 2 positions so out-of-shard
  // correlation rules always have an in-slice anchor position, and the count
  // must stay loadable (Load rejects manifests above kMaxPersistedShards).
  int32_t num_shards = options.num_shards > 0
                           ? options.num_shards
                           : ShardedIndexOptions::kDefaultNumShards;
  num_shards = std::max<int32_t>(
      1, std::min<int64_t>(
             std::min<int64_t>(num_shards, kMaxPersistedShards),
             std::max<int64_t>(1, n / 2)));
  int64_t overlap = options.overlap > 0
                        ? options.overlap
                        : ShardedIndexOptions::kDefaultOverlap;
  overlap = std::max<int64_t>(0, std::min(overlap, std::max<int64_t>(0, n - 1)));
  impl.options.num_shards = num_shards;
  impl.options.overlap = static_cast<int32_t>(overlap);
  impl.options.num_threads = ResolveThreadCount(options.num_threads);

  impl.begins.resize(num_shards);
  for (int32_t k = 0; k < num_shards; ++k) {
    impl.begins[k] = k * n / num_shards;
  }
  impl.shards.resize(num_shards);

  // Split the thread budget: `outer` shards build concurrently, each with
  // `inner` workers for its intra-shard pipeline, so the product never
  // exceeds the resolved budget.
  const ThreadBudget budget = SplitThreadBudget(
      options.num_threads, static_cast<size_t>(num_shards));
  std::vector<Status> statuses(num_shards);
  std::vector<BuildTimings> shard_timings(
      options.build_timings != nullptr ? num_shards : 0);
  RunShardTasks(static_cast<size_t>(num_shards), budget.outer,
                [&](size_t k) {
                  const int32_t kk = static_cast<int32_t>(k);
                  UncertainString slice;
                  Status st = MakeSlice(s, impl.begins[kk], impl.slice_end(kk),
                                        &slice);
                  if (st.ok()) {
                    SubstringIndex::BuildOptions build;
                    build.threads = budget.inner;
                    if (!shard_timings.empty()) {
                      build.timings = &shard_timings[k];
                    }
                    auto shard =
                        SubstringIndex::Build(slice, options.index, build);
                    if (shard.ok()) {
                      impl.shards[kk] = std::move(shard).value();
                    } else {
                      st = shard.status();
                    }
                  }
                  statuses[k] = st;
                });
  for (const Status& st : statuses) PTI_RETURN_IF_ERROR(st);
  for (const BuildTimings& t : shard_timings) {
    options.build_timings->transform_ms += t.transform_ms;
    options.build_timings->sa_ms += t.sa_ms;
    options.build_timings->lcp_ms += t.lcp_ms;
    options.build_timings->fm_ms += t.fm_ms;
    options.build_timings->derived_ms += t.derived_ms;
    options.build_timings->rmq_ms += t.rmq_ms;
  }
  return index;
}

Status ShardedIndex::Query(const std::string& pattern, double tau,
                           std::vector<Match>* out) const {
  return impl_->Query(pattern, tau, out);
}

Status ShardedIndex::QueryBatch(const std::vector<BatchQuery>& queries,
                                std::vector<std::vector<Match>>* out) const {
  return impl_->QueryBatch(queries, out);
}

Status ShardedIndex::QueryFuzzy(const std::string& pattern, double tau,
                                const FuzzyParams& params,
                                std::vector<Match>* out) const {
  return impl_->QueryFuzzy(pattern, tau, params, out);
}

Status ShardedIndex::QueryFuzzyBatch(
    const std::vector<FuzzyBatchQuery>& queries,
    std::vector<std::vector<Match>>* out) const {
  return impl_->QueryFuzzyBatch(queries, out);
}

Status ShardedIndex::Count(const std::string& pattern, double tau,
                           size_t* count) const {
  std::vector<Match> matches;
  PTI_RETURN_IF_ERROR(impl_->Query(pattern, tau, &matches));
  *count = matches.size();
  return Status::OK();
}

ShardedIndex::Stats ShardedIndex::stats() const {
  Stats s;
  s.original_length = impl_->original_length;
  s.num_shards = impl_->num_shards();
  s.overlap = impl_->options.overlap;
  for (const SubstringIndex& shard : impl_->shards) {
    const auto ss = shard.stats();
    s.num_factors += ss.num_factors;
    s.transformed_length += ss.transformed_length;
  }
  return s;
}

size_t ShardedIndex::MemoryUsage() const {
  size_t bytes = impl_->begins.capacity() * sizeof(int64_t);
  for (const SubstringIndex& shard : impl_->shards) {
    bytes += shard.MemoryUsage();
  }
  return bytes;
}

const ShardedIndexOptions& ShardedIndex::options() const {
  return impl_->options;
}

int32_t ShardedIndex::num_shards() const { return impl_->num_shards(); }

int64_t ShardedIndex::shard_begin(int32_t k) const { return impl_->begins[k]; }

const SubstringIndex& ShardedIndex::shard(int32_t k) const {
  return impl_->shards[k];
}

Status ShardedIndex::Save(std::string* out) const {
  return Save(out, serde::kContainerVersion);
}

Status ShardedIndex::Save(std::string* out, uint32_t version) const {
  if (version < serde::kInterchangeVersion ||
      version > serde::kContainerVersion) {
    return Status::InvalidArgument("unsupported container version");
  }
  const Impl& impl = *impl_;
  serde::ContainerWriter cw(serde::IndexKind::kSharded, version);
  Writer& manifest = cw.AddSection(serde::kTagShardManifest);
  manifest.PutU32(static_cast<uint32_t>(impl.num_shards()));
  manifest.PutU32(static_cast<uint32_t>(impl.options.overlap));
  manifest.PutI64(impl.original_length);
  for (const int64_t b : impl.begins) manifest.PutI64(b);
  Writer& blobs = cw.AddSection(serde::kTagShardBlobs);
  // In a v3 container each nested blob lands 8-byte aligned (the aligned
  // writer pads before the length prefix), so a nested v3 shard's sections
  // are absolutely aligned too and its Load stays zero-copy.
  for (const SubstringIndex& shard : impl.shards) {
    std::string blob;
    PTI_RETURN_IF_ERROR(shard.Save(&blob, version));
    blobs.PutString(blob);
  }
  *out = std::move(cw).Finish();
  return Status::OK();
}

StatusOr<ShardedIndex> ShardedIndex::Load(std::string_view data,
                                          int32_t num_threads,
                                          serde::BlobPtr backing) {
  // Same ownership-by-construction contract as SubstringIndex::Load: a v3
  // container's shards keep views into `data`, so pin the caller's Blob or
  // make a private copy up front. The one Blob backs every shard.
  PTI_ASSIGN_OR_RETURN(const uint32_t version, serde::PeekVersion(data));
  if (version >= 3 && backing == nullptr) {
    backing = std::make_shared<const serde::Blob>(std::string(data));
    data = backing->view();
  }
  serde::ContainerReader container;
  PTI_RETURN_IF_ERROR(serde::ContainerReader::Open(
      data, serde::IndexKind::kSharded, &container));
  ShardedIndex index;
  index.impl_ = std::make_unique<Impl>();
  Impl& impl = *index.impl_;
  impl.options.num_threads = ResolveThreadCount(num_threads);

  Reader manifest;
  PTI_RETURN_IF_ERROR(
      container.Section(serde::kTagShardManifest, &manifest));
  uint32_t num_shards = 0, overlap = 0;
  PTI_RETURN_IF_ERROR(manifest.GetU32(&num_shards));
  if (num_shards == 0 || num_shards > kMaxPersistedShards) {
    return Status::Corruption("unreasonable shard count");
  }
  PTI_RETURN_IF_ERROR(manifest.GetU32(&overlap));
  if (overlap > static_cast<uint32_t>(std::numeric_limits<int32_t>::max())) {
    return Status::Corruption("shard overlap out of range");
  }
  impl.options.num_shards = static_cast<int32_t>(num_shards);
  impl.options.overlap = static_cast<int32_t>(overlap);
  PTI_RETURN_IF_ERROR(manifest.GetI64(&impl.original_length));
  if (impl.original_length < 0) {
    return Status::Corruption("negative original length in shard manifest");
  }
  impl.begins.resize(num_shards);
  for (uint32_t k = 0; k < num_shards; ++k) {
    PTI_RETURN_IF_ERROR(manifest.GetI64(&impl.begins[k]));
  }
  PTI_RETURN_IF_ERROR(serde::ExpectSectionEnd(manifest, "shard manifest"));
  if (impl.begins[0] != 0) {
    return Status::Corruption("first shard must begin at position 0");
  }
  for (uint32_t k = 1; k < num_shards; ++k) {
    if (impl.begins[k] <= impl.begins[k - 1]) {
      return Status::Corruption("shard begins not strictly increasing");
    }
  }
  if (impl.original_length == 0) {
    if (num_shards != 1) {
      return Status::Corruption("empty string must have exactly one shard");
    }
  } else if (impl.begins.back() >= impl.original_length) {
    return Status::Corruption("shard begins past the end of the string");
  }

  Reader blobs;
  PTI_RETURN_IF_ERROR(container.Section(serde::kTagShardBlobs, &blobs));
  // Views into the container, not copies: v2 shard loads decode fully
  // while `data` is alive, v3 shard loads pin `backing`.
  std::vector<std::string_view> shard_blobs(num_shards);
  for (uint32_t k = 0; k < num_shards; ++k) {
    PTI_RETURN_IF_ERROR(blobs.GetStringView(&shard_blobs[k]));
  }
  PTI_RETURN_IF_ERROR(serde::ExpectSectionEnd(blobs, "shard blobs"));

  impl.shards.resize(num_shards);
  std::vector<Status> statuses(num_shards);
  // Same budget split as Build: v2 and tree-mode shard blobs rebuild their
  // derived structures on load, so nested parallelism matters here too.
  const ThreadBudget budget = SplitThreadBudget(num_threads, num_shards);
  RunShardTasks(num_shards, budget.outer, [&](size_t k) {
    SubstringIndex::BuildOptions build;
    build.threads = budget.inner;
    auto shard = SubstringIndex::Load(shard_blobs[k], backing, build);
    if (shard.ok()) {
      impl.shards[k] = std::move(shard).value();
      statuses[k] = Status::OK();
    } else {
      statuses[k] = shard.status();
    }
  });
  for (const Status& st : statuses) PTI_RETURN_IF_ERROR(st);

  // Cross-validate the manifest against the decoded shards: slice sizes must
  // match the layout and every shard must share one tau_min (CheckQuery
  // validates against it once, globally).
  for (uint32_t k = 0; k < num_shards; ++k) {
    const int32_t kk = static_cast<int32_t>(k);
    const int64_t want = impl.slice_end(kk) - impl.begins[kk];
    if (impl.shards[k].source().size() != want) {
      return Status::Corruption("shard slice size mismatches manifest");
    }
    if (impl.shards[k].options().transform.tau_min !=
        impl.shards[0].options().transform.tau_min) {
      return Status::Corruption("shards disagree on tau_min");
    }
  }
  impl.options.index = impl.shards[0].options();
  return index;
}

}  // namespace pti
