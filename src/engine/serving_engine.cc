#include "engine/serving_engine.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/lru_cache.h"
#include "util/thread_pool.h"

namespace pti {

namespace {

// Cache key: a fixed two-byte header (metric kind, k), the pattern bytes, a
// NUL separator, then the exact bit pattern of tau. Fixed-size header +
// fixed-size tail keeps keys unambiguous for arbitrary pattern bytes;
// bit-exact tau equality is the only comparison that keeps cached results
// bit-identical to the synchronous path. The exact path uses header (0, 0),
// and SubmitFuzzy normalizes k == 0 onto it (bit-identical by contract), so
// exact and fuzzy-k=0 traffic share entries while every real fuzzy (metric,
// k) pair gets its own.
std::string CacheKey(const std::string& pattern, double tau,
                     const FuzzyParams& params, bool fuzzy) {
  std::string key;
  key.reserve(pattern.size() + 11);
  if (fuzzy) {
    key.push_back(
        static_cast<char>(params.metric == FuzzyMetric::kEdit ? 2 : 1));
    key.push_back(static_cast<char>(params.k & 0xff));
  } else {
    key.push_back('\0');
    key.push_back('\0');
  }
  key.append(pattern);
  key.push_back('\0');
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(tau), "double must be 64-bit");
  std::memcpy(&bits, &tau, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    key.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
  return key;
}

// Approximate bytes a cached entry pins: key + matches + list/map node
// bookkeeping in LruCache.
size_t EntryCharge(const std::string& key, const std::vector<Match>& matches) {
  return key.size() + matches.size() * sizeof(Match) + 96;
}

ServingOptions Resolve(ServingOptions options) {
  if (options.max_batch < 1) options.max_batch = 1;
  if (options.linger_us < 0) options.linger_us = 0;
  options.num_workers = ResolveThreadCount(options.num_workers);
  return options;
}

}  // namespace

struct ServingEngine::Impl {
  // One unique (pattern, tau) awaiting or undergoing execution; every
  // duplicate Submit attaches another waiter. waiters is guarded by mu.
  struct Request {
    std::string pattern;
    double tau = 0.0;
    FuzzyParams params;  // meaningful only when fuzzy
    bool fuzzy = false;
    std::string key;
    std::chrono::steady_clock::time_point enqueued;
    std::vector<std::promise<Result>> waiters;
  };

  // One immutable loaded index. The engine points at the current generation
  // through a shared_ptr swapped under mu by Reload; a worker pins the
  // generation it pops a batch under, so every request in a micro-batch is
  // answered by the generation that was current when the batch was taken —
  // and an old generation (with its mmap backing, if any) is destroyed only
  // after the last such batch drains.
  struct Generation {
    ShardedIndex sharded;
    SubstringIndex mono;
    bool use_sharded = false;

    Status ExecuteBatch(const std::vector<BatchQuery>& queries,
                        std::vector<std::vector<Match>>* out) const {
      return use_sharded ? sharded.QueryBatch(queries, out)
                         : mono.QueryBatch(queries, out);
    }

    Status ExecuteOne(const std::string& pattern, double tau,
                      std::vector<Match>* out) const {
      return use_sharded ? sharded.Query(pattern, tau, out)
                         : mono.Query(pattern, tau, out);
    }

    Status ExecuteFuzzyBatch(const std::vector<FuzzyBatchQuery>& queries,
                             std::vector<std::vector<Match>>* out) const {
      return use_sharded ? sharded.QueryFuzzyBatch(queries, out)
                         : mono.QueryFuzzyBatch(queries, out);
    }

    Status ExecuteFuzzyOne(const std::string& pattern, double tau,
                           const FuzzyParams& params,
                           std::vector<Match>* out) const {
      return use_sharded ? sharded.QueryFuzzy(pattern, tau, params, out)
                         : mono.QueryFuzzy(pattern, tau, params, out);
    }
  };

  Impl(ShardedIndex s, SubstringIndex m, bool is_sharded,
       const ServingOptions& opts)
      : options(Resolve(opts)),
        cache(options.cache_bytes, options.cache_shards),
        pool(options.num_workers) {
    auto gen = std::make_shared<Generation>();
    gen->sharded = std::move(s);
    gen->mono = std::move(m);
    gen->use_sharded = is_sharded;
    generation = std::move(gen);
    for (int32_t w = 0; w < options.num_workers; ++w) {
      pool.Submit([this] { WorkerLoop(); });
    }
  }

  // Swaps in a validated replacement index. In-flight and already-queued
  // batches finish on the generation they were popped with; the result
  // cache is cleared (entries may describe the old index); the old
  // generation is freed — unmapped, for an mmap-backed load — when its last
  // batch drains. Requests merged onto an in-flight execution intentionally
  // share its (old-generation) answer: they joined that execution.
  void Swap(std::shared_ptr<const Generation> next) {
    {
      std::lock_guard<std::mutex> lock(mu);
      generation = std::move(next);
      ++generation_number;
    }
    cache.Clear();
    reloads.fetch_add(1, std::memory_order_relaxed);
  }

  void WorkerLoop() {
    const auto linger = std::chrono::microseconds(options.linger_us);
    for (;;) {
      std::vector<std::shared_ptr<Request>> batch;
      std::shared_ptr<const Generation> gen;
      {
        std::unique_lock<std::mutex> lock(mu);
        ready.wait(lock, [this] { return stop || !queue.empty(); });
        if (queue.empty()) return;  // stop and fully drained
        const size_t want = static_cast<size_t>(options.max_batch);
        if (!stop && options.linger_us > 0 && queue.size() < want) {
          // Let the under-full batch linger (measured from its oldest
          // request) so bursts from concurrent clients coalesce.
          const auto deadline = queue.front()->enqueued + linger;
          ready.wait_until(lock, deadline, [this, want] {
            return stop || queue.size() >= want;
          });
          if (queue.empty()) continue;  // another worker drained it
        }
        const size_t take = queue.size() < want ? queue.size() : want;
        batch.assign(queue.begin(),
                     queue.begin() + static_cast<ptrdiff_t>(take));
        queue.erase(queue.begin(), queue.begin() + static_cast<ptrdiff_t>(take));
        // Pin the generation under the same lock that popped the batch: the
        // whole batch is answered by one index, and a concurrent Reload
        // cannot free it while this worker still holds the shared_ptr.
        gen = generation;
      }
      RunBatch(*gen, batch);
    }
  }

  // A drained micro-batch can mix exact and fuzzy requests; each subset
  // goes through its own batched path (each is all-or-nothing on
  // validation, with per-request fallback), so a fuzzy request's invalid k
  // cannot fail exact batch-mates and vice versa.
  void RunBatch(const Generation& gen,
                const std::vector<std::shared_ptr<Request>>& batch) {
    std::vector<std::shared_ptr<Request>> exact;
    std::vector<std::shared_ptr<Request>> fuzzy;
    for (const auto& r : batch) (r->fuzzy ? fuzzy : exact).push_back(r);
    if (!exact.empty()) RunExactSubset(gen, exact);
    if (!fuzzy.empty()) RunFuzzySubset(gen, fuzzy);
  }

  void RunExactSubset(const Generation& gen,
                      const std::vector<std::shared_ptr<Request>>& batch) {
    std::vector<BatchQuery> queries;
    queries.reserve(batch.size());
    for (const auto& r : batch) queries.push_back({r->pattern, r->tau});
    std::vector<std::vector<Match>> results;
    const Status st = gen.ExecuteBatch(queries, &results);
    batches.fetch_add(1, std::memory_order_relaxed);
    // Each request lands in exactly one execution counter: batched_queries
    // when the batched path answered it, fallback_queries when validation
    // failed and it re-ran individually — so batched + fallback is the
    // engine's total unique executions.
    if (st.ok()) {
      batched_queries.fetch_add(batch.size(), std::memory_order_relaxed);
      for (size_t i = 0; i < batch.size(); ++i) {
        Fulfill(*batch[i], Result{Status::OK(), std::move(results[i])});
      }
      return;
    }
    // The batched path validates all-or-nothing; re-run each request on its
    // own so one client's invalid query cannot fail its batch-mates.
    for (const auto& r : batch) {
      Result result;
      result.status = gen.ExecuteOne(r->pattern, r->tau, &result.matches);
      fallback_queries.fetch_add(1, std::memory_order_relaxed);
      Fulfill(*r, std::move(result));
    }
  }

  void RunFuzzySubset(const Generation& gen,
                      const std::vector<std::shared_ptr<Request>>& batch) {
    std::vector<FuzzyBatchQuery> queries;
    queries.reserve(batch.size());
    for (const auto& r : batch) {
      queries.push_back({r->pattern, r->tau, r->params});
    }
    std::vector<std::vector<Match>> results;
    const Status st = gen.ExecuteFuzzyBatch(queries, &results);
    batches.fetch_add(1, std::memory_order_relaxed);
    if (st.ok()) {
      batched_queries.fetch_add(batch.size(), std::memory_order_relaxed);
      for (size_t i = 0; i < batch.size(); ++i) {
        Fulfill(*batch[i], Result{Status::OK(), std::move(results[i])});
      }
      return;
    }
    for (const auto& r : batch) {
      Result result;
      result.status =
          gen.ExecuteFuzzyOne(r->pattern, r->tau, r->params, &result.matches);
      fallback_queries.fetch_add(1, std::memory_order_relaxed);
      Fulfill(*r, std::move(result));
    }
  }

  // Shared Submit path (defined after the class): cache probe, in-flight
  // merge, enqueue. `fuzzy` selects the key header and the RunBatch subset.
  std::future<Result> SubmitImpl(std::string pattern, double tau,
                                 const FuzzyParams& params, bool fuzzy);

  void Fulfill(Request& request, Result result) {
    if (result.status.ok() && options.cache_bytes > 0) {
      cache.Put(request.key, result.matches,
                EntryCharge(request.key, result.matches));
    }
    std::vector<std::promise<Result>> waiters;
    {
      std::lock_guard<std::mutex> lock(mu);
      inflight.erase(request.key);
      waiters = std::move(request.waiters);
    }
    for (size_t i = 0; i + 1 < waiters.size(); ++i) {
      waiters[i].set_value(result);
    }
    if (!waiters.empty()) waiters.back().set_value(std::move(result));
  }

  const ServingOptions options;

  LruCache<std::string, std::vector<Match>> cache;

  std::mutex mu;
  std::condition_variable ready;
  // Current index; guarded by mu (read when popping a batch, written by
  // Reload). shared_ptr keeps drained-from generations alive off-lock.
  std::shared_ptr<const Generation> generation;
  uint64_t generation_number = 1;  // guarded by mu
  std::deque<std::shared_ptr<Request>> queue;
  std::unordered_map<std::string, std::shared_ptr<Request>> inflight;
  bool stop = false;
  // Mirror of `stop` for the lock-free Submit fast path: once Stop()
  // returns, every later Submit rejects before even probing the cache.
  std::atomic<bool> stop_flag{false};

  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> inflight_merges{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> batched_queries{0};
  std::atomic<uint64_t> fallback_queries{0};
  std::atomic<uint64_t> reloads{0};

  // Declared last: destroyed first, which joins the workers while every
  // field they touch is still alive.
  ThreadPool pool;
};

ServingEngine::ServingEngine(ShardedIndex index, const ServingOptions& options)
    : impl_(new Impl(std::move(index), SubstringIndex(), /*is_sharded=*/true,
                     options)) {}

ServingEngine::ServingEngine(SubstringIndex index,
                             const ServingOptions& options)
    : impl_(new Impl(ShardedIndex(), std::move(index), /*is_sharded=*/false,
                     options)) {}

ServingEngine::~ServingEngine() {
  Stop();
  // impl_ destruction joins the worker pool, which drains the queue first.
}

std::future<ServingEngine::Result> ServingEngine::Impl::SubmitImpl(
    std::string pattern, double tau, const FuzzyParams& params, bool fuzzy) {
  std::promise<Result> promise;
  std::future<Result> future = promise.get_future();
  if (stop_flag.load(std::memory_order_acquire)) {
    rejected.fetch_add(1, std::memory_order_relaxed);
    promise.set_value(
        Result{Status::NotSupported("serving engine stopped"), {}});
    return future;
  }
  std::string key = CacheKey(pattern, tau, params, fuzzy);
  if (options.cache_bytes > 0) {
    std::vector<Match> cached;
    if (cache.Get(key, &cached)) {
      submitted.fetch_add(1, std::memory_order_relaxed);
      cache_hits.fetch_add(1, std::memory_order_relaxed);
      promise.set_value(Result{Status::OK(), std::move(cached)});
      return future;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    if (stop) {
      // A rejected request counts neither as submitted nor as a miss, so
      // the counters always reconcile: submitted == hits + merges +
      // executions, misses == merges + executions.
      rejected.fetch_add(1, std::memory_order_relaxed);
      promise.set_value(
          Result{Status::NotSupported("serving engine stopped"), {}});
      return future;
    }
    submitted.fetch_add(1, std::memory_order_relaxed);
    if (options.cache_bytes > 0) {
      cache_misses.fetch_add(1, std::memory_order_relaxed);
    }
    auto it = inflight.find(key);
    if (it != inflight.end()) {
      inflight_merges.fetch_add(1, std::memory_order_relaxed);
      it->second->waiters.push_back(std::move(promise));
      return future;
    }
    auto request = std::make_shared<Request>();
    request->pattern = std::move(pattern);
    request->tau = tau;
    request->params = params;
    request->fuzzy = fuzzy;
    request->key = std::move(key);
    request->enqueued = std::chrono::steady_clock::now();
    request->waiters.push_back(std::move(promise));
    inflight.emplace(request->key, request);
    queue.push_back(std::move(request));
  }
  ready.notify_one();
  return future;
}

std::future<ServingEngine::Result> ServingEngine::Submit(std::string pattern,
                                                         double tau) {
  return impl_->SubmitImpl(std::move(pattern), tau, FuzzyParams{},
                           /*fuzzy=*/false);
}

std::vector<std::future<ServingEngine::Result>> ServingEngine::SubmitBatch(
    const std::vector<BatchQuery>& queries) {
  std::vector<std::future<Result>> futures;
  futures.reserve(queries.size());
  for (const auto& q : queries) futures.push_back(Submit(q.pattern, q.tau));
  return futures;
}

std::future<ServingEngine::Result> ServingEngine::SubmitFuzzy(
    std::string pattern, double tau, const FuzzyParams& params) {
  // Invalid params never queue: queueing them would let a bogus k collide
  // with a valid request's cache/in-flight key after the header truncation.
  const Status st = CheckFuzzyParams(params);
  if (!st.ok()) {
    std::promise<Result> promise;
    promise.set_value(Result{st, {}});
    return promise.get_future();
  }
  // k == 0 is bit-identical to the exact query by contract; normalizing it
  // onto the exact path shares cache entries and in-flight merges with
  // Submit.
  return impl_->SubmitImpl(std::move(pattern), tau, params,
                           /*fuzzy=*/params.k > 0);
}

std::vector<std::future<ServingEngine::Result>> ServingEngine::SubmitFuzzyBatch(
    const std::vector<FuzzyBatchQuery>& queries) {
  std::vector<std::future<Result>> futures;
  futures.reserve(queries.size());
  for (const auto& q : queries) {
    futures.push_back(SubmitFuzzy(q.pattern, q.tau, q.params));
  }
  return futures;
}

Status ServingEngine::Reload(ShardedIndex index) {
  auto gen = std::make_shared<Impl::Generation>();
  gen->sharded = std::move(index);
  gen->use_sharded = true;
  impl_->Swap(std::move(gen));
  return Status::OK();
}

Status ServingEngine::Reload(SubstringIndex index) {
  auto gen = std::make_shared<Impl::Generation>();
  gen->mono = std::move(index);
  gen->use_sharded = false;
  impl_->Swap(std::move(gen));
  return Status::OK();
}

Status ServingEngine::Reload(const std::string& path, bool use_mmap) {
  // Load and validate entirely beside the live generation: a failed load
  // leaves the engine serving the old index, untouched.
  PTI_ASSIGN_OR_RETURN(
      const serde::BlobPtr blob,
      use_mmap ? serde::MapFile(path) : serde::ReadFileToBlob(path));
  const std::string_view data = blob->view();
  PTI_ASSIGN_OR_RETURN(const serde::IndexKind kind, serde::PeekKind(data));
  auto gen = std::make_shared<Impl::Generation>();
  if (kind == serde::IndexKind::kSharded) {
    PTI_ASSIGN_OR_RETURN(gen->sharded, ShardedIndex::Load(data, 0, blob));
    gen->use_sharded = true;
  } else if (kind == serde::IndexKind::kSubstring) {
    PTI_ASSIGN_OR_RETURN(gen->mono, SubstringIndex::Load(data, blob));
    gen->use_sharded = false;
  } else {
    return Status::InvalidArgument(
        "serving engine reloads substring or sharded containers only");
  }
  impl_->Swap(std::move(gen));
  return Status::OK();
}

void ServingEngine::Stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->stop_flag.store(true, std::memory_order_release);
  impl_->ready.notify_all();
}

ServingEngine::Stats ServingEngine::stats() const {
  const Impl& impl = *impl_;
  Stats s;
  s.submitted = impl.submitted.load(std::memory_order_relaxed);
  s.rejected = impl.rejected.load(std::memory_order_relaxed);
  s.cache_hits = impl.cache_hits.load(std::memory_order_relaxed);
  s.cache_misses = impl.cache_misses.load(std::memory_order_relaxed);
  s.inflight_merges = impl.inflight_merges.load(std::memory_order_relaxed);
  s.batches = impl.batches.load(std::memory_order_relaxed);
  s.batched_queries = impl.batched_queries.load(std::memory_order_relaxed);
  s.fallback_queries = impl.fallback_queries.load(std::memory_order_relaxed);
  s.reloads = impl.reloads.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    s.generation = impl.generation_number;
  }
  const auto cache_stats = impl.cache.stats();
  s.cache_entries = cache_stats.entries;
  s.cache_bytes = cache_stats.bytes;
  s.cache_evictions = cache_stats.evictions;
  return s;
}

const ServingOptions& ServingEngine::options() const {
  return impl_->options;
}

}  // namespace pti
