#include "engine/serving_engine.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/bounded_queue.h"
#include "util/lru_cache.h"
#include "util/thread_pool.h"

namespace pti {

namespace {

constexpr size_t kNumLanes = 2;  // Priority::kInteractive, Priority::kBatch

// Cache key: a fixed two-byte header (metric kind, k), the pattern bytes, a
// NUL separator, then the exact bit pattern of tau. Fixed-size header +
// fixed-size tail keeps keys unambiguous for arbitrary pattern bytes;
// bit-exact tau equality is the only comparison that keeps cached results
// bit-identical to the synchronous path. The exact path (k == 0) uses header
// (0, 0) — bit-identical to the k == 0 fuzzy query by contract — so every
// real fuzzy (metric, k) pair gets its own entries while exact traffic
// shares one. priority is deliberately not in the key: the lane changes
// when a request runs, never what it answers.
std::string CacheKey(const Request& request) {
  std::string key;
  key.reserve(request.pattern.size() + 11);
  if (request.k > 0) {
    key.push_back(
        static_cast<char>(request.metric == FuzzyMetric::kEdit ? 2 : 1));
    key.push_back(static_cast<char>(request.k & 0xff));
  } else {
    key.push_back('\0');
    key.push_back('\0');
  }
  key.append(request.pattern);
  key.push_back('\0');
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(request.tau), "double must be 64-bit");
  std::memcpy(&bits, &request.tau, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    key.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
  return key;
}

// Approximate bytes a cached entry pins: key + matches + list/map node
// bookkeeping in LruCache.
size_t EntryCharge(const std::string& key, const std::vector<Match>& matches) {
  return key.size() + matches.size() * sizeof(Match) + 96;
}

ServingOptions Resolve(ServingOptions options) {
  if (options.max_batch < 1) options.max_batch = 1;
  if (options.linger_us < 0) options.linger_us = 0;
  options.num_workers = ResolveThreadCount(options.num_workers);
  if (options.max_pending < 0) options.max_pending = 0;  // 0 = unbounded
  if (options.admission_stripes < 1) options.admission_stripes = 1;
  if (options.admission_stripes > 256) options.admission_stripes = 256;
  int32_t stripes = 1;
  while (stripes < options.admission_stripes) stripes <<= 1;
  options.admission_stripes = stripes;
  return options;
}

}  // namespace

struct ServingEngine::Impl {
  // One Submit call's promise, tagged with the lane it asked for so the
  // per-lane completion counters attribute merged waiters to their own
  // priority, not the priority of the execution they joined.
  struct Waiter {
    std::promise<Result> promise;
    uint8_t lane = 0;
  };

  // One unique (pattern, tau, metric, k) awaiting or undergoing execution;
  // every duplicate Submit attaches another waiter. waiters is guarded by
  // the owning admission stripe's mutex.
  struct Pending {
    Request request;
    bool fuzzy = false;
    std::string key;
    std::chrono::steady_clock::time_point enqueued;
    std::vector<Waiter> waiters;
  };

  // One lock stripe of the admission path: the in-flight dedup table for
  // the keys that hash here. Striping keeps N clients submitting distinct
  // keys from serializing on one engine-wide mutex; two Submits of the
  // same key still serialize (they must — the second one merges).
  struct Stripe {
    std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<Pending>> inflight;
  };

  // One immutable loaded index. The engine points at the current generation
  // through a shared_ptr swapped under gen_mu by Reload; a worker pins the
  // generation right after popping a batch, so every request in a
  // micro-batch is answered by one index — and an old generation (with its
  // mmap backing, if any) is destroyed only after the last such batch
  // drains.
  struct Generation {
    ShardedIndex sharded;
    SubstringIndex mono;
    bool use_sharded = false;

    Status ExecuteBatch(const std::vector<BatchQuery>& queries,
                        std::vector<std::vector<Match>>* out) const {
      return use_sharded ? sharded.QueryBatch(queries, out)
                         : mono.QueryBatch(queries, out);
    }

    Status ExecuteOne(const std::string& pattern, double tau,
                      std::vector<Match>* out) const {
      return use_sharded ? sharded.Query(pattern, tau, out)
                         : mono.Query(pattern, tau, out);
    }

    Status ExecuteFuzzyBatch(const std::vector<FuzzyBatchQuery>& queries,
                             std::vector<std::vector<Match>>* out) const {
      return use_sharded ? sharded.QueryFuzzyBatch(queries, out)
                         : mono.QueryFuzzyBatch(queries, out);
    }

    Status ExecuteFuzzyOne(const std::string& pattern, double tau,
                           const FuzzyParams& params,
                           std::vector<Match>* out) const {
      return use_sharded ? sharded.QueryFuzzy(pattern, tau, params, out)
                         : mono.QueryFuzzy(pattern, tau, params, out);
    }
  };

  Impl(ShardedIndex s, SubstringIndex m, bool is_sharded,
       const ServingOptions& opts)
      : options(Resolve(opts)),
        cache(options.cache_bytes, options.cache_shards),
        interactive_lane(static_cast<size_t>(options.max_pending)),
        batch_lane(static_cast<size_t>(options.max_pending)),
        pool(options.num_workers) {
    stripes.reserve(static_cast<size_t>(options.admission_stripes));
    for (int32_t i = 0; i < options.admission_stripes; ++i) {
      stripes.push_back(std::make_unique<Stripe>());
    }
    auto gen = std::make_shared<Generation>();
    gen->sharded = std::move(s);
    gen->mono = std::move(m);
    gen->use_sharded = is_sharded;
    generation = std::move(gen);
    for (int32_t w = 0; w < options.num_workers; ++w) {
      pool.Submit([this] { WorkerLoop(); });
    }
  }

  Stripe& StripeFor(const std::string& key) {
    const size_t h = std::hash<std::string>{}(key);
    return *stripes[h & (stripes.size() - 1)];
  }

  BoundedQueue<std::shared_ptr<Pending>>& Lane(uint8_t lane) {
    return lane == 0 ? interactive_lane : batch_lane;
  }

  size_t TotalDepth() const {
    return interactive_lane.size() + batch_lane.size();
  }

  // Workers sleep on dispatch_cv with a predicate over the lanes' atomic
  // size gauges. A notifier must pass through dispatch_mu after its push is
  // visible, or a worker that just evaluated the predicate could sleep
  // through the wakeup; the empty critical section is that handshake.
  void WakeOne() {
    { std::lock_guard<std::mutex> lock(dispatch_mu); }
    dispatch_cv.notify_one();
  }
  void WakeAll() {
    { std::lock_guard<std::mutex> lock(dispatch_mu); }
    dispatch_cv.notify_all();
  }

  // Swaps in a validated replacement index. In-flight and already-popped
  // batches finish on the generation they pinned; the result cache is
  // cleared (entries may describe the old index); the old generation is
  // freed — unmapped, for an mmap-backed load — when its last batch drains.
  // Requests merged onto an in-flight execution intentionally share its
  // (old-generation) answer: they joined that execution.
  void Swap(std::shared_ptr<const Generation> next) {
    {
      std::lock_guard<std::mutex> lock(gen_mu);
      generation = std::move(next);
      ++generation_number;
    }
    cache.Clear();
    reloads.fetch_add(1, std::memory_order_relaxed);
  }

  // Takes up to `want` pending requests, interactive lane first. The strict
  // lane order is the priority policy: batch work runs only when no
  // interactive work is queued.
  void PopBatchInto(std::vector<std::shared_ptr<Pending>>* out, size_t want) {
    interactive_lane.PopUpTo(want, out);
    if (out->size() < want) {
      batch_lane.PopUpTo(want - out->size(), out);
    }
  }

  void WorkerLoop() {
    const auto linger = std::chrono::microseconds(options.linger_us);
    const size_t want = static_cast<size_t>(options.max_batch);
    std::vector<std::shared_ptr<Pending>> batch;
    for (;;) {
      batch.clear();
      // Read the drain flag before popping: Stop() publishes it only after
      // the admission barrier, so stopping == true here means every
      // accepted request is already visible in its lane — empty pops below
      // prove the engine is drained and this worker may exit.
      const bool stopping = draining.load(std::memory_order_acquire);
      if (!stopping && options.linger_us > 0) {
        const size_t depth = TotalDepth();
        if (depth > 0 && depth < want) {
          // Let the under-full batch linger (measured from the oldest
          // pending request) so bursts from concurrent clients coalesce.
          std::shared_ptr<Pending> front;
          std::shared_ptr<Pending> batch_front;
          const bool has_i = interactive_lane.PeekFront(&front);
          const bool has_b = batch_lane.PeekFront(&batch_front);
          if (has_b && (!has_i || batch_front->enqueued < front->enqueued)) {
            front = std::move(batch_front);
          }
          if (has_i || has_b) {
            const auto deadline = front->enqueued + linger;
            std::unique_lock<std::mutex> lock(dispatch_mu);
            dispatch_cv.wait_until(lock, deadline, [this, want] {
              return draining.load(std::memory_order_acquire) ||
                     TotalDepth() >= want;
            });
          }
        }
      }
      PopBatchInto(&batch, want);
      if (batch.empty()) {
        if (stopping) return;  // stop observed before the pops: drained
        std::unique_lock<std::mutex> lock(dispatch_mu);
        dispatch_cv.wait(lock, [this] {
          return draining.load(std::memory_order_acquire) || TotalDepth() > 0;
        });
        continue;
      }
      std::shared_ptr<const Generation> gen;
      {
        // Pin one generation for the whole batch: every request in it is
        // answered by one index, and a concurrent Reload cannot free that
        // index while this worker still holds the shared_ptr.
        std::lock_guard<std::mutex> lock(gen_mu);
        gen = generation;
      }
      RunBatch(*gen, batch);
    }
  }

  // A drained micro-batch can mix exact and fuzzy requests; each subset
  // goes through its own batched path (each is all-or-nothing on
  // validation, with per-request fallback), so a fuzzy request's invalid
  // input cannot fail exact batch-mates and vice versa.
  void RunBatch(const Generation& gen,
                const std::vector<std::shared_ptr<Pending>>& batch) {
    std::vector<std::shared_ptr<Pending>> exact;
    std::vector<std::shared_ptr<Pending>> fuzzy;
    for (const auto& r : batch) (r->fuzzy ? fuzzy : exact).push_back(r);
    if (!exact.empty()) RunExactSubset(gen, exact);
    if (!fuzzy.empty()) RunFuzzySubset(gen, fuzzy);
  }

  void RunExactSubset(const Generation& gen,
                      const std::vector<std::shared_ptr<Pending>>& batch) {
    std::vector<BatchQuery> queries;
    queries.reserve(batch.size());
    for (const auto& r : batch) {
      queries.push_back({r->request.pattern, r->request.tau});
    }
    std::vector<std::vector<Match>> results;
    const Status st = gen.ExecuteBatch(queries, &results);
    batches.fetch_add(1, std::memory_order_relaxed);
    // Each request lands in exactly one execution counter: batched_queries
    // when the batched path answered it, fallback_queries when validation
    // failed and it re-ran individually — so batched + fallback is the
    // engine's total unique executions.
    if (st.ok()) {
      batched_queries.fetch_add(batch.size(), std::memory_order_relaxed);
      for (size_t i = 0; i < batch.size(); ++i) {
        Fulfill(*batch[i], Result{Status::OK(), std::move(results[i])});
      }
      return;
    }
    // The batched path validates all-or-nothing; re-run each request on its
    // own so one client's invalid query cannot fail its batch-mates.
    for (const auto& r : batch) {
      Result result;
      result.status =
          gen.ExecuteOne(r->request.pattern, r->request.tau, &result.matches);
      fallback_queries.fetch_add(1, std::memory_order_relaxed);
      Fulfill(*r, std::move(result));
    }
  }

  void RunFuzzySubset(const Generation& gen,
                      const std::vector<std::shared_ptr<Pending>>& batch) {
    std::vector<FuzzyBatchQuery> queries;
    queries.reserve(batch.size());
    for (const auto& r : batch) {
      queries.push_back({r->request.pattern, r->request.tau,
                         FuzzyParams{r->request.k, r->request.metric}});
    }
    std::vector<std::vector<Match>> results;
    const Status st = gen.ExecuteFuzzyBatch(queries, &results);
    batches.fetch_add(1, std::memory_order_relaxed);
    if (st.ok()) {
      batched_queries.fetch_add(batch.size(), std::memory_order_relaxed);
      for (size_t i = 0; i < batch.size(); ++i) {
        Fulfill(*batch[i], Result{Status::OK(), std::move(results[i])});
      }
      return;
    }
    for (const auto& r : batch) {
      Result result;
      result.status = gen.ExecuteFuzzyOne(
          r->request.pattern, r->request.tau,
          FuzzyParams{r->request.k, r->request.metric}, &result.matches);
      fallback_queries.fetch_add(1, std::memory_order_relaxed);
      Fulfill(*r, std::move(result));
    }
  }

  // The Submit path (defined after the class): validation, cache probe,
  // in-flight merge, bounded enqueue or shed.
  std::future<Result> SubmitImpl(Request request);

  void Fulfill(Pending& pending, Result result) {
    if (result.status.ok() && options.cache_bytes > 0) {
      cache.Put(pending.key, result.matches,
                EntryCharge(pending.key, result.matches));
    }
    std::vector<Waiter> waiters;
    {
      Stripe& stripe = StripeFor(pending.key);
      std::lock_guard<std::mutex> lock(stripe.mu);
      stripe.inflight.erase(pending.key);
      waiters = std::move(pending.waiters);
    }
    completed.fetch_add(waiters.size(), std::memory_order_relaxed);
    for (const auto& w : waiters) {
      lane_completed[w.lane].fetch_add(1, std::memory_order_relaxed);
    }
    for (size_t i = 0; i + 1 < waiters.size(); ++i) {
      waiters[i].promise.set_value(result);
    }
    if (!waiters.empty()) waiters.back().promise.set_value(std::move(result));
  }

  const ServingOptions options;

  LruCache<std::string, std::vector<Match>> cache;

  // Admission: lock-striped in-flight table + two bounded priority lanes.
  std::vector<std::unique_ptr<Stripe>> stripes;
  BoundedQueue<std::shared_ptr<Pending>> interactive_lane;
  BoundedQueue<std::shared_ptr<Pending>> batch_lane;

  // Worker wakeups only; never held while touching a stripe or a lane.
  std::mutex dispatch_mu;
  std::condition_variable dispatch_cv;

  // Current index; guarded by gen_mu (read when pinning a popped batch,
  // written by Reload). shared_ptr keeps drained-from generations alive
  // off-lock.
  std::mutex gen_mu;
  std::shared_ptr<const Generation> generation;
  uint64_t generation_number = 1;  // guarded by gen_mu

  // Two-phase stop (see Stop()): admission_closed turns every later Submit
  // into a reject; draining additionally tells workers they may exit once
  // the lanes are empty. Workers must never observe draining before every
  // pre-stop admission has finished its push — Stop()'s stripe barrier
  // enforces that.
  std::atomic<bool> admission_closed{false};
  std::atomic<bool> draining{false};

  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> inflight_merges{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> batched_queries{0};
  std::atomic<uint64_t> fallback_queries{0};
  std::atomic<uint64_t> reloads{0};
  std::atomic<uint64_t> lane_submitted[kNumLanes] = {{0}, {0}};
  std::atomic<uint64_t> lane_completed[kNumLanes] = {{0}, {0}};
  std::atomic<uint64_t> lane_shed[kNumLanes] = {{0}, {0}};

  // Declared last: destroyed first, which joins the workers while every
  // field they touch is still alive.
  ThreadPool pool;
};

ServingEngine::ServingEngine(ShardedIndex index, const ServingOptions& options)
    : impl_(new Impl(std::move(index), SubstringIndex(), /*is_sharded=*/true,
                     options)) {}

ServingEngine::ServingEngine(SubstringIndex index,
                             const ServingOptions& options)
    : impl_(new Impl(ShardedIndex(), std::move(index), /*is_sharded=*/false,
                     options)) {}

ServingEngine::~ServingEngine() {
  Stop();
  // impl_ destruction joins the worker pool, which drains the lanes first.
}

std::future<ServingEngine::Result> ServingEngine::Impl::SubmitImpl(
    Request request) {
  std::promise<Result> promise;
  std::future<Result> future = promise.get_future();
  const uint8_t lane =
      request.priority == Priority::kBatch ? uint8_t{1} : uint8_t{0};
  if (admission_closed.load(std::memory_order_acquire)) {
    submitted.fetch_add(1, std::memory_order_relaxed);
    rejected.fetch_add(1, std::memory_order_relaxed);
    promise.set_value(
        Result{Status::NotSupported("serving engine stopped"), {}});
    return future;
  }
  if (request.k != 0) {
    // Invalid fuzzy parameters never queue: queueing them would let a bogus
    // k collide with a valid request's cache/in-flight key after the header
    // truncation. They still count as submitted + completed (answered,
    // with an error), keeping the conservation law exact.
    const Status st = CheckFuzzyParams(FuzzyParams{request.k, request.metric});
    if (!st.ok()) {
      submitted.fetch_add(1, std::memory_order_relaxed);
      lane_submitted[lane].fetch_add(1, std::memory_order_relaxed);
      completed.fetch_add(1, std::memory_order_relaxed);
      lane_completed[lane].fetch_add(1, std::memory_order_relaxed);
      promise.set_value(Result{st, {}});
      return future;
    }
  }
  const bool fuzzy = request.k > 0;
  std::string key = CacheKey(request);
  if (options.cache_bytes > 0) {
    std::vector<Match> cached;
    if (cache.Get(key, &cached)) {
      submitted.fetch_add(1, std::memory_order_relaxed);
      lane_submitted[lane].fetch_add(1, std::memory_order_relaxed);
      cache_hits.fetch_add(1, std::memory_order_relaxed);
      completed.fetch_add(1, std::memory_order_relaxed);
      lane_completed[lane].fetch_add(1, std::memory_order_relaxed);
      promise.set_value(Result{Status::OK(), std::move(cached)});
      return future;
    }
  }
  bool was_shed = false;
  {
    Stripe& stripe = StripeFor(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    // Re-check under the stripe lock: Stop()'s barrier acquires every
    // stripe after setting the flag, so an admission that read `false`
    // here has finished its push before any worker can see `draining`.
    if (admission_closed.load(std::memory_order_acquire)) {
      submitted.fetch_add(1, std::memory_order_relaxed);
      rejected.fetch_add(1, std::memory_order_relaxed);
      promise.set_value(
          Result{Status::NotSupported("serving engine stopped"), {}});
      return future;
    }
    submitted.fetch_add(1, std::memory_order_relaxed);
    lane_submitted[lane].fetch_add(1, std::memory_order_relaxed);
    auto it = stripe.inflight.find(key);
    if (it != stripe.inflight.end()) {
      if (options.cache_bytes > 0) {
        cache_misses.fetch_add(1, std::memory_order_relaxed);
      }
      inflight_merges.fetch_add(1, std::memory_order_relaxed);
      it->second->waiters.push_back(Waiter{std::move(promise), lane});
      return future;
    }
    auto pending = std::make_shared<Pending>();
    pending->request = std::move(request);
    pending->fuzzy = fuzzy;
    pending->key = std::move(key);
    pending->enqueued = std::chrono::steady_clock::now();
    pending->waiters.push_back(Waiter{std::move(promise), lane});
    // Push before publishing in the in-flight table: a request that sheds
    // was never visible, so nothing can merge onto it. Holding the stripe
    // lock across the push keeps admission of one key atomic (stripe ->
    // lane is the only nesting; no path acquires them the other way).
    if (Lane(lane).TryPush(pending)) {
      stripe.inflight.emplace(pending->key, std::move(pending));
    } else {
      was_shed = true;
      shed.fetch_add(1, std::memory_order_relaxed);
      lane_shed[lane].fetch_add(1, std::memory_order_relaxed);
      pending->waiters.front().promise.set_value(Result{
          Status::Unavailable(lane == 0 ? "interactive lane full: load shed"
                                        : "batch lane full: load shed"),
          {}});
    }
  }
  if (options.cache_bytes > 0 && !was_shed) {
    cache_misses.fetch_add(1, std::memory_order_relaxed);
  }
  if (!was_shed) WakeOne();
  return future;
}

std::future<ServingEngine::Result> ServingEngine::Submit(Request request) {
  return impl_->SubmitImpl(std::move(request));
}

std::vector<std::future<ServingEngine::Result>> ServingEngine::SubmitBatch(
    Span<const Request> requests) {
  std::vector<std::future<Result>> futures;
  futures.reserve(requests.size());
  for (const auto& r : requests) futures.push_back(Submit(r));
  return futures;
}

Status ServingEngine::Reload(ShardedIndex index) {
  auto gen = std::make_shared<Impl::Generation>();
  gen->sharded = std::move(index);
  gen->use_sharded = true;
  impl_->Swap(std::move(gen));
  return Status::OK();
}

Status ServingEngine::Reload(SubstringIndex index) {
  auto gen = std::make_shared<Impl::Generation>();
  gen->mono = std::move(index);
  gen->use_sharded = false;
  impl_->Swap(std::move(gen));
  return Status::OK();
}

Status ServingEngine::Reload(const std::string& path, bool use_mmap) {
  // Load and validate entirely beside the live generation: a failed load
  // leaves the engine serving the old index, untouched.
  PTI_ASSIGN_OR_RETURN(
      const serde::BlobPtr blob,
      use_mmap ? serde::MapFile(path) : serde::ReadFileToBlob(path));
  const std::string_view data = blob->view();
  PTI_ASSIGN_OR_RETURN(const serde::IndexKind kind, serde::PeekKind(data));
  auto gen = std::make_shared<Impl::Generation>();
  if (kind == serde::IndexKind::kSharded) {
    PTI_ASSIGN_OR_RETURN(gen->sharded, ShardedIndex::Load(data, 0, blob));
    gen->use_sharded = true;
  } else if (kind == serde::IndexKind::kSubstring) {
    PTI_ASSIGN_OR_RETURN(gen->mono, SubstringIndex::Load(data, blob));
    gen->use_sharded = false;
  } else {
    return Status::InvalidArgument(
        "serving engine reloads substring or sharded containers only");
  }
  impl_->Swap(std::move(gen));
  return Status::OK();
}

void ServingEngine::Stop() {
  // Two-phase: (1) close admission — every Submit that has not yet passed
  // its stripe-lock check will reject; (2) pass through every stripe lock,
  // which waits out any admission that read the flag as still-open while
  // holding its stripe (their lane pushes complete before they release);
  // (3) only then tell the workers they may exit on empty lanes. Without
  // the barrier a worker could see empty lanes + stop while a straggler
  // admission is mid-push, and that request's future would be abandoned.
  impl_->admission_closed.store(true, std::memory_order_release);
  for (auto& stripe : impl_->stripes) {
    std::lock_guard<std::mutex> lock(stripe->mu);
  }
  impl_->draining.store(true, std::memory_order_release);
  impl_->WakeAll();
}

ServingEngine::Stats ServingEngine::stats() const {
  const Impl& impl = *impl_;
  Stats s;
  s.submitted = impl.submitted.load(std::memory_order_relaxed);
  s.completed = impl.completed.load(std::memory_order_relaxed);
  s.shed = impl.shed.load(std::memory_order_relaxed);
  s.rejected = impl.rejected.load(std::memory_order_relaxed);
  s.cache_hits = impl.cache_hits.load(std::memory_order_relaxed);
  s.cache_misses = impl.cache_misses.load(std::memory_order_relaxed);
  s.inflight_merges = impl.inflight_merges.load(std::memory_order_relaxed);
  s.batches = impl.batches.load(std::memory_order_relaxed);
  s.batched_queries = impl.batched_queries.load(std::memory_order_relaxed);
  s.fallback_queries = impl.fallback_queries.load(std::memory_order_relaxed);
  s.queue_depth = impl.TotalDepth();
  s.interactive_submitted =
      impl.lane_submitted[0].load(std::memory_order_relaxed);
  s.interactive_completed =
      impl.lane_completed[0].load(std::memory_order_relaxed);
  s.interactive_shed = impl.lane_shed[0].load(std::memory_order_relaxed);
  s.batch_submitted = impl.lane_submitted[1].load(std::memory_order_relaxed);
  s.batch_completed = impl.lane_completed[1].load(std::memory_order_relaxed);
  s.batch_shed = impl.lane_shed[1].load(std::memory_order_relaxed);
  s.reloads = impl.reloads.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(impl_->gen_mu);
    s.generation = impl.generation_number;
  }
  const auto cache_stats = impl.cache.stats();
  s.cache_entries = cache_stats.entries;
  s.cache_bytes = cache_stats.bytes;
  s.cache_evictions = cache_stats.evictions;
  return s;
}

const ServingOptions& ServingEngine::options() const {
  return impl_->options;
}

}  // namespace pti
