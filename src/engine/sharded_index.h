// ShardedIndex: the serving-layer wrapper that splits one UncertainString
// across K SubstringIndex shards — the first step of the multi-million-user
// scaling story (ROADMAP: sharding, batching, parallel construction).
//
// Layout: shard k owns the original positions [begin_k, begin_{k+1}) but is
// built over the *slice* [begin_k, begin_{k+1} + overlap), so any window of
// up to overlap+1 characters starting at an owned position lies entirely
// inside the shard's slice:
//
//   original  |-------------------- S --------------------------|
//   shard 0   [ owned 0       | overlap )
//   shard 1                   [ owned 1       | overlap )
//   shard 2                                   [ owned 2         )
//
// Queries fan out to every shard; each shard reports matches in slice-local
// coordinates, which are mapped back by +begin_k, and matches starting
// inside the overlap tail are dropped (the next shard owns and reports
// them). Patterns longer than overlap+1 could straddle further than the
// slices cover, so they are rejected with NotSupported — rebuild with a
// larger overlap to serve them.
//
// Correlation rules (§3.3) survive slicing exactly: a rule whose dependency
// position falls inside the slice is kept (re-based); one whose dependency
// lies outside can only ever resolve via the paper's case 2 (the dependency
// is outside every window the shard can match), so it is rewritten as a
// constant rule with pr+ = pr- = the case-2 marginal — byte-for-byte the
// value the monolithic index computes for those windows.
//
// Construction and Load build the shards concurrently on a
// util/thread_pool.h pool; query batches fan out shard-parallel the same
// way. Persistence nests each shard's own container inside a "SHRD"
// container (docs/FORMAT.md).

#ifndef PTI_ENGINE_SHARDED_INDEX_H_
#define PTI_ENGINE_SHARDED_INDEX_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/match.h"
#include "core/substring_index.h"
#include "core/uncertain_string.h"
#include "util/status.h"

namespace pti {

struct ShardedIndexOptions {
  /// Per-shard build configuration (factor transform, RMQ engine, blocking,
  /// compact mode — everything a monolithic build accepts).
  IndexOptions index;
  /// Number of shards; 0 means kDefaultNumShards. Clamped so every shard
  /// owns at least two positions.
  int32_t num_shards = 0;
  /// Slice overlap in characters; supports patterns up to overlap+1 long.
  /// 0 means min(kDefaultOverlap, n-1).
  int32_t overlap = 0;
  /// Worker threads for construction, Load and batch fan-out; 0 means one
  /// per hardware thread. The budget is split between the shard fan-out and
  /// each shard's intra-index build (SplitThreadBudget), so K shards times
  /// T intra-shard workers never oversubscribes the machine.
  int32_t num_threads = 0;
  /// When set, Build accumulates every shard's per-stage construction
  /// timings here (summed across shards — CPU time, not wall time, once
  /// shards build concurrently). Not serialized; ignored by Load.
  BuildTimings* build_timings = nullptr;

  static constexpr int32_t kDefaultNumShards = 4;
  static constexpr int32_t kDefaultOverlap = 255;
};

class ShardedIndex {
 public:
  ShardedIndex();
  ~ShardedIndex();
  ShardedIndex(ShardedIndex&&) noexcept;
  ShardedIndex& operator=(ShardedIndex&&) noexcept;

  /// Builds every shard (in parallel when options.num_threads allows).
  /// Fails on invalid input, exactly as SubstringIndex::Build would.
  static StatusOr<ShardedIndex> Build(const UncertainString& s,
                                      const ShardedIndexOptions& options = {});

  /// Reports all positions with occurrence probability >= tau, sorted by
  /// position — the same contract as SubstringIndex::Query. Fails with
  /// NotSupported when the pattern is longer than overlap+1.
  Status Query(const std::string& pattern, double tau,
               std::vector<Match>* out) const;

  /// Batched query path: validates every query up front, fans the whole
  /// batch out shard-parallel (each shard runs its own
  /// SubstringIndex::QueryBatch with prefix-sharing), then merges per query.
  /// out[i] holds exactly what Query(queries[i]) would report.
  Status QueryBatch(const std::vector<BatchQuery>& queries,
                    std::vector<std::vector<Match>>* out) const;

  /// Fuzzy threshold query (core/fuzzy.h), fanned out like Query. The
  /// overlap length rule widens by k: under kEdit a variant window can be
  /// params.k longer than the pattern, so patterns longer than
  /// overlap+1-k are NotSupported (kMismatch variants keep the pattern's
  /// length and get the exact limit). params.k == 0 is bit-identical to
  /// Query.
  Status QueryFuzzy(const std::string& pattern, double tau,
                    const FuzzyParams& params, std::vector<Match>* out) const;

  /// Batched fuzzy path: validates up front, fans out shard-parallel via
  /// each shard's QueryFuzzyBatch, merges per query. out[i] holds exactly
  /// what QueryFuzzy(queries[i]) would report.
  Status QueryFuzzyBatch(const std::vector<FuzzyBatchQuery>& queries,
                         std::vector<std::vector<Match>>* out) const;

  /// Number of occurrences with probability >= tau.
  Status Count(const std::string& pattern, double tau, size_t* count) const;

  struct Stats {
    int64_t original_length = 0;
    int32_t num_shards = 0;
    int32_t overlap = 0;            ///< slice overlap; max pattern = overlap+1
    size_t num_factors = 0;         ///< summed over shards
    size_t transformed_length = 0;  ///< summed over shards
  };
  Stats stats() const;
  size_t MemoryUsage() const;

  /// Options with num_shards / overlap / num_threads resolved to the values
  /// actually in effect.
  const ShardedIndexOptions& options() const;

  int32_t num_shards() const;
  /// First original position owned by shard k.
  int64_t shard_begin(int32_t k) const;
  /// The underlying per-shard index (tests and benches).
  const SubstringIndex& shard(int32_t k) const;

  /// Persists the shard layout plus every shard's own container into one
  /// "SHRD" container (docs/FORMAT.md).
  Status Save(std::string* out) const;
  /// Same, at an explicit container version; nested shard containers are
  /// written at the same version (and stay 8-byte aligned in a v3 file, so
  /// their own loads remain zero-copy).
  Status Save(std::string* out, uint32_t version) const;
  /// Rebuilds every shard from its nested container, concurrently when
  /// num_threads allows. Cross-validates the manifest against the shards.
  /// For a v3 container the shards keep zero-copy views into `data`; pass
  /// the owning Blob (e.g. from serde::MapFile) as `backing` to pin it,
  /// else Load copies the bytes into a private Blob first.
  static StatusOr<ShardedIndex> Load(std::string_view data,
                                     int32_t num_threads = 1,
                                     serde::BlobPtr backing = nullptr);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pti

#endif  // PTI_ENGINE_SHARDED_INDEX_H_
