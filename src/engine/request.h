// Request: the one client-facing query unit of the serving layer.
//
// Every way of asking the engine something — exact or fuzzy, one-off or
// batched, in-process (ServingEngine::Submit) or over the wire
// (src/net/protocol.h encodes exactly this struct) — is a Request. The
// defaults make the common case the empty case: default-constructed fields
// mean an exact-match interactive query, so `Request{pattern, tau}` is the
// PR-5 Submit(pattern, tau) call spelled as data.
//
// k == 0 selects the exact path; k in [1, kMaxFuzzyErrors] selects the
// fuzzy path under `metric` (core/fuzzy.h). `priority` picks the admission
// lane (engine/serving_engine.h): interactive traffic is drained first and
// keeps its latency bounded under overload, batch traffic is the first to
// be load-shed with Status::Unavailable when its bounded lane fills.

#ifndef PTI_ENGINE_REQUEST_H_
#define PTI_ENGINE_REQUEST_H_

#include <cstdint>
#include <string>

#include "core/fuzzy.h"

namespace pti {

/// Admission lane of a Request. Lanes are bounded independently; workers
/// always drain interactive work before batch work.
enum class Priority : uint8_t {
  kInteractive = 0,  ///< latency-sensitive; drained first.
  kBatch = 1,        ///< throughput traffic; shed first under overload.
};

/// One probabilistic threshold query, exact or fuzzy. Defaults are an exact
/// interactive query; set k > 0 (and metric) for approximate matching.
struct Request {
  std::string pattern;
  double tau = 0.0;
  FuzzyMetric metric = FuzzyMetric::kMismatch;  ///< used only when k > 0
  int32_t k = 0;                                ///< 0 = exact match
  Priority priority = Priority::kInteractive;
};

}  // namespace pti

#endif  // PTI_ENGINE_REQUEST_H_
