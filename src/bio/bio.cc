#include "bio/bio.h"

#include <cmath>
#include <sstream>

namespace pti {

namespace {
constexpr char kBases[] = {'A', 'C', 'G', 'T'};

int BaseIndex(char c) {
  switch (c) {
    case 'A': case 'a': return 0;
    case 'C': case 'c': return 1;
    case 'G': case 'g': return 2;
    case 'T': case 't': return 3;
    default: return -1;
  }
}

// IUPAC ambiguity code -> set of bases (empty when unknown).
std::string IupacSet(char c) {
  switch (c) {
    case 'A': case 'C': case 'G': case 'T': return std::string(1, c);
    case 'R': return "AG";
    case 'Y': return "CT";
    case 'S': return "CG";
    case 'W': return "AT";
    case 'K': return "GT";
    case 'M': return "AC";
    case 'B': return "CGT";
    case 'D': return "AGT";
    case 'H': return "ACT";
    case 'V': return "ACG";
    case 'N': return "ACGT";
    default: return "";
  }
}
}  // namespace

StatusOr<std::vector<FastqRecord>> ParseFastq(const std::string& content) {
  std::vector<FastqRecord> records;
  std::istringstream in(content);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] != '@') {
      return Status::Corruption("FASTQ line " + std::to_string(line_no) +
                                ": expected '@' header");
    }
    FastqRecord rec;
    rec.id = line.substr(1);
    std::string plus;
    if (!std::getline(in, rec.sequence) || !std::getline(in, plus) ||
        !std::getline(in, rec.quality)) {
      return Status::Corruption("FASTQ record truncated at line " +
                                std::to_string(line_no));
    }
    line_no += 3;
    if (plus.empty() || plus[0] != '+') {
      return Status::Corruption("FASTQ line " + std::to_string(line_no - 1) +
                                ": expected '+' separator");
    }
    if (rec.sequence.size() != rec.quality.size()) {
      return Status::Corruption("FASTQ record '" + rec.id +
                                "': sequence/quality length mismatch");
    }
    records.push_back(std::move(rec));
  }
  return records;
}

StatusOr<UncertainString> FastqToUncertain(const FastqRecord& record) {
  UncertainString s;
  for (size_t i = 0; i < record.sequence.size(); ++i) {
    const char base = record.sequence[i];
    const int q = record.quality[i] - 33;
    if (q < 0 || q > 93) {
      return Status::InvalidArgument("quality score out of Phred+33 range");
    }
    const int idx = BaseIndex(base);
    if (idx < 0) {
      if (base == 'N' || base == 'n') {
        s.AddPosition({{'A', 0.25}, {'C', 0.25}, {'G', 0.25}, {'T', 0.25}});
        continue;
      }
      return Status::InvalidArgument(std::string("unexpected base '") + base +
                                     "' in read");
    }
    const double err = std::pow(10.0, -q / 10.0);
    std::vector<CharOption> opts;
    opts.push_back({static_cast<uint8_t>(kBases[idx]), 1.0 - err});
    for (int b = 0; b < 4; ++b) {
      if (b != idx) {
        opts.push_back({static_cast<uint8_t>(kBases[b]), err / 3.0});
      }
    }
    s.AddPosition(std::move(opts));
  }
  return s;
}

StatusOr<UncertainString> IupacToUncertain(const std::string& dna) {
  UncertainString s;
  for (const char c : dna) {
    const std::string set = IupacSet(static_cast<char>(std::toupper(c)));
    if (set.empty()) {
      return Status::InvalidArgument(std::string("unknown IUPAC code '") + c +
                                     "'");
    }
    std::vector<CharOption> opts;
    const double p = 1.0 / static_cast<double>(set.size());
    for (size_t k = 0; k < set.size(); ++k) {
      double prob = p;
      if (k + 1 == set.size()) {
        prob = 1.0 - p * static_cast<double>(set.size() - 1);
      }
      opts.push_back({static_cast<uint8_t>(set[k]), prob});
    }
    s.AddPosition(std::move(opts));
  }
  return s;
}

}  // namespace pti
