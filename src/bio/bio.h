// Bioinformatics adapters (§2 motivation): FASTQ reads with Phred quality
// scores and IUPAC ambiguity codes both map naturally onto the
// character-level uncertain string model.

#ifndef PTI_BIO_BIO_H_
#define PTI_BIO_BIO_H_

#include <string>
#include <vector>

#include "core/uncertain_string.h"
#include "util/status.h"

namespace pti {

/// One FASTQ record: @id / sequence / + / quality.
struct FastqRecord {
  std::string id;
  std::string sequence;
  std::string quality;  // Phred+33 encoded
};

/// Parses FASTQ content; fails with Corruption on malformed records.
StatusOr<std::vector<FastqRecord>> ParseFastq(const std::string& content);

/// Converts a read into an uncertain string: each base's error probability
/// e = 10^(-Q/10) leaves the called base with probability 1-e and spreads e
/// evenly over the other three bases; 'N' becomes uniform over ACGT.
StatusOr<UncertainString> FastqToUncertain(const FastqRecord& record);

/// Converts a DNA string with IUPAC ambiguity codes (R, Y, S, W, K, M, B, D,
/// H, V, N) into an uncertain string with uniform probabilities over the
/// denoted base sets (the NC-IUB standardization cited in §2).
StatusOr<UncertainString> IupacToUncertain(const std::string& dna);

}  // namespace pti

#endif  // PTI_BIO_BIO_H_
