// WaveletTree: levelwise (pointerless) wavelet tree over an integer
// alphabet, supporting access and rank in O(log sigma).
//
// Level k stores bit k-from-the-MSB of every symbol, with each tree node's
// span stably partitioned (zeros left) going into the next level, so a
// node's interval at every level stays contiguous and is recoverable from
// rank queries alone. This powers the FM-index's backward search (rank of a
// symbol in the BWT).
//
// Every node's interval start and its zero-rank at that start are
// precomputed at construction (the per-level node directory, O(sigma)
// words), so Rank/Access pay exactly one BitVector rank per level instead
// of three, and the two-sided RangeRank — the primitive one backward-search
// step needs — pays at most two.
//
// SaveTo/LoadFrom persist the levels and directories; a v3 load views the
// backing Blob and re-validates every node entry against the (integrity-
// checked) bit vectors, so a forged directory is rejected instead of
// skewing the descent.

#ifndef PTI_SUCCINCT_WAVELET_TREE_H_
#define PTI_SUCCINCT_WAVELET_TREE_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "succinct/bitvector.h"
#include "util/serial.h"
#include "util/span.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace pti {

class WaveletTree {
 public:
  WaveletTree() = default;

  /// Builds over `data` with symbols in [0, alphabet_size). A non-null
  /// multi-thread `pool` parallelizes each level's bit fill (word-aligned
  /// chunks, so concurrent Set calls never share a u64), rank-directory
  /// construction and node partitions; a stable partition is unique, so the
  /// tree is bit-identical at any thread count. Must not be called from a
  /// worker of `pool` itself (the nested Wait would deadlock).
  WaveletTree(Span<const int32_t> data, int32_t alphabet_size,
              ThreadPool* pool = nullptr) {
    n_ = data.size();
    levels_ = 1;
    while ((int64_t{1} << levels_) < alphabet_size) ++levels_;
    bits_.reserve(levels_);
    const bool parallel = pool != nullptr && pool->num_threads() > 1 && n_ > 0;
    // Per-level node boundaries, derived from the symbol histogram: node p
    // at level k holds exactly the symbols whose top k bits equal p, so the
    // partitions can fan out across nodes without scanning for span edges.
    std::vector<std::vector<uint64_t>> starts;
    if (parallel) {
      starts.resize(levels_);
      std::vector<uint64_t> cnt(size_t{1} << levels_, 0);
      for (const int32_t sym : data) ++cnt[sym];
      for (int32_t k = levels_ - 1; k >= 0; --k) {
        for (size_t p = 0; p < (size_t{1} << k); ++p) {
          cnt[p] = cnt[2 * p] + cnt[2 * p + 1];
        }
        cnt.resize(size_t{1} << k);
        starts[k].resize(cnt.size() + 1);
        starts[k][0] = 0;
        for (size_t p = 0; p < cnt.size(); ++p) {
          starts[k][p + 1] = starts[k][p] + cnt[p];
        }
      }
    }
    std::vector<int32_t> cur(data.begin(), data.end());
    std::vector<int32_t> next(n_);
    for (int32_t k = 0; k < levels_; ++k) {
      const int32_t shift = levels_ - 1 - k;
      BitVector bv(n_);
      if (parallel) {
        // Chunks are multiples of 64 bits: disjoint words, race-free Set.
        constexpr size_t kBits = size_t{1} << 16;
        const size_t nchunks = (n_ + kBits - 1) / kBits;
        pool->ParallelFor(nchunks, [&](size_t c) {
          const size_t lo = c * kBits;
          const size_t hi = std::min(n_, lo + kBits);
          for (size_t i = lo; i < hi; ++i) {
            if ((cur[i] >> shift) & 1) bv.Set(i);
          }
        });
      } else {
        for (size_t i = 0; i < n_; ++i) {
          if ((cur[i] >> shift) & 1) bv.Set(i);
        }
      }
      bv.Finish(parallel ? pool : nullptr);
      bits_.push_back(std::move(bv));
      if (k + 1 == levels_) break;
      if (parallel) {
        PartitionLevel(cur, next, starts[k], shift, pool);
      } else {
        // Stable partition within each node span (spans = runs of equal
        // top-(k+1... here: top-k) bits; cur is sorted by its top-k bits).
        size_t lo = 0;
        while (lo < n_) {
          size_t hi = lo;
          const int32_t prefix = cur[lo] >> (shift + 1);
          while (hi < n_ && (cur[hi] >> (shift + 1)) == prefix) ++hi;
          size_t at = lo;
          for (size_t i = lo; i < hi; ++i) {
            if (((cur[i] >> shift) & 1) == 0) next[at++] = cur[i];
          }
          for (size_t i = lo; i < hi; ++i) {
            if ((cur[i] >> shift) & 1) next[at++] = cur[i];
          }
          lo = hi;
        }
      }
      cur.swap(next);
    }
    BuildNodeDirectory(data);
  }

  size_t size() const { return n_; }

  /// Symbol at position i.
  int32_t Access(size_t i) const {
    assert(i < n_);
    int32_t prefix = 0;
    size_t p = i;
    for (int32_t k = 0; k < levels_; ++k) {
      const BitVector& bv = bits_[k];
      const Node& node = nodes_[k][prefix];
      const size_t zeros_before_p = bv.Rank0(node.lo + p) - node.zlo;
      prefix <<= 1;
      if (!bv.Get(node.lo + p)) {
        p = zeros_before_p;
      } else {
        prefix |= 1;
        p = p - zeros_before_p;
      }
    }
    return prefix;
  }

  /// Count of symbol c in the prefix [0, i). i may equal size(). Symbols
  /// outside [0, 2^levels) — including negative ones — never occur in the
  /// data, so their rank is 0 (rather than garbage from a truncated
  /// bit-path descent).
  size_t Rank(int32_t c, size_t i) const {
    assert(i <= n_);
    if (c < 0 || int64_t{c} >= (int64_t{1} << levels_)) return 0;
    int32_t prefix = 0;
    size_t p = i;
    for (int32_t k = 0; k < levels_; ++k) {
      if (p == 0) return 0;
      const int32_t bit = (c >> (levels_ - 1 - k)) & 1;
      const Node& node = nodes_[k][prefix];
      const size_t zeros_before_p = bits_[k].Rank0(node.lo + p) - node.zlo;
      p = bit ? p - zeros_before_p : zeros_before_p;
      prefix = (prefix << 1) | bit;
    }
    return p;
  }

  /// (Rank(c, i), Rank(c, j)) in one traversal (i <= j <= size()): both
  /// endpoints descend the same node path, so the directory lookup is
  /// shared and a degenerate interval costs one rank per level.
  std::pair<size_t, size_t> RangeRank(int32_t c, size_t i, size_t j) const {
    assert(i <= j && j <= n_);
    if (c < 0 || int64_t{c} >= (int64_t{1} << levels_)) return {0, 0};
    int32_t prefix = 0;
    size_t pi = i, pj = j;
    for (int32_t k = 0; k < levels_; ++k) {
      if (pj == 0) return {0, 0};
      const int32_t bit = (c >> (levels_ - 1 - k)) & 1;
      const Node& node = nodes_[k][prefix];
      const size_t zj = bits_[k].Rank0(node.lo + pj) - node.zlo;
      const size_t zi =
          pi == pj ? zj
                   : (pi == 0 ? 0 : bits_[k].Rank0(node.lo + pi) - node.zlo);
      pi = bit ? pi - zi : zi;
      pj = bit ? pj - zj : zj;
      prefix = (prefix << 1) | bit;
    }
    return {pi, pj};
  }

  /// Serializes size, level count, then per level the bit vector and its
  /// node directory.
  void SaveTo(Writer* w) const {
    w->PutU64(static_cast<uint64_t>(n_));
    w->PutU32(static_cast<uint32_t>(levels_));
    for (int32_t k = 0; k < levels_; ++k) {
      bits_[k].SaveTo(w);
      w->PutSpan(nodes_[k].span());
    }
  }

  /// Zero-copy inverse of SaveTo; the caller pins the backing Blob. Every
  /// bit vector passes CheckIntegrity and every directory entry must match
  /// a recomputed rank, so descent arithmetic stays in bounds even under a
  /// forged checksum.
  Status LoadFrom(Reader* r) {
    uint64_t n = 0;
    uint32_t levels = 0;
    PTI_RETURN_IF_ERROR(r->GetU64(&n));
    PTI_RETURN_IF_ERROR(r->GetU32(&levels));
    if (levels == 0 || levels > 31) {
      return Status::Corruption("wavelet tree level count out of range");
    }
    n_ = static_cast<size_t>(n);
    levels_ = static_cast<int32_t>(levels);
    bits_.clear();
    bits_.resize(levels_);
    nodes_.clear();
    nodes_.resize(levels_);
    for (int32_t k = 0; k < levels_; ++k) {
      PTI_RETURN_IF_ERROR(bits_[k].LoadFrom(r));
      if (bits_[k].size() != n_) {
        return Status::Corruption("wavelet tree level size mismatch");
      }
      Span<const Node> level;
      PTI_RETURN_IF_ERROR(r->GetSpan(&level));
      if (level.size() != size_t{1} << k) {
        return Status::Corruption("wavelet tree node directory size mismatch");
      }
      for (const Node& node : level) {
        if (node.lo > n_ || node.zlo != bits_[k].Rank0(node.lo)) {
          return Status::Corruption("wavelet tree node directory mismatch");
        }
      }
      nodes_[k] = VecOrView<Node>::View(level);
    }
    return Status::OK();
  }

  size_t MemoryUsage() const {
    size_t bytes = 0;
    for (const auto& bv : bits_) bytes += bv.MemoryUsage();
    for (const auto& level : nodes_) bytes += level.OwnedBytes();
    return bytes;
  }

 private:
  // Interval start of a node and the count of 0 bits before it at its
  // level; fixed at construction, shared by every query touching the node.
  struct Node {
    uint64_t lo = 0;
    uint64_t zlo = 0;
  };

  /// Stably partitions every node span of `cur` by the bit at `shift` into
  /// `next`, across `pool`. Top levels have few, large spans, so the span
  /// itself splits into fixed chunks (count zeros per chunk, prefix the
  /// offsets, scatter); deeper levels with many spans fan out across nodes
  /// instead. Either way the stable partition is unique, so `next` is the
  /// same bytes the sequential loop produces.
  static void PartitionLevel(const std::vector<int32_t>& cur,
                             std::vector<int32_t>& next,
                             const std::vector<uint64_t>& starts,
                             int32_t shift, ThreadPool* pool) {
    const size_t nnodes = starts.size() - 1;
    const auto partition_node = [&](size_t p) {
      const size_t lo = starts[p];
      const size_t hi = starts[p + 1];
      size_t at = lo;
      for (size_t i = lo; i < hi; ++i) {
        if (((cur[i] >> shift) & 1) == 0) next[at++] = cur[i];
      }
      for (size_t i = lo; i < hi; ++i) {
        if ((cur[i] >> shift) & 1) next[at++] = cur[i];
      }
    };
    if (nnodes >= 2 * pool->num_threads()) {
      pool->ParallelFor(nnodes, partition_node);
      return;
    }
    constexpr size_t kChunk = size_t{1} << 15;
    for (size_t p = 0; p < nnodes; ++p) {
      const size_t lo = starts[p];
      const size_t hi = starts[p + 1];
      if (hi - lo < 2 * kChunk) {
        partition_node(p);
        continue;
      }
      const size_t nchunks = (hi - lo + kChunk - 1) / kChunk;
      std::vector<uint64_t> zeros_before(nchunks + 1, 0);
      pool->ParallelFor(nchunks, [&](size_t c) {
        const size_t a = lo + c * kChunk;
        const size_t b = std::min(hi, a + kChunk);
        uint64_t z = 0;
        for (size_t i = a; i < b; ++i) z += ((cur[i] >> shift) & 1) == 0;
        zeros_before[c + 1] = z;
      });
      for (size_t c = 0; c < nchunks; ++c) {
        zeros_before[c + 1] += zeros_before[c];
      }
      const uint64_t zeros = zeros_before[nchunks];
      pool->ParallelFor(nchunks, [&](size_t c) {
        const size_t a = lo + c * kChunk;
        const size_t b = std::min(hi, a + kChunk);
        size_t zero_at = lo + zeros_before[c];
        size_t one_at = lo + zeros + (a - lo) - zeros_before[c];
        for (size_t i = a; i < b; ++i) {
          if (((cur[i] >> shift) & 1) == 0) {
            next[zero_at++] = cur[i];
          } else {
            next[one_at++] = cur[i];
          }
        }
      });
    }
  }

  void BuildNodeDirectory(Span<const int32_t> data) {
    // Histogram over full symbols, then fold pairwise: level k's node for
    // prefix p spans exactly the symbols whose top k bits equal p, laid
    // out in prefix order.
    std::vector<uint64_t> count(size_t{1} << levels_, 0);
    for (const int32_t sym : data) ++count[sym];
    nodes_.clear();
    nodes_.resize(levels_);
    for (int32_t k = levels_ - 1; k >= 0; --k) {
      // Fold the finer counts pairwise down to k-bit prefix counts.
      for (size_t p = 0; p < (size_t{1} << k); ++p) {
        count[p] = count[2 * p] + count[2 * p + 1];
      }
      count.resize(size_t{1} << k);
      std::vector<Node> level(count.size());
      uint64_t at = 0;
      for (size_t p = 0; p < level.size(); ++p) {
        level[p].lo = at;
        at += count[p];
      }
      for (auto& node : level) node.zlo = bits_[k].Rank0(node.lo);
      nodes_[k] = VecOrView<Node>(std::move(level));
    }
  }

  size_t n_ = 0;
  int32_t levels_ = 0;
  std::vector<BitVector> bits_;
  std::vector<VecOrView<Node>> nodes_;  // nodes_[k] has 2^k entries
};

}  // namespace pti

#endif  // PTI_SUCCINCT_WAVELET_TREE_H_
