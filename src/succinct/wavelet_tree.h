// WaveletTree: levelwise (pointerless) wavelet tree over an integer
// alphabet, supporting access and rank in O(log sigma).
//
// Level k stores bit k-from-the-MSB of every symbol, with each tree node's
// span stably partitioned (zeros left) going into the next level, so a
// node's interval at every level stays contiguous and is recoverable from
// rank queries alone. This powers the FM-index's backward search (rank of a
// symbol in the BWT).

#ifndef PTI_SUCCINCT_WAVELET_TREE_H_
#define PTI_SUCCINCT_WAVELET_TREE_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "succinct/bitvector.h"

namespace pti {

class WaveletTree {
 public:
  WaveletTree() = default;

  /// Builds over `data` with symbols in [0, alphabet_size).
  WaveletTree(const std::vector<int32_t>& data, int32_t alphabet_size) {
    n_ = data.size();
    levels_ = 1;
    while ((int64_t{1} << levels_) < alphabet_size) ++levels_;
    bits_.reserve(levels_);
    std::vector<int32_t> cur = data;
    std::vector<int32_t> next(n_);
    for (int32_t k = 0; k < levels_; ++k) {
      const int32_t shift = levels_ - 1 - k;
      BitVector bv(n_);
      for (size_t i = 0; i < n_; ++i) {
        if ((cur[i] >> shift) & 1) bv.Set(i);
      }
      bv.Finish();
      bits_.push_back(std::move(bv));
      if (k + 1 == levels_) break;
      // Stable partition within each node span (spans = runs of equal
      // top-(k+1... here: top-k) bits; cur is sorted by its top-k bits).
      size_t lo = 0;
      while (lo < n_) {
        size_t hi = lo;
        const int32_t prefix = cur[lo] >> (shift + 1);
        while (hi < n_ && (cur[hi] >> (shift + 1)) == prefix) ++hi;
        size_t at = lo;
        for (size_t i = lo; i < hi; ++i) {
          if (((cur[i] >> shift) & 1) == 0) next[at++] = cur[i];
        }
        for (size_t i = lo; i < hi; ++i) {
          if ((cur[i] >> shift) & 1) next[at++] = cur[i];
        }
        lo = hi;
      }
      cur.swap(next);
    }
  }

  size_t size() const { return n_; }

  /// Symbol at position i.
  int32_t Access(size_t i) const {
    assert(i < n_);
    int32_t sym = 0;
    size_t lo = 0, hi = n_, p = i;
    for (int32_t k = 0; k < levels_; ++k) {
      const BitVector& bv = bits_[k];
      const size_t z_lo = bv.Rank0(lo);
      const size_t z_hi = bv.Rank0(hi);
      const size_t zeros = z_hi - z_lo;
      const size_t zeros_before_p = bv.Rank0(lo + p) - z_lo;
      sym <<= 1;
      if (!bv.Get(lo + p)) {
        p = zeros_before_p;
        hi = lo + zeros;
      } else {
        sym |= 1;
        p = p - zeros_before_p;
        lo = lo + zeros;
      }
    }
    return sym;
  }

  /// Count of symbol c in the prefix [0, i). i may equal size().
  size_t Rank(int32_t c, size_t i) const {
    assert(i <= n_);
    size_t lo = 0, hi = n_, p = i;
    for (int32_t k = 0; k < levels_; ++k) {
      const int32_t shift = levels_ - 1 - k;
      const BitVector& bv = bits_[k];
      const size_t z_lo = bv.Rank0(lo);
      const size_t z_hi = bv.Rank0(hi);
      const size_t z_p = bv.Rank0(lo + p);
      const size_t zeros = z_hi - z_lo;
      if (((c >> shift) & 1) == 0) {
        p = z_p - z_lo;
        hi = lo + zeros;
      } else {
        p = (p) - (z_p - z_lo);
        lo = lo + zeros;
      }
      if (p == 0) return 0;
    }
    return p;
  }

  size_t MemoryUsage() const {
    size_t bytes = 0;
    for (const auto& bv : bits_) bytes += bv.MemoryUsage();
    return bytes;
  }

 private:
  size_t n_ = 0;
  int32_t levels_ = 0;
  std::vector<BitVector> bits_;
};

}  // namespace pti

#endif  // PTI_SUCCINCT_WAVELET_TREE_H_
