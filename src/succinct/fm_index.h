// FmIndex: backward-search pattern locator over a BWT + wavelet tree.
//
// Stands in for the compressed suffix array the paper uses for its space
// experiments (§8.7, Belazzougui-Navarro [2]): given the suffix array the
// indexes already keep, the FM-index answers "suffix range of pattern p" in
// O(m log sigma) without the suffix tree's node arrays — enabling the
// compact index mode (IndexOptions::compact) that drops the tree after
// construction.
//
// Construction takes the text and its suffix array; the conceptual
// terminator $ (the unique smallest symbol, implicit in our suffix order) is
// materialized in the BWT by shifting all symbols up by one.
//
// Besides the one-shot Range(), the search is exposed stepwise: ExtendLeft
// prepends one symbol to a pattern whose SA' range is already known, which
// lets batched callers resume from a shared suffix instead of re-running
// the whole backward search per pattern (core/substring_index.cc's
// QueryBatch does exactly that, mirroring tree mode's prefix-resumed locus
// descent).

#ifndef PTI_SUCCINCT_FM_INDEX_H_
#define PTI_SUCCINCT_FM_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "succinct/wavelet_tree.h"
#include "util/serial.h"
#include "util/span.h"
#include "util/status.h"

namespace pti {

class FmIndex {
 public:
  FmIndex() = default;

  /// Builds over `text` (symbols in [0, alphabet_size)) with its suffix
  /// array `sa` (the BuildSuffixArray convention: shorter prefix first).
  /// A non-null multi-thread `pool` parallelizes the BWT gather and the
  /// wavelet-tree build; the result is bit-identical at any thread count.
  /// Must not be called from a worker of `pool` itself.
  FmIndex(Span<const int32_t> text, Span<const int32_t> sa,
          int32_t alphabet_size, ThreadPool* pool = nullptr) {
    const size_t n = text.size();
    // BWT of text$ in SA' order, where SA' = [n] + sa (the terminator's
    // suffix sorts first). Symbols are shifted by one so $ = 0.
    std::vector<int32_t> bwt(n + 1);
    bwt[0] = n > 0 ? text[n - 1] + 1 : 0;
    if (pool != nullptr && pool->num_threads() > 1) {
      constexpr size_t kChunk = size_t{1} << 16;
      const size_t nchunks = (n + kChunk - 1) / kChunk;
      pool->ParallelFor(nchunks, [&](size_t c) {
        const size_t lo = c * kChunk;
        const size_t hi = std::min(n, lo + kChunk);
        for (size_t i = lo; i < hi; ++i) {
          bwt[i + 1] = sa[i] > 0 ? text[sa[i] - 1] + 1 : 0;  // 0 = $
        }
      });
    } else {
      for (size_t i = 0; i < n; ++i) {
        bwt[i + 1] = sa[i] > 0 ? text[sa[i] - 1] + 1 : 0;  // 0 = $
      }
    }
    const int32_t sigma = alphabet_size + 1;
    std::vector<int64_t> counts(sigma + 2, 0);
    counts[0 + 1] = 1;  // the terminator
    for (size_t i = 0; i < n; ++i) counts[text[i] + 1 + 1]++;
    for (int32_t c = 0; c <= sigma; ++c) counts[c + 1] += counts[c];
    counts_ = VecOrView<int64_t>(std::move(counts));
    wt_ = WaveletTree(bwt, sigma, pool);
  }

  /// Length of the BWT (text length + 1): the SA' range of the empty
  /// pattern is [0, bwt_size()).
  size_t bwt_size() const { return wt_.size(); }

  /// One backward-search step in SA' coordinates: narrows [*sp, *ep) to
  /// the suffixes preceded by BWT symbol `sym` (a text symbol + 1; 0 is
  /// the terminator and cannot be extended with). Returns false — leaving
  /// *sp/*ep untouched — when sym is out of [1, alphabet] or the extended
  /// range is empty.
  bool ExtendLeft(int64_t sym, int64_t* sp, int64_t* ep) const {
    if (sym < 1 || sym + 1 >= static_cast<int64_t>(counts_.size())) {
      return false;
    }
    const auto [rank_sp, rank_ep] =
        wt_.RangeRank(static_cast<int32_t>(sym), static_cast<size_t>(*sp),
                      static_cast<size_t>(*ep));
    if (rank_sp >= rank_ep) return false;
    *sp = counts_[sym] + static_cast<int64_t>(rank_sp);
    *ep = counts_[sym] + static_cast<int64_t>(rank_ep);
    // No-ops on honest data (rank_ep is at most the symbol count): keep the
    // range inside [0, bwt_size] so downstream suffix-array indexing stays
    // in bounds even if a forged checksum smuggled in skewed structures.
    if (*ep > counts_[sym + 1]) *ep = counts_[sym + 1];
    if (*sp > *ep) *sp = *ep;
    return true;
  }

  /// Converts a non-empty SA' range to the coordinates of the `sa` passed
  /// at construction (dropping the terminator slot: every occurrence of a
  /// non-empty pattern maps to SA' index >= 1; only the empty pattern's
  /// range legitimately starts at 0). Returns nullopt when nothing but the
  /// terminator slot remains.
  static std::optional<std::pair<int32_t, int32_t>> ToSaRange(int64_t sp,
                                                              int64_t ep) {
    const int32_t begin = static_cast<int32_t>(sp == 0 ? 0 : sp - 1);
    const int32_t end = static_cast<int32_t>(ep - 1);
    if (begin >= end) return std::nullopt;
    return std::make_pair(begin, end);
  }

  /// Suffix-array range [begin, end) of the pattern (same coordinates as
  /// the `sa` passed at construction), or nullopt when absent — including
  /// patterns carrying symbols outside [0, alphabet), negative ones among
  /// them (before the explicit guard, -1 mapped onto the terminator and
  /// could report a bogus match). An empty pattern yields the full range.
  std::optional<std::pair<int32_t, int32_t>> Range(
      const std::vector<int32_t>& pattern) const {
    int64_t sp = 0;
    int64_t ep = static_cast<int64_t>(wt_.size());
    for (size_t k = pattern.size(); k-- > 0;) {
      if (pattern[k] < 0 || !ExtendLeft(int64_t{pattern[k]} + 1, &sp, &ep)) {
        return std::nullopt;
      }
    }
    return ToSaRange(sp, ep);
  }

  /// BWT symbols of byte characters (returned un-shifted, i.e. as text
  /// symbols in [0, 256)) that occur at least once in the indexed text —
  /// the substitution/insertion candidate set for the approximate backward
  /// search (core/fuzzy.cc). Sentinels are excluded by construction: they
  /// sit above the byte range and no variant may contain one.
  std::vector<int32_t> OccupiedByteSymbols() const {
    std::vector<int32_t> symbols;
    const int64_t limit =
        std::min<int64_t>(257, static_cast<int64_t>(counts_.size()) - 1);
    for (int64_t sym = 1; sym < limit; ++sym) {
      if (counts_[sym + 1] > counts_[sym]) {
        symbols.push_back(static_cast<int32_t>(sym - 1));
      }
    }
    return symbols;
  }

  /// Serializes the count table and the wavelet tree over the BWT.
  void SaveTo(Writer* w) const {
    w->PutSpan(counts_.span());
    wt_.SaveTo(w);
  }

  /// Zero-copy inverse of SaveTo; the caller pins the backing Blob. The
  /// count table must be nonnegative, monotone nondecreasing and end at
  /// bwt_size() — the properties ExtendLeft's range arithmetic relies on.
  Status LoadFrom(Reader* r) {
    Span<const int64_t> counts;
    PTI_RETURN_IF_ERROR(r->GetSpan(&counts));
    if (counts.size() < 2) {
      return Status::Corruption("FM count table too short");
    }
    if (counts.front() != 0) {
      return Status::Corruption("FM count table does not start at zero");
    }
    for (size_t c = 1; c < counts.size(); ++c) {
      if (counts[c] < counts[c - 1]) {
        return Status::Corruption("FM count table not monotone");
      }
    }
    PTI_RETURN_IF_ERROR(wt_.LoadFrom(r));
    if (counts.back() != static_cast<int64_t>(wt_.size())) {
      return Status::Corruption("FM count table inconsistent with BWT");
    }
    counts_ = VecOrView<int64_t>::View(counts);
    return Status::OK();
  }

  size_t MemoryUsage() const { return wt_.MemoryUsage() + counts_.OwnedBytes(); }

 private:
  WaveletTree wt_;
  VecOrView<int64_t> counts_;
};

}  // namespace pti

#endif  // PTI_SUCCINCT_FM_INDEX_H_
