// BitVector: plain bit vector with O(1) rank and O(log n) select.
//
// Rank uses two-level counters (512-bit superblocks of absolute counts +
// 64-bit word popcounts within) for ~25% space overhead; good enough for the
// wavelet tree, whose queries are rank-dominated.

#ifndef PTI_SUCCINCT_BITVECTOR_H_
#define PTI_SUCCINCT_BITVECTOR_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace pti {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(size_t n) : n_(n), words_((n + 63) / 64, 0) {}

  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }

  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  size_t size() const { return n_; }

  /// Must be called once after all Set() calls and before any rank/select.
  void Finish() {
    const size_t nwords = words_.size();
    super_.assign(nwords / 8 + 1, 0);
    uint64_t total = 0;
    for (size_t w = 0; w < nwords; ++w) {
      if (w % 8 == 0) super_[w / 8] = total;
      total += static_cast<uint64_t>(__builtin_popcountll(words_[w]));
    }
    // The loop covers super_[nwords / 8] unless nwords is a multiple of 8,
    // in which case the trailing entry (used by Rank1(size())) is set here.
    if (nwords % 8 == 0) super_[nwords / 8] = total;
    ones_ = total;
  }

  /// Number of 1 bits in [0, i). i may equal size().
  size_t Rank1(size_t i) const {
    assert(i <= n_);
    const size_t w = i >> 6;
    size_t count = super_[w / 8];
    for (size_t k = (w / 8) * 8; k < w; ++k) {
      count += static_cast<size_t>(__builtin_popcountll(words_[k]));
    }
    if (i & 63) {
      count += static_cast<size_t>(
          __builtin_popcountll(words_[w] & ((uint64_t{1} << (i & 63)) - 1)));
    }
    return count;
  }

  /// Number of 0 bits in [0, i).
  size_t Rank0(size_t i) const { return i - Rank1(i); }

  size_t ones() const { return ones_; }

  /// Position of the (k+1)-th 1 bit (k 0-based; k < ones()). O(log n).
  size_t Select1(size_t k) const {
    assert(k < ones_);
    // Binary search over superblocks, then scan words.
    size_t lo = 0, hi = super_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi + 1) / 2;
      if (super_[mid] <= k) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    size_t remaining = k - super_[lo];
    for (size_t w = lo * 8; w < words_.size(); ++w) {
      const size_t pc = static_cast<size_t>(__builtin_popcountll(words_[w]));
      if (remaining < pc) {
        // Scan bits of this word.
        uint64_t word = words_[w];
        for (size_t b = 0;; ++b) {
          if (word & 1) {
            if (remaining == 0) return w * 64 + b;
            --remaining;
          }
          word >>= 1;
        }
      }
      remaining -= pc;
    }
    assert(false);
    return n_;
  }

  size_t MemoryUsage() const {
    return words_.capacity() * sizeof(uint64_t) +
           super_.capacity() * sizeof(uint64_t);
  }

 private:
  size_t n_ = 0;
  size_t ones_ = 0;
  std::vector<uint64_t> words_;
  std::vector<uint64_t> super_;  // absolute rank at each 8-word superblock
};

}  // namespace pti

#endif  // PTI_SUCCINCT_BITVECTOR_H_
