// BitVector: plain bit vector with O(1) rank and sampled select.
//
// Rank uses an interleaved directory in the rank9 style (Vigna 2008): each
// 8-word (512-bit) superblock owns two adjacent u64s — the absolute 1-count
// before the superblock, and seven 9-bit cumulative in-superblock word
// counts packed into the second word. Both land on one cache line, so
// Rank1 is one directory load plus one partial-word popcount instead of a
// superblock load and up to seven popcounts. Select1 samples every 512th
// 1 bit to bound its superblock binary search to a constant expected range,
// then walks the packed counts to the word.
//
// Storage is VecOrView: a built vector owns its arrays; one loaded from a
// v3 container views the backing Blob (no copy, no Finish()). LoadFrom
// re-derives the directory and samples from the stored words and compares
// (CheckIntegrity), so rank/select answers are always consistent with the
// bits even if a forged checksum smuggles in a doctored directory; queries
// additionally clamp their inputs so out-of-range arguments degrade to
// harmless answers instead of out-of-bounds reads.

#ifndef PTI_SUCCINCT_BITVECTOR_H_
#define PTI_SUCCINCT_BITVECTOR_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/serial.h"
#include "util/span.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace pti {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(size_t n)
      : n_(n), words_(std::vector<uint64_t>((n + 63) / 64, 0)) {}

  void Set(size_t i) {
    words_.mutable_at(i >> 6) |= uint64_t{1} << (i & 63);
  }

  bool Get(size_t i) const {
    if (i >= n_) return false;
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  size_t size() const { return n_; }

  /// Must be called once after all Set() calls and before any rank/select.
  /// A non-null multi-thread `pool` parallelizes the per-superblock popcount
  /// pass; the absolute-count prefix sum and select sampling stay sequential
  /// (integer sums, so the directory is identical at any thread count).
  void Finish(ThreadPool* pool = nullptr) {
    const size_t nwords = words_.size();
    // One trailing superblock entry so Rank1(size()) stays in bounds.
    const size_t nsuper = nwords / 8 + 1;
    std::vector<uint64_t> dir(2 * nsuper, 0);
    // Pass 1: each superblock's packed in-superblock counts and 1-total,
    // independent per superblock.
    std::vector<uint64_t> sb_ones(nsuper, 0);
    const auto count_range = [&](size_t lo, size_t hi) {
      for (size_t sb = lo; sb < hi; ++sb) {
        uint64_t packed = 0;
        uint64_t in_sb = 0;
        for (size_t k = 0; k < 8; ++k) {
          // Field k-1 (bits [9(k-1), 9k)) = ones in words [8sb, 8sb+k);
          // word 0 needs no field and bit 63 stays 0 for the shift trick.
          if (k > 0) packed |= in_sb << (9 * (k - 1));
          const size_t w = sb * 8 + k;
          if (w < nwords) {
            in_sb += static_cast<uint64_t>(__builtin_popcountll(words_[w]));
          }
        }
        dir[2 * sb + 1] = packed;
        sb_ones[sb] = in_sb;
      }
    };
    constexpr size_t kSuperChunk = 1 << 12;  // 2 MiB of bits per task
    if (pool != nullptr && pool->num_threads() > 1 &&
        nsuper > kSuperChunk) {
      const size_t nchunks = (nsuper + kSuperChunk - 1) / kSuperChunk;
      pool->ParallelFor(nchunks, [&](size_t c) {
        count_range(c * kSuperChunk,
                    std::min(nsuper, (c + 1) * kSuperChunk));
      });
    } else {
      count_range(0, nsuper);
    }
    // Pass 2: absolute counts are a prefix sum over the superblock totals.
    uint64_t total = 0;
    for (size_t sb = 0; sb < nsuper; ++sb) {
      dir[2 * sb] = total;
      total += sb_ones[sb];
    }
    ones_ = total;
    dir_ = VecOrView<uint64_t>(std::move(dir));
    // Select sampling: superblock holding every 512th 1 bit.
    std::vector<uint32_t> samples;
    uint64_t target = 0;
    for (size_t sb = 0; sb < nsuper && target < ones_; ++sb) {
      const uint64_t end = sb + 1 < nsuper ? dir_[2 * (sb + 1)] : ones_;
      while (target < end) {
        samples.push_back(static_cast<uint32_t>(sb));
        target += kSelectSampleRate;
      }
    }
    select_sample_ = VecOrView<uint32_t>(std::move(samples));
  }

  /// Number of 1 bits in [0, i). i may equal size(); larger arguments clamp
  /// to size() (callers of loaded structures may pass derived offsets).
  size_t Rank1(size_t i) const {
    if (i > n_) i = n_;
    const size_t w = i >> 6;
    const size_t sb = w >> 3;
    // Branchless packed-field read: t wraps to 2^64-1 for the superblock's
    // first word, turning the shift into >> 63 — and bit 63 is always 0.
    // The wrap must happen in 64 bits (size_t may be narrower).
    const uint64_t t = static_cast<uint64_t>(w & 7) - 1;
    size_t count =
        dir_[2 * sb] +
        ((dir_[2 * sb + 1] >> ((t + ((t >> 60) & 8)) * 9)) & 0x1FF);
    if (i & 63) {
      count += static_cast<size_t>(
          __builtin_popcountll(words_[w] & ((uint64_t{1} << (i & 63)) - 1)));
    }
    return count;
  }

  /// Number of 0 bits in [0, i).
  size_t Rank0(size_t i) const {
    if (i > n_) i = n_;
    return i - Rank1(i);
  }

  size_t ones() const { return ones_; }

  /// Position of the (k+1)-th 1 bit (k 0-based), or size() when k >= ones()
  /// — out-of-range ranks are answerable, not undefined behavior.
  size_t Select1(size_t k) const {
    if (k >= ones_) return n_;
    // The sample brackets the superblock search to a constant expected span.
    size_t lo = select_sample_[k / kSelectSampleRate];
    const size_t next = k / kSelectSampleRate + 1;
    size_t hi = next < select_sample_.size() ? select_sample_[next]
                                             : dir_.size() / 2 - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi + 1) / 2;
      if (dir_[2 * mid] <= k) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    uint64_t remaining = k - dir_[2 * lo];
    // Walk the packed cumulative counts to the word.
    const uint64_t packed = dir_[2 * lo + 1];
    size_t sub = 0;
    while (sub < 7 && ((packed >> (9 * sub)) & 0x1FF) <= remaining) ++sub;
    if (sub > 0) remaining -= (packed >> (9 * (sub - 1))) & 0x1FF;
    const size_t w = lo * 8 + sub;
    return w * 64 + SelectInWord(words_[w], remaining);
  }

  /// Serializes bits + derived arrays (aligned writer: the arrays become
  /// zero-copy views on v3 load).
  void SaveTo(Writer* w) const {
    w->PutU64(static_cast<uint64_t>(n_));
    w->PutU64(static_cast<uint64_t>(ones_));
    w->PutSpan(words_.span());
    w->PutSpan(dir_.span());
    w->PutSpan(select_sample_.span());
  }

  /// Zero-copy inverse of SaveTo. The loaded vector views the reader's
  /// buffer; the caller pins the backing Blob. Runs CheckIntegrity, so a
  /// forged directory or select table is rejected up front.
  Status LoadFrom(Reader* r) {
    uint64_t n = 0, ones = 0;
    PTI_RETURN_IF_ERROR(r->GetU64(&n));
    PTI_RETURN_IF_ERROR(r->GetU64(&ones));
    Span<const uint64_t> words, dir;
    Span<const uint32_t> samples;
    PTI_RETURN_IF_ERROR(r->GetSpan(&words));
    PTI_RETURN_IF_ERROR(r->GetSpan(&dir));
    PTI_RETURN_IF_ERROR(r->GetSpan(&samples));
    n_ = static_cast<size_t>(n);
    ones_ = static_cast<size_t>(ones);
    words_ = VecOrView<uint64_t>::View(words);
    dir_ = VecOrView<uint64_t>::View(dir);
    select_sample_ = VecOrView<uint32_t>::View(samples);
    return CheckIntegrity();
  }

  /// Recomputes the rank directory, select samples and 1-count from the
  /// stored words and compares with what was loaded (O(#words), no
  /// allocation). Also requires bits beyond size() to be zero, so phantom
  /// trailing bits cannot inflate ranks.
  Status CheckIntegrity() const {
    const size_t nwords = words_.size();
    if (nwords != (n_ + 63) / 64) {
      return Status::Corruption("bit vector word count mismatch");
    }
    const size_t nsuper = nwords / 8 + 1;
    if (dir_.size() != 2 * nsuper) {
      return Status::Corruption("bit vector rank directory size mismatch");
    }
    if (n_ % 64 != 0 && nwords > 0 && (words_[nwords - 1] >> (n_ % 64)) != 0) {
      return Status::Corruption("bit vector trailing bits not zero");
    }
    uint64_t total = 0;
    for (size_t sb = 0; sb < nsuper; ++sb) {
      if (dir_[2 * sb] != total) {
        return Status::Corruption("bit vector rank directory mismatch");
      }
      uint64_t packed = 0;
      uint64_t in_sb = 0;
      for (size_t k = 0; k < 8; ++k) {
        if (k > 0) packed |= in_sb << (9 * (k - 1));
        const size_t w = sb * 8 + k;
        if (w < nwords) {
          in_sb += static_cast<uint64_t>(__builtin_popcountll(words_[w]));
        }
      }
      if (dir_[2 * sb + 1] != packed) {
        return Status::Corruption("bit vector rank directory mismatch");
      }
      total += in_sb;
    }
    if (ones_ != total) {
      return Status::Corruption("bit vector 1-count mismatch");
    }
    const size_t expect =
        (ones_ + kSelectSampleRate - 1) / kSelectSampleRate;
    if (select_sample_.size() != expect) {
      return Status::Corruption("bit vector select table size mismatch");
    }
    uint64_t target = 0;
    size_t j = 0;
    for (size_t sb = 0; sb < nsuper && target < ones_; ++sb) {
      const uint64_t end = sb + 1 < nsuper ? dir_[2 * (sb + 1)] : ones_;
      while (target < end) {
        if (select_sample_[j] != sb) {
          return Status::Corruption("bit vector select table mismatch");
        }
        ++j;
        target += kSelectSampleRate;
      }
    }
    return Status::OK();
  }

  /// Bytes owned by this vector itself (0 when viewing a loaded container).
  size_t MemoryUsage() const {
    return words_.OwnedBytes() + dir_.OwnedBytes() +
           select_sample_.OwnedBytes();
  }

 private:
  static constexpr uint64_t kSelectSampleRate = 512;

  /// Position of the (r+1)-th 1 bit of `word` (r < popcount(word)).
  static size_t SelectInWord(uint64_t word, uint64_t r) {
    size_t base = 0;
    while (true) {
      const uint64_t pc =
          static_cast<uint64_t>(__builtin_popcountll(word & 0xFF));
      if (r < pc) break;
      r -= pc;
      word >>= 8;
      base += 8;
    }
    for (uint64_t b = word & 0xFF;; b >>= 1, ++base) {
      if (b & 1) {
        if (r == 0) return base;
        --r;
      }
    }
  }

  size_t n_ = 0;
  size_t ones_ = 0;
  VecOrView<uint64_t> words_;
  // Interleaved rank directory: entry 2s = absolute count before superblock
  // s, entry 2s+1 = packed 9-bit cumulative counts of words 1..7 within it.
  VecOrView<uint64_t> dir_;
  // select_sample_[j] = superblock containing 1 bit number j*512.
  VecOrView<uint32_t> select_sample_;
};

}  // namespace pti

#endif  // PTI_SUCCINCT_BITVECTOR_H_
