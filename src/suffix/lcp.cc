#include "suffix/lcp.h"

#include <algorithm>
#include <cassert>

#include "util/thread_pool.h"

namespace pti {

std::vector<int32_t> BuildLcpArray(Span<const int32_t> text,
                                   Span<const int32_t> sa) {
  const int32_t n = static_cast<int32_t>(text.size());
  assert(sa.size() == text.size());
  std::vector<int32_t> lcp(n, 0);
  if (n == 0) return lcp;
  std::vector<int32_t> rank(n);
  for (int32_t i = 0; i < n; ++i) rank[sa[i]] = i;
  int32_t h = 0;
  for (int32_t i = 0; i < n; ++i) {
    if (rank[i] > 0) {
      const int32_t j = sa[rank[i] - 1];
      while (i + h < n && j + h < n && text[i + h] == text[j + h]) ++h;
      lcp[rank[i]] = h;
      if (h > 0) --h;
    } else {
      h = 0;
    }
  }
  return lcp;
}

std::vector<int32_t> BuildLcpArrayParallel(Span<const int32_t> text,
                                           Span<const int32_t> sa,
                                           ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() <= 1) {
    return BuildLcpArray(text, sa);
  }
  const int32_t n = static_cast<int32_t>(text.size());
  assert(sa.size() == text.size());
  std::vector<int32_t> lcp(n, 0);
  if (n == 0) return lcp;

  // Φ[sa[i]] = sa[i-1]: the suffix lexicographically preceding each suffix,
  // addressed by text position. Sequential O(n).
  std::vector<int32_t> phi(n);
  phi[sa[0]] = -1;
  for (int32_t i = 1; i < n; ++i) phi[sa[i]] = sa[i - 1];

  // PLCP in text order. Chunks are a fixed size (independent of the thread
  // count) and each restarts its match length h at zero, so every plcp[i] is
  // the same unique value no matter how the chunks are scheduled.
  std::vector<int32_t> plcp(n);
  constexpr int32_t kChunk = 1 << 15;
  const size_t num_chunks =
      (static_cast<size_t>(n) + kChunk - 1) / static_cast<size_t>(kChunk);
  pool->ParallelFor(num_chunks, [&](size_t c) {
    const int32_t lo = static_cast<int32_t>(c) * kChunk;
    const int32_t hi = std::min<int32_t>(lo + kChunk, n);
    int32_t h = 0;
    for (int32_t i = lo; i < hi; ++i) {
      const int32_t j = phi[i];
      if (j < 0) {
        plcp[i] = 0;
        h = 0;
        continue;
      }
      while (i + h < n && j + h < n && text[i + h] == text[j + h]) ++h;
      plcp[i] = h;
      if (h > 0) --h;
    }
  });

  // Scatter back to suffix-array order; writes are disjoint by construction.
  pool->ParallelFor(num_chunks, [&](size_t c) {
    const int32_t lo = static_cast<int32_t>(c) * kChunk;
    const int32_t hi = std::min<int32_t>(lo + kChunk, n);
    for (int32_t i = lo; i < hi; ++i) lcp[i] = plcp[sa[i]];
  });
  return lcp;
}

}  // namespace pti
