#include "suffix/lcp.h"

#include <cassert>

namespace pti {

std::vector<int32_t> BuildLcpArray(Span<const int32_t> text,
                                   Span<const int32_t> sa) {
  const int32_t n = static_cast<int32_t>(text.size());
  assert(sa.size() == text.size());
  std::vector<int32_t> lcp(n, 0);
  if (n == 0) return lcp;
  std::vector<int32_t> rank(n);
  for (int32_t i = 0; i < n; ++i) rank[sa[i]] = i;
  int32_t h = 0;
  for (int32_t i = 0; i < n; ++i) {
    if (rank[i] > 0) {
      const int32_t j = sa[rank[i] - 1];
      while (i + h < n && j + h < n && text[i + h] == text[j + h]) ++h;
      lcp[rank[i]] = h;
      if (h > 0) --h;
    } else {
      h = 0;
    }
  }
  return lcp;
}

}  // namespace pti
