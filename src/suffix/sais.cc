#include "suffix/sais.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace pti {
namespace {

// Core SA-IS over s[0..n): values in [0, K), s[n-1] must be the unique
// smallest character (the caller appends a virtual sentinel). Writes the full
// suffix array into sa[0..n).
void SaIsCore(const int32_t* s, int32_t* sa, int32_t n, int32_t K) {
  assert(n >= 1);
  if (n == 1) {
    sa[0] = 0;
    return;
  }

  // Classify suffixes: S-type iff smaller than the suffix to its right.
  std::vector<bool> is_s(n);
  is_s[n - 1] = true;
  for (int32_t i = n - 2; i >= 0; --i) {
    is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
  }
  auto is_lms = [&](int32_t i) { return i > 0 && is_s[i] && !is_s[i - 1]; };

  std::vector<int32_t> bkt(K, 0);
  for (int32_t i = 0; i < n; ++i) bkt[s[i]]++;
  std::vector<int32_t> heads(K), tails(K);
  auto compute_heads = [&] {
    int32_t sum = 0;
    for (int32_t c = 0; c < K; ++c) {
      heads[c] = sum;
      sum += bkt[c];
    }
  };
  auto compute_tails = [&] {
    int32_t sum = 0;
    for (int32_t c = 0; c < K; ++c) {
      sum += bkt[c];
      tails[c] = sum;  // one past the end of bucket c
    }
  };

  // Induced sort: assumes LMS suffixes (or their proxies) already sit at
  // bucket tails; fills in L-types left-to-right then S-types right-to-left.
  auto induce = [&] {
    compute_heads();
    for (int32_t i = 0; i < n; ++i) {
      const int32_t j = sa[i] - 1;
      if (sa[i] > 0 && !is_s[j]) sa[heads[s[j]]++] = j;
    }
    compute_tails();
    for (int32_t i = n - 1; i >= 0; --i) {
      const int32_t j = sa[i] - 1;
      if (sa[i] > 0 && is_s[j]) sa[--tails[s[j]]] = j;
    }
  };

  // Stage 1: place LMS positions at bucket tails in text order; induced
  // sorting then sorts the LMS *substrings* (Nong et al., Theorem 3.12).
  std::fill(sa, sa + n, -1);
  compute_tails();
  for (int32_t i = 1; i < n; ++i) {
    if (is_lms(i)) sa[--tails[s[i]]] = i;
  }
  induce();

  // Compact the sorted LMS positions to the front.
  int32_t n1 = 0;
  for (int32_t i = 0; i < n; ++i) {
    if (sa[i] > 0 && is_lms(sa[i])) sa[n1++] = sa[i];
  }

  // Name LMS substrings in sorted order; equal substrings share a name.
  std::fill(sa + n1, sa + n, -1);
  int32_t names = 0;
  int32_t prev = -1;
  for (int32_t i = 0; i < n1; ++i) {
    const int32_t pos = sa[i];
    bool differ = (prev < 0);
    if (!differ) {
      for (int32_t d = 0;; ++d) {
        if (s[prev + d] != s[pos + d] || is_s[prev + d] != is_s[pos + d]) {
          differ = true;
          break;
        }
        if (d > 0 && (is_lms(prev + d) || is_lms(pos + d))) {
          differ = !(is_lms(prev + d) && is_lms(pos + d));
          break;
        }
      }
    }
    if (differ) {
      ++names;
      prev = pos;
    }
    sa[n1 + pos / 2] = names - 1;  // LMS positions are >= 2 apart
  }
  std::vector<int32_t> s1(n1);
  for (int32_t i = n - 1, j = n1 - 1; i >= n1; --i) {
    if (sa[i] >= 0) s1[j--] = sa[i];
  }

  // LMS positions in increasing text order (s1[k] names the k-th of these).
  std::vector<int32_t> lms_pos;
  lms_pos.reserve(n1);
  for (int32_t i = 1; i < n; ++i) {
    if (is_lms(i)) lms_pos.push_back(i);
  }

  // Stage 2: order the LMS suffixes, recursing only if names collide.
  std::vector<int32_t> sa1(n1);
  if (names < n1) {
    SaIsCore(s1.data(), sa1.data(), n1, names);
  } else {
    for (int32_t i = 0; i < n1; ++i) sa1[s1[i]] = i;
  }

  // Stage 3: place LMS suffixes in their true order and induce everything.
  std::fill(sa, sa + n, -1);
  compute_tails();
  for (int32_t i = n1 - 1; i >= 0; --i) {
    const int32_t j = lms_pos[sa1[i]];
    sa[--tails[s[j]]] = j;
  }
  induce();
}

}  // namespace

std::vector<int32_t> BuildSuffixArray(Span<const int32_t> text,
                                      int32_t alphabet_size) {
  const int32_t n = static_cast<int32_t>(text.size());
  if (n == 0) return {};
  // Shift every character up by one and append the unique smallest sentinel;
  // this yields the conventional "shorter prefix sorts first" suffix order.
  std::vector<int32_t> s(n + 1);
  for (int32_t i = 0; i < n; ++i) {
    assert(text[i] >= 0 && text[i] < alphabet_size);
    s[i] = text[i] + 1;
  }
  s[n] = 0;
  std::vector<int32_t> sa(n + 1);
  SaIsCore(s.data(), sa.data(), n + 1, alphabet_size + 1);
  assert(sa[0] == n);
  return std::vector<int32_t>(sa.begin() + 1, sa.end());
}

std::vector<int32_t> BuildSuffixArrayNaive(Span<const int32_t> text) {
  std::vector<int32_t> sa(text.size());
  std::iota(sa.begin(), sa.end(), 0);
  std::sort(sa.begin(), sa.end(), [&](int32_t a, int32_t b) {
    return std::lexicographical_compare(text.begin() + a, text.end(),
                                        text.begin() + b, text.end());
  });
  return sa;
}

}  // namespace pti
