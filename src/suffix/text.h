// Text: an integer-alphabet text assembled from members separated by unique
// sentinels.
//
// Both the factor-transformed string of Section 5 (members = maximal factors)
// and the document collection of Section 6 (members = transformed documents)
// need a generalized suffix structure in which no suffix crosses a member
// boundary and no suffix is a prefix of another. Giving every member its own
// sentinel value (>= 256, above the byte alphabet) provides both properties,
// which is what lets a plain suffix tree stand in for the paper's property
// suffix tree (see DESIGN.md section 5).
//
// Storage is VecOrView: a Text built by AppendMember owns its arrays, while a
// Text loaded from a v3 container (FromViews) points into the backing Blob of
// the loaded index — the index pins that Blob for the lifetime of the Text.

#ifndef PTI_SUFFIX_TEXT_H_
#define PTI_SUFFIX_TEXT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/span.h"
#include "util/status.h"

namespace pti {

/// Byte characters occupy [0, 256); sentinel k (after member k) is 256 + k.
class Text {
 public:
  static constexpr int32_t kByteAlphabet = 256;

  /// Appends the bytes of `member` followed by a fresh unique sentinel.
  /// Returns the member's index.
  int32_t AppendMember(const std::string& member);

  /// Same, from pre-mapped character values in [0, 256).
  int32_t AppendMember(const std::vector<int32_t>& member);

  /// All characters including sentinels.
  Span<const int32_t> chars() const { return chars_.span(); }
  size_t size() const { return chars_.size(); }

  int32_t num_members() const { return num_members_; }

  /// Total alphabet size including sentinels (for suffix sorting).
  int32_t alphabet_size() const { return kByteAlphabet + num_members_; }

  bool IsSentinel(size_t pos) const { return chars_[pos] >= kByteAlphabet; }

  /// Index of the member containing text position `pos` (sentinels belong to
  /// the member they terminate). O(log #members).
  int32_t MemberOf(size_t pos) const;

  /// First text position of member m.
  size_t MemberBegin(int32_t m) const {
    return m == 0 ? 0 : static_cast<size_t>(starts_[m]);
  }

  /// Position of member m's sentinel (one past its last real character).
  size_t MemberEnd(int32_t m) const {
    return static_cast<size_t>(starts_[m + 1]) - 1;
  }

  /// Maps a byte pattern to integer characters (never matches sentinels).
  static std::vector<int32_t> MapPattern(const std::string& pattern);

  /// Member start offsets; entry m is the first position of member m, with
  /// one extra trailing entry equal to size(). For serialization.
  Span<const int64_t> member_starts() const { return starts_.span(); }

  /// Reconstructs a Text from serialized raw arrays, validating the sentinel
  /// structure (used by index Load()).
  static StatusOr<Text> FromRaw(std::vector<int32_t> chars,
                                std::vector<int64_t> starts);

  /// Zero-copy counterpart of FromRaw: the Text views the given arrays
  /// (validated identically) instead of owning copies. The caller must keep
  /// the backing bytes alive — v3 index loads pin their Blob for this.
  static StatusOr<Text> FromViews(Span<const int32_t> chars,
                                  Span<const int64_t> starts);

  /// Bytes owned by this Text itself (0 when viewing a loaded container).
  /// True when the character/starts arrays view a backing Blob (v3 load)
  /// rather than owning their storage.
  bool IsZeroCopy() const { return chars_.is_view(); }

  size_t MemoryUsage() const {
    return chars_.OwnedBytes() + starts_.OwnedBytes();
  }

 private:
  static Status Validate(Span<const int32_t> chars, Span<const int64_t> starts);

  VecOrView<int32_t> chars_;
  // starts_[m] = first position of member m; one extra entry = size().
  VecOrView<int64_t> starts_ = std::vector<int64_t>{0};
  int32_t num_members_ = 0;
};

}  // namespace pti

#endif  // PTI_SUFFIX_TEXT_H_
