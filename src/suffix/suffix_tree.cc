#include "suffix/suffix_tree.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace pti {
namespace {

// Temporary node record used during the LCP-interval stack pass.
struct TempNode {
  int32_t parent = -1;
  int32_t depth = 0;
  int32_t sa_begin = 0;  // leftmost descendant's SA index
};

}  // namespace

SuffixTree SuffixTree::Build(Span<const int32_t> text, int32_t alphabet_size) {
  return BuildFromSa(text, BuildSuffixArray(text, alphabet_size));
}

SuffixTree SuffixTree::BuildFromSa(Span<const int32_t> text,
                                   std::vector<int32_t> sa) {
  SuffixTree t;
  t.text_ = text;
  t.sa_ = std::move(sa);
  t.lcp_ = BuildLcpArray(text, t.sa_);
  const int32_t n = static_cast<int32_t>(text.size());
  if (n == 0) {
    // Degenerate tree: a lone root with an empty suffix range.
    t.parent_ = {-1};
    t.depth_ = {0};
    t.sa_begin_ = {0};
    t.sa_end_ = {0};
    t.subtree_end_ = {1};
    t.child_off_ = {0, 0};
    return t;
  }

  // ---- Stack pass: materialize internal nodes from LCP intervals. ----
  // Parents are assigned when nodes are popped; nodes on the stack form the
  // rightmost root-to-leaf path with strictly increasing string depth.
  std::vector<TempNode> tmp;
  tmp.reserve(2 * static_cast<size_t>(n) + 1);
  tmp.push_back(TempNode{-1, 0, 0});  // root
  std::vector<int32_t> stack = {0};
  for (int32_t i = 0; i < n; ++i) {
    const int32_t l = (i == 0) ? 0 : t.lcp_[i];
    const int32_t leaf_depth = n - t.sa_[i];
    // No suffix is a prefix of another (Text guarantees this), so the new
    // leaf always hangs strictly below the attach depth.
    assert(l < leaf_depth);
    int32_t last = -1;
    while (tmp[stack.back()].depth > l) {
      const int32_t x = stack.back();
      stack.pop_back();
      if (last >= 0) tmp[last].parent = x;
      last = x;
    }
    if (last >= 0) {
      const int32_t top = stack.back();
      if (tmp[top].depth == l) {
        tmp[last].parent = top;
      } else {
        const int32_t v = static_cast<int32_t>(tmp.size());
        tmp.push_back(TempNode{-1, l, tmp[last].sa_begin});
        tmp[last].parent = v;
        stack.push_back(v);
      }
    }
    const int32_t leaf = static_cast<int32_t>(tmp.size());
    tmp.push_back(TempNode{-1, leaf_depth, i});
    stack.push_back(leaf);
  }
  // Drain the stack, attaching each node to the one below it.
  while (stack.size() > 1) {
    const int32_t x = stack.back();
    stack.pop_back();
    tmp[x].parent = stack.back();
  }

  const int32_t num = static_cast<int32_t>(tmp.size());

  // ---- Children lists (CSR over temp ids), sorted by sa_begin, which is
  // exactly lexicographic order of the child edges. ----
  std::vector<int32_t> ccount(num + 1, 0);
  for (int32_t v = 1; v < num; ++v) ccount[tmp[v].parent + 1]++;
  std::vector<int32_t> coff(num + 1, 0);
  for (int32_t v = 0; v < num; ++v) coff[v + 1] = coff[v] + ccount[v + 1];
  std::vector<int32_t> clist(num - 1 >= 0 ? num - 1 : 0);
  {
    std::vector<int32_t> fill = coff;
    for (int32_t v = 1; v < num; ++v) clist[fill[tmp[v].parent]++] = v;
  }
  for (int32_t v = 0; v < num; ++v) {
    std::sort(clist.begin() + coff[v], clist.begin() + coff[v + 1],
              [&](int32_t a, int32_t b) {
                return tmp[a].sa_begin < tmp[b].sa_begin;
              });
  }

  // ---- Preorder renumbering + final arrays. ----
  t.parent_.assign(num, -1);
  t.depth_.assign(num, 0);
  t.sa_begin_.assign(num, 0);
  t.sa_end_.assign(num, 0);
  t.subtree_end_.assign(num, 0);
  t.leaf_of_sa_.assign(n, -1);
  std::vector<int32_t> new_id(num, -1);
  std::vector<int32_t> order;  // temp ids in preorder
  order.reserve(num);
  // Iterative DFS; stack holds (temp id); children pushed in reverse so the
  // lexicographically first child is visited first.
  std::vector<int32_t> dfs = {0};
  while (!dfs.empty()) {
    const int32_t v = dfs.back();
    dfs.pop_back();
    new_id[v] = static_cast<int32_t>(order.size());
    order.push_back(v);
    for (int32_t k = coff[v + 1] - 1; k >= coff[v]; --k) {
      dfs.push_back(clist[k]);
    }
  }
  assert(static_cast<int32_t>(order.size()) == num);
  for (int32_t r = 0; r < num; ++r) {
    const int32_t v = order[r];
    t.parent_[r] = tmp[v].parent < 0 ? -1 : new_id[tmp[v].parent];
    t.depth_[r] = tmp[v].depth;
    t.sa_begin_[r] = tmp[v].sa_begin;
  }
  // subtree_end and sa_end in reverse preorder: a node's subtree ends where
  // its last child's does (or right after itself for leaves).
  for (int32_t r = num - 1; r >= 0; --r) {
    const int32_t v = order[r];
    if (coff[v + 1] == coff[v]) {  // leaf
      t.subtree_end_[r] = r + 1;
      t.sa_end_[r] = t.sa_begin_[r] + 1;
      t.leaf_of_sa_[t.sa_begin_[r]] = r;
    } else {
      const int32_t last_child = new_id[clist[coff[v + 1] - 1]];
      t.subtree_end_[r] = t.subtree_end_[last_child];
      t.sa_end_[r] = t.sa_end_[last_child];
    }
  }

  // ---- Child CSR in final ids with cached first edge characters. ----
  t.child_off_.assign(num + 1, 0);
  for (int32_t r = 0; r < num; ++r) {
    t.child_off_[r + 1] =
        t.child_off_[r] + (coff[order[r] + 1] - coff[order[r]]);
  }
  t.child_char_.assign(t.child_off_[num], 0);
  t.child_node_.assign(t.child_off_[num], 0);
  for (int32_t r = 0; r < num; ++r) {
    const int32_t v = order[r];
    int32_t at = t.child_off_[r];
    for (int32_t k = coff[v]; k < coff[v + 1]; ++k, ++at) {
      const int32_t c = new_id[clist[k]];
      t.child_node_[at] = c;
      t.child_char_[at] = text[t.sa_[t.sa_begin_[c]] + t.depth_[r]];
    }
  }
  return t;
}

int32_t SuffixTree::FindChild(int32_t v, int32_t c) const {
  const int32_t lo = child_off_[v];
  const int32_t hi = child_off_[v + 1];
  const auto begin = child_char_.begin() + lo;
  const auto end = child_char_.begin() + hi;
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return -1;
  return child_node_[lo + static_cast<int32_t>(it - begin)];
}

std::optional<SuffixRange> SuffixTree::FindRange(
    const std::vector<int32_t>& pattern) const {
  const int32_t m = static_cast<int32_t>(pattern.size());
  int32_t v = root();
  int32_t matched = 0;
  while (matched < m) {
    const int32_t c = FindChild(v, pattern[matched]);
    if (c < 0) return std::nullopt;
    // Compare the remainder of the edge label.
    const int32_t edge_end = std::min(depth_[c], m);
    const int32_t base = sa_[sa_begin_[c]];
    for (int32_t k = matched + 1; k < edge_end; ++k) {
      if (text_[base + k] != pattern[k]) return std::nullopt;
    }
    matched = edge_end;
    v = c;
  }
  return SuffixRange{v, sa_begin_[v], sa_end_[v]};
}

void SuffixTree::BuildLcaSupport() {
  if (euler_rmq_.has_value()) return;
  const int32_t num = num_nodes();
  euler_first_.assign(num, -1);
  euler_node_.clear();
  euler_node_.reserve(2 * static_cast<size_t>(num));
  // Euler tour: visit node, recurse into child, revisit node.
  // Iterative with explicit child cursor.
  std::vector<std::pair<int32_t, int32_t>> stack;  // (node, next child slot)
  stack.emplace_back(root(), 0);
  if (num == 0) return;
  euler_first_[root()] = 0;
  euler_node_.push_back(root());
  while (!stack.empty()) {
    auto& [v, k] = stack.back();
    if (k < num_children(v)) {
      const int32_t c = child_at(v, k);
      ++k;
      euler_first_[c] = static_cast<int32_t>(euler_node_.size());
      euler_node_.push_back(c);
      stack.emplace_back(c, 0);
    } else {
      stack.pop_back();
      if (!stack.empty()) euler_node_.push_back(stack.back().first);
    }
  }
  euler_rmq_.emplace(EulerDepthFn{euler_node_.data(), depth_.data()},
                     euler_node_.size());
}

int32_t SuffixTree::Lca(int32_t u, int32_t v) const {
  assert(euler_rmq_.has_value() && "call BuildLcaSupport() first");
  if (u == v) return u;
  size_t a = euler_first_[u];
  size_t b = euler_first_[v];
  if (a > b) std::swap(a, b);
  return euler_node_[euler_rmq_->ArgMax(a, b)];
}

size_t SuffixTree::MemoryUsage() const {
  auto vec_bytes = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  size_t bytes = vec_bytes(sa_) + vec_bytes(lcp_) + vec_bytes(parent_) +
                 vec_bytes(depth_) + vec_bytes(sa_begin_) + vec_bytes(sa_end_) +
                 vec_bytes(subtree_end_) + vec_bytes(leaf_of_sa_) +
                 vec_bytes(child_off_) + vec_bytes(child_char_) +
                 vec_bytes(child_node_) + vec_bytes(euler_node_) +
                 vec_bytes(euler_first_);
  if (euler_rmq_) bytes += euler_rmq_->MemoryUsage();
  return bytes;
}

}  // namespace pti
