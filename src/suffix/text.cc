#include "suffix/text.h"

#include <algorithm>
#include <cassert>

namespace pti {

int32_t Text::AppendMember(const std::string& member) {
  for (const char c : member) {
    chars_.push_back(static_cast<int32_t>(static_cast<unsigned char>(c)));
  }
  chars_.push_back(kByteAlphabet + num_members_);
  starts_.push_back(static_cast<int64_t>(chars_.size()));
  return num_members_++;
}

int32_t Text::AppendMember(const std::vector<int32_t>& member) {
  for (const int32_t c : member) {
    assert(c >= 0 && c < kByteAlphabet);
    chars_.push_back(c);
  }
  chars_.push_back(kByteAlphabet + num_members_);
  starts_.push_back(static_cast<int64_t>(chars_.size()));
  return num_members_++;
}

int32_t Text::MemberOf(size_t pos) const {
  assert(pos < chars_.size());
  // starts_ is sorted; find the member whose [start, next start) covers pos.
  auto it = std::upper_bound(starts_.begin(), starts_.end(),
                             static_cast<int64_t>(pos));
  return static_cast<int32_t>(it - starts_.begin()) - 1;
}

Status Text::Validate(Span<const int32_t> chars, Span<const int64_t> starts) {
  if (starts.empty() || starts.front() != 0 ||
      starts.back() != static_cast<int64_t>(chars.size())) {
    return Status::Corruption("text member starts malformed");
  }
  const int32_t members = static_cast<int32_t>(starts.size()) - 1;
  for (int32_t m = 0; m < members; ++m) {
    if (starts[m + 1] <= starts[m]) {
      return Status::Corruption("text member starts not increasing");
    }
    for (int64_t i = starts[m]; i + 1 < starts[m + 1]; ++i) {
      if (chars[i] < 0 || chars[i] >= kByteAlphabet) {
        return Status::Corruption("text character out of byte range");
      }
    }
    if (chars[starts[m + 1] - 1] != kByteAlphabet + m) {
      return Status::Corruption("text member sentinel mismatch");
    }
  }
  return Status::OK();
}

StatusOr<Text> Text::FromRaw(std::vector<int32_t> chars,
                             std::vector<int64_t> starts) {
  PTI_RETURN_IF_ERROR(Validate(Span<const int32_t>(chars.data(), chars.size()),
                               Span<const int64_t>(starts.data(),
                                                   starts.size())));
  Text t;
  t.num_members_ = static_cast<int32_t>(starts.size()) - 1;
  t.chars_ = VecOrView<int32_t>(std::move(chars));
  t.starts_ = VecOrView<int64_t>(std::move(starts));
  return t;
}

StatusOr<Text> Text::FromViews(Span<const int32_t> chars,
                               Span<const int64_t> starts) {
  PTI_RETURN_IF_ERROR(Validate(chars, starts));
  Text t;
  t.num_members_ = static_cast<int32_t>(starts.size()) - 1;
  t.chars_ = VecOrView<int32_t>::View(chars);
  t.starts_ = VecOrView<int64_t>::View(starts);
  return t;
}

std::vector<int32_t> Text::MapPattern(const std::string& pattern) {
  std::vector<int32_t> out;
  out.reserve(pattern.size());
  for (const char c : pattern) {
    out.push_back(static_cast<int32_t>(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace pti
