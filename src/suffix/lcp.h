// LCP array construction: Kasai et al. (2001) as the sequential reference,
// and a Φ/PLCP formulation (Kärkkäinen–Manzini–Puglisi, 2009) whose text-order
// scan chunks across a thread pool. Both produce the same (unique) LCP array.

#ifndef PTI_SUFFIX_LCP_H_
#define PTI_SUFFIX_LCP_H_

#include <cstdint>
#include <vector>

#include "util/span.h"

namespace pti {

class ThreadPool;

/// Builds the LCP array for `text` with suffix array `sa`:
/// lcp[i] = length of the longest common prefix of suffixes sa[i-1] and sa[i]
/// (lcp[0] = 0). O(n) time via Kasai's rank-walk.
std::vector<int32_t> BuildLcpArray(Span<const int32_t> text,
                                   Span<const int32_t> sa);

/// Same array via Φ/PLCP: Φ is built sequentially in O(n), then the text-order
/// PLCP scan is chunked across `pool` (each chunk restarts its match length at
/// zero, so chunk boundaries cost O(lcp) extra work but change no output), and
/// the final scatter lcp[i] = plcp[sa[i]] is parallel too. Falls back to
/// Kasai when `pool` is null or single-threaded. The LCP array is unique, so
/// the result is bit-identical to BuildLcpArray at any thread count.
std::vector<int32_t> BuildLcpArrayParallel(Span<const int32_t> text,
                                           Span<const int32_t> sa,
                                           ThreadPool* pool);

}  // namespace pti

#endif  // PTI_SUFFIX_LCP_H_
