// LCP array construction (Kasai et al., 2001).

#ifndef PTI_SUFFIX_LCP_H_
#define PTI_SUFFIX_LCP_H_

#include <cstdint>
#include <vector>

#include "util/span.h"

namespace pti {

/// Builds the LCP array for `text` with suffix array `sa`:
/// lcp[i] = length of the longest common prefix of suffixes sa[i-1] and sa[i]
/// (lcp[0] = 0). O(n) time via Kasai's rank-walk.
std::vector<int32_t> BuildLcpArray(Span<const int32_t> text,
                                   Span<const int32_t> sa);

}  // namespace pti

#endif  // PTI_SUFFIX_LCP_H_
