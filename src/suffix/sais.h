// SA-IS: linear-time suffix array construction over integer alphabets.
//
// The transformed texts of Section 5 use one distinct sentinel per maximal
// factor (Section 2.2 of DESIGN.md), so the alphabet is [0, 256 + #factors)
// and byte-oriented suffix sorters do not apply. SA-IS (Nong, Zhang & Chan,
// 2009) handles integer alphabets in O(n + sigma) time and space via induced
// sorting of LMS substrings with recursion on the reduced problem.

#ifndef PTI_SUFFIX_SAIS_H_
#define PTI_SUFFIX_SAIS_H_

#include <cstdint>
#include <vector>

#include "util/span.h"

namespace pti {

/// Builds the suffix array of `text` (values in [0, alphabet_size)).
/// Returns sa with sa[i] = starting position of the i-th lexicographically
/// smallest suffix. The text does not need a terminating sentinel; a virtual
/// unique smallest terminator is appended internally, so the suffix order is
/// the usual "shorter prefix sorts first" order.
std::vector<int32_t> BuildSuffixArray(Span<const int32_t> text,
                                      int32_t alphabet_size);

/// Reference implementation: O(n^2 log n) comparison sort of suffixes.
/// For tests and tiny inputs only.
std::vector<int32_t> BuildSuffixArrayNaive(Span<const int32_t> text);

}  // namespace pti

#endif  // PTI_SUFFIX_SAIS_H_
