// SuffixTree: compact suffix tree built from a suffix array + LCP array.
//
// Construction is O(n): SA-IS, Kasai, then one stack pass turning LCP
// intervals into internal nodes. Nodes are renumbered in lexicographic
// preorder, which makes subtree tests trivial (subtree(v) = ids
// [v, subtree_end(v))) — the approximate index of Section 7 leans on this for
// its link-stabbing predicate.
//
// Requirements on the text: no suffix may be a prefix of another (the Text
// class guarantees this by terminating every member with a unique sentinel).

#ifndef PTI_SUFFIX_SUFFIX_TREE_H_
#define PTI_SUFFIX_SUFFIX_TREE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "rmq/block_rmq.h"
#include "suffix/lcp.h"
#include "suffix/sais.h"
#include "util/span.h"

namespace pti {

/// Result of a pattern search: the locus node and its suffix-array range.
struct SuffixRange {
  int32_t locus = -1;
  int32_t begin = 0;  ///< first SA index whose suffix has the pattern prefix
  int32_t end = 0;    ///< one past the last such SA index
  bool empty() const { return begin >= end; }
  int32_t count() const { return end - begin; }
};

class SuffixTree {
 public:
  SuffixTree() = default;

  /// Builds over `text` (values in [0, alphabet_size)). The text bytes are
  /// borrowed (a view) and must outlive the tree.
  static SuffixTree Build(Span<const int32_t> text, int32_t alphabet_size);

  /// Same but reusing a precomputed suffix array.
  static SuffixTree BuildFromSa(Span<const int32_t> text,
                                std::vector<int32_t> sa);

  // ---- Topology. Node ids are preorder ranks; root is 0. ----

  int32_t num_nodes() const { return static_cast<int32_t>(depth_.size()); }
  int32_t root() const { return 0; }
  int32_t parent(int32_t v) const { return parent_[v]; }
  /// String depth: number of characters on the root-to-v path.
  int32_t depth(int32_t v) const { return depth_[v]; }
  /// Suffix-array interval [sa_begin, sa_end) of the leaves below v.
  int32_t sa_begin(int32_t v) const { return sa_begin_[v]; }
  int32_t sa_end(int32_t v) const { return sa_end_[v]; }
  /// One past the largest preorder id in v's subtree.
  int32_t subtree_end(int32_t v) const { return subtree_end_[v]; }
  bool is_leaf(int32_t v) const { return sa_end_[v] - sa_begin_[v] == 1; }
  /// Node id of the leaf for suffix-array position i.
  int32_t leaf_node(int32_t sa_pos) const { return leaf_of_sa_[sa_pos]; }
  /// True iff u is an ancestor of v (or u == v).
  bool IsAncestor(int32_t u, int32_t v) const {
    return u <= v && v < subtree_end_[u];
  }

  // ---- Children (sorted by first edge character). ----

  int32_t num_children(int32_t v) const {
    return child_off_[v + 1] - child_off_[v];
  }
  int32_t child_at(int32_t v, int32_t k) const {
    return child_node_[child_off_[v] + k];
  }
  /// Child of v whose edge starts with character c, or -1.
  int32_t FindChild(int32_t v, int32_t c) const;

  // ---- Search. ----

  /// Finds the locus and SA range of `pattern`. Returns nullopt when the
  /// pattern does not occur. An empty pattern yields the root / full range.
  std::optional<SuffixRange> FindRange(const std::vector<int32_t>& pattern)
      const;

  // ---- Lowest common ancestor (Euler tour + RMQ). ----

  /// Must be called once before Lca(); idempotent.
  void BuildLcaSupport();
  int32_t Lca(int32_t u, int32_t v) const;

  // ---- Underlying arrays. ----

  const std::vector<int32_t>& sa() const { return sa_; }
  const std::vector<int32_t>& lcp() const { return lcp_; }
  Span<const int32_t> text() const { return text_; }

  size_t MemoryUsage() const;

 private:
  // Captures the vectors' heap buffers (stable across moves of the tree —
  // euler_node_ and depth_ are never resized after BuildLcaSupport), never
  // `this`, so a tree with LCA support stays safely movable.
  struct EulerDepthFn {
    const int32_t* euler_node;
    const int32_t* depth;
    double operator()(size_t k) const {
      // Max-RMQ engine; negate so the shallowest node wins.
      return -static_cast<double>(depth[euler_node[k]]);
    }
  };

  Span<const int32_t> text_;
  std::vector<int32_t> sa_;
  std::vector<int32_t> lcp_;

  std::vector<int32_t> parent_;
  std::vector<int32_t> depth_;
  std::vector<int32_t> sa_begin_;
  std::vector<int32_t> sa_end_;
  std::vector<int32_t> subtree_end_;
  std::vector<int32_t> leaf_of_sa_;

  std::vector<int32_t> child_off_;
  std::vector<int32_t> child_char_;
  std::vector<int32_t> child_node_;

  std::vector<int32_t> euler_node_;
  std::vector<int32_t> euler_first_;
  std::optional<BlockRmq<EulerDepthFn>> euler_rmq_;
};

}  // namespace pti

#endif  // PTI_SUFFIX_SUFFIX_TREE_H_
