// Human-readable text format for uncertain strings (used by the CLI tool,
// examples and tests).
//
// One line per position, options as char=prob pairs:
//     A=0.4 B=0.3 F=0.3
// Comment lines start with '#'. Correlation rules (§3.3) use directive lines:
//     @corr <pos> <char> <dep_pos> <dep_char> <p_if_present> <p_if_absent>
// Positions are 0-based. Blank lines are ignored.

#ifndef PTI_CORE_USFORMAT_H_
#define PTI_CORE_USFORMAT_H_

#include <string>

#include "core/uncertain_string.h"
#include "util/status.h"

namespace pti {

/// Parses the format above; errors carry 1-based line numbers. With
/// `require_unit_sums` (the default) the §3 model invariants are enforced
/// via UncertainString::Validate; pass false for §4 special uncertain
/// strings, whose single per-position option deliberately keeps mass below
/// 1 (probabilities are still required to be finite and in [0, 1]).
StatusOr<UncertainString> ParseUncertainString(const std::string& text,
                                               bool require_unit_sums = true);

/// Inverse of ParseUncertainString (round-trips through the parser).
std::string FormatUncertainString(const UncertainString& s);

}  // namespace pti

#endif  // PTI_CORE_USFORMAT_H_
