#include "core/listing_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "core/serde.h"
#include "suffix/suffix_tree.h"
#include "util/serial.h"

namespace pti {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

int64_t RuleKey(int64_t global_pos, uint8_t ch) {
  return global_pos * 256 + ch;
}
}  // namespace

struct ListingIndex::Impl {
  std::vector<UncertainString> docs;
  ListingOptions options;
  double tau_min = 0.0;

  Text text;                       // members = factors from all documents
  std::vector<int32_t> doc_of;     // per text position (-1 on sentinels)
  std::vector<int64_t> pos_in_doc; // per text position (-1 on sentinels)
  std::vector<double> logp;        // per text position (0.0 on sentinels)
  std::vector<int64_t> corr_positions;
  std::vector<int64_t> doc_base;   // prefix sums of document lengths
  std::unordered_map<int64_t, std::pair<int32_t, const CorrelationRule*>>
      rules;  // key: global pos * 256 + ch -> (doc, rule)

  SuffixTree st;
  std::vector<double> c;
  std::vector<int32_t> remaining;

  int32_t K = 0;
  std::vector<std::vector<uint64_t>> active;
  std::vector<std::unique_ptr<RmqHandle>> short_rmq;
  struct LongLevel {
    int32_t depth = 0;
    std::unique_ptr<RmqHandle> rmq;
  };
  std::vector<LongLevel> long_levels;
  int32_t max_remaining = 0;

  size_t N() const { return text.size(); }

  int64_t GlobalPos(size_t q) const {
    return doc_base[doc_of[q]] + pos_in_doc[q];
  }

  bool ActiveBit(int32_t depth, size_t j) const {
    return (active[depth - 1][j >> 6] >> (j & 63)) & 1;
  }

  double RawValue(int32_t depth, size_t j) const {
    const int64_t q = st.sa()[j];
    if (remaining[q] < depth) return kNegInf;
    double v = c[q + depth] - c[q];
    if (!corr_positions.empty()) {
      auto it =
          std::lower_bound(corr_positions.begin(), corr_positions.end(), q);
      for (; it != corr_positions.end() && *it < q + depth; ++it) {
        v += Adjustment(*it, q, depth);
      }
    }
    return v;
  }

  double Adjustment(int64_t z, int64_t q, int32_t depth) const {
    const uint8_t ch = static_cast<uint8_t>(text.chars()[z]);
    const auto& [doc, rule] = rules.at(RuleKey(GlobalPos(z), ch));
    const int64_t ws = pos_in_doc[q];
    double p;
    if (rule->dep_pos >= ws && rule->dep_pos < ws + depth) {
      const int64_t zdep = q + (rule->dep_pos - ws);
      const bool present = text.chars()[zdep] == rule->dep_ch;
      p = present ? rule->prob_if_present : rule->prob_if_absent;
    } else {
      const double dep = docs[doc].BaseProb(rule->dep_pos, rule->dep_ch);
      p = dep * rule->prob_if_present + (1.0 - dep) * rule->prob_if_absent;
    }
    return (p <= 0.0 ? kNegInf : std::log(p)) - logp[z];
  }

  struct RawFn {
    const Impl* impl;
    int32_t depth;
    double operator()(size_t j) const { return impl->RawValue(depth, j); }
  };
  struct ActiveFn {
    const Impl* impl;
    int32_t depth;
    double operator()(size_t j) const {
      return impl->ActiveBit(depth, j) ? impl->RawValue(depth, j) : kNegInf;
    }
  };

  // Correlated text positions and the rule table, keyed by global position.
  // Derived purely from (docs, text, doc_of, pos_in_doc), so Build and Load
  // share it; rules.at() at query time can only see keys recorded here.
  void BuildRules() {
    corr_positions.clear();
    rules.clear();
    for (size_t q = 0; q < text.size(); ++q) {
      if (doc_of[q] < 0) continue;
      const auto& doc = docs[doc_of[q]];
      const uint8_t ch = static_cast<uint8_t>(text.chars()[q]);
      if (const CorrelationRule* rule = doc.FindRule(pos_in_doc[q], ch)) {
        corr_positions.push_back(static_cast<int64_t>(q));
        rules[RuleKey(GlobalPos(q), ch)] = {doc_of[q], rule};
      }
    }
  }

  Status Finish() {
    const size_t n_text = N();
    st = SuffixTree::Build(text.chars(), text.alphabet_size());
    c.assign(n_text + 1, 0.0);
    for (size_t k = 0; k < n_text; ++k) c[k + 1] = c[k] + logp[k];
    remaining.assign(n_text, 0);
    max_remaining = 0;
    for (int64_t q = static_cast<int64_t>(n_text) - 1; q >= 0; --q) {
      remaining[q] = text.IsSentinel(q) ? 0 : remaining[q + 1] + 1;
      max_remaining = std::max(max_remaining, remaining[q]);
    }
    if (options.max_short_depth > 0) {
      K = options.max_short_depth;
    } else {
      K = 1;
      while ((size_t{1} << K) < std::max<size_t>(n_text, 2)) ++K;
    }
    K = std::max(1, std::min<int32_t>(K, std::max(max_remaining, 1)));

    // §6 duplicate elimination: within every depth-i partition keep, per
    // document, the entry whose window probability is largest (= Rel_max).
    active.assign(K, std::vector<uint64_t>((n_text + 63) / 64, 0));
    const int32_t ndocs = static_cast<int32_t>(docs.size());
    std::vector<int64_t> seen(std::max(ndocs, 1), -1);
    std::vector<size_t> best_j(std::max(ndocs, 1), 0);
    std::vector<double> best_v(std::max(ndocs, 1), kNegInf);
    std::vector<int32_t> in_partition;
    int64_t stamp = 0;
    const auto& lcp = st.lcp();
    const auto& sa = st.sa();
    for (int32_t i = 1; i <= K; ++i) {
      auto& bits = active[i - 1];
      in_partition.clear();
      auto close_partition = [&] {
        for (const int32_t d : in_partition) {
          bits[best_j[d] >> 6] |= uint64_t{1} << (best_j[d] & 63);
        }
        in_partition.clear();
      };
      for (size_t j = 0; j < n_text; ++j) {
        if (j == 0 || lcp[j] < i) {
          close_partition();
          ++stamp;
        }
        const int64_t q = sa[j];
        if (remaining[q] < i) continue;
        const double v = RawValue(i, j);
        if (v == kNegInf) continue;
        const int32_t d = doc_of[q];
        if (seen[d] != stamp) {
          seen[d] = stamp;
          best_j[d] = j;
          best_v[d] = v;
          in_partition.push_back(d);
        } else if (v > best_v[d]) {
          best_j[d] = j;
          best_v[d] = v;
        }
      }
      close_partition();
    }

    for (int32_t i = 1; i <= K; ++i) {
      short_rmq.push_back(
          MakeRmq(options.rmq_engine, ActiveFn{this, i}, n_text));
    }
    for (int64_t d = K; d <= max_remaining; d *= 2) {
      LongLevel level;
      level.depth = static_cast<int32_t>(d);
      level.rmq = MakeRmq(RmqEngineKind::kBlock, RawFn{this, level.depth},
                          n_text, static_cast<size_t>(d));
      long_levels.push_back(std::move(level));
    }
    return Status::OK();
  }

  Status CheckQuery(const std::string& pattern, double tau) const {
    if (pattern.empty()) {
      return Status::InvalidArgument("pattern must be non-empty");
    }
    if (!(tau > 0.0) || tau > 1.0) {
      return Status::InvalidArgument("tau must be in (0, 1]");
    }
    const LogProb lt = LogProb::FromLinear(tau);
    const LogProb lmin = LogProb::FromLinear(tau_min);
    if (!lt.MeetsThreshold(lmin)) {
      return Status::InvalidArgument(
          "tau is below the construction-time tau_min");
    }
    return Status::OK();
  }

  // Rel_max listing. Short patterns walk the deduplicated RMQ (one active
  // entry per doc per partition => each reported doc costs O(1)); long
  // patterns use the upper-bound levels with a per-query doc->max map.
  Status QueryMax(const std::string& pattern, double tau,
                  std::vector<DocMatch>* out) const {
    out->clear();
    PTI_RETURN_IF_ERROR(CheckQuery(pattern, tau));
    const auto range = st.FindRange(Text::MapPattern(pattern));
    if (!range.has_value() || range->empty()) return Status::OK();
    const int32_t m = static_cast<int32_t>(pattern.size());
    const int32_t l = range->begin;
    const int32_t r = range->end - 1;
    const LogProb log_tau = LogProb::FromLinear(tau);
    std::unordered_map<int32_t, double> best;  // doc -> max prob
    if (m <= K && static_cast<size_t>(r - l + 1) > options.scan_cutoff) {
      const RmqHandle* rmq = short_rmq[m - 1].get();
      std::vector<std::pair<int32_t, int32_t>> stack{{l, r}};
      while (!stack.empty()) {
        auto [lo, hi] = stack.back();
        stack.pop_back();
        if (lo > hi) continue;
        const size_t pos = rmq->ArgMax(lo, hi);
        const double v = ActiveFn{this, m}(pos);
        if (!LogProb::FromLog(v).MeetsThreshold(log_tau)) continue;
        const int32_t d = doc_of[st.sa()[pos]];
        auto [it, inserted] = best.emplace(d, std::exp(v));
        if (!inserted) it->second = std::max(it->second, std::exp(v));
        stack.emplace_back(lo, static_cast<int32_t>(pos) - 1);
        stack.emplace_back(static_cast<int32_t>(pos) + 1, hi);
      }
    } else if (m <= K || static_cast<size_t>(r - l + 1) <=
                             options.scan_cutoff) {
      ScanCollect(m, l, r, log_tau, &best);
    } else {
      const LongLevel* level = nullptr;
      for (const auto& cand : long_levels) {
        if (cand.depth <= m &&
            (level == nullptr || cand.depth > level->depth)) {
          level = &cand;
        }
      }
      if (level == nullptr) {
        ScanCollect(m, l, r, log_tau, &best);
      } else {
        std::vector<std::pair<int32_t, int32_t>> stack{{l, r}};
        while (!stack.empty()) {
          auto [lo, hi] = stack.back();
          stack.pop_back();
          if (lo > hi) continue;
          const size_t pos = level->rmq->ArgMax(lo, hi);
          const double ub = RawValue(level->depth, pos);
          if (!LogProb::FromLog(ub).MeetsThreshold(log_tau)) continue;
          const double v = RawValue(m, pos);
          if (LogProb::FromLog(v).MeetsThreshold(log_tau)) {
            const int32_t d = doc_of[st.sa()[pos]];
            auto [it, inserted] = best.emplace(d, std::exp(v));
            if (!inserted) it->second = std::max(it->second, std::exp(v));
          }
          stack.emplace_back(lo, static_cast<int32_t>(pos) - 1);
          stack.emplace_back(static_cast<int32_t>(pos) + 1, hi);
        }
      }
    }
    out->reserve(best.size());
    // pti-lint: allow(unordered-iteration-in-serde): keys are unique docs
    // and the sort below imposes a total order, so emit order cancels out.
    for (const auto& [d, v] : best) out->push_back(DocMatch{d, v});
    std::sort(out->begin(), out->end(),
              [](const DocMatch& a, const DocMatch& b) {
                return a.doc < b.doc;
              });
    return Status::OK();
  }

  void ScanCollect(int32_t m, int32_t l, int32_t r, LogProb log_tau,
                   std::unordered_map<int32_t, double>* best) const {
    for (int32_t j = l; j <= r; ++j) {
      const double v = RawValue(m, j);
      if (!LogProb::FromLog(v).MeetsThreshold(log_tau)) continue;
      const int32_t d = doc_of[st.sa()[j]];
      auto [it, inserted] = best->emplace(d, std::exp(v));
      if (!inserted) it->second = std::max(it->second, std::exp(v));
    }
  }

  // OR metrics: visit every distinct occurrence with probability >= tau_min
  // in the locus range, aggregate per document, threshold the aggregate.
  Status QueryAggregate(const std::string& pattern, double tau,
                        RelevanceMetric metric,
                        std::vector<DocMatch>* out) const {
    out->clear();
    PTI_RETURN_IF_ERROR(CheckQuery(pattern, tau));
    const auto range = st.FindRange(Text::MapPattern(pattern));
    if (!range.has_value() || range->empty()) return Status::OK();
    const int32_t m = static_cast<int32_t>(pattern.size());
    const LogProb log_floor = LogProb::FromLinear(tau_min);
    struct Agg {
      double sum = 0, prod = 1, none = 1;
    };
    std::unordered_map<int32_t, Agg> agg;
    std::unordered_set<int64_t> seen;  // distinct (doc, position) keys
    for (int32_t j = range->begin; j < range->end; ++j) {
      const double v = RawValue(m, j);
      if (!LogProb::FromLog(v).MeetsThreshold(log_floor)) continue;
      const int64_t q = st.sa()[j];
      if (!seen.insert(GlobalPos(q)).second) continue;
      const double p = std::exp(v);
      Agg& a = agg[doc_of[q]];
      a.sum += p;
      a.prod *= p;
      a.none *= (1.0 - p);
    }
    // pti-lint: allow(unordered-iteration-in-serde): per-doc aggregates are
    // independent and the matches are sorted by doc before returning.
    for (const auto& [d, a] : agg) {
      const double rel = metric == RelevanceMetric::kPaperOr
                             ? a.sum - a.prod
                             : 1.0 - a.none;
      if (RelevanceMeets(rel, tau)) out->push_back(DocMatch{d, rel});
    }
    std::sort(out->begin(), out->end(),
              [](const DocMatch& a, const DocMatch& b) {
                return a.doc < b.doc;
              });
    return Status::OK();
  }
};

ListingIndex::ListingIndex() = default;
ListingIndex::~ListingIndex() = default;
ListingIndex::ListingIndex(ListingIndex&&) noexcept = default;
ListingIndex& ListingIndex::operator=(ListingIndex&&) noexcept = default;

StatusOr<ListingIndex> ListingIndex::Build(
    const std::vector<UncertainString>& docs, const ListingOptions& options) {
  ListingIndex index;
  index.impl_ = std::make_unique<Impl>();
  Impl& i = *index.impl_;
  i.docs = docs;
  i.options = options;
  i.tau_min = options.transform.tau_min;

  i.doc_base.assign(docs.size() + 1, 0);
  for (size_t d = 0; d < docs.size(); ++d) {
    i.doc_base[d + 1] = i.doc_base[d] + docs[d].size();
  }
  // Transform every document and splice its factors into the shared text.
  for (size_t d = 0; d < docs.size(); ++d) {
    auto fs = TransformToFactors(i.docs[d], options.transform);
    if (!fs.ok()) return fs.status();
    const FactorSet& f = fs.value();
    for (int32_t member = 0; member < f.text.num_members(); ++member) {
      const size_t begin = f.text.MemberBegin(member);
      const size_t end = f.text.MemberEnd(member);  // sentinel position
      std::vector<int32_t> chars(f.text.chars().begin() + begin,
                                 f.text.chars().begin() + end);
      i.text.AppendMember(chars);
      for (size_t k = begin; k < end; ++k) {
        i.doc_of.push_back(static_cast<int32_t>(d));
        i.pos_in_doc.push_back(f.pos[k]);
        i.logp.push_back(f.logp[k]);
      }
      i.doc_of.push_back(-1);  // sentinel
      i.pos_in_doc.push_back(-1);
      i.logp.push_back(0.0);
    }
  }
  i.BuildRules();
  PTI_RETURN_IF_ERROR(i.Finish());
  return index;
}

Status ListingIndex::Query(const std::string& pattern, double tau,
                           std::vector<DocMatch>* out) const {
  return impl_->QueryMax(pattern, tau, out);
}

Status ListingIndex::QueryWithMetric(const std::string& pattern, double tau,
                                     RelevanceMetric metric,
                                     std::vector<DocMatch>* out) const {
  if (metric == RelevanceMetric::kMax) {
    return impl_->QueryMax(pattern, tau, out);
  }
  return impl_->QueryAggregate(pattern, tau, metric, out);
}

int32_t ListingIndex::num_docs() const {
  return static_cast<int32_t>(impl_->docs.size());
}

ListingIndex::Stats ListingIndex::stats() const {
  Stats s;
  s.num_docs = static_cast<int32_t>(impl_->docs.size());
  s.total_positions = impl_->doc_base.back();
  s.num_factors = static_cast<size_t>(impl_->text.num_members());
  s.transformed_length = impl_->text.size();
  s.short_depth_limit = impl_->K;
  return s;
}

Status ListingIndex::Save(std::string* out) const {
  return Save(out, serde::kContainerVersion);
}

Status ListingIndex::Save(std::string* out, uint32_t version) const {
  if (version < serde::kInterchangeVersion ||
      version > serde::kContainerVersion) {
    return Status::InvalidArgument("unsupported container version");
  }
  const Impl& i = *impl_;
  serde::ContainerWriter cw(serde::IndexKind::kListing, version);
  Writer& opts = cw.AddSection(serde::kTagOptions);
  opts.PutDouble(i.options.transform.tau_min);
  opts.PutU64(i.options.transform.max_total_length);
  opts.PutU32(static_cast<uint32_t>(i.options.max_short_depth));
  opts.PutU8(static_cast<uint8_t>(i.options.rmq_engine));
  opts.PutU64(i.options.scan_cutoff);
  Writer& docs = cw.AddSection(serde::kTagSource);
  docs.PutU64(i.docs.size());
  for (const UncertainString& d : i.docs) {
    serde::EncodeUncertainString(d, &docs);
  }
  Writer& text = cw.AddSection(serde::kTagText);
  text.PutSpan(i.text.chars());
  text.PutSpan(i.text.member_starts());
  Writer& maps = cw.AddSection(serde::kTagMaps);
  maps.PutVector(i.doc_of);
  maps.PutVector(i.pos_in_doc);
  maps.PutVector(i.logp);
  maps.PutVector(i.doc_base);
  *out = std::move(cw).Finish();
  return Status::OK();
}

StatusOr<ListingIndex> ListingIndex::Load(std::string_view data) {
  serde::ContainerReader container;
  PTI_RETURN_IF_ERROR(
      serde::ContainerReader::Open(data, serde::IndexKind::kListing,
                                   &container));
  ListingIndex index;
  index.impl_ = std::make_unique<Impl>();
  Impl& i = *index.impl_;

  Reader opts;
  PTI_RETURN_IF_ERROR(container.Section(serde::kTagOptions, &opts));
  PTI_RETURN_IF_ERROR(opts.GetDouble(&i.options.transform.tau_min));
  if (!std::isfinite(i.options.transform.tau_min) ||
      !(i.options.transform.tau_min > 0.0) ||
      i.options.transform.tau_min > 1.0) {
    return Status::Corruption("tau_min outside (0, 1]");
  }
  i.tau_min = i.options.transform.tau_min;
  uint64_t max_total = 0;
  PTI_RETURN_IF_ERROR(opts.GetU64(&max_total));
  i.options.transform.max_total_length = max_total;
  uint32_t max_short = 0;
  PTI_RETURN_IF_ERROR(opts.GetU32(&max_short));
  if (max_short > static_cast<uint32_t>(
                      std::numeric_limits<int32_t>::max())) {
    return Status::Corruption("short depth limit out of range");
  }
  i.options.max_short_depth = static_cast<int32_t>(max_short);
  uint8_t engine = 0;
  PTI_RETURN_IF_ERROR(opts.GetU8(&engine));
  if (engine > 2) return Status::Corruption("unknown RMQ engine value");
  i.options.rmq_engine = static_cast<RmqEngineKind>(engine);
  uint64_t cutoff = 0;
  PTI_RETURN_IF_ERROR(opts.GetU64(&cutoff));
  i.options.scan_cutoff = cutoff;
  PTI_RETURN_IF_ERROR(serde::ExpectSectionEnd(opts, "options"));

  Reader docs;
  PTI_RETURN_IF_ERROR(container.Section(serde::kTagSource, &docs));
  uint64_t ndocs = 0;
  PTI_RETURN_IF_ERROR(docs.GetU64(&ndocs));
  if (ndocs > docs.remaining() / 16) {  // empty doc = two u64 counts
    return Status::Corruption("document count overruns section");
  }
  i.docs.resize(ndocs);
  for (uint64_t d = 0; d < ndocs; ++d) {
    PTI_RETURN_IF_ERROR(serde::DecodeUncertainString(&docs, &i.docs[d]));
  }
  PTI_RETURN_IF_ERROR(serde::ExpectSectionEnd(docs, "documents"));

  Reader text;
  PTI_RETURN_IF_ERROR(container.Section(serde::kTagText, &text));
  std::vector<int32_t> chars;
  std::vector<int64_t> starts;
  PTI_RETURN_IF_ERROR(text.GetVector(&chars));
  PTI_RETURN_IF_ERROR(text.GetVector(&starts));
  PTI_RETURN_IF_ERROR(serde::ExpectSectionEnd(text, "text"));
  PTI_ASSIGN_OR_RETURN(i.text,
                       Text::FromRaw(std::move(chars), std::move(starts)));

  Reader maps;
  PTI_RETURN_IF_ERROR(container.Section(serde::kTagMaps, &maps));
  PTI_RETURN_IF_ERROR(maps.GetVector(&i.doc_of));
  PTI_RETURN_IF_ERROR(maps.GetVector(&i.pos_in_doc));
  PTI_RETURN_IF_ERROR(maps.GetVector(&i.logp));
  PTI_RETURN_IF_ERROR(maps.GetVector(&i.doc_base));
  PTI_RETURN_IF_ERROR(serde::ExpectSectionEnd(maps, "maps"));

  const size_t n = i.text.size();
  if (i.doc_of.size() != n || i.pos_in_doc.size() != n ||
      i.logp.size() != n) {
    return Status::Corruption("listing maps inconsistent with text");
  }
  if (i.doc_base.size() != ndocs + 1 || i.doc_base[0] != 0) {
    return Status::Corruption("document base offsets malformed");
  }
  for (uint64_t d = 0; d < ndocs; ++d) {
    // Addition on the already-validated side: doc_base[d] is proven small by
    // induction from doc_base[0] == 0, while doc_base[d + 1] is hostile and
    // subtracting it could overflow (UB).
    if (i.doc_base[d + 1] != i.doc_base[d] + i.docs[d].size()) {
      return Status::Corruption("document base offsets malformed");
    }
  }
  for (size_t q = 0; q < n; ++q) {
    if (i.text.IsSentinel(q)) {
      if (i.doc_of[q] != -1 || i.pos_in_doc[q] != -1 || i.logp[q] != 0.0) {
        return Status::Corruption("sentinel position carries document data");
      }
      continue;
    }
    if (i.doc_of[q] < 0 || static_cast<uint64_t>(i.doc_of[q]) >= ndocs) {
      return Status::Corruption("document id out of range");
    }
    if (i.pos_in_doc[q] < 0 ||
        i.pos_in_doc[q] >= i.docs[i.doc_of[q]].size()) {
      return Status::Corruption("document position out of range");
    }
    // The correlation adjustment assumes text offsets and document offsets
    // advance together inside a factor.
    if (q + 1 < n && !i.text.IsSentinel(q + 1) &&
        (i.doc_of[q + 1] != i.doc_of[q] ||
         i.pos_in_doc[q + 1] != i.pos_in_doc[q] + 1)) {
      return Status::Corruption("document positions not contiguous");
    }
    if (std::isnan(i.logp[q]) || i.logp[q] > 0.0) {
      return Status::Corruption("stored log-probability above 0");
    }
  }

  i.BuildRules();
  PTI_RETURN_IF_ERROR(i.Finish());
  return index;
}

size_t ListingIndex::MemoryUsage() const {
  const Impl& i = *impl_;
  size_t bytes = i.text.MemoryUsage() + i.st.MemoryUsage() +
                 i.doc_of.capacity() * sizeof(int32_t) +
                 i.pos_in_doc.capacity() * sizeof(int64_t) +
                 i.logp.capacity() * sizeof(double) +
                 i.c.capacity() * sizeof(double) +
                 i.remaining.capacity() * sizeof(int32_t) +
                 i.corr_positions.capacity() * sizeof(int64_t);
  for (const auto& d : i.docs) bytes += d.MemoryUsage();
  for (const auto& bits : i.active) bytes += bits.capacity() * sizeof(uint64_t);
  for (const auto& r : i.short_rmq) bytes += r->MemoryUsage();
  for (const auto& level : i.long_levels) bytes += level.rmq->MemoryUsage();
  return bytes;
}

}  // namespace pti
