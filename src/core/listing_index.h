// ListingIndex: uncertain string listing from a collection (§6, Problem 2).
//
// Every document is factor-transformed (Lemma 2) and all factors share one
// generalized suffix structure; a query (p, tau) reports the *documents*
// containing an occurrence of p with probability >= tau — in time
// proportional to the number of documents, not occurrences, for the
// Rel_max metric.
//
// Duplicate elimination (§6): within every depth-i locus partition of the
// suffix array, exactly one entry per document stays active — the one whose
// window probability is largest — so the recursive-RMQ walk touches each
// qualifying document once and its value *is* Rel_max(doc, p).
//
// The paper's OR metric (and the sound noisy-OR variant) require visiting
// every occurrence, as §6 concedes; QueryWithMetric does exactly that.

#ifndef PTI_CORE_LISTING_INDEX_H_
#define PTI_CORE_LISTING_INDEX_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/factor_transform.h"
#include "core/match.h"
#include "core/uncertain_string.h"
#include "rmq/rmq_handle.h"
#include "util/status.h"

namespace pti {

struct ListingOptions {
  TransformOptions transform;
  /// Depth limit K for the per-depth RMQ forest; 0 means ceil(log2(N)).
  int32_t max_short_depth = 0;
  RmqEngineKind rmq_engine = RmqEngineKind::kBlock;
  /// Locus ranges no larger than this are scanned directly.
  size_t scan_cutoff = 64;
};

class ListingIndex {
 public:
  ListingIndex();
  ~ListingIndex();
  ListingIndex(ListingIndex&&) noexcept;
  ListingIndex& operator=(ListingIndex&&) noexcept;

  static StatusOr<ListingIndex> Build(const std::vector<UncertainString>& docs,
                                      const ListingOptions& options = {});

  /// Rel_max listing: documents with at least one occurrence of `pattern`
  /// with probability >= tau; relevance is that maximum probability.
  /// Sorted by document id. O(m + ndoc) for patterns with m <= K.
  Status Query(const std::string& pattern, double tau,
               std::vector<DocMatch>* out) const;

  /// Listing under any §6 metric. kMax routes to Query; the OR metrics
  /// aggregate every occurrence with probability >= tau_min (the index's
  /// enumeration floor) and report documents with relevance >= tau.
  Status QueryWithMetric(const std::string& pattern, double tau,
                         RelevanceMetric metric,
                         std::vector<DocMatch>* out) const;

  int32_t num_docs() const;

  struct Stats {
    int32_t num_docs = 0;
    int64_t total_positions = 0;
    size_t num_factors = 0;
    size_t transformed_length = 0;
    int32_t short_depth_limit = 0;
  };
  Stats stats() const;
  size_t MemoryUsage() const;

  /// Serializes the documents, options and the spliced factor text (so Load
  /// skips the per-document factor transformation) into the shared container
  /// format (core/serde.h); Load rebuilds the derived structures (suffix
  /// tree, RMQ forest, rule table) deterministically.
  Status Save(std::string* out) const;
  /// Same, at an explicit container version (serde::kInterchangeVersion or
  /// serde::kContainerVersion); the payload encoding is identical, only the
  /// framing (alignment, padding) differs.
  Status Save(std::string* out, uint32_t version) const;
  static StatusOr<ListingIndex> Load(std::string_view data);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pti

#endif  // PTI_CORE_LISTING_INDEX_H_
