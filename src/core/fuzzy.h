// Fuzzy (approximate) probabilistic threshold matching: k-mismatch and
// small-edit-distance queries over uncertain strings.
//
// Semantics: position i matches (pattern, tau, k) iff some deterministic
// variant p' within distance <= k of the pattern occurs at i with
// probability >= tau; the reported probability is the maximum over such
// variants (correlation rules resolved exactly as in §3.3). k = 0 degenerates
// to the exact threshold query. Distances:
//
//   * kMismatch — Hamming: substitutions only, |p'| == |p|;
//   * kEdit — Levenshtein: substitutions + insertions + deletions, so
//     |p'| ranges over [max(1, |p| - k), |p| + k] (the empty variant is
//     excluded: an empty pattern never matches anywhere, fuzzily or not).
//
// The index-side implementations (core/substring_index.cc) enumerate variant
// windows directly — branching backward search over the FM-index in compact
// mode, seed-and-extend over the suffix tree — and re-filter every window
// with the same LogProb::MeetsThreshold predicate the exact paths use, so
// the factor transformation's coverage/soundness guarantees carry over
// unchanged: any variant occurrence with probability >= tau_min is a factor
// window, and every factor window's value is that window's exact occurrence
// probability. This header holds the shared pieces: parameter validation,
// the variant-enumeration probability (the verification primitive), the
// BruteForceFuzzy oracle the differential tests pin everything against, and
// the FM-index range enumerator.

#ifndef PTI_CORE_FUZZY_H_
#define PTI_CORE_FUZZY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/match.h"
#include "core/uncertain_string.h"
#include "util/log_prob.h"
#include "util/status.h"

namespace pti {

class FmIndex;

/// Distance under which variants of the pattern are admitted.
enum class FuzzyMetric : uint8_t {
  kMismatch = 0,  ///< Hamming distance (substitutions only).
  kEdit = 1,      ///< Levenshtein distance (substitutions + indels).
};

/// Hard cap on k: the branching search multiplies its fan-out by the
/// alphabet per error, so errors beyond 2 belong to a different algorithm
/// family (filtering indexes), not this one.
inline constexpr int32_t kMaxFuzzyErrors = 2;

struct FuzzyParams {
  int32_t k = 1;
  FuzzyMetric metric = FuzzyMetric::kMismatch;
};

/// One (pattern, tau, params) query of a fuzzy batch; the fuzzy analogue of
/// BatchQuery, shared by SubstringIndex::QueryFuzzyBatch and the engine
/// layer.
struct FuzzyBatchQuery {
  std::string pattern;
  double tau = 0.0;
  FuzzyParams params;
};

/// Validates k and the metric: k < 0 or an unknown metric value is
/// InvalidArgument; k > kMaxFuzzyErrors is NotSupported.
Status CheckFuzzyParams(const FuzzyParams& params);

/// Max over all variants p' (dist(pattern, p') <= k, p' non-empty) of
/// Pr(p' occurs at i) — the verification primitive shared by the oracle and
/// the tree-mode seed-and-extend path. Correlation rules resolve against
/// each variant's own window (§3.3). Returns LogProb::Zero() for an empty
/// pattern or an out-of-range i.
LogProb FuzzyOccurrenceProb(const UncertainString& s,
                            const std::string& pattern, int64_t i,
                            const FuzzyParams& params);

/// Ground-truth oracle: every position i with FuzzyOccurrenceProb >= tau,
/// sorted by position, probabilities in linear space. The same shape as
/// BruteForceSearch, which it reproduces bit-for-bit at k = 0.
std::vector<Match> BruteForceFuzzy(const UncertainString& s,
                                   const std::string& pattern, double tau,
                                   const FuzzyParams& params);

/// A complete approximate locus: the suffix-array range of one variant
/// (coordinates of the SA the FmIndex was built over) plus the variant's
/// length — the window depth the caller must extract at.
struct FuzzySaRange {
  int32_t begin = 0;
  int32_t end = 0;  ///< exclusive
  int32_t length = 0;

  friend bool operator==(const FuzzySaRange& a, const FuzzySaRange& b) {
    return a.begin == b.begin && a.end == b.end && a.length == b.length;
  }
};

/// Branching backward search (compact mode): enumerates the suffix-array
/// range of every distinct variant within distance <= params.k that occurs
/// in the indexed text, via FmIndex::ExtendLeft with substitution branches
/// over the occupied byte symbols (plus insert/delete steps under kEdit).
/// `pattern` is Text::MapPattern output. Results are deduplicated and
/// sorted by (begin, end, length).
std::vector<FuzzySaRange> EnumerateFmFuzzyRanges(
    const FmIndex& fm, const std::vector<int32_t>& pattern,
    const FuzzyParams& params);

/// Splits [0, m) into k+1 contiguous non-empty pieces (requires m > k):
/// under <= k errors, at least one piece is untouched by any error
/// (pigeonhole), so it occurs exactly in every admissible variant — the
/// seed set for tree-mode seed-and-extend. Returned as (offset, length)
/// pairs covering [0, m) in order.
std::vector<std::pair<int32_t, int32_t>> FuzzySeeds(int32_t m, int32_t k);

}  // namespace pti

#endif  // PTI_CORE_FUZZY_H_
