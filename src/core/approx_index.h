// ApproxIndex: approximate substring searching with additive error (§7).
//
// Built over the factor-transformed suffix tree. Every leaf is marked with
// the original position d its suffix is aligned to; an internal node is
// marked d when it is the LCA of two consecutive d-marked leaves (the
// Hon-Shah-Vitter marking, which is closed under LCA). Every marked node
// links to its lowest properly-marked ancestor; links whose endpoint
// probabilities differ by more than epsilon are split by walking the edge
// one character at a time, so consecutive probabilities along any chain
// differ by at most epsilon (linear-probability domain).
//
// A link with origin point (node a, string depth t_o) and target point
// (node c, string depth t_t) is *stabbed* by a query with locus w and length
// m iff a is in subtree(w), t_t < m and t_o >= m — i.e. the link's depth
// interval (t_t, t_o] contains the pattern point. For each occurrence
// position d there is exactly ONE stabbed link (uniqueness follows from
// LCA-closure; see the comment on QueryLinks), whose probability brackets
// the true occurrence probability within epsilon.
//
// Query: walk the <= m+1 ancestors of the locus; for each, enumerate its
// incoming links with origin inside subtree(w) by recursive RMQ over link
// probabilities, down to tau - epsilon. Guarantees (tested):
//   * every position with Pr(p, d) >= tau is reported;
//   * every reported position has Pr(p, d) >= tau - epsilon.

#ifndef PTI_CORE_APPROX_INDEX_H_
#define PTI_CORE_APPROX_INDEX_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/factor_transform.h"
#include "core/match.h"
#include "core/uncertain_string.h"
#include "rmq/rmq_handle.h"
#include "util/status.h"

namespace pti {

struct ApproxOptions {
  TransformOptions transform;
  /// Additive error bound on reported probabilities (0 < epsilon <= 1).
  double epsilon = 0.05;
  /// When true, reported probabilities are recomputed exactly from the
  /// source string (O(m) per result); otherwise the link probability is
  /// reported, which under-reports the true value by at most epsilon.
  bool exact_probabilities = false;
};

class ApproxIndex {
 public:
  ApproxIndex();
  ~ApproxIndex();
  ApproxIndex(ApproxIndex&&) noexcept;
  ApproxIndex& operator=(ApproxIndex&&) noexcept;

  static StatusOr<ApproxIndex> Build(const UncertainString& s,
                                     const ApproxOptions& options = {});

  /// Reports positions sorted by position: all true >= tau matches plus
  /// possibly matches down to tau - epsilon.
  Status Query(const std::string& pattern, double tau,
               std::vector<Match>* out) const;

  struct Stats {
    int64_t original_length = 0;
    size_t transformed_length = 0;
    size_t num_marked_nodes = 0;
    size_t num_links = 0;  ///< after epsilon-partitioning
  };
  Stats stats() const;
  size_t MemoryUsage() const;

  /// Serializes the source string, options and factor set into the shared
  /// container format (core/serde.h); Load rebuilds the derived structures
  /// (suffix tree, marking, epsilon-partitioned links) deterministically.
  Status Save(std::string* out) const;
  /// Same, at an explicit container version (serde::kInterchangeVersion or
  /// serde::kContainerVersion); the payload encoding is identical, only the
  /// framing (alignment, padding) differs.
  Status Save(std::string* out, uint32_t version) const;
  static StatusOr<ApproxIndex> Load(std::string_view data);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pti

#endif  // PTI_CORE_APPROX_INDEX_H_
