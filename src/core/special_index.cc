#include "core/special_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "core/serde.h"
#include "suffix/suffix_tree.h"
#include "suffix/text.h"
#include "util/serial.h"

namespace pti {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

int64_t RuleKey(int64_t pos, uint8_t ch) { return pos * 256 + ch; }
}  // namespace

struct SpecialIndex::Impl {
  UncertainString source;
  SpecialIndexOptions options;
  Text text;  // single member: the character sequence + one sentinel
  SuffixTree st;
  std::vector<double> c;          // prefix sums of per-position log probs
  std::vector<int32_t> remaining; // chars to end of string (0 on sentinel)
  std::vector<int64_t> corr_positions;  // sorted positions carrying rules
  std::unordered_map<int64_t, const CorrelationRule*> rules;

  int32_t K = 0;
  std::vector<std::unique_ptr<RmqHandle>> short_rmq;
  struct LongLevel {
    int32_t depth = 0;
    std::unique_ptr<RmqHandle> rmq;
  };
  std::vector<LongLevel> long_levels;

  size_t N() const { return text.size(); }

  // Exact log-probability of the depth-length window of SA entry j
  // (correlation-resolved; §4.1 "Handling Correlation").
  double RawValue(int32_t depth, size_t j) const {
    const int64_t q = st.sa()[j];
    if (remaining[q] < depth) return kNegInf;
    double v = c[q + depth] - c[q];
    if (!corr_positions.empty()) {
      auto it =
          std::lower_bound(corr_positions.begin(), corr_positions.end(), q);
      for (; it != corr_positions.end() && *it < q + depth; ++it) {
        const int64_t z = *it;
        const uint8_t ch = static_cast<uint8_t>(text.chars()[z]);
        const CorrelationRule* rule = rules.at(RuleKey(z, ch));
        double p;
        if (rule->dep_pos >= q && rule->dep_pos < q + depth) {
          const bool present =
              text.chars()[rule->dep_pos] == rule->dep_ch;
          p = present ? rule->prob_if_present : rule->prob_if_absent;
        } else {
          const double dep = source.BaseProb(rule->dep_pos, rule->dep_ch);
          p = dep * rule->prob_if_present +
              (1.0 - dep) * rule->prob_if_absent;
        }
        v += (p <= 0.0 ? kNegInf : std::log(p)) - StoredLog(z);
      }
    }
    return v;
  }

  double StoredLog(int64_t z) const { return c[z + 1] - c[z]; }

  struct RawFn {
    const Impl* impl;
    int32_t depth;
    double operator()(size_t j) const { return impl->RawValue(depth, j); }
  };

  Status Finish() {
    st = SuffixTree::Build(text.chars(), text.alphabet_size());
    const size_t n_text = N();
    remaining.assign(n_text, 0);
    for (int64_t q = static_cast<int64_t>(n_text) - 1; q >= 0; --q) {
      remaining[q] = text.IsSentinel(q) ? 0 : remaining[q + 1] + 1;
    }
    if (options.max_short_depth > 0) {
      K = options.max_short_depth;
    } else {
      K = 1;
      while ((size_t{1} << K) < std::max<size_t>(n_text, 2)) ++K;
    }
    const int32_t n_real = static_cast<int32_t>(source.size());
    K = std::max(1, std::min(K, std::max(n_real, 1)));

    if (options.use_rmq) {
      for (int32_t i = 1; i <= K; ++i) {
        short_rmq.push_back(
            MakeRmq(options.rmq_engine, RawFn{this, i}, n_text));
      }
      if (options.build_long_levels) {
        for (int64_t d = K; d <= n_real; d *= 2) {
          LongLevel level;
          level.depth = static_cast<int32_t>(d);
          level.rmq = MakeRmq(RmqEngineKind::kBlock, RawFn{this, level.depth},
                              n_text, static_cast<size_t>(d));
          long_levels.push_back(std::move(level));
        }
      }
    }
    return Status::OK();
  }

  void RecursiveRmq(const RmqHandle* rmq, int32_t exact_depth,
                    int32_t filter_depth, int32_t l, int32_t r,
                    LogProb log_tau, std::vector<Match>* out) const {
    std::vector<std::pair<int32_t, int32_t>> stack{{l, r}};
    while (!stack.empty()) {
      auto [lo, hi] = stack.back();
      stack.pop_back();
      if (lo > hi) continue;
      const size_t pos = rmq->ArgMax(lo, hi);
      const double filter_v = RawValue(filter_depth, pos);
      if (!LogProb::FromLog(filter_v).MeetsThreshold(log_tau)) continue;
      const double v = filter_depth == exact_depth
                           ? filter_v
                           : RawValue(exact_depth, pos);
      if (LogProb::FromLog(v).MeetsThreshold(log_tau)) {
        out->push_back(Match{st.sa()[pos], std::exp(v)});
      }
      stack.emplace_back(lo, static_cast<int32_t>(pos) - 1);
      stack.emplace_back(static_cast<int32_t>(pos) + 1, hi);
    }
  }

  void ScanQuery(int32_t m, int32_t l, int32_t r, LogProb log_tau,
                 std::vector<Match>* out) const {
    for (int32_t j = l; j <= r; ++j) {
      const double v = RawValue(m, j);
      if (LogProb::FromLog(v).MeetsThreshold(log_tau)) {
        out->push_back(Match{st.sa()[j], std::exp(v)});
      }
    }
  }

  Status Query(const std::string& pattern, double tau,
               std::vector<Match>* out) const {
    out->clear();
    if (pattern.empty()) {
      return Status::InvalidArgument("pattern must be non-empty");
    }
    if (!(tau > 0.0) || tau > 1.0) {
      return Status::InvalidArgument("tau must be in (0, 1]");
    }
    const auto range = st.FindRange(Text::MapPattern(pattern));
    if (!range.has_value() || range->empty()) return Status::OK();
    const int32_t m = static_cast<int32_t>(pattern.size());
    const int32_t l = range->begin;
    const int32_t r = range->end - 1;
    const LogProb log_tau = LogProb::FromLinear(tau);
    if (!options.use_rmq ||
        static_cast<size_t>(r - l + 1) <= options.scan_cutoff) {
      ScanQuery(m, l, r, log_tau, out);
    } else if (m <= K) {
      RecursiveRmq(short_rmq[m - 1].get(), m, m, l, r, log_tau, out);
    } else {
      const LongLevel* level = nullptr;
      for (const auto& cand : long_levels) {
        if (cand.depth <= m &&
            (level == nullptr || cand.depth > level->depth)) {
          level = &cand;
        }
      }
      if (level == nullptr) {
        ScanQuery(m, l, r, log_tau, out);
      } else {
        RecursiveRmq(level->rmq.get(), m, level->depth, l, r, log_tau, out);
      }
    }
    std::sort(out->begin(), out->end(), [](const Match& a, const Match& b) {
      return a.position < b.position;
    });
    return Status::OK();
  }
};

SpecialIndex::SpecialIndex() = default;
SpecialIndex::~SpecialIndex() = default;
SpecialIndex::SpecialIndex(SpecialIndex&&) noexcept = default;
SpecialIndex& SpecialIndex::operator=(SpecialIndex&&) noexcept = default;

StatusOr<SpecialIndex> SpecialIndex::Build(const UncertainString& s,
                                           const SpecialIndexOptions& options) {
  // §4 Definition 1: exactly one option per position with 0 < pr <= 1.
  // (Unlike general uncertain strings, the probabilities need not sum to 1 —
  // the remaining mass is the "no occurrence" event, as in Figure 5.)
  if (!s.IsSpecial()) {
    return Status::InvalidArgument(
        "SpecialIndex requires exactly one option per position");
  }
  for (int64_t p = 0; p < s.size(); ++p) {
    const double prob = s.options(p)[0].prob;
    if (!(prob > 0.0) || prob > 1.0) {
      return Status::InvalidArgument(
          "special uncertain string probabilities must be in (0, 1]");
    }
  }
  SpecialIndex index;
  index.impl_ = std::make_unique<Impl>();
  Impl& i = *index.impl_;
  i.source = s;
  i.options = options;

  std::vector<int32_t> chars;
  chars.reserve(s.size());
  i.c.assign(static_cast<size_t>(s.size()) + 2, 0.0);
  for (int64_t p = 0; p < s.size(); ++p) {
    const CharOption& opt = s.options(p)[0];
    double stored = opt.prob;
    if (const CorrelationRule* rule = s.FindRule(p, opt.ch)) {
      stored = std::max(rule->prob_if_present, rule->prob_if_absent);
      i.corr_positions.push_back(p);
    }
    if (!(stored > 0.0)) {
      return Status::InvalidArgument(
          "special uncertain string requires positive probabilities");
    }
    chars.push_back(opt.ch);
    i.c[p + 1] = i.c[p] + std::log(stored);
  }
  i.c[s.size() + 1] = i.c[s.size()];  // sentinel contributes nothing
  i.text.AppendMember(chars);
  // Rules point at the retained copy of the source (stable inside the Impl).
  for (const CorrelationRule& r : i.source.correlations()) {
    i.rules[RuleKey(r.pos, r.ch)] = &r;
  }
  PTI_RETURN_IF_ERROR(i.Finish());
  return index;
}

Status SpecialIndex::Query(const std::string& pattern, double tau,
                           std::vector<Match>* out) const {
  return impl_->Query(pattern, tau, out);
}

SpecialIndex::Stats SpecialIndex::stats() const {
  Stats s;
  s.length = impl_->source.size();
  s.short_depth_limit = impl_->K;
  s.num_tree_nodes = static_cast<size_t>(impl_->st.num_nodes());
  return s;
}

Status SpecialIndex::Save(std::string* out) const {
  return Save(out, serde::kContainerVersion);
}

Status SpecialIndex::Save(std::string* out, uint32_t version) const {
  if (version < serde::kInterchangeVersion ||
      version > serde::kContainerVersion) {
    return Status::InvalidArgument("unsupported container version");
  }
  const Impl& i = *impl_;
  serde::ContainerWriter cw(serde::IndexKind::kSpecial, version);
  Writer& opts = cw.AddSection(serde::kTagOptions);
  opts.PutU32(static_cast<uint32_t>(i.options.max_short_depth));
  opts.PutU8(static_cast<uint8_t>(i.options.rmq_engine));
  opts.PutU8(i.options.use_rmq ? 1 : 0);
  opts.PutU8(i.options.build_long_levels ? 1 : 0);
  opts.PutU64(i.options.scan_cutoff);
  serde::EncodeUncertainString(i.source, &cw.AddSection(serde::kTagSource));
  *out = std::move(cw).Finish();
  return Status::OK();
}

StatusOr<SpecialIndex> SpecialIndex::Load(std::string_view data) {
  serde::ContainerReader container;
  PTI_RETURN_IF_ERROR(
      serde::ContainerReader::Open(data, serde::IndexKind::kSpecial,
                                   &container));
  SpecialIndexOptions options;
  Reader opts;
  PTI_RETURN_IF_ERROR(container.Section(serde::kTagOptions, &opts));
  uint32_t max_short = 0;
  PTI_RETURN_IF_ERROR(opts.GetU32(&max_short));
  if (max_short > static_cast<uint32_t>(
                      std::numeric_limits<int32_t>::max())) {
    return Status::Corruption("short depth limit out of range");
  }
  options.max_short_depth = static_cast<int32_t>(max_short);
  uint8_t engine = 0, use_rmq = 0, long_levels = 0;
  PTI_RETURN_IF_ERROR(opts.GetU8(&engine));
  if (engine > 2) return Status::Corruption("unknown RMQ engine value");
  options.rmq_engine = static_cast<RmqEngineKind>(engine);
  PTI_RETURN_IF_ERROR(opts.GetU8(&use_rmq));
  PTI_RETURN_IF_ERROR(opts.GetU8(&long_levels));
  if (use_rmq > 1 || long_levels > 1) {
    return Status::Corruption("bad boolean option flag");
  }
  options.use_rmq = use_rmq != 0;
  options.build_long_levels = long_levels != 0;
  uint64_t cutoff = 0;
  PTI_RETURN_IF_ERROR(opts.GetU64(&cutoff));
  options.scan_cutoff = cutoff;
  PTI_RETURN_IF_ERROR(serde::ExpectSectionEnd(opts, "options"));

  UncertainString source;
  Reader src;
  PTI_RETURN_IF_ERROR(container.Section(serde::kTagSource, &src));
  PTI_RETURN_IF_ERROR(serde::DecodeUncertainString(
      &src, &source, /*require_unit_sums=*/false));
  PTI_RETURN_IF_ERROR(serde::ExpectSectionEnd(src, "source"));

  // Build re-runs the §4 input validation (one option per position,
  // probabilities in (0, 1]); a decoded string that fails it is corrupt
  // data, not a caller error.
  auto built = Build(source, options);
  if (!built.ok()) {
    return Status::Corruption("persisted inputs failed validation: " +
                              built.status().message());
  }
  return built;
}

size_t SpecialIndex::MemoryUsage() const {
  const Impl& i = *impl_;
  size_t bytes = i.source.MemoryUsage() + i.text.MemoryUsage() +
                 i.st.MemoryUsage() + i.c.capacity() * sizeof(double) +
                 i.remaining.capacity() * sizeof(int32_t) +
                 i.corr_positions.capacity() * sizeof(int64_t);
  for (const auto& r : i.short_rmq) bytes += r->MemoryUsage();
  for (const auto& level : i.long_levels) bytes += level.rmq->MemoryUsage();
  return bytes;
}

}  // namespace pti
