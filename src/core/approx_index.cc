#include "core/approx_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "core/serde.h"
#include "suffix/suffix_tree.h"
#include "util/serial.h"

namespace pti {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

int64_t RuleKey(int64_t pos, uint8_t ch) { return pos * 256 + ch; }

// One epsilon-partitioned link. Origin point: (origin_node, origin_depth) —
// origin_node is the real node at or directly below the point (the point
// lies on its incoming edge). Target point likewise.
struct Link {
  int32_t origin_node = 0;
  int32_t origin_depth = 0;
  int32_t target_node = 0;
  int32_t target_depth = 0;
  int64_t position = 0;  // d: alignment in S
  double logp = 0.0;     // log Pr(prefix(origin point) at d)
};
}  // namespace

struct ApproxIndex::Impl {
  UncertainString source;
  ApproxOptions options;
  FactorSet fs;
  SuffixTree st;

  std::vector<double> c;
  std::vector<int32_t> remaining;
  std::unordered_map<int64_t, const CorrelationRule*> rules;

  std::vector<Link> links;          // sorted by (target_node, origin_node)
  std::vector<int64_t> target_off;  // CSR into links by target node
  std::unique_ptr<RmqHandle> link_rmq;
  size_t num_marked = 0;

  size_t N() const { return fs.text.size(); }

  // Exact log-probability of the window of `len` characters starting at text
  // position q, correlation-resolved for that window.
  double WindowLog(int64_t q, int32_t len) const {
    if (len <= 0) return 0.0;
    if (remaining[q] < len) return kNegInf;
    double v = c[q + len] - c[q];
    if (!fs.corr_positions.empty()) {
      auto it = std::lower_bound(fs.corr_positions.begin(),
                                 fs.corr_positions.end(), q);
      for (; it != fs.corr_positions.end() && *it < q + len; ++it) {
        const int64_t z = *it;
        const uint8_t ch = static_cast<uint8_t>(fs.text.chars()[z]);
        const CorrelationRule* rule = rules.at(RuleKey(fs.pos[z], ch));
        const int64_t ws = fs.pos[q];
        double p;
        if (rule->dep_pos >= ws && rule->dep_pos < ws + len) {
          const int64_t zdep = q + (rule->dep_pos - ws);
          p = fs.text.chars()[zdep] == rule->dep_ch ? rule->prob_if_present
                                                    : rule->prob_if_absent;
        } else {
          const double dep = source.BaseProb(rule->dep_pos, rule->dep_ch);
          p = dep * rule->prob_if_present +
              (1.0 - dep) * rule->prob_if_absent;
        }
        v += (p <= 0.0 ? kNegInf : std::log(p)) - fs.logp[z];
      }
    }
    return v;
  }

  struct LinkLogFn {
    const Impl* impl;
    double operator()(size_t j) const { return impl->links[j].logp; }
  };

  Status Finish() {
    const size_t n_text = N();
    st = SuffixTree::Build(fs.text.chars(), fs.text.alphabet_size());
    st.BuildLcaSupport();

    rules.clear();
    for (const CorrelationRule& r : source.correlations()) {
      rules[RuleKey(r.pos, r.ch)] = &r;
    }
    c.assign(n_text + 1, 0.0);
    for (size_t k = 0; k < n_text; ++k) c[k + 1] = c[k] + fs.logp[k];
    remaining.assign(n_text, 0);
    for (int64_t q = static_cast<int64_t>(n_text) - 1; q >= 0; --q) {
      remaining[q] = fs.text.IsSentinel(q) ? 0 : remaining[q + 1] + 1;
    }

    BuildLinks();
    if (!links.empty()) {
      link_rmq = MakeRmq(RmqEngineKind::kBlock, LinkLogFn{this},
                         links.size());
    }
    return Status::OK();
  }

  void BuildLinks() {
    const auto& sa = st.sa();
    // (position d, SA index) for every real-character suffix, grouped by d
    // in SA (== leaf preorder) order.
    std::vector<std::pair<int64_t, int32_t>> dleaves;
    dleaves.reserve(N());
    for (size_t j = 0; j < N(); ++j) {
      const int64_t d = fs.pos[sa[j]];
      if (d >= 0) dleaves.emplace_back(d, static_cast<int32_t>(j));
    }
    std::sort(dleaves.begin(), dleaves.end());

    // Marked nodes per d: the d-leaves plus LCAs of consecutive d-leaves.
    // (node, representative SA index of a d-leaf below it)
    std::vector<std::pair<int32_t, int32_t>> marks;
    links.clear();
    size_t lo = 0;
    while (lo < dleaves.size()) {
      size_t hi = lo;
      const int64_t d = dleaves[lo].first;
      while (hi < dleaves.size() && dleaves[hi].first == d) ++hi;
      marks.clear();
      for (size_t k = lo; k < hi; ++k) {
        marks.emplace_back(st.leaf_node(dleaves[k].second),
                           dleaves[k].second);
        if (k + 1 < hi) {
          const int32_t lca = st.Lca(st.leaf_node(dleaves[k].second),
                                     st.leaf_node(dleaves[k + 1].second));
          marks.emplace_back(lca, dleaves[k].second);
        }
      }
      std::sort(marks.begin(), marks.end());
      marks.erase(std::unique(marks.begin(), marks.end(),
                              [](const auto& a, const auto& b) {
                                return a.first == b.first;
                              }),
                  marks.end());
      num_marked += marks.size();
      // Preorder sweep with an ancestor stack: each marked node links to the
      // nearest marked node still open above it (or the root).
      std::vector<int32_t> stack;  // marked nodes, each an ancestor of next
      for (const auto& [node, rep] : marks) {
        while (!stack.empty() && !st.IsAncestor(stack.back(), node)) {
          stack.pop_back();
        }
        const int32_t target = stack.empty() ? st.root() : stack.back();
        if (node != target) EmitLink(node, target, d, rep);
        stack.push_back(node);
      }
      lo = hi;
    }

    std::sort(links.begin(), links.end(), [](const Link& a, const Link& b) {
      if (a.target_node != b.target_node) return a.target_node < b.target_node;
      return a.origin_node < b.origin_node;
    });
    target_off.assign(static_cast<size_t>(st.num_nodes()) + 1, 0);
    for (const Link& l : links) target_off[l.target_node + 1]++;
    for (size_t v = 0; v + 1 < target_off.size(); ++v) {
      target_off[v + 1] += target_off[v];
    }
  }

  // Splits the (u -> v, d) chain edge into epsilon-bounded sub-links. Both
  // endpoints of every sub-link lie on the root-to-u path, so the stabbing
  // predicate only ever needs (u, v, the two depths): no dummy-node ids.
  void EmitLink(int32_t u, int32_t v, int64_t d, int32_t rep_sa) {
    const int64_t q = st.sa()[rep_sa];
    const int32_t t_bottom = std::min(st.depth(u), remaining[q]);
    const int32_t t_top = st.depth(v);
    if (t_bottom <= t_top) return;  // fully beyond the factor: nothing to add
    const double eps = options.epsilon;
    // Without correlations in range the window probability is monotone
    // non-increasing in length, so the climb can binary-search the prefix
    // sums; correlation rules can break monotonicity (a case-1 resolution
    // may beat the stored optimistic value's marginal), forcing a linear
    // climb for those (rare) chains.
    const bool monotone =
        fs.corr_positions.empty() ||
        !HasCorrInRange(q, q + t_bottom);
    int32_t bottom = t_bottom;
    double bottom_logp = WindowLog(q, bottom);
    while (bottom > t_top) {
      const double limit = std::exp(bottom_logp) + eps;
      int32_t top;
      if (monotone) {
        // Highest point whose probability still stays within eps.
        const double log_limit = std::log(std::min(limit, 1.0));
        int32_t lo = t_top, hi = bottom;  // answer in [lo, hi]
        while (lo < hi) {
          const int32_t mid = lo + (hi - lo) / 2;
          if (c[q + mid] - c[q] <= log_limit + 1e-12) {
            hi = mid;
          } else {
            lo = mid + 1;
          }
        }
        top = lo;
      } else {
        top = bottom;
        while (top > t_top && std::exp(WindowLog(q, top - 1)) <= limit) --top;
      }
      if (top == bottom) {
        // A single character step already exceeds epsilon; take it anyway
        // (the pattern point then falls exactly on the step, so the link
        // probability is exact for it).
        top = bottom - 1;
      }
      Link link;
      link.origin_node = u;
      link.origin_depth = bottom;
      link.target_node = v;
      link.target_depth = top;
      link.position = d;
      link.logp = bottom_logp;
      links.push_back(link);
      bottom = top;
      bottom_logp = WindowLog(q, bottom);
    }
  }

  bool HasCorrInRange(int64_t lo, int64_t hi) const {
    auto it = std::lower_bound(fs.corr_positions.begin(),
                               fs.corr_positions.end(), lo);
    return it != fs.corr_positions.end() && *it < hi;
  }

  Status Query(const std::string& pattern, double tau,
               std::vector<Match>* out) const {
    out->clear();
    if (pattern.empty()) {
      return Status::InvalidArgument("pattern must be non-empty");
    }
    if (!(tau > 0.0) || tau > 1.0) {
      return Status::InvalidArgument("tau must be in (0, 1]");
    }
    const LogProb lt = LogProb::FromLinear(tau);
    const LogProb lmin = LogProb::FromLinear(fs.tau_min);
    if (!lt.MeetsThreshold(lmin)) {
      return Status::InvalidArgument(
          "tau is below the construction-time tau_min");
    }
    if (links.empty()) return Status::OK();
    const auto range = st.FindRange(Text::MapPattern(pattern));
    if (!range.has_value() || range->empty()) return Status::OK();
    const int32_t w = range->locus;
    const int32_t m = static_cast<int32_t>(pattern.size());
    const double floor = std::max(tau - options.epsilon, 0.0);
    const LogProb log_floor =
        floor <= 0.0 ? LogProb::Zero() : LogProb::FromLinear(floor);

    // Ancestors of the locus (including the locus itself for links whose
    // target point lies on its incoming edge): at most m + 1 of them.
    std::vector<int32_t> ancestors;
    for (int32_t v = w;; v = st.parent(v)) {
      ancestors.push_back(v);
      if (v == st.root()) break;
    }
    const int32_t sub_end = st.subtree_end(w);
    for (const int32_t v : ancestors) {
      // Links targeted at v whose origin node lies inside subtree(w).
      const int64_t seg_lo = target_off[v];
      const int64_t seg_hi = target_off[v + 1];
      if (seg_lo == seg_hi) continue;
      const auto cmp = [this](const Link& l, int32_t node) {
        return l.origin_node < node;
      };
      const int64_t lo =
          std::lower_bound(links.begin() + seg_lo, links.begin() + seg_hi, w,
                           cmp) -
          links.begin();
      const int64_t hi =
          std::lower_bound(links.begin() + seg_lo, links.begin() + seg_hi,
                           sub_end, cmp) -
          links.begin();
      if (lo >= hi) continue;
      // Recursive RMQ over link probabilities; filters reject but do not
      // stop the recursion (rejected links may hide qualifying ones).
      std::vector<std::pair<int64_t, int64_t>> stack{{lo, hi - 1}};
      while (!stack.empty()) {
        auto [a, b] = stack.back();
        stack.pop_back();
        if (a > b) continue;
        const size_t pos = link_rmq->ArgMax(a, b);
        const Link& link = links[pos];
        if (!LogProb::FromLog(link.logp).MeetsThreshold(log_floor)) continue;
        // Stabbing: origin node inside subtree(w) (guaranteed by the segment
        // bounds) and the link's depth interval (t_t, t_o] contains m.
        if (link.target_depth < m && link.origin_depth >= m) {
          double prob = std::exp(link.logp);
          if (options.exact_probabilities) {
            prob = source.OccurrenceProb(pattern, link.position).ToLinear();
          }
          out->push_back(Match{link.position, prob});
        }
        stack.emplace_back(a, static_cast<int64_t>(pos) - 1);
        stack.emplace_back(static_cast<int64_t>(pos) + 1, b);
      }
    }
    std::sort(out->begin(), out->end(), [](const Match& a, const Match& b) {
      return a.position < b.position;
    });
    return Status::OK();
  }
};

ApproxIndex::ApproxIndex() = default;
ApproxIndex::~ApproxIndex() = default;
ApproxIndex::ApproxIndex(ApproxIndex&&) noexcept = default;
ApproxIndex& ApproxIndex::operator=(ApproxIndex&&) noexcept = default;

StatusOr<ApproxIndex> ApproxIndex::Build(const UncertainString& s,
                                         const ApproxOptions& options) {
  if (!(options.epsilon > 0.0) || options.epsilon > 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1]");
  }
  ApproxIndex index;
  index.impl_ = std::make_unique<Impl>();
  Impl& i = *index.impl_;
  i.source = s;
  i.options = options;
  PTI_ASSIGN_OR_RETURN(i.fs, TransformToFactors(i.source, options.transform));
  PTI_RETURN_IF_ERROR(i.Finish());
  return index;
}

Status ApproxIndex::Query(const std::string& pattern, double tau,
                          std::vector<Match>* out) const {
  return impl_->Query(pattern, tau, out);
}

ApproxIndex::Stats ApproxIndex::stats() const {
  Stats s;
  s.original_length = impl_->fs.original_length;
  s.transformed_length = impl_->fs.total_length();
  s.num_marked_nodes = impl_->num_marked;
  s.num_links = impl_->links.size();
  return s;
}

Status ApproxIndex::Save(std::string* out) const {
  return Save(out, serde::kContainerVersion);
}

Status ApproxIndex::Save(std::string* out, uint32_t version) const {
  if (version < serde::kInterchangeVersion ||
      version > serde::kContainerVersion) {
    return Status::InvalidArgument("unsupported container version");
  }
  const Impl& i = *impl_;
  serde::ContainerWriter cw(serde::IndexKind::kApprox, version);
  Writer& opts = cw.AddSection(serde::kTagOptions);
  opts.PutDouble(i.options.transform.tau_min);
  opts.PutU64(i.options.transform.max_total_length);
  opts.PutDouble(i.options.epsilon);
  opts.PutU8(i.options.exact_probabilities ? 1 : 0);
  serde::EncodeUncertainString(i.source, &cw.AddSection(serde::kTagSource));
  serde::EncodeFactorSet(i.fs, &cw.AddSection(serde::kTagFactors));
  *out = std::move(cw).Finish();
  return Status::OK();
}

StatusOr<ApproxIndex> ApproxIndex::Load(std::string_view data) {
  serde::ContainerReader container;
  PTI_RETURN_IF_ERROR(
      serde::ContainerReader::Open(data, serde::IndexKind::kApprox,
                                   &container));
  ApproxIndex index;
  index.impl_ = std::make_unique<Impl>();
  Impl& i = *index.impl_;

  Reader opts;
  PTI_RETURN_IF_ERROR(container.Section(serde::kTagOptions, &opts));
  PTI_RETURN_IF_ERROR(opts.GetDouble(&i.options.transform.tau_min));
  if (!std::isfinite(i.options.transform.tau_min) ||
      !(i.options.transform.tau_min > 0.0) ||
      i.options.transform.tau_min > 1.0) {
    return Status::Corruption("tau_min outside (0, 1]");
  }
  uint64_t max_total = 0;
  PTI_RETURN_IF_ERROR(opts.GetU64(&max_total));
  i.options.transform.max_total_length = max_total;
  PTI_RETURN_IF_ERROR(opts.GetDouble(&i.options.epsilon));
  if (!std::isfinite(i.options.epsilon) || !(i.options.epsilon > 0.0) ||
      i.options.epsilon > 1.0) {
    return Status::Corruption("epsilon outside (0, 1]");
  }
  uint8_t exact = 0;
  PTI_RETURN_IF_ERROR(opts.GetU8(&exact));
  if (exact > 1) return Status::Corruption("bad exact-probabilities flag");
  i.options.exact_probabilities = exact != 0;
  PTI_RETURN_IF_ERROR(serde::ExpectSectionEnd(opts, "options"));

  Reader src;
  PTI_RETURN_IF_ERROR(container.Section(serde::kTagSource, &src));
  PTI_RETURN_IF_ERROR(serde::DecodeUncertainString(&src, &i.source));
  PTI_RETURN_IF_ERROR(serde::ExpectSectionEnd(src, "source"));

  Reader fact;
  PTI_RETURN_IF_ERROR(container.Section(serde::kTagFactors, &fact));
  PTI_RETURN_IF_ERROR(serde::DecodeFactorSet(&fact, i.source, &i.fs));
  PTI_RETURN_IF_ERROR(serde::ExpectSectionEnd(fact, "factors"));

  PTI_RETURN_IF_ERROR(i.Finish());
  return index;
}

size_t ApproxIndex::MemoryUsage() const {
  const Impl& i = *impl_;
  size_t bytes = i.source.MemoryUsage() + i.fs.MemoryUsage() +
                 i.st.MemoryUsage() + i.c.capacity() * sizeof(double) +
                 i.remaining.capacity() * sizeof(int32_t) +
                 i.links.capacity() * sizeof(Link) +
                 i.target_off.capacity() * sizeof(int64_t);
  if (i.link_rmq) bytes += i.link_rmq->MemoryUsage();
  return bytes;
}

}  // namespace pti
