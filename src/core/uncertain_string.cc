#include "core/uncertain_string.h"

#include <algorithm>
#include <cmath>

namespace pti {

namespace {
constexpr double kSumTolerance = 1e-6;
}  // namespace

UncertainString UncertainString::FromDeterministic(const std::string& s) {
  UncertainString u;
  for (const char c : s) {
    u.AddPosition({{static_cast<uint8_t>(c), 1.0}});
  }
  return u;
}

int64_t UncertainString::AddPosition(std::vector<CharOption> options) {
  positions_.push_back(std::move(options));
  return static_cast<int64_t>(positions_.size()) - 1;
}

Status UncertainString::AddCorrelation(const CorrelationRule& rule) {
  if (rule.pos < 0 || rule.pos >= size() || rule.dep_pos < 0 ||
      rule.dep_pos >= size()) {
    return Status::InvalidArgument("correlation rule position out of range");
  }
  if (rule.pos == rule.dep_pos) {
    return Status::InvalidArgument("character cannot correlate with its own position");
  }
  if (BaseProb(rule.pos, rule.ch) == 0.0) {
    return Status::InvalidArgument("correlated character does not exist at position");
  }
  if (BaseProb(rule.dep_pos, rule.dep_ch) == 0.0) {
    return Status::InvalidArgument("dependency character does not exist at position");
  }
  if (FindRule(rule.pos, rule.ch) != nullptr) {
    return Status::InvalidArgument("duplicate correlation rule for (pos, char)");
  }
  // Negated form so NaN (all comparisons false) is rejected too.
  if (!(rule.prob_if_present >= 0 && rule.prob_if_present <= 1 &&
        rule.prob_if_absent >= 0 && rule.prob_if_absent <= 1)) {
    return Status::InvalidArgument("correlation probabilities must be in [0,1]");
  }
  correlations_.push_back(rule);
  return Status::OK();
}

Status UncertainString::Validate() const {
  for (int64_t i = 0; i < size(); ++i) {
    const auto& opts = positions_[i];
    if (opts.empty()) {
      return Status::InvalidArgument("position " + std::to_string(i) +
                                     " has no options");
    }
    double sum = 0;
    for (size_t a = 0; a < opts.size(); ++a) {
      // The negated >=/<= form (not < / >) rejects NaN, whose comparisons
      // are all false: a NaN probability must fail Validate here, because
      // downstream LogProb::FromLinear treats its [0,1] domain as an
      // internal precondition (release builds would silently propagate NaN
      // into every occurrence probability).
      if (!(opts[a].prob >= 0 && opts[a].prob <= 1 + kSumTolerance)) {
        return Status::InvalidArgument("probability out of [0,1] at position " +
                                       std::to_string(i));
      }
      for (size_t b = a + 1; b < opts.size(); ++b) {
        if (opts[a].ch == opts[b].ch) {
          return Status::InvalidArgument("duplicate character at position " +
                                         std::to_string(i));
        }
      }
      sum += opts[a].prob;
    }
    // Positions holding correlated characters may list pr+/pr- variants whose
    // marginal is implied, so the unit-sum check does not apply (Figure 4).
    bool has_correlated = false;
    for (const auto& rule : correlations_) {
      if (rule.pos == i) has_correlated = true;
    }
    if (!has_correlated && std::abs(sum - 1.0) > kSumTolerance) {
      return Status::InvalidArgument("probabilities at position " +
                                     std::to_string(i) + " sum to " +
                                     std::to_string(sum) + ", expected 1");
    }
  }
  return Status::OK();
}

double UncertainString::BaseProb(int64_t i, uint8_t ch) const {
  for (const auto& opt : positions_[i]) {
    if (opt.ch == ch) return opt.prob;
  }
  return 0.0;
}

const CorrelationRule* UncertainString::FindRule(int64_t i, uint8_t ch) const {
  for (const auto& rule : correlations_) {
    if (rule.pos == i && rule.ch == ch) return &rule;
  }
  return nullptr;
}

LogProb UncertainString::OccurrenceProb(const std::string& pattern,
                                        int64_t i) const {
  const int64_t m = static_cast<int64_t>(pattern.size());
  if (m == 0 || i < 0 || i + m > size()) return LogProb::Zero();
  LogProb prob = LogProb::One();
  for (int64_t k = 0; k < m; ++k) {
    const uint8_t ch = static_cast<uint8_t>(pattern[k]);
    const CorrelationRule* rule = FindRule(i + k, ch);
    double p;
    if (rule == nullptr) {
      p = BaseProb(i + k, ch);
    } else if (rule->dep_pos >= i && rule->dep_pos < i + m) {
      // Case 1: the dependency position lies inside the matched window, so
      // the window itself decides whether the dependency character occurs.
      const bool present =
          static_cast<uint8_t>(pattern[rule->dep_pos - i]) == rule->dep_ch;
      p = present ? rule->prob_if_present : rule->prob_if_absent;
    } else {
      // Case 2: outside the window; marginalize over the dependency.
      const double dep = BaseProb(rule->dep_pos, rule->dep_ch);
      p = dep * rule->prob_if_present + (1.0 - dep) * rule->prob_if_absent;
    }
    if (p <= 0.0) return LogProb::Zero();
    prob *= LogProb::FromLinear(p);
  }
  return prob;
}

bool UncertainString::IsSpecial() const {
  for (const auto& opts : positions_) {
    if (opts.size() != 1) return false;
  }
  return true;
}

StatusOr<std::vector<PossibleWorld>> UncertainString::EnumerateWorlds(
    size_t limit) const {
  // Count worlds first to honor the limit without partial work.
  double world_count = 1;
  for (const auto& opts : positions_) {
    world_count *= static_cast<double>(opts.size());
    if (world_count > static_cast<double>(limit)) {
      return Status::ResourceExhausted("too many possible worlds");
    }
  }
  std::vector<PossibleWorld> out;
  std::string value(positions_.size(), '\0');
  std::vector<size_t> choice(positions_.size(), 0);
  // Odometer enumeration over per-position choices.
  while (true) {
    for (size_t i = 0; i < positions_.size(); ++i) {
      value[i] = static_cast<char>(positions_[i][choice[i]].ch);
    }
    // World probability: every correlation resolves via case 1 because the
    // window is the entire string.
    double prob = 1;
    for (size_t i = 0; i < positions_.size(); ++i) {
      const uint8_t ch = positions_[i][choice[i]].ch;
      const CorrelationRule* rule = FindRule(static_cast<int64_t>(i), ch);
      if (rule == nullptr) {
        prob *= positions_[i][choice[i]].prob;
      } else {
        const bool present =
            static_cast<uint8_t>(value[rule->dep_pos]) == rule->dep_ch;
        prob *= present ? rule->prob_if_present : rule->prob_if_absent;
      }
    }
    out.push_back(PossibleWorld{value, prob});
    // Advance the odometer.
    size_t i = 0;
    for (; i < positions_.size(); ++i) {
      if (++choice[i] < positions_[i].size()) break;
      choice[i] = 0;
    }
    if (i == positions_.size()) break;
    if (positions_.empty()) break;
  }
  if (positions_.empty()) out = {PossibleWorld{"", 1.0}};
  return out;
}

size_t UncertainString::MemoryUsage() const {
  size_t bytes = positions_.capacity() * sizeof(std::vector<CharOption>);
  for (const auto& opts : positions_) {
    bytes += opts.capacity() * sizeof(CharOption);
  }
  bytes += correlations_.capacity() * sizeof(CorrelationRule);
  return bytes;
}

StatusOr<SpecialUncertainString> SpecialUncertainString::FromUncertain(
    const UncertainString& s) {
  if (!s.IsSpecial()) {
    return Status::InvalidArgument(
        "string has positions with more than one option");
  }
  SpecialUncertainString out;
  out.chars.reserve(s.size());
  out.probs.reserve(s.size());
  for (int64_t i = 0; i < s.size(); ++i) {
    out.chars.push_back(static_cast<char>(s.options(i)[0].ch));
    out.probs.push_back(s.options(i)[0].prob);
  }
  return out;
}

LogProb SpecialUncertainString::OccurrenceProb(const std::string& pattern,
                                               int64_t i) const {
  const int64_t m = static_cast<int64_t>(pattern.size());
  if (m == 0 || i < 0 || i + m > size()) return LogProb::Zero();
  LogProb prob = LogProb::One();
  for (int64_t k = 0; k < m; ++k) {
    if (pattern[k] != chars[i + k]) return LogProb::Zero();
    if (probs[i + k] <= 0.0) return LogProb::Zero();
    prob *= LogProb::FromLinear(probs[i + k]);
  }
  return prob;
}

}  // namespace pti
