// UncertainString: the paper's character-level uncertain string model (§3).
//
// A string of n positions; each position holds a set of (character,
// probability) options summing to 1. A deterministic pattern p "occurs" at
// position i with probability prod_k pr(p_k at i+k-1) (§3.2). Optional
// correlation rules (§3.3) make one character's probability depend on the
// presence of another character elsewhere; occurrence probabilities then
// follow the paper's case 1 (dependency inside the matched window: resolve
// against the window's characters) and case 2 (outside: marginalize).
//
// This header also defines SpecialUncertainString (§4: exactly one option per
// position) and exhaustive possible-world enumeration (§1, Figure 1) used by
// tests to validate all probability semantics from first principles.

#ifndef PTI_CORE_UNCERTAIN_STRING_H_
#define PTI_CORE_UNCERTAIN_STRING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/log_prob.h"
#include "util/status.h"

namespace pti {

/// One candidate character at a string position.
struct CharOption {
  uint8_t ch = 0;
  double prob = 0.0;
};

/// §3.3: pr(`ch` at `pos`) depends on whether `dep_ch` occurs at `dep_pos`:
/// prob_if_present (pr+) when it does, prob_if_absent (pr-) when it does not.
/// At most one rule per (pos, ch).
struct CorrelationRule {
  int64_t pos = 0;
  uint8_t ch = 0;
  int64_t dep_pos = 0;
  uint8_t dep_ch = 0;
  double prob_if_present = 0.0;
  double prob_if_absent = 0.0;
};

/// A fully deterministic string drawn from an uncertain string, with its
/// probability of occurrence (possible-world semantics, §1 / Figure 1).
struct PossibleWorld {
  std::string value;
  double prob = 0.0;
};

class UncertainString {
 public:
  UncertainString() = default;

  /// A deterministic string: one option with probability 1 per position.
  static UncertainString FromDeterministic(const std::string& s);

  /// Appends a position with the given options. Returns its index.
  int64_t AddPosition(std::vector<CharOption> options);

  /// Registers a correlation rule; fails if (pos, ch) already has one, if the
  /// referenced characters do not exist, or if positions are out of range.
  Status AddCorrelation(const CorrelationRule& rule);

  /// Checks model invariants: probabilities in [0,1], per-position sums == 1
  /// (within tolerance; positions that carry correlated characters are
  /// exempt, as in the paper's Figure 4 where the marginal need not be
  /// listed), no duplicate characters within a position.
  Status Validate() const;

  int64_t size() const { return static_cast<int64_t>(positions_.size()); }
  bool empty() const { return positions_.empty(); }

  const std::vector<CharOption>& options(int64_t i) const {
    return positions_[i];
  }

  /// Base probability of `ch` at position i (0 if absent). For correlated
  /// characters this is the stored base value, not a resolved one.
  double BaseProb(int64_t i, uint8_t ch) const;

  /// The correlation rule attached to (i, ch), or nullptr.
  const CorrelationRule* FindRule(int64_t i, uint8_t ch) const;

  const std::vector<CorrelationRule>& correlations() const {
    return correlations_;
  }

  /// §3.2 + §3.3: probability that `pattern` occurs at position `i`,
  /// resolving correlation rules against the pattern's own window (case 1)
  /// or by marginalization (case 2). Returns LogProb::Zero() when any
  /// character is absent or the pattern overruns the string.
  LogProb OccurrenceProb(const std::string& pattern, int64_t i) const;

  /// True iff every position has exactly one option (§4's special form).
  bool IsSpecial() const;

  /// Exhaustive possible-world enumeration (correlation-aware). Only for
  /// tiny strings; fails when the world count would exceed `limit`.
  StatusOr<std::vector<PossibleWorld>> EnumerateWorlds(size_t limit) const;

  size_t MemoryUsage() const;

 private:
  std::vector<std::vector<CharOption>> positions_;
  std::vector<CorrelationRule> correlations_;
};

/// §4: an uncertain string with exactly one probabilistic character per
/// position, as produced by the factor transformation or given directly.
struct SpecialUncertainString {
  std::string chars;
  std::vector<double> probs;

  /// Builds from an UncertainString that satisfies IsSpecial().
  static StatusOr<SpecialUncertainString> FromUncertain(
      const UncertainString& s);

  /// Occurrence probability of `pattern` at position i (no correlations).
  LogProb OccurrenceProb(const std::string& pattern, int64_t i) const;

  int64_t size() const { return static_cast<int64_t>(chars.size()); }
};

}  // namespace pti

#endif  // PTI_CORE_UNCERTAIN_STRING_H_
