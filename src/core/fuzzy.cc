#include "core/fuzzy.h"

#include <algorithm>
#include <array>
#include <map>
#include <unordered_set>

#include "succinct/fm_index.h"

namespace pti {

namespace {

bool HasOption(const UncertainString& s, int64_t pos, uint8_t ch) {
  for (const CharOption& opt : s.options(pos)) {
    if (opt.ch == ch) return true;
  }
  return false;
}

// Collects every length-m variant within Hamming distance <= budget of the
// pattern whose characters are all present at their target positions (a
// variant carrying an absent character has probability zero everywhere in
// its window, so skipping it cannot change the max).
void EnumMismatchVariants(const UncertainString& s, const std::string& pattern,
                          int64_t i, size_t j, int32_t budget,
                          std::string* cur,
                          std::unordered_set<std::string>* out) {
  if (j == pattern.size()) {
    out->insert(*cur);
    return;
  }
  const int64_t pos = i + static_cast<int64_t>(j);
  const uint8_t want = static_cast<uint8_t>(pattern[j]);
  if (HasOption(s, pos, want)) {
    cur->push_back(pattern[j]);
    EnumMismatchVariants(s, pattern, i, j + 1, budget, cur, out);
    cur->pop_back();
  }
  if (budget > 0) {
    for (const CharOption& opt : s.options(pos)) {
      if (opt.ch == want) continue;
      cur->push_back(static_cast<char>(opt.ch));
      EnumMismatchVariants(s, pattern, i, j + 1, budget - 1, cur, out);
      cur->pop_back();
    }
  }
}

// Collects every non-empty variant within edit distance <= budget, again
// restricted to characters present at the position each appended character
// would occupy. Different edit scripts can spell the same variant (e.g.
// delete+insert == substitute); the set deduplicates before any probability
// is computed.
void EnumEditVariants(const UncertainString& s, const std::string& pattern,
                      int64_t i, size_t j, int32_t budget, std::string* cur,
                      std::unordered_set<std::string>* out) {
  const int64_t pos = i + static_cast<int64_t>(cur->size());
  if (j == pattern.size() && !cur->empty()) out->insert(*cur);
  if (budget > 0 && pos < s.size()) {
    // Insertion: the variant gains a character the pattern does not have.
    for (const CharOption& opt : s.options(pos)) {
      cur->push_back(static_cast<char>(opt.ch));
      EnumEditVariants(s, pattern, i, j, budget - 1, cur, out);
      cur->pop_back();
    }
  }
  if (j == pattern.size()) return;
  if (budget > 0) {
    // Deletion: the pattern character leaves no trace in the variant.
    EnumEditVariants(s, pattern, i, j + 1, budget - 1, cur, out);
  }
  if (pos >= s.size()) return;
  const uint8_t want = static_cast<uint8_t>(pattern[j]);
  if (HasOption(s, pos, want)) {
    cur->push_back(pattern[j]);
    EnumEditVariants(s, pattern, i, j + 1, budget, cur, out);
    cur->pop_back();
  }
  if (budget > 0) {
    for (const CharOption& opt : s.options(pos)) {
      if (opt.ch == want) continue;
      cur->push_back(static_cast<char>(opt.ch));
      EnumEditVariants(s, pattern, i, j + 1, budget - 1, cur, out);
      cur->pop_back();
    }
  }
}

// Branching backward-search context (compact mode). States are
// (j = pattern characters still unconsumed, SA' range, variant length,
// error budget); the visited map prunes re-entry with no more budget than a
// previous visit, which keeps the DFS polynomial without losing any
// reachable completion.
struct FmFuzzyContext {
  const FmIndex* fm = nullptr;
  const std::vector<int32_t>* pattern = nullptr;
  std::vector<int32_t> symbols;
  bool edit = false;
  std::vector<FuzzySaRange> out;
  std::map<std::array<int64_t, 4>, int32_t> visited;

  void Go(int32_t j, int64_t sp, int64_t ep, int32_t len, int32_t budget) {
    const std::array<int64_t, 4> key{j, sp, ep, len};
    const auto it = visited.find(key);
    if (it != visited.end() && it->second >= budget) return;
    visited[key] = budget;
    if (j == 0 && len > 0) {
      if (const auto range = FmIndex::ToSaRange(sp, ep)) {
        out.push_back(FuzzySaRange{range->first, range->second, len});
      }
    }
    if (j > 0) {
      // Exact step: consume the next pattern character (right to left).
      int64_t s2 = sp, e2 = ep;
      if (fm->ExtendLeft(int64_t{(*pattern)[j - 1]} + 1, &s2, &e2)) {
        Go(j - 1, s2, e2, len + 1, budget);
      }
    }
    if (budget == 0) return;
    if (j > 0) {
      // Substitution: any other occupied symbol stands in for the pattern
      // character.
      for (const int32_t sym : symbols) {
        if (sym == (*pattern)[j - 1]) continue;
        int64_t s2 = sp, e2 = ep;
        if (fm->ExtendLeft(int64_t{sym} + 1, &s2, &e2)) {
          Go(j - 1, s2, e2, len + 1, budget - 1);
        }
      }
      // Deletion: the pattern character contributes nothing to the variant.
      if (edit) Go(j - 1, sp, ep, len, budget - 1);
    }
    if (edit) {
      // Insertion: the variant gains a character; backward search places it
      // to the left of everything matched so far (and, before the first
      // consume / after the last, at the variant's ends).
      for (const int32_t sym : symbols) {
        int64_t s2 = sp, e2 = ep;
        if (fm->ExtendLeft(int64_t{sym} + 1, &s2, &e2)) {
          Go(j, s2, e2, len + 1, budget - 1);
        }
      }
    }
  }
};

}  // namespace

Status CheckFuzzyParams(const FuzzyParams& params) {
  if (params.k < 0) {
    return Status::InvalidArgument("fuzzy k must be non-negative");
  }
  if (params.k > kMaxFuzzyErrors) {
    return Status::NotSupported(
        "fuzzy k=" + std::to_string(params.k) +
        " exceeds the supported maximum of " +
        std::to_string(kMaxFuzzyErrors));
  }
  if (params.metric != FuzzyMetric::kMismatch &&
      params.metric != FuzzyMetric::kEdit) {
    return Status::InvalidArgument("unknown fuzzy metric");
  }
  return Status::OK();
}

LogProb FuzzyOccurrenceProb(const UncertainString& s,
                            const std::string& pattern, int64_t i,
                            const FuzzyParams& params) {
  const int64_t n = s.size();
  const int64_t m = static_cast<int64_t>(pattern.size());
  if (m == 0 || i < 0) return LogProb::Zero();
  if (params.k == 0 || params.metric == FuzzyMetric::kMismatch) {
    if (i + m > n) return LogProb::Zero();
    if (params.k == 0) return s.OccurrenceProb(pattern, i);
  } else if (i >= n) {
    return LogProb::Zero();
  }
  std::unordered_set<std::string> variants;
  std::string cur;
  cur.reserve(pattern.size() + static_cast<size_t>(params.k));
  if (params.metric == FuzzyMetric::kMismatch) {
    EnumMismatchVariants(s, pattern, i, 0, params.k, &cur, &variants);
  } else {
    EnumEditVariants(s, pattern, i, 0, params.k, &cur, &variants);
  }
  LogProb best = LogProb::Zero();
  for (const std::string& variant : variants) {
    const LogProb p = s.OccurrenceProb(variant, i);
    if (p > best) best = p;
  }
  return best;
}

std::vector<Match> BruteForceFuzzy(const UncertainString& s,
                                   const std::string& pattern, double tau,
                                   const FuzzyParams& params) {
  std::vector<Match> out;
  const int64_t m = static_cast<int64_t>(pattern.size());
  if (m == 0 || !CheckFuzzyParams(params).ok()) return out;
  const LogProb log_tau = LogProb::FromLinear(tau);
  // Under kEdit a variant can be shorter than the pattern, so start
  // positions run all the way to the last character.
  const int64_t last = (params.metric == FuzzyMetric::kEdit && params.k > 0)
                           ? s.size() - 1
                           : s.size() - m;
  for (int64_t i = 0; i <= last; ++i) {
    const LogProb p = FuzzyOccurrenceProb(s, pattern, i, params);
    if (p.MeetsThreshold(log_tau)) {
      out.push_back(Match{i, p.ToLinear()});
    }
  }
  return out;
}

std::vector<FuzzySaRange> EnumerateFmFuzzyRanges(
    const FmIndex& fm, const std::vector<int32_t>& pattern,
    const FuzzyParams& params) {
  FmFuzzyContext ctx;
  ctx.fm = &fm;
  ctx.pattern = &pattern;
  ctx.symbols = fm.OccupiedByteSymbols();
  ctx.edit = params.metric == FuzzyMetric::kEdit;
  ctx.Go(static_cast<int32_t>(pattern.size()), 0,
         static_cast<int64_t>(fm.bwt_size()), 0, params.k);
  std::sort(ctx.out.begin(), ctx.out.end(),
            [](const FuzzySaRange& a, const FuzzySaRange& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              if (a.end != b.end) return a.end < b.end;
              return a.length < b.length;
            });
  ctx.out.erase(std::unique(ctx.out.begin(), ctx.out.end()), ctx.out.end());
  return ctx.out;
}

std::vector<std::pair<int32_t, int32_t>> FuzzySeeds(int32_t m, int32_t k) {
  std::vector<std::pair<int32_t, int32_t>> seeds;
  const int32_t pieces = k + 1;
  seeds.reserve(static_cast<size_t>(pieces));
  for (int32_t j = 0; j < pieces; ++j) {
    const int32_t b = static_cast<int32_t>(int64_t{j} * m / pieces);
    const int32_t e = static_cast<int32_t>(int64_t{j + 1} * m / pieces);
    if (e > b) seeds.emplace_back(b, e - b);
  }
  return seeds;
}

}  // namespace pti
