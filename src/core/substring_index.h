// SubstringIndex: the paper's general substring-searching index (§5).
//
// Build pipeline: factor transformation (Lemma 2) -> sentinel-separated text
// -> suffix array (SA-IS) -> suffix tree -> global prefix log-probability
// array C -> per-depth RMQ structures with duplicate elimination (§5.2).
//
// Query (p, tau) with tau >= tau_min reports every position i of S with
// Pr(p, i) >= tau:
//   * m <= K (= ceil(log2 N) by default): Algorithm 4 — locus lookup, then
//     recursive RMQ extraction of maxima, O(1) validation each; O(m + occ).
//   * m > K: the paper's blocking scheme (§4.2 "long substrings"); see
//     BlockingMode for the supported variants.
//
// Correlated characters (§3.3) are resolved exactly at validation time; the
// factor transformation enumerates with optimistic probabilities so no
// occurrence is missed (see factor_transform.h).

#ifndef PTI_CORE_SUBSTRING_INDEX_H_
#define PTI_CORE_SUBSTRING_INDEX_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/factor_transform.h"
#include "core/fuzzy.h"
#include "core/match.h"
#include "core/serde.h"
#include "core/uncertain_string.h"
#include "rmq/rmq_handle.h"
#include "util/status.h"

namespace pti {

/// Long-pattern (m > K) strategies.
enum class BlockingMode {
  /// Levels at depths K, 2K, 4K, ...: query uses the deepest level <= m as an
  /// upper-bound filter, validating candidates at exact depth m. Bounded
  /// memory, no per-query state. (Default.)
  kPow2 = 0,
  /// The paper's scheme: one block structure per queried length m, built
  /// lazily on first use and cached. Exact filtering (O(m * occ) enumeration)
  /// at the cost of O(N/m) extra words per distinct long length queried.
  kPaperExact = 1,
  /// No block structures: scan the locus range and validate every entry
  /// (the §4.1 "simple index" behaviour for long patterns).
  kScanOnly = 2,
};

struct IndexOptions {
  TransformOptions transform;
  /// Depth limit K for the per-depth RMQ forest; 0 means ceil(log2(N)).
  int32_t max_short_depth = 0;
  RmqEngineKind rmq_engine = RmqEngineKind::kBlock;
  BlockingMode blocking = BlockingMode::kPow2;
  /// Locus ranges no larger than this are scanned directly — cheaper than
  /// any structure for tiny ranges.
  size_t scan_cutoff = 64;
  /// Compact mode: after construction, replace the suffix tree (the
  /// dominant space cost) with an FM-index locator (wavelet tree over the
  /// BWT) — the space-efficient configuration the paper evaluates in §8.7
  /// via a compressed suffix array. Queries pay O(m log sigma) for the
  /// locus range instead of O(m log sigma) tree walking; reporting is
  /// unchanged. Typically 3-4x smaller overall.
  bool compact = false;
};

/// One (pattern, tau) query of a batch. Shared by SubstringIndex::QueryBatch
/// and the engine layer (engine/sharded_index.h).
struct BatchQuery {
  std::string pattern;
  double tau = 0.0;
};

/// Wall-clock milliseconds per construction stage, accumulated by
/// Build/Load when BuildOptions::timings is set (pti_cli --timings prints
/// them). Stages a path skips stay zero — e.g. a v3 zero-copy load builds
/// nothing. fm_ms can overlap derived_ms in wall time: the FM-index build
/// runs on its own thread alongside the derived passes when threads >= 2.
struct BuildTimings {
  double transform_ms = 0.0;  ///< factor transformation (Lemma 2)
  double sa_ms = 0.0;         ///< SA-IS (or suffix tree incl. SA, tree mode)
  double lcp_ms = 0.0;        ///< LCP array (compact mode; tree counts in sa)
  double fm_ms = 0.0;         ///< FM-index: BWT + wavelet tree (compact mode)
  double derived_ms = 0.0;    ///< prefix sums, remaining runs, active bitsets
  double rmq_ms = 0.0;        ///< the per-depth RMQ forest
};

/// Construction-resource options, distinct from IndexOptions (which shape
/// the structure): nothing here changes a single serialized byte. A T-thread
/// build produces bit-identical Save output to a 1-thread build (every
/// parallel pass writes precomputed disjoint locations, and the
/// floating-point prefix sums stay sequential). Namespace-scoped so it can
/// brace-default in SubstringIndex's own declarations; also reachable as
/// SubstringIndex::BuildOptions.
struct BuildOptions {
  /// Worker threads for the intra-index build: 1 (default) is fully serial,
  /// 0 means one per hardware thread, otherwise clamped to [1, 256].
  /// ShardedIndex splits its budget across shards with SplitThreadBudget so
  /// nested builds never oversubscribe.
  int32_t threads = 1;
  /// When set, per-stage wall-clock timings accumulate here.
  BuildTimings* timings = nullptr;
};

class SubstringIndex {
 public:
  SubstringIndex();
  ~SubstringIndex();
  SubstringIndex(SubstringIndex&&) noexcept;
  SubstringIndex& operator=(SubstringIndex&&) noexcept;

  using BuildOptions = pti::BuildOptions;

  /// Builds the index over `s`. Fails on invalid input or when the factor
  /// transformation exceeds its budget.
  static StatusOr<SubstringIndex> Build(const UncertainString& s,
                                        const IndexOptions& options = {},
                                        const BuildOptions& build = {});

  /// Reports all positions with occurrence probability >= tau, sorted by
  /// position. Fails if tau < tau_min or the pattern is empty.
  Status Query(const std::string& pattern, double tau,
               std::vector<Match>* out) const;

  /// Answers every query of the batch; out is resized to queries.size() and
  /// entry i holds exactly what Query(queries[i]) would report. The batch is
  /// processed in pattern-sorted order so that (a) equal patterns share one
  /// locus lookup and one RMQ extraction (run at the group's smallest tau,
  /// then filtered per query with the same threshold predicate) and (b) in
  /// tree mode the locus descent resumes from the longest prefix shared with
  /// the previous pattern instead of re-walking from the root. Fails — before
  /// any query runs — if any query is invalid (empty pattern or tau outside
  /// [tau_min, 1]).
  Status QueryBatch(const std::vector<BatchQuery>& queries,
                    std::vector<std::vector<Match>>* out) const;

  /// Approximate threshold query (core/fuzzy.h): all positions where some
  /// variant of the pattern within params.k errors occurs with probability
  /// >= tau, sorted by position; each position reports its best variant's
  /// probability. params.k == 0 is bit-identical to Query. Compact mode
  /// enumerates variant windows by branching backward search over the
  /// FM-index; tree mode seeds-and-extends (k+1 pigeonhole seeds, candidate
  /// verification against the source string). Fails like Query on invalid
  /// pattern/tau, plus InvalidArgument/NotSupported from CheckFuzzyParams.
  Status QueryFuzzy(const std::string& pattern, double tau,
                    const FuzzyParams& params, std::vector<Match>* out) const;

  /// Batched fuzzy queries: out is resized to queries.size() and entry i
  /// holds exactly what QueryFuzzy(queries[i]) would report. Queries sharing
  /// (pattern, k, metric) collapse into one enumeration run at the group's
  /// smallest tau and re-filtered per query with the shared threshold
  /// predicate. Fails — before any query runs — if any query is invalid.
  Status QueryFuzzyBatch(const std::vector<FuzzyBatchQuery>& queries,
                         std::vector<std::vector<Match>>* out) const;

  /// The k highest-probability occurrences with probability >= tau, in
  /// non-increasing probability order (ties by position).
  Status QueryTopK(const std::string& pattern, double tau, size_t k,
                   std::vector<Match>* out) const;

  /// Number of occurrences with probability >= tau.
  Status Count(const std::string& pattern, double tau, size_t* count) const;

  struct Stats {
    int64_t original_length = 0;
    size_t num_factors = 0;
    size_t transformed_length = 0;  ///< N, including sentinels
    int32_t short_depth_limit = 0;  ///< K
    size_t num_tree_nodes = 0;
  };
  Stats stats() const;
  size_t MemoryUsage() const;

  const UncertainString& source() const;
  const IndexOptions& options() const;

  /// Serializes the index at the current container version
  /// (serde::kContainerVersion). A v3 container persists — 8-byte aligned —
  /// every derived structure the compact query paths touch (suffix array,
  /// prefix sums, active bitsets, FM-index, block-RMQ forest), so Load is
  /// validation plus pointer fix-up instead of a rebuild.
  Status Save(std::string* out) const;
  /// Same, at an explicit container version: serde::kInterchangeVersion (2)
  /// writes the checksummed interchange format whose Load rebuilds all
  /// derived structures deterministically.
  Status Save(std::string* out, uint32_t version) const;

  /// Deserializes a container. For a v3 container the index keeps zero-copy
  /// views into `data`: pass the Blob that owns those bytes (e.g. from
  /// serde::MapFile) as `backing` to pin it for the index's lifetime. With
  /// no backing, Load copies the bytes into a private Blob first, so views
  /// can never dangle regardless of what the caller does with `data`. A v2
  /// container is decoded fully and retains nothing. `build` governs the
  /// rebuild paths (v2 and tree-mode containers re-derive LCP, FM and RMQ
  /// structures; the v3 zero-copy path builds nothing, so it ignores
  /// threads and leaves the timings at zero).
  static StatusOr<SubstringIndex> Load(std::string_view data,
                                       serde::BlobPtr backing = nullptr,
                                       const BuildOptions& build = {});

 private:
  friend class SubstringIndexTestPeer;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Test-only introspection hooks (implemented in substring_index.cc).
class SubstringIndexTestPeer {
 public:
  /// True when Load consumed a persisted suffix-array ("SARR") section
  /// instead of re-deriving the suffix array with SA-IS.
  static bool SaLoadedFromSection(const SubstringIndex& index);
  /// True when Load consumed the v3 derived sections (DERV/ACTV/FMIX[/RMQB])
  /// instead of rebuilding prefix sums, active bitsets, the FM-index and the
  /// RMQ forest.
  static bool DerivedLoadedFromSections(const SubstringIndex& index);
  /// True when the index's large arrays (text, maps, suffix array) are views
  /// into a pinned backing Blob rather than private copies.
  static bool ZeroCopyBacked(const SubstringIndex& index);
};

}  // namespace pti

#endif  // PTI_CORE_SUBSTRING_INDEX_H_
