// Brute-force oracles: reference implementations of every query the indexes
// answer, computed directly from the uncertain-string semantics (§3.2, §3.3).
//
// These double as (a) correctness oracles for the property tests and (b) the
// "algorithmic approach" baseline of §1.3 [Li et al.]: an online scan that
// evaluates the occurrence probability at every position with early
// termination once the running product falls below tau. The benches compare
// index query time against BruteForceSearch.

#ifndef PTI_CORE_BRUTE_FORCE_H_
#define PTI_CORE_BRUTE_FORCE_H_

#include <string>
#include <vector>

#include "core/match.h"
#include "core/uncertain_string.h"

namespace pti {

/// All positions i with Pr(pattern, i) >= tau, sorted by position.
/// O(n * m) worst case, O(n * effective-prefix) with early termination.
std::vector<Match> BruteForceSearch(const UncertainString& s,
                                    const std::string& pattern, double tau);

/// Relevance of `pattern` in `s` under `metric`, aggregated over all
/// occurrences with probability >= prob_floor (§6; the index's natural floor
/// is tau_min). Returns 0 when there is no such occurrence.
double BruteForceRelevance(const UncertainString& s, const std::string& pattern,
                           RelevanceMetric metric, double prob_floor);

/// All documents whose relevance for `pattern` is >= tau (kMax: documents
/// with at least one occurrence with probability >= tau), sorted by doc.
std::vector<DocMatch> BruteForceListing(const std::vector<UncertainString>& docs,
                                        const std::string& pattern, double tau,
                                        RelevanceMetric metric,
                                        double prob_floor);

}  // namespace pti

#endif  // PTI_CORE_BRUTE_FORCE_H_
