#include "core/substring_index.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <numeric>
#include <queue>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/serde.h"
#include "succinct/fm_index.h"
#include "suffix/lcp.h"
#include "suffix/sais.h"
#include "suffix/suffix_tree.h"
#include "util/serial.h"
#include "util/thread_pool.h"

namespace pti {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

int64_t RuleKey(int64_t pos, uint8_t ch) { return pos * 256 + ch; }

// Accumulates wall-clock milliseconds into *slot between construction and
// Stop()/destruction; a null slot makes every operation free. Stages that
// run concurrently (the FM overlap) each time their own slot, so the sum of
// slots can exceed the build's wall time.
class StageTimer {
 public:
  explicit StageTimer(double* slot) : slot_(slot) {
    if (slot_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer() { Stop(); }

  void Stop() {
    if (slot_ == nullptr) return;
    *slot_ += std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    slot_ = nullptr;
  }

 private:
  double* slot_;
  std::chrono::steady_clock::time_point start_;
};

double* TimingSlot(BuildTimings* timings, double BuildTimings::* member) {
  return timings == nullptr ? nullptr : &(timings->*member);
}

// Incremental locus descent for pattern-sorted batches: Find() resumes from
// the deepest verified checkpoint still consistent with the longest prefix
// shared with the previous pattern, instead of re-walking from the root.
// Checkpoints record (node, chars verified) states whose prefix has been
// compared against the text, so a checkpoint at depth <= shared-prefix
// length remains valid for the next pattern no matter where the previous
// walk ended (or failed).
class PrefixWalker {
 public:
  explicit PrefixWalker(const SuffixTree* st) : st_(st) {
    path_.push_back({0, 0});  // root, nothing verified
  }

  /// Suffix-array range of `pattern` (mapped characters), or nullopt.
  std::optional<std::pair<int32_t, int32_t>> Find(
      const std::vector<int32_t>& pattern) {
    size_t shared = 0;
    while (shared < prev_.size() && shared < pattern.size() &&
           prev_[shared] == pattern[shared]) {
      ++shared;
    }
    prev_ = pattern;
    while (path_.size() > 1 &&
           path_.back().matched > static_cast<int32_t>(shared)) {
      path_.pop_back();
    }
    int32_t v = path_.back().node;
    int32_t matched = path_.back().matched;
    const int32_t m = static_cast<int32_t>(pattern.size());
    const auto& text = st_->text();
    while (matched < m) {
      if (matched >= st_->depth(v)) {
        const int32_t c = st_->FindChild(v, pattern[matched]);
        if (c < 0) return std::nullopt;
        v = c;
      }
      const int32_t edge_end = std::min(st_->depth(v), m);
      const int32_t base = st_->sa()[st_->sa_begin(v)];
      for (int32_t k = matched; k < edge_end; ++k) {
        if (text[base + k] != pattern[k]) return std::nullopt;
      }
      matched = edge_end;
      path_.push_back({v, matched});
    }
    return std::make_pair(st_->sa_begin(v), st_->sa_end(v));
  }

 private:
  struct Checkpoint {
    int32_t node = 0;
    int32_t matched = 0;  // pattern characters verified on the path to node
  };
  const SuffixTree* st_;
  std::vector<Checkpoint> path_;
  std::vector<int32_t> prev_;
};

// Incremental backward search for suffix-sorted batches (compact mode): the
// FM-index extends patterns right-to-left, so Find() resumes from the
// deepest (sp, ep) checkpoint covered by the longest suffix shared with the
// previous pattern — the backward-search mirror of PrefixWalker. Every
// checkpoint is a completed ExtendLeft step, so it stays valid for any
// later pattern sharing at least that many trailing characters.
class SuffixWalker {
 public:
  explicit SuffixWalker(const FmIndex* fm) : fm_(fm) {
    path_.push_back({0, static_cast<int64_t>(fm->bwt_size()), 0});
  }

  /// Suffix-array range of `pattern` (mapped characters), or nullopt.
  std::optional<std::pair<int32_t, int32_t>> Find(
      const std::vector<int32_t>& pattern) {
    size_t shared = 0;
    while (shared < prev_.size() && shared < pattern.size() &&
           prev_[prev_.size() - 1 - shared] ==
               pattern[pattern.size() - 1 - shared]) {
      ++shared;
    }
    prev_ = pattern;
    while (path_.size() > 1 &&
           path_.back().matched > static_cast<int32_t>(shared)) {
      path_.pop_back();
    }
    int64_t sp = path_.back().sp;
    int64_t ep = path_.back().ep;
    int32_t matched = path_.back().matched;
    const int32_t m = static_cast<int32_t>(pattern.size());
    while (matched < m) {
      const int32_t c = pattern[m - 1 - matched];
      if (c < 0 || !fm_->ExtendLeft(int64_t{c} + 1, &sp, &ep)) {
        return std::nullopt;
      }
      ++matched;
      path_.push_back({sp, ep, matched});
    }
    return FmIndex::ToSaRange(sp, ep);
  }

 private:
  struct Checkpoint {
    int64_t sp = 0;  // SA' coordinates, as in FmIndex::ExtendLeft
    int64_t ep = 0;
    int32_t matched = 0;  // trailing pattern characters already extended
  };
  const FmIndex* fm_;
  std::vector<Checkpoint> path_;
  std::vector<int32_t> prev_;
};

// Orders patterns by their reverse (last character first). Compact-mode
// batches sort with this so neighbours share the longest possible suffix;
// any strict weak order works for grouping equal patterns, but this one
// maximizes what SuffixWalker can resume.
bool ReversedLess(const std::string& a, const std::string& b) {
  size_t i = a.size(), j = b.size();
  while (i > 0 && j > 0) {
    const unsigned char ca = static_cast<unsigned char>(a[--i]);
    const unsigned char cb = static_cast<unsigned char>(b[--j]);
    if (ca != cb) return ca < cb;
  }
  return i == 0 && j > 0;
}
}  // namespace

struct SubstringIndex::Impl {
  UncertainString source;
  IndexOptions options;
  FactorSet fs;
  SuffixTree st;
  // Pins the bytes every zero-copy view points into (mmap'd file or copied
  // buffer); null for built or v2-loaded indexes, which own all arrays.
  serde::BlobPtr backing;
  // Compact mode: the suffix array survives the tree (whose node arrays are
  // the dominant space cost) and an FM-index answers locus-range queries.
  VecOrView<int32_t> sa_storage;
  Span<const int32_t> sa_view;
  std::optional<FmIndex> fm;
  // Load provenance, for tests: the "SARR" section made SA-IS unnecessary.
  bool sa_from_section = false;
  // Load provenance, for tests: the v3 derived sections (DERV/ACTV/FMIX)
  // were consumed, so Load decoded no full payload of TEXT/MAPS/SARR.
  bool derived_from_sections = false;

  // Prefix sums of fs.logp: c[k] = sum of logp[0..k); sentinels add 0.
  VecOrView<double> c;
  // Real characters from a text position to its factor's end (0 on
  // sentinels); a depth-i window starting at q is in-factor iff
  // remaining[q] >= i.
  VecOrView<int32_t> remaining;
  std::unordered_map<int64_t, const CorrelationRule*> rules;

  int32_t K = 0;               // short-depth limit
  int32_t max_remaining = 0;   // longest in-factor window anywhere
  // active[i-1] bit j: SA entry j is the depth-i representative of its
  // (partition, original position) class (§5.2 duplicate elimination).
  std::vector<VecOrView<uint64_t>> active;
  std::vector<std::unique_ptr<RmqHandle>> short_rmq;  // depth 1..K

  struct LongLevel {
    int32_t depth = 0;
    std::unique_ptr<RmqHandle> rmq;
  };
  std::vector<LongLevel> long_levels;  // kPow2: depths K, 2K, 4K, ...

  mutable std::mutex lazy_mu;
  mutable std::map<int32_t, std::unique_ptr<RmqHandle>> lazy_exact;

  size_t N() const { return fs.text.size(); }

  bool ActiveBit(int32_t depth, size_t j) const {
    return (active[depth - 1][j >> 6] >> (j & 63)) & 1;
  }

  // Exact log-probability of the depth-length window of suffix-array entry j
  // (correlation-resolved), or -inf when the window leaves its factor.
  double RawValue(int32_t depth, size_t j) const {
    const int64_t q = sa_view[j];
    if (remaining[q] < depth) return kNegInf;
    double v = c[q + depth] - c[q];
    if (!fs.corr_positions.empty()) {
      auto it = std::lower_bound(fs.corr_positions.begin(),
                                 fs.corr_positions.end(), q);
      for (; it != fs.corr_positions.end() && *it < q + depth; ++it) {
        v += Adjustment(*it, q, depth);
      }
    }
    return v;
  }

  // log(resolved) - log(stored) for the correlated character at text
  // position z, within the window [q, q+depth).
  double Adjustment(int64_t z, int64_t q, int32_t depth) const {
    const uint8_t ch = static_cast<uint8_t>(fs.text.chars()[z]);
    const int64_t s_pos = fs.pos[z];
    const CorrelationRule* rule = rules.at(RuleKey(s_pos, ch));
    const int64_t ws = fs.pos[q];  // window start in S
    double p;
    if (rule->dep_pos >= ws && rule->dep_pos < ws + depth) {
      // Case 1: dependency inside the window — the factor's own character
      // at that position decides it.
      const int64_t zdep = q + (rule->dep_pos - ws);
      const bool present = fs.text.chars()[zdep] == rule->dep_ch;
      p = present ? rule->prob_if_present : rule->prob_if_absent;
    } else {
      // Case 2: outside the window — marginalize.
      const double dep = source.BaseProb(rule->dep_pos, rule->dep_ch);
      p = dep * rule->prob_if_present + (1.0 - dep) * rule->prob_if_absent;
    }
    const double resolved = p <= 0.0 ? kNegInf : std::log(p);
    return resolved - fs.logp[z];
  }

  struct RawFn {
    const Impl* impl;
    int32_t depth;
    double operator()(size_t j) const { return impl->RawValue(depth, j); }
  };
  struct ActiveFn {
    const Impl* impl;
    int32_t depth;
    double operator()(size_t j) const {
      return impl->ActiveBit(depth, j) ? impl->RawValue(depth, j) : kNegInf;
    }
  };

  // Shared by every load/build path: the correlation-rule lookup table and
  // the K formula (both cheap, always rederived).
  void BuildRules() {
    rules.clear();
    for (const CorrelationRule& r : source.correlations()) {
      rules[RuleKey(r.pos, r.ch)] = &r;
    }
  }

  int32_t ComputeK(size_t n_text) const {
    int32_t k;
    if (options.max_short_depth > 0) {
      k = options.max_short_depth;
    } else {
      k = 1;
      while ((size_t{1} << k) < std::max<size_t>(n_text, 2)) ++k;
    }
    return std::max(1, std::min<int32_t>(k, std::max(max_remaining, 1)));
  }

  // The kPow2 level depths are a pure function of K and max_remaining; the
  // loader recomputes them to cross-check a persisted RMQ forest.
  std::vector<int32_t> LongLevelDepths() const {
    std::vector<int32_t> depths;
    if (options.blocking == BlockingMode::kPow2) {
      for (int64_t d = K; d <= max_remaining; d *= 2) {
        depths.push_back(static_cast<int32_t>(d));
      }
    }
    return depths;
  }

  // Builds the §5 RMQ forest. The K short trees and the long levels are
  // mutually independent, so a multi-thread pool fans out across them when
  // there are enough trees to fill it; with fewer trees than threads each
  // tree is built in order with the pool parallelizing its internal
  // block-argmax pass instead. Tasks running on pool workers get no inner
  // pool — a nested Wait from a worker of the same pool would deadlock.
  void BuildRmqForest(size_t n_text, ThreadPool* pool = nullptr) {
    short_rmq.clear();
    short_rmq.resize(K);
    const std::vector<int32_t> depths = LongLevelDepths();
    long_levels.clear();
    long_levels.resize(depths.size());
    const size_t total = static_cast<size_t>(K) + depths.size();
    const auto build_one = [&](size_t t, ThreadPool* inner) {
      if (t < static_cast<size_t>(K)) {
        const int32_t i = static_cast<int32_t>(t) + 1;
        short_rmq[t] =
            MakeRmq(options.rmq_engine, ActiveFn{this, i}, n_text, 64, inner);
      } else {
        LongLevel& level = long_levels[t - static_cast<size_t>(K)];
        level.depth = depths[t - static_cast<size_t>(K)];
        level.rmq = MakeRmq(RmqEngineKind::kBlock, RawFn{this, level.depth},
                            n_text, static_cast<size_t>(level.depth), inner);
      }
    };
    if (pool != nullptr && pool->num_threads() > 1 &&
        total >= pool->num_threads()) {
      pool->ParallelFor(total, [&](size_t t) { build_one(t, nullptr); });
    } else {
      for (size_t t = 0; t < total; ++t) build_one(t, pool);
    }
  }

  // §5.2 duplicate elimination for one depth: within every depth-i locus
  // partition keep one representative per original position. The stamp
  // only has to be unique per partition *within* this depth, so per-depth
  // calls with fresh (seen, stamp) state produce the same bits as the
  // classic sequential loop that threads one stamp counter through all
  // depths — which is what makes the depths independently parallelizable.
  std::vector<uint64_t> BuildActiveBits(int32_t i,
                                        const std::vector<int32_t>& lcp,
                                        std::vector<int64_t>* seen,
                                        int64_t* stamp) const {
    const size_t n_text = N();
    std::vector<uint64_t> bits((n_text + 63) / 64, 0);
    for (size_t j = 0; j < n_text; ++j) {
      if (j == 0 || lcp[j] < i) ++*stamp;
      const int64_t q = sa_view[j];
      if (remaining[q] < i) continue;
      const int64_t spos = fs.pos[q];
      if ((*seen)[spos] != *stamp) {
        (*seen)[spos] = *stamp;
        bits[j >> 6] |= uint64_t{1} << (j & 63);
      }
    }
    return bits;
  }

  // Builds everything derived from (source, options, fs). In compact mode
  // `loaded_sa`, when engaged (Load with a persisted "SARR" section,
  // already validated as a length-N permutation; possibly a view into the
  // backing Blob), replaces the SA-IS run; compact mode never materializes
  // the suffix tree at all — SA + LCP come from SA-IS/Kasai-or-PLCP and the
  // FM-index serves locus lookups.
  //
  // A non-null multi-thread `pool` parallelizes the LCP scan, the active
  // bitsets (one task per depth), the FM-index internals and the RMQ
  // forest, and overlaps the FM-index build (depends only on text + SA)
  // with the derived passes (text + SA + LCP) on a dedicated thread. The
  // floating-point prefix sum `c` and the `remaining` reverse scan stay
  // sequential — cheap O(n), and parallel FP reassociation would change
  // serialized bytes. Everything else writes precomputed disjoint
  // locations, so the build is bit-identical at any thread count.
  Status FinishBuild(std::optional<VecOrView<int32_t>> loaded_sa =
                         std::nullopt,
                     ThreadPool* pool = nullptr,
                     BuildTimings* timings = nullptr) {
    const size_t n_text = N();
    const std::vector<int32_t>* lcp = nullptr;
    std::vector<int32_t> lcp_storage;
    std::thread fm_thread;  // joined before the RMQ forest below
    if (options.compact) {
      {
        StageTimer t(TimingSlot(timings, &BuildTimings::sa_ms));
        sa_storage = loaded_sa.has_value()
                         ? std::move(*loaded_sa)
                         : VecOrView<int32_t>(BuildSuffixArray(
                               fs.text.chars(), fs.text.alphabet_size()));
        sa_view = sa_storage.span();
      }
      {
        StageTimer t(TimingSlot(timings, &BuildTimings::lcp_ms));
        lcp_storage = BuildLcpArrayParallel(fs.text.chars(), sa_view, pool);
      }
      lcp = &lcp_storage;
      // The FM-index needs only text + SA, both final here, so with a real
      // thread budget it builds concurrently with the derived passes below.
      // It runs on a dedicated thread, not a pool task: it drives the pool
      // itself (wavelet-tree fills), and a pool task calling Wait on its
      // own pool would deadlock.
      const auto build_fm = [this, pool, timings] {
        StageTimer t(TimingSlot(timings, &BuildTimings::fm_ms));
        fm.emplace(fs.text.chars(), sa_view, fs.text.alphabet_size(), pool);
      };
      if (pool != nullptr && pool->num_threads() >= 2) {
        fm_thread = std::thread(build_fm);
      } else {
        build_fm();
      }
      st = SuffixTree();
    } else {
      StageTimer t(TimingSlot(timings, &BuildTimings::sa_ms));
      st = SuffixTree::Build(fs.text.chars(), fs.text.alphabet_size());
      sa_view = st.sa();
      lcp = &st.lcp();
    }

    BuildRules();

    {
      StageTimer t(TimingSlot(timings, &BuildTimings::derived_ms));
      std::vector<double> c_build(n_text + 1, 0.0);
      for (size_t k = 0; k < n_text; ++k) {
        c_build[k + 1] = c_build[k] + fs.logp[k];
      }
      c = VecOrView<double>(std::move(c_build));
      std::vector<int32_t> rem_build(n_text, 0);
      max_remaining = 0;
      for (int64_t q = static_cast<int64_t>(n_text) - 1; q >= 0; --q) {
        rem_build[q] = fs.text.IsSentinel(q) ? 0 : rem_build[q + 1] + 1;
        max_remaining = std::max(max_remaining, rem_build[q]);
      }
      remaining = VecOrView<int32_t>(std::move(rem_build));

      K = ComputeK(n_text);

      active.assign(K, VecOrView<uint64_t>());
      if (pool != nullptr && pool->num_threads() > 1 && K > 1) {
        pool->ParallelFor(static_cast<size_t>(K), [&](size_t d) {
          const int32_t i = static_cast<int32_t>(d) + 1;
          std::vector<int64_t> seen(
              static_cast<size_t>(std::max<int64_t>(fs.original_length, 1)),
              -1);
          int64_t stamp = 0;
          active[d] =
              VecOrView<uint64_t>(BuildActiveBits(i, *lcp, &seen, &stamp));
        });
      } else {
        std::vector<int64_t> seen(
            static_cast<size_t>(std::max<int64_t>(fs.original_length, 1)),
            -1);
        int64_t stamp = 0;
        for (int32_t i = 1; i <= K; ++i) {
          active[i - 1] =
              VecOrView<uint64_t>(BuildActiveBits(i, *lcp, &seen, &stamp));
        }
      }
    }

    if (fm_thread.joinable()) fm_thread.join();
    {
      StageTimer t(TimingSlot(timings, &BuildTimings::rmq_ms));
      BuildRmqForest(n_text, pool);
    }
    return Status::OK();
  }

  // Zero-copy load path for compact v3 containers: every large array —
  // suffix array (already installed by Load), prefix sums, remaining run
  // lengths, active bitsets, FM-index levels, RMQ tables — is a view into
  // the backing Blob. Structural sizes are validated here; array *content*
  // is entrusted to the container checksum, with the exceptions that keep
  // memory safety independent of it: `remaining` must satisfy its defining
  // recurrence (it bounds every c[] access), the FM count table must be
  // monotone and end at N+1, every bit-vector directory is recomputed and
  // compared, and RMQ argmax entries must lie inside their windows.
  Status FinishLoadCompactV3(const serde::ContainerReader& container) {
    const size_t n_text = N();
    sa_view = sa_storage.span();
    st = SuffixTree();
    BuildRules();

    Reader derv;
    PTI_RETURN_IF_ERROR(container.Section(serde::kTagDerived, &derv));
    Span<const double> c_span;
    Span<const int32_t> rem_span;
    PTI_RETURN_IF_ERROR(derv.GetSpan(&c_span));
    PTI_RETURN_IF_ERROR(derv.GetSpan(&rem_span));
    PTI_RETURN_IF_ERROR(serde::ExpectSectionEnd(derv, "derived"));
    if (c_span.size() != n_text + 1 || rem_span.size() != n_text) {
      return Status::Corruption("derived array length mismatches text");
    }
    if (c_span[0] != 0.0) {
      return Status::Corruption("prefix-sum array does not start at zero");
    }
    // remaining[] bounds every c[q + depth] access (RawValue dereferences
    // c[q + depth] only when depth <= remaining[q]), so it must satisfy its
    // defining recurrence exactly — not merely stay in range.
    for (size_t q = 0; q < n_text; ++q) {
      const int32_t expect =
          fs.text.IsSentinel(q) ? 0
          : (q + 1 < n_text ? rem_span[q + 1] + 1 : 1);
      if (rem_span[q] != expect) {
        return Status::Corruption("remaining-run array inconsistent with text");
      }
    }
    c = VecOrView<double>::View(c_span);
    remaining = VecOrView<int32_t>::View(rem_span);
    max_remaining = 0;
    for (size_t q = 0; q < n_text; ++q) {
      max_remaining = std::max(max_remaining, rem_span[q]);
    }
    K = ComputeK(n_text);

    Reader actv;
    PTI_RETURN_IF_ERROR(container.Section(serde::kTagActive, &actv));
    uint32_t depth_count = 0;
    PTI_RETURN_IF_ERROR(actv.GetU32(&depth_count));
    if (depth_count != static_cast<uint32_t>(K)) {
      return Status::Corruption("active bitset depth count mismatch");
    }
    active.assign(K, VecOrView<uint64_t>());
    for (int32_t i = 0; i < K; ++i) {
      Span<const uint64_t> bits;
      PTI_RETURN_IF_ERROR(actv.GetSpan(&bits));
      if (bits.size() != (n_text + 63) / 64) {
        return Status::Corruption("active bitset word count mismatch");
      }
      active[i] = VecOrView<uint64_t>::View(bits);
    }
    PTI_RETURN_IF_ERROR(serde::ExpectSectionEnd(actv, "active"));

    Reader fmix;
    PTI_RETURN_IF_ERROR(container.Section(serde::kTagFmIndex, &fmix));
    fm.emplace();
    PTI_RETURN_IF_ERROR(fm->LoadFrom(&fmix));
    PTI_RETURN_IF_ERROR(serde::ExpectSectionEnd(fmix, "FM-index"));
    if (fm->bwt_size() != n_text + 1) {
      return Status::Corruption("FM-index size mismatches text");
    }

    const std::vector<int32_t> expected_depths = LongLevelDepths();
    if (options.rmq_engine == RmqEngineKind::kBlock &&
        container.Has(serde::kTagRmqBlocks)) {
      Reader rmqb;
      PTI_RETURN_IF_ERROR(container.Section(serde::kTagRmqBlocks, &rmqb));
      uint32_t nshort = 0;
      PTI_RETURN_IF_ERROR(rmqb.GetU32(&nshort));
      if (nshort != static_cast<uint32_t>(K)) {
        return Status::Corruption("RMQ forest depth count mismatch");
      }
      short_rmq.clear();
      short_rmq.reserve(K);
      for (int32_t i = 1; i <= K; ++i) {
        std::unique_ptr<RmqHandle> handle;
        PTI_RETURN_IF_ERROR(
            LoadBlockRmq(&rmqb, ActiveFn{this, i}, n_text, &handle));
        short_rmq.push_back(std::move(handle));
      }
      uint32_t nlong = 0;
      PTI_RETURN_IF_ERROR(rmqb.GetU32(&nlong));
      if (nlong != expected_depths.size()) {
        return Status::Corruption("RMQ long-level count mismatch");
      }
      long_levels.clear();
      for (uint32_t l = 0; l < nlong; ++l) {
        uint32_t depth = 0;
        PTI_RETURN_IF_ERROR(rmqb.GetU32(&depth));
        if (depth != static_cast<uint32_t>(expected_depths[l])) {
          return Status::Corruption("RMQ long-level depth mismatch");
        }
        LongLevel level;
        level.depth = expected_depths[l];
        PTI_RETURN_IF_ERROR(LoadBlockRmq(&rmqb, RawFn{this, level.depth},
                                         n_text, &level.rmq));
        long_levels.push_back(std::move(level));
      }
      PTI_RETURN_IF_ERROR(serde::ExpectSectionEnd(rmqb, "RMQ forest"));
    } else {
      // Non-block engines are not persisted; rebuild from the loaded views.
      BuildRmqForest(n_text);
    }
    derived_from_sections = true;
    return Status::OK();
  }

  // kPaperExact: block structure for exact depth m, built on first use.
  const RmqHandle* ExactLevel(int32_t m) const {
    std::lock_guard<std::mutex> lock(lazy_mu);
    auto it = lazy_exact.find(m);
    if (it == lazy_exact.end()) {
      it = lazy_exact
               .emplace(m, MakeRmq(RmqEngineKind::kBlock, RawFn{this, m}, N(),
                                   static_cast<size_t>(m)))
               .first;
    }
    return it->second.get();
  }

  // Locus range of the pattern: suffix tree walk, or FM-index backward
  // search in compact mode.
  std::optional<std::pair<int32_t, int32_t>> LocusRange(
      const std::string& pattern) const {
    if (fm.has_value()) {
      return fm->Range(Text::MapPattern(pattern));
    }
    const auto range = st.FindRange(Text::MapPattern(pattern));
    if (!range.has_value() || range->empty()) return std::nullopt;
    return std::make_pair(range->begin, range->end);
  }

  Status CheckQuery(const std::string& pattern, double tau) const {
    if (pattern.empty()) {
      return Status::InvalidArgument("pattern must be non-empty");
    }
    if (!(tau > 0.0) || tau > 1.0) {
      return Status::InvalidArgument("tau must be in (0, 1]");
    }
    const LogProb lt = LogProb::FromLinear(tau);
    const LogProb lmin = LogProb::FromLinear(fs.tau_min);
    if (!lt.MeetsThreshold(lmin)) {
      return Status::InvalidArgument(
          "tau is below the construction-time tau_min");
    }
    return Status::OK();
  }

  // A reported occurrence before linear-space conversion: original position
  // plus the exact log-probability the threshold test ran against. QueryBatch
  // needs the log value to re-filter one extraction per distinct tau with
  // the exact predicate Query uses.
  struct RawMatch {
    int64_t spos = 0;
    double logv = kNegInf;
  };

  // Keeps the best window value per original position. Different factors can
  // align the same (position, depth) window; their values are mathematically
  // equal (same characters, same rules), so taking the max just picks the
  // cleanest rounding of the prefix-sum differences.
  static void EmitDedup(std::unordered_map<int64_t, double>* best,
                        int64_t spos, double v) {
    const auto [it, inserted] = best->emplace(spos, v);
    if (!inserted && v > it->second) it->second = v;
  }

  // Algorithm 4: recursive RMQ extraction over an active (deduplicated)
  // depth-m structure. Emits exact matches; the locus range is one depth-m
  // partition, so positions are already unique.
  void ShortQuery(int32_t m, int32_t l, int32_t r, LogProb log_tau,
                  std::vector<RawMatch>* out) const {
    const RmqHandle* rmq = short_rmq[m - 1].get();
    std::vector<std::pair<int32_t, int32_t>> stack{{l, r}};
    while (!stack.empty()) {
      auto [lo, hi] = stack.back();
      stack.pop_back();
      if (lo > hi) continue;
      const size_t pos = rmq->ArgMax(lo, hi);
      const double v = ActiveFn{this, m}(pos);
      if (!LogProb::FromLog(v).MeetsThreshold(log_tau)) continue;
      out->push_back(RawMatch{fs.pos[sa_view[pos]], v});
      stack.emplace_back(lo, static_cast<int32_t>(pos) - 1);
      stack.emplace_back(static_cast<int32_t>(pos) + 1, hi);
    }
  }

  // Scan fallback: validate every entry of the range at exact depth m,
  // deduplicating positions (used for tiny ranges and kScanOnly).
  void ScanQuery(int32_t m, int32_t l, int32_t r, LogProb log_tau,
                 std::unordered_map<int64_t, double>* best) const {
    for (int32_t j = l; j <= r; ++j) {
      const double v = RawValue(m, j);
      if (!LogProb::FromLog(v).MeetsThreshold(log_tau)) continue;
      EmitDedup(best, fs.pos[sa_view[j]], v);
    }
  }

  // kPow2 long-pattern recursion: an upper-bound level filters ranges; every
  // candidate is validated at exact depth m.
  void Pow2Query(int32_t m, int32_t l, int32_t r, LogProb log_tau,
                 std::unordered_map<int64_t, double>* best) const {
    const LongLevel* level = nullptr;
    for (const auto& cand : long_levels) {
      if (cand.depth <= m && (level == nullptr || cand.depth > level->depth)) {
        level = &cand;
      }
    }
    if (level == nullptr) {
      ScanQuery(m, l, r, log_tau, best);
      return;
    }
    std::vector<std::pair<int32_t, int32_t>> stack{{l, r}};
    while (!stack.empty()) {
      auto [lo, hi] = stack.back();
      stack.pop_back();
      if (lo > hi) continue;
      const size_t pos = level->rmq->ArgMax(lo, hi);
      // Upper bound: a shorter window's probability dominates the longer
      // window's. Below tau here means nothing in [lo, hi] can match.
      const double ub = RawValue(level->depth, pos);
      if (!LogProb::FromLog(ub).MeetsThreshold(log_tau)) continue;
      const double v = RawValue(m, pos);
      if (LogProb::FromLog(v).MeetsThreshold(log_tau)) {
        EmitDedup(best, fs.pos[sa_view[pos]], v);
      }
      stack.emplace_back(lo, static_cast<int32_t>(pos) - 1);
      stack.emplace_back(static_cast<int32_t>(pos) + 1, hi);
    }
  }

  // kPaperExact long-pattern recursion over the lazily built exact-depth
  // structure; identical shape to Algorithm 4 plus position dedup.
  void PaperExactQuery(int32_t m, int32_t l, int32_t r, LogProb log_tau,
                       std::unordered_map<int64_t, double>* best) const {
    const RmqHandle* rmq = ExactLevel(m);
    std::vector<std::pair<int32_t, int32_t>> stack{{l, r}};
    while (!stack.empty()) {
      auto [lo, hi] = stack.back();
      stack.pop_back();
      if (lo > hi) continue;
      const size_t pos = rmq->ArgMax(lo, hi);
      const double v = RawValue(m, pos);
      if (!LogProb::FromLog(v).MeetsThreshold(log_tau)) continue;
      EmitDedup(best, fs.pos[sa_view[pos]], v);
      stack.emplace_back(lo, static_cast<int32_t>(pos) - 1);
      stack.emplace_back(static_cast<int32_t>(pos) + 1, hi);
    }
  }

  // Dispatches the locus range [l, r] to the right extraction path for
  // pattern length m; emits raw matches, position-sorted.
  void Extract(int32_t m, int32_t l, int32_t r, LogProb log_tau,
               std::vector<RawMatch>* out) const {
    if (m <= K) {
      ShortQuery(m, l, r, log_tau, out);
    } else {
      std::unordered_map<int64_t, double> best;
      if (options.blocking == BlockingMode::kScanOnly ||
          static_cast<size_t>(r - l + 1) <= options.scan_cutoff) {
        ScanQuery(m, l, r, log_tau, &best);
      } else if (options.blocking == BlockingMode::kPaperExact) {
        PaperExactQuery(m, l, r, log_tau, &best);
      } else {
        Pow2Query(m, l, r, log_tau, &best);
      }
      out->reserve(out->size() + best.size());
      // pti-lint: allow(unordered-iteration-in-serde): spos keys are unique
      // and the sort below imposes a total order, so emit order cancels out.
      for (const auto& [spos, v] : best) out->push_back(RawMatch{spos, v});
    }
    std::sort(out->begin(), out->end(),
              [](const RawMatch& a, const RawMatch& b) {
                return a.spos < b.spos;
              });
  }

  Status Query(const std::string& pattern, double tau,
               std::vector<Match>* out) const {
    out->clear();
    PTI_RETURN_IF_ERROR(CheckQuery(pattern, tau));
    const auto range = LocusRange(pattern);
    if (!range.has_value()) return Status::OK();
    std::vector<RawMatch> raw;
    Extract(static_cast<int32_t>(pattern.size()), range->first,
            range->second - 1, LogProb::FromLinear(tau), &raw);
    out->reserve(raw.size());
    for (const RawMatch& rm : raw) {
      out->push_back(Match{rm.spos, std::exp(rm.logv)});
    }
    return Status::OK();
  }

  Status QueryBatch(const std::vector<BatchQuery>& queries,
                    std::vector<std::vector<Match>>* out) const {
    // Resize without discarding the inner vectors: a caller reusing the
    // output across batches then pays no per-query allocations.
    out->resize(queries.size());
    for (auto& dst : *out) dst.clear();
    // Validate everything up front, computing each query's log-space
    // threshold exactly once (Query pays the log() conversions per call;
    // the batch reuses them for extraction and filtering below).
    const LogProb lmin = LogProb::FromLinear(fs.tau_min);
    std::vector<LogProb> log_taus;
    log_taus.reserve(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      const auto fail = [&i](const char* what) {
        return Status::InvalidArgument("batch query #" + std::to_string(i) +
                                       ": " + what);
      };
      const BatchQuery& q = queries[i];
      if (q.pattern.empty()) return fail("pattern must be non-empty");
      if (!(q.tau > 0.0) || q.tau > 1.0) {
        return fail("tau must be in (0, 1]");
      }
      log_taus.push_back(LogProb::FromLinear(q.tau));
      if (!log_taus.back().MeetsThreshold(lmin)) {
        return fail("tau is below the construction-time tau_min");
      }
    }
    // Pattern-sorted processing: equal patterns collapse into one group
    // (smallest tau first), and neighbouring patterns share the resumable
    // part of the locus search — prefixes in tree mode (the descent resumes
    // mid-path), suffixes in compact mode (backward search reads patterns
    // right-to-left, so the shared suffix is what an FM range can resume
    // from).
    const bool compact_mode = fm.has_value();
    std::vector<size_t> order(queries.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(),
              [&queries, compact_mode](size_t a, size_t b) {
                const std::string& pa = queries[a].pattern;
                const std::string& pb = queries[b].pattern;
                if (pa != pb) {
                  return compact_mode ? ReversedLess(pa, pb)
                                      : pa.compare(pb) < 0;
                }
                return queries[a].tau < queries[b].tau;
              });
    std::optional<PrefixWalker> tree_walker;
    std::optional<SuffixWalker> fm_walker;
    if (compact_mode) {
      fm_walker.emplace(&*fm);
    } else {
      tree_walker.emplace(&st);
    }
    std::vector<RawMatch> raw;
    size_t g = 0;
    while (g < order.size()) {
      size_t h = g + 1;
      while (h < order.size() &&
             queries[order[h]].pattern == queries[order[g]].pattern) {
        ++h;
      }
      const std::string& pattern = queries[order[g]].pattern;
      const auto mapped = Text::MapPattern(pattern);
      const auto range = compact_mode ? fm_walker->Find(mapped)
                                      : tree_walker->Find(mapped);
      if (range.has_value()) {
        // One extraction at the group's smallest tau is a superset of every
        // member's result set (MeetsThreshold is monotone in tau), so each
        // member just re-filters with its own threshold.
        raw.clear();
        Extract(static_cast<int32_t>(pattern.size()), range->first,
                range->second - 1, log_taus[order[g]], &raw);
        for (size_t j = g; j < h; ++j) {
          const LogProb log_tau = log_taus[order[j]];
          auto& dst = (*out)[order[j]];
          dst.reserve(raw.size());
          for (const RawMatch& rm : raw) {
            if (LogProb::FromLog(rm.logv).MeetsThreshold(log_tau)) {
              dst.push_back(Match{rm.spos, std::exp(rm.logv)});
            }
          }
        }
      }
      g = h;
    }
    return Status::OK();
  }

  // ---- Fuzzy (approximate) queries --------------------------------------

  // Upper bound, in log space, on how much a window's probability can
  // exceed one of its own sub-windows': per correlation rule, the gap
  // between its best case-1 resolution and the case-2 marginal a sub-window
  // excluding the dependency must fall back to. Without rules the bound is
  // zero (dropping factors <= 1 only raises a product). +inf when a rule's
  // marginal is zero while a case-1 branch is positive — then no finite
  // seed threshold is safe and the tree path verifies every position.
  double CorrelationSeedBoost() const {
    double boost = 0.0;
    for (const CorrelationRule& r : source.correlations()) {
      const double case1_best = std::max(r.prob_if_present, r.prob_if_absent);
      if (case1_best <= 0.0) continue;
      const double dep = source.BaseProb(r.dep_pos, r.dep_ch);
      const double marginal =
          dep * r.prob_if_present + (1.0 - dep) * r.prob_if_absent;
      if (marginal <= 0.0) return std::numeric_limits<double>::infinity();
      boost += std::max(0.0, std::log(case1_best) - std::log(marginal));
    }
    return boost;
  }

  // Tree-mode candidate generation (seed-and-extend): any admissible
  // variant occurrence keeps at least one of the k+1 pigeonhole seeds
  // intact, so extracting each seed's occurrences yields a complete
  // candidate set; under kEdit the seed can shift by the net indels before
  // it, hence the [-k, k] alignment sweep. Falls back to every position
  // when the pattern has no k+1 non-empty seeds or the boost is unbounded.
  void FuzzyCandidatesTree(const std::string& pattern,
                           const FuzzyParams& params, LogProb log_tau,
                           std::set<int64_t>* cand) const {
    const int32_t m = static_cast<int32_t>(pattern.size());
    const int64_t n = source.size();
    const bool edit = params.metric == FuzzyMetric::kEdit;
    const double boost = CorrelationSeedBoost();
    if (m <= params.k || !std::isfinite(boost)) {
      const int64_t last = edit && params.k > 0 ? n - 1 : n - m;
      for (int64_t i = 0; i <= last; ++i) cand->insert(i);
      return;
    }
    // The intact seed's standalone window dominates the variant window up
    // to the correlation boost, so it clears tau lowered by that bound.
    const LogProb seed_tau = LogProb::FromLog(log_tau.log() - boost);
    std::vector<RawMatch> raw;
    for (const auto& [off, len] : FuzzySeeds(m, params.k)) {
      const auto range = LocusRange(pattern.substr(
          static_cast<size_t>(off), static_cast<size_t>(len)));
      if (!range.has_value()) continue;
      raw.clear();
      Extract(len, range->first, range->second - 1, seed_tau, &raw);
      const int32_t max_shift = edit ? params.k : 0;
      for (const RawMatch& rm : raw) {
        for (int32_t shift = -max_shift; shift <= max_shift; ++shift) {
          const int64_t i = rm.spos - off - shift;
          if (i >= 0 && i < n) cand->insert(i);
        }
      }
    }
  }

  // One fuzzy enumeration pass: every position whose best admissible
  // variant clears log_tau, with that variant's exact log value,
  // position-sorted. Shared by QueryFuzzy and QueryFuzzyBatch (which runs
  // it at a group's smallest tau and re-filters, exactly like the exact
  // batch path).
  void FuzzyExtract(const std::string& pattern, const FuzzyParams& params,
                    LogProb log_tau, std::vector<RawMatch>* out) const {
    out->clear();
    if (fm.has_value()) {
      // Compact mode: enumerate variant windows directly. Coverage of the
      // factor transformation applies per variant (each is a deterministic
      // string), so extracting every variant range at its own depth and
      // keeping the best value per position reproduces the oracle's max.
      std::unordered_map<int64_t, double> best;
      std::vector<RawMatch> raw;
      for (const FuzzySaRange& fr :
           EnumerateFmFuzzyRanges(*fm, Text::MapPattern(pattern), params)) {
        raw.clear();
        Extract(fr.length, fr.begin, fr.end - 1, log_tau, &raw);
        for (const RawMatch& rm : raw) EmitDedup(&best, rm.spos, rm.logv);
      }
      out->reserve(best.size());
      // pti-lint: allow(unordered-iteration-in-serde): spos keys are unique
      // and the sort below imposes a total order, so emit order cancels out.
      for (const auto& [spos, v] : best) out->push_back(RawMatch{spos, v});
      std::sort(out->begin(), out->end(),
                [](const RawMatch& a, const RawMatch& b) {
                  return a.spos < b.spos;
                });
    } else {
      std::set<int64_t> cand;
      FuzzyCandidatesTree(pattern, params, log_tau, &cand);
      for (const int64_t i : cand) {
        const LogProb p = FuzzyOccurrenceProb(source, pattern, i, params);
        if (p.MeetsThreshold(log_tau)) out->push_back(RawMatch{i, p.log()});
      }
    }
  }

  Status QueryFuzzy(const std::string& pattern, double tau,
                    const FuzzyParams& params, std::vector<Match>* out) const {
    out->clear();
    PTI_RETURN_IF_ERROR(CheckQuery(pattern, tau));
    PTI_RETURN_IF_ERROR(CheckFuzzyParams(params));
    // k = 0 is the exact query; delegating keeps it bit-identical.
    if (params.k == 0) return Query(pattern, tau, out);
    std::vector<RawMatch> raw;
    FuzzyExtract(pattern, params, LogProb::FromLinear(tau), &raw);
    out->reserve(raw.size());
    for (const RawMatch& rm : raw) {
      out->push_back(Match{rm.spos, std::exp(rm.logv)});
    }
    return Status::OK();
  }

  Status QueryFuzzyBatch(const std::vector<FuzzyBatchQuery>& queries,
                         std::vector<std::vector<Match>>* out) const {
    out->resize(queries.size());
    for (auto& dst : *out) dst.clear();
    const LogProb lmin = LogProb::FromLinear(fs.tau_min);
    std::vector<LogProb> log_taus;
    log_taus.reserve(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      const auto fail = [&i](const char* what) {
        return Status::InvalidArgument("batch query #" + std::to_string(i) +
                                       ": " + what);
      };
      const FuzzyBatchQuery& q = queries[i];
      if (q.pattern.empty()) return fail("pattern must be non-empty");
      if (!(q.tau > 0.0) || q.tau > 1.0) {
        return fail("tau must be in (0, 1]");
      }
      log_taus.push_back(LogProb::FromLinear(q.tau));
      if (!log_taus.back().MeetsThreshold(lmin)) {
        return fail("tau is below the construction-time tau_min");
      }
      const Status fp = CheckFuzzyParams(q.params);
      if (!fp.ok()) {
        const std::string msg =
            "batch query #" + std::to_string(i) + ": " + fp.message();
        return fp.code() == Status::Code::kNotSupported
                   ? Status::NotSupported(msg)
                   : Status::InvalidArgument(msg);
      }
    }
    // Group by (pattern, metric, k): one enumeration at the group's
    // smallest tau is a superset of every member's result set, so members
    // re-filter with their own thresholds — the fuzzy mirror of QueryBatch.
    std::vector<size_t> order(queries.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&queries](size_t a, size_t b) {
      const FuzzyBatchQuery& qa = queries[a];
      const FuzzyBatchQuery& qb = queries[b];
      if (qa.pattern != qb.pattern) return qa.pattern < qb.pattern;
      if (qa.params.metric != qb.params.metric) {
        return qa.params.metric < qb.params.metric;
      }
      if (qa.params.k != qb.params.k) return qa.params.k < qb.params.k;
      return qa.tau < qb.tau;
    });
    std::vector<RawMatch> raw;
    size_t g = 0;
    while (g < order.size()) {
      const FuzzyBatchQuery& lead = queries[order[g]];
      size_t h = g + 1;
      while (h < order.size() &&
             queries[order[h]].pattern == lead.pattern &&
             queries[order[h]].params.metric == lead.params.metric &&
             queries[order[h]].params.k == lead.params.k) {
        ++h;
      }
      if (lead.params.k == 0) {
        // Exact members stay on the exact path for bit-identity with Query.
        for (size_t j = g; j < h; ++j) {
          PTI_RETURN_IF_ERROR(Query(lead.pattern, queries[order[j]].tau,
                                    &(*out)[order[j]]));
        }
      } else {
        raw.clear();
        FuzzyExtract(lead.pattern, lead.params, log_taus[order[g]], &raw);
        for (size_t j = g; j < h; ++j) {
          const LogProb log_tau = log_taus[order[j]];
          auto& dst = (*out)[order[j]];
          dst.reserve(raw.size());
          for (const RawMatch& rm : raw) {
            if (LogProb::FromLog(rm.logv).MeetsThreshold(log_tau)) {
              dst.push_back(Match{rm.spos, std::exp(rm.logv)});
            }
          }
        }
      }
      g = h;
    }
    return Status::OK();
  }

  Status QueryTopK(const std::string& pattern, double tau, size_t k,
                   std::vector<Match>* out) const {
    out->clear();
    PTI_RETURN_IF_ERROR(CheckQuery(pattern, tau));
    if (k == 0) return Status::OK();
    const auto range = LocusRange(pattern);
    if (!range.has_value()) return Status::OK();
    const int32_t m = static_cast<int32_t>(pattern.size());
    const LogProb log_tau = LogProb::FromLinear(tau);
    if (m <= K) {
      // Heap of (value, argmax, subrange): repeatedly take the global best
      // and split its range — O((m + k) log k)-ish, independent of occ.
      struct Entry {
        double v;
        int32_t pos, l, r;
        bool operator<(const Entry& o) const { return v < o.v; }
      };
      const RmqHandle* rmq = short_rmq[m - 1].get();
      std::priority_queue<Entry> heap;
      auto push = [&](int32_t lo, int32_t hi) {
        if (lo > hi) return;
        const size_t pos = rmq->ArgMax(lo, hi);
        const double v = ActiveFn{this, m}(pos);
        if (LogProb::FromLog(v).MeetsThreshold(log_tau)) {
          heap.push(Entry{v, static_cast<int32_t>(pos), lo, hi});
        }
      };
      push(range->first, range->second - 1);
      while (!heap.empty() && out->size() < k) {
        const Entry e = heap.top();
        heap.pop();
        out->push_back(Match{fs.pos[sa_view[e.pos]], std::exp(e.v)});
        push(e.l, e.pos - 1);
        push(e.pos + 1, e.r);
      }
    } else {
      std::vector<Match> all;
      PTI_RETURN_IF_ERROR(Query(pattern, tau, &all));
      std::sort(all.begin(), all.end(), [](const Match& a, const Match& b) {
        if (a.probability != b.probability) {
          return a.probability > b.probability;
        }
        return a.position < b.position;
      });
      if (all.size() > k) all.resize(k);
      *out = std::move(all);
    }
    return Status::OK();
  }
};

SubstringIndex::SubstringIndex() = default;
SubstringIndex::~SubstringIndex() = default;
SubstringIndex::SubstringIndex(SubstringIndex&&) noexcept = default;
SubstringIndex& SubstringIndex::operator=(SubstringIndex&&) noexcept = default;

StatusOr<SubstringIndex> SubstringIndex::Build(const UncertainString& s,
                                               const IndexOptions& options,
                                               const BuildOptions& build) {
  SubstringIndex index;
  index.impl_ = std::make_unique<Impl>();
  index.impl_->source = s;
  index.impl_->options = options;
  StageTimer transform_timer(
      TimingSlot(build.timings, &BuildTimings::transform_ms));
  auto fs = TransformToFactors(index.impl_->source, options.transform);
  transform_timer.Stop();
  if (!fs.ok()) return fs.status();
  index.impl_->fs = std::move(fs).value();
  // The pool is scoped to this build; a 1-thread budget spins none at all.
  std::optional<ThreadPool> pool;
  if (ResolveThreadCount(build.threads) > 1) pool.emplace(build.threads);
  PTI_RETURN_IF_ERROR(index.impl_->FinishBuild(
      std::nullopt, pool.has_value() ? &*pool : nullptr, build.timings));
  return index;
}

Status SubstringIndex::Query(const std::string& pattern, double tau,
                             std::vector<Match>* out) const {
  return impl_->Query(pattern, tau, out);
}

Status SubstringIndex::QueryBatch(const std::vector<BatchQuery>& queries,
                                  std::vector<std::vector<Match>>* out) const {
  return impl_->QueryBatch(queries, out);
}

Status SubstringIndex::QueryFuzzy(const std::string& pattern, double tau,
                                  const FuzzyParams& params,
                                  std::vector<Match>* out) const {
  return impl_->QueryFuzzy(pattern, tau, params, out);
}

Status SubstringIndex::QueryFuzzyBatch(
    const std::vector<FuzzyBatchQuery>& queries,
    std::vector<std::vector<Match>>* out) const {
  return impl_->QueryFuzzyBatch(queries, out);
}

Status SubstringIndex::QueryTopK(const std::string& pattern, double tau,
                                 size_t k, std::vector<Match>* out) const {
  return impl_->QueryTopK(pattern, tau, k, out);
}

Status SubstringIndex::Count(const std::string& pattern, double tau,
                             size_t* count) const {
  std::vector<Match> matches;
  PTI_RETURN_IF_ERROR(impl_->Query(pattern, tau, &matches));
  *count = matches.size();
  return Status::OK();
}

SubstringIndex::Stats SubstringIndex::stats() const {
  Stats s;
  s.original_length = impl_->fs.original_length;
  s.num_factors = impl_->fs.num_factors();
  s.transformed_length = impl_->fs.total_length();
  s.short_depth_limit = impl_->K;
  s.num_tree_nodes = static_cast<size_t>(impl_->st.num_nodes());
  return s;
}

size_t SubstringIndex::MemoryUsage() const {
  const Impl& i = *impl_;
  size_t bytes = i.source.MemoryUsage() + i.fs.MemoryUsage() +
                 i.st.MemoryUsage() + i.c.OwnedBytes() +
                 i.remaining.OwnedBytes() + i.sa_storage.OwnedBytes();
  if (i.fm) bytes += i.fm->MemoryUsage();
  for (const auto& bits : i.active) bytes += bits.OwnedBytes();
  for (const auto& r : i.short_rmq) bytes += r->MemoryUsage();
  for (const auto& level : i.long_levels) bytes += level.rmq->MemoryUsage();
  {
    std::lock_guard<std::mutex> lock(i.lazy_mu);
    for (const auto& [depth, r] : i.lazy_exact) {
      (void)depth;
      bytes += r->MemoryUsage();
    }
  }
  return bytes;
}

const UncertainString& SubstringIndex::source() const {
  return impl_->source;
}

const IndexOptions& SubstringIndex::options() const { return impl_->options; }

Status SubstringIndex::Save(std::string* out) const {
  return Save(out, serde::kContainerVersion);
}

Status SubstringIndex::Save(std::string* out, uint32_t version) const {
  if (version < serde::kInterchangeVersion ||
      version > serde::kContainerVersion) {
    return Status::InvalidArgument("unsupported container version");
  }
  const Impl& i = *impl_;
  serde::ContainerWriter cw(serde::IndexKind::kSubstring, version);
  Writer& opts = cw.AddSection(serde::kTagOptions);
  opts.PutDouble(i.options.transform.tau_min);
  opts.PutU64(i.options.transform.max_total_length);
  opts.PutU32(static_cast<uint32_t>(i.options.max_short_depth));
  opts.PutU8(static_cast<uint8_t>(i.options.rmq_engine));
  opts.PutU8(static_cast<uint8_t>(i.options.blocking));
  opts.PutU64(i.options.scan_cutoff);
  opts.PutU8(i.options.compact ? 1 : 0);
  serde::EncodeUncertainString(i.source, &cw.AddSection(serde::kTagSource));
  if (version >= 3) {
    Writer& text_w = cw.AddSection(serde::kTagText);
    Writer& maps_w = cw.AddSection(serde::kTagMaps);
    serde::EncodeFactorSetV3(i.fs, &text_w, &maps_w);
  } else {
    serde::EncodeFactorSet(i.fs, &cw.AddSection(serde::kTagFactors));
  }
  if (i.options.compact) {
    // Compact Load would otherwise re-run SA-IS just to rebuild the
    // FM-index; persisting the suffix array turns a v2 load into decode +
    // Kasai + RMQ builds. Tree mode skips it: the tree rebuild derives the
    // SA anyway and the section would double the blob.
    cw.AddSection(serde::kTagSuffixArray).PutSpan(i.sa_storage.span());
  }
  if (version >= 3 && i.options.compact) {
    // Every derived structure the compact query paths touch, 8-byte
    // aligned so Load is validation plus pointer fix-up — no SA-IS, no
    // Kasai, no FM or RMQ construction, no payload copies.
    Writer& derv = cw.AddSection(serde::kTagDerived);
    derv.PutSpan(i.c.span());
    derv.PutSpan(i.remaining.span());
    Writer& actv = cw.AddSection(serde::kTagActive);
    actv.PutU32(static_cast<uint32_t>(i.K));
    for (const auto& bits : i.active) actv.PutSpan(bits.span());
    Writer& fmix = cw.AddSection(serde::kTagFmIndex);
    i.fm->SaveTo(&fmix);
    if (i.options.rmq_engine == RmqEngineKind::kBlock) {
      // Only the block engine round-trips (the Fischer-Heun and sparse-
      // table engines rebuild cheaply relative to their size on disk).
      Writer& rmqb = cw.AddSection(serde::kTagRmqBlocks);
      rmqb.PutU32(static_cast<uint32_t>(i.K));
      for (const auto& handle : i.short_rmq) handle->SaveTo(&rmqb);
      rmqb.PutU32(static_cast<uint32_t>(i.long_levels.size()));
      for (const auto& level : i.long_levels) {
        rmqb.PutU32(static_cast<uint32_t>(level.depth));
        level.rmq->SaveTo(&rmqb);
      }
    }
  }
  *out = std::move(cw).Finish();
  return Status::OK();
}

StatusOr<SubstringIndex> SubstringIndex::Load(std::string_view data,
                                              serde::BlobPtr backing,
                                              const BuildOptions& build) {
  // A v3 load keeps views into `data` alive for the index's lifetime, so
  // the index must own the bytes by construction: either the caller's Blob
  // (mmap'd file or otherwise pinned) or a private copy made here. Callers
  // passing a transient buffer therefore cannot create dangling views.
  PTI_ASSIGN_OR_RETURN(const uint32_t version, serde::PeekVersion(data));
  if (version >= 3 && backing == nullptr) {
    backing = std::make_shared<const serde::Blob>(std::string(data));
    data = backing->view();
  }
  serde::ContainerReader container;
  PTI_RETURN_IF_ERROR(serde::ContainerReader::Open(
      data, serde::IndexKind::kSubstring, &container));
  SubstringIndex index;
  index.impl_ = std::make_unique<Impl>();
  Impl& i = *index.impl_;
  if (container.version() >= 3) i.backing = backing;

  Reader opts;
  PTI_RETURN_IF_ERROR(container.Section(serde::kTagOptions, &opts));
  PTI_RETURN_IF_ERROR(opts.GetDouble(&i.options.transform.tau_min));
  if (!std::isfinite(i.options.transform.tau_min) ||
      !(i.options.transform.tau_min > 0.0) ||
      i.options.transform.tau_min > 1.0) {
    return Status::Corruption("tau_min outside (0, 1]");
  }
  uint64_t max_total = 0;
  PTI_RETURN_IF_ERROR(opts.GetU64(&max_total));
  i.options.transform.max_total_length = max_total;
  uint32_t max_short = 0;
  PTI_RETURN_IF_ERROR(opts.GetU32(&max_short));
  if (max_short > static_cast<uint32_t>(
                      std::numeric_limits<int32_t>::max())) {
    return Status::Corruption("short depth limit out of range");
  }
  i.options.max_short_depth = static_cast<int32_t>(max_short);
  uint8_t engine = 0, blocking = 0;
  PTI_RETURN_IF_ERROR(opts.GetU8(&engine));
  PTI_RETURN_IF_ERROR(opts.GetU8(&blocking));
  if (engine > 2 || blocking > 2) {
    return Status::Corruption("unknown enum value in index file");
  }
  i.options.rmq_engine = static_cast<RmqEngineKind>(engine);
  i.options.blocking = static_cast<BlockingMode>(blocking);
  uint64_t cutoff = 0;
  PTI_RETURN_IF_ERROR(opts.GetU64(&cutoff));
  i.options.scan_cutoff = cutoff;
  uint8_t compact = 0;
  PTI_RETURN_IF_ERROR(opts.GetU8(&compact));
  if (compact > 1) return Status::Corruption("bad compact flag");
  i.options.compact = compact != 0;
  PTI_RETURN_IF_ERROR(serde::ExpectSectionEnd(opts, "options"));

  Reader src;
  PTI_RETURN_IF_ERROR(container.Section(serde::kTagSource, &src));
  PTI_RETURN_IF_ERROR(serde::DecodeUncertainString(&src, &i.source));
  PTI_RETURN_IF_ERROR(serde::ExpectSectionEnd(src, "source"));

  if (container.version() >= 3) {
    Reader text_r, maps_r;
    PTI_RETURN_IF_ERROR(container.Section(serde::kTagText, &text_r));
    PTI_RETURN_IF_ERROR(container.Section(serde::kTagMaps, &maps_r));
    PTI_RETURN_IF_ERROR(
        serde::DecodeFactorSetV3(&text_r, &maps_r, i.source, &i.fs));
    PTI_RETURN_IF_ERROR(serde::ExpectSectionEnd(text_r, "text"));
    PTI_RETURN_IF_ERROR(serde::ExpectSectionEnd(maps_r, "maps"));
  } else {
    Reader fact;
    PTI_RETURN_IF_ERROR(container.Section(serde::kTagFactors, &fact));
    PTI_RETURN_IF_ERROR(serde::DecodeFactorSet(&fact, i.source, &i.fs));
    PTI_RETURN_IF_ERROR(serde::ExpectSectionEnd(fact, "factors"));
  }

  std::optional<VecOrView<int32_t>> loaded_sa;
  if (i.options.compact && container.Has(serde::kTagSuffixArray)) {
    Reader sar;
    PTI_RETURN_IF_ERROR(container.Section(serde::kTagSuffixArray, &sar));
    Span<const int32_t> sa;
    if (container.version() >= 3) {
      PTI_RETURN_IF_ERROR(sar.GetSpan(&sa));
    } else {
      std::vector<int32_t> owned;
      PTI_RETURN_IF_ERROR(sar.GetVector(&owned));
      loaded_sa = VecOrView<int32_t>(std::move(owned));
      sa = loaded_sa->span();
    }
    PTI_RETURN_IF_ERROR(serde::ExpectSectionEnd(sar, "suffix array"));
    if (sa.size() != i.fs.text.size()) {
      return Status::Corruption("suffix array length mismatches text");
    }
    // A permutation of [0, N) keeps every downstream array access in
    // bounds; the suffix *order* itself is entrusted to the container
    // checksum, like every other derived-from-inputs invariant.
    std::vector<bool> seen(sa.size(), false);
    for (const int32_t v : sa) {
      if (v < 0 || static_cast<size_t>(v) >= sa.size() || seen[v]) {
        return Status::Corruption("suffix array is not a permutation");
      }
      seen[v] = true;
    }
    if (container.version() >= 3) loaded_sa = VecOrView<int32_t>::View(sa);
    i.sa_from_section = true;
  }

  if (container.version() >= 3 && i.options.compact &&
      container.Has(serde::kTagDerived)) {
    // Zero-copy fast path: the derived sections make every rebuild step
    // unnecessary. The SARR section is mandatory here — its permutation
    // scan above is what licenses the views installed next.
    if (!loaded_sa.has_value()) {
      return Status::Corruption("derived sections without a suffix array");
    }
    if (!container.Has(serde::kTagActive) ||
        !container.Has(serde::kTagFmIndex)) {
      return Status::Corruption("incomplete derived section group");
    }
    i.sa_storage = std::move(*loaded_sa);
    PTI_RETURN_IF_ERROR(i.FinishLoadCompactV3(container));
  } else {
    // Rebuild path (v2 containers and tree mode): the same pipeline as
    // Build, so the thread budget applies here too.
    std::optional<ThreadPool> pool;
    if (ResolveThreadCount(build.threads) > 1) pool.emplace(build.threads);
    PTI_RETURN_IF_ERROR(i.FinishBuild(std::move(loaded_sa),
                                      pool.has_value() ? &*pool : nullptr,
                                      build.timings));
  }
  return index;
}

bool SubstringIndexTestPeer::SaLoadedFromSection(const SubstringIndex& index) {
  return index.impl_->sa_from_section;
}

bool SubstringIndexTestPeer::DerivedLoadedFromSections(
    const SubstringIndex& index) {
  return index.impl_->derived_from_sections;
}

bool SubstringIndexTestPeer::ZeroCopyBacked(const SubstringIndex& index) {
  const auto& i = *index.impl_;
  return i.backing != nullptr && i.fs.pos.is_view() && i.fs.logp.is_view() &&
         i.fs.text.IsZeroCopy() &&
         (!i.options.compact || i.sa_storage.is_view());
}

}  // namespace pti
