#include "core/serde.h"

#include <cmath>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define PTI_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#include <cerrno>
#endif

#include <fstream>
#include <sstream>

namespace pti {
namespace serde {

namespace {
// magic + kind + version + section count.
constexpr size_t kHeaderBytes = 16;
constexpr size_t kChecksumBytes = 8;
// v3 per-section header: u32 tag, u32 reserved zero, u64 length.
constexpr size_t kV3SectionHeaderBytes = 16;
// Far above anything an index writes; bounds hostile section counts before
// the per-section loop allocates anything.
constexpr uint32_t kMaxSections = 64;
// A serialized position is at least a u32 count plus one (u8, double)
// option; used to reject absurd element counts before any loop runs.
constexpr uint64_t kMinPositionBytes = 4 + 9;

size_t PadTo8(size_t n) { return (8 - n % 8) % 8; }
}  // namespace

Blob::Blob(std::string data) : data_(std::move(data)) {}

Blob::Blob(const void* map_base, size_t map_len)
    : map_base_(map_base), map_len_(map_len) {}

Blob::~Blob() {
#ifdef PTI_HAVE_MMAP
  if (map_base_ != nullptr && map_len_ > 0) {
    munmap(const_cast<void*>(map_base_), map_len_);
  }
#endif
}

StatusOr<BlobPtr> MapFile(const std::string& path) {
#ifdef PTI_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open '" + path + "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string cause = std::strerror(errno);
    ::close(fd);
    return Status::IOError("stat '" + path + "': " + cause);
  }
  const size_t len = static_cast<size_t>(st.st_size);
  if (len == 0) {
    ::close(fd);
    // mmap(0) is EINVAL; an empty file is representable as an empty blob
    // (Open will report it as short, not as an I/O failure).
    return std::make_shared<const Blob>(std::string());
  }
  void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) {
    return Status::IOError("mmap '" + path + "': " + std::strerror(errno));
  }
  return std::make_shared<const Blob>(base, len);
#else
  return ReadFileToBlob(path);
#endif
}

StatusOr<BlobPtr> ReadFileToBlob(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("open '" + path + "': " + std::strerror(errno));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  // An empty file legitimately inserts zero characters (failbit on `buf`);
  // only a bad source stream is an I/O failure. Short/empty blobs are the
  // container layer's diagnosis (Corruption), not ours.
  if (in.bad()) {
    return Status::IOError("read '" + path + "': " + std::strerror(errno));
  }
  return std::make_shared<const Blob>(std::move(buf).str());
}

const char* KindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kSubstring:
      return "substring";
    case IndexKind::kListing:
      return "listing";
    case IndexKind::kApprox:
      return "approx";
    case IndexKind::kSpecial:
      return "special";
    case IndexKind::kSharded:
      return "sharded";
  }
  return "unknown";
}

Writer& ContainerWriter::AddSection(uint32_t tag) {
  sections_.emplace_back(tag, Writer(/*aligned=*/version_ >= 3));
  return sections_.back().second;
}

std::string ContainerWriter::Finish() && {
  Writer out;
  out.PutU32(kContainerMagic);
  out.PutU32(static_cast<uint32_t>(kind_));
  out.PutU32(version_);
  out.PutU32(static_cast<uint32_t>(sections_.size()));
  for (auto& [tag, w] : sections_) {
    out.PutU32(tag);
    if (version_ >= 3) {
      // 16-byte section header + tail padding keep every payload at an
      // absolute offset that is a multiple of 8 (the file header is 16
      // bytes), so section-relative alignment is absolute alignment.
      out.PutU32(0);
      out.PutString(w.data());
      out.Align8();
    } else {
      out.PutString(w.data());
    }
  }
  const uint64_t checksum = Fnv1a64(out.data().data(), out.data().size());
  out.PutU64(checksum);
  return std::move(out.Take());
}

Status ContainerReader::Open(std::string_view data, IndexKind expected_kind,
                             ContainerReader* out) {
  Reader r(data);
  if (data.size() < kHeaderBytes + kChecksumBytes) {
    return Status::Corruption("container shorter than header + checksum");
  }
  uint32_t magic = 0, kind = 0, version = 0, count = 0;
  PTI_RETURN_IF_ERROR(r.GetU32(&magic));
  if (magic != kContainerMagic) {
    return Status::Corruption("bad container magic");
  }
  PTI_RETURN_IF_ERROR(r.GetU32(&kind));
  if (kind != static_cast<uint32_t>(expected_kind)) {
    return Status::Corruption("index kind mismatch");
  }
  PTI_RETURN_IF_ERROR(r.GetU32(&version));
  if (version == 0 || version > kContainerVersion) {
    return Status::Corruption("unsupported container version");
  }
  PTI_RETURN_IF_ERROR(r.GetU32(&count));
  if (count > kMaxSections) {
    return Status::Corruption("unreasonable section count");
  }
  ContainerReader cr;
  cr.version_ = version;
  cr.entries_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t tag = 0;
    uint64_t len = 0;
    PTI_RETURN_IF_ERROR(r.GetU32(&tag));
    if (version >= 3) {
      uint32_t reserved = ~uint32_t{0};
      PTI_RETURN_IF_ERROR(r.GetU32(&reserved));
      if (reserved != 0) {
        return Status::Corruption("nonzero reserved bytes in section header");
      }
    }
    PTI_RETURN_IF_ERROR(r.GetU64(&len));
    const uint64_t pad = version >= 3 ? PadTo8(len) : 0;
    if (r.remaining() < kChecksumBytes ||
        len > r.remaining() - kChecksumBytes ||
        len + pad > r.remaining() - kChecksumBytes) {
      return Status::Corruption("section length overruns container");
    }
    for (const Entry& e : cr.entries_) {
      if (e.tag == tag) return Status::Corruption("duplicate section tag");
    }
    if (version >= 3 &&
        static_cast<size_t>(r.cursor() - data.data()) % 8 != 0) {
      return Status::Corruption("v3 section payload misaligned");
    }
    cr.entries_.push_back(Entry{tag, r.cursor(), len});
    PTI_RETURN_IF_ERROR(r.Skip(len + pad));
  }
  if (r.remaining() != kChecksumBytes) {
    return Status::Corruption("trailing bytes in container");
  }
  uint64_t stored = 0;
  PTI_RETURN_IF_ERROR(r.GetU64(&stored));
  const uint64_t actual =
      Fnv1a64(data.data(), data.size() - kChecksumBytes);
  if (stored != actual) {
    return Status::Corruption("container checksum mismatch");
  }
  *out = std::move(cr);
  return Status::OK();
}

Status ContainerReader::Section(uint32_t tag, Reader* out) const {
  for (const Entry& e : entries_) {
    if (e.tag == tag) {
      *out = Reader(e.data, e.size, /*aligned=*/version_ >= 3);
      return Status::OK();
    }
  }
  return Status::Corruption("missing container section");
}

bool ContainerReader::Has(uint32_t tag) const {
  for (const Entry& e : entries_) {
    if (e.tag == tag) return true;
  }
  return false;
}

StatusOr<IndexKind> PeekKind(std::string_view data) {
  Reader r(data);
  uint32_t magic = 0, kind = 0;
  PTI_RETURN_IF_ERROR(r.GetU32(&magic));
  if (magic != kContainerMagic) {
    return Status::Corruption("bad container magic");
  }
  PTI_RETURN_IF_ERROR(r.GetU32(&kind));
  switch (static_cast<IndexKind>(kind)) {
    case IndexKind::kSubstring:
    case IndexKind::kListing:
    case IndexKind::kApprox:
    case IndexKind::kSpecial:
    case IndexKind::kSharded:
      return static_cast<IndexKind>(kind);
  }
  return Status::Corruption("unknown index kind tag");
}

StatusOr<uint32_t> PeekVersion(std::string_view data) {
  Reader r(data);
  uint32_t magic = 0, kind = 0, version = 0;
  PTI_RETURN_IF_ERROR(r.GetU32(&magic));
  if (magic != kContainerMagic) {
    return Status::Corruption("bad container magic");
  }
  PTI_RETURN_IF_ERROR(r.GetU32(&kind));
  PTI_RETURN_IF_ERROR(r.GetU32(&version));
  return version;
}

Status ExpectSectionEnd(const Reader& r, const char* what) {
  if (!r.AtEnd()) {
    return Status::Corruption(std::string("trailing bytes in ") + what +
                              " section");
  }
  return Status::OK();
}

void EncodeUncertainString(const UncertainString& s, Writer* w) {
  w->PutU64(static_cast<uint64_t>(s.size()));
  for (int64_t p = 0; p < s.size(); ++p) {
    const auto& opts = s.options(p);
    w->PutU32(static_cast<uint32_t>(opts.size()));
    for (const auto& o : opts) {
      w->PutU8(o.ch);
      w->PutDouble(o.prob);
    }
  }
  w->PutU64(s.correlations().size());
  for (const auto& r : s.correlations()) {
    w->PutI64(r.pos);
    w->PutU8(r.ch);
    w->PutI64(r.dep_pos);
    w->PutU8(r.dep_ch);
    w->PutDouble(r.prob_if_present);
    w->PutDouble(r.prob_if_absent);
  }
}

Status DecodeUncertainString(Reader* r, UncertainString* out,
                             bool require_unit_sums) {
  *out = UncertainString();
  uint64_t n = 0;
  PTI_RETURN_IF_ERROR(r->GetU64(&n));
  if (n > r->remaining() / kMinPositionBytes) {
    return Status::Corruption("source length overruns section");
  }
  for (uint64_t p = 0; p < n; ++p) {
    uint32_t count = 0;
    PTI_RETURN_IF_ERROR(r->GetU32(&count));
    if (count == 0 || count > 256) {
      return Status::Corruption("bad option count");
    }
    std::vector<CharOption> opts(count);
    for (auto& o : opts) {
      PTI_RETURN_IF_ERROR(r->GetU8(&o.ch));
      PTI_RETURN_IF_ERROR(r->GetDouble(&o.prob));
      // Validate() also rejects NaN now, but only runs when the caller asks
      // for unit sums; hostile bytes must fail here with the precise
      // Corruption message either way.
      if (!std::isfinite(o.prob) || o.prob < 0.0 || o.prob > 1.0) {
        return Status::Corruption("option probability outside [0, 1]");
      }
    }
    out->AddPosition(std::move(opts));
  }
  uint64_t num_rules = 0;
  PTI_RETURN_IF_ERROR(r->GetU64(&num_rules));
  if (num_rules > r->remaining() / 34) {  // 2*i64 + 2*u8 + 2*double bytes
    return Status::Corruption("correlation count overruns section");
  }
  for (uint64_t k = 0; k < num_rules; ++k) {
    CorrelationRule rule;
    PTI_RETURN_IF_ERROR(r->GetI64(&rule.pos));
    PTI_RETURN_IF_ERROR(r->GetU8(&rule.ch));
    PTI_RETURN_IF_ERROR(r->GetI64(&rule.dep_pos));
    PTI_RETURN_IF_ERROR(r->GetU8(&rule.dep_ch));
    PTI_RETURN_IF_ERROR(r->GetDouble(&rule.prob_if_present));
    PTI_RETURN_IF_ERROR(r->GetDouble(&rule.prob_if_absent));
    if (!std::isfinite(rule.prob_if_present) ||
        !std::isfinite(rule.prob_if_absent)) {
      return Status::Corruption("correlation probability not finite");
    }
    const Status st = out->AddCorrelation(rule);
    if (!st.ok()) {
      return Status::Corruption("bad correlation rule: " + st.message());
    }
  }
  if (require_unit_sums) {
    const Status st = out->Validate();
    if (!st.ok()) {
      return Status::Corruption("source string failed validation: " +
                                st.message());
    }
  }
  return Status::OK();
}

void EncodeFactorSet(const FactorSet& fs, Writer* w) {
  w->PutSpan(fs.text.chars());
  w->PutSpan(fs.text.member_starts());
  w->PutSpan(fs.pos.span());
  w->PutSpan(fs.logp.span());
  w->PutSpan(fs.corr_positions.span());
  w->PutI64(fs.original_length);
  w->PutDouble(fs.tau_min);
}

Status ValidateFactorSet(const FactorSet& fs, const UncertainString& source) {
  const size_t n = fs.text.size();
  if (fs.pos.size() != n || fs.logp.size() != n) {
    return Status::Corruption("factor arrays inconsistent with text");
  }
  if (fs.original_length != source.size()) {
    return Status::Corruption("factor original length mismatches source");
  }
  if (!std::isfinite(fs.tau_min) || !(fs.tau_min > 0.0) || fs.tau_min > 1.0) {
    return Status::Corruption("factor tau_min outside (0, 1]");
  }
  for (size_t q = 0; q < n; ++q) {
    if (fs.text.IsSentinel(q)) {
      if (fs.pos[q] != -1 || fs.logp[q] != 0.0) {
        return Status::Corruption("sentinel position carries factor data");
      }
      continue;
    }
    if (fs.pos[q] < 0 || fs.pos[q] >= fs.original_length) {
      return Status::Corruption("factor position out of range");
    }
    // Window probabilities are prefix-sum differences of logp, and the
    // correlation adjustment assumes text offsets and S offsets advance
    // together inside a factor.
    if (q + 1 < n && !fs.text.IsSentinel(q + 1) &&
        fs.pos[q + 1] != fs.pos[q] + 1) {
      return Status::Corruption("factor positions not contiguous");
    }
    if (std::isnan(fs.logp[q]) || fs.logp[q] > 0.0) {
      return Status::Corruption("factor log-probability above 0");
    }
  }
  // corr_positions must be strictly increasing, point at real characters,
  // and resolve to a rule of the source string — query-time evaluation
  // looks each one up unconditionally, so a dangling entry would otherwise
  // throw out of rules.at().
  for (size_t k = 0; k < fs.corr_positions.size(); ++k) {
    const int64_t z = fs.corr_positions[k];
    if (z < 0 || z >= static_cast<int64_t>(n) || fs.text.IsSentinel(z)) {
      return Status::Corruption("correlated text position out of range");
    }
    if (k > 0 && fs.corr_positions[k - 1] >= z) {
      return Status::Corruption("correlated text positions not sorted");
    }
    const uint8_t ch = static_cast<uint8_t>(fs.text.chars()[z]);
    if (source.FindRule(fs.pos[z], ch) == nullptr) {
      return Status::Corruption(
          "correlated text position has no matching rule");
    }
  }
  return Status::OK();
}

Status DecodeFactorSet(Reader* r, const UncertainString& source,
                       FactorSet* out) {
  *out = FactorSet();
  std::vector<int32_t> chars;
  std::vector<int64_t> starts;
  PTI_RETURN_IF_ERROR(r->GetVector(&chars));
  PTI_RETURN_IF_ERROR(r->GetVector(&starts));
  PTI_ASSIGN_OR_RETURN(out->text,
                       Text::FromRaw(std::move(chars), std::move(starts)));
  std::vector<int64_t> pos;
  std::vector<double> logp;
  std::vector<int64_t> corr;
  PTI_RETURN_IF_ERROR(r->GetVector(&pos));
  PTI_RETURN_IF_ERROR(r->GetVector(&logp));
  PTI_RETURN_IF_ERROR(r->GetVector(&corr));
  out->pos = VecOrView<int64_t>(std::move(pos));
  out->logp = VecOrView<double>(std::move(logp));
  out->corr_positions = VecOrView<int64_t>(std::move(corr));
  PTI_RETURN_IF_ERROR(r->GetI64(&out->original_length));
  PTI_RETURN_IF_ERROR(r->GetDouble(&out->tau_min));
  return ValidateFactorSet(*out, source);
}

void EncodeFactorSetV3(const FactorSet& fs, Writer* text_w, Writer* maps_w) {
  text_w->PutSpan(fs.text.chars());
  text_w->PutSpan(fs.text.member_starts());
  maps_w->PutSpan(fs.pos.span());
  maps_w->PutSpan(fs.logp.span());
  maps_w->PutSpan(fs.corr_positions.span());
  maps_w->PutI64(fs.original_length);
  maps_w->PutDouble(fs.tau_min);
}

Status DecodeFactorSetV3(Reader* text_r, Reader* maps_r,
                         const UncertainString& source, FactorSet* out) {
  *out = FactorSet();
  Span<const int32_t> chars;
  Span<const int64_t> starts;
  PTI_RETURN_IF_ERROR(text_r->GetSpan(&chars));
  PTI_RETURN_IF_ERROR(text_r->GetSpan(&starts));
  PTI_ASSIGN_OR_RETURN(out->text, Text::FromViews(chars, starts));
  Span<const int64_t> pos;
  Span<const double> logp;
  Span<const int64_t> corr;
  PTI_RETURN_IF_ERROR(maps_r->GetSpan(&pos));
  PTI_RETURN_IF_ERROR(maps_r->GetSpan(&logp));
  PTI_RETURN_IF_ERROR(maps_r->GetSpan(&corr));
  out->pos = VecOrView<int64_t>::View(pos);
  out->logp = VecOrView<double>::View(logp);
  out->corr_positions = VecOrView<int64_t>::View(corr);
  PTI_RETURN_IF_ERROR(maps_r->GetI64(&out->original_length));
  PTI_RETURN_IF_ERROR(maps_r->GetDouble(&out->tau_min));
  return ValidateFactorSet(*out, source);
}

}  // namespace serde
}  // namespace pti
