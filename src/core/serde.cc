#include "core/serde.h"

#include <cmath>

namespace pti {
namespace serde {

namespace {
// magic + kind + version + section count.
constexpr size_t kHeaderBytes = 16;
constexpr size_t kChecksumBytes = 8;
// Far above anything an index writes; bounds hostile section counts before
// the per-section loop allocates anything.
constexpr uint32_t kMaxSections = 64;
// A serialized position is at least a u32 count plus one (u8, double)
// option; used to reject absurd element counts before any loop runs.
constexpr uint64_t kMinPositionBytes = 4 + 9;
}  // namespace

const char* KindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kSubstring:
      return "substring";
    case IndexKind::kListing:
      return "listing";
    case IndexKind::kApprox:
      return "approx";
    case IndexKind::kSpecial:
      return "special";
    case IndexKind::kSharded:
      return "sharded";
  }
  return "unknown";
}

Writer& ContainerWriter::AddSection(uint32_t tag) {
  sections_.emplace_back(tag, Writer());
  return sections_.back().second;
}

std::string ContainerWriter::Finish() && {
  Writer out;
  out.PutU32(kContainerMagic);
  out.PutU32(static_cast<uint32_t>(kind_));
  out.PutU32(kContainerVersion);
  out.PutU32(static_cast<uint32_t>(sections_.size()));
  for (auto& [tag, w] : sections_) {
    out.PutU32(tag);
    out.PutString(w.data());
  }
  const uint64_t checksum = Fnv1a64(out.data().data(), out.data().size());
  out.PutU64(checksum);
  return std::move(out.Take());
}

Status ContainerReader::Open(const std::string& data, IndexKind expected_kind,
                             ContainerReader* out) {
  Reader r(data);
  if (data.size() < kHeaderBytes + kChecksumBytes) {
    return Status::Corruption("container shorter than header + checksum");
  }
  uint32_t magic = 0, kind = 0, version = 0, count = 0;
  PTI_RETURN_IF_ERROR(r.GetU32(&magic));
  if (magic != kContainerMagic) {
    return Status::Corruption("bad container magic");
  }
  PTI_RETURN_IF_ERROR(r.GetU32(&kind));
  if (kind != static_cast<uint32_t>(expected_kind)) {
    return Status::Corruption("index kind mismatch");
  }
  PTI_RETURN_IF_ERROR(r.GetU32(&version));
  if (version == 0 || version > kContainerVersion) {
    return Status::Corruption("unsupported container version");
  }
  PTI_RETURN_IF_ERROR(r.GetU32(&count));
  if (count > kMaxSections) {
    return Status::Corruption("unreasonable section count");
  }
  ContainerReader cr;
  cr.version_ = version;
  cr.entries_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t tag = 0;
    uint64_t len = 0;
    PTI_RETURN_IF_ERROR(r.GetU32(&tag));
    PTI_RETURN_IF_ERROR(r.GetU64(&len));
    if (r.remaining() < kChecksumBytes ||
        len > r.remaining() - kChecksumBytes) {
      return Status::Corruption("section length overruns container");
    }
    for (const Entry& e : cr.entries_) {
      if (e.tag == tag) return Status::Corruption("duplicate section tag");
    }
    cr.entries_.push_back(Entry{tag, r.cursor(), len});
    PTI_RETURN_IF_ERROR(r.Skip(len));
  }
  if (r.remaining() != kChecksumBytes) {
    return Status::Corruption("trailing bytes in container");
  }
  uint64_t stored = 0;
  PTI_RETURN_IF_ERROR(r.GetU64(&stored));
  const uint64_t actual =
      Fnv1a64(data.data(), data.size() - kChecksumBytes);
  if (stored != actual) {
    return Status::Corruption("container checksum mismatch");
  }
  *out = std::move(cr);
  return Status::OK();
}

Status ContainerReader::Section(uint32_t tag, Reader* out) const {
  for (const Entry& e : entries_) {
    if (e.tag == tag) {
      *out = Reader(e.data, e.size);
      return Status::OK();
    }
  }
  return Status::Corruption("missing container section");
}

bool ContainerReader::Has(uint32_t tag) const {
  for (const Entry& e : entries_) {
    if (e.tag == tag) return true;
  }
  return false;
}

StatusOr<IndexKind> PeekKind(const std::string& data) {
  Reader r(data);
  uint32_t magic = 0, kind = 0;
  PTI_RETURN_IF_ERROR(r.GetU32(&magic));
  if (magic != kContainerMagic) {
    return Status::Corruption("bad container magic");
  }
  PTI_RETURN_IF_ERROR(r.GetU32(&kind));
  switch (static_cast<IndexKind>(kind)) {
    case IndexKind::kSubstring:
    case IndexKind::kListing:
    case IndexKind::kApprox:
    case IndexKind::kSpecial:
    case IndexKind::kSharded:
      return static_cast<IndexKind>(kind);
  }
  return Status::Corruption("unknown index kind tag");
}

Status ExpectSectionEnd(const Reader& r, const char* what) {
  if (!r.AtEnd()) {
    return Status::Corruption(std::string("trailing bytes in ") + what +
                              " section");
  }
  return Status::OK();
}

void EncodeUncertainString(const UncertainString& s, Writer* w) {
  w->PutU64(static_cast<uint64_t>(s.size()));
  for (int64_t p = 0; p < s.size(); ++p) {
    const auto& opts = s.options(p);
    w->PutU32(static_cast<uint32_t>(opts.size()));
    for (const auto& o : opts) {
      w->PutU8(o.ch);
      w->PutDouble(o.prob);
    }
  }
  w->PutU64(s.correlations().size());
  for (const auto& r : s.correlations()) {
    w->PutI64(r.pos);
    w->PutU8(r.ch);
    w->PutI64(r.dep_pos);
    w->PutU8(r.dep_ch);
    w->PutDouble(r.prob_if_present);
    w->PutDouble(r.prob_if_absent);
  }
}

Status DecodeUncertainString(Reader* r, UncertainString* out,
                             bool require_unit_sums) {
  *out = UncertainString();
  uint64_t n = 0;
  PTI_RETURN_IF_ERROR(r->GetU64(&n));
  if (n > r->remaining() / kMinPositionBytes) {
    return Status::Corruption("source length overruns section");
  }
  for (uint64_t p = 0; p < n; ++p) {
    uint32_t count = 0;
    PTI_RETURN_IF_ERROR(r->GetU32(&count));
    if (count == 0 || count > 256) {
      return Status::Corruption("bad option count");
    }
    std::vector<CharOption> opts(count);
    for (auto& o : opts) {
      PTI_RETURN_IF_ERROR(r->GetU8(&o.ch));
      PTI_RETURN_IF_ERROR(r->GetDouble(&o.prob));
      // Validate() cannot catch NaN (every comparison with NaN is false).
      if (!std::isfinite(o.prob) || o.prob < 0.0 || o.prob > 1.0) {
        return Status::Corruption("option probability outside [0, 1]");
      }
    }
    out->AddPosition(std::move(opts));
  }
  uint64_t num_rules = 0;
  PTI_RETURN_IF_ERROR(r->GetU64(&num_rules));
  if (num_rules > r->remaining() / 34) {  // 2*i64 + 2*u8 + 2*double bytes
    return Status::Corruption("correlation count overruns section");
  }
  for (uint64_t k = 0; k < num_rules; ++k) {
    CorrelationRule rule;
    PTI_RETURN_IF_ERROR(r->GetI64(&rule.pos));
    PTI_RETURN_IF_ERROR(r->GetU8(&rule.ch));
    PTI_RETURN_IF_ERROR(r->GetI64(&rule.dep_pos));
    PTI_RETURN_IF_ERROR(r->GetU8(&rule.dep_ch));
    PTI_RETURN_IF_ERROR(r->GetDouble(&rule.prob_if_present));
    PTI_RETURN_IF_ERROR(r->GetDouble(&rule.prob_if_absent));
    if (!std::isfinite(rule.prob_if_present) ||
        !std::isfinite(rule.prob_if_absent)) {
      return Status::Corruption("correlation probability not finite");
    }
    const Status st = out->AddCorrelation(rule);
    if (!st.ok()) {
      return Status::Corruption("bad correlation rule: " + st.message());
    }
  }
  if (require_unit_sums) {
    const Status st = out->Validate();
    if (!st.ok()) {
      return Status::Corruption("source string failed validation: " +
                                st.message());
    }
  }
  return Status::OK();
}

void EncodeFactorSet(const FactorSet& fs, Writer* w) {
  w->PutVector(fs.text.chars());
  w->PutVector(fs.text.member_starts());
  w->PutVector(fs.pos);
  w->PutVector(fs.logp);
  w->PutVector(fs.corr_positions);
  w->PutI64(fs.original_length);
  w->PutDouble(fs.tau_min);
}

Status DecodeFactorSet(Reader* r, const UncertainString& source,
                       FactorSet* out) {
  *out = FactorSet();
  std::vector<int32_t> chars;
  std::vector<int64_t> starts;
  PTI_RETURN_IF_ERROR(r->GetVector(&chars));
  PTI_RETURN_IF_ERROR(r->GetVector(&starts));
  auto text = Text::FromRaw(std::move(chars), std::move(starts));
  if (!text.ok()) return text.status();
  out->text = std::move(text).value();
  PTI_RETURN_IF_ERROR(r->GetVector(&out->pos));
  PTI_RETURN_IF_ERROR(r->GetVector(&out->logp));
  PTI_RETURN_IF_ERROR(r->GetVector(&out->corr_positions));
  PTI_RETURN_IF_ERROR(r->GetI64(&out->original_length));
  PTI_RETURN_IF_ERROR(r->GetDouble(&out->tau_min));

  const size_t n = out->text.size();
  if (out->pos.size() != n || out->logp.size() != n) {
    return Status::Corruption("factor arrays inconsistent with text");
  }
  if (out->original_length != source.size()) {
    return Status::Corruption("factor original length mismatches source");
  }
  if (!std::isfinite(out->tau_min) || !(out->tau_min > 0.0) ||
      out->tau_min > 1.0) {
    return Status::Corruption("factor tau_min outside (0, 1]");
  }
  for (size_t q = 0; q < n; ++q) {
    if (out->text.IsSentinel(q)) {
      if (out->pos[q] != -1 || out->logp[q] != 0.0) {
        return Status::Corruption("sentinel position carries factor data");
      }
      continue;
    }
    if (out->pos[q] < 0 || out->pos[q] >= out->original_length) {
      return Status::Corruption("factor position out of range");
    }
    // Window probabilities are prefix-sum differences of logp, and the
    // correlation adjustment assumes text offsets and S offsets advance
    // together inside a factor.
    if (q + 1 < n && !out->text.IsSentinel(q + 1) &&
        out->pos[q + 1] != out->pos[q] + 1) {
      return Status::Corruption("factor positions not contiguous");
    }
    if (std::isnan(out->logp[q]) || out->logp[q] > 0.0) {
      return Status::Corruption("factor log-probability above 0");
    }
  }
  // corr_positions must be strictly increasing, point at real characters,
  // and resolve to a rule of the source string — query-time evaluation
  // looks each one up unconditionally, so a dangling entry would otherwise
  // throw out of rules.at().
  for (size_t k = 0; k < out->corr_positions.size(); ++k) {
    const int64_t z = out->corr_positions[k];
    if (z < 0 || z >= static_cast<int64_t>(n) || out->text.IsSentinel(z)) {
      return Status::Corruption("correlated text position out of range");
    }
    if (k > 0 && out->corr_positions[k - 1] >= z) {
      return Status::Corruption("correlated text positions not sorted");
    }
    const uint8_t ch = static_cast<uint8_t>(out->text.chars()[z]);
    if (source.FindRule(out->pos[z], ch) == nullptr) {
      return Status::Corruption(
          "correlated text position has no matching rule");
    }
  }
  return Status::OK();
}

}  // namespace serde
}  // namespace pti
