// Shared query-result types.

#ifndef PTI_CORE_MATCH_H_
#define PTI_CORE_MATCH_H_

#include <cstdint>

namespace pti {

/// One substring-search hit: 0-based position in the uncertain string and the
/// (correlation-resolved) probability of occurrence there.
struct Match {
  int64_t position = 0;
  double probability = 0.0;

  friend bool operator==(const Match& a, const Match& b) {
    return a.position == b.position && a.probability == b.probability;
  }
};

/// One string-listing hit: document index and its relevance value.
struct DocMatch {
  int32_t doc = 0;
  double relevance = 0.0;

  friend bool operator==(const DocMatch& a, const DocMatch& b) {
    return a.doc == b.doc && a.relevance == b.relevance;
  }
};

/// Shared threshold test for relevance values (linear space, tiny slack so
/// the indexes and the brute-force oracles agree bit-for-bit despite
/// different summation orders).
inline bool RelevanceMeets(double rel, double tau) {
  return rel >= tau - 1e-9;
}

/// §6 relevance metrics.
enum class RelevanceMetric {
  /// Maximum occurrence probability (supported in optimal time).
  kMax = 0,
  /// The paper's OR formula: sum(p_j) - prod(p_j), exactly as defined in §6.
  /// Note for >2 occurrences this is not a probability (it may exceed 1);
  /// we implement it verbatim for fidelity.
  kPaperOr = 1,
  /// Proper noisy-OR: 1 - prod(1 - p_j) — probability of at least one
  /// occurrence under independence; provided as a sound alternative.
  kNoisyOr = 2,
};

}  // namespace pti

#endif  // PTI_CORE_MATCH_H_
