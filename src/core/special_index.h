// SpecialIndex: substring searching over special uncertain strings (§4).
//
// A special uncertain string has exactly one probabilistic character per
// position, so the deterministic text t is just its character sequence and
// every alignment is unique — no factor transformation, no duplicate
// elimination, and no construction-time tau_min: queries accept any tau in
// (0, 1].
//
// Two operating modes reproduce the paper's §4 narrative:
//   * use_rmq = false — the "simple index" (§4.1): locus lookup, then a scan
//     of the whole suffix range validating each entry against C.
//   * use_rmq = true  — the "efficient index" (§4.2): per-depth RMQ
//     structures for m <= K (Algorithms 1-2) and the blocking scheme for
//     longer patterns; O(m + occ) for short patterns.
//
// Correlated characters are supported as described in §4.1 ("Handling
// Correlation"): validation adjusts the prefix-product value by swapping the
// stored probability for the case-1/case-2 resolved one.

#ifndef PTI_CORE_SPECIAL_INDEX_H_
#define PTI_CORE_SPECIAL_INDEX_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/match.h"
#include "core/uncertain_string.h"
#include "rmq/rmq_handle.h"
#include "util/status.h"

namespace pti {

struct SpecialIndexOptions {
  /// Depth limit K for the per-depth RMQ forest; 0 means ceil(log2(n)).
  int32_t max_short_depth = 0;
  RmqEngineKind rmq_engine = RmqEngineKind::kBlock;
  /// false reproduces the §4.1 simple index (always scan the range).
  bool use_rmq = true;
  /// Levels at K, 2K, 4K, ... for long patterns (as in SubstringIndex).
  bool build_long_levels = true;
  /// Locus ranges no larger than this are scanned directly.
  size_t scan_cutoff = 64;
};

class SpecialIndex {
 public:
  SpecialIndex();
  ~SpecialIndex();
  SpecialIndex(SpecialIndex&&) noexcept;
  SpecialIndex& operator=(SpecialIndex&&) noexcept;

  /// Builds over a special uncertain string (every position must hold
  /// exactly one option with probability in (0, 1]). Correlation rules on
  /// `s` are honored.
  static StatusOr<SpecialIndex> Build(const UncertainString& s,
                                      const SpecialIndexOptions& options = {});

  /// All positions with occurrence probability >= tau, sorted by position.
  Status Query(const std::string& pattern, double tau,
               std::vector<Match>* out) const;

  struct Stats {
    int64_t length = 0;
    int32_t short_depth_limit = 0;
    size_t num_tree_nodes = 0;
  };
  Stats stats() const;
  size_t MemoryUsage() const;

  /// Serializes the source string and options into the shared container
  /// format (core/serde.h); Load revalidates the inputs and rebuilds the
  /// derived structures (suffix tree, RMQ forest) deterministically.
  Status Save(std::string* out) const;
  /// Same, at an explicit container version (serde::kInterchangeVersion or
  /// serde::kContainerVersion); the payload encoding is identical, only the
  /// framing (alignment, padding) differs.
  Status Save(std::string* out, uint32_t version) const;
  static StatusOr<SpecialIndex> Load(std::string_view data);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pti

#endif  // PTI_CORE_SPECIAL_INDEX_H_
