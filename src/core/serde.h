// serde: the shared versioned container format for index persistence.
//
// Every persisted index (`.pti` file) is one container:
//
//   u32  container magic ("PTIC")
//   u32  index kind tag  ("SUBS" / "LIST" / "APRX" / "SPCL")
//   u32  container version
//   u32  section count
//   v2:  per section: u32 tag, u64 payload length, payload bytes
//   v3:  per section: u32 tag, u32 zero, u64 payload length, payload bytes,
//        zero padding to the next multiple of 8 bytes
//   u64  FNV-1a checksum of every preceding byte
//
// Version 3 is the zero-copy layout: the 16-byte file header plus 16-byte
// section headers plus tail padding keep every section payload at an
// absolute offset that is a multiple of 8, and payloads are written by
// aligned Writers (util/serial.h), so large fixed-width arrays (spliced
// text, per-position maps, suffix arrays, rank directories) can be *pointed
// into* — including inside an mmap'd file — rather than decoded. Version 2
// remains the interchange/fallback format and still round-trips.
//
// The framing is validated before any section payload is decoded: magic,
// kind, version, every section length against the remaining buffer, and the
// trailing checksum. Readers within a section are bounds-limited to that
// section's payload, so a corrupt length in one section can never leak reads
// into another. See docs/FORMAT.md for the full layout and the
// compatibility policy.
//
// This header also hosts the shared model encoders (UncertainString,
// FactorSet) used by all four index Save/Load implementations, so there is
// exactly one decoder to harden. Decoders validate everything — option
// counts, probability ranges, position bounds, sentinel structure, and that
// every recorded correlated position resolves to a real rule — and return
// Status::Corruption rather than crash or over-read on hostile input.

#ifndef PTI_CORE_SERDE_H_
#define PTI_CORE_SERDE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/factor_transform.h"
#include "core/uncertain_string.h"
#include "util/serial.h"
#include "util/status.h"

namespace pti {
namespace serde {

/// First four bytes of every persisted index ("PTIC" in a hex dump).
constexpr uint32_t kContainerMagic = 0x43495450;
/// The version this build writes by default, and the highest it reads.
/// Version 2 added the optional suffix-array section ("SARR"); version 3 is
/// the aligned zero-copy layout (and, for compact substring containers, the
/// persisted derived sections DERV/ACTV/FMIX/RMQB). Writers can be pinned
/// to kInterchangeVersion for v2 output; version-1 and version-2 files
/// still load.
constexpr uint32_t kContainerVersion = 3;
/// The portable fallback format (pre-alignment, fully decoded on load).
constexpr uint32_t kInterchangeVersion = 2;

/// Index kind tags (second u32 of the header; four ASCII bytes each).
enum class IndexKind : uint32_t {
  kSubstring = 0x53425553,  // "SUBS"
  kListing = 0x5453494C,    // "LIST"
  kApprox = 0x58525041,     // "APRX"
  kSpecial = 0x4C435053,    // "SPCL"
  kSharded = 0x44524853,    // "SHRD" (engine/sharded_index.h)
};

/// Human-readable kind name for CLI output ("substring", ...).
const char* KindName(IndexKind kind);

/// Section tags shared across index kinds (four ASCII bytes each).
constexpr uint32_t kTagOptions = 0x5354504F;  // "OPTS": build options
constexpr uint32_t kTagSource = 0x53435253;   // "SRCS": source string(s)
constexpr uint32_t kTagFactors = 0x54434146;  // "FACT": factor set (v2)
constexpr uint32_t kTagText = 0x54584554;     // "TEXT": spliced text
constexpr uint32_t kTagMaps = 0x5350414D;     // "MAPS": per-position arrays
constexpr uint32_t kTagShardManifest = 0x4E414D53;  // "SMAN": shard layout
constexpr uint32_t kTagShardBlobs = 0x424C4253;     // "SBLB": shard containers
constexpr uint32_t kTagSuffixArray = 0x52524153;    // "SARR": persisted SA
// v3 derived-structure sections (compact substring containers).
constexpr uint32_t kTagDerived = 0x56524544;   // "DERV": prefix sums et al.
constexpr uint32_t kTagActive = 0x56544341;    // "ACTV": §5.2 active bitsets
constexpr uint32_t kTagFmIndex = 0x58494D46;   // "FMIX": FM-index + wavelet
constexpr uint32_t kTagRmqBlocks = 0x42514D52;  // "RMQB": RMQ forest blocks

/// Owns the bytes behind a loaded index: either an ordinary heap buffer or
/// an mmap'd read-only file (unmapped on destruction). Indexes loaded from
/// a v3 container hold a shared_ptr to their Blob, so the views they took
/// can never dangle — the mapping lives exactly as long as the last index
/// (or in-flight query batch) using it.
class Blob {
 public:
  /// Takes ownership of heap bytes.
  explicit Blob(std::string data);
  /// Adopts an mmap'd region (internal; use MapFile).
  Blob(const void* map_base, size_t map_len);
  ~Blob();
  Blob(const Blob&) = delete;
  Blob& operator=(const Blob&) = delete;

  std::string_view view() const {
    return map_base_ != nullptr
               ? std::string_view(static_cast<const char*>(map_base_),
                                  map_len_)
               : std::string_view(data_);
  }
  bool mapped() const { return map_base_ != nullptr; }

 private:
  std::string data_;
  const void* map_base_ = nullptr;
  size_t map_len_ = 0;
};

using BlobPtr = std::shared_ptr<const Blob>;

/// mmaps `path` read-only (page cache shared across processes; nothing is
/// decoded). IOError with the errno cause on open/stat/map failure.
StatusOr<BlobPtr> MapFile(const std::string& path);

/// Reads `path` into an owned heap blob. IOError with the errno cause.
StatusOr<BlobPtr> ReadFileToBlob(const std::string& path);

/// Accumulates tagged sections, then assembles the framed container.
/// Sections of a version >= 3 container get aligned Writers (their
/// length-prefixed arrays pad to 8 bytes; see util/serial.h).
class ContainerWriter {
 public:
  explicit ContainerWriter(IndexKind kind,
                           uint32_t version = kContainerVersion)
      : kind_(kind), version_(version) {}

  uint32_t version() const { return version_; }

  /// Starts a new section; bytes written to the returned Writer become the
  /// section payload. Tags must be unique within one container. The
  /// reference stays valid across later AddSection calls (deque storage),
  /// so interleaved writes to earlier sections are safe.
  Writer& AddSection(uint32_t tag);

  /// Header + section table + payloads + checksum. Consumes the writer.
  std::string Finish() &&;

 private:
  IndexKind kind_;
  uint32_t version_;
  std::deque<std::pair<uint32_t, Writer>> sections_;
};

/// Parses and fully validates container framing before handing out
/// bounds-limited per-section readers. Holds pointers into the source
/// buffer, which must outlive the reader — and outlive any Span a section
/// Reader handed out (v3 zero-copy loads pin the backing Blob for exactly
/// this reason).
class ContainerReader {
 public:
  /// Validates magic, kind, version, section lengths, v3 payload alignment
  /// and the checksum.
  static Status Open(std::string_view data, IndexKind expected_kind,
                     ContainerReader* out);

  uint32_t version() const { return version_; }

  /// Reader over the payload of a mandatory section; Corruption if absent.
  /// For v3 containers the Reader is in aligned mode (GetSpan works).
  Status Section(uint32_t tag, Reader* out) const;

  bool Has(uint32_t tag) const;

 private:
  struct Entry {
    uint32_t tag = 0;
    const char* data = nullptr;
    uint64_t size = 0;
  };
  uint32_t version_ = 0;
  std::vector<Entry> entries_;
};

/// Index kind of a serialized blob without decoding it (CLI dispatch).
/// Fails on short buffers, bad magic, or an unknown kind tag.
StatusOr<IndexKind> PeekKind(std::string_view data);

/// Container version of a serialized blob without decoding it.
StatusOr<uint32_t> PeekVersion(std::string_view data);

// ---- Shared model encoders ----

/// Positions (option count, then char/prob pairs) followed by correlation
/// rules.
void EncodeUncertainString(const UncertainString& s, Writer* w);

/// Inverse of EncodeUncertainString. Validates option counts, probability
/// ranges (finite, in [0, 1]) and rule bounds; with `require_unit_sums` it
/// additionally enforces the full §3 model invariants
/// (UncertainString::Validate). Special uncertain strings (§4) pass false:
/// their single option deliberately keeps mass below 1 (the "no occurrence"
/// event), and SpecialIndex::Build re-checks that form itself.
Status DecodeUncertainString(Reader* r, UncertainString* out,
                             bool require_unit_sums = true);

/// Text (chars + member starts), pos/logp maps, correlated positions,
/// original length, tau_min — the v2 "FACT" section.
void EncodeFactorSet(const FactorSet& fs, Writer* w);

/// Inverse of EncodeFactorSet, cross-checked against the already-decoded
/// `source` string: array sizes match the text, pos[] entries are sentinel
/// -1 / in-range and contiguous within each factor, logp values are valid
/// log-probabilities, original_length equals source.size(), tau_min is in
/// (0, 1], and every corr_positions entry is sorted, non-sentinel and
/// resolves to a correlation rule of `source` (a dangling entry would throw
/// at query time).
Status DecodeFactorSet(Reader* r, const UncertainString& source,
                       FactorSet* out);

/// v3 split encoding: the text arrays into a "TEXT" section writer and the
/// per-position maps + scalars into a "MAPS" section writer.
void EncodeFactorSetV3(const FactorSet& fs, Writer* text_w, Writer* maps_w);

/// Zero-copy inverse of EncodeFactorSetV3: every array in `out` is a view
/// into the section buffers (which the caller must keep alive via the
/// backing Blob). Runs the same validation sweep as DecodeFactorSet — the
/// scans read the arrays in place but allocate and copy nothing.
Status DecodeFactorSetV3(Reader* text_r, Reader* maps_r,
                         const UncertainString& source, FactorSet* out);

/// The validation sweep shared by both decoders (exposed for tests).
Status ValidateFactorSet(const FactorSet& fs, const UncertainString& source);

/// Shared guard for section decoders: every section must be consumed
/// exactly.
Status ExpectSectionEnd(const Reader& r, const char* what);

}  // namespace serde
}  // namespace pti

#endif  // PTI_CORE_SERDE_H_
