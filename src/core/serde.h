// serde: the shared versioned container format for index persistence.
//
// Every persisted index (`.pti` file) is one container:
//
//   u32  container magic ("PTIC")
//   u32  index kind tag  ("SUBS" / "LIST" / "APRX" / "SPCL")
//   u32  container version
//   u32  section count
//   per section: u32 tag, u64 payload length, payload bytes
//   u64  FNV-1a checksum of every preceding byte
//
// The framing is validated before any section payload is decoded: magic,
// kind, version, every section length against the remaining buffer, and the
// trailing checksum. Readers within a section are bounds-limited to that
// section's payload, so a corrupt length in one section can never leak reads
// into another. See docs/FORMAT.md for the full layout and the
// compatibility policy.
//
// This header also hosts the shared model encoders (UncertainString,
// FactorSet) used by all four index Save/Load implementations, so there is
// exactly one decoder to harden. Decoders validate everything — option
// counts, probability ranges, position bounds, sentinel structure, and that
// every recorded correlated position resolves to a real rule — and return
// Status::Corruption rather than crash or over-read on hostile input.

#ifndef PTI_CORE_SERDE_H_
#define PTI_CORE_SERDE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "core/factor_transform.h"
#include "core/uncertain_string.h"
#include "util/serial.h"
#include "util/status.h"

namespace pti {
namespace serde {

/// First four bytes of every persisted index ("PTIC" in a hex dump).
constexpr uint32_t kContainerMagic = 0x43495450;
/// The version this build writes, and the highest it reads. Version 2
/// added the optional suffix-array section ("SARR") to compact-mode
/// substring containers; version-1 files still load (the section is simply
/// absent and Load re-derives the suffix array).
constexpr uint32_t kContainerVersion = 2;

/// Index kind tags (second u32 of the header; four ASCII bytes each).
enum class IndexKind : uint32_t {
  kSubstring = 0x53425553,  // "SUBS"
  kListing = 0x5453494C,    // "LIST"
  kApprox = 0x58525041,     // "APRX"
  kSpecial = 0x4C435053,    // "SPCL"
  kSharded = 0x44524853,    // "SHRD" (engine/sharded_index.h)
};

/// Human-readable kind name for CLI output ("substring", ...).
const char* KindName(IndexKind kind);

/// Section tags shared across index kinds (four ASCII bytes each).
constexpr uint32_t kTagOptions = 0x5354504F;  // "OPTS": build options
constexpr uint32_t kTagSource = 0x53435253;   // "SRCS": source string(s)
constexpr uint32_t kTagFactors = 0x54434146;  // "FACT": factor set
constexpr uint32_t kTagText = 0x54584554;     // "TEXT": spliced text
constexpr uint32_t kTagMaps = 0x5350414D;     // "MAPS": per-position arrays
constexpr uint32_t kTagShardManifest = 0x4E414D53;  // "SMAN": shard layout
constexpr uint32_t kTagShardBlobs = 0x424C4253;     // "SBLB": shard containers
constexpr uint32_t kTagSuffixArray = 0x52524153;    // "SARR": persisted SA

/// Accumulates tagged sections, then assembles the framed container.
class ContainerWriter {
 public:
  explicit ContainerWriter(IndexKind kind) : kind_(kind) {}

  /// Starts a new section; bytes written to the returned Writer become the
  /// section payload. Tags must be unique within one container. The
  /// reference stays valid across later AddSection calls (deque storage),
  /// so interleaved writes to earlier sections are safe.
  Writer& AddSection(uint32_t tag);

  /// Header + section table + payloads + checksum. Consumes the writer.
  std::string Finish() &&;

 private:
  IndexKind kind_;
  std::deque<std::pair<uint32_t, Writer>> sections_;
};

/// Parses and fully validates container framing before handing out
/// bounds-limited per-section readers. Holds pointers into the source
/// buffer, which must outlive the reader.
class ContainerReader {
 public:
  /// Validates magic, kind, version, section lengths and the checksum.
  static Status Open(const std::string& data, IndexKind expected_kind,
                     ContainerReader* out);

  uint32_t version() const { return version_; }

  /// Reader over the payload of a mandatory section; Corruption if absent.
  Status Section(uint32_t tag, Reader* out) const;

  bool Has(uint32_t tag) const;

 private:
  struct Entry {
    uint32_t tag = 0;
    const char* data = nullptr;
    uint64_t size = 0;
  };
  uint32_t version_ = 0;
  std::vector<Entry> entries_;
};

/// Index kind of a serialized blob without decoding it (CLI dispatch).
/// Fails on short buffers, bad magic, or an unknown kind tag.
StatusOr<IndexKind> PeekKind(const std::string& data);

// ---- Shared model encoders ----

/// Positions (option count, then char/prob pairs) followed by correlation
/// rules.
void EncodeUncertainString(const UncertainString& s, Writer* w);

/// Inverse of EncodeUncertainString. Validates option counts, probability
/// ranges (finite, in [0, 1]) and rule bounds; with `require_unit_sums` it
/// additionally enforces the full §3 model invariants
/// (UncertainString::Validate). Special uncertain strings (§4) pass false:
/// their single option deliberately keeps mass below 1 (the "no occurrence"
/// event), and SpecialIndex::Build re-checks that form itself.
Status DecodeUncertainString(Reader* r, UncertainString* out,
                             bool require_unit_sums = true);

/// Text (chars + member starts), pos/logp maps, correlated positions,
/// original length, tau_min.
void EncodeFactorSet(const FactorSet& fs, Writer* w);

/// Inverse of EncodeFactorSet, cross-checked against the already-decoded
/// `source` string: array sizes match the text, pos[] entries are sentinel
/// -1 / in-range and contiguous within each factor, logp values are valid
/// log-probabilities, original_length equals source.size(), tau_min is in
/// (0, 1], and every corr_positions entry is sorted, non-sentinel and
/// resolves to a correlation rule of `source` (a dangling entry would throw
/// at query time).
Status DecodeFactorSet(Reader* r, const UncertainString& source,
                       FactorSet* out);

/// Shared guard for section decoders: every section must be consumed
/// exactly.
Status ExpectSectionEnd(const Reader& r, const char* what);

}  // namespace serde
}  // namespace pti

#endif  // PTI_CORE_SERDE_H_
