// Factor transformation (§5.1, Lemma 2): general uncertain string -> special
// uncertain string.
//
// A *factor* here is a containment-maximal valid window: a deterministic
// string w aligned at S-positions [j, e] whose occurrence probability is
// >= tau_min and which cannot be extended by one character on either side
// without dropping below tau_min. Two facts make the emitted factor set a
// faithful implementation of the paper's Lemma 2:
//
//   * Coverage: every occurrence (i, p) with Pr(p, i) >= tau_min extends
//     (right along its own choices, then left greedily) to a containment-
//     maximal window, so p appears inside an emitted factor at alignment i.
//   * Soundness: any sub-window of a factor has probability >= the factor's
//     (dropping factors <= 1 only raises a product), so everything the suffix
//     structure can report really is a >= tau_min occurrence in S.
//
// Compared with the paper's extended-maximal-factor construction this emits
// each maximal window verbatim instead of chaining overlapping windows; the
// suffix tree recovers shared substrings, and the Pos[] mapping plus the
// index's duplicate elimination (§5.2) absorb the repeated alignments. The
// paper's O((1/tau_min)^2 n) total-length bound is checked empirically by
// bench_ablation_transform; max_total_length is a hard safety valve.
//
// Correlated characters are enumerated with their *optimistic* probability
// max(pr+, pr-) — an upper bound on every possible resolution — so no valid
// occurrence is lost; the index recomputes exact window probabilities at
// query time (§3.3 cases 1 and 2).

#ifndef PTI_CORE_FACTOR_TRANSFORM_H_
#define PTI_CORE_FACTOR_TRANSFORM_H_

#include <cstdint>
#include <vector>

#include "core/uncertain_string.h"
#include "suffix/text.h"
#include "util/log_prob.h"
#include "util/span.h"
#include "util/status.h"

namespace pti {

struct TransformOptions {
  /// Construction-time probability floor; queries support any tau >= tau_min.
  double tau_min = 0.1;
  /// Emitted-character budget; exceeding it fails with ResourceExhausted
  /// instead of exhausting memory (the blowup is O((1/tau_min)^2 n)).
  size_t max_total_length = size_t{1} << 31;
};

/// The special uncertain string X of Lemma 2, as a sentinel-separated text.
/// Arrays are VecOrView: owned when built by TransformToFactors or decoded
/// from a v2 container, views into the backing Blob when loaded zero-copy
/// from a v3 container.
struct FactorSet {
  /// Factor characters; members are factors, each closed by a unique
  /// sentinel.
  Text text;
  /// Text position -> original S position (-1 on sentinels).
  VecOrView<int64_t> pos;
  /// Per text position: log of the stored per-character probability (the
  /// optimistic value for correlated characters); 0.0 on sentinels.
  VecOrView<double> logp;
  /// Sorted text positions whose character carries a correlation rule.
  VecOrView<int64_t> corr_positions;

  int64_t original_length = 0;
  double tau_min = 0.0;

  size_t num_factors() const {
    return static_cast<size_t>(text.num_members());
  }
  size_t total_length() const { return text.size(); }

  size_t MemoryUsage() const {
    return text.MemoryUsage() + pos.OwnedBytes() + logp.OwnedBytes() +
           corr_positions.OwnedBytes();
  }
};

/// Runs the transformation. Fails on invalid input (Validate()), a tau_min
/// outside (0, 1], or when the emitted length exceeds the budget.
StatusOr<FactorSet> TransformToFactors(const UncertainString& s,
                                       const TransformOptions& options);

}  // namespace pti

#endif  // PTI_CORE_FACTOR_TRANSFORM_H_
