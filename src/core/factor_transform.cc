#include "core/factor_transform.h"

#include <algorithm>
#include <cmath>

namespace pti {
namespace {

// One pruned candidate character at a position.
struct Candidate {
  uint8_t ch = 0;
  double opt_logp = 0.0;  // log of the optimistic probability
  bool certain = false;   // probability exactly 1 (window product unchanged)
};

// A factor under construction is a list of segments; certain runs are stored
// as references into S (O(1) per run) so that non-emitting DFS paths never
// pay for their length.
struct Segment {
  int64_t s_begin = 0;  // first S position of the segment
  int32_t len = 0;
  // For chosen (branching) characters len == 1 and ch is explicit; for
  // certain runs the characters come from the run itself.
  bool is_run = false;
  uint8_t ch = 0;
};

// Iterative DFS frame: an extension point at S position b, with the window
// log-product wp over the path so far and a cursor over b's candidates.
struct Frame {
  int64_t b = 0;
  size_t next_candidate = 0;
  double wp = 0.0;
  size_t path_len = 0;  // segments to keep when this frame is abandoned
  bool had_child = false;
};

class Transformer {
 public:
  Transformer(const UncertainString& s, const TransformOptions& options)
      : s_(s), options_(options), n_(s.size()) {}

  StatusOr<FactorSet> Run() {
    PTI_RETURN_IF_ERROR(Prepare());
    for (int64_t j = 0; j < n_; ++j) {
      for (const Candidate& c : candidates_[j]) {
        PTI_RETURN_IF_ERROR(EmitFromStart(j, c));
      }
    }
    out_.original_length = n_;
    out_.tau_min = options_.tau_min;
    auto& corr = out_.corr_positions.mutable_vector();
    std::sort(corr.begin(), corr.end());
    return std::move(out_);
  }

 private:
  Status Prepare() {
    if (!(options_.tau_min > 0.0) || options_.tau_min > 1.0) {
      return Status::InvalidArgument("tau_min must be in (0, 1]");
    }
    PTI_RETURN_IF_ERROR(s_.Validate());
    log_tau_ = LogProb::FromLinear(options_.tau_min);

    candidates_.resize(n_);
    max_opt_.assign(n_, LogProb::Zero());
    run_end_.assign(n_, 0);
    for (int64_t i = 0; i < n_; ++i) {
      for (const CharOption& opt : s_.options(i)) {
        double p = opt.prob;
        if (const CorrelationRule* rule = s_.FindRule(i, opt.ch)) {
          p = std::max(rule->prob_if_present, rule->prob_if_absent);
        }
        const LogProb lp = LogProb::FromLinear(p);
        if (!lp.MeetsThreshold(log_tau_)) continue;  // can never participate
        candidates_[i].push_back(Candidate{
            opt.ch, lp.log(), p >= 1.0});
        if (lp > max_opt_[i]) max_opt_[i] = lp;
      }
      std::sort(candidates_[i].begin(), candidates_[i].end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.ch < b.ch;
                });
    }
    // run_end_[i]: one past the end of the certain run starting at i
    // (run_end_[i] == i when position i is not certain).
    for (int64_t i = n_ - 1; i >= 0; --i) {
      const bool certain =
          candidates_[i].size() == 1 && candidates_[i][0].certain;
      if (!certain) {
        run_end_[i] = i;
      } else {
        run_end_[i] = (i + 1 < n_) ? std::max(i + 1, run_end_[i + 1]) : i + 1;
      }
    }
    return Status::OK();
  }

  // Appends the certain run starting at b (if any) to the path; returns the
  // first position after it.
  int64_t AppendRun(int64_t b, std::vector<Segment>* path) const {
    const int64_t e = (b < n_) ? run_end_[b] : b;
    if (e > b) {
      path->push_back(Segment{b, static_cast<int32_t>(e - b), true, 0});
    }
    return e;
  }

  // DFS over all right-maximal extensions of the single-character window
  // (j, c); emits every leaf whose full window is also left-maximal.
  Status EmitFromStart(int64_t j, const Candidate& c) {
    path_.clear();
    path_.push_back(Segment{j, 1, false, c.ch});
    double wp = c.opt_logp;
    const int64_t b0 = AppendRun(j + 1, &path_);

    std::vector<Frame> stack;
    stack.push_back(Frame{b0, 0, wp, path_.size(), false});
    while (!stack.empty()) {
      Frame& f = stack.back();
      bool extended = false;
      while (f.next_candidate < NumCandidates(f.b)) {
        const Candidate& cand = candidates_[f.b][f.next_candidate++];
        const LogProb next = LogProb::FromLog(f.wp + cand.opt_logp);
        if (!next.MeetsThreshold(log_tau_)) continue;
        // Extend: chosen character, then the certain run that follows it.
        f.had_child = true;
        path_.resize(f.path_len);
        path_.push_back(Segment{f.b, 1, false, cand.ch});
        const int64_t b2 = AppendRun(f.b + 1, &path_);
        const double next_wp = next.log();
        // NOTE: push_back may invalidate f; it is not touched afterwards.
        stack.push_back(Frame{b2, 0, next_wp, path_.size(), false});
        extended = true;
        break;
      }
      if (extended) continue;
      // Candidates exhausted: if this frame never produced a child, the
      // current path is right-maximal.
      if (!f.had_child) {
        path_.resize(f.path_len);
        PTI_RETURN_IF_ERROR(MaybeEmit(j, LogProb::FromLog(f.wp)));
      }
      stack.pop_back();
    }
    return Status::OK();
  }

  size_t NumCandidates(int64_t b) const {
    return b < n_ ? candidates_[b].size() : 0;
  }

  // Emits the current path as a factor when its full window cannot be
  // extended to the left.
  Status MaybeEmit(int64_t j, LogProb window) {
    if (j > 0) {
      const LogProb extended = max_opt_[j - 1] * window;
      if (extended.MeetsThreshold(log_tau_)) return Status::OK();  // covered
    }
    // Materialize the characters and per-character stored probabilities.
    factor_chars_.clear();
    factor_logp_.clear();
    for (const Segment& seg : path_) {
      if (seg.is_run) {
        for (int32_t k = 0; k < seg.len; ++k) {
          const int64_t i = seg.s_begin + k;
          factor_chars_.push_back(candidates_[i][0].ch);
          factor_logp_.push_back(candidates_[i][0].opt_logp);
        }
      } else {
        const Candidate* cand = FindCandidate(seg.s_begin, seg.ch);
        factor_chars_.push_back(seg.ch);
        factor_logp_.push_back(cand->opt_logp);
      }
    }
    if (out_.text.size() + factor_chars_.size() + 1 >
        options_.max_total_length) {
      return Status::ResourceExhausted(
          "factor transformation exceeded max_total_length; raise the limit "
          "or tau_min");
    }
    std::vector<int32_t> chars(factor_chars_.begin(), factor_chars_.end());
    out_.text.AppendMember(chars);
    for (size_t k = 0; k < factor_chars_.size(); ++k) {
      const int64_t s_pos = j + static_cast<int64_t>(k);
      out_.pos.push_back(s_pos);
      out_.logp.push_back(factor_logp_[k]);
      if (s_.FindRule(s_pos, factor_chars_[k]) != nullptr) {
        out_.corr_positions.push_back(
            static_cast<int64_t>(out_.pos.size()) - 1);
      }
    }
    out_.pos.push_back(-1);   // sentinel
    out_.logp.push_back(0.0);
    return Status::OK();
  }

  const Candidate* FindCandidate(int64_t i, uint8_t ch) const {
    for (const Candidate& c : candidates_[i]) {
      if (c.ch == ch) return &c;
    }
    return nullptr;
  }

  const UncertainString& s_;
  const TransformOptions& options_;
  const int64_t n_;
  LogProb log_tau_ = LogProb::One();

  std::vector<std::vector<Candidate>> candidates_;
  std::vector<LogProb> max_opt_;
  std::vector<int64_t> run_end_;

  std::vector<Segment> path_;
  std::vector<uint8_t> factor_chars_;
  std::vector<double> factor_logp_;
  FactorSet out_;
};

}  // namespace

StatusOr<FactorSet> TransformToFactors(const UncertainString& s,
                                       const TransformOptions& options) {
  Transformer t(s, options);
  return t.Run();
}

}  // namespace pti
