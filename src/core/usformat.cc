#include "core/usformat.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

namespace pti {

namespace {
Status LineError(size_t line_no, const std::string& what) {
  return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                 what);
}
}  // namespace

StatusOr<UncertainString> ParseUncertainString(const std::string& text,
                                               bool require_unit_sums) {
  UncertainString s;
  std::vector<std::pair<size_t, CorrelationRule>> pending_rules;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip trailing carriage returns (Windows files) and skip blanks.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    if (line[0] == '@') {
      std::string directive;
      tokens >> directive;
      if (directive != "@corr") {
        return LineError(line_no, "unknown directive '" + directive + "'");
      }
      CorrelationRule rule;
      std::string ch, dep_ch;
      if (!(tokens >> rule.pos >> ch >> rule.dep_pos >> dep_ch >>
            rule.prob_if_present >> rule.prob_if_absent) ||
          ch.size() != 1 || dep_ch.size() != 1) {
        return LineError(line_no, "malformed @corr directive");
      }
      rule.ch = static_cast<uint8_t>(ch[0]);
      rule.dep_ch = static_cast<uint8_t>(dep_ch[0]);
      pending_rules.emplace_back(line_no, rule);
      continue;
    }
    std::vector<CharOption> opts;
    std::string token;
    while (tokens >> token) {
      const size_t eq = token.find('=');
      if (eq != 1 || token.size() < 3) {
        return LineError(line_no, "expected char=prob, got '" + token + "'");
      }
      CharOption opt;
      opt.ch = static_cast<uint8_t>(token[0]);
      char* end = nullptr;
      opt.prob = std::strtod(token.c_str() + 2, &end);
      if (end == nullptr || *end != '\0') {
        return LineError(line_no, "bad probability in '" + token + "'");
      }
      if (!std::isfinite(opt.prob) || opt.prob < 0.0 || opt.prob > 1.0) {
        return LineError(line_no, "probability outside [0, 1] in '" + token + "'");
      }
      opts.push_back(opt);
    }
    if (opts.empty()) {
      return LineError(line_no, "position line with no options");
    }
    s.AddPosition(std::move(opts));
  }
  // Rules are applied after all positions exist so they can reference
  // forward positions.
  for (const auto& [rule_line, rule] : pending_rules) {
    const Status st = s.AddCorrelation(rule);
    if (!st.ok()) return LineError(rule_line, st.message());
  }
  if (require_unit_sums) {
    const Status st = s.Validate();
    if (!st.ok()) return st;
  }
  return s;
}

std::string FormatUncertainString(const UncertainString& s) {
  std::ostringstream out;
  char buf[64];
  for (int64_t i = 0; i < s.size(); ++i) {
    bool first = true;
    for (const CharOption& opt : s.options(i)) {
      std::snprintf(buf, sizeof(buf), "%c=%.17g", static_cast<char>(opt.ch),
                    opt.prob);
      out << (first ? "" : " ") << buf;
      first = false;
    }
    out << "\n";
  }
  for (const CorrelationRule& r : s.correlations()) {
    std::snprintf(buf, sizeof(buf), "%.17g %.17g", r.prob_if_present,
                  r.prob_if_absent);
    out << "@corr " << r.pos << " " << static_cast<char>(r.ch) << " "
        << r.dep_pos << " " << static_cast<char>(r.dep_ch) << " " << buf
        << "\n";
  }
  return out.str();
}

}  // namespace pti
