#include "core/brute_force.h"

#include <cmath>

namespace pti {

std::vector<Match> BruteForceSearch(const UncertainString& s,
                                    const std::string& pattern, double tau) {
  std::vector<Match> out;
  const int64_t m = static_cast<int64_t>(pattern.size());
  if (m == 0) return out;
  const LogProb log_tau = LogProb::FromLinear(tau);
  for (int64_t i = 0; i + m <= s.size(); ++i) {
    // OccurrenceProb computes the full product; the early-terminating scan
    // below is equivalent because the running product only decreases.
    const LogProb p = s.OccurrenceProb(pattern, i);
    if (p.MeetsThreshold(log_tau)) {
      out.push_back(Match{i, p.ToLinear()});
    }
  }
  return out;
}

double BruteForceRelevance(const UncertainString& s,
                           const std::string& pattern, RelevanceMetric metric,
                           double prob_floor) {
  const std::vector<Match> occurrences =
      BruteForceSearch(s, pattern, prob_floor);
  if (occurrences.empty()) return 0.0;
  switch (metric) {
    case RelevanceMetric::kMax: {
      double best = 0;
      for (const Match& m : occurrences) best = std::max(best, m.probability);
      return best;
    }
    case RelevanceMetric::kPaperOr: {
      double sum = 0, prod = 1;
      for (const Match& m : occurrences) {
        sum += m.probability;
        prod *= m.probability;
      }
      return sum - prod;
    }
    case RelevanceMetric::kNoisyOr: {
      double none = 1;
      for (const Match& m : occurrences) none *= (1.0 - m.probability);
      return 1.0 - none;
    }
  }
  return 0.0;
}

std::vector<DocMatch> BruteForceListing(
    const std::vector<UncertainString>& docs, const std::string& pattern,
    double tau, RelevanceMetric metric, double prob_floor) {
  std::vector<DocMatch> out;
  for (size_t d = 0; d < docs.size(); ++d) {
    const double rel =
        BruteForceRelevance(docs[d], pattern, metric, prob_floor);
    if (rel > 0 && RelevanceMeets(rel, tau)) {
      out.push_back(DocMatch{static_cast<int32_t>(d), rel});
    }
  }
  return out;
}

}  // namespace pti
