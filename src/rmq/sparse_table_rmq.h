// SparseTableRmq: the classic O(n log n)-space / O(1)-query RMQ.
//
// Level k stores, for every position i, the leftmost argmax of the window
// [i, i + 2^k). A query [l, r] combines the two (overlapping) windows of size
// 2^floor(log2(len)) that cover it. Used as the correctness baseline and for
// small arrays; the index proper uses BlockRmq / FischerHeunRmq.

#ifndef PTI_RMQ_SPARSE_TABLE_RMQ_H_
#define PTI_RMQ_SPARSE_TABLE_RMQ_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "rmq/rmq.h"
#include "util/serial.h"
#include "util/span.h"
#include "util/status.h"

namespace pti {

/// ValueFn: copyable callable `double(size_t)` giving the array value at a
/// position. It must keep returning the construction-time values for as long
/// as queries are issued.
template <typename ValueFn>
class SparseTableRmq {
 public:
  SparseTableRmq(ValueFn value, size_t n) : value_(std::move(value)), n_(n) {
    if (n_ == 0) return;
    const uint32_t levels = rmq_internal::FloorLog2(n_) + 1;
    table_.resize(levels);
    std::vector<uint32_t> level0(n_);
    for (size_t i = 0; i < n_; ++i) level0[i] = static_cast<uint32_t>(i);
    table_[0] = VecOrView<uint32_t>(std::move(level0));
    for (uint32_t k = 1; k < levels; ++k) {
      const size_t span = size_t{1} << k;
      std::vector<uint32_t> level(n_ - span + 1);
      for (size_t i = 0; i + span <= n_; ++i) {
        level[i] = static_cast<uint32_t>(rmq_internal::Better(
            value_, table_[k - 1][i], table_[k - 1][i + span / 2]));
      }
      table_[k] = VecOrView<uint32_t>(std::move(level));
    }
  }

  /// Serializes the table (aligned writer: levels become zero-copy views on
  /// v3 load).
  void SaveTo(Writer* w) const {
    w->PutU64(static_cast<uint64_t>(n_));
    w->PutU32(static_cast<uint32_t>(table_.size()));
    for (const auto& level : table_) w->PutSpan(level.span());
  }

  /// Zero-copy inverse of SaveTo; the caller pins the backing Blob. Level
  /// sizes must match n exactly and every entry must lie inside its window
  /// (which bounds it below n), so a forged table can skew answers but
  /// never index out of bounds.
  static Status LoadFrom(Reader* r, ValueFn value,
                         std::optional<SparseTableRmq>* out) {
    uint64_t n = 0;
    uint32_t levels = 0;
    PTI_RETURN_IF_ERROR(r->GetU64(&n));
    PTI_RETURN_IF_ERROR(r->GetU32(&levels));
    const uint32_t expect =
        n == 0 ? 0 : rmq_internal::FloorLog2(static_cast<size_t>(n)) + 1;
    if (levels != expect) {
      return Status::Corruption("sparse table level count mismatch");
    }
    std::vector<VecOrView<uint32_t>> table(levels);
    for (uint32_t k = 0; k < levels; ++k) {
      Span<const uint32_t> level;
      PTI_RETURN_IF_ERROR(r->GetSpan(&level));
      const size_t span = size_t{1} << k;
      if (level.size() != static_cast<size_t>(n) - span + 1) {
        return Status::Corruption("sparse table level size mismatch");
      }
      for (size_t i = 0; i < level.size(); ++i) {
        if (level[i] < i || level[i] >= i + span) {
          return Status::Corruption("sparse table entry outside its window");
        }
      }
      table[k] = VecOrView<uint32_t>::View(level);
    }
    out->emplace(SparseTableRmq(std::move(value), static_cast<size_t>(n),
                                std::move(table)));
    return Status::OK();
  }

  /// Leftmost argmax over the inclusive range [l, r].
  size_t ArgMax(size_t l, size_t r) const {
    assert(l <= r && r < n_);
    if (l == r) return l;
    const uint32_t k = rmq_internal::FloorLog2(r - l + 1);
    const size_t span = size_t{1} << k;
    return rmq_internal::Better(value_, table_[k][l], table_[k][r - span + 1]);
  }

  size_t size() const { return n_; }

  /// Bytes of auxiliary structure (excludes whatever backs the accessor and
  /// any backing Blob a loaded table views).
  size_t MemoryUsage() const {
    size_t bytes = 0;
    for (const auto& level : table_) bytes += level.OwnedBytes();
    return bytes;
  }

 private:
  SparseTableRmq(ValueFn value, size_t n,
                 std::vector<VecOrView<uint32_t>> table)
      : value_(std::move(value)), n_(n), table_(std::move(table)) {}

  ValueFn value_;
  size_t n_;
  std::vector<VecOrView<uint32_t>> table_;
};

}  // namespace pti

#endif  // PTI_RMQ_SPARSE_TABLE_RMQ_H_
