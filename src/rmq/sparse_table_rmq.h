// SparseTableRmq: the classic O(n log n)-space / O(1)-query RMQ.
//
// Level k stores, for every position i, the leftmost argmax of the window
// [i, i + 2^k). A query [l, r] combines the two (overlapping) windows of size
// 2^floor(log2(len)) that cover it. Used as the correctness baseline and for
// small arrays; the index proper uses BlockRmq / FischerHeunRmq.

#ifndef PTI_RMQ_SPARSE_TABLE_RMQ_H_
#define PTI_RMQ_SPARSE_TABLE_RMQ_H_

#include <cstdint>
#include <vector>

#include "rmq/rmq.h"

namespace pti {

/// ValueFn: copyable callable `double(size_t)` giving the array value at a
/// position. It must keep returning the construction-time values for as long
/// as queries are issued.
template <typename ValueFn>
class SparseTableRmq {
 public:
  SparseTableRmq(ValueFn value, size_t n) : value_(std::move(value)), n_(n) {
    if (n_ == 0) return;
    const uint32_t levels = rmq_internal::FloorLog2(n_) + 1;
    table_.resize(levels);
    table_[0].resize(n_);
    for (size_t i = 0; i < n_; ++i) table_[0][i] = static_cast<uint32_t>(i);
    for (uint32_t k = 1; k < levels; ++k) {
      const size_t span = size_t{1} << k;
      table_[k].resize(n_ - span + 1);
      for (size_t i = 0; i + span <= n_; ++i) {
        table_[k][i] = static_cast<uint32_t>(rmq_internal::Better(
            value_, table_[k - 1][i], table_[k - 1][i + span / 2]));
      }
    }
  }

  /// Leftmost argmax over the inclusive range [l, r].
  size_t ArgMax(size_t l, size_t r) const {
    assert(l <= r && r < n_);
    if (l == r) return l;
    const uint32_t k = rmq_internal::FloorLog2(r - l + 1);
    const size_t span = size_t{1} << k;
    return rmq_internal::Better(value_, table_[k][l], table_[k][r - span + 1]);
  }

  size_t size() const { return n_; }

  /// Bytes of auxiliary structure (excludes whatever backs the accessor).
  size_t MemoryUsage() const {
    size_t bytes = 0;
    for (const auto& level : table_) bytes += level.size() * sizeof(uint32_t);
    return bytes;
  }

 private:
  ValueFn value_;
  size_t n_;
  std::vector<std::vector<uint32_t>> table_;
};

}  // namespace pti

#endif  // PTI_RMQ_SPARSE_TABLE_RMQ_H_
