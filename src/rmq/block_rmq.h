// BlockRmq: the production RMQ used by the indexes.
//
// The array is cut into fixed-size blocks; a sparse table over the per-block
// argmax positions answers the part of a query spanning whole blocks, and the
// two ragged boundary blocks are scanned through the value accessor (O(1)
// values each, block size is a small constant). Space is
// O(n/b · log(n/b)) words — for the default b=64 about 1 byte per element at
// n = 4M — and queries make at most 2b+1 accessor calls.
//
// Rationale vs the paper: Lemma 1's 2n+o(n)-bit structure never touches the
// array at query time; our accessor recomputes values in O(1) from structures
// the index keeps anyway (prefix array C + suffix array), so trading a bounded
// number of accessor calls for a much simpler structure preserves both the
// asymptotics and (measured, see bench_ablation_rmq) the speed.

#ifndef PTI_RMQ_BLOCK_RMQ_H_
#define PTI_RMQ_BLOCK_RMQ_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "rmq/rmq.h"
#include "rmq/sparse_table_rmq.h"
#include "util/serial.h"
#include "util/span.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace pti {

/// ValueFn: copyable callable `double(size_t)`; must stay valid and stable for
/// the lifetime of the structure.
template <typename ValueFn>
class BlockRmq {
 public:
  /// `block` is the scan granularity; 64 balances space vs scan cost. A
  /// non-null multi-thread `pool` spreads the per-block argmax scans (each
  /// block's argmax is independent and deterministic, so the table is
  /// identical at any thread count). Must not be called from a worker of
  /// `pool` itself.
  BlockRmq(ValueFn value, size_t n, size_t block = 64,
           ThreadPool* pool = nullptr)
      : value_(std::move(value)), n_(n), block_(block == 0 ? 1 : block) {
    const size_t nblocks = (n_ + block_ - 1) / block_;
    std::vector<uint32_t> args(nblocks, 0);
    const auto fill = [&](size_t blo, size_t bhi) {
      for (size_t b = blo; b < bhi; ++b) {
        const size_t lo = b * block_;
        const size_t hi = std::min(lo + block_ - 1, n_ - 1);
        args[b] = static_cast<uint32_t>(BruteForceArgMax(value_, lo, hi));
      }
    };
    constexpr size_t kBlocksPerTask = 1024;
    if (pool != nullptr && pool->num_threads() > 1 &&
        nblocks > kBlocksPerTask) {
      const size_t nchunks = (nblocks + kBlocksPerTask - 1) / kBlocksPerTask;
      pool->ParallelFor(nchunks, [&](size_t c) {
        fill(c * kBlocksPerTask,
             std::min(nblocks, (c + 1) * kBlocksPerTask));
      });
    } else {
      fill(0, nblocks);
    }
    block_arg_ = VecOrView<uint32_t>(std::move(args));
    if (nblocks > 0) {
      // The accessor captures the heap buffer (stable across moves of this
      // object) and a copy of the value functor — never `this`.
      top_.emplace(BlockValueFn{block_arg_.data(), value_}, nblocks);
    }
  }

  /// Serializes geometry + block argmax table + the top sparse table.
  void SaveTo(Writer* w) const {
    w->PutU64(static_cast<uint64_t>(n_));
    w->PutU64(static_cast<uint64_t>(block_));
    w->PutSpan(block_arg_.span());
    if (top_) top_->SaveTo(w);
  }

  /// Zero-copy inverse of SaveTo; the caller pins the backing Blob and
  /// supplies the same value accessor the structure was built over. Every
  /// block argmax must lie inside its own block (bounding it below n), so
  /// a forged table cannot push accessor calls out of range.
  static Status LoadFrom(Reader* r, ValueFn value,
                         std::unique_ptr<BlockRmq>* out) {
    uint64_t n = 0, block = 0;
    PTI_RETURN_IF_ERROR(r->GetU64(&n));
    PTI_RETURN_IF_ERROR(r->GetU64(&block));
    if (block == 0) return Status::Corruption("block RMQ with zero block");
    Span<const uint32_t> args;
    PTI_RETURN_IF_ERROR(r->GetSpan(&args));
    const size_t nblocks =
        n == 0 ? 0 : (static_cast<size_t>(n) + block - 1) / block;
    if (args.size() != nblocks) {
      return Status::Corruption("block RMQ argmax table size mismatch");
    }
    for (size_t b = 0; b < nblocks; ++b) {
      const size_t lo = b * block;
      const size_t hi = std::min(lo + block, static_cast<size_t>(n));
      if (args[b] < lo || args[b] >= hi) {
        return Status::Corruption("block RMQ argmax outside its block");
      }
    }
    auto rmq = std::unique_ptr<BlockRmq>(
        new BlockRmq(PartsTag{}, std::move(value), static_cast<size_t>(n),
                     static_cast<size_t>(block),
                     VecOrView<uint32_t>::View(args)));
    if (nblocks > 0) {
      PTI_RETURN_IF_ERROR(SparseTableRmq<BlockValueFn>::LoadFrom(
          r, BlockValueFn{rmq->block_arg_.data(), rmq->value_}, &rmq->top_));
      if (rmq->top_->size() != nblocks) {
        return Status::Corruption("block RMQ top table size mismatch");
      }
    }
    *out = std::move(rmq);
    return Status::OK();
  }

  /// Leftmost argmax over the inclusive range [l, r].
  size_t ArgMax(size_t l, size_t r) const {
    assert(l <= r && r < n_);
    const size_t bl = l / block_;
    const size_t br = r / block_;
    if (bl == br) return BruteForceArgMax(value_, l, r);
    // Left ragged part, middle whole blocks, right ragged part.
    size_t best = BruteForceArgMax(value_, l, (bl + 1) * block_ - 1);
    if (bl + 1 <= br - 1) {
      const size_t mid = block_arg_[top_->ArgMax(bl + 1, br - 1)];
      best = rmq_internal::Better(value_, best, mid);
    }
    const size_t right = BruteForceArgMax(value_, br * block_, r);
    return rmq_internal::Better(value_, best, right);
  }

  size_t size() const { return n_; }

  /// Bytes of auxiliary structure (excludes whatever backs the accessor and
  /// any backing Blob a loaded structure views).
  size_t MemoryUsage() const {
    size_t bytes = block_arg_.OwnedBytes();
    if (top_) bytes += top_->MemoryUsage();
    return bytes;
  }

 private:
  struct PartsTag {};
  BlockRmq(PartsTag, ValueFn value, size_t n, size_t block,
           VecOrView<uint32_t> block_arg)
      : value_(std::move(value)),
        n_(n),
        block_(block),
        block_arg_(std::move(block_arg)) {}

  /// Adapts block-index space to the sparse table: value of block b is the
  /// value at that block's argmax position. Holds only move-stable state
  /// (the vector's heap buffer and a functor copy), so BlockRmq stays
  /// safely movable.
  struct BlockValueFn {
    const uint32_t* block_arg;
    ValueFn value;
    double operator()(size_t b) const { return value(block_arg[b]); }
  };

  ValueFn value_;
  size_t n_;
  size_t block_;
  VecOrView<uint32_t> block_arg_;
  std::optional<SparseTableRmq<BlockValueFn>> top_;
};

}  // namespace pti

#endif  // PTI_RMQ_BLOCK_RMQ_H_
