// Type-erased RMQ handle: lets the indexes pick an engine at runtime
// (options-driven) while the engines themselves stay header-only templates.

#ifndef PTI_RMQ_RMQ_HANDLE_H_
#define PTI_RMQ_RMQ_HANDLE_H_

#include <memory>
#include <type_traits>
#include <utility>

#include "rmq/block_rmq.h"
#include "rmq/fischer_heun_rmq.h"
#include "rmq/sparse_table_rmq.h"
#include "util/serial.h"
#include "util/status.h"

namespace pti {

/// Which RMQ engine an index should build over its probability arrays.
enum class RmqEngineKind {
  kBlock = 0,        ///< block maxima + boundary scans (production default)
  kFischerHeun = 1,  ///< the paper's Lemma 1 structure (microblock codes)
  kSparseTable = 2,  ///< O(n log n) space baseline
};

/// Erased interface over the three engines.
class RmqHandle {
 public:
  virtual ~RmqHandle() = default;
  /// Leftmost argmax over the inclusive range [l, r].
  virtual size_t ArgMax(size_t l, size_t r) const = 0;
  virtual size_t MemoryUsage() const = 0;
  /// Serializes the engine into `w` when it supports persistence (block and
  /// sparse-table engines do); returns false — writing nothing — otherwise,
  /// in which case the owner rebuilds the structure on load.
  virtual bool SaveTo(Writer* w) const = 0;
};

namespace rmq_internal {

template <typename Engine, typename = void>
struct HasSaveTo : std::false_type {};
template <typename Engine>
struct HasSaveTo<Engine,
                 std::void_t<decltype(std::declval<const Engine&>().SaveTo(
                     static_cast<Writer*>(nullptr)))>> : std::true_type {};

template <typename Engine>
class RmqHandleImpl final : public RmqHandle {
 public:
  explicit RmqHandleImpl(Engine engine) : engine_(std::move(engine)) {}
  size_t ArgMax(size_t l, size_t r) const override {
    return engine_.ArgMax(l, r);
  }
  size_t MemoryUsage() const override { return engine_.MemoryUsage(); }
  bool SaveTo(Writer* w) const override {
    if constexpr (HasSaveTo<Engine>::value) {
      engine_.SaveTo(w);
      return true;
    } else {
      (void)w;
      return false;
    }
  }

 private:
  Engine engine_;
};

}  // namespace rmq_internal

/// Builds an engine of the requested kind over `value` (n entries).
/// `block` applies to kBlock only, as does `pool` (a non-null multi-thread
/// pool parallelizes the block-argmax pass; the table is identical at any
/// thread count).
template <typename ValueFn>
std::unique_ptr<RmqHandle> MakeRmq(RmqEngineKind kind, ValueFn value, size_t n,
                                   size_t block = 64,
                                   ThreadPool* pool = nullptr) {
  switch (kind) {
    case RmqEngineKind::kFischerHeun:
      return std::make_unique<
          rmq_internal::RmqHandleImpl<FischerHeunRmq<ValueFn>>>(
          FischerHeunRmq<ValueFn>(std::move(value), n));
    case RmqEngineKind::kSparseTable:
      return std::make_unique<
          rmq_internal::RmqHandleImpl<SparseTableRmq<ValueFn>>>(
          SparseTableRmq<ValueFn>(std::move(value), n));
    case RmqEngineKind::kBlock:
    default:
      return std::make_unique<rmq_internal::RmqHandleImpl<BlockRmq<ValueFn>>>(
          BlockRmq<ValueFn>(std::move(value), n, block, pool));
  }
}

/// Deserializes a block-engine handle saved via RmqHandle::SaveTo. The
/// caller supplies the same value accessor the structure was built over,
/// the element count the structure must cover (queries index up to it, so a
/// forged count would be an out-of-bounds hazard, not just a wrong answer),
/// and pins the Blob backing `r` (the loaded tables are zero-copy views).
template <typename ValueFn>
Status LoadBlockRmq(Reader* r, ValueFn value, size_t expected_n,
                    std::unique_ptr<RmqHandle>* out) {
  std::unique_ptr<BlockRmq<ValueFn>> engine;
  PTI_RETURN_IF_ERROR(
      BlockRmq<ValueFn>::LoadFrom(r, std::move(value), &engine));
  if (engine->size() != expected_n) {
    return Status::Corruption("RMQ element count mismatch");
  }
  *out = std::make_unique<rmq_internal::RmqHandleImpl<BlockRmq<ValueFn>>>(
      std::move(*engine));
  return Status::OK();
}

}  // namespace pti

#endif  // PTI_RMQ_RMQ_HANDLE_H_
