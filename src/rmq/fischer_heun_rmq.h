// FischerHeunRmq: the paper's Lemma 1 structure (Fischer & Heun 2007/2008).
//
// The array is cut into microblocks of b elements. Two microblocks whose
// values build the same Cartesian tree have the same argmax position for
// *every* subrange, so each microblock stores only a 2b-bit tree code
// ("type"); a shared lookup table, filled lazily the first time a type is
// seen, maps (type, i, j) to the in-block argmax offset. Queries spanning
// microblocks use a sparse table over the per-microblock maxima. In-block
// space is 2 bits per element (plus the O(4^b) shared tables), queries are
// O(1) with no scanning.
//
// Tie-breaking matches the library-wide rule (leftmost maximum): the tree
// code is produced with a strict "pop while top < new" rule, under which
// equal values keep the earlier element higher in the tree, so blocks with
// ties still share argmax tables with their type class. The exhaustive
// property tests verify this against BruteForceArgMax.

#ifndef PTI_RMQ_FISCHER_HEUN_RMQ_H_
#define PTI_RMQ_FISCHER_HEUN_RMQ_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "rmq/rmq.h"
#include "rmq/sparse_table_rmq.h"

namespace pti {

/// ValueFn: copyable callable `double(size_t)`; must stay valid and stable for
/// the lifetime of the structure.
template <typename ValueFn>
class FischerHeunRmq {
 public:
  /// Microblock size; 8 keeps the type space (4^8) and tables tiny.
  static constexpr size_t kBlock = 8;

  FischerHeunRmq(ValueFn value, size_t n) : value_(std::move(value)), n_(n) {
    if (n_ == 0) return;
    const size_t nblocks = (n_ + kBlock - 1) / kBlock;
    types_.resize(nblocks);
    block_arg_.resize(nblocks);
    double vals[kBlock];
    for (size_t b = 0; b < nblocks; ++b) {
      const size_t lo = b * kBlock;
      const size_t len = std::min(kBlock, n_ - lo);
      for (size_t k = 0; k < len; ++k) vals[k] = value_(lo + k);
      const uint32_t type = CartesianType(vals, len);
      types_[b] = type;
      auto [it, inserted] = tables_.try_emplace(Key(type, len));
      if (inserted) it->second = BuildTable(vals, len);
      block_arg_[b] = static_cast<uint32_t>(
          lo + it->second[0 * kBlock + (len - 1)]);
    }
    // Stable across moves: captures the heap buffer and a functor copy.
    top_.emplace(BlockValueFn{block_arg_.data(), value_}, nblocks);
  }

  /// Leftmost argmax over the inclusive range [l, r].
  size_t ArgMax(size_t l, size_t r) const {
    assert(l <= r && r < n_);
    const size_t bl = l / kBlock;
    const size_t br = r / kBlock;
    if (bl == br) return InBlock(bl, l % kBlock, r % kBlock);
    size_t best = InBlock(bl, l % kBlock, BlockLen(bl) - 1);
    if (bl + 1 <= br - 1) {
      const size_t mid = block_arg_[top_->ArgMax(bl + 1, br - 1)];
      best = rmq_internal::Better(value_, best, mid);
    }
    const size_t right = InBlock(br, 0, r % kBlock);
    return rmq_internal::Better(value_, best, right);
  }

  size_t size() const { return n_; }

  /// Bytes of auxiliary structure (excludes whatever backs the accessor).
  size_t MemoryUsage() const {
    size_t bytes = types_.size() * sizeof(uint32_t) +
                   block_arg_.size() * sizeof(uint32_t);
    for (const auto& [key, table] : tables_) {
      (void)key;
      bytes += table.size() + sizeof(uint64_t);
    }
    if (top_) bytes += top_->MemoryUsage();
    return bytes;
  }

 private:
  size_t BlockLen(size_t b) const { return std::min(kBlock, n_ - b * kBlock); }

  size_t InBlock(size_t b, size_t i, size_t j) const {
    const auto& table = tables_.at(Key(types_[b], BlockLen(b)));
    return b * kBlock + table[i * kBlock + j];
  }

  /// 2b-bit push/pop encoding of the max-Cartesian tree of vals[0..len).
  /// Strictly-smaller stack entries are popped, so ties keep the leftmost
  /// element as the range answer.
  static uint32_t CartesianType(const double* vals, size_t len) {
    double stack[kBlock];
    size_t depth = 0;
    uint32_t code = 0;
    uint32_t bit = 0;
    for (size_t k = 0; k < len; ++k) {
      while (depth > 0 && stack[depth - 1] < vals[k]) {
        --depth;
        ++bit;  // emit 0 (pop)
      }
      code |= 1u << bit;  // emit 1 (push)
      ++bit;
      stack[depth++] = vals[k];
    }
    return code;
  }

  /// Types of different block lengths live in disjoint key ranges.
  static uint64_t Key(uint32_t type, size_t len) {
    return (static_cast<uint64_t>(len) << 32) | type;
  }

  /// Per-type argmax offsets for all 0 <= i <= j < len.
  static std::vector<uint8_t> BuildTable(const double* vals, size_t len) {
    std::vector<uint8_t> table(kBlock * kBlock, 0);
    for (size_t i = 0; i < len; ++i) {
      size_t best = i;
      table[i * kBlock + i] = static_cast<uint8_t>(i);
      for (size_t j = i + 1; j < len; ++j) {
        if (vals[j] > vals[best]) best = j;
        table[i * kBlock + j] = static_cast<uint8_t>(best);
      }
    }
    return table;
  }

  struct BlockValueFn {
    const uint32_t* block_arg;
    ValueFn value;
    double operator()(size_t b) const { return value(block_arg[b]); }
  };

  ValueFn value_;
  size_t n_ = 0;
  std::vector<uint32_t> types_;
  std::vector<uint32_t> block_arg_;
  std::unordered_map<uint64_t, std::vector<uint8_t>> tables_;
  std::optional<SparseTableRmq<BlockValueFn>> top_;
};

}  // namespace pti

#endif  // PTI_RMQ_FISCHER_HEUN_RMQ_H_
