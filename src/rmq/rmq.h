// Range-maximum query (RMQ) engines.
//
// The paper (Lemma 1, Fischer & Heun) builds a 2n+o(n)-bit structure over each
// probability array C_i and *discards the array*, answering "position of the
// maximum in [l,r]" in O(1). We reproduce that design with a twist that suits
// the index: the C_i values are recomputable in O(1) from the global prefix
// array (C, suffix array A, per-depth active bits), so our engines take a
// *value accessor* instead of owning an array. Construction streams the values
// once; queries call the accessor O(1) times.
//
// Engines (all return the LEFTMOST position of the maximum, inclusive range):
//   * SparseTableRmq — classic O(n log n)-space, O(1)-query baseline.
//   * BlockRmq       — production engine: sparse table over fixed-size block
//                      maxima + boundary-block scans; O(n/b log(n/b)) space,
//                      O(b) accessor calls per query (b is a small constant).
//   * FischerHeunRmq — the paper's Lemma 1 structure: microblock Cartesian
//                      codes (2 bits/element class space) + sparse table over
//                      microblock maxima; O(1) query.
//
// All engines agree exactly (including tie-breaking) with BruteForceArgMax;
// the property tests sweep them against each other.

#ifndef PTI_RMQ_RMQ_H_
#define PTI_RMQ_RMQ_H_

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace pti {

/// Reference semantics for all RMQ engines: leftmost position of the maximum
/// value in the inclusive range [l, r].
template <typename ValueFn>
size_t BruteForceArgMax(const ValueFn& value, size_t l, size_t r) {
  assert(l <= r);
  size_t best = l;
  for (size_t i = l + 1; i <= r; ++i) {
    if (value(i) > value(best)) best = i;
  }
  return best;
}

namespace rmq_internal {

/// Combines two candidate positions under the shared tie rule (leftmost wins).
template <typename ValueFn>
inline size_t Better(const ValueFn& value, size_t a, size_t b) {
  if (a == b) return a;
  const size_t lo = a < b ? a : b;
  const size_t hi = a < b ? b : a;
  return value(hi) > value(lo) ? hi : lo;
}

/// floor(log2(x)) for x >= 1.
inline uint32_t FloorLog2(size_t x) {
  assert(x >= 1);
  return 63u - static_cast<uint32_t>(__builtin_clzll(x));
}

}  // namespace rmq_internal

}  // namespace pti

#endif  // PTI_RMQ_RMQ_H_
