// Thin Status-returning wrappers over POSIX TCP sockets, shared by the
// server (net/server.h) and client (net/client.h). IPv4 only — the serving
// front end binds loopback or a private interface; anything fancier
// belongs in a proxy in front of it.

#ifndef PTI_NET_SOCKET_H_
#define PTI_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace pti {
namespace net {

/// Creates a listening TCP socket bound to host:port (port 0 picks an
/// ephemeral port; *bound_port reports the actual one). On success *fd is
/// the listener.
Status ListenTcp(const std::string& host, int32_t port, int32_t backlog,
                 int* fd, int32_t* bound_port);

/// Connects to host:port; on success *fd is the connected socket.
Status ConnectTcp(const std::string& host, int32_t port, int* fd);

/// Blocking read of exactly n bytes. False on EOF or a socket error (the
/// two are indistinguishable mid-frame and both end the connection).
bool ReadFull(int fd, void* buf, size_t n);

/// Blocking write of exactly n bytes (SIGPIPE suppressed). False on error.
bool WriteFull(int fd, const void* buf, size_t n);

/// Disallows further sends/receives, unblocking any thread inside
/// ReadFull/WriteFull on this fd. Safe on an already-shut-down fd.
void ShutdownFd(int fd);

/// Closes the descriptor (no-op for fd < 0).
void CloseFd(int fd);

}  // namespace net
}  // namespace pti

#endif  // PTI_NET_SOCKET_H_
