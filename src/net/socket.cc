#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace pti {
namespace net {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

// The sockaddr_in -> sockaddr pun is how the POSIX API is specified; it
// never touches index bytes, so the serial.h Reader rule does not apply.
sockaddr* AsSockaddr(sockaddr_in* addr) {
  // pti-lint: allow(no-raw-reinterpret-cast): POSIX sockaddr calling convention
  return reinterpret_cast<sockaddr*>(addr);
}

Status FillAddr(const std::string& host, int32_t port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return Status::OK();
}

}  // namespace

Status ListenTcp(const std::string& host, int32_t port, int32_t backlog,
                 int* fd, int32_t* bound_port) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("listen port out of range");
  }
  sockaddr_in addr;
  PTI_RETURN_IF_ERROR(FillAddr(host, port, &addr));
  const int sock = ::socket(AF_INET, SOCK_STREAM, 0);
  if (sock < 0) return ErrnoStatus("socket");
  const int one = 1;
  (void)::setsockopt(sock, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock, AsSockaddr(&addr), sizeof(addr)) != 0) {
    const Status st = ErrnoStatus("bind " + host);
    CloseFd(sock);
    return st;
  }
  if (::listen(sock, backlog) != 0) {
    const Status st = ErrnoStatus("listen");
    CloseFd(sock);
    return st;
  }
  sockaddr_in actual;
  socklen_t len = sizeof(actual);
  if (::getsockname(sock, AsSockaddr(&actual), &len) != 0) {
    const Status st = ErrnoStatus("getsockname");
    CloseFd(sock);
    return st;
  }
  *fd = sock;
  *bound_port = static_cast<int32_t>(ntohs(actual.sin_port));
  return Status::OK();
}

Status ConnectTcp(const std::string& host, int32_t port, int* fd) {
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("connect port out of range");
  }
  sockaddr_in addr;
  PTI_RETURN_IF_ERROR(FillAddr(host, port, &addr));
  const int sock = ::socket(AF_INET, SOCK_STREAM, 0);
  if (sock < 0) return ErrnoStatus("socket");
  int rc;
  do {
    rc = ::connect(sock, AsSockaddr(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const Status st = ErrnoStatus("connect " + host);
    CloseFd(sock);
    return st;
  }
  const int one = 1;
  (void)::setsockopt(sock, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *fd = sock;
  return Status::OK();
}

bool ReadFull(int fd, void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;  // EOF or error
  }
  return true;
}

bool WriteFull(int fd, const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void ShutdownFd(int fd) {
  if (fd >= 0) (void)::shutdown(fd, SHUT_RDWR);
}

void CloseFd(int fd) {
  if (fd >= 0) (void)::close(fd);
}

}  // namespace net
}  // namespace pti
