#include "net/server.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string_view>
#include <sys/socket.h>
#include <thread>
#include <utility>
#include <vector>

#include "net/protocol.h"
#include "net/socket.h"

namespace pti {
namespace net {

struct NetServer::Impl {
  // One response waiting to be written: either a future still being
  // answered by the engine (kQuery) or an already-encoded frame (admin and
  // error replies). FIFO per connection, so pipelined responses leave in
  // request order.
  struct Outbound {
    uint64_t id = 0;
    std::future<ServingEngine::Result> result;
    std::string raw;
  };

  struct Conn {
    int fd = -1;
    std::thread reader;
    std::thread writer;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Outbound> outbound;  // guarded by mu, bounded by max_pipeline
    bool reader_done = false;       // guarded by mu: no more pushes coming
    bool aborted = false;           // guarded by mu: tear down now
    std::atomic<int> live_threads{2};
    std::atomic<bool> finished{false};
  };

  Impl(ServingEngine* eng, const NetServerOptions& opts)
      : engine(eng), options(opts) {
    if (options.max_connections < 1) options.max_connections = 1;
    if (options.listen_backlog < 1) options.listen_backlog = 1;
    if (options.max_pipeline < 1) options.max_pipeline = 1;
  }

  Status Start() {
    if (listen_fd >= 0) {
      return Status::InvalidArgument("server already started");
    }
    PTI_RETURN_IF_ERROR(ListenTcp(options.host, options.port,
                                  options.listen_backlog, &listen_fd,
                                  &bound_port));
    accept_thread = std::thread([this] { AcceptLoop(); });
    return Status::OK();
  }

  void AcceptLoop() {
    for (;;) {
      const int cfd = ::accept(listen_fd, nullptr, nullptr);
      if (stopping.load(std::memory_order_acquire)) {
        if (cfd >= 0) CloseFd(cfd);
        return;
      }
      if (cfd < 0) {
        const int err = errno;
        if (err == EINTR || err == ECONNABORTED) continue;
        if (err == EMFILE || err == ENFILE || err == ENOBUFS ||
            err == ENOMEM || err == EAGAIN) {
          // Transient resource exhaustion (fd or buffer pressure — likely
          // at two threads and one fd per connection): back off briefly
          // and keep accepting instead of silently ending service for the
          // rest of the process lifetime.
          accept_retries.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          continue;
        }
        // Listener genuinely unusable (EBADF/EINVAL outside Stop, or an
        // errno no retry can fix): record the exit so stats show that
        // acceptance has died rather than vanishing silently.
        accept_failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      const int one = 1;
      (void)::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      std::lock_guard<std::mutex> lock(conns_mu);
      ReapLocked();
      if (conns.size() >= static_cast<size_t>(options.max_connections)) {
        connections_rejected.fetch_add(1, std::memory_order_relaxed);
        CloseFd(cfd);
        continue;
      }
      connections_accepted.fetch_add(1, std::memory_order_relaxed);
      auto conn = std::make_unique<Conn>();
      Conn* c = conn.get();
      c->fd = cfd;
      c->reader = std::thread([this, c] { ReaderLoop(c); });
      c->writer = std::thread([this, c] { WriterLoop(c); });
      conns.push_back(std::move(conn));
    }
  }

  // Joins and frees connections whose threads have both exited. Called
  // under conns_mu; join() on an exited thread returns immediately.
  void ReapLocked() {
    for (auto it = conns.begin(); it != conns.end();) {
      Conn& c = **it;
      if (c.finished.load(std::memory_order_acquire)) {
        if (c.reader.joinable()) c.reader.join();
        if (c.writer.joinable()) c.writer.join();
        CloseFd(c.fd);
        it = conns.erase(it);
      } else {
        ++it;
      }
    }
  }

  void MarkThreadDone(Conn* c) {
    if (c->live_threads.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last thread out half-closes the socket so the peer sees EOF; the
      // fd itself is released when the connection is reaped.
      ShutdownFd(c->fd);
      c->finished.store(true, std::memory_order_release);
    }
  }

  void Abort(Conn* c) {
    {
      std::lock_guard<std::mutex> lock(c->mu);
      c->aborted = true;
    }
    c->cv.notify_all();
    ShutdownFd(c->fd);
  }

  // Queues one response; blocks when the connection's pipeline is full
  // (backpressure toward a client that is not reading). False when the
  // connection is being torn down.
  bool Enqueue(Conn* c, Outbound item) {
    {
      std::unique_lock<std::mutex> lock(c->mu);
      c->cv.wait(lock, [this, c] {
        return c->aborted || c->outbound.size() < options.max_pipeline;
      });
      if (c->aborted) return false;
      c->outbound.push_back(std::move(item));
    }
    c->cv.notify_all();
    return true;
  }

  bool EnqueueRaw(Conn* c, uint64_t id, std::string frame) {
    Outbound item;
    item.id = id;
    item.raw = std::move(frame);
    return Enqueue(c, std::move(item));
  }

  void ReaderLoop(Conn* c) {
    std::string payload;
    for (;;) {
      char header[kFrameHeaderBytes];
      if (!ReadFull(c->fd, header, sizeof(header))) break;
      uint32_t payload_len = 0;
      Status st = DecodeHeader(header, &payload_len);
      if (!st.ok()) {
        // Unframed stream: a best-effort error reply, then close — there
        // is no trustworthy frame boundary left to resync on.
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        (void)EnqueueRaw(c, 0, EncodeResult(0, st, {}));
        break;
      }
      payload.resize(payload_len);
      if (!ReadFull(c->fd, payload.data(), payload.size())) break;
      frames_received.fetch_add(1, std::memory_order_relaxed);
      Frame frame;
      st = DecodeFrame(payload, &frame);
      if (!st.ok()) {
        // Hostile payload inside an intact frame: answer with the error
        // and keep serving this connection.
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        if (!EnqueueRaw(c, frame.id, EncodeResult(frame.id, st, {}))) break;
        continue;
      }
      if (!Dispatch(c, std::move(frame))) break;
    }
    {
      std::lock_guard<std::mutex> lock(c->mu);
      c->reader_done = true;
    }
    c->cv.notify_all();
    MarkThreadDone(c);
  }

  // Routes one well-formed frame; false ends the connection.
  bool Dispatch(Conn* c, Frame frame) {
    switch (frame.type) {
      case FrameType::kQuery: {
        queries.fetch_add(1, std::memory_order_relaxed);
        Outbound item;
        item.id = frame.id;
        item.result = engine->Submit(std::move(frame.request));
        return Enqueue(c, std::move(item));
      }
      case FrameType::kReload: {
        Status st = Status::NotSupported("reload disabled on this listener");
        if (options.allow_reload) {
          reloads.fetch_add(1, std::memory_order_relaxed);
          st = engine->Reload(frame.path, frame.use_mmap);
        }
        return EnqueueRaw(c, frame.id, EncodeResult(frame.id, st, {}));
      }
      case FrameType::kStats: {
        if (!options.allow_stats) {
          const Status st =
              Status::NotSupported("stats disabled on this listener");
          return EnqueueRaw(c, frame.id, EncodeResult(frame.id, st, {}));
        }
        return EnqueueRaw(c, frame.id,
                          EncodeStatsResult(frame.id, engine->stats()));
      }
      case FrameType::kResult:
      case FrameType::kStatsResult: {
        // Valid encodings, but only servers send them; a client pushing
        // one is a protocol error on an otherwise-intact stream.
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        const Status st =
            Status::InvalidArgument("server-to-client frame type");
        return EnqueueRaw(c, frame.id, EncodeResult(frame.id, st, {}));
      }
    }
    return false;
  }

  void WriterLoop(Conn* c) {
    for (;;) {
      Outbound item;
      {
        std::unique_lock<std::mutex> lock(c->mu);
        c->cv.wait(lock, [c] {
          return c->aborted || c->reader_done || !c->outbound.empty();
        });
        if (c->aborted) break;
        if (c->outbound.empty()) break;  // reader done and fully drained
        item = std::move(c->outbound.front());
        c->outbound.pop_front();
      }
      c->cv.notify_all();  // reader may be blocked on the pipeline bound
      std::string frame;
      if (item.result.valid()) {
        ServingEngine::Result result = item.result.get();
        frame = EncodeResult(item.id, result.status,
                             Span<const Match>(result.matches));
      } else {
        frame = std::move(item.raw);
      }
      if (!WriteFull(c->fd, frame.data(), frame.size())) {
        Abort(c);  // client is gone; unblock the reader too
        break;
      }
      frames_sent.fetch_add(1, std::memory_order_relaxed);
    }
    MarkThreadDone(c);
  }

  void Stop() {
    // call_once so concurrent Stop() callers (including the destructor's
    // Stop racing an explicit one) block until the first teardown has
    // joined everything, instead of returning while threads are mid-join
    // and letting ~NetServer free this Impl under them.
    std::call_once(stop_once, [this] {
      stopping.store(true, std::memory_order_release);
      ShutdownFd(listen_fd);
      CloseFd(listen_fd);
      if (accept_thread.joinable()) accept_thread.join();
      listen_fd = -1;
      std::lock_guard<std::mutex> lock(conns_mu);
      for (auto& conn : conns) Abort(conn.get());
      for (auto& conn : conns) {
        if (conn->reader.joinable()) conn->reader.join();
        if (conn->writer.joinable()) conn->writer.join();
        CloseFd(conn->fd);
      }
      conns.clear();
    });
  }

  ServingEngine* engine;
  NetServerOptions options;

  int listen_fd = -1;
  int32_t bound_port = 0;
  std::thread accept_thread;
  std::atomic<bool> stopping{false};
  std::once_flag stop_once;

  std::mutex conns_mu;
  std::vector<std::unique_ptr<Conn>> conns;

  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_rejected{0};
  std::atomic<uint64_t> accept_retries{0};
  std::atomic<uint64_t> accept_failures{0};
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> frames_sent{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> reloads{0};
};

NetServer::NetServer(ServingEngine* engine, const NetServerOptions& options)
    : impl_(new Impl(engine, options)) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() { return impl_->Start(); }

void NetServer::Stop() { impl_->Stop(); }

int32_t NetServer::port() const { return impl_->bound_port; }

NetServer::Stats NetServer::stats() const {
  const Impl& impl = *impl_;
  Stats s;
  s.connections_accepted =
      impl.connections_accepted.load(std::memory_order_relaxed);
  s.connections_rejected =
      impl.connections_rejected.load(std::memory_order_relaxed);
  s.accept_retries = impl.accept_retries.load(std::memory_order_relaxed);
  s.accept_failures = impl.accept_failures.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(impl_->conns_mu);
    uint64_t active = 0;
    for (const auto& conn : impl.conns) {
      if (!conn->finished.load(std::memory_order_acquire)) ++active;
    }
    s.connections_active = active;
  }
  s.frames_received = impl.frames_received.load(std::memory_order_relaxed);
  s.frames_sent = impl.frames_sent.load(std::memory_order_relaxed);
  s.protocol_errors = impl.protocol_errors.load(std::memory_order_relaxed);
  s.queries = impl.queries.load(std::memory_order_relaxed);
  s.reloads = impl.reloads.load(std::memory_order_relaxed);
  return s;
}

}  // namespace net
}  // namespace pti
