#include "net/client.h"

#include <utility>

#include "net/socket.h"

namespace pti {
namespace net {

NetClient::~NetClient() { Close(); }

Status NetClient::Connect(const std::string& host, int32_t port) {
  if (fd_ >= 0) return Status::InvalidArgument("client already connected");
  return ConnectTcp(host, port, &fd_);
}

void NetClient::Close() {
  CloseFd(fd_);
  fd_ = -1;
}

Status NetClient::SendFrame(const std::string& frame) {
  if (fd_ < 0) return Status::IOError("client not connected");
  if (!WriteFull(fd_, frame.data(), frame.size())) {
    Close();
    return Status::IOError("connection lost while sending");
  }
  return Status::OK();
}

Status NetClient::SendRaw(const void* data, size_t n) {
  if (fd_ < 0) return Status::IOError("client not connected");
  if (!WriteFull(fd_, data, n)) {
    Close();
    return Status::IOError("connection lost while sending");
  }
  return Status::OK();
}

Status NetClient::Receive(Frame* frame) {
  if (fd_ < 0) return Status::IOError("client not connected");
  char header[kFrameHeaderBytes];
  if (!ReadFull(fd_, header, sizeof(header))) {
    Close();
    return Status::IOError("connection closed by server");
  }
  uint32_t payload_len = 0;
  Status st = DecodeHeader(header, &payload_len);
  if (!st.ok()) {
    // The stream has no trustworthy boundary left; the connection is done.
    Close();
    return st;
  }
  std::string payload(payload_len, '\0');
  if (!ReadFull(fd_, payload.data(), payload.size())) {
    Close();
    return Status::IOError("connection closed mid-frame");
  }
  st = DecodeFrame(payload, frame);
  if (!st.ok()) Close();
  return st;
}

Status NetClient::SendQuery(const Request& request, uint64_t* id) {
  // A request the wire cannot represent (k outside the u8 field, oversized
  // pattern) fails here instead of being silently truncated on encode.
  PTI_RETURN_IF_ERROR(ValidateForWire(request));
  *id = next_id_++;
  return SendFrame(EncodeQuery(*id, request));
}

Status NetClient::RoundTrip(const std::string& frame, uint64_t id,
                            Frame* response) {
  PTI_RETURN_IF_ERROR(SendFrame(frame));
  PTI_RETURN_IF_ERROR(Receive(response));
  if (response->id != id) {
    // Single-in-flight callers always see their own id; a mismatch means
    // the stream is desynchronized beyond repair.
    Close();
    return Status::Corruption("response id does not match request id");
  }
  return Status::OK();
}

Status NetClient::Query(const Request& request, std::vector<Match>* matches) {
  PTI_RETURN_IF_ERROR(ValidateForWire(request));
  const uint64_t id = next_id_++;
  Frame response;
  PTI_RETURN_IF_ERROR(RoundTrip(EncodeQuery(id, request), id, &response));
  if (response.type != FrameType::kResult) {
    Close();
    return Status::Corruption("expected a result frame");
  }
  *matches = std::move(response.matches);
  return StatusFromWire(response.code, std::move(response.message));
}

Status NetClient::Reload(const std::string& path, bool use_mmap) {
  const uint64_t id = next_id_++;
  Frame response;
  PTI_RETURN_IF_ERROR(
      RoundTrip(EncodeReload(id, path, use_mmap), id, &response));
  if (response.type != FrameType::kResult) {
    Close();
    return Status::Corruption("expected a result frame");
  }
  return StatusFromWire(response.code, std::move(response.message));
}

Status NetClient::QueryStats(std::vector<uint64_t>* counters) {
  const uint64_t id = next_id_++;
  Frame response;
  PTI_RETURN_IF_ERROR(RoundTrip(EncodeStats(id), id, &response));
  if (response.type == FrameType::kResult) {
    // The server answered with a status instead (e.g. stats disabled).
    Status st = StatusFromWire(response.code, std::move(response.message));
    if (st.ok()) st = Status::Corruption("result frame carried no stats");
    return st;
  }
  if (response.type != FrameType::kStatsResult) {
    Close();
    return Status::Corruption("expected a stats frame");
  }
  *counters = std::move(response.stats);
  return Status::OK();
}

}  // namespace net
}  // namespace pti
