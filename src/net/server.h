// NetServer: the TCP front end over ServingEngine — the socket-facing layer
// of the serving story (ROADMAP: network serving front end).
//
//   accept loop ──▶ per-connection reader ──decode──▶ engine.Submit(Request)
//                        │                                  │ future
//                        │ bounded outbound queue ◀─────────┘
//                        ▼
//                   per-connection writer ──encode──▶ socket
//
// One reader + one writer thread per connection; the reader decodes frames
// (net/protocol.h) and submits, the writer resolves futures in FIFO order
// and streams responses back, so a client may pipeline requests and still
// receives responses in send order, each echoing its request id. The
// outbound queue is bounded: a client that stops reading eventually blocks
// its own reader (TCP backpressure), never the engine or other clients.
//
// Robustness contract (exercised by tests/net_server_test.cc): a hostile
// payload inside an intact frame gets an error kResult and the connection
// keeps serving; a broken frame header (bad magic, oversized length,
// truncation) gets a best-effort error and the connection is closed —
// the stream can no longer be resynced — while every other connection and
// the engine keep running. Overload never crashes: the engine's bounded
// admission lanes shed with Status::Unavailable, which travels back over
// the wire like any other status.
//
// Admin frames: kReload hot-swaps the served index (ServingEngine::Reload
// semantics — in-flight batches finish on their generation) and kStats
// snapshots the engine counters; both can be disabled via options.

#ifndef PTI_NET_SERVER_H_
#define PTI_NET_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "engine/serving_engine.h"
#include "util/status.h"

namespace pti {
namespace net {

struct NetServerOptions {
  /// IPv4 address to bind. Default loopback: exposing the engine beyond
  /// the host is a deployment decision, not a default.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int32_t port = 0;
  /// Connection cap: accepts past it are closed immediately (counted in
  /// Stats::connections_rejected). Each connection costs two threads.
  int32_t max_connections = 64;
  /// listen(2) backlog.
  int32_t listen_backlog = 64;
  /// Bound on responses queued per connection before the reader stops
  /// reading (TCP backpressure toward a client that does not drain).
  size_t max_pipeline = 1024;
  /// Admin frames: kReload swaps the served index; kStats reads counters.
  bool allow_reload = true;
  bool allow_stats = true;
};

class NetServer {
 public:
  /// Counter snapshot; cumulative except the labeled gauge.
  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_rejected = 0;  ///< over max_connections
    uint64_t connections_active = 0;    ///< gauge
    uint64_t accept_retries = 0;   ///< transient accept() errors retried
                                   ///< (fd/buffer exhaustion, aborted conns)
    uint64_t accept_failures = 0;  ///< accept() errors that permanently
                                   ///< ended the accept loop (should be 0)
    uint64_t frames_received = 0;       ///< well-framed payloads read
    uint64_t frames_sent = 0;
    uint64_t protocol_errors = 0;  ///< hostile frames (either severity)
    uint64_t queries = 0;          ///< kQuery frames submitted
    uint64_t reloads = 0;          ///< kReload frames attempted
  };

  /// The engine must outlive the server. The server never owns it: one
  /// engine can stand behind a listener and in-process callers at once.
  explicit NetServer(ServingEngine* engine,
                     const NetServerOptions& options = {});
  /// Stops and joins (Stop()).
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and starts the accept loop. Call once.
  Status Start();

  /// Closes the listener and every connection, then joins all threads.
  /// Idempotent and safe to call concurrently: later callers (including
  /// the destructor) block until the first teardown completes. Pending
  /// futures the engine already accepted still resolve inside the engine;
  /// their responses are simply no longer deliverable.
  void Stop();

  /// The bound port (after Start); useful with options.port == 0.
  int32_t port() const;

  Stats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace net
}  // namespace pti

#endif  // PTI_NET_SERVER_H_
