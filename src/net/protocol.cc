#include "net/protocol.h"

#include <cstddef>
#include <utility>

#include "util/serial.h"

namespace pti {
namespace net {

namespace {

// Starts a payload: type tag + request id. Every frame body begins this
// way so a server can address an error reply even when the rest of the
// payload is hostile.
Writer BeginPayload(FrameType type, uint64_t id) {
  Writer w;
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU64(id);
  return w;
}

// Wraps a finished payload in the frame header.
std::string Seal(Writer payload) {
  std::string body = payload.Take();
  Writer frame;
  frame.PutU32(kFrameMagic);
  frame.PutU32(static_cast<uint32_t>(body.size()));
  std::string out = frame.Take();
  out.append(body);
  return out;
}

Status CheckAtEnd(const Reader& reader) {
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after frame body");
  }
  return Status::OK();
}

Status DecodeQueryBody(Reader* reader, Frame* frame) {
  PTI_RETURN_IF_ERROR(reader->GetDouble(&frame->request.tau));
  uint8_t metric = 0;
  uint8_t k = 0;
  uint8_t priority = 0;
  uint8_t reserved = 0;
  PTI_RETURN_IF_ERROR(reader->GetU8(&metric));
  PTI_RETURN_IF_ERROR(reader->GetU8(&k));
  PTI_RETURN_IF_ERROR(reader->GetU8(&priority));
  PTI_RETURN_IF_ERROR(reader->GetU8(&reserved));
  if (metric > static_cast<uint8_t>(FuzzyMetric::kEdit)) {
    return Status::Corruption("query frame: unknown fuzzy metric");
  }
  if (priority > static_cast<uint8_t>(Priority::kBatch)) {
    return Status::Corruption("query frame: unknown priority lane");
  }
  if (reserved != 0) {
    return Status::Corruption("query frame: reserved byte must be zero");
  }
  frame->request.metric = static_cast<FuzzyMetric>(metric);
  frame->request.k = k;
  frame->request.priority = static_cast<Priority>(priority);
  std::string_view pattern;
  PTI_RETURN_IF_ERROR(reader->GetStringView(&pattern));
  if (pattern.size() > kMaxPatternBytes) {
    return Status::Corruption("query frame: pattern too long");
  }
  frame->request.pattern.assign(pattern.data(), pattern.size());
  return CheckAtEnd(*reader);
}

Status DecodeResultBody(Reader* reader, Frame* frame) {
  uint8_t code = 0;
  PTI_RETURN_IF_ERROR(reader->GetU8(&code));
  if (code > static_cast<uint8_t>(Status::Code::kUnavailable)) {
    return Status::Corruption("result frame: unknown status code");
  }
  frame->code = static_cast<Status::Code>(code);
  std::string_view message;
  PTI_RETURN_IF_ERROR(reader->GetStringView(&message));
  if (message.size() > kMaxStringBytes) {
    return Status::Corruption("result frame: message too long");
  }
  frame->message.assign(message.data(), message.size());
  PTI_RETURN_IF_ERROR(reader->GetVector(&frame->matches));
  return CheckAtEnd(*reader);
}

Status DecodeReloadBody(Reader* reader, Frame* frame) {
  uint8_t use_mmap = 0;
  PTI_RETURN_IF_ERROR(reader->GetU8(&use_mmap));
  if (use_mmap > 1) {
    return Status::Corruption("reload frame: use_mmap must be 0 or 1");
  }
  frame->use_mmap = use_mmap == 1;
  std::string_view path;
  PTI_RETURN_IF_ERROR(reader->GetStringView(&path));
  if (path.empty() || path.size() > kMaxStringBytes) {
    return Status::Corruption("reload frame: bad path length");
  }
  frame->path.assign(path.data(), path.size());
  return CheckAtEnd(*reader);
}

Status DecodeStatsResultBody(Reader* reader, Frame* frame) {
  PTI_RETURN_IF_ERROR(reader->GetVector(&frame->stats));
  if (frame->stats.size() < kStatsFields) {
    return Status::Corruption("stats frame: too few counters");
  }
  return CheckAtEnd(*reader);
}

}  // namespace

Status ValidateForWire(const Request& request) {
  if (request.k < 0 || request.k > 255) {
    return Status::InvalidArgument(
        "request k " + std::to_string(request.k) +
        " does not fit the wire's u8 field [0, 255]");
  }
  if (request.pattern.size() > kMaxPatternBytes) {
    return Status::InvalidArgument(
        "request pattern exceeds the wire cap of " +
        std::to_string(kMaxPatternBytes) + " bytes");
  }
  return Status::OK();
}

std::string EncodeQuery(uint64_t id, const Request& request) {
  Writer w = BeginPayload(FrameType::kQuery, id);
  w.PutDouble(request.tau);
  w.PutU8(static_cast<uint8_t>(request.metric));
  w.PutU8(static_cast<uint8_t>(request.k));  // ValidateForWire: fits a u8
  w.PutU8(static_cast<uint8_t>(request.priority));
  w.PutU8(0);  // reserved
  w.PutString(request.pattern);
  return Seal(std::move(w));
}

std::string EncodeResult(uint64_t id, const Status& status,
                         Span<const Match> matches) {
  if (matches.size() > kMaxResultMatches) {
    // A result larger than one frame can carry degrades to a clean
    // per-request status; an over-cap frame would be rejected as
    // Corruption by the peer, which kills the whole connection.
    return EncodeResult(
        id,
        Status::ResourceExhausted(
            "result has " + std::to_string(matches.size()) +
            " matches; a frame carries at most " +
            std::to_string(kMaxResultMatches)),
        {});
  }
  Writer w = BeginPayload(FrameType::kResult, id);
  w.PutU8(static_cast<uint8_t>(status.code()));
  // Messages are advisory; truncate rather than build an undecodable frame.
  std::string message = status.message();
  if (message.size() > kMaxStringBytes) message.resize(kMaxStringBytes);
  w.PutString(message);
  w.PutSpan(matches);
  return Seal(std::move(w));
}

std::string EncodeReload(uint64_t id, const std::string& path, bool use_mmap) {
  Writer w = BeginPayload(FrameType::kReload, id);
  w.PutU8(use_mmap ? 1 : 0);
  w.PutString(path);
  return Seal(std::move(w));
}

std::string EncodeStats(uint64_t id) {
  return Seal(BeginPayload(FrameType::kStats, id));
}

std::vector<uint64_t> FlattenStats(const ServingEngine::Stats& stats) {
  return {stats.submitted,
          stats.completed,
          stats.shed,
          stats.rejected,
          stats.cache_hits,
          stats.cache_misses,
          stats.inflight_merges,
          stats.batches,
          stats.batched_queries,
          stats.fallback_queries,
          static_cast<uint64_t>(stats.queue_depth),
          stats.interactive_submitted,
          stats.interactive_completed,
          stats.interactive_shed,
          stats.batch_submitted,
          stats.batch_completed,
          stats.batch_shed,
          static_cast<uint64_t>(stats.cache_entries),
          static_cast<uint64_t>(stats.cache_bytes),
          stats.cache_evictions,
          stats.reloads,
          stats.generation};
}

std::string EncodeStatsResult(uint64_t id, const ServingEngine::Stats& stats) {
  Writer w = BeginPayload(FrameType::kStatsResult, id);
  w.PutVector(FlattenStats(stats));
  return Seal(std::move(w));
}

Status DecodeHeader(const char* header, uint32_t* payload_len) {
  Reader reader(header, kFrameHeaderBytes);
  uint32_t magic = 0;
  uint32_t len = 0;
  PTI_RETURN_IF_ERROR(reader.GetU32(&magic));
  PTI_RETURN_IF_ERROR(reader.GetU32(&len));
  if (magic != kFrameMagic) {
    return Status::Corruption("frame header: bad magic");
  }
  if (len > kMaxPayloadBytes) {
    return Status::Corruption("frame header: payload length over limit");
  }
  if (len < 9) {  // type + id are mandatory in every payload
    return Status::Corruption("frame header: payload too short for a frame");
  }
  *payload_len = len;
  return Status::OK();
}

Status DecodeFrame(std::string_view payload, Frame* frame) {
  Reader reader(payload);
  uint8_t type = 0;
  PTI_RETURN_IF_ERROR(reader.GetU8(&type));
  if (type < static_cast<uint8_t>(FrameType::kQuery) ||
      type > static_cast<uint8_t>(FrameType::kStatsResult)) {
    return Status::Corruption("frame: unknown type tag");
  }
  frame->type = static_cast<FrameType>(type);
  PTI_RETURN_IF_ERROR(reader.GetU64(&frame->id));
  switch (frame->type) {
    case FrameType::kQuery:
      return DecodeQueryBody(&reader, frame);
    case FrameType::kResult:
      return DecodeResultBody(&reader, frame);
    case FrameType::kReload:
      return DecodeReloadBody(&reader, frame);
    case FrameType::kStats:
      return CheckAtEnd(reader);
    case FrameType::kStatsResult:
      return DecodeStatsResultBody(&reader, frame);
  }
  return Status::Corruption("frame: unknown type tag");
}

Status StatusFromWire(Status::Code code, std::string message) {
  switch (code) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case Status::Code::kNotFound:
      return Status::NotFound(std::move(message));
    case Status::Code::kCorruption:
      return Status::Corruption(std::move(message));
    case Status::Code::kNotSupported:
      return Status::NotSupported(std::move(message));
    case Status::Code::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case Status::Code::kIOError:
      return Status::IOError(std::move(message));
    case Status::Code::kUnavailable:
      return Status::Unavailable(std::move(message));
  }
  return Status::Corruption("unknown status code on the wire");
}

}  // namespace net
}  // namespace pti
