// NetClient: a small synchronous client for the pti wire protocol
// (net/protocol.h). One TCP connection, blocking calls; not thread-safe —
// callers that want concurrency open one client per thread (the server is
// built for many connections) or pipeline explicitly with the split
// Send*/Receive surface below.
//
// Two levels of API:
//   * Call-style: Query / Reload / QueryStats — send one frame, block for
//     its response, surface the server's Status verbatim.
//   * Pipelined: SendQuery / Receive — queue many requests on the socket
//     before reading any response (the server answers in FIFO order, each
//     response echoing its request id). This is what the open-loop bench
//     driver uses to model arrival rate independent of response latency.
// SendRaw exists so tests can deliver deliberately hostile bytes.

#ifndef PTI_NET_CLIENT_H_
#define PTI_NET_CLIENT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/request.h"
#include "net/protocol.h"
#include "util/status.h"

namespace pti {
namespace net {

class NetClient {
 public:
  NetClient() = default;
  /// Closes the connection if still open.
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Connects to an IPv4 host:port. Call once per client.
  Status Connect(const std::string& host, int32_t port);

  /// Closes the socket; further calls fail with IOError. Idempotent.
  void Close();

  bool connected() const { return fd_ >= 0; }

  // -- Call-style (send one, wait for its reply) --------------------------

  /// Runs one query and fills *matches. The returned Status is the
  /// server's verdict carried over the wire (e.g. Unavailable on load
  /// shed), or a local IOError/Corruption if the connection itself broke.
  Status Query(const Request& request, std::vector<Match>* matches);

  /// Hot-swaps the served index on the server (kReload frame).
  Status Reload(const std::string& path, bool use_mmap);

  /// Fetches the engine counter snapshot, in FlattenStats order.
  Status QueryStats(std::vector<uint64_t>* counters);

  // -- Pipelined ----------------------------------------------------------

  /// Sends a query frame without waiting; *id receives the request id to
  /// match against Receive()d responses.
  Status SendQuery(const Request& request, uint64_t* id);

  /// Blocks for the next response frame (kResult or kStatsResult).
  Status Receive(Frame* frame);

  // -- Test hooks ----------------------------------------------------------

  /// Writes arbitrary bytes to the socket, bypassing the encoder. For
  /// protocol-robustness tests only.
  Status SendRaw(const void* data, size_t n);

 private:
  Status SendFrame(const std::string& frame);
  /// Sends `frame` and blocks until the response whose id matches.
  Status RoundTrip(const std::string& frame, uint64_t id, Frame* response);

  int fd_ = -1;
  uint64_t next_id_ = 1;
};

}  // namespace net
}  // namespace pti

#endif  // PTI_NET_CLIENT_H_
