// Wire protocol of the TCP serving front end (docs/PROTOCOL.md).
//
// Length-prefixed binary frames over a byte stream, built from the same
// little-endian primitives as index persistence (util/serial.h) and held to
// the same serde discipline: every decoder is bounds-checked and returns
// Status::Corruption on truncated, oversized, or otherwise hostile bytes —
// a malformed frame can never crash the server.
//
//   frame   := magic:u32 ("PTIN") | payload_len:u32 | payload
//   payload := type:u8 | id:u64 | body(type)
//
// The unit a query frame carries is exactly engine/request.h's Request —
// the in-process Submit(Request) surface and the wire speak one struct.
// Frame ids are chosen by the client and echoed verbatim in the matching
// response, so clients may pipeline. See docs/PROTOCOL.md for the full
// field-by-field spec and the validation rules.

#ifndef PTI_NET_PROTOCOL_H_
#define PTI_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/match.h"
#include "engine/request.h"
#include "engine/serving_engine.h"
#include "util/span.h"
#include "util/status.h"

namespace pti {
namespace net {

/// First four bytes of every frame: "PTIN" on the wire (little-endian u32).
inline constexpr uint32_t kFrameMagic = 0x4E495450u;
/// Fixed frame header: magic + payload length.
inline constexpr size_t kFrameHeaderBytes = 8;
/// Hard cap on a frame payload; a larger declared length is Corruption
/// (also the server's defense against memory-exhaustion length prefixes).
inline constexpr uint32_t kMaxPayloadBytes = 1u << 20;
/// Caps on variable-length fields inside a payload.
inline constexpr size_t kMaxPatternBytes = 1u << 16;
inline constexpr size_t kMaxStringBytes = 4096;  // messages, reload paths

/// Bytes one Match occupies on the wire ({position:i64, probability:f64}).
inline constexpr size_t kWireMatchBytes = 16;
/// Most matches a kResult frame can carry: the payload cap minus the
/// worst-case fixed part (type + id + code + a maximal message with its
/// length prefix + the match count), divided by the wire Match size.
/// EncodeResult converts a larger result into a ResourceExhausted status,
/// so a huge result degrades to a clean per-request error instead of an
/// oversized frame the peer must treat as Corruption (killing the
/// connection and every pipelined response behind it).
inline constexpr size_t kMaxResultMatches =
    (kMaxPayloadBytes - (1 + 8 + 1 + (8 + kMaxStringBytes) + 8)) /
    kWireMatchBytes;

enum class FrameType : uint8_t {
  kQuery = 1,        ///< client -> server: one Request
  kResult = 2,       ///< server -> client: status + matches for an id
  kReload = 3,       ///< client -> server: hot-swap the served index
  kStats = 4,        ///< client -> server: counter snapshot request
  kStatsResult = 5,  ///< server -> client: engine counters for an id
};

/// Order of the u64 counters in a kStatsResult body. A decoder must accept
/// trailing values it does not know (forward compatibility); kStatsFields
/// is how many this build writes and understands.
inline constexpr size_t kStatsFields = 22;

/// One decoded frame payload, tagged by `type`; only the fields of the
/// matching type are meaningful. On a decode failure, `type` and `id` are
/// still set whenever they were readable, so a server can address an error
/// reply to the right request.
struct Frame {
  FrameType type = FrameType::kQuery;
  uint64_t id = 0;
  // kQuery
  Request request;
  // kResult
  Status::Code code = Status::Code::kOk;
  std::string message;
  std::vector<Match> matches;
  // kReload
  std::string path;
  bool use_mmap = true;
  // kStatsResult (order documented in docs/PROTOCOL.md)
  std::vector<uint64_t> stats;
};

// ---- Encoders: produce a complete wire frame (header + payload). Inputs
// are trusted (the caller built them); length caps are enforced by the
// decoder on the receiving side. The exceptions that would otherwise let a
// trusted caller build an undecodable or wrong frame are handled here:
// EncodeResult degrades an over-cap match list to ResourceExhausted, and
// EncodeQuery callers must pass a Request that ValidateForWire accepts.

/// Checks that a Request is representable on the wire: k must fit the u8
/// field (encoding would otherwise silently truncate — k=256 would arrive
/// as an exact-match query) and the pattern must fit kMaxPatternBytes.
/// NetClient rejects a request failing this with InvalidArgument before
/// framing it.
Status ValidateForWire(const Request& request);

std::string EncodeQuery(uint64_t id, const Request& request);
std::string EncodeResult(uint64_t id, const Status& status,
                         Span<const Match> matches);
std::string EncodeReload(uint64_t id, const std::string& path, bool use_mmap);
std::string EncodeStats(uint64_t id);
std::string EncodeStatsResult(uint64_t id, const ServingEngine::Stats& stats);

/// Validates a frame header (exactly kFrameHeaderBytes bytes) and extracts
/// the payload length. Corruption on a bad magic or an oversized length; a
/// stream where this fails is unframed and must be closed, not resynced.
Status DecodeHeader(const char* header, uint32_t* payload_len);

/// Decodes one frame payload (the payload_len bytes after the header).
/// Every field is bounds- and range-checked; trailing bytes are Corruption.
Status DecodeFrame(std::string_view payload, Frame* frame);

/// Reconstructs a Status from its wire encoding (kResult's code + message).
Status StatusFromWire(Status::Code code, std::string message);

/// Flattens an engine counter snapshot into the kStatsResult value order.
std::vector<uint64_t> FlattenStats(const ServingEngine::Stats& stats);

}  // namespace net
}  // namespace pti

#endif  // PTI_NET_PROTOCOL_H_
