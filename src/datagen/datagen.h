// Synthetic dataset generation following the paper's §8.1 protocol.
//
// The paper derives character-level pdfs from edit-distance-4 neighborhoods
// of protein strings (mouse+human concatenation, sigma = 22), with a fraction
// theta of uncertain positions and ~5 choices per uncertain position, and
// piece lengths approximately normal in [20, 45]. The authors' input file is
// not distributed, so we synthesize base text with the same alphabet and
// apply the same uncertainty protocol; every independent variable of the
// evaluation (n, theta, tau, tau_min, m) acts on the uncertainty structure,
// which is reproduced exactly (see DESIGN.md §5, substitutions).

#ifndef PTI_DATAGEN_DATAGEN_H_
#define PTI_DATAGEN_DATAGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/uncertain_string.h"

namespace pti {

struct DatasetOptions {
  /// Total number of positions (n).
  int64_t length = 100000;
  /// Fraction of uncertain positions (theta in the paper, 0.1 .. 0.5).
  double theta = 0.2;
  /// Choices per uncertain position (the paper's average is 5).
  int32_t choices = 5;
  /// Alphabet size (22 = amino acids as in §8.1).
  int32_t alphabet = 22;
  uint64_t seed = 42;
  /// Weight of the dominant (original) character at uncertain positions;
  /// drawn uniformly from [dominant_lo, dominant_hi] per position, mimicking
  /// the edit-neighborhood frequency concentration.
  double dominant_lo = 0.35;
  double dominant_hi = 0.7;
};

/// One uncertain string per the §8.1 protocol.
UncertainString GenerateUncertainString(const DatasetOptions& options);

/// A collection for the listing experiments: pieces with lengths
/// approximately normal in [20, 45] (as in §8.1) until `options.length`
/// total positions are emitted.
std::vector<UncertainString> GenerateCollection(const DatasetOptions& options);

/// Query workload: patterns of the given length sampled from high-probability
/// paths of `s` so that a constant fraction of them actually matches (half
/// follow the per-position argmax, half sample from the pdf).
std::vector<std::string> SamplePatterns(const UncertainString& s, size_t count,
                                        size_t length, uint64_t seed);

/// A batched-query workload with deliberate prefix sharing: patterns come in
/// ~16-pattern groups; each group is anchored at one position, shares that
/// anchor's argmax prefix of `prefix_length` characters, and varies the
/// remaining `length - prefix_length` characters by pdf sampling. Exercises
/// the locus-descent amortization of SubstringIndex::QueryBatch.
std::vector<std::string> SampleSharedPrefixPatterns(const UncertainString& s,
                                                    size_t count,
                                                    size_t prefix_length,
                                                    size_t length,
                                                    uint64_t seed);

/// The mirror workload for compact (FM-index) batching: patterns come in
/// ~16-pattern groups sharing an anchor's argmax *suffix* of
/// `suffix_length` characters, with the leading `length - suffix_length`
/// characters re-sampled per pattern. Backward search consumes patterns
/// right-to-left, so this exercises the suffix-resumed range extension of
/// SubstringIndex::QueryBatch the way SampleSharedPrefixPatterns exercises
/// tree mode's locus descent.
std::vector<std::string> SampleSharedSuffixPatterns(const UncertainString& s,
                                                    size_t count,
                                                    size_t suffix_length,
                                                    size_t length,
                                                    uint64_t seed);

/// Same, sampling across the members of a collection.
std::vector<std::string> SampleCollectionPatterns(
    const std::vector<UncertainString>& docs, size_t count, size_t length,
    uint64_t seed);

}  // namespace pti

#endif  // PTI_DATAGEN_DATAGEN_H_
