#include "datagen/datagen.h"

#include <algorithm>
#include <cassert>

#include "util/rng.h"

namespace pti {
namespace {

// Amino-acid alphabet (20 residues + B/Z ambiguity codes = 22, §8.1).
constexpr char kResidues[] = "ACDEFGHIKLMNPQRSTVWYBZ";

char Residue(int32_t idx) { return kResidues[idx]; }

// Appends `len` positions of uncertain protein text to `out`.
void AppendPositions(UncertainString* out, int64_t len,
                     const DatasetOptions& options, Rng* rng) {
  const int32_t sigma = std::min<int32_t>(
      options.alphabet, static_cast<int32_t>(sizeof(kResidues)) - 1);
  for (int64_t i = 0; i < len; ++i) {
    const int32_t base = static_cast<int32_t>(rng->Uniform(sigma));
    if (!rng->Bernoulli(options.theta) || options.choices <= 1) {
      out->AddPosition({{static_cast<uint8_t>(Residue(base)), 1.0}});
      continue;
    }
    // Uncertain position: the original character dominates; the remaining
    // mass is split over distinct neighbor characters with random weights
    // (mimicking normalized edit-neighborhood letter frequencies).
    const double dom =
        rng->UniformDouble(options.dominant_lo, options.dominant_hi);
    std::vector<int32_t> chars = {base};
    while (static_cast<int32_t>(chars.size()) < options.choices &&
           static_cast<int32_t>(chars.size()) < sigma) {
      const int32_t c = static_cast<int32_t>(rng->Uniform(sigma));
      if (std::find(chars.begin(), chars.end(), c) == chars.end()) {
        chars.push_back(c);
      }
    }
    std::vector<double> weights(chars.size() - 1);
    double wsum = 0;
    for (double& w : weights) {
      w = rng->UniformDouble(0.05, 1.0);
      wsum += w;
    }
    std::vector<CharOption> opts;
    opts.push_back({static_cast<uint8_t>(Residue(base)), dom});
    double assigned = dom;
    for (size_t k = 0; k < weights.size(); ++k) {
      double p = (1.0 - dom) * weights[k] / wsum;
      if (k + 1 == weights.size()) p = 1.0 - assigned;  // exact unit sum
      opts.push_back({static_cast<uint8_t>(Residue(chars[k + 1])), p});
      assigned += p;
    }
    out->AddPosition(std::move(opts));
  }
}

std::string WalkPattern(const UncertainString& s, int64_t start, size_t length,
                        bool argmax, Rng* rng) {
  std::string pattern;
  pattern.reserve(length);
  for (size_t k = 0; k < length; ++k) {
    const auto& opts = s.options(start + static_cast<int64_t>(k));
    size_t pick = 0;
    if (argmax) {
      for (size_t a = 1; a < opts.size(); ++a) {
        if (opts[a].prob > opts[pick].prob) pick = a;
      }
    } else {
      std::vector<double> w(opts.size());
      for (size_t a = 0; a < opts.size(); ++a) w[a] = opts[a].prob;
      pick = rng->Discrete(w);
    }
    pattern.push_back(static_cast<char>(opts[pick].ch));
  }
  return pattern;
}

}  // namespace

UncertainString GenerateUncertainString(const DatasetOptions& options) {
  Rng rng(options.seed);
  UncertainString s;
  AppendPositions(&s, options.length, options, &rng);
  return s;
}

std::vector<UncertainString> GenerateCollection(const DatasetOptions& options) {
  Rng rng(options.seed);
  std::vector<UncertainString> docs;
  int64_t emitted = 0;
  while (emitted < options.length) {
    const int64_t len = std::min<int64_t>(
        options.length - emitted,
        static_cast<int64_t>(rng.ClampedNormal(32.5, 6.0, 20, 45)));
    UncertainString doc;
    AppendPositions(&doc, len, options, &rng);
    emitted += len;
    docs.push_back(std::move(doc));
  }
  return docs;
}

std::vector<std::string> SamplePatterns(const UncertainString& s, size_t count,
                                        size_t length, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> out;
  if (s.size() < static_cast<int64_t>(length)) return out;
  out.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    const int64_t start = static_cast<int64_t>(
        rng.Uniform(static_cast<uint64_t>(s.size() - length + 1)));
    out.push_back(WalkPattern(s, start, length, (k % 2) == 0, &rng));
  }
  return out;
}

std::vector<std::string> SampleSharedPrefixPatterns(const UncertainString& s,
                                                    size_t count,
                                                    size_t prefix_length,
                                                    size_t length,
                                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> out;
  if (s.size() < static_cast<int64_t>(length) || prefix_length > length) {
    return out;
  }
  out.reserve(count);
  // A handful of anchor positions; all patterns from one anchor share its
  // argmax prefix, and their suffixes are re-sampled from the same pdf run.
  const size_t groups = std::max<size_t>(1, count / 16);
  for (size_t k = 0; k < count; ++k) {
    Rng group_rng(seed * 1000003 + (k % groups));
    const int64_t start = static_cast<int64_t>(group_rng.Uniform(
        static_cast<uint64_t>(s.size() - length + 1)));
    std::string p = WalkPattern(s, start, prefix_length, /*argmax=*/true,
                                &group_rng);
    p += WalkPattern(s, start + static_cast<int64_t>(prefix_length),
                     length - prefix_length, /*argmax=*/false, &rng);
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<std::string> SampleSharedSuffixPatterns(const UncertainString& s,
                                                    size_t count,
                                                    size_t suffix_length,
                                                    size_t length,
                                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> out;
  if (s.size() < static_cast<int64_t>(length) || suffix_length > length) {
    return out;
  }
  out.reserve(count);
  // As in SampleSharedPrefixPatterns, but the group-stable argmax part is
  // the pattern's tail: all patterns of one anchor end identically.
  const size_t groups = std::max<size_t>(1, count / 16);
  for (size_t k = 0; k < count; ++k) {
    Rng group_rng(seed * 1000003 + (k % groups));
    const int64_t start = static_cast<int64_t>(group_rng.Uniform(
        static_cast<uint64_t>(s.size() - length + 1)));
    std::string p = WalkPattern(s, start, length - suffix_length,
                                /*argmax=*/false, &rng);
    p += WalkPattern(s, start + static_cast<int64_t>(length - suffix_length),
                     suffix_length, /*argmax=*/true, &group_rng);
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<std::string> SampleCollectionPatterns(
    const std::vector<UncertainString>& docs, size_t count, size_t length,
    uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> out;
  std::vector<size_t> eligible;
  for (size_t d = 0; d < docs.size(); ++d) {
    if (docs[d].size() >= static_cast<int64_t>(length)) eligible.push_back(d);
  }
  if (eligible.empty()) return out;
  out.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    const auto& doc = docs[eligible[rng.Uniform(eligible.size())]];
    const int64_t start = static_cast<int64_t>(
        rng.Uniform(static_cast<uint64_t>(doc.size() - length + 1)));
    out.push_back(WalkPattern(doc, start, length, (k % 2) == 0, &rng));
  }
  return out;
}

}  // namespace pti
