// pti_client: command-line client for a `pti_cli serve --listen` server.
//
//   pti_client <host> <port> <patterns.txt|-> <tau> [--stats]
//
// The workload file uses the serve-script format: one pattern per line with
// an optional per-line tau, '#' comments, and directives —
//   !reload <index.pti>   hot-swap the served index (server-side path)
// Queries are answered in order; matches print to stdout as
// "<query#>\t<position>\t<probability>" (the pti_cli batch/serve format),
// so a local `pti_cli serve` run and a networked serve round-trip are
// diff-able. --stats fetches the engine counter snapshot after the
// workload and prints it to stderr.
//
// Exit codes mirror pti_cli: 0 success, 1 operational failure (connection
// refused, query failed, reload failed), 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/request.h"
#include "net/client.h"
#include "net/protocol.h"

namespace {

int Fail(const std::string& what) {
  std::fprintf(stderr, "error: %s\n", what.c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pti_client <host> <port> <patterns.txt|-> <tau> "
               "[--stats]\n");
  return 2;
}

bool ParseDouble(const char* s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s, &end);
  return end != s && *end == '\0';
}

// One workload step: a query or a !reload directive.
struct Step {
  bool is_reload = false;
  std::string reload_path;
  pti::Request request;
};

pti::Status ParseWorkload(const std::string& text, double default_tau,
                          std::vector<Step>* out) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ' ||
                             line.back() == '\t')) {
      line.pop_back();
    }
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    line.erase(0, first);
    if (line[0] == '#') continue;
    if (line[0] == '!') {
      if (line.rfind("!reload", 0) == 0) {
        const size_t value = line.find_first_not_of(" \t", 7);
        if ((line.size() > 7 && line[7] != ' ' && line[7] != '\t') ||
            value == std::string::npos) {
          return pti::Status::InvalidArgument(
              "bad directive on line " + std::to_string(lineno) +
              " (want !reload <index.pti>)");
        }
        Step step;
        step.is_reload = true;
        step.reload_path = line.substr(value);
        out->push_back(std::move(step));
        continue;
      }
      return pti::Status::InvalidArgument(
          "unknown directive on line " + std::to_string(lineno) +
          " (want !reload <index.pti>)");
    }
    Step step;
    step.request.tau = default_tau;
    const size_t space = line.find_first_of(" \t");
    if (space == std::string::npos) {
      step.request.pattern = line;
    } else {
      step.request.pattern = line.substr(0, space);
      const size_t value = line.find_first_not_of(" \t", space);
      if (value != std::string::npos &&
          !ParseDouble(line.c_str() + value, &step.request.tau)) {
        return pti::Status::InvalidArgument("bad tau on line " +
                                            std::to_string(lineno));
      }
    }
    out->push_back(std::move(step));
  }
  return pti::Status::OK();
}

pti::Status ReadFileOrStdin(const char* path, std::string* out) {
  if (std::strcmp(path, "-") == 0) {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    *out = buf.str();
    return pti::Status::OK();
  }
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return pti::Status::IOError(std::string("cannot read ") + path + ": " +
                                std::strerror(errno));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return pti::Status::IOError(std::string("cannot read ") + path);
  }
  *out = buf.str();
  return pti::Status::OK();
}

// The counter names, in net::FlattenStats order.
constexpr const char* kStatNames[pti::net::kStatsFields] = {
    "submitted",         "completed",           "shed",
    "rejected",          "cache_hits",          "cache_misses",
    "inflight_merges",   "batches",             "batched_queries",
    "fallback_queries",  "queue_depth",         "interactive_submitted",
    "interactive_completed", "interactive_shed", "batch_submitted",
    "batch_completed",   "batch_shed",          "cache_entries",
    "cache_bytes",       "cache_evictions",     "reloads",
    "generation"};

}  // namespace

int main(int argc, char** argv) {
  std::vector<const char*> pos;
  bool want_stats = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--stats") == 0) {
      want_stats = true;
    } else if (std::strncmp(argv[a], "--", 2) == 0) {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[a]);
      return Usage();
    } else {
      pos.push_back(argv[a]);
    }
  }
  if (pos.size() != 4) return Usage();
  char* end = nullptr;
  const long port = std::strtol(pos[1], &end, 10);
  if (end == pos[1] || *end != '\0' || port < 1 || port > 65535) {
    std::fprintf(stderr, "error: bad port '%s'\n", pos[1]);
    return Usage();
  }
  double tau = 0.0;
  if (!ParseDouble(pos[3], &tau)) {
    std::fprintf(stderr, "error: bad tau '%s'\n", pos[3]);
    return Usage();
  }

  std::string text;
  pti::Status st = ReadFileOrStdin(pos[2], &text);
  if (!st.ok()) return Fail(st.ToString());
  std::vector<Step> steps;
  st = ParseWorkload(text, tau, &steps);
  if (!st.ok()) return Fail(st.ToString());

  pti::net::NetClient client;
  st = client.Connect(pos[0], static_cast<int32_t>(port));
  if (!st.ok()) return Fail(st.ToString());

  size_t query_index = 0;
  size_t total = 0;
  size_t failed = 0;
  std::string first_error;
  for (const auto& step : steps) {
    if (step.is_reload) {
      const pti::Status reloaded = client.Reload(step.reload_path, true);
      if (!reloaded.ok()) {
        return Fail("reload " + step.reload_path + " failed: " +
                    reloaded.ToString());
      }
      std::fprintf(stderr, "reloaded %s\n", step.reload_path.c_str());
      continue;
    }
    std::vector<pti::Match> matches;
    const pti::Status answered = client.Query(step.request, &matches);
    if (!client.connected()) {
      // Transport-level failure: nothing more can be answered.
      return Fail("connection lost: " + answered.ToString());
    }
    if (!answered.ok()) {
      if (failed == 0) first_error = answered.ToString();
      ++failed;
    } else {
      for (const auto& m : matches) {
        std::printf("%zu\t%lld\t%.6f\n", query_index,
                    static_cast<long long>(m.position), m.probability);
      }
      total += matches.size();
    }
    ++query_index;
  }
  std::fprintf(stderr, "%zu quer%s, %zu match(es)\n", query_index,
               query_index == 1 ? "y" : "ies", total);

  if (want_stats) {
    std::vector<uint64_t> counters;
    st = client.QueryStats(&counters);
    if (!st.ok()) return Fail("stats: " + st.ToString());
    for (size_t i = 0; i < pti::net::kStatsFields && i < counters.size();
         ++i) {
      std::fprintf(stderr, "stat %-22s %llu\n", kStatNames[i],
                   static_cast<unsigned long long>(counters[i]));
    }
  }
  client.Close();
  if (failed > 0) {
    return Fail(std::to_string(failed) + " quer" +
                (failed == 1 ? "y" : "ies") + " failed; first: " +
                first_error);
  }
  return 0;
}
