// Quickstart: builds a probabilistic threshold index over the paper's
// running example (Figure 10 / Appendix B) and walks through the core API:
// exact queries, thresholds, top-k, counting, and save/load.
//
// Run:  ./quickstart

#include <cstdio>

#include "core/substring_index.h"

int main() {
  // The uncertain string S from the paper's Appendix B:
  //   position 0: Q with 0.7, S with 0.3
  //   position 1: Q with 0.3, P with 0.7
  //   position 2: P with 1.0
  //   position 3: A .4, F .3, P .2, Q .1
  pti::UncertainString s;
  s.AddPosition({{'Q', 0.7}, {'S', 0.3}});
  s.AddPosition({{'Q', 0.3}, {'P', 0.7}});
  s.AddPosition({{'P', 1.0}});
  s.AddPosition({{'A', 0.4}, {'F', 0.3}, {'P', 0.2}, {'Q', 0.1}});

  // Build an index that can answer queries for any tau >= tau_min.
  pti::IndexOptions options;
  options.transform.tau_min = 0.1;
  auto index = pti::SubstringIndex::Build(s, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }

  const auto stats = index->stats();
  std::printf("indexed %lld positions -> %zu maximal factors, %zu text chars\n",
              static_cast<long long>(stats.original_length),
              stats.num_factors, stats.transformed_length);

  // The paper's worked query: ("QP", 0.4) -> position 1 (1-based) with
  // probability 0.7 * 0.7 = 0.49. Our API is 0-based.
  std::vector<pti::Match> matches;
  pti::Status st = index->Query("QP", 0.4, &matches);
  if (!st.ok()) {
    std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nQuery (\"QP\", tau=0.4):\n");
  for (const pti::Match& m : matches) {
    std::printf("  position %lld with probability %.4f\n",
                static_cast<long long>(m.position), m.probability);
  }

  // Lowering tau surfaces the weaker occurrence at position 1 (0.3 * 1.0).
  (void)index->Query("QP", 0.2, &matches);
  std::printf("\nQuery (\"QP\", tau=0.2): %zu matches\n", matches.size());
  for (const pti::Match& m : matches) {
    std::printf("  position %lld with probability %.4f\n",
                static_cast<long long>(m.position), m.probability);
  }

  // Top-k: the single best occurrence.
  (void)index->QueryTopK("QP", 0.1, 1, &matches);
  std::printf("\nBest \"QP\" occurrence: position %lld (%.4f)\n",
              static_cast<long long>(matches[0].position),
              matches[0].probability);

  // Counting.
  size_t count = 0;
  (void)index->Count("P", 0.5, &count);
  std::printf("\"P\" occurs with probability >= 0.5 at %zu positions\n",
              count);

  // Persistence: serialize, reload, and query the clone.
  std::string blob;
  (void)index->Save(&blob);
  auto reloaded = pti::SubstringIndex::Load(blob);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  (void)reloaded->Query("QP", 0.4, &matches);
  std::printf("\nreloaded index (%zu bytes) answers: %zu match(es)\n",
              blob.size(), matches.size());

  // Queries below tau_min are rejected with a clean error, not wrong data.
  st = index->Query("QP", 0.05, &matches);
  std::printf("query below tau_min -> %s\n", st.ToString().c_str());
  return 0;
}
