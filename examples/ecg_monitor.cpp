// Automatic ECG annotation search (§2, "Automatic ECG annotations"): a
// Holter monitor emits one annotation symbol per heartbeat — N (normal),
// L/R (bundle branch block), A (atrial premature), V (premature ventricular
// contraction) — but the classifier is often unsure and reports a
// distribution over symbols. The beat stream is an uncertain string; a
// clinician's pattern like "NNAV" (two normal beats, an atrial premature
// beat, then a PVC) becomes a probabilistic threshold query.
//
// Run:  ./ecg_monitor

#include <cstdio>
#include <string>
#include <vector>

#include "core/substring_index.h"
#include "util/rng.h"

namespace {

// Simulates an annotated beat stream: mostly confident 'N' beats, with
// arrhythmia episodes where the classifier hesitates between symbols.
pti::UncertainString SimulateBeats(int64_t beats, uint64_t seed) {
  pti::Rng rng(seed);
  pti::UncertainString s;
  int64_t i = 0;
  while (i < beats) {
    // Occasionally inject the event of interest: N N A V with classifier
    // uncertainty on the A and V beats.
    if (i + 4 <= beats && rng.Bernoulli(0.01)) {
      s.AddPosition({{'N', 0.95}, {'L', 0.05}});
      s.AddPosition({{'N', 0.9}, {'R', 0.1}});
      s.AddPosition({{'A', 0.7}, {'N', 0.3}});
      s.AddPosition({{'V', 0.8}, {'N', 0.2}});
      i += 4;
      continue;
    }
    if (rng.Bernoulli(0.9)) {
      s.AddPosition({{'N', 1.0}});  // confident normal beat
    } else {
      // Ambiguous beat: classifier splits mass across plausible symbols.
      s.AddPosition({{'N', 0.6}, {'L', 0.2}, {'R', 0.2}});
    }
    ++i;
  }
  return s;
}

}  // namespace

int main() {
  const int64_t kBeats = 20000;
  const pti::UncertainString beats = SimulateBeats(kBeats, 42);

  pti::IndexOptions options;
  options.transform.tau_min = 0.05;
  auto index = pti::SubstringIndex::Build(beats, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  const auto stats = index->stats();
  std::printf("indexed %lld beats (%zu factors, %zu transformed chars)\n\n",
              static_cast<long long>(stats.original_length),
              stats.num_factors, stats.transformed_length);

  // The paper's §2 pattern: "NNAV" — two normal beats, an atrial premature
  // beat, then a premature ventricular contraction.
  for (const double tau : {0.5, 0.3, 0.1}) {
    std::vector<pti::Match> matches;
    const pti::Status st = index->Query("NNAV", tau, &matches);
    if (!st.ok()) {
      std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("NNAV episodes with confidence >= %.2f: %zu\n", tau,
                matches.size());
    for (size_t k = 0; k < matches.size() && k < 5; ++k) {
      std::printf("    beat %lld  (p = %.3f)\n",
                  static_cast<long long>(matches[k].position),
                  matches[k].probability);
    }
    if (matches.size() > 5) std::printf("    ...\n");
  }

  // Alerting workflow: only the top episodes, most probable first.
  std::vector<pti::Match> top;
  (void)index->QueryTopK("NNAV", 0.1, 3, &top);
  std::printf("\ntop-3 most probable NNAV episodes:\n");
  for (const auto& m : top) {
    std::printf("    beat %lld  (p = %.3f)\n",
                static_cast<long long>(m.position), m.probability);
  }

  // Longer compound pattern: an NNAV episode followed by recovery beats.
  std::vector<pti::Match> compound;
  (void)index->Query("NNAVNN", 0.1, &compound);
  std::printf("\nNNAVNN (episode + recovery) occurrences at tau 0.1: %zu\n",
              compound.size());
  return 0;
}
