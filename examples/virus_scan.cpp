// Fuzzy virus-signature scan (§6, "Practical motivation"): a collection of
// files with fuzzy/uncertain content is modeled as a collection of uncertain
// strings; scanning for a signature with confidence tau is exactly the
// uncertain string listing problem — one query lists the files to
// quarantine, in time proportional to the number of hits, not the corpus.
//
// Run:  ./virus_scan

#include <cstdio>
#include <string>
#include <vector>

#include "core/listing_index.h"
#include "util/rng.h"

namespace {

// A "file" whose bytes were recovered with per-byte confidence (e.g. from a
// packed or partially corrupted sample): each byte keeps its value with
// probability `fidelity` and smears the rest onto lookalike bytes.
pti::UncertainString FuzzyFile(const std::string& content, double fidelity,
                               uint64_t seed) {
  pti::Rng rng(seed);
  pti::UncertainString s;
  for (const char c : content) {
    if (rng.Bernoulli(0.8)) {
      s.AddPosition({{static_cast<uint8_t>(c), 1.0}});
    } else {
      const uint8_t alt1 = static_cast<uint8_t>(c ^ 0x20);  // case flip
      const uint8_t alt2 = static_cast<uint8_t>(c + 1);
      const double rest = 1.0 - fidelity;
      s.AddPosition({{static_cast<uint8_t>(c), fidelity},
                     {alt1, rest * 0.7},
                     {alt2, rest * 0.3}});
    }
  }
  return s;
}

std::string RandomPayload(size_t length, uint64_t seed) {
  pti::Rng rng(seed);
  std::string payload;
  for (size_t i = 0; i < length; ++i) {
    payload.push_back(static_cast<char>('a' + rng.Uniform(26)));
  }
  return payload;
}

}  // namespace

int main() {
  const std::string signature = "xekvzqpl";  // the byte signature to hunt

  // Build a small corpus: two infected files (one recovered cleanly, one
  // with low fidelity), and eight clean files.
  std::vector<std::string> names;
  std::vector<pti::UncertainString> files;
  {
    std::string f = RandomPayload(400, 1);
    f.replace(100, signature.size(), signature);
    names.push_back("invoice.exe (clean recovery)");
    files.push_back(FuzzyFile(f, 0.95, 11));

    std::string g = RandomPayload(400, 2);
    g.replace(250, signature.size(), signature);
    names.push_back("backup.dll (noisy recovery)");
    files.push_back(FuzzyFile(g, 0.55, 12));

    for (int k = 0; k < 8; ++k) {
      names.push_back("file_" + std::to_string(k) + ".bin");
      files.push_back(FuzzyFile(RandomPayload(400, 100 + k), 0.9, 200 + k));
    }
  }

  pti::ListingOptions options;
  options.transform.tau_min = 0.01;
  auto index = pti::ListingIndex::Build(files, options);
  if (!index.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  const auto stats = index->stats();
  std::printf("scanning %d files (%lld bytes, %zu factors)\n\n",
              stats.num_docs, static_cast<long long>(stats.total_positions),
              stats.num_factors);

  for (const double tau : {0.6, 0.05, 0.01}) {
    std::vector<pti::DocMatch> hits;
    const pti::Status st = index->Query(signature, tau, &hits);
    if (!st.ok()) {
      std::fprintf(stderr, "scan failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("signature match confidence >= %.2f -> %zu file(s):\n", tau,
                hits.size());
    for (const auto& h : hits) {
      std::printf("    QUARANTINE %-30s (confidence %.4f)\n",
                  names[h.doc].c_str(), h.relevance);
    }
  }

  // Aggregated evidence across multiple partial matches (noisy-OR): useful
  // when one strong hit or several weak hits should both raise a flag.
  std::vector<pti::DocMatch> flagged;
  (void)index->QueryWithMetric(signature.substr(0, 4), 0.5,
                               pti::RelevanceMetric::kNoisyOr, &flagged);
  std::printf("\nnoisy-OR evidence for the 4-byte prefix at tau 0.5: %zu "
              "file(s)\n", flagged.size());
  for (const auto& h : flagged) {
    std::printf("    %-30s (evidence %.4f)\n", names[h.doc].c_str(),
                h.relevance);
  }
  return 0;
}
