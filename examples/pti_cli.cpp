// pti_cli: command-line front end for the library.
//
//   pti_cli build         <string.pus> <index.pti> [tau_min]   substring index
//   pti_cli build-special <string.pus> <index.pti>             §4 special index
//   pti_cli build-approx  <string.pus> <index.pti> [tau_min [epsilon]]
//   pti_cli build-listing <index.pti> <tau_min> <doc.pus>...   §6 listing index
//   pti_cli query <index.pti> <pattern> <tau>    threshold query (any kind;
//                                                the kind is read from the file)
//   pti_cli topk  <index.pti> <pattern> <tau> <k>  k best occurrences (substring)
//   pti_cli stat  <index.pti>                    index statistics (any kind)
//   pti_cli gen   <n> <theta> <seed> <out.pus>   §8.1 synthetic data
//
// .pus files use the text format of core/usformat.h (one position per line,
// char=prob pairs, optional @corr directives). .pti files use the versioned
// container format of core/serde.h; every index kind round-trips through
// save (build*) and load (query/topk/stat).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/approx_index.h"
#include "core/listing_index.h"
#include "core/serde.h"
#include "core/special_index.h"
#include "core/substring_index.h"
#include "core/usformat.h"
#include "datagen/datagen.h"

namespace {

int Fail(const std::string& what) {
  std::fprintf(stderr, "error: %s\n", what.c_str());
  return 1;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << data;
  return out.good();
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pti_cli build         <string.pus> <index.pti> [tau_min]\n"
               "  pti_cli build-special <string.pus> <index.pti>\n"
               "  pti_cli build-approx  <string.pus> <index.pti> [tau_min [epsilon]]\n"
               "  pti_cli build-listing <index.pti> <tau_min> <doc.pus>...\n"
               "  pti_cli query <index.pti> <pattern> <tau>\n"
               "  pti_cli topk  <index.pti> <pattern> <tau> <k>\n"
               "  pti_cli stat  <index.pti>\n"
               "  pti_cli gen   <n> <theta> <seed> <out.pus>\n");
  return 2;
}

pti::StatusOr<pti::UncertainString> ReadUncertain(
    const std::string& path, bool require_unit_sums = true) {
  std::string text;
  if (!ReadFile(path, &text)) {
    return pti::Status::IOError("cannot read " + path);
  }
  return pti::ParseUncertainString(text, require_unit_sums);
}

/// Reads an index file and reports its kind; `blob` receives the raw bytes
/// for the kind-specific Load.
pti::StatusOr<pti::serde::IndexKind> ReadIndexBlob(const std::string& path,
                                                   std::string* blob) {
  if (!ReadFile(path, blob)) {
    return pti::Status::IOError("cannot read " + path);
  }
  return pti::serde::PeekKind(*blob);
}

int SaveIndexFile(const pti::Status& save_status, const std::string& blob,
                  const std::string& path) {
  if (!save_status.ok()) return Fail(save_status.ToString());
  if (!WriteFile(path, blob)) return Fail("cannot write " + path);
  return 0;
}

void PrintMatches(const std::vector<pti::Match>& matches) {
  for (const auto& m : matches) {
    std::printf("%lld\t%.6f\n", static_cast<long long>(m.position),
                m.probability);
  }
  std::fprintf(stderr, "%zu match(es)\n", matches.size());
}

int CmdBuild(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto s = ReadUncertain(argv[2]);
  if (!s.ok()) return Fail(s.status().ToString());
  pti::IndexOptions options;
  if (argc >= 5) options.transform.tau_min = std::atof(argv[4]);
  auto index = pti::SubstringIndex::Build(*s, options);
  if (!index.ok()) return Fail(index.status().ToString());
  std::string blob;
  const int rc = SaveIndexFile(index->Save(&blob), blob, argv[3]);
  if (rc != 0) return rc;
  const auto stats = index->stats();
  std::printf("indexed %lld positions (tau_min %.4g): %zu factors, "
              "%zu chars, %zu bytes on disk\n",
              static_cast<long long>(stats.original_length),
              options.transform.tau_min, stats.num_factors,
              stats.transformed_length, blob.size());
  return 0;
}

int CmdBuildSpecial(int argc, char** argv) {
  if (argc < 4) return Usage();
  // §4 special strings keep per-position mass below 1 (the "no occurrence"
  // event), so the unit-sum invariant does not apply.
  auto s = ReadUncertain(argv[2], /*require_unit_sums=*/false);
  if (!s.ok()) return Fail(s.status().ToString());
  auto index = pti::SpecialIndex::Build(*s, pti::SpecialIndexOptions{});
  if (!index.ok()) return Fail(index.status().ToString());
  std::string blob;
  const int rc = SaveIndexFile(index->Save(&blob), blob, argv[3]);
  if (rc != 0) return rc;
  const auto stats = index->stats();
  std::printf("indexed %lld positions (special): %zu bytes on disk\n",
              static_cast<long long>(stats.length), blob.size());
  return 0;
}

int CmdBuildApprox(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto s = ReadUncertain(argv[2]);
  if (!s.ok()) return Fail(s.status().ToString());
  pti::ApproxOptions options;
  if (argc >= 5) options.transform.tau_min = std::atof(argv[4]);
  if (argc >= 6) options.epsilon = std::atof(argv[5]);
  auto index = pti::ApproxIndex::Build(*s, options);
  if (!index.ok()) return Fail(index.status().ToString());
  std::string blob;
  const int rc = SaveIndexFile(index->Save(&blob), blob, argv[3]);
  if (rc != 0) return rc;
  const auto stats = index->stats();
  std::printf("indexed %lld positions (tau_min %.4g, epsilon %.4g): "
              "%zu links, %zu bytes on disk\n",
              static_cast<long long>(stats.original_length),
              options.transform.tau_min, options.epsilon, stats.num_links,
              blob.size());
  return 0;
}

int CmdBuildListing(int argc, char** argv) {
  if (argc < 5) return Usage();
  pti::ListingOptions options;
  options.transform.tau_min = std::atof(argv[3]);
  std::vector<pti::UncertainString> docs;
  for (int a = 4; a < argc; ++a) {
    auto s = ReadUncertain(argv[a]);
    if (!s.ok()) return Fail(s.status().ToString());
    docs.push_back(std::move(s).value());
  }
  auto index = pti::ListingIndex::Build(docs, options);
  if (!index.ok()) return Fail(index.status().ToString());
  std::string blob;
  const int rc = SaveIndexFile(index->Save(&blob), blob, argv[2]);
  if (rc != 0) return rc;
  const auto stats = index->stats();
  std::printf("indexed %d documents (%lld positions, tau_min %.4g): "
              "%zu bytes on disk\n",
              stats.num_docs, static_cast<long long>(stats.total_positions),
              options.transform.tau_min, blob.size());
  return 0;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 5) return Usage();
  std::string blob;
  auto kind = ReadIndexBlob(argv[2], &blob);
  if (!kind.ok()) return Fail(kind.status().ToString());
  const std::string pattern = argv[3];
  const double tau = std::atof(argv[4]);
  pti::Status st;
  std::vector<pti::Match> matches;
  switch (*kind) {
    case pti::serde::IndexKind::kSubstring: {
      auto index = pti::SubstringIndex::Load(blob);
      if (!index.ok()) return Fail(index.status().ToString());
      st = index->Query(pattern, tau, &matches);
      break;
    }
    case pti::serde::IndexKind::kApprox: {
      auto index = pti::ApproxIndex::Load(blob);
      if (!index.ok()) return Fail(index.status().ToString());
      st = index->Query(pattern, tau, &matches);
      break;
    }
    case pti::serde::IndexKind::kSpecial: {
      auto index = pti::SpecialIndex::Load(blob);
      if (!index.ok()) return Fail(index.status().ToString());
      st = index->Query(pattern, tau, &matches);
      break;
    }
    case pti::serde::IndexKind::kListing: {
      auto index = pti::ListingIndex::Load(blob);
      if (!index.ok()) return Fail(index.status().ToString());
      std::vector<pti::DocMatch> docs;
      st = index->Query(pattern, tau, &docs);
      if (!st.ok()) return Fail(st.ToString());
      for (const auto& d : docs) {
        std::printf("doc %d\t%.6f\n", d.doc, d.relevance);
      }
      std::fprintf(stderr, "%zu document(s)\n", docs.size());
      return 0;
    }
  }
  if (!st.ok()) return Fail(st.ToString());
  PrintMatches(matches);
  return 0;
}

int CmdTopK(int argc, char** argv) {
  if (argc < 6) return Usage();
  std::string blob;
  auto kind = ReadIndexBlob(argv[2], &blob);
  if (!kind.ok()) return Fail(kind.status().ToString());
  if (*kind != pti::serde::IndexKind::kSubstring) {
    return Fail("topk requires a substring index, got a " +
                std::string(pti::serde::KindName(*kind)) + " index");
  }
  auto index = pti::SubstringIndex::Load(blob);
  if (!index.ok()) return Fail(index.status().ToString());
  std::vector<pti::Match> matches;
  const pti::Status st = index->QueryTopK(
      argv[3], std::atof(argv[4]), static_cast<size_t>(std::atoll(argv[5])),
      &matches);
  if (!st.ok()) return Fail(st.ToString());
  for (const auto& m : matches) {
    std::printf("%lld\t%.6f\n", static_cast<long long>(m.position),
                m.probability);
  }
  return 0;
}

int CmdStat(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string blob;
  auto kind = ReadIndexBlob(argv[2], &blob);
  if (!kind.ok()) return Fail(kind.status().ToString());
  std::printf("index kind           %s\n", pti::serde::KindName(*kind));
  std::printf("bytes on disk        %zu\n", blob.size());
  switch (*kind) {
    case pti::serde::IndexKind::kSubstring: {
      auto index = pti::SubstringIndex::Load(blob);
      if (!index.ok()) return Fail(index.status().ToString());
      const auto stats = index->stats();
      std::printf("original length      %lld\n",
                  static_cast<long long>(stats.original_length));
      std::printf("maximal factors      %zu\n", stats.num_factors);
      std::printf("transformed length   %zu\n", stats.transformed_length);
      std::printf("short depth limit K  %d\n", stats.short_depth_limit);
      std::printf("suffix tree nodes    %zu\n", stats.num_tree_nodes);
      std::printf("tau_min              %.6g\n",
                  index->options().transform.tau_min);
      std::printf("memory usage (bytes) %zu\n", index->MemoryUsage());
      break;
    }
    case pti::serde::IndexKind::kApprox: {
      auto index = pti::ApproxIndex::Load(blob);
      if (!index.ok()) return Fail(index.status().ToString());
      const auto stats = index->stats();
      std::printf("original length      %lld\n",
                  static_cast<long long>(stats.original_length));
      std::printf("transformed length   %zu\n", stats.transformed_length);
      std::printf("marked nodes         %zu\n", stats.num_marked_nodes);
      std::printf("links                %zu\n", stats.num_links);
      std::printf("memory usage (bytes) %zu\n", index->MemoryUsage());
      break;
    }
    case pti::serde::IndexKind::kSpecial: {
      auto index = pti::SpecialIndex::Load(blob);
      if (!index.ok()) return Fail(index.status().ToString());
      const auto stats = index->stats();
      std::printf("length               %lld\n",
                  static_cast<long long>(stats.length));
      std::printf("short depth limit K  %d\n", stats.short_depth_limit);
      std::printf("suffix tree nodes    %zu\n", stats.num_tree_nodes);
      std::printf("memory usage (bytes) %zu\n", index->MemoryUsage());
      break;
    }
    case pti::serde::IndexKind::kListing: {
      auto index = pti::ListingIndex::Load(blob);
      if (!index.ok()) return Fail(index.status().ToString());
      const auto stats = index->stats();
      std::printf("documents            %d\n", stats.num_docs);
      std::printf("total positions      %lld\n",
                  static_cast<long long>(stats.total_positions));
      std::printf("maximal factors      %zu\n", stats.num_factors);
      std::printf("transformed length   %zu\n", stats.transformed_length);
      std::printf("short depth limit K  %d\n", stats.short_depth_limit);
      std::printf("memory usage (bytes) %zu\n", index->MemoryUsage());
      break;
    }
  }
  return 0;
}

int CmdGen(int argc, char** argv) {
  if (argc < 6) return Usage();
  pti::DatasetOptions options;
  options.length = std::atoll(argv[2]);
  options.theta = std::atof(argv[3]);
  options.seed = static_cast<uint64_t>(std::atoll(argv[4]));
  const pti::UncertainString s = pti::GenerateUncertainString(options);
  if (!WriteFile(argv[5], pti::FormatUncertainString(s))) {
    return Fail(std::string("cannot write ") + argv[5]);
  }
  std::printf("wrote %lld positions (theta %.2f) to %s\n",
              static_cast<long long>(s.size()), options.theta, argv[5]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "build") return CmdBuild(argc, argv);
  if (cmd == "build-special") return CmdBuildSpecial(argc, argv);
  if (cmd == "build-approx") return CmdBuildApprox(argc, argv);
  if (cmd == "build-listing") return CmdBuildListing(argc, argv);
  if (cmd == "query") return CmdQuery(argc, argv);
  if (cmd == "topk") return CmdTopK(argc, argv);
  if (cmd == "stat") return CmdStat(argc, argv);
  if (cmd == "gen") return CmdGen(argc, argv);
  return Usage();
}
