// pti_cli: command-line front end for the library.
//
//   pti_cli build         <string.pus> <index.pti> [tau_min]   substring index
//                         [--compact] [--format=V] FM-index locator, smaller
//   pti_cli build-special <string.pus> <index.pti>             §4 special index
//   pti_cli build-approx  <string.pus> <index.pti> [tau_min [epsilon]]
//   pti_cli build-listing <index.pti> <tau_min> <doc.pus>...   §6 listing index
//   pti_cli build-sharded <string.pus> <index.pti> [tau_min]   sharded engine
//                         [--shards=K] [--overlap=N] [--threads=T] [--compact]
//                         [--format=V]
//   pti_cli query <index.pti> <pattern> <tau> [--mmap]
//                                                threshold query (any kind;
//                                                the kind is read from the file)
//   pti_cli fuzzy <index.pti> <pattern> <tau> [--k=N] [--mode=mismatch|edit]
//                 [--mmap]                       approximate threshold query
//                                                (substring or sharded index):
//                                                positions where some variant
//                                                within k errors clears tau
//   pti_cli batch <index.pti> <patterns.txt> <tau> [--threads=T] [--mmap]
//                                                batched queries (substring or
//                                                sharded index); the file has
//                                                one pattern per line with an
//                                                optional per-line tau
//   pti_cli serve <index.pti> <patterns.txt|-> <tau> [--clients=N]
//                 [--batch-max=N] [--linger-us=N] [--cache-mb=N] [--threads=T]
//                 [--mmap]                       async serving engine: N client
//                                                threads submit the workload
//                                                concurrently; results print in
//                                                input order, engine stats go
//                                                to stderr; "-" reads stdin.
//                                                A "!reload <index.pti>" line
//                                                in the workload hot-swaps the
//                                                served index between segments
//   pti_cli serve <index.pti> --listen=<port> [--batch-max=N] [--linger-us=N]
//                 [--cache-mb=N] [--threads=T] [--max-pending=N] [--mmap]
//                                                serve over TCP instead of a
//                                                local workload: binds
//                                                127.0.0.1:<port> (0 picks an
//                                                ephemeral port), prints the
//                                                bound port on stdout, serves
//                                                pti_client traffic until
//                                                stdin closes, then drains and
//                                                prints stats to stderr
//   pti_cli topk  <index.pti> <pattern> <tau> <k> [--mmap]
//                                                k best occurrences (substring)
//   pti_cli stat  <index.pti> [--mmap]           index statistics (any kind)
//   pti_cli gen   <n> <theta> <seed> <out.pus>   §8.1 synthetic data
//
// .pus files use the text format of core/usformat.h (one position per line,
// char=prob pairs, optional @corr directives). .pti files use the versioned
// container format of core/serde.h; every index kind round-trips through
// save (build*) and load (query/batch/topk/stat). Builds write version 3
// (the aligned zero-copy layout) unless pinned with --format=2 to the
// portable interchange format; --mmap maps the index file instead of
// reading it, so v3 loads share the page cache and skip the heap copy.
// Index files are written to <path>.tmp and renamed into place, so a crash
// or full disk never leaves a half-written index under the final name.
//
// Exit codes: 0 on success, 1 on an operational failure (I/O, corrupt index,
// failed build or query), 2 on a usage error (unknown command, missing or
// malformed arguments). Errors and diagnostics go to stderr; stdout carries
// only the machine-readable results.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/approx_index.h"
#include "core/listing_index.h"
#include "core/serde.h"
#include "core/special_index.h"
#include "core/substring_index.h"
#include "core/usformat.h"
#include "datagen/datagen.h"
#include "engine/serving_engine.h"
#include "engine/sharded_index.h"
#include "net/server.h"

namespace {

int Fail(const std::string& what) {
  std::fprintf(stderr, "error: %s\n", what.c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pti_cli build         <string.pus> <index.pti> [tau_min] [--compact]\n"
               "                        [--format=2|3] [--threads=T] [--timings]\n"
               "  pti_cli build-special <string.pus> <index.pti>\n"
               "  pti_cli build-approx  <string.pus> <index.pti> [tau_min [epsilon]]\n"
               "  pti_cli build-listing <index.pti> <tau_min> <doc.pus>...\n"
               "  pti_cli build-sharded <string.pus> <index.pti> [tau_min]\n"
               "                        [--shards=K] [--overlap=N] [--threads=T] [--compact]\n"
               "                        [--format=2|3] [--timings]\n"
               "  pti_cli query <index.pti> <pattern> <tau> [--mmap]\n"
               "  pti_cli fuzzy <index.pti> <pattern> <tau> [--k=N] "
               "[--mode=mismatch|edit]\n"
               "                [--mmap]\n"
               "  pti_cli batch <index.pti> <patterns.txt> <tau> [--threads=T] [--mmap]\n"
               "  pti_cli serve <index.pti> <patterns.txt|-> <tau> [--clients=N]\n"
               "                [--batch-max=N] [--linger-us=N] [--cache-mb=N]\n"
               "                [--threads=T] [--mmap]\n"
               "  pti_cli serve <index.pti> --listen=<port> [--batch-max=N]\n"
               "                [--linger-us=N] [--cache-mb=N] [--threads=T]\n"
               "                [--max-pending=N] [--mmap]\n"
               "  pti_cli topk  <index.pti> <pattern> <tau> <k> [--mmap]\n"
               "  pti_cli stat  <index.pti> [--mmap]\n"
               "  pti_cli gen   <n> <theta> <seed> <out.pus>\n");
  return 2;
}

/// Usage-class error: names the problem, prints the usage text, exits 2.
int UsageError(const std::string& what) {
  std::fprintf(stderr, "error: %s\n", what.c_str());
  return Usage();
}

// Strict numeric parsing: the whole token must be consumed (atof-style
// silent zeroes turned "0.x5" typos into tau=0 queries).
bool ParseDouble(const char* s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s, &end);
  return end != s && *end == '\0';
}

bool ParseInt64(const char* s, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(s, &end, 10);
  return end != s && *end == '\0';
}

/// Splits argv[2..) into positional arguments and the --flag=value options
/// the calling command supports. Unknown flags — including real flags a
/// command does not consume — are a usage error (reported by the caller via
/// the false return), so a silently ignored option can never masquerade as
/// having taken effect.
struct Flags {
  int64_t shards = 0;
  int64_t overlap = 0;
  int64_t threads = 0;
  bool threads_set = false;
  bool compact = false;
  // serve defaults; see ServingOptions for the engine-side semantics.
  int64_t clients = 4;
  int64_t batch_max = 64;
  int64_t linger_us = 200;
  int64_t cache_mb = 16;
  // serve --listen: TCP port (0 = ephemeral); set iff the flag was given.
  int64_t listen = 0;
  bool listen_set = false;
  // bound per admission lane before load shedding; see ServingOptions.
  int64_t max_pending = 65536;
  // fuzzy defaults; see core/fuzzy.h.
  int64_t k = 1;
  std::string mode = "mismatch";
  // container version for build commands; see core/serde.h.
  int64_t format = pti::serde::kContainerVersion;
  // read-side: mmap the index file instead of copying it into memory.
  bool mmap = false;
  // build-side: print the per-stage construction breakdown to stderr.
  bool timings = false;
};

constexpr unsigned kFlagShards = 1u << 0;
constexpr unsigned kFlagOverlap = 1u << 1;
constexpr unsigned kFlagThreads = 1u << 2;
constexpr unsigned kFlagCompact = 1u << 3;
constexpr unsigned kFlagClients = 1u << 4;
constexpr unsigned kFlagBatchMax = 1u << 5;
constexpr unsigned kFlagLingerUs = 1u << 6;
constexpr unsigned kFlagCacheMb = 1u << 7;
constexpr unsigned kFlagK = 1u << 8;
constexpr unsigned kFlagMode = 1u << 9;
constexpr unsigned kFlagFormat = 1u << 10;
constexpr unsigned kFlagMmap = 1u << 11;
constexpr unsigned kFlagTimings = 1u << 12;
constexpr unsigned kFlagListen = 1u << 13;
constexpr unsigned kFlagMaxPending = 1u << 14;

bool SplitArgs(int argc, char** argv, unsigned allowed,
               std::vector<const char*>* positional, Flags* flags,
               std::string* bad) {
  for (int a = 2; a < argc; ++a) {
    const char* arg = argv[a];
    if (std::strncmp(arg, "--", 2) != 0) {
      positional->push_back(arg);
      continue;
    }
    int64_t* target = nullptr;
    const char* value = nullptr;
    unsigned flag = 0;
    if (std::strcmp(arg, "--compact") == 0) {
      if ((allowed & kFlagCompact) == 0) {
        *bad = std::string("flag not supported by this command: ") + arg;
        return false;
      }
      flags->compact = true;
      continue;
    }
    if (std::strcmp(arg, "--mmap") == 0) {
      if ((allowed & kFlagMmap) == 0) {
        *bad = std::string("flag not supported by this command: ") + arg;
        return false;
      }
      flags->mmap = true;
      continue;
    }
    if (std::strcmp(arg, "--timings") == 0) {
      if ((allowed & kFlagTimings) == 0) {
        *bad = std::string("flag not supported by this command: ") + arg;
        return false;
      }
      flags->timings = true;
      continue;
    }
    if (std::strncmp(arg, "--mode=", 7) == 0) {
      // The one string-valued flag: bypass the shared int parsing below.
      if ((allowed & kFlagMode) == 0) {
        *bad = std::string("flag not supported by this command: ") + arg;
        return false;
      }
      flags->mode = arg + 7;
      if (flags->mode != "mismatch" && flags->mode != "edit") {
        *bad = std::string("bad value in ") + arg +
               " (want mismatch or edit)";
        return false;
      }
      continue;
    }
    if (std::strncmp(arg, "--shards=", 9) == 0) {
      target = &flags->shards;
      value = arg + 9;
      flag = kFlagShards;
    } else if (std::strncmp(arg, "--overlap=", 10) == 0) {
      target = &flags->overlap;
      value = arg + 10;
      flag = kFlagOverlap;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      target = &flags->threads;
      value = arg + 10;
      flag = kFlagThreads;
    } else if (std::strncmp(arg, "--clients=", 10) == 0) {
      target = &flags->clients;
      value = arg + 10;
      flag = kFlagClients;
    } else if (std::strncmp(arg, "--batch-max=", 12) == 0) {
      target = &flags->batch_max;
      value = arg + 12;
      flag = kFlagBatchMax;
    } else if (std::strncmp(arg, "--linger-us=", 12) == 0) {
      target = &flags->linger_us;
      value = arg + 12;
      flag = kFlagLingerUs;
    } else if (std::strncmp(arg, "--cache-mb=", 11) == 0) {
      target = &flags->cache_mb;
      value = arg + 11;
      flag = kFlagCacheMb;
    } else if (std::strncmp(arg, "--k=", 4) == 0) {
      target = &flags->k;
      value = arg + 4;
      flag = kFlagK;
    } else if (std::strncmp(arg, "--listen=", 9) == 0) {
      target = &flags->listen;
      value = arg + 9;
      flag = kFlagListen;
    } else if (std::strncmp(arg, "--max-pending=", 14) == 0) {
      target = &flags->max_pending;
      value = arg + 14;
      flag = kFlagMaxPending;
    } else if (std::strncmp(arg, "--format=", 9) == 0) {
      target = &flags->format;
      value = arg + 9;
      flag = kFlagFormat;
    } else {
      *bad = std::string("unknown flag ") + arg;
      return false;
    }
    if ((allowed & flag) == 0) {
      *bad = std::string("flag not supported by this command: ") + arg;
      return false;
    }
    // Flag values land in int32 option fields; out-of-range input must be a
    // loud error, not a silent wrap to some other configuration.
    if (!ParseInt64(value, target) || *target < 0 ||
        *target > std::numeric_limits<int32_t>::max()) {
      *bad = std::string("bad value in ") + arg;
      return false;
    }
    if (flag == kFlagThreads) flags->threads_set = true;
    if (flag == kFlagListen) flags->listen_set = true;
    if (flag == kFlagFormat &&
        (flags->format < pti::serde::kInterchangeVersion ||
         flags->format > pti::serde::kContainerVersion)) {
      *bad = std::string("bad value in ") + arg + " (want 2 or 3)";
      return false;
    }
  }
  return true;
}

/// Reads `path` whole. The stream state is checked *after* the read, so a
/// failure mid-file (EIO, truncated NFS read, ...) surfaces as an IOError
/// with the errno cause instead of silently returning a short buffer that a
/// later Load would misdiagnose as container corruption.
pti::Status ReadFile(const std::string& path, std::string* out) {
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return pti::Status::IOError("cannot read " + path + ": " +
                                std::strerror(errno));
  }
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) {
    return pti::Status::IOError("cannot read " + path + ": " +
                                std::strerror(errno));
  }
  in.seekg(0, std::ios::beg);
  out->resize(static_cast<size_t>(size));
  if (size > 0) in.read(&(*out)[0], size);
  if (!in || in.gcount() != size) {
    return pti::Status::IOError("cannot read " + path + ": " +
                                (errno != 0 ? std::strerror(errno)
                                            : "short read"));
  }
  return pti::Status::OK();
}

/// Writes `data` to `<path>.tmp`, then renames it over `path`, so an
/// interrupted or failed write (crash, full disk) can never leave a torn
/// file under the final name. Flush and close failures are real write
/// failures (that is where buffered errors surface) and are propagated.
pti::Status WriteFile(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  errno = 0;
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) {
    return pti::Status::IOError("cannot write " + tmp + ": " +
                                std::strerror(errno));
  }
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  out.close();
  if (!out) {
    const std::string cause =
        errno != 0 ? std::strerror(errno) : "write failed";
    std::remove(tmp.c_str());
    return pti::Status::IOError("cannot write " + tmp + ": " + cause);
  }
  errno = 0;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string cause = std::strerror(errno);
    std::remove(tmp.c_str());
    return pti::Status::IOError("cannot write " + path +
                                " (rename from temporary): " + cause);
  }
  return pti::Status::OK();
}

pti::StatusOr<pti::UncertainString> ReadUncertain(
    const std::string& path, bool require_unit_sums = true) {
  std::string text;
  PTI_RETURN_IF_ERROR(ReadFile(path, &text));
  return pti::ParseUncertainString(text, require_unit_sums);
}

/// Opens an index file and reports its kind; `blob` receives the bytes —
/// mmap'd when `use_mmap` (zero-copy for v3 containers, page cache shared
/// across processes), read into an owned heap blob otherwise. Either way
/// the BlobPtr is what the kind-specific Load pins as backing.
pti::StatusOr<pti::serde::IndexKind> OpenIndexBlob(const std::string& path,
                                                   bool use_mmap,
                                                   pti::serde::BlobPtr* blob) {
  auto opened = use_mmap ? pti::serde::MapFile(path)
                         : pti::serde::ReadFileToBlob(path);
  if (!opened.ok()) {
    return pti::Status::IOError("cannot read " + path + ": " +
                                opened.status().message());
  }
  *blob = std::move(opened).value();
  return pti::serde::PeekKind((*blob)->view());
}

int SaveIndexFile(const pti::Status& save_status, const std::string& blob,
                  const std::string& path) {
  if (!save_status.ok()) return Fail(save_status.ToString());
  const pti::Status written = WriteFile(path, blob);
  if (!written.ok()) return Fail(written.ToString());
  return 0;
}

/// Per-stage construction breakdown (--timings). Goes to stderr so piped
/// stdout output stays machine-readable.
void PrintTimings(const pti::BuildTimings& t) {
  std::fprintf(stderr,
               "timings: transform %.3f ms, sa %.3f ms, lcp %.3f ms, "
               "fm %.3f ms, derived %.3f ms, rmq %.3f ms\n",
               t.transform_ms, t.sa_ms, t.lcp_ms, t.fm_ms, t.derived_ms,
               t.rmq_ms);
}

void PrintMatches(const std::vector<pti::Match>& matches) {
  for (const auto& m : matches) {
    std::printf("%lld\t%.6f\n", static_cast<long long>(m.position),
                m.probability);
  }
  std::fprintf(stderr, "%zu match(es)\n", matches.size());
}

int CmdBuild(int argc, char** argv) {
  std::vector<const char*> pos;
  Flags flags;
  std::string bad;
  if (!SplitArgs(argc, argv,
                 kFlagCompact | kFlagFormat | kFlagThreads | kFlagTimings,
                 &pos, &flags, &bad)) {
    return UsageError(bad);
  }
  if (pos.size() < 2 || pos.size() > 3) return Usage();
  auto s = ReadUncertain(pos[0]);
  if (!s.ok()) return Fail(s.status().ToString());
  pti::IndexOptions options;
  if (pos.size() >= 3 &&
      !ParseDouble(pos[2], &options.transform.tau_min)) {
    return UsageError(std::string("bad tau_min '") + pos[2] + "'");
  }
  options.compact = flags.compact;
  pti::BuildTimings timings;
  pti::BuildOptions build;
  if (flags.threads_set) build.threads = static_cast<int32_t>(flags.threads);
  if (flags.timings) build.timings = &timings;
  auto index = pti::SubstringIndex::Build(*s, options, build);
  if (!index.ok()) return Fail(index.status().ToString());
  if (flags.timings) PrintTimings(timings);
  std::string blob;
  const int rc = SaveIndexFile(
      index->Save(&blob, static_cast<uint32_t>(flags.format)), blob, pos[1]);
  if (rc != 0) return rc;
  const auto stats = index->stats();
  std::printf("indexed %lld positions (tau_min %.4g%s): %zu factors, "
              "%zu chars, %zu bytes on disk\n",
              static_cast<long long>(stats.original_length),
              options.transform.tau_min,
              options.compact ? ", compact" : "", stats.num_factors,
              stats.transformed_length, blob.size());
  return 0;
}

int CmdBuildSpecial(int argc, char** argv) {
  if (argc != 4) return Usage();
  // §4 special strings keep per-position mass below 1 (the "no occurrence"
  // event), so the unit-sum invariant does not apply.
  auto s = ReadUncertain(argv[2], /*require_unit_sums=*/false);
  if (!s.ok()) return Fail(s.status().ToString());
  auto index = pti::SpecialIndex::Build(*s, pti::SpecialIndexOptions{});
  if (!index.ok()) return Fail(index.status().ToString());
  std::string blob;
  const int rc = SaveIndexFile(index->Save(&blob), blob, argv[3]);
  if (rc != 0) return rc;
  const auto stats = index->stats();
  std::printf("indexed %lld positions (special): %zu bytes on disk\n",
              static_cast<long long>(stats.length), blob.size());
  return 0;
}

int CmdBuildApprox(int argc, char** argv) {
  if (argc < 4 || argc > 6) return Usage();
  auto s = ReadUncertain(argv[2]);
  if (!s.ok()) return Fail(s.status().ToString());
  pti::ApproxOptions options;
  if (argc >= 5 &&
      !ParseDouble(argv[4], &options.transform.tau_min)) {
    return UsageError(std::string("bad tau_min '") + argv[4] + "'");
  }
  if (argc >= 6 && !ParseDouble(argv[5], &options.epsilon)) {
    return UsageError(std::string("bad epsilon '") + argv[5] + "'");
  }
  auto index = pti::ApproxIndex::Build(*s, options);
  if (!index.ok()) return Fail(index.status().ToString());
  std::string blob;
  const int rc = SaveIndexFile(index->Save(&blob), blob, argv[3]);
  if (rc != 0) return rc;
  const auto stats = index->stats();
  std::printf("indexed %lld positions (tau_min %.4g, epsilon %.4g): "
              "%zu links, %zu bytes on disk\n",
              static_cast<long long>(stats.original_length),
              options.transform.tau_min, options.epsilon, stats.num_links,
              blob.size());
  return 0;
}

int CmdBuildListing(int argc, char** argv) {
  if (argc < 5) return Usage();
  pti::ListingOptions options;
  if (!ParseDouble(argv[3], &options.transform.tau_min)) {
    return UsageError(std::string("bad tau_min '") + argv[3] + "'");
  }
  std::vector<pti::UncertainString> docs;
  for (int a = 4; a < argc; ++a) {
    auto s = ReadUncertain(argv[a]);
    if (!s.ok()) return Fail(s.status().ToString());
    docs.push_back(std::move(s).value());
  }
  auto index = pti::ListingIndex::Build(docs, options);
  if (!index.ok()) return Fail(index.status().ToString());
  std::string blob;
  const int rc = SaveIndexFile(index->Save(&blob), blob, argv[2]);
  if (rc != 0) return rc;
  const auto stats = index->stats();
  std::printf("indexed %d documents (%lld positions, tau_min %.4g): "
              "%zu bytes on disk\n",
              stats.num_docs, static_cast<long long>(stats.total_positions),
              options.transform.tau_min, blob.size());
  return 0;
}

int CmdBuildSharded(int argc, char** argv) {
  std::vector<const char*> pos;
  Flags flags;
  std::string bad;
  if (!SplitArgs(argc, argv,
                 kFlagShards | kFlagOverlap | kFlagThreads | kFlagCompact |
                     kFlagFormat | kFlagTimings,
                 &pos, &flags, &bad)) {
    return UsageError(bad);
  }
  if (pos.size() < 2 || pos.size() > 3) return Usage();
  auto s = ReadUncertain(pos[0]);
  if (!s.ok()) return Fail(s.status().ToString());
  pti::ShardedIndexOptions options;
  if (pos.size() >= 3 &&
      !ParseDouble(pos[2], &options.index.transform.tau_min)) {
    return UsageError(std::string("bad tau_min '") + pos[2] + "'");
  }
  options.num_shards = static_cast<int32_t>(flags.shards);
  options.overlap = static_cast<int32_t>(flags.overlap);
  options.num_threads = static_cast<int32_t>(flags.threads);
  options.index.compact = flags.compact;
  pti::BuildTimings timings;
  if (flags.timings) options.build_timings = &timings;
  auto index = pti::ShardedIndex::Build(*s, options);
  if (!index.ok()) return Fail(index.status().ToString());
  if (flags.timings) PrintTimings(timings);
  std::string blob;
  const int rc = SaveIndexFile(
      index->Save(&blob, static_cast<uint32_t>(flags.format)), blob, pos[1]);
  if (rc != 0) return rc;
  const auto stats = index->stats();
  std::printf("indexed %lld positions (tau_min %.4g): %d shards, "
              "overlap %d, %zu factors, %zu chars, %zu bytes on disk\n",
              static_cast<long long>(stats.original_length),
              options.index.transform.tau_min, stats.num_shards,
              stats.overlap, stats.num_factors, stats.transformed_length,
              blob.size());
  return 0;
}

int CmdQuery(int argc, char** argv) {
  std::vector<const char*> pos;
  Flags flags;
  std::string bad;
  if (!SplitArgs(argc, argv, kFlagMmap, &pos, &flags, &bad)) {
    return UsageError(bad);
  }
  if (pos.size() != 3) return Usage();
  pti::serde::BlobPtr blob;
  auto kind = OpenIndexBlob(pos[0], flags.mmap, &blob);
  if (!kind.ok()) return Fail(kind.status().ToString());
  const std::string pattern = pos[1];
  double tau = 0.0;
  if (!ParseDouble(pos[2], &tau)) {
    return UsageError(std::string("bad tau '") + pos[2] + "'");
  }
  pti::Status st;
  std::vector<pti::Match> matches;
  switch (*kind) {
    case pti::serde::IndexKind::kSubstring: {
      auto index = pti::SubstringIndex::Load(blob->view(), blob);
      if (!index.ok()) return Fail(index.status().ToString());
      st = index->Query(pattern, tau, &matches);
      break;
    }
    case pti::serde::IndexKind::kSharded: {
      auto index = pti::ShardedIndex::Load(blob->view(), 1, blob);
      if (!index.ok()) return Fail(index.status().ToString());
      st = index->Query(pattern, tau, &matches);
      break;
    }
    case pti::serde::IndexKind::kApprox: {
      auto index = pti::ApproxIndex::Load(blob->view());
      if (!index.ok()) return Fail(index.status().ToString());
      st = index->Query(pattern, tau, &matches);
      break;
    }
    case pti::serde::IndexKind::kSpecial: {
      auto index = pti::SpecialIndex::Load(blob->view());
      if (!index.ok()) return Fail(index.status().ToString());
      st = index->Query(pattern, tau, &matches);
      break;
    }
    case pti::serde::IndexKind::kListing: {
      auto index = pti::ListingIndex::Load(blob->view());
      if (!index.ok()) return Fail(index.status().ToString());
      std::vector<pti::DocMatch> docs;
      st = index->Query(pattern, tau, &docs);
      if (!st.ok()) return Fail(st.ToString());
      for (const auto& d : docs) {
        std::printf("doc %d\t%.6f\n", d.doc, d.relevance);
      }
      std::fprintf(stderr, "%zu document(s)\n", docs.size());
      return 0;
    }
  }
  if (!st.ok()) return Fail(st.ToString());
  PrintMatches(matches);
  return 0;
}

// Approximate threshold query: report positions where some variant of the
// pattern within k errors (mismatches or edits, per --mode) clears tau.
int CmdFuzzy(int argc, char** argv) {
  std::vector<const char*> pos;
  Flags flags;
  std::string bad;
  if (!SplitArgs(argc, argv, kFlagK | kFlagMode | kFlagMmap, &pos, &flags,
                 &bad)) {
    return UsageError(bad);
  }
  if (pos.size() != 3) return Usage();
  const std::string pattern = pos[1];
  double tau = 0.0;
  if (!ParseDouble(pos[2], &tau)) {
    return UsageError(std::string("bad tau '") + pos[2] + "'");
  }
  pti::FuzzyParams params;
  params.k = static_cast<int32_t>(flags.k);
  params.metric = flags.mode == "edit" ? pti::FuzzyMetric::kEdit
                                       : pti::FuzzyMetric::kMismatch;
  pti::serde::BlobPtr blob;
  auto kind = OpenIndexBlob(pos[0], flags.mmap, &blob);
  if (!kind.ok()) return Fail(kind.status().ToString());
  pti::Status st;
  std::vector<pti::Match> matches;
  switch (*kind) {
    case pti::serde::IndexKind::kSubstring: {
      auto index = pti::SubstringIndex::Load(blob->view(), blob);
      if (!index.ok()) return Fail(index.status().ToString());
      st = index->QueryFuzzy(pattern, tau, params, &matches);
      break;
    }
    case pti::serde::IndexKind::kSharded: {
      auto index = pti::ShardedIndex::Load(blob->view(), 1, blob);
      if (!index.ok()) return Fail(index.status().ToString());
      st = index->QueryFuzzy(pattern, tau, params, &matches);
      break;
    }
    default:
      return Fail("fuzzy requires a substring or sharded index, got a " +
                  std::string(pti::serde::KindName(*kind)) + " index");
  }
  if (!st.ok()) return Fail(st.ToString());
  PrintMatches(matches);
  return 0;
}

// Patterns file: one pattern per line, optionally followed by whitespace and
// a per-line tau overriding the command-line default. '#' comments and blank
// lines are skipped.
pti::Status ParsePatternsFile(const std::string& text, double default_tau,
                              std::vector<pti::BatchQuery>* out) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ' ||
                             line.back() == '\t')) {
      line.pop_back();
    }
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    line.erase(0, first);
    if (line[0] == '#') continue;
    pti::BatchQuery q;
    q.tau = default_tau;
    const size_t space = line.find_first_of(" \t");
    if (space == std::string::npos) {
      q.pattern = line;
    } else {
      q.pattern = line.substr(0, space);
      const size_t value = line.find_first_not_of(" \t", space);
      if (value != std::string::npos &&
          !ParseDouble(line.c_str() + value, &q.tau)) {
        return pti::Status::InvalidArgument(
            "bad tau on line " + std::to_string(lineno));
      }
    }
    out->push_back(std::move(q));
  }
  return pti::Status::OK();
}

/// A serve-workload directive: after the first `after_query` queries have
/// been submitted, hot-swap the served index to `path`.
struct ServeDirective {
  size_t after_query = 0;
  std::string path;
};

// Serve workload: the batch patterns format plus "!directive" lines.
// "!reload <index.pti>" splits the workload into segments; the engine is
// atomically reloaded between them (in-flight requests drain on the
// generation they started with).
pti::Status ParseServeScript(const std::string& text, double default_tau,
                             std::vector<pti::BatchQuery>* out,
                             std::vector<ServeDirective>* directives) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  std::string plain;  // non-directive lines, re-parsed as a patterns file
  size_t queries_so_far = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string trimmed = line;
    while (!trimmed.empty() &&
           (trimmed.back() == '\r' || trimmed.back() == ' ' ||
            trimmed.back() == '\t')) {
      trimmed.pop_back();
    }
    const size_t first = trimmed.find_first_not_of(" \t");
    if (first != std::string::npos) trimmed.erase(0, first);
    if (!trimmed.empty() && trimmed[0] == '!') {
      if (trimmed.rfind("!reload", 0) == 0) {
        const size_t value = trimmed.find_first_not_of(" \t", 7);
        if (trimmed.size() > 7 && trimmed[7] != ' ' && trimmed[7] != '\t') {
          return pti::Status::InvalidArgument(
              "unknown directive on line " + std::to_string(lineno) +
              " (want !reload <index.pti>)");
        }
        if (value == std::string::npos) {
          return pti::Status::InvalidArgument(
              "!reload needs an index path on line " +
              std::to_string(lineno));
        }
        ServeDirective d;
        d.after_query = queries_so_far;
        d.path = trimmed.substr(value);
        directives->push_back(std::move(d));
        continue;
      }
      return pti::Status::InvalidArgument(
          "unknown directive on line " + std::to_string(lineno) +
          " (want !reload <index.pti>)");
    }
    // Count the queries this line contributes (0 for comments/blanks) by
    // running the shared parser on it, so directive boundaries stay in sync
    // with ParsePatternsFile's exact skipping rules.
    std::vector<pti::BatchQuery> one;
    pti::Status st = ParsePatternsFile(line, default_tau, &one);
    if (!st.ok()) {
      return pti::Status::InvalidArgument(
          "bad tau on line " + std::to_string(lineno));
    }
    queries_so_far += one.size();
    for (auto& q : one) out->push_back(std::move(q));
  }
  return pti::Status::OK();
}

int PrintBatchResults(const std::vector<pti::BatchQuery>& queries,
                      const std::vector<std::vector<pti::Match>>& results) {
  size_t total = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    for (const auto& m : results[i]) {
      std::printf("%zu\t%lld\t%.6f\n", i,
                  static_cast<long long>(m.position), m.probability);
    }
    total += results[i].size();
  }
  std::fprintf(stderr, "%zu quer%s, %zu match(es)\n", queries.size(),
               queries.size() == 1 ? "y" : "ies", total);
  return 0;
}

int CmdBatch(int argc, char** argv) {
  std::vector<const char*> pos;
  Flags flags;
  std::string bad;
  if (!SplitArgs(argc, argv, kFlagThreads | kFlagMmap, &pos, &flags, &bad)) {
    return UsageError(bad);
  }
  if (pos.size() != 3) return Usage();
  double tau = 0.0;
  if (!ParseDouble(pos[2], &tau)) {
    return UsageError(std::string("bad tau '") + pos[2] + "'");
  }
  pti::serde::BlobPtr blob;
  auto kind = OpenIndexBlob(pos[0], flags.mmap, &blob);
  if (!kind.ok()) return Fail(kind.status().ToString());
  std::string patterns_text;
  const pti::Status read = ReadFile(pos[1], &patterns_text);
  if (!read.ok()) return Fail(read.ToString());
  std::vector<pti::BatchQuery> queries;
  const pti::Status parsed = ParsePatternsFile(patterns_text, tau, &queries);
  if (!parsed.ok()) return Fail(parsed.ToString());
  std::vector<std::vector<pti::Match>> results;
  switch (*kind) {
    case pti::serde::IndexKind::kSubstring: {
      if (flags.threads_set) {
        return Fail("--threads applies to sharded indexes; " +
                    std::string(pos[0]) + " holds a substring index");
      }
      auto index = pti::SubstringIndex::Load(blob->view(), blob);
      if (!index.ok()) return Fail(index.status().ToString());
      const pti::Status st = index->QueryBatch(queries, &results);
      if (!st.ok()) return Fail(st.ToString());
      break;
    }
    case pti::serde::IndexKind::kSharded: {
      auto index = pti::ShardedIndex::Load(
          blob->view(), static_cast<int32_t>(flags.threads), blob);
      if (!index.ok()) return Fail(index.status().ToString());
      const pti::Status st = index->QueryBatch(queries, &results);
      if (!st.ok()) return Fail(st.ToString());
      break;
    }
    default:
      return Fail("batch requires a substring or sharded index, got a " +
                  std::string(pti::serde::KindName(*kind)) + " index");
  }
  return PrintBatchResults(queries, results);
}

// Serve over TCP (--listen): bind loopback, print the bound port on stdout
// (the readiness handshake scripts and tests wait for), serve pti_client
// traffic until stdin closes, then stop the listener, drain the engine, and
// print both layers' stats to stderr.
int RunServeListener(pti::ServingEngine* engine, int32_t port) {
  pti::net::NetServerOptions net_options;
  net_options.port = port;
  pti::net::NetServer server(engine, net_options);
  const pti::Status started = server.Start();
  if (!started.ok()) return Fail(started.ToString());
  std::printf("%d\n", server.port());
  std::fflush(stdout);
  std::fprintf(stderr, "serving on 127.0.0.1:%d (close stdin to stop)\n",
               server.port());
  // Block until the parent closes stdin — the conventional way a harness
  // or operator shell scopes the server's lifetime.
  std::string line;
  while (std::getline(std::cin, line)) {
  }
  server.Stop();
  engine->Stop();
  const auto net = server.stats();
  const auto stats = engine->stats();
  std::fprintf(
      stderr,
      "net: %llu conn(s) (%llu rejected), %llu frames in, %llu out, "
      "%llu protocol error(s), %llu quer%s, %llu reload(s)\n"
      "serving: %llu submitted, %llu completed, %llu shed, %llu batches, "
      "%llu cache hits, %llu merges, generation %llu\n",
      static_cast<unsigned long long>(net.connections_accepted),
      static_cast<unsigned long long>(net.connections_rejected),
      static_cast<unsigned long long>(net.frames_received),
      static_cast<unsigned long long>(net.frames_sent),
      static_cast<unsigned long long>(net.protocol_errors),
      static_cast<unsigned long long>(net.queries),
      net.queries == 1 ? "y" : "ies",
      static_cast<unsigned long long>(net.reloads),
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.inflight_merges),
      static_cast<unsigned long long>(stats.generation));
  return 0;
}

// Serving front end: N client threads submit the workload concurrently to a
// ServingEngine; the engine coalesces them into micro-batches and serves
// repeats from its (pattern, tau) cache. Results print in input order, in
// the same format as `batch`; requests that fail individually are reported
// on stderr without suppressing their batch-mates' output. With --listen
// the workload instead arrives over TCP (RunServeListener above).
int CmdServe(int argc, char** argv) {
  std::vector<const char*> pos;
  Flags flags;
  std::string bad;
  if (!SplitArgs(argc, argv,
                 kFlagClients | kFlagBatchMax | kFlagLingerUs | kFlagCacheMb |
                     kFlagThreads | kFlagMmap | kFlagListen | kFlagMaxPending,
                 &pos, &flags, &bad)) {
    return UsageError(bad);
  }
  const bool listen_mode = flags.listen_set;
  if (pos.size() != (listen_mode ? size_t{1} : size_t{3})) return Usage();
  if (flags.clients < 1 || flags.clients > 256) {
    return UsageError("bad value in --clients (want 1..256)");
  }
  if (flags.listen > 65535) {
    return UsageError("bad value in --listen (want 0..65535)");
  }
  double tau = 0.0;
  if (!listen_mode && !ParseDouble(pos[2], &tau)) {
    return UsageError(std::string("bad tau '") + pos[2] + "'");
  }
  pti::serde::BlobPtr blob;
  auto kind = OpenIndexBlob(pos[0], flags.mmap, &blob);
  if (!kind.ok()) return Fail(kind.status().ToString());

  std::vector<pti::BatchQuery> queries;
  std::vector<ServeDirective> directives;
  if (!listen_mode) {
    std::string patterns_text;
    if (std::strcmp(pos[1], "-") == 0) {
      std::ostringstream buf;
      buf << std::cin.rdbuf();
      patterns_text = buf.str();
    } else {
      const pti::Status read = ReadFile(pos[1], &patterns_text);
      if (!read.ok()) return Fail(read.ToString());
    }
    const pti::Status parsed =
        ParseServeScript(patterns_text, tau, &queries, &directives);
    if (!parsed.ok()) return Fail(parsed.ToString());
  }

  pti::ServingOptions options;
  options.max_batch = static_cast<int32_t>(flags.batch_max);
  options.linger_us = flags.linger_us;
  options.num_workers = static_cast<int32_t>(flags.threads);
  options.cache_bytes = static_cast<size_t>(flags.cache_mb) << 20;
  options.max_pending = static_cast<int32_t>(flags.max_pending);

  std::unique_ptr<pti::ServingEngine> engine;
  switch (*kind) {
    case pti::serde::IndexKind::kSubstring: {
      auto index = pti::SubstringIndex::Load(blob->view(), blob);
      if (!index.ok()) return Fail(index.status().ToString());
      engine.reset(
          new pti::ServingEngine(std::move(index).value(), options));
      break;
    }
    case pti::serde::IndexKind::kSharded: {
      auto index = pti::ShardedIndex::Load(
          blob->view(), static_cast<int32_t>(flags.threads), blob);
      if (!index.ok()) return Fail(index.status().ToString());
      engine.reset(
          new pti::ServingEngine(std::move(index).value(), options));
      break;
    }
    default:
      return Fail("serve requires a substring or sharded index, got a " +
                  std::string(pti::serde::KindName(*kind)) + " index");
  }

  if (listen_mode) {
    return RunServeListener(engine.get(), static_cast<int32_t>(flags.listen));
  }

  const size_t clients =
      std::min<size_t>(static_cast<size_t>(flags.clients),
                       queries.empty() ? 1 : queries.size());
  std::vector<std::future<pti::ServingEngine::Result>> futures(queries.size());
  // Submits queries [begin, end) from `clients` concurrent client threads.
  const auto submit_range = [&](size_t begin, size_t end) {
    if (begin >= end) return;
    const size_t n = std::min<size_t>(clients, end - begin);
    std::vector<std::thread> client_threads;
    client_threads.reserve(n);
    for (size_t c = 0; c < n; ++c) {
      client_threads.emplace_back([c, n, begin, end, &queries, &futures,
                                   &engine] {
        for (size_t i = begin + c; i < end; i += n) {
          futures[i] = engine->Submit({queries[i].pattern, queries[i].tau});
        }
      });
    }
    for (auto& t : client_threads) t.join();
  };

  // Each !reload directive ends a submission segment: everything before it
  // is in flight (and drains on its starting generation), then the engine
  // swaps, then the next segment is submitted. A failed reload keeps the
  // previous generation serving and is reported as an operational failure
  // at exit — after the whole workload has been answered.
  size_t submitted = 0;
  size_t reload_failures = 0;
  std::string first_reload_error;
  for (const auto& d : directives) {
    submit_range(submitted, d.after_query);
    submitted = d.after_query;
    const pti::Status st = engine->Reload(d.path, flags.mmap);
    if (!st.ok()) {
      if (reload_failures == 0) first_reload_error = st.ToString();
      ++reload_failures;
      std::fprintf(stderr,
                   "reload %s failed (previous generation still serving): "
                   "%s\n",
                   d.path.c_str(), st.ToString().c_str());
    } else {
      std::fprintf(
          stderr, "reloaded %s (generation %llu)\n", d.path.c_str(),
          static_cast<unsigned long long>(engine->stats().generation));
    }
  }
  submit_range(submitted, queries.size());

  size_t total = 0;
  size_t failed = 0;
  std::string first_error;
  for (size_t i = 0; i < futures.size(); ++i) {
    pti::ServingEngine::Result result = futures[i].get();
    if (!result.status.ok()) {
      if (failed == 0) first_error = result.status.ToString();
      ++failed;
      continue;
    }
    for (const auto& m : result.matches) {
      std::printf("%zu\t%lld\t%.6f\n", i,
                  static_cast<long long>(m.position), m.probability);
    }
    total += result.matches.size();
  }
  const auto stats = engine->stats();
  std::fprintf(stderr,
               "%zu quer%s, %zu match(es), %zu client(s)\n"
               "serving: %llu batches (%llu batched), %llu cache hits, "
               "%llu merges, %llu fallbacks, %llu reload(s), "
               "generation %llu\n",
               queries.size(), queries.size() == 1 ? "y" : "ies", total,
               clients, static_cast<unsigned long long>(stats.batches),
               static_cast<unsigned long long>(stats.batched_queries),
               static_cast<unsigned long long>(stats.cache_hits),
               static_cast<unsigned long long>(stats.inflight_merges),
               static_cast<unsigned long long>(stats.fallback_queries),
               static_cast<unsigned long long>(stats.reloads),
               static_cast<unsigned long long>(stats.generation));
  if (failed > 0) {
    return Fail(std::to_string(failed) + " request(s) failed; first: " +
                first_error);
  }
  if (reload_failures > 0) {
    return Fail(std::to_string(reload_failures) +
                " reload(s) failed; first: " + first_reload_error);
  }
  return 0;
}

int CmdTopK(int argc, char** argv) {
  std::vector<const char*> pos;
  Flags flags;
  std::string bad;
  if (!SplitArgs(argc, argv, kFlagMmap, &pos, &flags, &bad)) {
    return UsageError(bad);
  }
  if (pos.size() != 4) return Usage();
  pti::serde::BlobPtr blob;
  auto kind = OpenIndexBlob(pos[0], flags.mmap, &blob);
  if (!kind.ok()) return Fail(kind.status().ToString());
  if (*kind != pti::serde::IndexKind::kSubstring) {
    return Fail("topk requires a substring index, got a " +
                std::string(pti::serde::KindName(*kind)) + " index");
  }
  double tau = 0.0;
  int64_t k = 0;
  if (!ParseDouble(pos[2], &tau)) {
    return UsageError(std::string("bad tau '") + pos[2] + "'");
  }
  if (!ParseInt64(pos[3], &k) || k < 0) {
    return UsageError(std::string("bad k '") + pos[3] + "'");
  }
  auto index = pti::SubstringIndex::Load(blob->view(), blob);
  if (!index.ok()) return Fail(index.status().ToString());
  std::vector<pti::Match> matches;
  const pti::Status st =
      index->QueryTopK(pos[1], tau, static_cast<size_t>(k), &matches);
  if (!st.ok()) return Fail(st.ToString());
  for (const auto& m : matches) {
    std::printf("%lld\t%.6f\n", static_cast<long long>(m.position),
                m.probability);
  }
  std::fprintf(stderr, "%zu match(es)\n", matches.size());
  return 0;
}

int CmdStat(int argc, char** argv) {
  std::vector<const char*> pos;
  Flags flags;
  std::string bad;
  if (!SplitArgs(argc, argv, kFlagMmap, &pos, &flags, &bad)) {
    return UsageError(bad);
  }
  if (pos.size() != 1) return Usage();
  pti::serde::BlobPtr blob;
  auto kind = OpenIndexBlob(pos[0], flags.mmap, &blob);
  if (!kind.ok()) return Fail(kind.status().ToString());
  std::printf("index kind           %s\n", pti::serde::KindName(*kind));
  std::printf("bytes on disk        %zu\n", blob->view().size());
  {
    auto version = pti::serde::PeekVersion(blob->view());
    if (version.ok()) {
      std::printf("container version    %u%s\n", *version,
                  blob->mapped() ? " (mmap)" : "");
    }
  }
  switch (*kind) {
    case pti::serde::IndexKind::kSubstring: {
      auto index = pti::SubstringIndex::Load(blob->view(), blob);
      if (!index.ok()) return Fail(index.status().ToString());
      const auto stats = index->stats();
      std::printf("original length      %lld\n",
                  static_cast<long long>(stats.original_length));
      std::printf("maximal factors      %zu\n", stats.num_factors);
      std::printf("transformed length   %zu\n", stats.transformed_length);
      std::printf("short depth limit K  %d\n", stats.short_depth_limit);
      std::printf("mode                 %s\n",
                  index->options().compact ? "compact (FM-index)"
                                           : "suffix tree");
      std::printf("suffix tree nodes    %zu\n", stats.num_tree_nodes);
      std::printf("tau_min              %.6g\n",
                  index->options().transform.tau_min);
      std::printf("memory usage (bytes) %zu\n", index->MemoryUsage());
      break;
    }
    case pti::serde::IndexKind::kSharded: {
      auto index = pti::ShardedIndex::Load(blob->view(), 1, blob);
      if (!index.ok()) return Fail(index.status().ToString());
      const auto stats = index->stats();
      std::printf("original length      %lld\n",
                  static_cast<long long>(stats.original_length));
      std::printf("shards               %d\n", stats.num_shards);
      std::printf("overlap              %d\n", stats.overlap);
      std::printf("max pattern length   %d\n", stats.overlap + 1);
      std::printf("maximal factors      %zu\n", stats.num_factors);
      std::printf("transformed length   %zu\n", stats.transformed_length);
      std::printf("tau_min              %.6g\n",
                  index->options().index.transform.tau_min);
      std::printf("memory usage (bytes) %zu\n", index->MemoryUsage());
      break;
    }
    case pti::serde::IndexKind::kApprox: {
      auto index = pti::ApproxIndex::Load(blob->view());
      if (!index.ok()) return Fail(index.status().ToString());
      const auto stats = index->stats();
      std::printf("original length      %lld\n",
                  static_cast<long long>(stats.original_length));
      std::printf("transformed length   %zu\n", stats.transformed_length);
      std::printf("marked nodes         %zu\n", stats.num_marked_nodes);
      std::printf("links                %zu\n", stats.num_links);
      std::printf("memory usage (bytes) %zu\n", index->MemoryUsage());
      break;
    }
    case pti::serde::IndexKind::kSpecial: {
      auto index = pti::SpecialIndex::Load(blob->view());
      if (!index.ok()) return Fail(index.status().ToString());
      const auto stats = index->stats();
      std::printf("length               %lld\n",
                  static_cast<long long>(stats.length));
      std::printf("short depth limit K  %d\n", stats.short_depth_limit);
      std::printf("suffix tree nodes    %zu\n", stats.num_tree_nodes);
      std::printf("memory usage (bytes) %zu\n", index->MemoryUsage());
      break;
    }
    case pti::serde::IndexKind::kListing: {
      auto index = pti::ListingIndex::Load(blob->view());
      if (!index.ok()) return Fail(index.status().ToString());
      const auto stats = index->stats();
      std::printf("documents            %d\n", stats.num_docs);
      std::printf("total positions      %lld\n",
                  static_cast<long long>(stats.total_positions));
      std::printf("maximal factors      %zu\n", stats.num_factors);
      std::printf("transformed length   %zu\n", stats.transformed_length);
      std::printf("short depth limit K  %d\n", stats.short_depth_limit);
      std::printf("memory usage (bytes) %zu\n", index->MemoryUsage());
      break;
    }
  }
  return 0;
}

int CmdGen(int argc, char** argv) {
  if (argc != 6) return Usage();
  pti::DatasetOptions options;
  int64_t seed = 0;
  double theta = 0.0;
  if (!ParseInt64(argv[2], &options.length) || options.length < 0) {
    return UsageError(std::string("bad length '") + argv[2] + "'");
  }
  if (!ParseDouble(argv[3], &theta) || theta < 0.0 || theta > 1.0) {
    return UsageError(std::string("bad theta '") + argv[3] + "'");
  }
  if (!ParseInt64(argv[4], &seed)) {
    return UsageError(std::string("bad seed '") + argv[4] + "'");
  }
  options.theta = theta;
  options.seed = static_cast<uint64_t>(seed);
  const pti::UncertainString s = pti::GenerateUncertainString(options);
  const pti::Status written = WriteFile(argv[5], pti::FormatUncertainString(s));
  if (!written.ok()) return Fail(written.ToString());
  std::printf("wrote %lld positions (theta %.2f) to %s\n",
              static_cast<long long>(s.size()), options.theta, argv[5]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "build") return CmdBuild(argc, argv);
  if (cmd == "build-special") return CmdBuildSpecial(argc, argv);
  if (cmd == "build-approx") return CmdBuildApprox(argc, argv);
  if (cmd == "build-listing") return CmdBuildListing(argc, argv);
  if (cmd == "build-sharded") return CmdBuildSharded(argc, argv);
  if (cmd == "query") return CmdQuery(argc, argv);
  if (cmd == "fuzzy") return CmdFuzzy(argc, argv);
  if (cmd == "batch") return CmdBatch(argc, argv);
  if (cmd == "serve") return CmdServe(argc, argv);
  if (cmd == "topk") return CmdTopK(argc, argv);
  if (cmd == "stat") return CmdStat(argc, argv);
  if (cmd == "gen") return CmdGen(argc, argv);
  return UsageError("unknown command '" + cmd + "'");
}
