// pti_cli: command-line front end for the library.
//
//   pti_cli build  <string.pus> <index.pti> [tau_min]   build + save an index
//   pti_cli query  <index.pti> <pattern> <tau>          threshold query
//   pti_cli topk   <index.pti> <pattern> <tau> <k>      k best occurrences
//   pti_cli stat   <index.pti>                          index statistics
//   pti_cli gen    <n> <theta> <seed> <out.pus>         §8.1 synthetic data
//
// .pus files use the text format of core/usformat.h (one position per line,
// char=prob pairs, optional @corr directives).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/substring_index.h"
#include "core/usformat.h"
#include "datagen/datagen.h"

namespace {

int Fail(const std::string& what) {
  std::fprintf(stderr, "error: %s\n", what.c_str());
  return 1;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << data;
  return out.good();
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pti_cli build <string.pus> <index.pti> [tau_min]\n"
               "  pti_cli query <index.pti> <pattern> <tau>\n"
               "  pti_cli topk  <index.pti> <pattern> <tau> <k>\n"
               "  pti_cli stat  <index.pti>\n"
               "  pti_cli gen   <n> <theta> <seed> <out.pus>\n");
  return 2;
}

pti::StatusOr<pti::SubstringIndex> LoadIndex(const std::string& path) {
  std::string blob;
  if (!ReadFile(path, &blob)) {
    return pti::Status::IOError("cannot read " + path);
  }
  return pti::SubstringIndex::Load(blob);
}

int CmdBuild(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string text;
  if (!ReadFile(argv[2], &text)) return Fail(std::string("cannot read ") + argv[2]);
  auto s = pti::ParseUncertainString(text);
  if (!s.ok()) return Fail(s.status().ToString());
  pti::IndexOptions options;
  if (argc >= 5) options.transform.tau_min = std::atof(argv[4]);
  auto index = pti::SubstringIndex::Build(*s, options);
  if (!index.ok()) return Fail(index.status().ToString());
  std::string blob;
  const pti::Status st = index->Save(&blob);
  if (!st.ok()) return Fail(st.ToString());
  if (!WriteFile(argv[3], blob)) return Fail(std::string("cannot write ") + argv[3]);
  const auto stats = index->stats();
  std::printf("indexed %lld positions (tau_min %.4g): %zu factors, "
              "%zu chars, %zu bytes on disk\n",
              static_cast<long long>(stats.original_length),
              options.transform.tau_min, stats.num_factors,
              stats.transformed_length, blob.size());
  return 0;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 5) return Usage();
  auto index = LoadIndex(argv[2]);
  if (!index.ok()) return Fail(index.status().ToString());
  std::vector<pti::Match> matches;
  const pti::Status st = index->Query(argv[3], std::atof(argv[4]), &matches);
  if (!st.ok()) return Fail(st.ToString());
  for (const auto& m : matches) {
    std::printf("%lld\t%.6f\n", static_cast<long long>(m.position),
                m.probability);
  }
  std::fprintf(stderr, "%zu match(es)\n", matches.size());
  return 0;
}

int CmdTopK(int argc, char** argv) {
  if (argc < 6) return Usage();
  auto index = LoadIndex(argv[2]);
  if (!index.ok()) return Fail(index.status().ToString());
  std::vector<pti::Match> matches;
  const pti::Status st = index->QueryTopK(
      argv[3], std::atof(argv[4]), static_cast<size_t>(std::atoll(argv[5])),
      &matches);
  if (!st.ok()) return Fail(st.ToString());
  for (const auto& m : matches) {
    std::printf("%lld\t%.6f\n", static_cast<long long>(m.position),
                m.probability);
  }
  return 0;
}

int CmdStat(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto index = LoadIndex(argv[2]);
  if (!index.ok()) return Fail(index.status().ToString());
  const auto stats = index->stats();
  std::printf("original length      %lld\n",
              static_cast<long long>(stats.original_length));
  std::printf("maximal factors      %zu\n", stats.num_factors);
  std::printf("transformed length   %zu\n", stats.transformed_length);
  std::printf("short depth limit K  %d\n", stats.short_depth_limit);
  std::printf("suffix tree nodes    %zu\n", stats.num_tree_nodes);
  std::printf("tau_min              %.6g\n",
              index->options().transform.tau_min);
  std::printf("memory usage (bytes) %zu\n", index->MemoryUsage());
  return 0;
}

int CmdGen(int argc, char** argv) {
  if (argc < 6) return Usage();
  pti::DatasetOptions options;
  options.length = std::atoll(argv[2]);
  options.theta = std::atof(argv[3]);
  options.seed = static_cast<uint64_t>(std::atoll(argv[4]));
  const pti::UncertainString s = pti::GenerateUncertainString(options);
  if (!WriteFile(argv[5], pti::FormatUncertainString(s))) {
    return Fail(std::string("cannot write ") + argv[5]);
  }
  std::printf("wrote %lld positions (theta %.2f) to %s\n",
              static_cast<long long>(s.size()), options.theta, argv[5]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "build") return CmdBuild(argc, argv);
  if (cmd == "query") return CmdQuery(argc, argv);
  if (cmd == "topk") return CmdTopK(argc, argv);
  if (cmd == "stat") return CmdStat(argc, argv);
  if (cmd == "gen") return CmdGen(argc, argv);
  return Usage();
}
