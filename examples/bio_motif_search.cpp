// Quality-aware motif search in sequencing reads (§2, "Biological sequence
// data"): FASTQ quality scores define per-base error probabilities, turning
// each read into an uncertain string. The index then answers "where does
// this motif occur with confidence >= tau?" — positions under low-quality
// bases are naturally down-weighted.
//
// Run:  ./bio_motif_search

#include <cstdio>
#include <string>
#include <vector>

#include "bio/bio.h"
#include "core/listing_index.h"
#include "core/substring_index.h"
#include "util/rng.h"

namespace {

// Synthesizes a FASTQ read containing `motif` at `at`, with a quality dip
// (low Phred scores) in the middle of the read.
pti::FastqRecord MakeRead(const std::string& id, size_t length,
                          const std::string& motif, size_t at,
                          size_t dip_start, size_t dip_len, uint64_t seed) {
  pti::Rng rng(seed);
  const char bases[] = {'A', 'C', 'G', 'T'};
  pti::FastqRecord rec;
  rec.id = id;
  for (size_t i = 0; i < length; ++i) {
    rec.sequence.push_back(bases[rng.Uniform(4)]);
  }
  for (size_t i = 0; i < motif.size() && at + i < length; ++i) {
    rec.sequence[at + i] = motif[i];
  }
  for (size_t i = 0; i < length; ++i) {
    const bool in_dip = i >= dip_start && i < dip_start + dip_len;
    const int q = in_dip ? 6 : 38;  // Q6: ~25% error; Q38: ~0.016% error
    rec.quality.push_back(static_cast<char>(33 + q));
  }
  return rec;
}

}  // namespace

int main() {
  const std::string motif = "GATTACA";

  // Three reads: a clean one with the motif, one where the motif sits under
  // a quality dip, and one without the motif at all.
  std::vector<pti::FastqRecord> reads;
  reads.push_back(MakeRead("clean_read", 120, motif, 40, 100, 10, 1));
  reads.push_back(MakeRead("dipped_read", 120, motif, 60, 58, 12, 2));
  reads.push_back(MakeRead("no_motif", 120, "", 0, 100, 10, 3));

  std::printf("searching for motif %s\n\n", motif.c_str());
  std::vector<pti::UncertainString> docs;
  for (const auto& read : reads) {
    auto us = pti::FastqToUncertain(read);
    if (!us.ok()) {
      std::fprintf(stderr, "bad read: %s\n", us.status().ToString().c_str());
      return 1;
    }
    // Per-read search at two confidence levels.
    pti::IndexOptions options;
    options.transform.tau_min = 0.05;
    auto index = pti::SubstringIndex::Build(*us, options);
    if (!index.ok()) {
      std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
      return 1;
    }
    for (const double tau : {0.9, 0.1}) {
      std::vector<pti::Match> matches;
      (void)index->Query(motif, tau, &matches);
      std::printf("  %-12s tau=%.2f: ", read.id.c_str(), tau);
      if (matches.empty()) {
        std::printf("no confident occurrence\n");
      } else {
        for (const auto& m : matches) {
          std::printf("pos %lld (p=%.4f) ",
                      static_cast<long long>(m.position), m.probability);
        }
        std::printf("\n");
      }
    }
    docs.push_back(std::move(us).value());
  }

  // Collection-level question (§6): WHICH reads contain the motif with
  // confidence >= tau? One listing query instead of one search per read.
  pti::ListingOptions listing_options;
  listing_options.transform.tau_min = 0.05;
  auto listing = pti::ListingIndex::Build(docs, listing_options);
  if (!listing.ok()) {
    std::fprintf(stderr, "%s\n", listing.status().ToString().c_str());
    return 1;
  }
  std::vector<pti::DocMatch> hits;
  (void)listing->Query(motif, 0.5, &hits);
  std::printf("\nreads containing %s with confidence >= 0.5:\n",
              motif.c_str());
  for (const auto& h : hits) {
    std::printf("  %s (relevance %.4f)\n", reads[h.doc].id.c_str(),
                h.relevance);
  }

  // IUPAC degeneracy: the same machinery answers motif queries against
  // reference sequence with ambiguity codes.
  auto ref = pti::IupacToUncertain("ACGRYGATTACANNNGATWACA");
  if (ref.ok()) {
    pti::IndexOptions options;
    options.transform.tau_min = 0.01;
    auto index = pti::SubstringIndex::Build(*ref, options);
    std::vector<pti::Match> matches;
    (void)index->Query(motif, 0.5, &matches);
    std::printf("\nIUPAC reference: %zu high-confidence %s site(s)\n",
                matches.size(), motif.c_str());
    (void)index->Query(motif, 0.01, &matches);
    std::printf("IUPAC reference: %zu site(s) at any confidence >= 0.01\n",
                matches.size());
  }
  return 0;
}
