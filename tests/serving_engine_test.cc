// engine/serving_engine.h: every future must resolve to exactly what the
// synchronous path returns — same status, bit-identical matches — under
// concurrent submitters, with and without the cache, across coalescing
// configurations; plus in-flight merging, cache reuse, error isolation
// inside a micro-batch, bounded-lane admission (load shed, priority lanes,
// counter conservation), and the Stop/drain contract. The suite is in the
// sanitize and tsan CI regexes.

#include "engine/serving_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/substring_index.h"
#include "engine/sharded_index.h"
#include "test_util.h"

namespace pti {
namespace {

constexpr double kTauMin = 0.05;

UncertainString MakeString(int64_t length, uint64_t seed) {
  test::RandomStringSpec spec;
  spec.length = length;
  spec.alphabet = 4;
  spec.seed = seed;
  return test::RandomUncertain(spec);
}

// A serving-shaped workload: a pool of distinct (pattern, tau) pairs cycled
// with repetition, so the cache, the in-flight merge and the batch dedup all
// see traffic. Patterns longer than `max_len` never appear.
std::vector<Request> Workload(const UncertainString& s, size_t count,
                              size_t distinct, size_t max_len,
                              uint64_t seed) {
  Rng rng(seed);
  const double taus[] = {0.1, 0.2, 0.4, 0.8};
  std::vector<Request> pool;
  for (size_t q = 0; q < distinct; ++q) {
    const size_t len = 1 + rng.Uniform(max_len);
    Request query;
    if (q % 5 == 0) {
      query.pattern = test::RandomPattern(4, len, rng.Next());
    } else {
      const int64_t start =
          static_cast<int64_t>(rng.Uniform(s.size() - len + 1));
      query.pattern = test::PatternFromString(s, start, len, rng.Next());
    }
    query.tau = taus[rng.Uniform(4)];
    pool.push_back(std::move(query));
  }
  std::vector<Request> queries;
  queries.reserve(count);
  for (size_t q = 0; q < count; ++q) {
    queries.push_back(pool[rng.Uniform(pool.size())]);
  }
  return queries;
}

struct Expected {
  Status status;
  std::vector<Match> matches;
};

// Ground truth from the synchronous one-at-a-time path, captured against the
// same index object the engine will own.
template <typename Index>
std::vector<Expected> SyncResults(const Index& index,
                                  const std::vector<Request>& queries) {
  std::vector<Expected> expected(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    expected[i].status =
        index.Query(queries[i].pattern, queries[i].tau, &expected[i].matches);
  }
  return expected;
}

void ExpectIdentical(const std::vector<Expected>& expected,
                     std::vector<std::future<ServingEngine::Result>>* futures,
                     const std::vector<Request>& queries) {
  ASSERT_EQ(expected.size(), futures->size());
  for (size_t i = 0; i < futures->size(); ++i) {
    ServingEngine::Result result = (*futures)[i].get();
    EXPECT_EQ(result.status.code(), expected[i].status.code())
        << "query #" << i << " '" << queries[i].pattern << "' tau "
        << queries[i].tau << ": " << result.status.ToString() << " vs "
        << expected[i].status.ToString();
    // Bit-identical, not merely close: the async path must hand back the
    // exact vectors the synchronous path computes.
    EXPECT_TRUE(result.matches == expected[i].matches)
        << "query #" << i << " '" << queries[i].pattern << "' tau "
        << queries[i].tau
        << "\n  async: " << test::MatchesToString(result.matches)
        << "\n  sync:  " << test::MatchesToString(expected[i].matches);
  }
}

SubstringIndex BuildMono(const UncertainString& s) {
  IndexOptions options;
  options.transform.tau_min = kTauMin;
  auto index = SubstringIndex::Build(s, options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  return std::move(index).value();
}

ShardedIndex BuildShardedIndex(const UncertainString& s, int32_t overlap) {
  ShardedIndexOptions options;
  options.index.transform.tau_min = kTauMin;
  options.num_shards = 4;
  options.overlap = overlap;
  options.num_threads = 2;
  auto index = ShardedIndex::Build(s, options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  return std::move(index).value();
}

TEST(ServingEngineTest, MonolithicResultsIdenticalToSynchronousPath) {
  const UncertainString s = MakeString(300, 11);
  SubstringIndex index = BuildMono(s);
  const auto queries = Workload(s, 150, 40, 10, 12);
  const auto expected = SyncResults(index, queries);

  for (const size_t cache_bytes : {size_t{0}, size_t{1} << 20}) {
    SubstringIndex own = BuildMono(s);
    ServingOptions options;
    options.cache_bytes = cache_bytes;
    options.max_batch = 16;
    options.linger_us = 100;
    options.num_workers = 2;
    ServingEngine engine(std::move(own), options);
    auto futures = engine.SubmitBatch(queries);
    ExpectIdentical(expected, &futures, queries);
  }
}

TEST(ServingEngineTest, ShardedResultsIdenticalUnderConcurrentSubmitters) {
  const UncertainString s = MakeString(400, 21);
  const auto queries = Workload(s, 400, 60, 8, 22);
  ShardedIndex reference = BuildShardedIndex(s, 16);
  const auto expected = SyncResults(reference, queries);

  for (const size_t cache_bytes : {size_t{0}, size_t{1} << 20}) {
    ServingOptions options;
    options.cache_bytes = cache_bytes;
    options.max_batch = 32;
    options.linger_us = 200;
    options.num_workers = 2;
    ServingEngine engine(BuildShardedIndex(s, 16), options);

    // >= 8 concurrent submitters, each owning the slice i mod kClients.
    constexpr size_t kClients = 8;
    std::vector<std::future<ServingEngine::Result>> futures(queries.size());
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (size_t i = c; i < queries.size(); i += kClients) {
          futures[i] = engine.Submit(queries[i]);
        }
      });
    }
    for (auto& t : clients) t.join();
    ExpectIdentical(expected, &futures, queries);

    const auto stats = engine.stats();
    EXPECT_EQ(stats.submitted, queries.size());
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.shed, 0u);
    // Conservation: every Submit call lands in exactly one terminal bucket,
    // and every accepted request is answered by the cache, an in-flight
    // merge, or a batched execution.
    EXPECT_EQ(stats.submitted, stats.completed + stats.shed + stats.rejected);
    EXPECT_EQ(stats.submitted,
              stats.cache_hits + stats.inflight_merges + stats.batched_queries);
    // The default Request is interactive; the per-lane splits must agree.
    EXPECT_EQ(stats.interactive_submitted, stats.submitted);
    EXPECT_EQ(stats.interactive_completed, stats.completed);
    EXPECT_EQ(stats.batch_submitted, 0u);
    EXPECT_EQ(stats.queue_depth, 0u);  // drained
    EXPECT_GT(stats.batches, 0u);
    if (cache_bytes == 0) {
      EXPECT_EQ(stats.cache_hits, 0u);
      EXPECT_EQ(stats.cache_entries, 0u);
    }
  }
}

TEST(ServingEngineTest, RepeatTrafficIsServedFromTheCache) {
  const UncertainString s = MakeString(250, 31);
  const auto queries = Workload(s, 80, 25, 8, 32);
  SubstringIndex reference = BuildMono(s);
  const auto expected = SyncResults(reference, queries);

  ServingOptions options;
  options.cache_bytes = size_t{4} << 20;
  options.num_workers = 2;
  ServingEngine engine(BuildMono(s), options);

  auto first = engine.SubmitBatch(queries);
  for (auto& f : first) (void)f.get();  // complete pass 1 before pass 2
  const uint64_t hits_after_first = engine.stats().cache_hits;

  auto second = engine.SubmitBatch(queries);
  ExpectIdentical(expected, &second, queries);
  const auto stats = engine.stats();
  // Pass 2 resubmits the identical workload after every result landed in
  // the cache, so each of its OK queries is a hit.
  uint64_t expected_second_hits = 0;
  for (const auto& e : expected) {
    if (e.status.ok()) ++expected_second_hits;
  }
  EXPECT_EQ(stats.cache_hits - hits_after_first, expected_second_hits);
  EXPECT_GT(stats.cache_entries, 0u);
  EXPECT_LE(stats.cache_bytes, options.cache_bytes);
}

TEST(ServingEngineTest, IdenticalInFlightRequestsShareOneExecution) {
  const UncertainString s = MakeString(200, 41);
  SubstringIndex reference = BuildMono(s);
  const std::string pattern = test::PatternFromString(s, 10, 5, 7);
  std::vector<Match> expected;
  const Status expected_status = reference.Query(pattern, 0.2, &expected);
  ASSERT_TRUE(expected_status.ok());

  ServingOptions options;
  options.cache_bytes = 0;     // merges, not cache hits, must carry repeats
  options.linger_us = 5000;    // room for duplicates to pile up
  options.max_batch = 256;
  options.num_workers = 1;
  ServingEngine engine(BuildMono(s), options);

  constexpr size_t kDupes = 64;
  std::vector<std::future<ServingEngine::Result>> futures;
  futures.reserve(kDupes);
  for (size_t i = 0; i < kDupes; ++i) {
    futures.push_back(engine.Submit({pattern, 0.2}));
  }
  for (auto& f : futures) {
    ServingEngine::Result result = f.get();
    EXPECT_TRUE(result.status.ok());
    EXPECT_TRUE(result.matches == expected);
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, kDupes);
  EXPECT_GT(stats.inflight_merges, 0u);
  // All duplicates that arrived while the first was pending shared its
  // execution: strictly fewer executions than submissions.
  EXPECT_LT(stats.batched_queries, kDupes);
  EXPECT_EQ(stats.submitted, stats.inflight_merges + stats.batched_queries);
}

TEST(ServingEngineTest, InvalidQueriesFailAloneWithoutPoisoningBatchmates) {
  const UncertainString s = MakeString(200, 51);
  ShardedIndex reference = BuildShardedIndex(s, 4);
  // One micro-batch carrying: valid, empty pattern (InvalidArgument), tau
  // below tau_min (InvalidArgument), pattern longer than overlap+1
  // (NotSupported for the sharded engine).
  std::vector<Request> queries = {
      {test::PatternFromString(s, 5, 3, 3), 0.2},
      {"", 0.2},
      {test::PatternFromString(s, 9, 2, 4), kTauMin / 2},
      {test::RandomPattern(4, 9, 5), 0.2},
      {test::PatternFromString(s, 20, 4, 6), 0.3},
  };
  const auto expected = SyncResults(reference, queries);
  ASSERT_TRUE(expected[0].status.ok());
  ASSERT_TRUE(expected[1].status.IsInvalidArgument());
  ASSERT_TRUE(expected[2].status.IsInvalidArgument());
  ASSERT_TRUE(expected[3].status.IsNotSupported());
  ASSERT_TRUE(expected[4].status.ok());

  ServingOptions options;
  options.linger_us = 5000;  // coalesce all five into one micro-batch
  options.num_workers = 1;
  ServingEngine engine(BuildShardedIndex(s, 4), options);
  auto futures = engine.SubmitBatch(queries);
  ExpectIdentical(expected, &futures, queries);
  const auto stats = engine.stats();
  EXPECT_GT(stats.fallback_queries, 0u);
  // batched_queries and fallback_queries are disjoint: each request lands
  // in exactly one, so conservation holds even through fallbacks.
  EXPECT_EQ(stats.submitted, stats.cache_hits + stats.inflight_merges +
                                 stats.batched_queries +
                                 stats.fallback_queries);
}

TEST(ServingEngineTest, StopDrainsAcceptedWorkAndRejectsNewWork) {
  const UncertainString s = MakeString(200, 61);
  const auto queries = Workload(s, 60, 30, 6, 62);
  SubstringIndex reference = BuildMono(s);
  const auto expected = SyncResults(reference, queries);

  ServingOptions options;
  options.linger_us = 2000;
  options.num_workers = 2;
  ServingEngine engine(BuildMono(s), options);
  auto futures = engine.SubmitBatch(queries);
  engine.Stop();

  // Accepted before Stop: all still answered, and correctly.
  ExpectIdentical(expected, &futures, queries);

  // After Stop: deterministic rejection, never a hang.
  auto rejected = engine.Submit(queries[0]);
  ServingEngine::Result result = rejected.get();
  EXPECT_TRUE(result.status.IsNotSupported()) << result.status.ToString();
  EXPECT_TRUE(result.matches.empty());
  const auto stats = engine.stats();
  EXPECT_EQ(stats.rejected, 1u);
  // Rejected calls still count as submitted, so conservation closes.
  EXPECT_EQ(stats.submitted, queries.size() + 1);
  EXPECT_EQ(stats.submitted, stats.completed + stats.shed + stats.rejected);
}

TEST(ServingEngineTest, FuzzyResultsIdenticalToSynchronousPath) {
  const UncertainString s = MakeString(200, 81);
  SubstringIndex reference = BuildMono(s);
  // A fuzzy workload cycling k 0..2, both metrics, and one invalid k that
  // must resolve with NotSupported without failing batch-mates.
  Rng rng(82);
  std::vector<Request> queries;
  for (int q = 0; q < 60; ++q) {
    const size_t len = 1 + rng.Uniform(5);
    Request query;
    query.pattern = test::PatternFromString(
        s, static_cast<int64_t>(rng.Uniform(s.size() - len + 1)), len,
        rng.Next());
    query.tau = (q % 2) ? 0.1 : 0.3;
    query.k = q % 4;
    if (query.k == 3) query.k = 7;  // above kMaxFuzzyErrors
    query.metric = (q % 2) ? FuzzyMetric::kEdit : FuzzyMetric::kMismatch;
    queries.push_back(std::move(query));
  }
  std::vector<Expected> expected(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    expected[i].status = reference.QueryFuzzy(
        queries[i].pattern, queries[i].tau,
        FuzzyParams{queries[i].k, queries[i].metric}, &expected[i].matches);
  }
  for (const size_t cache_bytes : {size_t{0}, size_t{1} << 20}) {
    ServingOptions options;
    options.cache_bytes = cache_bytes;
    options.max_batch = 16;
    options.linger_us = 100;
    options.num_workers = 2;
    ServingEngine engine(BuildMono(s), options);
    auto futures = engine.SubmitBatch(queries);
    ASSERT_EQ(futures.size(), queries.size());
    for (size_t i = 0; i < futures.size(); ++i) {
      ServingEngine::Result result = futures[i].get();
      EXPECT_EQ(result.status.code(), expected[i].status.code())
          << "query #" << i << ": " << result.status.ToString();
      EXPECT_TRUE(result.matches == expected[i].matches)
          << "query #" << i << " '" << queries[i].pattern << "' k "
          << queries[i].k
          << "\n  async: " << test::MatchesToString(result.matches)
          << "\n  sync:  " << test::MatchesToString(expected[i].matches);
    }
  }
}

TEST(ServingEngineTest, FuzzyShardedResultsIdenticalToSynchronousPath) {
  const UncertainString s = MakeString(300, 83);
  ShardedIndex reference = BuildShardedIndex(s, 16);
  std::vector<Request> queries;
  Rng rng(84);
  for (int q = 0; q < 40; ++q) {
    const size_t len = 1 + rng.Uniform(6);
    queries.push_back(
        {test::PatternFromString(
             s, static_cast<int64_t>(rng.Uniform(s.size() - len + 1)), len,
             rng.Next()),
         (q % 2) ? 0.1 : 0.4,
         (q % 2) ? FuzzyMetric::kEdit : FuzzyMetric::kMismatch,
         static_cast<int32_t>(q % 3)});
  }
  std::vector<Expected> expected(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    expected[i].status = reference.QueryFuzzy(
        queries[i].pattern, queries[i].tau,
        FuzzyParams{queries[i].k, queries[i].metric}, &expected[i].matches);
  }
  ServingOptions options;
  options.max_batch = 16;
  options.num_workers = 2;
  ServingEngine engine(BuildShardedIndex(s, 16), options);
  auto futures = engine.SubmitBatch(queries);
  for (size_t i = 0; i < futures.size(); ++i) {
    ServingEngine::Result result = futures[i].get();
    EXPECT_EQ(result.status.code(), expected[i].status.code()) << i;
    EXPECT_TRUE(result.matches == expected[i].matches) << "query #" << i;
  }
}

TEST(ServingEngineTest, FuzzyCacheKeysAreDistinctFromExactAndShareKZero) {
  const UncertainString s = MakeString(150, 85);
  const std::string pattern = test::PatternFromString(s, 5, 4, 86);
  ServingOptions options;
  options.cache_bytes = size_t{1} << 20;
  options.num_workers = 1;
  ServingEngine engine(BuildMono(s), options);

  // Prime the cache with the exact result.
  (void)engine.Submit({pattern, 0.2}).get();
  const uint64_t hits0 = engine.stats().cache_hits;

  // k = 0 normalizes onto the exact path: shares the cached entry (the
  // metric is ignored when k == 0, exactly as Request documents).
  (void)engine.Submit({pattern, 0.2, FuzzyMetric::kEdit, 0}).get();
  EXPECT_EQ(engine.stats().cache_hits, hits0 + 1);

  // k = 1 must miss (distinct key) — and so must each (metric, k) pair.
  (void)engine.Submit({pattern, 0.2, FuzzyMetric::kMismatch, 1}).get();
  EXPECT_EQ(engine.stats().cache_hits, hits0 + 1);
  (void)engine.Submit({pattern, 0.2, FuzzyMetric::kEdit, 1}).get();
  EXPECT_EQ(engine.stats().cache_hits, hits0 + 1);
  (void)engine.Submit({pattern, 0.2, FuzzyMetric::kEdit, 2}).get();
  EXPECT_EQ(engine.stats().cache_hits, hits0 + 1);

  // Repeats of each fuzzy key now hit their own entries.
  (void)engine.Submit({pattern, 0.2, FuzzyMetric::kMismatch, 1}).get();
  (void)engine.Submit({pattern, 0.2, FuzzyMetric::kEdit, 1}).get();
  EXPECT_EQ(engine.stats().cache_hits, hits0 + 3);

  // An exact repeat still hits the original entry (fuzzy traffic did not
  // clobber it).
  (void)engine.Submit({pattern, 0.2}).get();
  EXPECT_EQ(engine.stats().cache_hits, hits0 + 4);
}

TEST(ServingEngineTest, DegenerateCoalescingConfigsStayCorrect) {
  const UncertainString s = MakeString(150, 71);
  const auto queries = Workload(s, 60, 20, 6, 72);
  SubstringIndex reference = BuildMono(s);
  const auto expected = SyncResults(reference, queries);

  // max_batch=1 (no coalescing), linger 0 (no waiting), one worker.
  ServingOptions options;
  options.max_batch = 1;
  options.linger_us = 0;
  options.num_workers = 1;
  options.cache_bytes = 1 << 16;  // small enough to force evictions
  ServingEngine engine(BuildMono(s), options);
  auto futures = engine.SubmitBatch(queries);
  ExpectIdentical(expected, &futures, queries);
}

// ---- Admission control (bounded lanes, load shed, priorities) ----

// Options that pin the worker in its linger window: one worker, a batch cap
// far above the workload, and a linger long enough that nothing is popped
// while the test submits. Everything the test observes about admission
// happens while the lanes are provably still holding their requests.
ServingOptions StalledWorkerOptions(int32_t max_pending) {
  ServingOptions options;
  options.num_workers = 1;
  options.max_batch = 64;
  options.linger_us = 300000;  // 0.3 s: far beyond the submit burst
  options.cache_bytes = 0;
  options.max_pending = max_pending;
  return options;
}

TEST(ServingEngineAdmissionTest, FullLaneShedsWithUnavailableNotQueueing) {
  const UncertainString s = MakeString(200, 91);
  SubstringIndex reference = BuildMono(s);
  const std::string p0 = test::PatternFromString(s, 5, 3, 92);
  const std::string p1 = test::PatternFromString(s, 11, 3, 93);
  const std::string p2 = test::PatternFromString(s, 17, 3, 94);

  ServingEngine engine(BuildMono(s), StalledWorkerOptions(/*max_pending=*/2));
  auto f0 = engine.Submit({p0, 0.2});
  auto f1 = engine.Submit({p1, 0.2});
  EXPECT_EQ(engine.stats().queue_depth, 2u);  // gauge sees the held lane

  // Third distinct request: the interactive lane is at its bound, so it is
  // shed immediately — the future is already resolved, no index work done.
  auto f2 = engine.Submit({p2, 0.2});
  ServingEngine::Result shed = f2.get();
  EXPECT_TRUE(shed.status.IsUnavailable()) << shed.status.ToString();
  EXPECT_TRUE(shed.matches.empty());

  // An identical repeat of a held request merges in flight instead of
  // occupying (or being shed by) a lane slot.
  auto f3 = engine.Submit({p0, 0.2});

  std::vector<Match> expected;
  ASSERT_TRUE(reference.Query(p0, 0.2, &expected).ok());
  ServingEngine::Result r0 = f0.get();
  EXPECT_TRUE(r0.status.ok());
  EXPECT_TRUE(r0.matches == expected);
  EXPECT_TRUE(f1.get().status.ok());
  EXPECT_TRUE(f3.get().matches == expected);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.interactive_shed, 1u);
  EXPECT_EQ(stats.inflight_merges, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);  // drained
  EXPECT_EQ(stats.submitted, stats.completed + stats.shed + stats.rejected);
  EXPECT_EQ(stats.interactive_submitted,
            stats.interactive_completed + stats.interactive_shed);
}

TEST(ServingEngineAdmissionTest, BatchLaneShedsWhileInteractiveStaysOpen) {
  const UncertainString s = MakeString(200, 95);
  const std::string p0 = test::PatternFromString(s, 4, 3, 96);
  const std::string p1 = test::PatternFromString(s, 10, 3, 97);
  const std::string p2 = test::PatternFromString(s, 16, 3, 98);

  ServingEngine engine(BuildMono(s), StalledWorkerOptions(/*max_pending=*/1));
  // Fill the batch lane (bound 1), then overflow it.
  auto b0 = engine.Submit(
      {p0, 0.2, FuzzyMetric::kMismatch, 0, Priority::kBatch});
  auto b1 = engine.Submit(
      {p1, 0.2, FuzzyMetric::kMismatch, 0, Priority::kBatch});
  // The lanes are bounded independently: batch overload does not close the
  // interactive lane.
  auto i0 = engine.Submit({p2, 0.2});

  ServingEngine::Result overflow = b1.get();
  EXPECT_TRUE(overflow.status.IsUnavailable()) << overflow.status.ToString();
  EXPECT_TRUE(b0.get().status.ok());
  EXPECT_TRUE(i0.get().status.ok());

  const auto stats = engine.stats();
  EXPECT_EQ(stats.batch_submitted, 2u);
  EXPECT_EQ(stats.batch_shed, 1u);
  EXPECT_EQ(stats.batch_completed, 1u);
  EXPECT_EQ(stats.interactive_submitted, 1u);
  EXPECT_EQ(stats.interactive_shed, 0u);
  EXPECT_EQ(stats.interactive_completed, 1u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.shed + stats.rejected);
}

TEST(ServingEngineAdmissionTest, UnboundedLaneNeverSheds) {
  const UncertainString s = MakeString(200, 99);
  const auto queries = Workload(s, 120, 30, 6, 100);
  // max_pending <= 0 restores the PR-5 embedder contract: everything queues.
  ServingOptions options = StalledWorkerOptions(/*max_pending=*/0);
  options.linger_us = 0;
  ServingEngine engine(BuildMono(s), options);
  auto futures = engine.SubmitBatch(queries);
  for (auto& f : futures) (void)f.get();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.completed, queries.size());
}

// ---- Hot reload (generation swap) ----

// Reload under full concurrent traffic: clients hammer Submit while a
// reloader thread swaps generations (alternating tree and compact builds of
// the same string, so either generation answers every query identically).
// Every future must resolve exactly once with the synchronous-path result —
// no lost requests, no double answers, no torn generations. The suite runs
// under TSan in CI.
TEST(ServingEngineReloadTest, ReloadUnderTrafficLosesNoRequests) {
  const UncertainString s = MakeString(300, 31);
  SubstringIndex reference = BuildMono(s);
  const auto queries = Workload(s, 400, 50, 8, 33);
  const auto expected = SyncResults(reference, queries);

  // Generations are pre-serialized (v3) so the reloader swaps via the cheap
  // zero-copy load path, maximizing swap frequency under the traffic.
  std::string tree_blob, compact_blob;
  ASSERT_TRUE(BuildMono(s).Save(&tree_blob).ok());
  {
    IndexOptions options;
    options.transform.tau_min = kTauMin;
    options.compact = true;
    auto compact = SubstringIndex::Build(s, options);
    ASSERT_TRUE(compact.ok());
    ASSERT_TRUE(compact->Save(&compact_blob).ok());
  }

  ServingOptions options;
  options.max_batch = 8;
  options.linger_us = 50;
  options.num_workers = 2;
  options.cache_bytes = 1 << 20;
  ServingEngine engine(BuildMono(s), options);

  constexpr size_t kClients = 6;
  std::vector<std::future<ServingEngine::Result>> futures(queries.size());
  std::atomic<bool> done{false};
  std::thread reloader([&] {
    uint64_t n = 0;
    while (!done.load(std::memory_order_relaxed)) {
      auto next =
          SubstringIndex::Load(n % 2 == 0 ? compact_blob : tree_blob);
      EXPECT_TRUE(next.ok()) << next.status().ToString();
      const Status swapped = engine.Reload(std::move(*next));
      EXPECT_TRUE(swapped.ok()) << swapped.ToString();
      ++n;
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = c; i < queries.size(); i += kClients) {
        futures[i] = engine.Submit(queries[i]);
      }
    });
  }
  for (auto& t : clients) t.join();
  done.store(true, std::memory_order_relaxed);
  reloader.join();

  ExpectIdentical(expected, &futures, queries);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, queries.size());
  EXPECT_EQ(stats.rejected, 0u);
  // Conservation holds across swaps: every accepted request was answered by
  // the cache, an in-flight merge, or a batched execution — exactly once.
  EXPECT_EQ(stats.submitted,
            stats.cache_hits + stats.inflight_merges + stats.batched_queries);
  EXPECT_GE(stats.reloads, 1u);
  EXPECT_EQ(stats.generation, stats.reloads + 1);
}

// Path-based reload: loads (mmap'd) beside the old generation, swaps on
// success, and on any failure — missing file, wrong kind — keeps the old
// generation serving and its generation number unchanged.
TEST(ServingEngineReloadTest, PathReloadSwapsAndFailedReloadKeepsServing) {
  const UncertainString s = MakeString(200, 41);
  SubstringIndex reference = BuildMono(s);
  const auto queries = Workload(s, 40, 15, 6, 43);
  const auto expected = SyncResults(reference, queries);

  const std::string dir = ::testing::TempDir();
  const std::string good_path = dir + "pti_reload_good.pti";
  {
    IndexOptions options;
    options.transform.tau_min = kTauMin;
    options.compact = true;
    auto compact = SubstringIndex::Build(s, options);
    ASSERT_TRUE(compact.ok());
    std::string blob;
    ASSERT_TRUE(compact->Save(&blob).ok());
    std::ofstream out(good_path, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    ASSERT_TRUE(out.good());
  }

  ServingOptions options;
  options.num_workers = 1;
  ServingEngine engine(BuildMono(s), options);
  EXPECT_EQ(engine.stats().generation, 1u);

  for (const bool use_mmap : {true, false}) {
    const Status swapped = engine.Reload(good_path, use_mmap);
    ASSERT_TRUE(swapped.ok()) << swapped.ToString();
  }
  EXPECT_EQ(engine.stats().generation, 3u);
  EXPECT_EQ(engine.stats().reloads, 2u);

  // A missing file and a truncated container both fail without touching the
  // serving generation.
  EXPECT_FALSE(engine.Reload(dir + "pti_reload_absent.pti", true).ok());
  const std::string bad_path = dir + "pti_reload_bad.pti";
  {
    std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
    out.write("PTIC????", 8);
  }
  EXPECT_FALSE(engine.Reload(bad_path, true).ok());
  EXPECT_EQ(engine.stats().generation, 3u);
  EXPECT_EQ(engine.stats().reloads, 2u);

  // The survivor generation (mmap-backed compact) answers the workload
  // exactly like the synchronous reference.
  auto futures = engine.SubmitBatch(queries);
  ExpectIdentical(expected, &futures, queries);

  std::remove(good_path.c_str());
  std::remove(bad_path.c_str());
}

// Reload clears the result cache: entries computed against the old
// generation are never served after a swap (they could be stale if the new
// index differs), and repeat traffic re-populates against the new one.
TEST(ServingEngineReloadTest, ReloadClearsTheResultCache) {
  const UncertainString s = MakeString(120, 51);
  ServingOptions options;
  options.num_workers = 1;
  options.cache_bytes = 1 << 20;
  ServingEngine engine(BuildMono(s), options);

  const std::string pattern = test::PatternFromString(s, 3, 4, 52);
  (void)engine.Submit({pattern, 0.2}).get();
  (void)engine.Submit({pattern, 0.2}).get();
  EXPECT_EQ(engine.stats().cache_hits, 1u);
  EXPECT_GT(engine.stats().cache_entries, 0u);

  ASSERT_TRUE(engine.Reload(BuildMono(s)).ok());
  EXPECT_EQ(engine.stats().cache_entries, 0u);
  (void)engine.Submit({pattern, 0.2}).get();
  EXPECT_EQ(engine.stats().cache_hits, 1u);  // miss: repopulated, not served
  (void)engine.Submit({pattern, 0.2}).get();
  EXPECT_EQ(engine.stats().cache_hits, 2u);
}

// Reload accepts a sharded replacement for a monolithic engine (and vice
// versa): the generation wrapper erases the index shape. Each segment is
// compared against its own synchronous reference (the sharded fan-out's
// floating-point summation order differs from the monolithic path in the
// last bits, so cross-shape results are equal only to tolerance).
TEST(ServingEngineReloadTest, ReloadSwapsBetweenMonolithicAndSharded) {
  const UncertainString s = MakeString(200, 61);
  SubstringIndex mono_reference = BuildMono(s);
  ShardedIndex sharded_reference = BuildShardedIndex(s, 16);
  const auto queries = Workload(s, 30, 10, 6, 62);
  const auto mono_expected = SyncResults(mono_reference, queries);
  const auto sharded_expected = SyncResults(sharded_reference, queries);

  ServingOptions options;
  options.num_workers = 1;
  ServingEngine engine(BuildMono(s), options);
  ASSERT_TRUE(engine.Reload(BuildShardedIndex(s, 16)).ok());
  auto futures = engine.SubmitBatch(queries);
  ExpectIdentical(sharded_expected, &futures, queries);
  ASSERT_TRUE(engine.Reload(BuildMono(s)).ok());
  auto futures2 = engine.SubmitBatch(queries);
  ExpectIdentical(mono_expected, &futures2, queries);
}

}  // namespace
}  // namespace pti
