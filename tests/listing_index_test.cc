// Tests for ListingIndex (§6): the paper's Figure 2 and Figure 6 worked
// examples, relevance metrics, document deduplication, and oracle sweeps.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/brute_force.h"
#include "core/listing_index.h"
#include "test_util.h"

namespace pti {
namespace {

void ExpectSameDocs(const std::vector<DocMatch>& got,
                    const std::vector<DocMatch>& want, double tol = 1e-9) {
  ASSERT_EQ(got.size(), want.size()) << "doc count mismatch";
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc);
    EXPECT_NEAR(got[i].relevance, want[i].relevance, tol);
  }
}

// Figure 2's collection (probabilities normalized where the figure's OCR has
// gaps; d1 and d2 follow the paper exactly).
std::vector<UncertainString> Figure2Collection() {
  UncertainString d1;
  d1.AddPosition({{'A', 0.4}, {'B', 0.3}, {'F', 0.3}});
  d1.AddPosition({{'B', 0.3}, {'L', 0.3}, {'F', 0.3}, {'J', 0.1}});
  d1.AddPosition({{'F', 0.5}, {'J', 0.5}});
  UncertainString d2;
  d2.AddPosition({{'A', 0.6}, {'C', 0.4}});
  d2.AddPosition({{'B', 0.5}, {'F', 0.3}, {'J', 0.2}});
  d2.AddPosition({{'B', 0.4}, {'C', 0.3}, {'E', 0.2}, {'F', 0.1}});
  UncertainString d3;
  d3.AddPosition({{'A', 0.4}, {'F', 0.4}, {'P', 0.2}});
  d3.AddPosition({{'I', 0.4}, {'L', 0.3}, {'P', 0.3}});
  d3.AddPosition({{'A', 0.7}, {'T', 0.3}});
  return {d1, d2, d3};
}

TEST(ListingIndexTest, PaperFigure2Example) {
  // Query ("BF", 0.1): only d1 qualifies (B at 2 (.3) * F at 3 (.5) = .15);
  // d2's best "BF" is .5*.1 = .05 and d3 has no B at all.
  ListingOptions options;
  options.transform.tau_min = 0.05;
  const auto index = ListingIndex::Build(Figure2Collection(), options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  std::vector<DocMatch> out;
  ASSERT_TRUE(index->Query("BF", 0.1, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].doc, 0);
  EXPECT_NEAR(out[0].relevance, 0.15, 1e-12);
  // At tau = 0.05, d2 joins.
  ASSERT_TRUE(index->Query("BF", 0.05, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].doc, 0);
  EXPECT_EQ(out[1].doc, 1);
  EXPECT_NEAR(out[1].relevance, 0.05, 1e-12);
}

TEST(ListingIndexTest, PaperFigure6RelevanceMetrics) {
  // Figure 6's string S (6 positions) with occurrences of "BFA" at
  // (0-based) 0, 1, 3 having probs .045, .09, .048; Rel_max = .09.
  UncertainString s;
  s.AddPosition({{'A', 0.4}, {'B', 0.3}, {'F', 0.3}});
  s.AddPosition({{'B', 0.3}, {'L', 0.3}, {'F', 0.3}, {'J', 0.1}});
  s.AddPosition({{'A', 0.5}, {'F', 0.5}});
  s.AddPosition({{'A', 0.6}, {'B', 0.4}});
  s.AddPosition({{'B', 0.5}, {'F', 0.3}, {'J', 0.2}});
  s.AddPosition({{'A', 0.4}, {'C', 0.3}, {'E', 0.2}, {'F', 0.1}});
  // Occurrence probabilities, hand-checked:
  //   pos 0: B(.3) F(.3) A(.5) = .045
  //   pos 1: B(.3) F(.5) A(.6) = .09   (the paper's Rel_max = .09 matches)
  //   pos 3: B(.4) F(.3) A(.4) = .048
  EXPECT_NEAR(s.OccurrenceProb("BFA", 1).ToLinear(), 0.09, 1e-12);
  EXPECT_NEAR(BruteForceRelevance(s, "BFA", RelevanceMetric::kMax, 0.01),
              0.09, 1e-12);
  // Paper OR formula: sum - prod.
  const double expected_or =
      (0.045 + 0.09 + 0.048) - (0.045 * 0.09 * 0.048);
  EXPECT_NEAR(
      BruteForceRelevance(s, "BFA", RelevanceMetric::kPaperOr, 0.01),
      expected_or, 1e-12);
  // And through the index.
  ListingOptions options;
  options.transform.tau_min = 0.01;
  const auto index = ListingIndex::Build({s}, options);
  ASSERT_TRUE(index.ok());
  std::vector<DocMatch> out;
  ASSERT_TRUE(index->Query("BFA", 0.05, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].relevance, 0.09, 1e-12);
  ASSERT_TRUE(
      index->QueryWithMetric("BFA", 0.15, RelevanceMetric::kPaperOr, &out)
          .ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].relevance, expected_or, 1e-9);
  // Noisy-OR: 1 - (1-.045)(1-.09)(1-.048).
  ASSERT_TRUE(
      index->QueryWithMetric("BFA", 0.15, RelevanceMetric::kNoisyOr, &out)
          .ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].relevance, 1 - (1 - 0.045) * (1 - 0.09) * (1 - 0.048),
              1e-9);
}

TEST(ListingIndexTest, DocumentsReportedOnce) {
  // A document with many occurrences of the pattern must appear exactly once.
  UncertainString doc;
  for (int i = 0; i < 20; ++i) {
    doc.AddPosition({{'a', 0.9}, {'b', 0.1}});
  }
  ListingOptions options;
  options.transform.tau_min = 0.3;
  const auto index = ListingIndex::Build({doc, doc}, options);
  ASSERT_TRUE(index.ok());
  std::vector<DocMatch> out;
  ASSERT_TRUE(index->Query("aa", 0.5, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].doc, 0);
  EXPECT_EQ(out[1].doc, 1);
  EXPECT_NEAR(out[0].relevance, 0.81, 1e-12);
}

TEST(ListingIndexTest, EmptyCollectionAndValidation) {
  ListingOptions options;
  const auto index = ListingIndex::Build({}, options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_docs(), 0);
  std::vector<DocMatch> out;
  EXPECT_TRUE(index->Query("a", 0.5, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(index->Query("", 0.5, &out).IsInvalidArgument());
  EXPECT_TRUE(index->Query("a", 0.05, &out).IsInvalidArgument());  // < tau_min
}

class ListingSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, double, int>> {};

TEST_P(ListingSweepTest, MatchesOracle) {
  const auto [ndocs, doclen, tau, seed] = GetParam();
  std::vector<UncertainString> docs;
  for (int d = 0; d < ndocs; ++d) {
    test::RandomStringSpec spec;
    spec.length = doclen;
    spec.alphabet = 2;
    spec.theta = 0.5;
    spec.seed = static_cast<uint64_t>(seed) * 1000 + d;
    docs.push_back(test::RandomUncertain(spec));
  }
  ListingOptions options;
  options.transform.tau_min = 0.1;
  const auto index = ListingIndex::Build(docs, options);
  ASSERT_TRUE(index.ok());
  Rng rng(seed);
  for (int q = 0; q < 40; ++q) {
    const std::string pattern =
        test::RandomPattern(2, 1 + rng.Uniform(5), rng.Next());
    std::vector<DocMatch> got;
    ASSERT_TRUE(index->Query(pattern, tau, &got).ok());
    const auto want =
        BruteForceListing(docs, pattern, tau, RelevanceMetric::kMax, tau);
    ExpectSameDocs(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ListingSweepTest,
    ::testing::Combine(::testing::Values(1, 3, 10, 25),
                       ::testing::Values(5, 30),
                       ::testing::Values(0.1, 0.4),
                       ::testing::Values(1, 2, 3)));

TEST(ListingIndexTest, AggregateMetricsMatchOracle) {
  std::vector<UncertainString> docs;
  for (int d = 0; d < 8; ++d) {
    test::RandomStringSpec spec{.length = 25, .alphabet = 2, .theta = 0.6,
                                .seed = 500u + d};
    docs.push_back(test::RandomUncertain(spec));
  }
  ListingOptions options;
  options.transform.tau_min = 0.1;
  const auto index = ListingIndex::Build(docs, options);
  ASSERT_TRUE(index.ok());
  Rng rng(71);
  for (int q = 0; q < 30; ++q) {
    const std::string pattern =
        test::RandomPattern(2, 1 + rng.Uniform(4), rng.Next());
    for (const RelevanceMetric metric :
         {RelevanceMetric::kPaperOr, RelevanceMetric::kNoisyOr}) {
      std::vector<DocMatch> got;
      ASSERT_TRUE(index->QueryWithMetric(pattern, 0.3, metric, &got).ok());
      // Oracle aggregates occurrences with probability >= tau_min, exactly
      // as the index does.
      const auto want = BruteForceListing(docs, pattern, 0.3, metric, 0.1);
      ExpectSameDocs(got, want);
    }
  }
}

TEST(ListingIndexTest, LongPatternListing) {
  std::vector<UncertainString> docs;
  for (int d = 0; d < 5; ++d) {
    test::RandomStringSpec spec{.length = 120, .alphabet = 2, .theta = 0.1,
                                .seed = 900u + d};
    docs.push_back(test::RandomUncertain(spec));
  }
  ListingOptions options;
  options.transform.tau_min = 0.2;
  options.max_short_depth = 2;  // force the long path
  options.scan_cutoff = 1;
  const auto index = ListingIndex::Build(docs, options);
  ASSERT_TRUE(index.ok());
  Rng rng(73);
  for (int q = 0; q < 30; ++q) {
    const size_t len = 3 + rng.Uniform(8);
    const size_t d = rng.Uniform(docs.size());
    if (docs[d].size() < static_cast<int64_t>(len)) continue;
    const int64_t start =
        static_cast<int64_t>(rng.Uniform(docs[d].size() - len + 1));
    const std::string pattern =
        test::PatternFromString(docs[d], start, len, rng.Next());
    std::vector<DocMatch> got;
    ASSERT_TRUE(index->Query(pattern, 0.25, &got).ok());
    const auto want = BruteForceListing(docs, pattern, 0.25,
                                        RelevanceMetric::kMax, 0.25);
    ExpectSameDocs(got, want);
  }
}

TEST(ListingIndexTest, StatsCoherent) {
  const auto docs = Figure2Collection();
  ListingOptions options;
  options.transform.tau_min = 0.05;
  const auto index = ListingIndex::Build(docs, options);
  ASSERT_TRUE(index.ok());
  const auto stats = index->stats();
  EXPECT_EQ(stats.num_docs, 3);
  EXPECT_EQ(stats.total_positions, 9);
  EXPECT_GT(stats.num_factors, 0u);
  EXPECT_GT(index->MemoryUsage(), 0u);
}

}  // namespace
}  // namespace pti
