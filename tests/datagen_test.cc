// Tests for the §8.1 dataset generator: protocol invariants (theta fraction,
// choices, unit sums), determinism, and pattern sampling.

#include <gtest/gtest.h>

#include <set>

#include "core/brute_force.h"
#include "datagen/datagen.h"

namespace pti {
namespace {

TEST(DatagenTest, LengthAndValidity) {
  DatasetOptions options;
  options.length = 2000;
  options.theta = 0.3;
  const UncertainString s = GenerateUncertainString(options);
  EXPECT_EQ(s.size(), 2000);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(DatagenTest, ThetaControlsUncertainFraction) {
  for (const double theta : {0.1, 0.3, 0.5}) {
    DatasetOptions options;
    options.length = 20000;
    options.theta = theta;
    const UncertainString s = GenerateUncertainString(options);
    int64_t uncertain = 0;
    for (int64_t i = 0; i < s.size(); ++i) {
      if (s.options(i).size() > 1) ++uncertain;
    }
    EXPECT_NEAR(static_cast<double>(uncertain) / s.size(), theta, 0.02)
        << "theta " << theta;
  }
}

TEST(DatagenTest, ChoicesPerUncertainPosition) {
  DatasetOptions options;
  options.length = 5000;
  options.theta = 1.0;
  options.choices = 5;
  const UncertainString s = GenerateUncertainString(options);
  for (int64_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s.options(i).size(), 5u);
  }
}

TEST(DatagenTest, AlphabetRespected) {
  DatasetOptions options;
  options.length = 3000;
  options.theta = 0.5;
  options.alphabet = 4;
  const UncertainString s = GenerateUncertainString(options);
  std::set<uint8_t> chars;
  for (int64_t i = 0; i < s.size(); ++i) {
    for (const auto& opt : s.options(i)) chars.insert(opt.ch);
  }
  EXPECT_LE(chars.size(), 4u);
}

TEST(DatagenTest, DeterministicBySeed) {
  DatasetOptions options;
  options.length = 500;
  options.seed = 7;
  const UncertainString a = GenerateUncertainString(options);
  const UncertainString b = GenerateUncertainString(options);
  options.seed = 8;
  const UncertainString c = GenerateUncertainString(options);
  ASSERT_EQ(a.size(), b.size());
  bool same_ac = a.size() == c.size();
  for (int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.options(i).size(), b.options(i).size());
    for (size_t k = 0; k < a.options(i).size(); ++k) {
      ASSERT_EQ(a.options(i)[k].ch, b.options(i)[k].ch);
      ASSERT_EQ(a.options(i)[k].prob, b.options(i)[k].prob);
    }
    if (same_ac && a.options(i).size() != c.options(i).size()) {
      same_ac = false;
    }
  }
  EXPECT_FALSE(same_ac) << "different seeds produced identical strings";
}

TEST(DatagenTest, CollectionPieceLengths) {
  DatasetOptions options;
  options.length = 5000;
  const auto docs = GenerateCollection(options);
  int64_t total = 0;
  for (size_t d = 0; d < docs.size(); ++d) {
    EXPECT_TRUE(docs[d].Validate().ok());
    total += docs[d].size();
    // §8.1: lengths approximately normal in [20, 45] (the final piece may be
    // truncated to hit the total).
    if (d + 1 < docs.size()) {
      EXPECT_GE(docs[d].size(), 20);
      EXPECT_LE(docs[d].size(), 45);
    }
  }
  EXPECT_EQ(total, 5000);
}

TEST(DatagenTest, SampledPatternsOftenMatch) {
  DatasetOptions options;
  options.length = 3000;
  options.theta = 0.3;
  const UncertainString s = GenerateUncertainString(options);
  const auto patterns = SamplePatterns(s, 40, 6, 99);
  ASSERT_EQ(patterns.size(), 40u);
  int matched = 0;
  for (const auto& p : patterns) {
    EXPECT_EQ(p.size(), 6u);
    if (!BruteForceSearch(s, p, 0.05).empty()) ++matched;
  }
  // Argmax-walk patterns virtually always match; weighted walks usually do.
  EXPECT_GE(matched, 20);
}

TEST(DatagenTest, SamplePatternsHandlesShortStrings) {
  DatasetOptions options;
  options.length = 3;
  const UncertainString s = GenerateUncertainString(options);
  EXPECT_TRUE(SamplePatterns(s, 5, 10, 1).empty());
}

TEST(DatagenTest, SharedSuffixPatternsShareSuffixes) {
  DatasetOptions options;
  options.length = 3000;
  options.theta = 0.3;
  const UncertainString s = GenerateUncertainString(options);
  const size_t suffix_len = 5;
  const auto patterns = SampleSharedSuffixPatterns(s, 64, suffix_len, 8, 7);
  ASSERT_EQ(patterns.size(), 64u);
  // Patterns of one anchor group (stride = count / 16 groups) end with the
  // same argmax suffix; the leading characters vary per pattern.
  const size_t groups = 4;
  size_t shared_pairs = 0, varied_heads = 0;
  for (size_t k = 0; k + groups < patterns.size(); ++k) {
    const std::string& a = patterns[k];
    const std::string& b = patterns[k + groups];
    ASSERT_EQ(a.size(), 8u);
    if (a.substr(8 - suffix_len) == b.substr(8 - suffix_len)) ++shared_pairs;
    if (a.substr(0, 8 - suffix_len) != b.substr(0, 8 - suffix_len)) {
      ++varied_heads;
    }
  }
  EXPECT_EQ(shared_pairs, patterns.size() - groups);  // every in-group pair
  EXPECT_GT(varied_heads, 0u);
  // Degenerate requests behave like the prefix sampler.
  EXPECT_TRUE(SampleSharedSuffixPatterns(s, 5, 9, 8, 1).empty());
  DatasetOptions tiny;
  tiny.length = 3;
  EXPECT_TRUE(
      SampleSharedSuffixPatterns(GenerateUncertainString(tiny), 5, 2, 10, 1)
          .empty());
}

TEST(DatagenTest, CollectionPatternsComeFromDocs) {
  DatasetOptions options;
  options.length = 2000;
  const auto docs = GenerateCollection(options);
  const auto patterns = SampleCollectionPatterns(docs, 20, 5, 3);
  EXPECT_EQ(patterns.size(), 20u);
  for (const auto& p : patterns) EXPECT_EQ(p.size(), 5u);
}

}  // namespace
}  // namespace pti
