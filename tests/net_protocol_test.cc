// net/protocol.h: the wire format is serde for hostile inputs. Round-trips
// must be exact (encode → decode → the same frame); every malformed byte
// stream — truncation at any offset, a flipped bit anywhere, out-of-range
// enum tags, non-zero reserved bytes, trailing garbage — must come back as
// a clean Status error from the decoder, never a crash, hang, or a frame
// that silently decodes to something else. The suite is in the sanitize CI
// regex.

#include "net/protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/serial.h"

namespace pti {
namespace net {
namespace {

// Splits a full frame into its header and payload, validating the header.
void SplitFrame(const std::string& frame, std::string* payload) {
  ASSERT_GE(frame.size(), kFrameHeaderBytes);
  uint32_t payload_len = 0;
  ASSERT_TRUE(DecodeHeader(frame.data(), &payload_len).ok());
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload_len);
  payload->assign(frame, kFrameHeaderBytes, payload_len);
}

TEST(NetProtocolTest, QueryFrameRoundTripsExactly) {
  Request request;
  request.pattern = "acgt";
  request.tau = 0.25;
  request.metric = FuzzyMetric::kEdit;
  request.k = 2;
  request.priority = Priority::kBatch;

  const std::string frame = EncodeQuery(77, request);
  std::string payload;
  SplitFrame(frame, &payload);
  Frame decoded;
  ASSERT_TRUE(DecodeFrame(payload, &decoded).ok());
  EXPECT_EQ(decoded.type, FrameType::kQuery);
  EXPECT_EQ(decoded.id, 77u);
  EXPECT_EQ(decoded.request.pattern, request.pattern);
  EXPECT_EQ(decoded.request.tau, request.tau);
  EXPECT_EQ(decoded.request.metric, request.metric);
  EXPECT_EQ(decoded.request.k, request.k);
  EXPECT_EQ(decoded.request.priority, request.priority);
}

TEST(NetProtocolTest, QueryFrameDefaultsRoundTrip) {
  Request request;
  request.pattern = "";
  request.tau = 0.0;
  const std::string frame = EncodeQuery(0, request);
  std::string payload;
  SplitFrame(frame, &payload);
  Frame decoded;
  ASSERT_TRUE(DecodeFrame(payload, &decoded).ok());
  EXPECT_EQ(decoded.id, 0u);
  EXPECT_TRUE(decoded.request.pattern.empty());
  EXPECT_EQ(decoded.request.k, 0);
  EXPECT_EQ(decoded.request.priority, Priority::kInteractive);
}

TEST(NetProtocolTest, ResultFrameRoundTripsStatusAndMatches) {
  const std::vector<Match> matches = {{5, 0.75}, {9, 0.5}, {-1, 0.125}};
  const std::string frame = EncodeResult(
      13, Status::Unavailable("batch lane full"), Span<const Match>(matches));
  std::string payload;
  SplitFrame(frame, &payload);
  Frame decoded;
  ASSERT_TRUE(DecodeFrame(payload, &decoded).ok());
  EXPECT_EQ(decoded.type, FrameType::kResult);
  EXPECT_EQ(decoded.id, 13u);
  EXPECT_EQ(decoded.code, Status::Code::kUnavailable);
  EXPECT_EQ(decoded.message, "batch lane full");
  ASSERT_EQ(decoded.matches.size(), matches.size());
  for (size_t i = 0; i < matches.size(); ++i) {
    EXPECT_EQ(decoded.matches[i].position, matches[i].position);
    EXPECT_EQ(decoded.matches[i].probability, matches[i].probability);
  }
  const Status wire = StatusFromWire(decoded.code, decoded.message);
  EXPECT_TRUE(wire.IsUnavailable());
  EXPECT_EQ(wire.message(), "batch lane full");
}

TEST(NetProtocolTest, EveryStatusCodeSurvivesTheWire) {
  const Status statuses[] = {
      Status::OK(),
      Status::InvalidArgument("a"),
      Status::NotFound("b"),
      Status::Corruption("c"),
      Status::NotSupported("d"),
      Status::ResourceExhausted("e"),
      Status::IOError("f"),
      Status::Unavailable("g"),
  };
  for (const Status& st : statuses) {
    const std::string frame = EncodeResult(1, st, {});
    std::string payload;
    SplitFrame(frame, &payload);
    Frame decoded;
    ASSERT_TRUE(DecodeFrame(payload, &decoded).ok());
    const Status back = StatusFromWire(decoded.code, decoded.message);
    EXPECT_EQ(back.code(), st.code());
    EXPECT_EQ(back.message(), st.message());
  }
}

TEST(NetProtocolTest, ReloadAndStatsFramesRoundTrip) {
  const std::string reload = EncodeReload(3, "/tmp/index.pti", true);
  std::string payload;
  SplitFrame(reload, &payload);
  Frame decoded;
  ASSERT_TRUE(DecodeFrame(payload, &decoded).ok());
  EXPECT_EQ(decoded.type, FrameType::kReload);
  EXPECT_EQ(decoded.id, 3u);
  EXPECT_EQ(decoded.path, "/tmp/index.pti");
  EXPECT_TRUE(decoded.use_mmap);

  const std::string stats = EncodeStats(4);
  SplitFrame(stats, &payload);
  ASSERT_TRUE(DecodeFrame(payload, &decoded).ok());
  EXPECT_EQ(decoded.type, FrameType::kStats);
  EXPECT_EQ(decoded.id, 4u);
}

TEST(NetProtocolTest, StatsResultCarriesEveryCounterInOrder) {
  ServingEngine::Stats stats;
  stats.submitted = 1;
  stats.completed = 2;
  stats.shed = 3;
  stats.rejected = 4;
  stats.cache_hits = 5;
  stats.cache_misses = 6;
  stats.inflight_merges = 7;
  stats.batches = 8;
  stats.batched_queries = 9;
  stats.fallback_queries = 10;
  stats.queue_depth = 11;
  stats.interactive_submitted = 12;
  stats.interactive_completed = 13;
  stats.interactive_shed = 14;
  stats.batch_submitted = 15;
  stats.batch_completed = 16;
  stats.batch_shed = 17;
  stats.cache_entries = 18;
  stats.cache_bytes = 19;
  stats.cache_evictions = 20;
  stats.reloads = 21;
  stats.generation = 22;

  const std::vector<uint64_t> flat = FlattenStats(stats);
  ASSERT_EQ(flat.size(), kStatsFields);
  for (size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i], i + 1) << "counter #" << i << " out of order";
  }

  const std::string frame = EncodeStatsResult(9, stats);
  std::string payload;
  SplitFrame(frame, &payload);
  Frame decoded;
  ASSERT_TRUE(DecodeFrame(payload, &decoded).ok());
  EXPECT_EQ(decoded.type, FrameType::kStatsResult);
  EXPECT_EQ(decoded.stats, flat);
}

TEST(NetProtocolTest, HeaderRejectsBadMagicAndBadLengths) {
  Request request;
  request.pattern = "ac";
  const std::string frame = EncodeQuery(1, request);

  // Flip the magic.
  std::string bad = frame;
  bad[0] ^= 0x01;
  uint32_t len = 0;
  EXPECT_TRUE(DecodeHeader(bad.data(), &len).IsCorruption());

  // Oversized declared payload.
  Writer w;
  w.PutU32(kFrameMagic);
  w.PutU32(kMaxPayloadBytes + 1);
  const std::string oversized = w.Take();
  EXPECT_TRUE(DecodeHeader(oversized.data(), &len).IsCorruption());

  // Payload too short to hold the mandatory type + id.
  Writer w2;
  w2.PutU32(kFrameMagic);
  w2.PutU32(8);
  const std::string tiny = w2.Take();
  EXPECT_TRUE(DecodeHeader(tiny.data(), &len).IsCorruption());

  // The genuine header still parses.
  ASSERT_TRUE(DecodeHeader(frame.data(), &len).ok());
  EXPECT_EQ(len, frame.size() - kFrameHeaderBytes);
}

// Every truncation of every frame type must fail cleanly: either the header
// says the payload is too short, or the body decoder reports Corruption.
TEST(NetProtocolTest, TruncationAtEveryOffsetFailsCleanly) {
  Request request;
  request.pattern = "acgtacgt";
  request.tau = 0.5;
  request.k = 1;
  const std::vector<Match> matches = {{1, 0.5}, {2, 0.25}};
  ServingEngine::Stats stats;
  const std::string frames[] = {
      EncodeQuery(1, request),
      EncodeResult(2, Status::NotFound("x"), Span<const Match>(matches)),
      EncodeReload(3, "/tmp/i.pti", false),
      EncodeStats(4),
      EncodeStatsResult(5, stats),
  };
  for (const std::string& frame : frames) {
    std::string payload;
    SplitFrame(frame, &payload);
    for (size_t cut = 0; cut < payload.size(); ++cut) {
      Frame decoded;
      const Status st = DecodeFrame(payload.substr(0, cut), &decoded);
      EXPECT_TRUE(st.IsCorruption())
          << "cut at " << cut << "/" << payload.size() << ": "
          << st.ToString();
    }
  }
}

// Single-bit corruption anywhere in the payload must never crash; it either
// still decodes (the flipped bit landed in a value, e.g. tau or a
// probability) or fails with a clean Corruption error. Assert only "no
// crash, typed outcome" — which bits are load-bearing is a layout detail.
TEST(NetProtocolTest, BitFlipsNeverCrashTheDecoder) {
  Request request;
  request.pattern = "acgt";
  request.tau = 0.5;
  request.metric = FuzzyMetric::kEdit;
  request.k = 1;
  const std::vector<Match> matches = {{7, 0.5}};
  const std::string frames[] = {
      EncodeQuery(21, request),
      EncodeResult(22, Status::OK(), Span<const Match>(matches)),
      EncodeReload(23, "/a/b", true),
  };
  for (const std::string& frame : frames) {
    std::string payload;
    SplitFrame(frame, &payload);
    for (size_t byte = 0; byte < payload.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string mutated = payload;
        mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
        Frame decoded;
        const Status st = DecodeFrame(mutated, &decoded);
        if (!st.ok()) {
          EXPECT_TRUE(st.IsCorruption())
              << "byte " << byte << " bit " << bit << ": " << st.ToString();
        }
      }
    }
  }
}

TEST(NetProtocolTest, HostileFieldValuesAreRejected) {
  // Build payloads by hand with the same Writer idiom the encoder uses.
  const auto seal = [](Writer w) {
    return w.Take();
  };

  // Unknown frame type tag.
  {
    Writer w;
    w.PutU8(0);  // below kQuery
    w.PutU64(1);
    Frame f;
    EXPECT_TRUE(DecodeFrame(seal(std::move(w)), &f).IsCorruption());
  }
  {
    Writer w;
    w.PutU8(200);  // above kStatsResult
    w.PutU64(1);
    Frame f;
    EXPECT_TRUE(DecodeFrame(seal(std::move(w)), &f).IsCorruption());
  }

  // Query: bad metric, bad priority, non-zero reserved byte, oversized
  // pattern length prefix, trailing bytes.
  const auto query_payload = [&](uint8_t metric, uint8_t priority,
                                 uint8_t reserved) {
    Writer w;
    w.PutU8(static_cast<uint8_t>(FrameType::kQuery));
    w.PutU64(1);
    w.PutDouble(0.5);
    w.PutU8(metric);
    w.PutU8(1);  // k
    w.PutU8(priority);
    w.PutU8(reserved);
    w.PutString("ac");
    return seal(std::move(w));
  };
  Frame f;
  EXPECT_TRUE(DecodeFrame(query_payload(9, 0, 0), &f).IsCorruption());
  EXPECT_TRUE(DecodeFrame(query_payload(0, 9, 0), &f).IsCorruption());
  EXPECT_TRUE(DecodeFrame(query_payload(0, 0, 7), &f).IsCorruption());
  ASSERT_TRUE(DecodeFrame(query_payload(0, 0, 0), &f).ok());

  {
    // Length prefix claiming more bytes than the payload holds.
    Writer w;
    w.PutU8(static_cast<uint8_t>(FrameType::kQuery));
    w.PutU64(1);
    w.PutDouble(0.5);
    w.PutU8(0);
    w.PutU8(0);
    w.PutU8(0);
    w.PutU8(0);
    w.PutU64(1u << 30);  // string length prefix, no bytes behind it
    EXPECT_TRUE(DecodeFrame(seal(std::move(w)), &f).IsCorruption());
  }
  {
    // Trailing garbage after a complete body.
    std::string payload = query_payload(0, 0, 0);
    payload.push_back('\0');
    EXPECT_TRUE(DecodeFrame(payload, &f).IsCorruption());
  }

  // Result: unknown status code.
  {
    Writer w;
    w.PutU8(static_cast<uint8_t>(FrameType::kResult));
    w.PutU64(1);
    w.PutU8(99);
    w.PutString("");
    w.PutVector(std::vector<Match>{});
    EXPECT_TRUE(DecodeFrame(seal(std::move(w)), &f).IsCorruption());
  }

  // Reload: use_mmap out of {0,1}; empty path.
  {
    Writer w;
    w.PutU8(static_cast<uint8_t>(FrameType::kReload));
    w.PutU64(1);
    w.PutU8(2);
    w.PutString("/a");
    EXPECT_TRUE(DecodeFrame(seal(std::move(w)), &f).IsCorruption());
  }
  {
    Writer w;
    w.PutU8(static_cast<uint8_t>(FrameType::kReload));
    w.PutU64(1);
    w.PutU8(1);
    w.PutString("");
    EXPECT_TRUE(DecodeFrame(seal(std::move(w)), &f).IsCorruption());
  }

  // StatsResult: fewer counters than the contract requires.
  {
    Writer w;
    w.PutU8(static_cast<uint8_t>(FrameType::kStatsResult));
    w.PutU64(1);
    w.PutVector(std::vector<uint64_t>(kStatsFields - 1, 0));
    EXPECT_TRUE(DecodeFrame(seal(std::move(w)), &f).IsCorruption());
  }
}

TEST(NetProtocolTest, ErrorsAreAddressableWhenTypeAndIdAreIntact) {
  // A hostile body behind a valid (type, id) prefix must still yield the id,
  // so the server can route the error reply to the right request.
  Writer w;
  w.PutU8(static_cast<uint8_t>(FrameType::kQuery));
  w.PutU64(4242);
  w.PutDouble(0.5);
  w.PutU8(9);  // bad metric
  w.PutU8(0);
  w.PutU8(0);
  w.PutU8(0);
  w.PutString("ac");
  Frame frame;
  EXPECT_TRUE(DecodeFrame(w.Take(), &frame).IsCorruption());
  EXPECT_EQ(frame.id, 4242u);
  EXPECT_EQ(frame.type, FrameType::kQuery);
}

TEST(NetProtocolTest, OversizedMatchListBecomesResourceExhausted) {
  // One match over the frame cap: the encoder must not emit a frame whose
  // payload exceeds kMaxPayloadBytes (the peer would reject it as
  // Corruption and drop the connection). It degrades to a status instead.
  std::vector<Match> matches(kMaxResultMatches + 1, Match{1, 0.5});
  const std::string over =
      EncodeResult(8, Status::OK(), Span<const Match>(matches));
  ASSERT_LE(over.size(), kFrameHeaderBytes + kMaxPayloadBytes);
  std::string payload;
  SplitFrame(over, &payload);
  Frame decoded;
  ASSERT_TRUE(DecodeFrame(payload, &decoded).ok());
  EXPECT_EQ(decoded.id, 8u);
  EXPECT_EQ(decoded.code, Status::Code::kResourceExhausted);
  EXPECT_TRUE(decoded.matches.empty());

  // The largest legal match list still fits, even alongside a maximal
  // status message, and round-trips intact.
  matches.resize(kMaxResultMatches);
  const std::string full =
      EncodeResult(9, Status::IOError(std::string(kMaxStringBytes, 'x')),
                   Span<const Match>(matches));
  EXPECT_LE(full.size(), kFrameHeaderBytes + kMaxPayloadBytes);
  SplitFrame(full, &payload);
  ASSERT_TRUE(DecodeFrame(payload, &decoded).ok());
  EXPECT_EQ(decoded.matches.size(), kMaxResultMatches);
}

TEST(NetProtocolTest, RequestsTheWireCannotRepresentAreRejectedUpFront) {
  Request request;
  request.pattern = "ac";
  request.tau = 0.5;
  EXPECT_TRUE(ValidateForWire(request).ok());

  // k outside the u8 field: a masked encode would silently turn k=256
  // into an exact-match query and negative k into an arbitrary budget.
  request.k = 256;
  EXPECT_TRUE(ValidateForWire(request).IsInvalidArgument());
  request.k = -1;
  EXPECT_TRUE(ValidateForWire(request).IsInvalidArgument());
  request.k = 255;  // encodable, even though the engine will say NotSupported
  EXPECT_TRUE(ValidateForWire(request).ok());

  request.k = 0;
  request.pattern.assign(kMaxPatternBytes + 1, 'a');
  EXPECT_TRUE(ValidateForWire(request).IsInvalidArgument());
}

TEST(NetProtocolTest, OversizedStatusMessageIsTruncatedNotUndecodable) {
  const std::string huge(kMaxStringBytes + 1000, 'x');
  const std::string frame = EncodeResult(1, Status::IOError(huge), {});
  std::string payload;
  SplitFrame(frame, &payload);
  Frame decoded;
  ASSERT_TRUE(DecodeFrame(payload, &decoded).ok());
  EXPECT_EQ(decoded.message.size(), kMaxStringBytes);
}

}  // namespace
}  // namespace net
}  // namespace pti
