// The flagship correctness suite: SubstringIndex (§5) cross-validated
// against the brute-force oracle over randomized uncertain strings, across
// every engine, blocking mode, pattern regime (short/long), threshold, and
// with correlations.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/brute_force.h"
#include "core/substring_index.h"
#include "test_util.h"

namespace pti {
namespace {

void ExpectSameAsOracle(const SubstringIndex& index, const UncertainString& s,
                        const std::string& pattern, double tau) {
  std::vector<Match> got;
  ASSERT_TRUE(index.Query(pattern, tau, &got).ok()) << pattern;
  const std::vector<Match> want = BruteForceSearch(s, pattern, tau);
  EXPECT_TRUE(test::SameMatches(got, want))
      << "pattern '" << pattern << "' tau " << tau << "\n  got:  "
      << test::MatchesToString(got) << "\n  want: "
      << test::MatchesToString(want);
}

// Queries a healthy mix of matching and non-matching patterns.
void CrossValidate(const UncertainString& s, const IndexOptions& options,
                   double tau, uint64_t seed) {
  const auto built = SubstringIndex::Build(s, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const SubstringIndex& index = *built;
  Rng rng(seed);
  for (int q = 0; q < 60; ++q) {
    const size_t len = 1 + rng.Uniform(10);
    std::string pattern;
    if (q % 3 == 0 || s.size() < static_cast<int64_t>(len)) {
      pattern = test::RandomPattern(4, len, rng.Next());
    } else {
      const int64_t start =
          static_cast<int64_t>(rng.Uniform(s.size() - len + 1));
      pattern = test::PatternFromString(s, start, len, rng.Next());
    }
    ExpectSameAsOracle(index, s, pattern, tau);
  }
}

TEST(SubstringIndexTest, PaperFigure10WorkedExample) {
  // Appendix B: S = {Q.7 S.3}{Q.3 P.7}{P 1}{A.4 F.3 P.2 Q.1};
  // query ("QP", 0.4) must output exactly 1-based position 1 (our 0) with
  // probability 0.7 * 0.7 = 0.49.
  UncertainString s;
  s.AddPosition({{'Q', 0.7}, {'S', 0.3}});
  s.AddPosition({{'Q', 0.3}, {'P', 0.7}});
  s.AddPosition({{'P', 1.0}});
  s.AddPosition({{'A', 0.4}, {'F', 0.3}, {'P', 0.2}, {'Q', 0.1}});
  IndexOptions options;
  options.transform.tau_min = 0.1;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::vector<Match> out;
  ASSERT_TRUE(index->Query("QP", 0.4, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].position, 0);
  EXPECT_NEAR(out[0].probability, 0.49, 1e-12);
  // The same query at tau = 0.2 additionally matches nothing else ("QP" at
  // position 1 would need Q at 1 (0.3) * P at 2 (1.0) = 0.3 >= 0.2!).
  ASSERT_TRUE(index->Query("QP", 0.2, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].position, 0);
  EXPECT_EQ(out[1].position, 1);
  EXPECT_NEAR(out[1].probability, 0.3, 1e-12);
}

TEST(SubstringIndexTest, PaperFigure3Example) {
  // §2: query ("AT", 0.4) on the Figure 3 string reports only 1-based
  // position 9 (our 8) with probability 0.5.
  UncertainString s;
  s.AddPosition({{'P', 1.0}});
  s.AddPosition({{'S', 0.7}, {'F', 0.3}});
  s.AddPosition({{'F', 1.0}});
  s.AddPosition({{'P', 1.0}});
  s.AddPosition({{'Q', 0.5}, {'T', 0.5}});
  s.AddPosition({{'P', 1.0}});
  s.AddPosition({{'A', 0.4}, {'F', 0.4}, {'P', 0.2}});
  s.AddPosition({{'I', 0.3}, {'L', 0.3}, {'P', 0.3}, {'T', 0.1}});
  s.AddPosition({{'A', 1.0}});
  s.AddPosition({{'S', 0.5}, {'T', 0.5}});
  s.AddPosition({{'A', 1.0}});
  IndexOptions options;
  options.transform.tau_min = 0.04;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::vector<Match> out;
  ASSERT_TRUE(index->Query("AT", 0.4, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].position, 8);
  EXPECT_NEAR(out[0].probability, 0.5, 1e-12);
  ExpectSameAsOracle(*index, s, "AT", 0.04);
  ExpectSameAsOracle(*index, s, "PQ", 0.2);
  ExpectSameAsOracle(*index, s, "FPQPA", 0.05);
}

TEST(SubstringIndexTest, QueryValidation) {
  const UncertainString s = UncertainString::FromDeterministic("abc");
  IndexOptions options;
  options.transform.tau_min = 0.5;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::vector<Match> out;
  EXPECT_TRUE(index->Query("", 0.6, &out).IsInvalidArgument());
  EXPECT_TRUE(index->Query("a", 0.0, &out).IsInvalidArgument());
  EXPECT_TRUE(index->Query("a", 1.5, &out).IsInvalidArgument());
  EXPECT_TRUE(index->Query("a", 0.2, &out).IsInvalidArgument());  // < tau_min
  EXPECT_TRUE(index->Query("a", 0.5, &out).ok());  // == tau_min is fine
}

TEST(SubstringIndexTest, NoMatchCases) {
  const UncertainString s = UncertainString::FromDeterministic("abcabc");
  const auto index = SubstringIndex::Build(s, IndexOptions{});
  ASSERT_TRUE(index.ok());
  std::vector<Match> out;
  ASSERT_TRUE(index->Query("zzz", 0.5, &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(index->Query("abcabcabc", 0.5, &out).ok());  // longer than s
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(index->Query(std::string(1, '\xff'), 0.5, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(SubstringIndexTest, EmptyString) {
  const auto index = SubstringIndex::Build(UncertainString(), IndexOptions{});
  ASSERT_TRUE(index.ok());
  std::vector<Match> out;
  ASSERT_TRUE(index->Query("a", 0.5, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(SubstringIndexTest, DeterministicStringBehavesLikeExactSearch) {
  const std::string text = "abracadabraabracadabra";
  const UncertainString s = UncertainString::FromDeterministic(text);
  const auto index = SubstringIndex::Build(s, IndexOptions{});
  ASSERT_TRUE(index.ok());
  std::vector<Match> out;
  ASSERT_TRUE(index->Query("abra", 0.99, &out).ok());
  std::vector<int64_t> pos;
  for (const Match& m : out) {
    pos.push_back(m.position);
    EXPECT_NEAR(m.probability, 1.0, 1e-12);
  }
  EXPECT_EQ(pos, (std::vector<int64_t>{0, 7, 11, 18}));
}

TEST(SubstringIndexTest, DuplicateEliminationAcrossFactors) {
  // Heavy uncertainty creates many factors covering the same alignment; the
  // same position must never be reported twice.
  test::RandomStringSpec spec{.length = 40, .alphabet = 2, .theta = 0.8,
                              .max_choices = 2, .seed = 77};
  const UncertainString s = test::RandomUncertain(spec);
  IndexOptions options;
  options.transform.tau_min = 0.05;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  Rng rng(7);
  for (int q = 0; q < 100; ++q) {
    const size_t len = 1 + rng.Uniform(6);
    const std::string pattern = test::RandomPattern(2, len, rng.Next());
    std::vector<Match> out;
    ASSERT_TRUE(index->Query(pattern, 0.05, &out).ok());
    for (size_t i = 1; i < out.size(); ++i) {
      ASSERT_LT(out[i - 1].position, out[i].position)
          << "duplicate or unsorted output for " << pattern;
    }
  }
}

TEST(SubstringIndexTest, LongPatternsAllBlockingModes) {
  test::RandomStringSpec spec{.length = 400, .alphabet = 2, .theta = 0.15,
                              .max_choices = 2, .seed = 5,};
  const UncertainString s = test::RandomUncertain(spec);
  for (const BlockingMode mode :
       {BlockingMode::kPow2, BlockingMode::kPaperExact,
        BlockingMode::kScanOnly}) {
    IndexOptions options;
    options.transform.tau_min = 0.1;
    options.max_short_depth = 3;  // force the long path for m > 3
    options.blocking = mode;
    options.scan_cutoff = 2;      // keep the scan shortcut out of the way
    const auto index = SubstringIndex::Build(s, options);
    ASSERT_TRUE(index.ok());
    Rng rng(11);
    for (int q = 0; q < 40; ++q) {
      const size_t len = 4 + rng.Uniform(12);
      const int64_t start =
          static_cast<int64_t>(rng.Uniform(s.size() - len + 1));
      const std::string pattern =
          test::PatternFromString(s, start, len, rng.Next());
      ExpectSameAsOracle(*index, s, pattern, 0.1);
      ExpectSameAsOracle(*index, s, pattern, 0.35);
    }
  }
}

TEST(SubstringIndexTest, CorrelatedStringMatchesOracle) {
  test::RandomStringSpec spec{.length = 25, .alphabet = 3, .theta = 0.5,
                              .seed = 13};
  UncertainString s = test::RandomUncertain(spec);
  // Attach a handful of correlation rules between existing characters.
  Rng rng(29);
  int added = 0;
  for (int attempt = 0; attempt < 200 && added < 5; ++attempt) {
    const int64_t pos = static_cast<int64_t>(rng.Uniform(s.size()));
    const int64_t dep = static_cast<int64_t>(rng.Uniform(s.size()));
    if (pos == dep) continue;
    const auto& opts = s.options(pos);
    const auto& dep_opts = s.options(dep);
    CorrelationRule rule;
    rule.pos = pos;
    rule.ch = opts[rng.Uniform(opts.size())].ch;
    rule.dep_pos = dep;
    rule.dep_ch = dep_opts[rng.Uniform(dep_opts.size())].ch;
    rule.prob_if_present = 0.125 * (1 + rng.Uniform(7));
    rule.prob_if_absent = 0.125 * (1 + rng.Uniform(7));
    if (s.AddCorrelation(rule).ok()) ++added;
  }
  ASSERT_EQ(added, 5);
  IndexOptions options;
  options.transform.tau_min = 0.05;
  CrossValidate(s, options, 0.05, 101);
  CrossValidate(s, options, 0.2, 102);
}

TEST(SubstringIndexTest, TopKReturnsBestMatches) {
  test::RandomStringSpec spec{.length = 60, .alphabet = 2, .theta = 0.5,
                              .seed = 17};
  const UncertainString s = test::RandomUncertain(spec);
  IndexOptions options;
  options.transform.tau_min = 0.05;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  Rng rng(23);
  for (int q = 0; q < 40; ++q) {
    const size_t len = 1 + rng.Uniform(5);
    const std::string pattern = test::RandomPattern(2, len, rng.Next());
    std::vector<Match> all = BruteForceSearch(s, pattern, 0.05);
    std::sort(all.begin(), all.end(), [](const Match& a, const Match& b) {
      if (a.probability != b.probability) return a.probability > b.probability;
      return a.position < b.position;
    });
    for (const size_t k : {size_t{1}, size_t{3}, size_t{100}}) {
      std::vector<Match> got;
      ASSERT_TRUE(index->QueryTopK(pattern, 0.05, k, &got).ok());
      ASSERT_EQ(got.size(), std::min(k, all.size())) << pattern;
      // Probabilities must match the k best (positions may tie arbitrarily
      // among equal probabilities).
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i].probability, all[i].probability, 1e-9) << pattern;
      }
    }
  }
}

TEST(SubstringIndexTest, CountMatchesQuerySize) {
  test::RandomStringSpec spec{.length = 50, .alphabet = 2, .seed = 19};
  const UncertainString s = test::RandomUncertain(spec);
  IndexOptions options;
  options.transform.tau_min = 0.1;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  for (const char* p : {"a", "ab", "ba", "bb", "aaa"}) {
    size_t count = 0;
    std::vector<Match> out;
    ASSERT_TRUE(index->Count(p, 0.1, &count).ok());
    ASSERT_TRUE(index->Query(p, 0.1, &out).ok());
    EXPECT_EQ(count, out.size());
  }
}

TEST(SubstringIndexTest, StatsAreCoherent) {
  test::RandomStringSpec spec{.length = 64, .alphabet = 3, .seed = 23};
  const UncertainString s = test::RandomUncertain(spec);
  IndexOptions options;
  options.transform.tau_min = 0.2;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  const auto stats = index->stats();
  EXPECT_EQ(stats.original_length, 64);
  EXPECT_GT(stats.num_factors, 0u);
  EXPECT_GT(stats.transformed_length, stats.num_factors);  // chars + sentinels
  EXPECT_GE(stats.short_depth_limit, 1);
  EXPECT_GT(stats.num_tree_nodes, 0u);
  EXPECT_GT(index->MemoryUsage(), 0u);
}

// ---- The parameterized oracle sweep ----

struct SweepCase {
  int length;
  int alphabet;
  double theta;
  double tau_min;
  double tau;
  RmqEngineKind engine;
  int seed;
};

class SubstringSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SubstringSweepTest, MatchesOracle) {
  const SweepCase& c = GetParam();
  test::RandomStringSpec spec;
  spec.length = c.length;
  spec.alphabet = c.alphabet;
  spec.theta = c.theta;
  spec.seed = static_cast<uint64_t>(c.seed) * 1000 + c.length;
  const UncertainString s = test::RandomUncertain(spec);
  IndexOptions options;
  options.transform.tau_min = c.tau_min;
  options.rmq_engine = c.engine;
  CrossValidate(s, options, c.tau, spec.seed + 1);
}

std::vector<SweepCase> MakeSweep() {
  std::vector<SweepCase> cases;
  int seed = 0;
  for (const int length : {1, 2, 13, 60, 200}) {
    for (const double theta : {0.0, 0.3, 0.8}) {
      for (const auto& [tau_min, tau] :
           std::vector<std::pair<double, double>>{{0.1, 0.1},
                                                  {0.1, 0.3},
                                                  {0.25, 0.6}}) {
        cases.push_back(SweepCase{length, 3, theta, tau_min, tau,
                                  RmqEngineKind::kBlock, ++seed});
      }
    }
  }
  // Engine cross-checks on a medium instance.
  for (const RmqEngineKind engine :
       {RmqEngineKind::kFischerHeun, RmqEngineKind::kSparseTable}) {
    cases.push_back(SweepCase{80, 2, 0.5, 0.1, 0.2, engine, ++seed});
    cases.push_back(SweepCase{80, 4, 0.4, 0.15, 0.15, engine, ++seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SubstringSweepTest,
                         ::testing::ValuesIn(MakeSweep()));

}  // namespace
}  // namespace pti
