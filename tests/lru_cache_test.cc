// util/lru_cache.h: LRU order, byte-budget eviction, sharding, the
// Clear-on-reload staleness guarantee, and a concurrent reader/writer stress
// run (the suite is in the sanitize and tsan CI regexes, so the stress test
// doubles as a race detector workload).

#include "util/lru_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace pti {
namespace {

using Cache = LruCache<std::string, std::vector<int>>;

TEST(LruCacheTest, GetMissThenHit) {
  Cache cache(1024, 1);
  std::vector<int> out;
  EXPECT_FALSE(cache.Get("a", &out));
  cache.Put("a", {1, 2, 3}, 24);
  ASSERT_TRUE(cache.Get("a", &out));
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 24u);
  EXPECT_EQ(stats.byte_budget, 1024u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  Cache cache(100, 1);  // one shard: eviction order is fully deterministic
  cache.Put("a", {1}, 40);
  cache.Put("b", {2}, 40);
  std::vector<int> out;
  ASSERT_TRUE(cache.Get("a", &out));  // refresh "a"; "b" is now LRU
  cache.Put("c", {3}, 40);            // 120 > 100: evicts "b"
  EXPECT_TRUE(cache.Get("a", &out));
  EXPECT_FALSE(cache.Get("b", &out));
  EXPECT_TRUE(cache.Get("c", &out));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, 100u);
}

TEST(LruCacheTest, ReplaceUpdatesValueAndCharge) {
  Cache cache(100, 1);
  cache.Put("a", {1}, 30);
  cache.Put("a", {7, 8}, 60);
  std::vector<int> out;
  ASSERT_TRUE(cache.Get("a", &out));
  EXPECT_EQ(out, (std::vector<int>{7, 8}));
  EXPECT_EQ(cache.stats().bytes, 60u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(LruCacheTest, OversizedEntryIsNotAdmittedAndDropsStaleValue) {
  Cache cache(100, 1);
  cache.Put("a", {1}, 30);
  // A replacement too large to admit must not leave the old value behind:
  // serving a stale smaller result would be worse than a miss.
  cache.Put("a", {2}, 500);
  std::vector<int> out;
  EXPECT_FALSE(cache.Get("a", &out));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(LruCacheTest, ZeroBudgetDisablesCaching) {
  Cache cache(0, 4);
  cache.Put("a", {1}, 0);  // even zero-charge entries: budget 0 admits none
  cache.Put("b", {2}, 8);
  std::vector<int> out;
  EXPECT_FALSE(cache.Get("b", &out));
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(LruCacheTest, BudgetHoldsAcrossShards) {
  Cache cache(800, 8);
  for (int i = 0; i < 1000; ++i) {
    cache.Put("key" + std::to_string(i), {i}, 10);
  }
  const auto stats = cache.stats();
  EXPECT_LE(stats.bytes, 800u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(cache.num_shards(), 8u);
}

TEST(LruCacheTest, ClearDropsEverythingSoReloadCannotServeStaleResults) {
  Cache cache(4096, 4);
  for (int gen = 1; gen <= 2; ++gen) {
    for (int i = 0; i < 32; ++i) {
      cache.Put("key" + std::to_string(i), {gen}, 16);
    }
    std::vector<int> out;
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(cache.Get("key" + std::to_string(i), &out));
      // After Clear (the engine's index-reload hook) only current-generation
      // values are ever visible.
      EXPECT_EQ(out, std::vector<int>{gen}) << "generation " << gen;
    }
    cache.Clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().bytes, 0u);
    EXPECT_FALSE(cache.Get("key0", &out));
  }
}

TEST(LruCacheTest, ConcurrentReadersAndWritersStayConsistent) {
  // Every key maps to one canonical value (i, i * 31); a hit returning
  // anything else means a torn read or crossed entries. Writers churn the
  // byte budget to force constant eviction while readers probe.
  Cache cache(2000, 4);
  constexpr int kKeys = 64;
  constexpr int kThreads = 8;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &failed, t] {
      std::vector<int> out;
      for (int iter = 0; iter < 3000; ++iter) {
        const int i = (iter * 17 + t * 13) % kKeys;
        const std::string key = "key" + std::to_string(i);
        if ((iter + t) % 3 == 0) {
          cache.Put(key, {i, i * 31}, 50);
        } else if (cache.Get(key, &out)) {
          if (out != std::vector<int>{i, i * 31}) failed.store(true);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  const auto stats = cache.stats();
  EXPECT_LE(stats.bytes, 2000u);
  EXPECT_EQ(stats.bytes, stats.entries * 50u);
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

TEST(LruCacheTest, ClearRacingTrafficKeepsShardsConsistent) {
  // Clear (the index-reload hook) fires repeatedly while workers put and
  // get canonical key-derived values. Hits must still return exactly the
  // canonical value, and the shards must end internally consistent —
  // exercises the Clear/Put/Get lock interleavings under tsan.
  Cache cache(4096, 4);
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&cache, &stop, &failed, t] {
      std::vector<int> out;
      int iter = 0;
      while (!stop.load()) {
        const int i = (iter++ * 7 + t) % 16;
        const std::string key = "key" + std::to_string(i);
        if (iter % 2 == 0) {
          cache.Put(key, {i, i + 100}, 32);
        } else if (cache.Get(key, &out)) {
          if (out != std::vector<int>{i, i + 100}) failed.store(true);
        }
      }
    });
  }
  for (int round = 0; round < 200; ++round) cache.Clear();
  stop.store(true);
  for (auto& th : workers) th.join();
  EXPECT_FALSE(failed.load());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.bytes, stats.entries * 32u);
  EXPECT_LE(stats.bytes, 4096u);
}

}  // namespace
}  // namespace pti
