// Cross-index consistency net: for random uncertain strings the different
// index implementations and the brute-force oracles must agree on the same
// (pattern, tau) queries. This pins the refactors (shared serde layer,
// listing rule-table extraction) against behaviour drift: any divergence
// between the index families is a bug in one of them.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/approx_index.h"
#include "core/brute_force.h"
#include "core/listing_index.h"
#include "core/special_index.h"
#include "core/substring_index.h"
#include "test_util.h"

namespace pti {
namespace {

constexpr double kTauMin = 0.1;

std::vector<UncertainString> RandomDocs(uint64_t seed, size_t ndocs,
                                        int64_t length) {
  std::vector<UncertainString> docs;
  for (size_t d = 0; d < ndocs; ++d) {
    docs.push_back(test::RandomUncertain(
        {.length = length, .alphabet = 3, .theta = 0.5, .seed = seed + d}));
  }
  return docs;
}

TEST(CrossIndexTest, SubstringListingBruteForceAgree) {
  for (const uint64_t seed : {11u, 22u, 33u}) {
    const std::vector<UncertainString> docs = RandomDocs(seed, 3, 30);

    ListingOptions listing_options;
    listing_options.transform.tau_min = kTauMin;
    const auto listing = ListingIndex::Build(docs, listing_options);
    ASSERT_TRUE(listing.ok()) << listing.status().ToString();

    std::vector<SubstringIndex> per_doc;
    for (const UncertainString& d : docs) {
      IndexOptions options;
      options.transform.tau_min = kTauMin;
      auto index = SubstringIndex::Build(d, options);
      ASSERT_TRUE(index.ok()) << index.status().ToString();
      per_doc.push_back(std::move(index).value());
    }

    Rng rng(seed);
    for (int q = 0; q < 30; ++q) {
      std::string pattern;
      if (q % 2 == 0) {
        const size_t len = 1 + rng.Uniform(6);
        const int64_t start =
            static_cast<int64_t>(rng.Uniform(30 - len + 1));
        pattern = test::PatternFromString(docs[q % docs.size()], start, len,
                                          rng.Next());
      } else {
        pattern = test::RandomPattern(3, 1 + rng.Uniform(6), rng.Next());
      }
      for (const double tau : {kTauMin, 0.35, 0.7}) {
        // Per-document: SubstringIndex == BruteForceSearch.
        std::vector<double> doc_max(docs.size(), 0.0);
        for (size_t d = 0; d < docs.size(); ++d) {
          std::vector<Match> got;
          ASSERT_TRUE(per_doc[d].Query(pattern, tau, &got).ok());
          const std::vector<Match> want =
              BruteForceSearch(docs[d], pattern, tau);
          ASSERT_TRUE(test::SameMatches(got, want))
              << "doc " << d << " pattern " << pattern << " tau " << tau
              << "\n got: " << test::MatchesToString(got)
              << "\nwant: " << test::MatchesToString(want);
          for (const Match& m : got) {
            doc_max[d] = std::max(doc_max[d], m.probability);
          }
        }
        // Collection: ListingIndex == BruteForceListing, and the Rel_max
        // relevance equals the per-document maximum the substring index
        // reported.
        std::vector<DocMatch> listed;
        ASSERT_TRUE(listing->Query(pattern, tau, &listed).ok());
        const std::vector<DocMatch> want_listed = BruteForceListing(
            docs, pattern, tau, RelevanceMetric::kMax, kTauMin);
        ASSERT_EQ(listed.size(), want_listed.size())
            << "pattern " << pattern << " tau " << tau;
        for (size_t k = 0; k < listed.size(); ++k) {
          EXPECT_EQ(listed[k].doc, want_listed[k].doc);
          EXPECT_NEAR(listed[k].relevance, want_listed[k].relevance, 1e-9);
          EXPECT_NEAR(listed[k].relevance, doc_max[listed[k].doc], 1e-9)
              << "pattern " << pattern << " tau " << tau;
        }
      }
    }
  }
}

TEST(CrossIndexTest, SpecialIndexModesAgreeWithBruteForce) {
  // Both §4 operating modes (simple scan and efficient RMQ) against the
  // oracle. (A special string's probabilities deliberately sum below 1 per
  // position, so the §3 general indexes do not apply to it.)
  for (const uint64_t seed : {5u, 6u}) {
    Rng gen(seed);
    UncertainString s;
    for (int i = 0; i < 40; ++i) {
      s.AddPosition({{static_cast<uint8_t>('a' + gen.Uniform(3)),
                      static_cast<double>(1 + gen.Uniform(64)) / 64.0}});
    }
    SpecialIndexOptions simple;
    simple.use_rmq = false;
    const auto scan_index = SpecialIndex::Build(s, simple);
    ASSERT_TRUE(scan_index.ok()) << scan_index.status().ToString();
    SpecialIndexOptions efficient;
    efficient.scan_cutoff = 0;  // force the RMQ path even on tiny ranges
    const auto rmq_index = SpecialIndex::Build(s, efficient);
    ASSERT_TRUE(rmq_index.ok()) << rmq_index.status().ToString();

    Rng rng(seed + 100);
    for (int q = 0; q < 40; ++q) {
      const std::string pattern =
          test::RandomPattern(3, 1 + rng.Uniform(7), rng.Next());
      for (const double tau : {kTauMin, 0.4, 0.8}) {
        const std::vector<Match> want = BruteForceSearch(s, pattern, tau);
        std::vector<Match> from_scan, from_rmq;
        ASSERT_TRUE(scan_index->Query(pattern, tau, &from_scan).ok());
        ASSERT_TRUE(rmq_index->Query(pattern, tau, &from_rmq).ok());
        ASSERT_TRUE(test::SameMatches(from_scan, want))
            << "pattern " << pattern << " tau " << tau;
        ASSERT_TRUE(test::SameMatches(from_rmq, want))
            << "pattern " << pattern << " tau " << tau;
      }
    }
  }
}

TEST(CrossIndexTest, ApproxIndexBracketsTheExactIndex) {
  // §7 guarantee relative to the exact index: every true >= tau match is
  // reported, and everything reported truly has probability >= tau - eps.
  const UncertainString s = test::RandomUncertain(
      {.length = 40, .alphabet = 3, .theta = 0.5, .seed = 77});
  constexpr double kEps = 0.05;
  ApproxOptions approx_options;
  approx_options.transform.tau_min = kTauMin;
  approx_options.epsilon = kEps;
  approx_options.exact_probabilities = true;
  const auto approx = ApproxIndex::Build(s, approx_options);
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  IndexOptions options;
  options.transform.tau_min = kTauMin;
  const auto exact = SubstringIndex::Build(s, options);
  ASSERT_TRUE(exact.ok());

  Rng rng(78);
  for (int q = 0; q < 40; ++q) {
    const std::string pattern =
        test::RandomPattern(3, 1 + rng.Uniform(6), rng.Next());
    for (const double tau : {0.2, 0.5, 0.8}) {
      std::vector<Match> reported, truth;
      ASSERT_TRUE(approx->Query(pattern, tau, &reported).ok());
      ASSERT_TRUE(exact->Query(pattern, tau, &truth).ok());
      // Every true match is present.
      for (const Match& t : truth) {
        const bool found =
            std::any_of(reported.begin(), reported.end(), [&](const Match& r) {
              return r.position == t.position;
            });
        EXPECT_TRUE(found) << "pattern " << pattern << " tau " << tau
                           << " missing position " << t.position;
      }
      // Nothing below tau - eps is reported.
      for (const Match& r : reported) {
        const double true_prob =
            s.OccurrenceProb(pattern, r.position).ToLinear();
        EXPECT_GE(true_prob, tau - kEps - 1e-9)
            << "pattern " << pattern << " tau " << tau << " position "
            << r.position;
      }
    }
  }
}

}  // namespace
}  // namespace pti
