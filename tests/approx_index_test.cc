// Tests for ApproxIndex (§7). The contract under test:
//   (1) no false negatives: every position with Pr(p, d) >= tau is reported;
//   (2) bounded error: every reported position has Pr(p, d) >= tau - eps;
//   (3) no duplicates (the link-stabbing uniqueness argument);
//   (4) reported probabilities under-estimate the truth by at most eps.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/approx_index.h"
#include "core/brute_force.h"
#include "test_util.h"

namespace pti {
namespace {

void CheckGuarantees(const ApproxIndex& index, const UncertainString& s,
                     const std::string& pattern, double tau, double eps) {
  std::vector<Match> got;
  ASSERT_TRUE(index.Query(pattern, tau, &got).ok()) << pattern;
  // (3) sorted, no duplicates.
  std::set<int64_t> positions;
  for (const Match& m : got) {
    ASSERT_TRUE(positions.insert(m.position).second)
        << "duplicate position " << m.position << " for '" << pattern << "'";
  }
  // (1) every true match reported.
  const std::vector<Match> want = BruteForceSearch(s, pattern, tau);
  for (const Match& m : want) {
    EXPECT_TRUE(positions.count(m.position))
        << "missing true match at " << m.position << " (prob "
        << m.probability << ") for '" << pattern << "' tau " << tau;
  }
  // (2) + (4): no reported match below tau - eps; reported probability
  // brackets the true value from below within eps.
  for (const Match& m : got) {
    const double truth = s.OccurrenceProb(pattern, m.position).ToLinear();
    EXPECT_GE(truth, tau - eps - 1e-9)
        << "reported " << m.position << " has true prob " << truth
        << " < tau - eps for '" << pattern << "'";
    EXPECT_LE(m.probability, truth + 1e-9);
    EXPECT_GE(m.probability, truth - eps - 1e-9);
  }
}

TEST(ApproxIndexTest, ExactOnDeterministicString) {
  const UncertainString s =
      UncertainString::FromDeterministic("abracadabraabracadabra");
  ApproxOptions options;
  options.transform.tau_min = 0.5;
  options.epsilon = 0.1;
  const auto index = ApproxIndex::Build(s, options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  std::vector<Match> out;
  ASSERT_TRUE(index->Query("abra", 0.9, &out).ok());
  std::vector<int64_t> pos;
  for (const Match& m : out) pos.push_back(m.position);
  EXPECT_EQ(pos, (std::vector<int64_t>{0, 7, 11, 18}));
}

TEST(ApproxIndexTest, OptionsValidation) {
  const UncertainString s = UncertainString::FromDeterministic("ab");
  ApproxOptions options;
  options.epsilon = 0.0;
  EXPECT_TRUE(ApproxIndex::Build(s, options).status().IsInvalidArgument());
  options.epsilon = 1.5;
  EXPECT_TRUE(ApproxIndex::Build(s, options).status().IsInvalidArgument());
}

TEST(ApproxIndexTest, QueryValidation) {
  const UncertainString s = UncertainString::FromDeterministic("ab");
  ApproxOptions options;
  options.transform.tau_min = 0.5;
  const auto index = ApproxIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::vector<Match> out;
  EXPECT_TRUE(index->Query("", 0.6, &out).IsInvalidArgument());
  EXPECT_TRUE(index->Query("a", 0.0, &out).IsInvalidArgument());
  EXPECT_TRUE(index->Query("a", 0.2, &out).IsInvalidArgument());
}

TEST(ApproxIndexTest, EmptyString) {
  const auto index = ApproxIndex::Build(UncertainString(), ApproxOptions{});
  ASSERT_TRUE(index.ok());
  std::vector<Match> out;
  EXPECT_TRUE(index->Query("a", 0.5, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(ApproxIndexTest, WorkedSmallExample) {
  // Figure 10's string again; tau = 0.4, eps = 0.05: "QP" truly matches at
  // position 0 (0.49); position 1 (0.3) is below tau - eps = 0.35 and must
  // NOT appear.
  UncertainString s;
  s.AddPosition({{'Q', 0.7}, {'S', 0.3}});
  s.AddPosition({{'Q', 0.3}, {'P', 0.7}});
  s.AddPosition({{'P', 1.0}});
  s.AddPosition({{'A', 0.4}, {'F', 0.3}, {'P', 0.2}, {'Q', 0.1}});
  ApproxOptions options;
  options.transform.tau_min = 0.1;
  options.epsilon = 0.05;
  const auto index = ApproxIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::vector<Match> out;
  ASSERT_TRUE(index->Query("QP", 0.4, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].position, 0);
  CheckGuarantees(*index, s, "QP", 0.4, 0.05);
  CheckGuarantees(*index, s, "QP", 0.2, 0.05);
  CheckGuarantees(*index, s, "QPP", 0.3, 0.05);
}

TEST(ApproxIndexTest, ExactProbabilitiesOption) {
  UncertainString s;
  s.AddPosition({{'Q', 0.7}, {'S', 0.3}});
  s.AddPosition({{'P', 0.7}, {'Q', 0.3}});
  s.AddPosition({{'P', 1.0}});
  ApproxOptions options;
  options.transform.tau_min = 0.1;
  options.epsilon = 0.3;
  options.exact_probabilities = true;
  const auto index = ApproxIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::vector<Match> out;
  ASSERT_TRUE(index->Query("QP", 0.45, &out).ok());
  for (const Match& m : out) {
    EXPECT_NEAR(m.probability,
                s.OccurrenceProb("QP", m.position).ToLinear(), 1e-12);
  }
}

TEST(ApproxIndexTest, StatsReflectEpsilonPartitioning) {
  test::RandomStringSpec spec{.length = 60, .alphabet = 2, .theta = 0.5,
                              .seed = 97};
  const UncertainString s = test::RandomUncertain(spec);
  ApproxOptions coarse;
  coarse.transform.tau_min = 0.1;
  coarse.epsilon = 0.5;
  ApproxOptions fine = coarse;
  fine.epsilon = 0.02;
  const auto a = ApproxIndex::Build(s, coarse);
  const auto b = ApproxIndex::Build(s, fine);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a->stats().num_links, 0u);
  // Finer epsilon => at least as many links.
  EXPECT_GE(b->stats().num_links, a->stats().num_links);
  EXPECT_EQ(a->stats().original_length, 60);
  EXPECT_GT(a->MemoryUsage(), 0u);
}

struct ApproxCase {
  int length;
  double theta;
  double tau_min;
  double epsilon;
  double tau;
  int seed;
};

class ApproxSweepTest : public ::testing::TestWithParam<ApproxCase> {};

TEST_P(ApproxSweepTest, GuaranteesHold) {
  const ApproxCase& c = GetParam();
  test::RandomStringSpec spec;
  spec.length = c.length;
  spec.alphabet = 2;
  spec.theta = c.theta;
  spec.seed = static_cast<uint64_t>(c.seed) * 7919;
  const UncertainString s = test::RandomUncertain(spec);
  ApproxOptions options;
  options.transform.tau_min = c.tau_min;
  options.epsilon = c.epsilon;
  const auto index = ApproxIndex::Build(s, options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  Rng rng(c.seed);
  for (int q = 0; q < 50; ++q) {
    const size_t len = 1 + rng.Uniform(8);
    std::string pattern;
    if (q % 3 == 0 || s.size() < static_cast<int64_t>(len)) {
      pattern = test::RandomPattern(2, len, rng.Next());
    } else {
      const int64_t start =
          static_cast<int64_t>(rng.Uniform(s.size() - len + 1));
      pattern = test::PatternFromString(s, start, len, rng.Next());
    }
    CheckGuarantees(*index, s, pattern, c.tau, c.epsilon);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApproxSweepTest,
    ::testing::Values(ApproxCase{10, 0.5, 0.1, 0.05, 0.2, 1},
                      ApproxCase{40, 0.3, 0.1, 0.05, 0.15, 2},
                      ApproxCase{40, 0.7, 0.1, 0.02, 0.3, 3},
                      ApproxCase{100, 0.2, 0.15, 0.1, 0.25, 4},
                      ApproxCase{100, 0.5, 0.1, 0.2, 0.5, 5},
                      ApproxCase{200, 0.4, 0.2, 0.01, 0.2, 6},
                      ApproxCase{200, 0.1, 0.1, 0.05, 0.8, 7},
                      ApproxCase{60, 0.9, 0.05, 0.05, 0.1, 8}));

TEST(ApproxIndexTest, AgreesWithOracleWhenEpsilonTiny) {
  // With eps far below the probability quantum (1/64 grid), the approximate
  // index must return exactly the true match set.
  test::RandomStringSpec spec{.length = 80, .alphabet = 2, .theta = 0.5,
                              .seed = 111};
  const UncertainString s = test::RandomUncertain(spec);
  ApproxOptions options;
  options.transform.tau_min = 0.1;
  options.epsilon = 1e-7;
  options.exact_probabilities = true;
  const auto index = ApproxIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  Rng rng(113);
  for (int q = 0; q < 40; ++q) {
    const std::string pattern =
        test::RandomPattern(2, 1 + rng.Uniform(6), rng.Next());
    std::vector<Match> got;
    ASSERT_TRUE(index->Query(pattern, 0.25, &got).ok());
    const auto want = BruteForceSearch(s, pattern, 0.25);
    ASSERT_TRUE(test::SameMatches(got, want))
        << pattern << "\n got: " << test::MatchesToString(got)
        << "\nwant: " << test::MatchesToString(want);
  }
}

}  // namespace
}  // namespace pti
