// Shared helpers for the pti test suite: small randomized uncertain-string
// generators (tighter alphabets than datagen, to force collisions and
// interesting suffix structure) and match-list comparison utilities.

#ifndef PTI_TESTS_TEST_UTIL_H_
#define PTI_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/match.h"
#include "core/uncertain_string.h"
#include "util/rng.h"

namespace pti {
namespace test {

struct RandomStringSpec {
  int64_t length = 30;
  int32_t alphabet = 3;       // characters 'a', 'b', ...
  double theta = 0.5;         // fraction of uncertain positions
  int32_t max_choices = 3;    // options per uncertain position
  uint64_t seed = 1;
  double min_prob = 0.05;     // floor for option probabilities
};

/// A random uncertain string over a small alphabet. Probabilities are
/// snapped to multiples of 1/64 so threshold boundary behaviour is exact.
inline UncertainString RandomUncertain(const RandomStringSpec& spec) {
  Rng rng(spec.seed);
  UncertainString s;
  for (int64_t i = 0; i < spec.length; ++i) {
    const bool uncertain = rng.Bernoulli(spec.theta);
    const int32_t want =
        uncertain ? 2 + static_cast<int32_t>(
                            rng.Uniform(std::max(1, spec.max_choices - 1)))
                  : 1;
    const int32_t choices = std::min(want, spec.alphabet);
    std::vector<int32_t> chars;
    while (static_cast<int32_t>(chars.size()) < choices) {
      const int32_t c = static_cast<int32_t>(rng.Uniform(spec.alphabet));
      if (std::find(chars.begin(), chars.end(), c) == chars.end()) {
        chars.push_back(c);
      }
    }
    // Random composition of 64 "ticks" over the choices, each at least 1.
    std::vector<int32_t> ticks(chars.size(), 1);
    int32_t rest = 64 - static_cast<int32_t>(chars.size());
    for (size_t k = 0; k + 1 < ticks.size(); ++k) {
      const int32_t take = static_cast<int32_t>(rng.Uniform(rest + 1));
      ticks[k] += take;
      rest -= take;
    }
    ticks.back() += rest;
    std::vector<CharOption> opts;
    for (size_t k = 0; k < chars.size(); ++k) {
      opts.push_back({static_cast<uint8_t>('a' + chars[k]),
                      static_cast<double>(ticks[k]) / 64.0});
    }
    s.AddPosition(std::move(opts));
  }
  return s;
}

/// Random pattern over the same alphabet (may or may not occur).
inline std::string RandomPattern(int32_t alphabet, size_t length,
                                 uint64_t seed) {
  Rng rng(seed);
  std::string p;
  for (size_t k = 0; k < length; ++k) {
    p.push_back(static_cast<char>('a' + rng.Uniform(alphabet)));
  }
  return p;
}

/// Pattern sampled from an actual path of s (likely to occur).
inline std::string PatternFromString(const UncertainString& s, int64_t start,
                                     size_t length, uint64_t seed) {
  Rng rng(seed);
  std::string p;
  for (size_t k = 0; k < length; ++k) {
    const auto& opts = s.options(start + static_cast<int64_t>(k));
    p.push_back(static_cast<char>(opts[rng.Uniform(opts.size())].ch));
  }
  return p;
}

inline std::string MatchesToString(const std::vector<Match>& ms) {
  std::ostringstream out;
  for (const Match& m : ms) {
    out << "(" << m.position << ", " << m.probability << ") ";
  }
  return out.str();
}

/// Positions must agree exactly; probabilities within tol.
inline bool SameMatches(const std::vector<Match>& a,
                        const std::vector<Match>& b, double tol = 1e-9) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].position != b[i].position) return false;
    if (std::abs(a[i].probability - b[i].probability) > tol) return false;
  }
  return true;
}

}  // namespace test
}  // namespace pti

#endif  // PTI_TESTS_TEST_UTIL_H_
