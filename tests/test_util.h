// Shared helpers for the pti test suite: small randomized uncertain-string
// generators (tighter alphabets than datagen, to force collisions and
// interesting suffix structure) and match-list comparison utilities.

#ifndef PTI_TESTS_TEST_UTIL_H_
#define PTI_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/match.h"
#include "core/uncertain_string.h"
#include "util/rng.h"

namespace pti {
namespace test {

struct RandomStringSpec {
  int64_t length = 30;
  int32_t alphabet = 3;       // characters 'a', 'b', ...
  double theta = 0.5;         // fraction of uncertain positions
  int32_t max_choices = 3;    // options per uncertain position
  uint64_t seed = 1;
  double min_prob = 0.05;     // floor for option probabilities
};

/// A random uncertain string over a small alphabet. Probabilities are
/// snapped to multiples of 1/64 so threshold boundary behaviour is exact.
inline UncertainString RandomUncertain(const RandomStringSpec& spec) {
  Rng rng(spec.seed);
  UncertainString s;
  for (int64_t i = 0; i < spec.length; ++i) {
    const bool uncertain = rng.Bernoulli(spec.theta);
    const int32_t want =
        uncertain ? 2 + static_cast<int32_t>(
                            rng.Uniform(std::max(1, spec.max_choices - 1)))
                  : 1;
    const int32_t choices = std::min(want, spec.alphabet);
    std::vector<int32_t> chars;
    while (static_cast<int32_t>(chars.size()) < choices) {
      const int32_t c = static_cast<int32_t>(rng.Uniform(spec.alphabet));
      if (std::find(chars.begin(), chars.end(), c) == chars.end()) {
        chars.push_back(c);
      }
    }
    // Random composition of 64 "ticks" over the choices, each at least 1.
    std::vector<int32_t> ticks(chars.size(), 1);
    int32_t rest = 64 - static_cast<int32_t>(chars.size());
    for (size_t k = 0; k + 1 < ticks.size(); ++k) {
      const int32_t take = static_cast<int32_t>(rng.Uniform(rest + 1));
      ticks[k] += take;
      rest -= take;
    }
    ticks.back() += rest;
    std::vector<CharOption> opts;
    for (size_t k = 0; k < chars.size(); ++k) {
      opts.push_back({static_cast<uint8_t>('a' + chars[k]),
                      static_cast<double>(ticks[k]) / 64.0});
    }
    s.AddPosition(std::move(opts));
  }
  return s;
}

/// Random pattern over the same alphabet (may or may not occur).
inline std::string RandomPattern(int32_t alphabet, size_t length,
                                 uint64_t seed) {
  Rng rng(seed);
  std::string p;
  for (size_t k = 0; k < length; ++k) {
    p.push_back(static_cast<char>('a' + rng.Uniform(alphabet)));
  }
  return p;
}

/// Pattern sampled from an actual path of s (likely to occur).
inline std::string PatternFromString(const UncertainString& s, int64_t start,
                                     size_t length, uint64_t seed) {
  Rng rng(seed);
  std::string p;
  for (size_t k = 0; k < length; ++k) {
    const auto& opts = s.options(start + static_cast<int64_t>(k));
    p.push_back(static_cast<char>(opts[rng.Uniform(opts.size())].ch));
  }
  return p;
}

/// Attaches `count` random correlation rules between existing characters of
/// s. Probabilities are multiples of 1/8 and at least 1/8, so every case-2
/// marginal stays strictly positive (correlation boosts remain finite) and
/// threshold boundaries stay exact. Returns how many rules were added (the
/// per-(pos, ch) uniqueness rule can reject attempts; with enough positions
/// all `count` land).
inline int32_t AddRandomCorrelations(UncertainString* s, int32_t count,
                                     uint64_t seed) {
  Rng rng(seed);
  int32_t added = 0;
  for (int attempt = 0; attempt < 100 * count && added < count; ++attempt) {
    const int64_t pos = static_cast<int64_t>(rng.Uniform(s->size()));
    const int64_t dep = static_cast<int64_t>(rng.Uniform(s->size()));
    if (pos == dep) continue;
    const auto& opts = s->options(pos);
    const auto& dep_opts = s->options(dep);
    CorrelationRule rule;
    rule.pos = pos;
    rule.ch = opts[rng.Uniform(opts.size())].ch;
    rule.dep_pos = dep;
    rule.dep_ch = dep_opts[rng.Uniform(dep_opts.size())].ch;
    rule.prob_if_present = 0.125 * (1 + rng.Uniform(7));
    rule.prob_if_absent = 0.125 * (1 + rng.Uniform(7));
    if (s->AddCorrelation(rule).ok()) ++added;
  }
  return added;
}

/// One cell of a property sweep: a generated string plus the knobs that
/// produced it, labelled for failure messages.
struct SweepConfig {
  UncertainString s;
  std::string label;        ///< e.g. "len=40 sigma=3 corr=3 rep=0"
  uint64_t seed = 0;        ///< per-cell seed, distinct across the grid
  int32_t alphabet = 0;
  int32_t num_correlations = 0;
};

/// Grid for RunPropertySweep. Defaults cover the regimes the differential
/// tests care about: binary through 5-letter alphabets, with and without
/// correlation rules.
struct PropertySweepSpec {
  std::vector<int64_t> lengths = {40};
  std::vector<int32_t> alphabets = {2, 3, 5};
  std::vector<int32_t> correlation_counts = {0, 3};
  int32_t strings_per_config = 1;  ///< independent seeds per grid cell
  double theta = 0.5;
  uint64_t base_seed = 1;
};

/// Deterministic randomized-property driver: invokes `body(config)` once per
/// grid cell x repetition with an independently seeded string. Everything is
/// derived from base_seed, so failures reproduce exactly; include
/// config.label (and config.seed) in assertion messages.
template <typename Body>
inline void RunPropertySweep(const PropertySweepSpec& spec, Body&& body) {
  uint64_t cell = 0;
  for (const int64_t length : spec.lengths) {
    for (const int32_t alphabet : spec.alphabets) {
      for (const int32_t corr : spec.correlation_counts) {
        for (int32_t rep = 0; rep < spec.strings_per_config; ++rep) {
          ++cell;
          SweepConfig config;
          config.seed = spec.base_seed * 1000003 + cell;
          config.alphabet = alphabet;
          RandomStringSpec rs;
          rs.length = length;
          rs.alphabet = alphabet;
          rs.theta = spec.theta;
          rs.seed = config.seed;
          config.s = RandomUncertain(rs);
          if (corr > 0) {
            config.num_correlations =
                AddRandomCorrelations(&config.s, corr, config.seed * 977 + 13);
          }
          std::ostringstream label;
          label << "len=" << length << " sigma=" << alphabet
                << " corr=" << config.num_correlations << " rep=" << rep
                << " seed=" << config.seed;
          config.label = label.str();
          body(config);
        }
      }
    }
  }
}

inline std::string MatchesToString(const std::vector<Match>& ms) {
  std::ostringstream out;
  for (const Match& m : ms) {
    out << "(" << m.position << ", " << m.probability << ") ";
  }
  return out.str();
}

/// Positions must agree exactly; probabilities within tol.
inline bool SameMatches(const std::vector<Match>& a,
                        const std::vector<Match>& b, double tol = 1e-9) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].position != b[i].position) return false;
    if (std::abs(a[i].probability - b[i].probability) > tol) return false;
  }
  return true;
}

}  // namespace test
}  // namespace pti

#endif  // PTI_TESTS_TEST_UTIL_H_
