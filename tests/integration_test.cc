// End-to-end integration tests: the full pipeline on §8.1-style data, all
// indexes answering the same workload consistently, and determinism.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/approx_index.h"
#include "core/brute_force.h"
#include "core/listing_index.h"
#include "core/substring_index.h"
#include "core/usformat.h"
#include "datagen/datagen.h"
#include "test_util.h"

namespace pti {
namespace {

TEST(IntegrationTest, PaperProtocolPipeline) {
  // Generate a §8.1-style string, index it, and cross-validate a realistic
  // query workload against the oracle.
  DatasetOptions data;
  data.length = 3000;
  data.theta = 0.3;
  data.seed = 2026;
  const UncertainString s = GenerateUncertainString(data);
  IndexOptions options;
  options.transform.tau_min = 0.1;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  const auto stats = index->stats();
  EXPECT_EQ(stats.original_length, 3000);
  EXPECT_GT(stats.transformed_length, 3000u);  // uncertainty inflates N

  for (const size_t m : {2, 5, 10, 20}) {
    const auto patterns = SamplePatterns(s, 10, m, 4000 + m);
    for (const auto& p : patterns) {
      for (const double tau : {0.1, 0.2, 0.5}) {
        std::vector<Match> got;
        ASSERT_TRUE(index->Query(p, tau, &got).ok());
        ASSERT_TRUE(test::SameMatches(got, BruteForceSearch(s, p, tau)))
            << "m=" << m << " tau=" << tau << " p=" << p;
      }
    }
  }
}

TEST(IntegrationTest, ExactAndApproxConsistency) {
  DatasetOptions data;
  data.length = 800;
  data.theta = 0.4;
  data.seed = 31;
  const UncertainString s = GenerateUncertainString(data);
  IndexOptions exact_options;
  exact_options.transform.tau_min = 0.1;
  ApproxOptions approx_options;
  approx_options.transform.tau_min = 0.1;
  approx_options.epsilon = 0.05;
  const auto exact = SubstringIndex::Build(s, exact_options);
  const auto approx = ApproxIndex::Build(s, approx_options);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(approx.ok());
  const auto patterns = SamplePatterns(s, 30, 5, 77);
  for (const auto& p : patterns) {
    std::vector<Match> em, am;
    ASSERT_TRUE(exact->Query(p, 0.3, &em).ok());
    ASSERT_TRUE(approx->Query(p, 0.3, &am).ok());
    // Approx is a superset of exact, within the eps band.
    size_t ei = 0;
    for (const Match& a : am) {
      if (ei < em.size() && em[ei].position == a.position) ++ei;
    }
    EXPECT_EQ(ei, em.size()) << "approx missed an exact match for " << p;
    EXPECT_GE(am.size(), em.size());
    for (const Match& a : am) {
      EXPECT_GE(s.OccurrenceProb(p, a.position).ToLinear(), 0.3 - 0.05 - 1e-9);
    }
  }
}

TEST(IntegrationTest, ListingAgreesWithPerDocumentSearch) {
  DatasetOptions data;
  data.length = 1500;
  data.theta = 0.3;
  data.seed = 55;
  const auto docs = GenerateCollection(data);
  ASSERT_GT(docs.size(), 20u);
  ListingOptions options;
  options.transform.tau_min = 0.1;
  const auto listing = ListingIndex::Build(docs, options);
  ASSERT_TRUE(listing.ok());
  // Per-document substring indexes as the independent implementation.
  std::vector<SubstringIndex> per_doc;
  for (const auto& d : docs) {
    IndexOptions io;
    io.transform.tau_min = 0.1;
    auto idx = SubstringIndex::Build(d, io);
    ASSERT_TRUE(idx.ok());
    per_doc.push_back(std::move(idx).value());
  }
  const auto patterns = SampleCollectionPatterns(docs, 25, 4, 91);
  for (const auto& p : patterns) {
    std::vector<DocMatch> got;
    ASSERT_TRUE(listing->Query(p, 0.2, &got).ok());
    std::vector<DocMatch> want;
    for (size_t d = 0; d < per_doc.size(); ++d) {
      std::vector<Match> ms;
      ASSERT_TRUE(per_doc[d].Query(p, 0.2, &ms).ok());
      double best = 0;
      for (const Match& m : ms) best = std::max(best, m.probability);
      if (!ms.empty()) {
        want.push_back(DocMatch{static_cast<int32_t>(d), best});
      }
    }
    ASSERT_EQ(got.size(), want.size()) << p;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].doc, want[i].doc);
      EXPECT_NEAR(got[i].relevance, want[i].relevance, 1e-9);
    }
  }
}

TEST(IntegrationTest, FormatToIndexPipeline) {
  // Parse the paper's Figure 10 string from the text format and query it.
  const auto s = ParseUncertainString(
      "Q=0.7 S=0.3\n"
      "Q=0.3 P=0.7\n"
      "P=1.0\n"
      "A=0.4 F=0.3 P=0.2 Q=0.1\n");
  ASSERT_TRUE(s.ok());
  IndexOptions options;
  options.transform.tau_min = 0.1;
  const auto index = SubstringIndex::Build(*s, options);
  ASSERT_TRUE(index.ok());
  std::vector<Match> out;
  ASSERT_TRUE(index->Query("QP", 0.4, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].position, 0);
}

TEST(IntegrationTest, DeterministicAcrossRebuilds) {
  DatasetOptions data;
  data.length = 600;
  data.theta = 0.4;
  data.seed = 123;
  const UncertainString s = GenerateUncertainString(data);
  IndexOptions options;
  options.transform.tau_min = 0.1;
  const auto a = SubstringIndex::Build(s, options);
  const auto b = SubstringIndex::Build(s, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto patterns = SamplePatterns(s, 20, 6, 321);
  for (const auto& p : patterns) {
    std::vector<Match> ma, mb;
    ASSERT_TRUE(a->Query(p, 0.15, &ma).ok());
    ASSERT_TRUE(b->Query(p, 0.15, &mb).ok());
    ASSERT_TRUE(test::SameMatches(ma, mb, 0.0)) << p;
  }
}

TEST(IntegrationTest, ThreadSafeConcurrentQueries) {
  DatasetOptions data;
  data.length = 1000;
  data.theta = 0.3;
  data.seed = 9;
  const UncertainString s = GenerateUncertainString(data);
  IndexOptions options;
  options.transform.tau_min = 0.1;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  const auto patterns = SamplePatterns(s, 16, 5, 13);
  std::vector<std::vector<Match>> expected(patterns.size());
  for (size_t i = 0; i < patterns.size(); ++i) {
    ASSERT_TRUE(index->Query(patterns[i], 0.2, &expected[i]).ok());
  }
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        for (size_t i = 0; i < patterns.size(); ++i) {
          std::vector<Match> got;
          if (!index->Query(patterns[i], 0.2, &got).ok() ||
              !test::SameMatches(got, expected[i], 0.0)) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace pti
