// Tests for the uncertain-string text format parser/formatter.

#include <gtest/gtest.h>

#include "core/usformat.h"

namespace pti {
namespace {

TEST(UsFormatTest, ParsesBasicFile) {
  const auto s = ParseUncertainString(
      "# a comment\n"
      "A=0.4 B=0.3 F=0.3\n"
      "\n"
      "B=1.0\n");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->size(), 2);
  EXPECT_EQ(s->BaseProb(0, 'A'), 0.4);
  EXPECT_EQ(s->BaseProb(1, 'B'), 1.0);
}

TEST(UsFormatTest, ParsesCorrelations) {
  const auto s = ParseUncertainString(
      "e=0.6 f=0.4\n"
      "q=1.0\n"
      "z=1.0\n"
      "@corr 2 z 0 e 0.3 0.4\n");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  ASSERT_EQ(s->correlations().size(), 1u);
  EXPECT_EQ(s->correlations()[0].dep_ch, 'e');
  EXPECT_NEAR(s->OccurrenceProb("qz", 1).ToLinear(), 0.34, 1e-12);
}

TEST(UsFormatTest, ErrorsCarryLineNumbers) {
  const auto bad = ParseUncertainString("A=0.5 B=0.5\nnotapair\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(UsFormatTest, RejectsBadProbability) {
  EXPECT_FALSE(ParseUncertainString("A=abc\n").ok());
  EXPECT_FALSE(ParseUncertainString("A=0.5 B=0.7\n").ok());  // sum != 1
}

TEST(UsFormatTest, RejectsBadDirective) {
  EXPECT_FALSE(ParseUncertainString("A=1.0\n@weird 1 2 3\n").ok());
  EXPECT_FALSE(ParseUncertainString("A=1.0\n@corr 0 A\n").ok());
  // Correlation referencing a missing position.
  const auto bad = ParseUncertainString("A=1.0\n@corr 0 A 5 B 0.5 0.5\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(UsFormatTest, RoundTrip) {
  const std::string original =
      "A=0.25 C=0.75\n"
      "G=1.0\n"
      "T=0.5 A=0.5\n"
      "@corr 1 G 0 A 0.875 0.125\n";
  const auto s = ParseUncertainString(original);
  ASSERT_TRUE(s.ok());
  const std::string formatted = FormatUncertainString(*s);
  const auto s2 = ParseUncertainString(formatted);
  ASSERT_TRUE(s2.ok());
  ASSERT_EQ(s2->size(), s->size());
  for (int64_t i = 0; i < s->size(); ++i) {
    ASSERT_EQ(s2->options(i).size(), s->options(i).size());
    for (size_t k = 0; k < s->options(i).size(); ++k) {
      EXPECT_EQ(s2->options(i)[k].ch, s->options(i)[k].ch);
      EXPECT_EQ(s2->options(i)[k].prob, s->options(i)[k].prob);
    }
  }
  ASSERT_EQ(s2->correlations().size(), 1u);
}

TEST(UsFormatTest, WindowsLineEndings) {
  const auto s = ParseUncertainString("A=1.0\r\nB=1.0\r\n");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 2);
}

TEST(UsFormatTest, EmptyInputIsEmptyString) {
  const auto s = ParseUncertainString("");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 0);
}

}  // namespace
}  // namespace pti
