// Tests for the RMQ engines: exhaustive and randomized cross-checks against
// BruteForceArgMax, including tie-breaking, -inf sentinels, and all three
// engines behind the type-erased handle.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "rmq/block_rmq.h"
#include "rmq/fischer_heun_rmq.h"
#include "rmq/rmq_handle.h"
#include "rmq/sparse_table_rmq.h"
#include "util/rng.h"

namespace pti {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

struct VecFn {
  const std::vector<double>* v;
  double operator()(size_t i) const { return (*v)[i]; }
};

// Checks every (l, r) pair against brute force for all three engines.
void CheckAllRanges(const std::vector<double>& v) {
  VecFn fn{&v};
  SparseTableRmq<VecFn> sparse(fn, v.size());
  BlockRmq<VecFn> block(fn, v.size(), 4);  // small blocks stress boundaries
  FischerHeunRmq<VecFn> fh(fn, v.size());
  for (size_t l = 0; l < v.size(); ++l) {
    for (size_t r = l; r < v.size(); ++r) {
      const size_t want = BruteForceArgMax(fn, l, r);
      ASSERT_EQ(sparse.ArgMax(l, r), want) << "sparse [" << l << "," << r << "]";
      ASSERT_EQ(block.ArgMax(l, r), want) << "block [" << l << "," << r << "]";
      ASSERT_EQ(fh.ArgMax(l, r), want) << "fh [" << l << "," << r << "]";
    }
  }
}

TEST(RmqTest, SingleElement) { CheckAllRanges({3.14}); }

TEST(RmqTest, TwoElements) {
  CheckAllRanges({1.0, 2.0});
  CheckAllRanges({2.0, 1.0});
  CheckAllRanges({1.0, 1.0});
}

TEST(RmqTest, AllEqualPrefersLeftmost) {
  const std::vector<double> v(50, 7.0);
  VecFn fn{&v};
  SparseTableRmq<VecFn> sparse(fn, v.size());
  BlockRmq<VecFn> block(fn, v.size(), 8);
  FischerHeunRmq<VecFn> fh(fn, v.size());
  EXPECT_EQ(sparse.ArgMax(10, 40), 10u);
  EXPECT_EQ(block.ArgMax(10, 40), 10u);
  EXPECT_EQ(fh.ArgMax(10, 40), 10u);
}

TEST(RmqTest, StrictlyIncreasing) {
  std::vector<double> v;
  for (int i = 0; i < 60; ++i) v.push_back(i);
  CheckAllRanges(v);
}

TEST(RmqTest, StrictlyDecreasing) {
  std::vector<double> v;
  for (int i = 0; i < 60; ++i) v.push_back(-i);
  CheckAllRanges(v);
}

TEST(RmqTest, NegInfSentinels) {
  // The indexes use -inf for deleted/invalid entries; engines must handle
  // ranges that are entirely or partially -inf.
  std::vector<double> v = {kNegInf, 1.0, kNegInf, kNegInf, 2.0,
                           kNegInf, kNegInf, kNegInf, 0.5};
  CheckAllRanges(v);
  const std::vector<double> all_inf(20, kNegInf);
  CheckAllRanges(all_inf);
}

TEST(RmqTest, ExhaustiveSmallArraysWithTies) {
  // All arrays of length up to 6 over {0, 1, 2}: catches any Cartesian-code
  // tie-handling bug in FischerHeunRmq exhaustively.
  for (int len = 1; len <= 6; ++len) {
    std::vector<int> digits(len, 0);
    while (true) {
      std::vector<double> v(digits.begin(), digits.end());
      CheckAllRanges(v);
      int i = 0;
      for (; i < len; ++i) {
        if (++digits[i] < 3) break;
        digits[i] = 0;
      }
      if (i == len) break;
    }
  }
}

class RmqRandomTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RmqRandomTest, MatchesBruteForce) {
  const auto [size, value_range] = GetParam();
  Rng rng(static_cast<uint64_t>(size) * 1000003 + value_range);
  std::vector<double> v(size);
  for (auto& x : v) {
    x = static_cast<double>(rng.UniformInt(0, value_range));
    if (rng.Bernoulli(0.1)) x = kNegInf;  // sprinkle sentinels
  }
  VecFn fn{&v};
  SparseTableRmq<VecFn> sparse(fn, v.size());
  BlockRmq<VecFn> block(fn, v.size());
  FischerHeunRmq<VecFn> fh(fn, v.size());
  for (int trial = 0; trial < 500; ++trial) {
    size_t l = rng.Uniform(v.size());
    size_t r = rng.Uniform(v.size());
    if (l > r) std::swap(l, r);
    const size_t want = BruteForceArgMax(fn, l, r);
    ASSERT_EQ(sparse.ArgMax(l, r), want);
    ASSERT_EQ(block.ArgMax(l, r), want);
    ASSERT_EQ(fh.ArgMax(l, r), want);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RmqRandomTest,
    ::testing::Combine(::testing::Values(1, 2, 7, 8, 9, 63, 64, 65, 100, 1000,
                                         4097),
                       ::testing::Values(1, 4, 1000000)));

TEST(RmqTest, HandleDispatchesAllEngines) {
  std::vector<double> v = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5};
  VecFn fn{&v};
  for (const RmqEngineKind kind :
       {RmqEngineKind::kBlock, RmqEngineKind::kFischerHeun,
        RmqEngineKind::kSparseTable}) {
    auto handle = MakeRmq(kind, fn, v.size());
    EXPECT_EQ(handle->ArgMax(0, 10), 5u);
    EXPECT_EQ(handle->ArgMax(6, 10), 7u);
    EXPECT_GT(handle->MemoryUsage(), 0u);
  }
}

TEST(RmqTest, LargeRandomAgreementAcrossEngines) {
  Rng rng(99);
  std::vector<double> v(20000);
  for (auto& x : v) x = rng.UniformDouble();
  VecFn fn{&v};
  BlockRmq<VecFn> block(fn, v.size());
  FischerHeunRmq<VecFn> fh(fn, v.size());
  SparseTableRmq<VecFn> sparse(fn, v.size());
  for (int trial = 0; trial < 2000; ++trial) {
    size_t l = rng.Uniform(v.size());
    size_t r = rng.Uniform(v.size());
    if (l > r) std::swap(l, r);
    const size_t a = sparse.ArgMax(l, r);
    ASSERT_EQ(block.ArgMax(l, r), a);
    ASSERT_EQ(fh.ArgMax(l, r), a);
  }
}

TEST(RmqTest, MemoryUsageScalesSensibly) {
  std::vector<double> v(100000, 1.0);
  VecFn fn{&v};
  BlockRmq<VecFn> block(fn, v.size(), 64);
  SparseTableRmq<VecFn> sparse(fn, v.size());
  // The block engine's structure should be far smaller than the sparse
  // table's n log n words.
  EXPECT_LT(block.MemoryUsage() * 10, sparse.MemoryUsage());
}

TEST(RmqTest, FischerHeunSharesTypeTables) {
  // A periodic array repeats microblock types, so table count stays small
  // relative to block count; just sanity-check memory is modest.
  std::vector<double> v(8192);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i % 8);
  VecFn fn{&v};
  FischerHeunRmq<VecFn> fh(fn, v.size());
  EXPECT_LT(fh.MemoryUsage(), v.size() * sizeof(double));
}

}  // namespace
}  // namespace pti
