// Tests for the brute-force oracles themselves — the trust anchor of every
// cross-validation suite. Validated from first principles against exhaustive
// possible-world enumeration and hand-computed examples.

#include <gtest/gtest.h>

#include <map>

#include "core/brute_force.h"
#include "test_util.h"

namespace pti {
namespace {

TEST(BruteForceTest, MatchesPossibleWorldMass) {
  // Pr(p at i) from the oracle must equal the world mass carrying p at i,
  // for every pattern/position, on several random tiny strings.
  for (const uint64_t seed : {1u, 2u, 3u, 4u}) {
    test::RandomStringSpec spec{.length = 5, .alphabet = 2, .theta = 0.7,
                                .seed = seed};
    const UncertainString s = test::RandomUncertain(spec);
    const auto worlds = s.EnumerateWorlds(1 << 12);
    ASSERT_TRUE(worlds.ok());
    for (const size_t m : {size_t{1}, size_t{2}, size_t{3}}) {
      // All patterns over {a, b} of length m.
      for (uint32_t mask = 0; mask < (1u << m); ++mask) {
        std::string p;
        for (size_t k = 0; k < m; ++k) {
          p.push_back((mask >> k) & 1 ? 'b' : 'a');
        }
        const auto hits = BruteForceSearch(s, p, 1e-12);
        std::map<int64_t, double> by_pos;
        for (const Match& h : hits) by_pos[h.position] = h.probability;
        for (int64_t i = 0; i + static_cast<int64_t>(m) <= s.size(); ++i) {
          double mass = 0;
          for (const auto& w : *worlds) {
            if (w.value.compare(i, m, p) == 0) mass += w.prob;
          }
          const double got = by_pos.count(i) ? by_pos[i] : 0.0;
          ASSERT_NEAR(got, mass, 1e-9) << p << " at " << i;
        }
      }
    }
  }
}

TEST(BruteForceTest, ThresholdIsInclusive) {
  UncertainString s;
  s.AddPosition({{'a', 0.5}, {'b', 0.5}});
  s.AddPosition({{'a', 0.5}, {'b', 0.5}});
  // "aa" occurs with exactly 0.25.
  EXPECT_EQ(BruteForceSearch(s, "aa", 0.25).size(), 1u);
  EXPECT_EQ(BruteForceSearch(s, "aa", 0.2500001).size(), 0u);
}

TEST(BruteForceTest, EmptyPatternYieldsNothing) {
  const UncertainString s = UncertainString::FromDeterministic("abc");
  EXPECT_TRUE(BruteForceSearch(s, "", 0.5).empty());
}

TEST(BruteForceTest, RelevanceMetricsHandChecked) {
  // Two occurrences with probabilities 0.5 and 0.2.
  UncertainString s;
  s.AddPosition({{'x', 0.5}, {'y', 0.5}});
  s.AddPosition({{'z', 1.0}});
  s.AddPosition({{'x', 0.2}, {'y', 0.8}});
  s.AddPosition({{'z', 1.0}});
  EXPECT_NEAR(BruteForceRelevance(s, "xz", RelevanceMetric::kMax, 0.01), 0.5,
              1e-12);
  EXPECT_NEAR(BruteForceRelevance(s, "xz", RelevanceMetric::kPaperOr, 0.01),
              0.5 + 0.2 - 0.5 * 0.2, 1e-12);
  EXPECT_NEAR(BruteForceRelevance(s, "xz", RelevanceMetric::kNoisyOr, 0.01),
              1 - 0.5 * 0.8, 1e-12);
  // With a floor above 0.2, only the strong occurrence participates.
  EXPECT_NEAR(BruteForceRelevance(s, "xz", RelevanceMetric::kPaperOr, 0.3),
              0.5 - 0.5, 1e-12);  // sum - prod with one element is 0
  // No occurrence at all.
  EXPECT_EQ(BruteForceRelevance(s, "qq", RelevanceMetric::kMax, 0.01), 0.0);
}

TEST(BruteForceTest, PaperOrSingleOccurrenceQuirk) {
  // The paper's formula sum - prod collapses to 0 for a single occurrence —
  // implemented verbatim (DESIGN.md notes this; kNoisyOr behaves sanely).
  UncertainString s;
  s.AddPosition({{'a', 0.9}, {'b', 0.1}});
  EXPECT_NEAR(BruteForceRelevance(s, "a", RelevanceMetric::kPaperOr, 0.01),
              0.0, 1e-12);
  EXPECT_NEAR(BruteForceRelevance(s, "a", RelevanceMetric::kNoisyOr, 0.01),
              0.9, 1e-12);
}

TEST(BruteForceTest, ListingFiltersAndSorts) {
  UncertainString hit1 = UncertainString::FromDeterministic("xyz");
  UncertainString miss = UncertainString::FromDeterministic("aaa");
  UncertainString hit2;
  hit2.AddPosition({{'x', 0.6}, {'a', 0.4}});
  hit2.AddPosition({{'y', 1.0}});
  hit2.AddPosition({{'z', 1.0}});
  const auto out = BruteForceListing({miss, hit1, miss, hit2}, "xyz", 0.5,
                                     RelevanceMetric::kMax, 0.5);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].doc, 1);
  EXPECT_NEAR(out[0].relevance, 1.0, 1e-12);
  EXPECT_EQ(out[1].doc, 3);
  EXPECT_NEAR(out[1].relevance, 0.6, 1e-12);
}

TEST(BruteForceTest, CorrelationAware) {
  // The oracle resolves correlations exactly like UncertainString does —
  // guard against the oracle and the model drifting apart.
  UncertainString s;
  s.AddPosition({{'e', 0.6}, {'f', 0.4}});
  s.AddPosition({{'q', 1.0}});
  s.AddPosition({{'z', 1.0}});
  ASSERT_TRUE(s.AddCorrelation({.pos = 2, .ch = 'z', .dep_pos = 0,
                                .dep_ch = 'e', .prob_if_present = 0.3,
                                .prob_if_absent = 0.4})
                  .ok());
  const auto hits = BruteForceSearch(s, "qz", 0.3);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NEAR(hits[0].probability, 0.34, 1e-12);
}

}  // namespace
}  // namespace pti
