// Fuzz harness for the two surfaces that consume hostile bytes: the
// versioned serde container (every index kind's Load behind PeekKind, the
// same dispatch the CLI uses) and the uncertain-string text parser in both
// strict and special modes. The contract under test is the one serde.h
// promises: arbitrary input may fail with a Status but must never crash,
// over-read, or trip a sanitizer.
//
// The first input byte selects the surface (mod 3): 0 container load,
// 1 strict text parse, 2 special-mode text parse. The rest is the payload.
//
// One source file builds two ways:
//   - with PTI_FUZZ_WITH_LIBFUZZER (Clang, -fsanitize=fuzzer): libFuzzer
//     provides main() and mutates from tests/fuzz/corpus/.
//   - without it (any compiler, including gcc): the replay main() below
//     runs every corpus file once, so the checked-in corpus — including any
//     past findings added as regression inputs — re-runs under plain ctest
//     and under the sanitizer CI legs.
#include <cstddef>
#include <cstdint>
#include <string>

#include "core/approx_index.h"
#include "core/listing_index.h"
#include "core/serde.h"
#include "core/special_index.h"
#include "core/substring_index.h"
#include "core/usformat.h"
#include "engine/sharded_index.h"

namespace {

void LoadContainer(const std::string& blob) {
  const auto kind = pti::serde::PeekKind(blob);
  if (!kind.ok()) return;
  switch (*kind) {
    case pti::serde::IndexKind::kSubstring:
      (void)pti::SubstringIndex::Load(blob);
      break;
    case pti::serde::IndexKind::kSharded:
      (void)pti::ShardedIndex::Load(blob);
      break;
    case pti::serde::IndexKind::kApprox:
      (void)pti::ApproxIndex::Load(blob);
      break;
    case pti::serde::IndexKind::kSpecial:
      (void)pti::SpecialIndex::Load(blob);
      break;
    case pti::serde::IndexKind::kListing:
      (void)pti::ListingIndex::Load(blob);
      break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const std::string payload(reinterpret_cast<const char*>(data + 1),
                            size - 1);
  switch (data[0] % 3) {
    case 0:
      LoadContainer(payload);
      break;
    case 1:
      (void)pti::ParseUncertainString(payload, /*require_unit_sums=*/true);
      break;
    default:
      (void)pti::ParseUncertainString(payload, /*require_unit_sums=*/false);
      break;
  }
  return 0;
}

#ifndef PTI_FUZZ_WITH_LIBFUZZER

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <vector>

// Replay driver: each argument is a corpus file or a directory of them.
// Exits non-zero only if an input cannot be read; a decode-surface bug
// shows up as a crash/sanitizer abort, which ctest reports as a failure.
int main(int argc, char** argv) {
  std::vector<std::filesystem::path> files;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path p(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(p)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else {
      files.push_back(p);
    }
  }
  if (files.empty()) {
    std::cerr << "usage: fuzz_serde_replay <corpus-file-or-dir>...\n";
    return 1;
  }
  std::sort(files.begin(), files.end());
  for (const auto& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      std::cerr << "cannot read " << f << "\n";
      return 1;
    }
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    std::cout << "replayed " << f.filename().string() << " (" << bytes.size()
              << " bytes)\n";
  }
  std::cout << files.size() << " input(s), no crashes\n";
  return 0;
}

#endif  // !PTI_FUZZ_WITH_LIBFUZZER
