// SubstringIndex::QueryBatch: the batched path must return, per query,
// exactly what the one-at-a-time Query path returns — across tree and
// compact (FM) locus modes, every blocking mode, short and long patterns,
// duplicate patterns with distinct taus, and correlated strings.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/brute_force.h"
#include "core/substring_index.h"
#include "test_util.h"

namespace pti {
namespace {

std::vector<BatchQuery> MixedWorkload(const UncertainString& s, size_t count,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<BatchQuery> queries;
  const double taus[] = {0.1, 0.15, 0.25, 0.5, 1.0};
  for (size_t q = 0; q < count; ++q) {
    const size_t len = 1 + rng.Uniform(12);
    BatchQuery query;
    if (q % 4 == 0 || s.size() < static_cast<int64_t>(len)) {
      query.pattern = test::RandomPattern(4, len, rng.Next());
    } else {
      const int64_t start =
          static_cast<int64_t>(rng.Uniform(s.size() - len + 1));
      query.pattern = test::PatternFromString(s, start, len, rng.Next());
    }
    query.tau = taus[rng.Uniform(5)];
    queries.push_back(std::move(query));
  }
  return queries;
}

void ExpectBatchMatchesLoop(const SubstringIndex& index,
                            const std::vector<BatchQuery>& queries) {
  std::vector<std::vector<Match>> batch;
  ASSERT_TRUE(index.QueryBatch(queries, &batch).ok());
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    std::vector<Match> loop;
    ASSERT_TRUE(index.Query(queries[i].pattern, queries[i].tau, &loop).ok());
    EXPECT_TRUE(test::SameMatches(batch[i], loop))
        << "query #" << i << " '" << queries[i].pattern << "' tau "
        << queries[i].tau << "\n  batch: " << test::MatchesToString(batch[i])
        << "\n  loop:  " << test::MatchesToString(loop);
  }
}

void CrossValidate(const IndexOptions& options, uint64_t seed) {
  test::RandomStringSpec spec;
  spec.length = 200;
  spec.alphabet = 4;
  spec.seed = seed;
  const UncertainString s = test::RandomUncertain(spec);
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  ExpectBatchMatchesLoop(*index, MixedWorkload(s, 120, seed + 1));
}

TEST(QueryBatchTest, TreeModeMatchesLoop) {
  IndexOptions options;
  options.transform.tau_min = 0.05;
  for (uint64_t seed : {1u, 2u, 3u}) CrossValidate(options, seed);
}

TEST(QueryBatchTest, CompactModeMatchesLoop) {
  IndexOptions options;
  options.transform.tau_min = 0.05;
  options.compact = true;
  for (uint64_t seed : {4u, 5u}) CrossValidate(options, seed);
}

TEST(QueryBatchTest, LongPatternBlockingModesMatchLoop) {
  for (const BlockingMode mode :
       {BlockingMode::kPow2, BlockingMode::kPaperExact,
        BlockingMode::kScanOnly}) {
    IndexOptions options;
    options.transform.tau_min = 0.05;
    options.blocking = mode;
    options.max_short_depth = 2;  // force the long-pattern paths
    options.scan_cutoff = 0;
    CrossValidate(options, 7 + static_cast<uint64_t>(mode));
  }
}

TEST(QueryBatchTest, SharedPrefixGroupsMatchLoop) {
  test::RandomStringSpec spec;
  spec.length = 300;
  spec.alphabet = 3;
  spec.seed = 11;
  const UncertainString s = test::RandomUncertain(spec);
  IndexOptions options;
  options.transform.tau_min = 0.05;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  // Many patterns sharing long prefixes (same start position, growing
  // length) — the regime the prefix walker optimizes.
  std::vector<BatchQuery> queries;
  for (int64_t start : {0, 40, 41, 150}) {
    for (size_t len = 1; len <= 12; ++len) {
      queries.push_back(
          {test::PatternFromString(s, start, len, 500 + start), 0.1});
    }
  }
  ExpectBatchMatchesLoop(*index, queries);
}

TEST(QueryBatchTest, DuplicatePatternsWithDistinctTaus) {
  test::RandomStringSpec spec;
  spec.length = 120;
  spec.seed = 21;
  const UncertainString s = test::RandomUncertain(spec);
  IndexOptions options;
  options.transform.tau_min = 0.05;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  const std::string p = test::PatternFromString(s, 10, 3, 77);
  // Snapped probabilities (multiples of 1/64) make these taus exact
  // boundaries, so group extraction + re-filtering is fully exercised.
  std::vector<BatchQuery> queries;
  for (double tau : {0.5, 0.0625, 1.0, 0.125, 0.25, 0.0625}) {
    queries.push_back({p, tau});
  }
  ExpectBatchMatchesLoop(*index, queries);
}

TEST(QueryBatchTest, CorrelatedStringMatchesLoopAndOracle) {
  UncertainString s;
  Rng rng(31);
  for (int i = 0; i < 40; ++i) {
    const uint8_t a = static_cast<uint8_t>('a' + rng.Uniform(3));
    const uint8_t b = static_cast<uint8_t>('a' + (a - 'a' + 1) % 3);
    s.AddPosition({{a, 0.75}, {b, 0.25}});
  }
  for (int64_t pos : {3, 10, 25}) {
    CorrelationRule rule;
    rule.pos = pos;
    rule.ch = s.options(pos)[0].ch;
    rule.dep_pos = pos + 4;
    rule.dep_ch = s.options(pos + 4)[0].ch;
    rule.prob_if_present = 0.875;
    rule.prob_if_absent = 0.125;
    ASSERT_TRUE(s.AddCorrelation(rule).ok());
  }
  IndexOptions options;
  options.transform.tau_min = 0.05;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  const auto queries = MixedWorkload(s, 80, 33);
  ExpectBatchMatchesLoop(*index, queries);
  // And both agree with the first-principles oracle.
  std::vector<std::vector<Match>> batch;
  ASSERT_TRUE(index->QueryBatch(queries, &batch).ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto want =
        BruteForceSearch(s, queries[i].pattern, queries[i].tau);
    EXPECT_TRUE(test::SameMatches(batch[i], want)) << queries[i].pattern;
  }
}

TEST(QueryBatchTest, EmptyBatch) {
  const UncertainString s = UncertainString::FromDeterministic("abcabc");
  const auto index = SubstringIndex::Build(s, {});
  ASSERT_TRUE(index.ok());
  std::vector<std::vector<Match>> out;
  ASSERT_TRUE(index->QueryBatch({}, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(QueryBatchTest, InvalidQueryFailsWholeBatchUpFront) {
  const UncertainString s = UncertainString::FromDeterministic("abcabc");
  IndexOptions options;
  options.transform.tau_min = 0.1;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::vector<std::vector<Match>> out;
  {
    const Status st =
        index->QueryBatch({{"ab", 0.5}, {"", 0.5}, {"bc", 0.5}}, &out);
    EXPECT_TRUE(st.IsInvalidArgument());
    EXPECT_NE(st.message().find("#1"), std::string::npos) << st.ToString();
  }
  {
    // tau below the construction floor.
    const Status st = index->QueryBatch({{"ab", 0.01}}, &out);
    EXPECT_TRUE(st.IsInvalidArgument());
  }
  {
    const Status st = index->QueryBatch({{"ab", 1.5}}, &out);
    EXPECT_TRUE(st.IsInvalidArgument());
  }
}

TEST(QueryBatchTest, ResultsInInputOrder) {
  const UncertainString s = UncertainString::FromDeterministic("abababab");
  const auto index = SubstringIndex::Build(s, {});
  ASSERT_TRUE(index.ok());
  // Deliberately unsorted patterns; entry i must answer query i.
  const std::vector<BatchQuery> queries = {
      {"ba", 0.5}, {"ab", 0.5}, {"zz", 0.5}, {"ab", 0.5}, {"abab", 0.5}};
  std::vector<std::vector<Match>> out;
  ASSERT_TRUE(index->QueryBatch(queries, &out).ok());
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].size(), 3u);  // "ba" at 1, 3, 5
  EXPECT_EQ(out[1].size(), 4u);  // "ab" at 0, 2, 4, 6
  EXPECT_TRUE(out[2].empty());
  EXPECT_EQ(out[3].size(), 4u);
  EXPECT_EQ(out[4].size(), 3u);  // "abab" at 0, 2, 4
}

}  // namespace
}  // namespace pti
