// Parameterized Save/Load round-trip suite covering all four index types:
// build -> Save -> Load -> identical query answers (positions exact,
// probabilities within 1e-9) against the freshly built index, across small,
// correlated, empty, empty-factor and --full-style random inputs.
//
// Framing/corruption coverage lives in serde_corruption_test.cc; the
// cross-index agreement net lives in cross_index_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/approx_index.h"
#include "core/brute_force.h"
#include "core/listing_index.h"
#include "core/special_index.h"
#include "core/substring_index.h"
#include "test_util.h"

namespace pti {
namespace {

enum class InputCase {
  kSmall,         // short string, small alphabet
  kCorrelated,    // kSmall plus a §3.3 correlation rule
  kEmpty,         // zero-length string / zero documents
  kEmptyFactors,  // every window below tau_min: the factor set is empty
  kFull,          // --full-style: longer string, larger alphabet
};

constexpr InputCase kAllCases[] = {InputCase::kSmall, InputCase::kCorrelated,
                                   InputCase::kEmpty, InputCase::kEmptyFactors,
                                   InputCase::kFull};

const char* CaseName(InputCase c) {
  switch (c) {
    case InputCase::kSmall:
      return "Small";
    case InputCase::kCorrelated:
      return "Correlated";
    case InputCase::kEmpty:
      return "Empty";
    case InputCase::kEmptyFactors:
      return "EmptyFactors";
    case InputCase::kFull:
      return "Full";
  }
  return "?";
}

UncertainString AddRule(UncertainString s) {
  EXPECT_TRUE(s.AddCorrelation({.pos = 5,
                                .ch = s.options(5)[0].ch,
                                .dep_pos = 2,
                                .dep_ch = s.options(2)[0].ch,
                                .prob_if_present = 0.75,
                                .prob_if_absent = 0.25})
                  .ok());
  return s;
}

// A string whose every position splits its mass, so that with tau_min above
// 0.5 no single-character window survives and the transform emits nothing.
UncertainString HalfHalfString(int64_t length) {
  UncertainString s;
  for (int64_t i = 0; i < length; ++i) {
    s.AddPosition({{static_cast<uint8_t>('a' + i % 2), 0.5},
                   {static_cast<uint8_t>('b' + i % 2), 0.5}});
  }
  return s;
}

UncertainString GeneralString(InputCase c, uint64_t seed) {
  switch (c) {
    case InputCase::kSmall:
      return test::RandomUncertain({.length = 45, .alphabet = 3,
                                    .theta = 0.5, .seed = seed});
    case InputCase::kCorrelated:
      return AddRule(test::RandomUncertain(
          {.length = 45, .alphabet = 3, .theta = 0.5, .seed = seed}));
    case InputCase::kEmpty:
      return UncertainString();
    case InputCase::kEmptyFactors:
      return HalfHalfString(20);
    case InputCase::kFull:
      return test::RandomUncertain({.length = 260, .alphabet = 4,
                                    .theta = 0.6, .max_choices = 4,
                                    .seed = seed});
  }
  return UncertainString();
}

// §4 special form: exactly one option per position, probability in (0, 1].
UncertainString SpecialString(InputCase c, uint64_t seed) {
  int64_t length = 0;
  int32_t alphabet = 3;
  switch (c) {
    case InputCase::kSmall:
    case InputCase::kCorrelated:
      length = 45;
      break;
    case InputCase::kEmpty:
      return UncertainString();
    case InputCase::kEmptyFactors:
      length = 1;  // no transform; the degenerate single-position string
      break;
    case InputCase::kFull:
      length = 260;
      alphabet = 4;
      break;
  }
  Rng rng(seed);
  UncertainString s;
  for (int64_t i = 0; i < length; ++i) {
    const uint8_t ch = static_cast<uint8_t>('a' + rng.Uniform(alphabet));
    const double prob = static_cast<double>(1 + rng.Uniform(64)) / 64.0;
    s.AddPosition({{ch, prob}});
  }
  if (c == InputCase::kCorrelated) return AddRule(std::move(s));
  return s;
}

double CaseTauMin(InputCase c) {
  return c == InputCase::kEmptyFactors ? 0.75 : 0.1;
}

int CaseQueries(InputCase c) { return c == InputCase::kFull ? 80 : 40; }

std::string SomePattern(const UncertainString& s, int32_t alphabet, Rng* rng) {
  if (s.size() > 0 && rng->Uniform(2) == 0) {
    const int64_t max_len = std::min<int64_t>(s.size(), 12);
    const size_t len = 1 + rng->Uniform(static_cast<uint64_t>(max_len));
    const int64_t start =
        static_cast<int64_t>(rng->Uniform(s.size() - len + 1));
    return test::PatternFromString(s, start, len, rng->Next());
  }
  return test::RandomPattern(alphabet, 1 + rng->Uniform(8), rng->Next());
}

bool SameDocMatches(const std::vector<DocMatch>& a,
                    const std::vector<DocMatch>& b, double tol = 1e-9) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].doc != b[i].doc) return false;
    if (std::abs(a[i].relevance - b[i].relevance) > tol) return false;
  }
  return true;
}

// ---- Per-index drivers: build -> Save -> Load -> compare answers ----

struct SubstringDriver {
  static constexpr bool kCompact = false;

  static void RunCase(InputCase c) {
    const UncertainString s = GeneralString(c, 2024);
    IndexOptions options;
    options.transform.tau_min = CaseTauMin(c);
    options.compact = kCompact;
    const auto built = SubstringIndex::Build(s, options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    std::string blob;
    ASSERT_TRUE(built->Save(&blob).ok());
    EXPECT_GT(blob.size(), 32u);
    const auto loaded = SubstringIndex::Load(blob);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->options().compact, kCompact);
    // Compact blobs persist the suffix array, so Load never re-runs SA-IS.
    EXPECT_EQ(SubstringIndexTestPeer::SaLoadedFromSection(*loaded), kCompact);
    EXPECT_EQ(loaded->stats().num_factors, built->stats().num_factors);
    EXPECT_EQ(loaded->stats().transformed_length,
              built->stats().transformed_length);
    Rng rng(7);
    for (int q = 0; q < CaseQueries(c); ++q) {
      const std::string pattern = SomePattern(s, 4, &rng);
      for (const double tau : {CaseTauMin(c), 0.3, 0.8}) {
        if (tau < CaseTauMin(c)) continue;
        std::vector<Match> a, b;
        ASSERT_TRUE(built->Query(pattern, tau, &a).ok());
        ASSERT_TRUE(loaded->Query(pattern, tau, &b).ok());
        ASSERT_TRUE(test::SameMatches(a, b))
            << CaseName(c) << " pattern " << pattern << " tau " << tau;
      }
    }
  }
};

// The compact (FM-index) serving configuration, driven through the same
// cases: the blob gains the "SARR" suffix-array section and Load rebuilds
// the FM-index from it without SA-IS or a suffix tree.
struct CompactSubstringDriver {
  static void RunCase(InputCase c) {
    const UncertainString s = GeneralString(c, 2024);
    IndexOptions options;
    options.transform.tau_min = CaseTauMin(c);
    options.compact = true;
    const auto built = SubstringIndex::Build(s, options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    std::string blob;
    ASSERT_TRUE(built->Save(&blob).ok());
    const auto loaded = SubstringIndex::Load(blob);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_TRUE(loaded->options().compact);
    EXPECT_TRUE(SubstringIndexTestPeer::SaLoadedFromSection(*loaded));
    EXPECT_EQ(loaded->stats().num_factors, built->stats().num_factors);
    // Loaded-compact answers must equal a fresh *tree-mode* build's: the
    // full Save -> Load -> Query equivalence across modes.
    IndexOptions tree_options;
    tree_options.transform.tau_min = CaseTauMin(c);
    const auto tree = SubstringIndex::Build(s, tree_options);
    ASSERT_TRUE(tree.ok());
    Rng rng(7);
    for (int q = 0; q < CaseQueries(c); ++q) {
      const std::string pattern = SomePattern(s, 4, &rng);
      for (const double tau : {CaseTauMin(c), 0.3, 0.8}) {
        if (tau < CaseTauMin(c)) continue;
        std::vector<Match> a, b, t;
        ASSERT_TRUE(built->Query(pattern, tau, &a).ok());
        ASSERT_TRUE(loaded->Query(pattern, tau, &b).ok());
        ASSERT_TRUE(tree->Query(pattern, tau, &t).ok());
        ASSERT_TRUE(test::SameMatches(a, b))
            << CaseName(c) << " pattern " << pattern << " tau " << tau;
        ASSERT_TRUE(test::SameMatches(t, b, 0.0))
            << CaseName(c) << " (vs tree mode) pattern " << pattern
            << " tau " << tau;
      }
    }
  }
};

struct ListingDriver {
  static void RunCase(InputCase c) {
    std::vector<UncertainString> docs;
    if (c != InputCase::kEmpty) {
      for (uint64_t d = 0; d < 3; ++d) {
        docs.push_back(GeneralString(c, 100 + d));
      }
    }
    ListingOptions options;
    options.transform.tau_min = CaseTauMin(c);
    const auto built = ListingIndex::Build(docs, options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    std::string blob;
    ASSERT_TRUE(built->Save(&blob).ok());
    const auto loaded = ListingIndex::Load(blob);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->num_docs(), built->num_docs());
    EXPECT_EQ(loaded->stats().transformed_length,
              built->stats().transformed_length);
    const UncertainString probe =
        docs.empty() ? UncertainString() : docs[0];
    Rng rng(8);
    for (int q = 0; q < CaseQueries(c); ++q) {
      const std::string pattern = SomePattern(probe, 4, &rng);
      for (const double tau : {CaseTauMin(c), 0.3, 0.8}) {
        if (tau < CaseTauMin(c)) continue;
        for (const RelevanceMetric metric :
             {RelevanceMetric::kMax, RelevanceMetric::kNoisyOr}) {
          std::vector<DocMatch> a, b;
          ASSERT_TRUE(built->QueryWithMetric(pattern, tau, metric, &a).ok());
          ASSERT_TRUE(loaded->QueryWithMetric(pattern, tau, metric, &b).ok());
          ASSERT_TRUE(SameDocMatches(a, b))
              << CaseName(c) << " pattern " << pattern << " tau " << tau;
        }
      }
    }
  }
};

struct ApproxDriver {
  static void RunCase(InputCase c) {
    const UncertainString s = GeneralString(c, 2024);
    ApproxOptions options;
    options.transform.tau_min = CaseTauMin(c);
    options.epsilon = 0.05;
    const auto built = ApproxIndex::Build(s, options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    std::string blob;
    ASSERT_TRUE(built->Save(&blob).ok());
    const auto loaded = ApproxIndex::Load(blob);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->stats().num_links, built->stats().num_links);
    EXPECT_EQ(loaded->stats().num_marked_nodes,
              built->stats().num_marked_nodes);
    Rng rng(9);
    for (int q = 0; q < CaseQueries(c); ++q) {
      const std::string pattern = SomePattern(s, 4, &rng);
      for (const double tau : {CaseTauMin(c), 0.3, 0.8}) {
        if (tau < CaseTauMin(c)) continue;
        std::vector<Match> a, b;
        ASSERT_TRUE(built->Query(pattern, tau, &a).ok());
        ASSERT_TRUE(loaded->Query(pattern, tau, &b).ok());
        ASSERT_TRUE(test::SameMatches(a, b))
            << CaseName(c) << " pattern " << pattern << " tau " << tau;
      }
    }
  }
};

struct SpecialDriver {
  static void RunCase(InputCase c) {
    const UncertainString s = SpecialString(c, 2024);
    const auto built = SpecialIndex::Build(s, SpecialIndexOptions{});
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    std::string blob;
    ASSERT_TRUE(built->Save(&blob).ok());
    const auto loaded = SpecialIndex::Load(blob);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->stats().length, built->stats().length);
    EXPECT_EQ(loaded->stats().num_tree_nodes, built->stats().num_tree_nodes);
    Rng rng(10);
    for (int q = 0; q < CaseQueries(c); ++q) {
      const std::string pattern = SomePattern(s, 4, &rng);
      // No construction-time floor: any tau in (0, 1] is valid.
      for (const double tau : {0.05, 0.3, 0.8}) {
        std::vector<Match> a, b;
        ASSERT_TRUE(built->Query(pattern, tau, &a).ok());
        ASSERT_TRUE(loaded->Query(pattern, tau, &b).ok());
        ASSERT_TRUE(test::SameMatches(a, b))
            << CaseName(c) << " pattern " << pattern << " tau " << tau;
      }
    }
  }
};

template <typename Driver>
class SerializationRoundTrip : public ::testing::Test {};

using AllDrivers =
    ::testing::Types<SubstringDriver, CompactSubstringDriver, ListingDriver,
                     ApproxDriver, SpecialDriver>;

class DriverNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    if (std::is_same_v<T, SubstringDriver>) return "Substring";
    if (std::is_same_v<T, CompactSubstringDriver>) return "CompactSubstring";
    if (std::is_same_v<T, ListingDriver>) return "Listing";
    if (std::is_same_v<T, ApproxDriver>) return "Approx";
    if (std::is_same_v<T, SpecialDriver>) return "Special";
    return "?";
  }
};

TYPED_TEST_SUITE(SerializationRoundTrip, AllDrivers, DriverNames);

TYPED_TEST(SerializationRoundTrip, SmallRandomInput) {
  TypeParam::RunCase(InputCase::kSmall);
}

TYPED_TEST(SerializationRoundTrip, CorrelatedInput) {
  TypeParam::RunCase(InputCase::kCorrelated);
}

TYPED_TEST(SerializationRoundTrip, EmptyInput) {
  TypeParam::RunCase(InputCase::kEmpty);
}

TYPED_TEST(SerializationRoundTrip, EmptyFactorInput) {
  TypeParam::RunCase(InputCase::kEmptyFactors);
}

TYPED_TEST(SerializationRoundTrip, FullScaleRandomInput) {
  TypeParam::RunCase(InputCase::kFull);
}

// ---- Non-typed extras: option fidelity and oracle agreement ----

TEST(SerializationTest, SubstringRoundTripNonDefaultOptions) {
  const UncertainString s = GeneralString(InputCase::kSmall, 2024);
  IndexOptions options;
  options.transform.tau_min = 0.25;
  options.max_short_depth = 4;
  options.rmq_engine = RmqEngineKind::kFischerHeun;
  options.blocking = BlockingMode::kPaperExact;
  options.scan_cutoff = 7;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::string blob;
  ASSERT_TRUE(index->Save(&blob).ok());
  const auto loaded = SubstringIndex::Load(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->options().max_short_depth, 4);
  EXPECT_EQ(loaded->options().rmq_engine, RmqEngineKind::kFischerHeun);
  EXPECT_EQ(loaded->options().blocking, BlockingMode::kPaperExact);
  EXPECT_EQ(loaded->options().scan_cutoff, 7u);
  EXPECT_EQ(loaded->options().transform.tau_min, 0.25);
}

TEST(SerializationTest, LoadedSubstringIndexAgreesWithBruteForce) {
  const UncertainString s = GeneralString(InputCase::kCorrelated, 2024);
  IndexOptions options;
  options.transform.tau_min = 0.1;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::string blob;
  ASSERT_TRUE(index->Save(&blob).ok());
  const auto loaded = SubstringIndex::Load(blob);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->source().correlations().size(), 1u);
  Rng rng(2);
  for (int q = 0; q < 40; ++q) {
    const std::string pattern =
        test::RandomPattern(3, 1 + rng.Uniform(6), rng.Next());
    std::vector<Match> got;
    ASSERT_TRUE(loaded->Query(pattern, 0.1, &got).ok());
    ASSERT_TRUE(test::SameMatches(got, BruteForceSearch(s, pattern, 0.1)))
        << pattern;
  }
}

TEST(SerializationTest, CompactModeSurvivesRoundTrip) {
  const UncertainString s = GeneralString(InputCase::kSmall, 2024);
  IndexOptions options;
  options.transform.tau_min = 0.1;
  options.compact = true;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::string blob;
  ASSERT_TRUE(index->Save(&blob).ok());
  const auto loaded = SubstringIndex::Load(blob);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->options().compact);
  Rng rng(4);
  for (int q = 0; q < 30; ++q) {
    const std::string pattern =
        test::RandomPattern(3, 1 + rng.Uniform(6), rng.Next());
    std::vector<Match> a, b;
    ASSERT_TRUE(index->Query(pattern, 0.2, &a).ok());
    ASSERT_TRUE(loaded->Query(pattern, 0.2, &b).ok());
    ASSERT_TRUE(test::SameMatches(a, b)) << pattern;
  }
}

TEST(SerializationTest, AllCasesHaveDistinctNames) {
  // Guards the CaseName table against silently dropping a case.
  std::vector<std::string> names;
  for (const InputCase c : kAllCases) names.push_back(CaseName(c));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

}  // namespace
}  // namespace pti
