// Save/Load round-trips for SubstringIndex, plus failure injection:
// truncation, bad magic, bad version, flipped enum bytes, trailing garbage.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/brute_force.h"
#include "core/substring_index.h"
#include "test_util.h"

namespace pti {
namespace {

UncertainString TestString() {
  test::RandomStringSpec spec{.length = 50, .alphabet = 3, .theta = 0.5,
                              .seed = 2024};
  return test::RandomUncertain(spec);
}

UncertainString CorrelatedTestString() {
  UncertainString s = TestString();
  EXPECT_TRUE(s.AddCorrelation({.pos = 5,
                                .ch = s.options(5)[0].ch,
                                .dep_pos = 2,
                                .dep_ch = s.options(2)[0].ch,
                                .prob_if_present = 0.75,
                                .prob_if_absent = 0.25})
                  .ok());
  return s;
}

TEST(SerializationTest, RoundTripPreservesQueries) {
  const UncertainString s = TestString();
  IndexOptions options;
  options.transform.tau_min = 0.1;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::string blob;
  ASSERT_TRUE(index->Save(&blob).ok());
  EXPECT_GT(blob.size(), 64u);
  const auto loaded = SubstringIndex::Load(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Identical answers on a battery of queries.
  Rng rng(1);
  for (int q = 0; q < 60; ++q) {
    const std::string pattern =
        test::RandomPattern(3, 1 + rng.Uniform(8), rng.Next());
    for (const double tau : {0.1, 0.3, 0.7}) {
      std::vector<Match> a, b;
      ASSERT_TRUE(index->Query(pattern, tau, &a).ok());
      ASSERT_TRUE(loaded->Query(pattern, tau, &b).ok());
      ASSERT_TRUE(test::SameMatches(a, b)) << pattern << " tau " << tau;
    }
  }
  // Stats survive.
  EXPECT_EQ(loaded->stats().num_factors, index->stats().num_factors);
  EXPECT_EQ(loaded->stats().transformed_length,
            index->stats().transformed_length);
  EXPECT_EQ(loaded->options().transform.tau_min, 0.1);
}

TEST(SerializationTest, RoundTripWithCorrelations) {
  const UncertainString s = CorrelatedTestString();
  IndexOptions options;
  options.transform.tau_min = 0.1;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::string blob;
  ASSERT_TRUE(index->Save(&blob).ok());
  const auto loaded = SubstringIndex::Load(blob);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->source().correlations().size(), 1u);
  Rng rng(2);
  for (int q = 0; q < 40; ++q) {
    const std::string pattern =
        test::RandomPattern(3, 1 + rng.Uniform(6), rng.Next());
    std::vector<Match> got;
    ASSERT_TRUE(loaded->Query(pattern, 0.1, &got).ok());
    ASSERT_TRUE(test::SameMatches(got, BruteForceSearch(s, pattern, 0.1)))
        << pattern;
  }
}

TEST(SerializationTest, RoundTripNonDefaultOptions) {
  const UncertainString s = TestString();
  IndexOptions options;
  options.transform.tau_min = 0.25;
  options.max_short_depth = 4;
  options.rmq_engine = RmqEngineKind::kFischerHeun;
  options.blocking = BlockingMode::kPaperExact;
  options.scan_cutoff = 7;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::string blob;
  ASSERT_TRUE(index->Save(&blob).ok());
  const auto loaded = SubstringIndex::Load(blob);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->options().max_short_depth, 4);
  EXPECT_EQ(loaded->options().rmq_engine, RmqEngineKind::kFischerHeun);
  EXPECT_EQ(loaded->options().blocking, BlockingMode::kPaperExact);
  EXPECT_EQ(loaded->options().scan_cutoff, 7u);
}

TEST(SerializationTest, EmptyIndexRoundTrip) {
  const auto index = SubstringIndex::Build(UncertainString(), IndexOptions{});
  ASSERT_TRUE(index.ok());
  std::string blob;
  ASSERT_TRUE(index->Save(&blob).ok());
  const auto loaded = SubstringIndex::Load(blob);
  ASSERT_TRUE(loaded.ok());
  std::vector<Match> out;
  EXPECT_TRUE(loaded->Query("a", 0.5, &out).ok());
  EXPECT_TRUE(out.empty());
}

// ---- Failure injection ----

std::string ValidBlob() {
  const auto index = SubstringIndex::Build(TestString(), IndexOptions{});
  EXPECT_TRUE(index.ok());
  std::string blob;
  EXPECT_TRUE(index->Save(&blob).ok());
  return blob;
}

TEST(SerializationTest, RejectsEmptyBlob) {
  EXPECT_TRUE(SubstringIndex::Load("").status().IsCorruption());
}

TEST(SerializationTest, RejectsBadMagic) {
  std::string blob = ValidBlob();
  blob[0] ^= 0xFF;
  EXPECT_TRUE(SubstringIndex::Load(blob).status().IsCorruption());
}

TEST(SerializationTest, RejectsBadVersion) {
  std::string blob = ValidBlob();
  blob[4] = 99;  // version field
  EXPECT_TRUE(SubstringIndex::Load(blob).status().IsCorruption());
}

TEST(SerializationTest, RejectsTruncationEverywhere) {
  const std::string blob = ValidBlob();
  // Truncating at any prefix length must fail cleanly, never crash.
  for (size_t len = 0; len < blob.size(); len += 97) {
    const auto r = SubstringIndex::Load(blob.substr(0, len));
    EXPECT_FALSE(r.ok()) << "accepted truncation at " << len;
  }
}

TEST(SerializationTest, RejectsTrailingGarbage) {
  std::string blob = ValidBlob();
  blob += "extra!";
  EXPECT_TRUE(SubstringIndex::Load(blob).status().IsCorruption());
}

TEST(SerializationTest, RejectsCorruptEnums) {
  std::string blob = ValidBlob();
  // Options block begins right after the 8-byte envelope:
  // double tau_min (8) + u64 max_total (8) + u32 max_short (4) = offset 28
  // for the engine byte, 29 for blocking.
  blob[28] = 17;
  EXPECT_TRUE(SubstringIndex::Load(blob).status().IsCorruption());
}

TEST(SerializationTest, RandomBitFlipsNeverCrash) {
  const std::string blob = ValidBlob();
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = blob;
    const size_t at = rng.Uniform(mutated.size());
    mutated[at] ^= static_cast<char>(1 + rng.Uniform(255));
    // Either loads (flip hit a benign byte, e.g. inside a probability) or
    // fails with a clean Status; must never crash.
    const auto r = SubstringIndex::Load(mutated);
    if (!r.ok()) {
      EXPECT_FALSE(r.status().message().empty());
    }
  }
}

}  // namespace
}  // namespace pti
