// Tests for the uncertain string model (§3): validation, occurrence
// probabilities, possible-world semantics (Figure 1), and correlation
// resolution (§3.3 / Figure 4).

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>

#include "core/uncertain_string.h"
#include "test_util.h"

namespace pti {
namespace {

// The paper's Figure 1 string S (5 positions).
UncertainString Figure1String() {
  UncertainString s;
  s.AddPosition({{'a', 0.3}, {'b', 0.4}, {'d', 0.3}});
  s.AddPosition({{'a', 0.6}, {'c', 0.4}});
  s.AddPosition({{'d', 1.0}});
  s.AddPosition({{'a', 0.5}, {'c', 0.5}});
  s.AddPosition({{'a', 1.0}});
  return s;
}

// The paper's Figure 3 string (genomic alignment example, 11 positions).
UncertainString Figure3String() {
  UncertainString s;
  s.AddPosition({{'P', 1.0}});
  s.AddPosition({{'S', 0.7}, {'F', 0.3}});
  s.AddPosition({{'F', 1.0}});
  s.AddPosition({{'P', 1.0}});
  s.AddPosition({{'Q', 0.5}, {'T', 0.5}});
  s.AddPosition({{'P', 1.0}});
  s.AddPosition({{'A', 0.4}, {'F', 0.4}, {'P', 0.2}});
  s.AddPosition({{'I', 0.3}, {'L', 0.3}, {'P', 0.3}, {'T', 0.1}});
  s.AddPosition({{'A', 1.0}});
  s.AddPosition({{'S', 0.5}, {'T', 0.5}});
  s.AddPosition({{'A', 1.0}});
  return s;
}

TEST(UncertainStringTest, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(Figure1String().Validate().ok());
  EXPECT_TRUE(Figure3String().Validate().ok());
  EXPECT_TRUE(UncertainString().Validate().ok());
}

TEST(UncertainStringTest, ValidateRejectsBadSum) {
  UncertainString s;
  s.AddPosition({{'a', 0.5}, {'b', 0.4}});
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
}

TEST(UncertainStringTest, ValidateRejectsNegativeProb) {
  UncertainString s;
  s.AddPosition({{'a', 1.2}, {'b', -0.2}});
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
}

TEST(UncertainStringTest, ValidateRejectsNonFiniteProb) {
  // NaN compares false with everything, so the naive `< 0 || > 1` range
  // check used to pass it through to LogProb::FromLinear, whose [0,1]
  // domain is an internal precondition (debug assert, silent NaN poisoning
  // of every occurrence probability in release). Pinned here so the
  // negated-comparison form in Validate() doesn't regress.
  UncertainString nan_s;
  nan_s.AddPosition(
      {{'a', std::numeric_limits<double>::quiet_NaN()}, {'b', 0.5}});
  EXPECT_TRUE(nan_s.Validate().IsInvalidArgument());

  UncertainString inf_s;
  inf_s.AddPosition(
      {{'a', std::numeric_limits<double>::infinity()}, {'b', 0.5}});
  EXPECT_TRUE(inf_s.Validate().IsInvalidArgument());
}

TEST(UncertainStringTest, ValidateRejectsDuplicateChar) {
  UncertainString s;
  s.AddPosition({{'a', 0.5}, {'a', 0.5}});
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
}

TEST(UncertainStringTest, ValidateRejectsEmptyPosition) {
  UncertainString s;
  s.AddPosition({});
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
}

TEST(UncertainStringTest, FromDeterministic) {
  const UncertainString s = UncertainString::FromDeterministic("abc");
  EXPECT_TRUE(s.IsSpecial());
  EXPECT_TRUE(s.Validate().ok());
  EXPECT_EQ(s.size(), 3);
  EXPECT_NEAR(s.OccurrenceProb("bc", 1).ToLinear(), 1.0, 1e-12);
  EXPECT_TRUE(s.OccurrenceProb("bc", 0).IsZero());
}

TEST(UncertainStringTest, BaseProb) {
  const UncertainString s = Figure1String();
  EXPECT_EQ(s.BaseProb(0, 'b'), 0.4);
  EXPECT_EQ(s.BaseProb(0, 'z'), 0.0);
  EXPECT_EQ(s.BaseProb(2, 'd'), 1.0);
}

TEST(UncertainStringTest, OccurrenceProbMatchesPaperFigure3) {
  // §3.2: "SFPQ has probability of occurrence 0.7*1*1*0.5 = 0.35 at
  // position 2" (1-based); our positions are 0-based, so position 1.
  const UncertainString s = Figure3String();
  EXPECT_NEAR(s.OccurrenceProb("SFPQ", 1).ToLinear(), 0.35, 1e-12);
  // §2: "AT" matches at 1-based 7 with 0.4*0.3 = 0.12 — our position 6 with
  // A=.4 then T=.1? The paper's figure lists T=.3 at position 8; follow the
  // figure: A(.4) * T(.1) at our position 6 is 0.04; the motivating text
  // uses .3 — we assert against the figure's own numbers.
  EXPECT_NEAR(s.OccurrenceProb("AT", 6).ToLinear(), 0.4 * 0.1, 1e-12);
  // 1-based 9: A(1.0) * T(.5) = 0.5.
  EXPECT_NEAR(s.OccurrenceProb("AT", 8).ToLinear(), 0.5, 1e-12);
}

TEST(UncertainStringTest, OccurrenceProbEdgeCases) {
  const UncertainString s = Figure1String();
  EXPECT_TRUE(s.OccurrenceProb("", 0).IsZero());       // empty pattern
  EXPECT_TRUE(s.OccurrenceProb("a", -1).IsZero());     // before start
  EXPECT_TRUE(s.OccurrenceProb("aa", 4).IsZero());     // overruns end
  EXPECT_TRUE(s.OccurrenceProb("z", 0).IsZero());      // absent character
  EXPECT_NEAR(s.OccurrenceProb("a", 4).ToLinear(), 1.0, 1e-12);
}

TEST(UncertainStringTest, PossibleWorldsMatchFigure1) {
  // Figure 1(b): 12 possible worlds; check a few flagship entries and that
  // the whole distribution sums to 1.
  const auto worlds = Figure1String().EnumerateWorlds(100);
  ASSERT_TRUE(worlds.ok());
  EXPECT_EQ(worlds->size(), 12u);
  std::map<std::string, double> by_value;
  double total = 0;
  for (const auto& w : *worlds) {
    by_value[w.value] += w.prob;
    total += w.prob;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(by_value["aadaa"], 0.09, 1e-12);
  EXPECT_NEAR(by_value["badaa"], 0.12, 1e-12);
  EXPECT_NEAR(by_value["dcdca"], 0.06, 1e-12);
}

TEST(UncertainStringTest, PossibleWorldsRespectLimit) {
  EXPECT_TRUE(
      Figure1String().EnumerateWorlds(5).status().IsResourceExhausted());
}

TEST(UncertainStringTest, WorldsAgreeWithOccurrenceProb) {
  // Pr(p occurs at i) must equal the mass of worlds whose value has p at i.
  const test::RandomStringSpec spec{.length = 6, .alphabet = 2, .seed = 42};
  const UncertainString s = test::RandomUncertain(spec);
  const auto worlds = s.EnumerateWorlds(1 << 14);
  ASSERT_TRUE(worlds.ok());
  const std::vector<std::string> patterns = {"a", "ab", "ba", "aab", "abab"};
  for (const std::string& p : patterns) {
    for (int64_t i = 0; i + static_cast<int64_t>(p.size()) <= s.size(); ++i) {
      double mass = 0;
      for (const auto& w : *worlds) {
        if (w.value.compare(i, p.size(), p) == 0) mass += w.prob;
      }
      EXPECT_NEAR(s.OccurrenceProb(p, i).ToLinear(), mass, 1e-9)
          << p << " at " << i;
    }
  }
}

// ---- Correlations (§3.3, Figure 4) ----

// Figure 4: S[1] = {e:.6, f:.4}, S[2] = {q:1}, S[3] = {z correlated with e1}.
UncertainString Figure4String() {
  UncertainString s;
  s.AddPosition({{'e', 0.6}, {'f', 0.4}});
  s.AddPosition({{'q', 1.0}});
  s.AddPosition({{'z', 1.0}});
  EXPECT_TRUE(s.AddCorrelation({.pos = 2,
                                .ch = 'z',
                                .dep_pos = 0,
                                .dep_ch = 'e',
                                .prob_if_present = 0.3,
                                .prob_if_absent = 0.4})
                  .ok());
  return s;
}

TEST(CorrelationTest, Figure4Case1InsideWindow) {
  const UncertainString s = Figure4String();
  // "For the substring eqz, pr(z3) = .3": Pr = .6 * 1 * .3.
  EXPECT_NEAR(s.OccurrenceProb("eqz", 0).ToLinear(), 0.6 * 0.3, 1e-12);
  // "for fqz, pr(z3) = .4".
  EXPECT_NEAR(s.OccurrenceProb("fqz", 0).ToLinear(), 0.4 * 0.4, 1e-12);
}

TEST(CorrelationTest, Figure4Case2OutsideWindow) {
  const UncertainString s = Figure4String();
  // "For substring qz, pr(z3) = .6*.3 + .4*.4" (the paper's second term has
  // a typo — pr+ instead of pr- — contradicted by its own example value).
  EXPECT_NEAR(s.OccurrenceProb("qz", 1).ToLinear(), 0.6 * 0.3 + 0.4 * 0.4,
              1e-12);
  EXPECT_NEAR(s.OccurrenceProb("z", 2).ToLinear(), 0.34, 1e-12);
}

TEST(CorrelationTest, WorldsAgreeWithCorrelatedOccurrenceProb) {
  // Full-string windows resolve via case 1; world mass must agree.
  const UncertainString s = Figure4String();
  const auto worlds = s.EnumerateWorlds(100);
  ASSERT_TRUE(worlds.ok());
  double mass_eqz = 0, total = 0;
  for (const auto& w : *worlds) {
    total += w.prob;
    if (w.value == "eqz") mass_eqz += w.prob;
  }
  EXPECT_NEAR(mass_eqz, 0.18, 1e-12);
  // Worlds of a correlated string need not sum to 1 unless the pr+/pr-
  // variants are complementary; Figure 4's z-only position makes the mass
  // 0.6*0.3 + 0.4*0.4 = 0.34 (z is the only choice there).
  EXPECT_NEAR(total, 0.34, 1e-12);
}

TEST(CorrelationTest, AddCorrelationValidation) {
  UncertainString s;
  s.AddPosition({{'a', 0.5}, {'b', 0.5}});
  s.AddPosition({{'c', 1.0}});
  CorrelationRule ok{.pos = 1, .ch = 'c', .dep_pos = 0, .dep_ch = 'a',
                     .prob_if_present = 0.9, .prob_if_absent = 0.2};
  EXPECT_TRUE(s.AddCorrelation(ok).ok());
  // Duplicate rule for same (pos, ch).
  EXPECT_TRUE(s.AddCorrelation(ok).IsInvalidArgument());
  // Out-of-range positions.
  CorrelationRule bad = ok;
  bad.pos = 7;
  EXPECT_TRUE(s.AddCorrelation(bad).IsInvalidArgument());
  // Self-correlation.
  bad = ok;
  bad.dep_pos = 1;
  EXPECT_TRUE(s.AddCorrelation(bad).IsInvalidArgument());
  // Nonexistent characters.
  bad = ok;
  bad.pos = 0;
  bad.ch = 'z';
  EXPECT_TRUE(s.AddCorrelation(bad).IsInvalidArgument());
  bad = ok;
  bad.dep_ch = 'z';
  EXPECT_TRUE(s.AddCorrelation(bad).IsInvalidArgument());
  // Probabilities outside [0, 1].
  bad = ok;
  bad.ch = 'b';  // distinct (pos, ch) so the dup check does not trigger
  bad.pos = 0;
  bad.dep_pos = 1;
  bad.dep_ch = 'c';
  bad.prob_if_present = 1.5;
  EXPECT_TRUE(s.AddCorrelation(bad).IsInvalidArgument());
  // NaN probabilities (all comparisons false) must be rejected too.
  bad.prob_if_present = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(s.AddCorrelation(bad).IsInvalidArgument());
}

TEST(CorrelationTest, CaseSwitchDependsOnWindowExtent) {
  // A window that includes the dependency resolves it (case 1); a window
  // that excludes it marginalizes (case 2). Same position, same character.
  UncertainString s;
  s.AddPosition({{'x', 0.5}, {'y', 0.5}});
  s.AddPosition({{'a', 1.0}});
  s.AddPosition({{'b', 1.0}});
  ASSERT_TRUE(s.AddCorrelation({.pos = 2, .ch = 'b', .dep_pos = 0,
                                .dep_ch = 'x', .prob_if_present = 0.8,
                                .prob_if_absent = 0.1})
                  .ok());
  EXPECT_NEAR(s.OccurrenceProb("xab", 0).ToLinear(), 0.5 * 0.8, 1e-12);
  EXPECT_NEAR(s.OccurrenceProb("yab", 0).ToLinear(), 0.5 * 0.1, 1e-12);
  const double marginal = 0.5 * 0.8 + 0.5 * 0.1;
  EXPECT_NEAR(s.OccurrenceProb("ab", 1).ToLinear(), marginal, 1e-12);
  EXPECT_NEAR(s.OccurrenceProb("b", 2).ToLinear(), marginal, 1e-12);
}

// ---- SpecialUncertainString ----

TEST(SpecialStringTest, FromUncertainRequiresSpecialForm) {
  EXPECT_FALSE(SpecialUncertainString::FromUncertain(Figure1String()).ok());
  UncertainString s;
  s.AddPosition({{'b', 0.4}});
  s.AddPosition({{'a', 0.7}});
  const auto sp = SpecialUncertainString::FromUncertain(s);
  ASSERT_TRUE(sp.ok());
  EXPECT_EQ(sp->chars, "ba");
  EXPECT_EQ(sp->probs, (std::vector<double>{0.4, 0.7}));
}

TEST(SpecialStringTest, OccurrenceProbMatchesFigure5) {
  // Figure 5: X = (b,.4)(a,.7)(n,.5)(a,.8)(n,.9)(a,.6); query ("ana", 0.3)
  // matches at 1-based position 4 with 0.8*0.9*0.6 = 0.432 and fails at
  // position 2 with 0.7*0.5*0.8 = 0.28.
  SpecialUncertainString x;
  x.chars = "banana";
  x.probs = {0.4, 0.7, 0.5, 0.8, 0.9, 0.6};
  EXPECT_NEAR(x.OccurrenceProb("ana", 3).ToLinear(), 0.432, 1e-12);
  EXPECT_NEAR(x.OccurrenceProb("ana", 1).ToLinear(), 0.28, 1e-12);
  EXPECT_TRUE(x.OccurrenceProb("nab", 2).IsZero());
}

TEST(UncertainStringTest, MemoryUsageIsNonzero) {
  EXPECT_GT(Figure1String().MemoryUsage(), 0u);
}

}  // namespace
}  // namespace pti
