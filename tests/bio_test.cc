// Tests for the bioinformatics adapters: FASTQ parsing, Phred -> probability
// conversion, IUPAC ambiguity codes.

#include <gtest/gtest.h>

#include <cmath>

#include "bio/bio.h"
#include "core/brute_force.h"

namespace pti {
namespace {

constexpr char kFastq[] =
    "@read1\n"
    "ACGT\n"
    "+\n"
    "IIII\n"
    "@read2 description\n"
    "GGNA\n"
    "+read2\n"
    "I5!I\n";

TEST(FastqTest, ParsesRecords) {
  const auto records = ParseFastq(kFastq);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].id, "read1");
  EXPECT_EQ((*records)[0].sequence, "ACGT");
  EXPECT_EQ((*records)[0].quality, "IIII");
  EXPECT_EQ((*records)[1].id, "read2 description");
}

TEST(FastqTest, RejectsMalformed) {
  EXPECT_TRUE(ParseFastq("ACGT\n+\nIIII\n").status().IsCorruption());
  EXPECT_TRUE(ParseFastq("@x\nACGT\n").status().IsCorruption());
  EXPECT_TRUE(ParseFastq("@x\nACGT\nIIII\nIIII\n").status().IsCorruption());
  EXPECT_TRUE(ParseFastq("@x\nACGT\n+\nIII\n").status().IsCorruption());
  EXPECT_TRUE(ParseFastq("").ok());  // empty file: zero records
}

TEST(FastqTest, PhredConversion) {
  // 'I' = Q40 => error 1e-4; '5' = Q20 => 1e-2; '!' = Q0 => error 1.
  const auto records = ParseFastq(kFastq);
  ASSERT_TRUE(records.ok());
  const auto s = FastqToUncertain((*records)[0]);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->size(), 4);
  EXPECT_NEAR(s->BaseProb(0, 'A'), 1.0 - 1e-4, 1e-12);
  EXPECT_NEAR(s->BaseProb(0, 'C'), 1e-4 / 3.0, 1e-12);
  EXPECT_TRUE(s->Validate().ok());

  const auto s2 = FastqToUncertain((*records)[1]);
  ASSERT_TRUE(s2.ok());
  // Position 2 is 'N': uniform.
  EXPECT_NEAR(s2->BaseProb(2, 'A'), 0.25, 1e-12);
  EXPECT_NEAR(s2->BaseProb(2, 'T'), 0.25, 1e-12);
  // Position 1: Q20 on 'G'.
  EXPECT_NEAR(s2->BaseProb(1, 'G'), 0.99, 1e-12);
}

TEST(FastqTest, RejectsBadBasesAndQualities) {
  FastqRecord rec{"x", "AXGT", "IIII"};
  EXPECT_TRUE(FastqToUncertain(rec).status().IsInvalidArgument());
  FastqRecord rec2{"x", "ACGT", std::string("II") + '\x01' + "I"};
  EXPECT_TRUE(FastqToUncertain(rec2).status().IsInvalidArgument());
}

TEST(FastqTest, QualityAwareSearchFindsMotif) {
  // High-quality read: searching the read's own sequence succeeds with high
  // probability; a corrupted motif does not.
  FastqRecord rec{"r", "ACGTACGTAC", "IIIIIIIIII"};
  const auto s = FastqToUncertain(rec);
  ASSERT_TRUE(s.ok());
  const auto hits = BruteForceSearch(*s, "GTAC", 0.9);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].position, 2);
  EXPECT_EQ(hits[1].position, 6);
  EXPECT_TRUE(BruteForceSearch(*s, "GTAA", 0.5).empty());
}

TEST(IupacTest, CodesExpandToUniformSets) {
  const auto s = IupacToUncertain("ARN");
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->size(), 3);
  EXPECT_EQ(s->options(0).size(), 1u);
  EXPECT_NEAR(s->BaseProb(1, 'A'), 0.5, 1e-12);
  EXPECT_NEAR(s->BaseProb(1, 'G'), 0.5, 1e-12);
  EXPECT_EQ(s->BaseProb(1, 'C'), 0.0);
  EXPECT_NEAR(s->BaseProb(2, 'T'), 0.25, 1e-12);
  EXPECT_TRUE(s->Validate().ok());
}

TEST(IupacTest, LowercaseAccepted) {
  const auto s = IupacToUncertain("acgtn");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 5);
}

TEST(IupacTest, RejectsUnknownCode) {
  EXPECT_TRUE(IupacToUncertain("ACGX").status().IsInvalidArgument());
}

TEST(IupacTest, ThreeWaySetsSumToOne) {
  const auto s = IupacToUncertain("B");
  ASSERT_TRUE(s.ok());
  double sum = 0;
  for (const auto& opt : s->options(0)) sum += opt.prob;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

}  // namespace
}  // namespace pti
