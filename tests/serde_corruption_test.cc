// Failure injection for the shared container format (core/serde.h) across
// all four index kinds: truncation at every prefix length, single-bit flips
// at every byte, wrong magic / kind / version, hostile section lengths, and
// hand-crafted hostile payloads targeting the decoder validation (dangling
// correlated positions, non-contiguous factor maps, NaN probabilities, ...).
// Every input must fail with a non-OK Status — never crash — which the CI
// ASan+UBSan job enforces.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "core/approx_index.h"
#include "core/listing_index.h"
#include "core/serde.h"
#include "core/special_index.h"
#include "core/substring_index.h"
#include "engine/sharded_index.h"
#include "test_util.h"
#include "util/serial.h"

namespace pti {
namespace {

using serde::IndexKind;

// Container header offsets (docs/FORMAT.md): magic, kind, version, count.
constexpr size_t kKindOffset = 4;
constexpr size_t kVersionOffset = 8;
constexpr size_t kSectionCountOffset = 12;
// First section: u32 tag at 16, u64 length at 20.
constexpr size_t kFirstSectionLengthOffset = 20;

struct KindCase {
  IndexKind kind;
  const char* name;
  std::string blob;
  std::function<Status(const std::string&)> load;
};

std::vector<KindCase> MakeKindCases() {
  const test::RandomStringSpec spec{.length = 25, .alphabet = 3,
                                    .theta = 0.5, .seed = 99};
  const UncertainString s = test::RandomUncertain(spec);

  std::vector<KindCase> cases;
  {
    IndexOptions options;
    options.transform.tau_min = 0.1;
    const auto index = SubstringIndex::Build(s, options);
    EXPECT_TRUE(index.ok());
    std::string blob;
    EXPECT_TRUE(index->Save(&blob).ok());
    cases.push_back({IndexKind::kSubstring, "substring", std::move(blob),
                     [](const std::string& b) {
                       return SubstringIndex::Load(b).status();
                     }});
  }
  {
    // Compact mode adds the "SARR" suffix-array section; every sweep below
    // (truncation, bit flips, hostile framing) covers its bytes too.
    IndexOptions options;
    options.transform.tau_min = 0.1;
    options.compact = true;
    const auto index = SubstringIndex::Build(s, options);
    EXPECT_TRUE(index.ok());
    std::string blob;
    EXPECT_TRUE(index->Save(&blob).ok());
    cases.push_back({IndexKind::kSubstring, "substring-compact",
                     std::move(blob), [](const std::string& b) {
                       return SubstringIndex::Load(b).status();
                     }});
  }
  {
    ListingOptions options;
    options.transform.tau_min = 0.1;
    const auto index = ListingIndex::Build({s, s}, options);
    EXPECT_TRUE(index.ok());
    std::string blob;
    EXPECT_TRUE(index->Save(&blob).ok());
    cases.push_back({IndexKind::kListing, "listing", std::move(blob),
                     [](const std::string& b) {
                       return ListingIndex::Load(b).status();
                     }});
  }
  {
    ApproxOptions options;
    options.transform.tau_min = 0.1;
    const auto index = ApproxIndex::Build(s, options);
    EXPECT_TRUE(index.ok());
    std::string blob;
    EXPECT_TRUE(index->Save(&blob).ok());
    cases.push_back({IndexKind::kApprox, "approx", std::move(blob),
                     [](const std::string& b) {
                       return ApproxIndex::Load(b).status();
                     }});
  }
  {
    UncertainString sp;
    Rng rng(5);
    for (int i = 0; i < 25; ++i) {
      sp.AddPosition({{static_cast<uint8_t>('a' + rng.Uniform(3)),
                       static_cast<double>(1 + rng.Uniform(64)) / 64.0}});
    }
    const auto index = SpecialIndex::Build(sp, SpecialIndexOptions{});
    EXPECT_TRUE(index.ok());
    std::string blob;
    EXPECT_TRUE(index->Save(&blob).ok());
    cases.push_back({IndexKind::kSpecial, "special", std::move(blob),
                     [](const std::string& b) {
                       return SpecialIndex::Load(b).status();
                     }});
  }
  {
    ShardedIndexOptions options;
    options.index.transform.tau_min = 0.1;
    options.num_shards = 3;
    options.overlap = 4;
    const auto index = ShardedIndex::Build(s, options);
    EXPECT_TRUE(index.ok());
    std::string blob;
    EXPECT_TRUE(index->Save(&blob).ok());
    cases.push_back({IndexKind::kSharded, "sharded", std::move(blob),
                     [](const std::string& b) {
                       return ShardedIndex::Load(b).status();
                     }});
  }
  return cases;
}

const std::vector<KindCase>& KindCases() {
  static const std::vector<KindCase>* cases =
      new std::vector<KindCase>(MakeKindCases());
  return *cases;
}

// Rewrites bytes at `offset`, then refreshes the trailing checksum so the
// mutation tests the *semantic* validation layer, not just the checksum.
std::string PatchWithValidChecksum(std::string blob, size_t offset,
                                   const void* bytes, size_t n) {
  EXPECT_LE(offset + n, blob.size() - 8);
  std::memcpy(&blob[offset], bytes, n);
  const uint64_t checksum = Fnv1a64(blob.data(), blob.size() - 8);
  std::memcpy(&blob[blob.size() - 8], &checksum, 8);
  return blob;
}

std::string PatchU32(std::string blob, size_t offset, uint32_t value) {
  return PatchWithValidChecksum(std::move(blob), offset, &value, 4);
}

std::string PatchU64(std::string blob, size_t offset, uint64_t value) {
  return PatchWithValidChecksum(std::move(blob), offset, &value, 8);
}

TEST(SerdeCorruptionTest, ValidBlobsLoad) {
  for (const KindCase& c : KindCases()) {
    EXPECT_TRUE(c.load(c.blob).ok()) << c.name;
    const auto kind = serde::PeekKind(c.blob);
    ASSERT_TRUE(kind.ok()) << c.name;
    EXPECT_EQ(*kind, c.kind) << c.name;
  }
}

TEST(SerdeCorruptionTest, TruncationAtEveryLengthFails) {
  for (const KindCase& c : KindCases()) {
    for (size_t len = 0; len < c.blob.size(); ++len) {
      const Status st = c.load(c.blob.substr(0, len));
      ASSERT_FALSE(st.ok())
          << c.name << " accepted truncation at " << len;
    }
  }
}

TEST(SerdeCorruptionTest, SingleBitFlipAtEveryByteFails) {
  // The trailing checksum makes every single-bit corruption detectable,
  // including flips inside probability payloads that would otherwise decode.
  for (const KindCase& c : KindCases()) {
    for (size_t at = 0; at < c.blob.size(); ++at) {
      std::string mutated = c.blob;
      mutated[at] = static_cast<char>(mutated[at] ^ (1 << (at % 8)));
      const Status st = c.load(mutated);
      ASSERT_FALSE(st.ok())
          << c.name << " accepted bit flip at byte " << at;
      ASSERT_FALSE(st.message().empty());
    }
  }
}

TEST(SerdeCorruptionTest, RandomMultiByteCorruptionNeverCrashes) {
  Rng rng(17);
  for (const KindCase& c : KindCases()) {
    for (int trial = 0; trial < 100; ++trial) {
      std::string mutated = c.blob;
      const size_t edits = 1 + rng.Uniform(8);
      for (size_t e = 0; e < edits; ++e) {
        mutated[rng.Uniform(mutated.size())] =
            static_cast<char>(rng.Next() & 0xFF);
      }
      const Status st = c.load(mutated);
      if (mutated != c.blob) {
        EXPECT_FALSE(st.ok()) << c.name;
      }
    }
  }
}

TEST(SerdeCorruptionTest, EmptyAndTinyBlobsFail) {
  for (const KindCase& c : KindCases()) {
    EXPECT_TRUE(c.load("").IsCorruption()) << c.name;
    EXPECT_TRUE(c.load("P").IsCorruption()) << c.name;
    EXPECT_TRUE(c.load("PTIC").IsCorruption()) << c.name;
  }
  EXPECT_TRUE(serde::PeekKind("").status().IsCorruption());
  EXPECT_TRUE(serde::PeekKind("PTI").status().IsCorruption());
}

TEST(SerdeCorruptionTest, WrongMagicFails) {
  for (const KindCase& c : KindCases()) {
    std::string blob = PatchU32(c.blob, 0, 0xDEADBEEF);
    EXPECT_TRUE(c.load(blob).IsCorruption()) << c.name;
    EXPECT_TRUE(serde::PeekKind(blob).status().IsCorruption()) << c.name;
  }
}

TEST(SerdeCorruptionTest, KindMismatchFails) {
  // Every blob loaded as every *other* kind must be rejected.
  for (const KindCase& a : KindCases()) {
    for (const KindCase& b : KindCases()) {
      if (a.kind == b.kind) continue;
      EXPECT_TRUE(b.load(a.blob).IsCorruption())
          << a.name << " accepted by " << b.name << " loader";
    }
  }
}

TEST(SerdeCorruptionTest, UnknownKindTagFails) {
  for (const KindCase& c : KindCases()) {
    const std::string blob = PatchU32(c.blob, kKindOffset, 0x4B4E5557);
    EXPECT_TRUE(c.load(blob).IsCorruption()) << c.name;
    EXPECT_TRUE(serde::PeekKind(blob).status().IsCorruption()) << c.name;
  }
}

TEST(SerdeCorruptionTest, FutureAndZeroVersionsFail) {
  for (const KindCase& c : KindCases()) {
    EXPECT_TRUE(
        c.load(PatchU32(c.blob, kVersionOffset, serde::kContainerVersion + 1))
            .IsCorruption())
        << c.name;
    EXPECT_TRUE(c.load(PatchU32(c.blob, kVersionOffset, 99)).IsCorruption())
        << c.name;
    EXPECT_TRUE(c.load(PatchU32(c.blob, kVersionOffset, 0)).IsCorruption())
        << c.name;
  }
}

TEST(SerdeCorruptionTest, HostileSectionTableFails) {
  for (const KindCase& c : KindCases()) {
    // Unreasonable section count.
    EXPECT_TRUE(c.load(PatchU32(c.blob, kSectionCountOffset, 0xFFFFFFFF))
                    .IsCorruption())
        << c.name;
    // Dropping a section truncates the table mid-parse.
    EXPECT_TRUE(c.load(PatchU32(c.blob, kSectionCountOffset, 1)).ok() == false)
        << c.name;
    // Section length far beyond the buffer.
    EXPECT_TRUE(
        c.load(PatchU64(c.blob, kFirstSectionLengthOffset, uint64_t{1} << 60))
            .IsCorruption())
        << c.name;
    // Section length that would swallow the checksum.
    EXPECT_TRUE(
        c.load(PatchU64(c.blob, kFirstSectionLengthOffset,
                        c.blob.size() - kFirstSectionLengthOffset - 8))
            .IsCorruption())
        << c.name;
  }
}

TEST(SerdeCorruptionTest, TrailingGarbageFails) {
  for (const KindCase& c : KindCases()) {
    EXPECT_TRUE(c.load(c.blob + "extra!").IsCorruption()) << c.name;
  }
}

TEST(SerdeCorruptionTest, ChecksumMismatchAloneFails) {
  for (const KindCase& c : KindCases()) {
    std::string blob = c.blob;
    blob[blob.size() - 1] = static_cast<char>(blob[blob.size() - 1] ^ 0x40);
    EXPECT_TRUE(c.load(blob).IsCorruption()) << c.name;
  }
}

// ---- Container-level unit tests via hand-built containers ----

std::string MinimalContainer(IndexKind kind,
                             const std::vector<uint32_t>& tags) {
  serde::ContainerWriter cw(kind);
  for (const uint32_t tag : tags) {
    cw.AddSection(tag).PutU32(7);
  }
  return std::move(cw).Finish();
}

TEST(SerdeCorruptionTest, MissingSectionFails) {
  // A well-framed substring container without the factors section.
  const std::string blob = MinimalContainer(
      IndexKind::kSubstring, {serde::kTagOptions, serde::kTagSource});
  serde::ContainerReader container;
  ASSERT_TRUE(serde::ContainerReader::Open(blob, IndexKind::kSubstring,
                                           &container)
                  .ok());
  Reader section;
  EXPECT_TRUE(
      container.Section(serde::kTagFactors, &section).IsCorruption());
  EXPECT_TRUE(SubstringIndex::Load(blob).status().IsCorruption());
}

TEST(SerdeCorruptionTest, DuplicateSectionTagFails) {
  const std::string blob = MinimalContainer(
      IndexKind::kSubstring, {serde::kTagOptions, serde::kTagOptions});
  serde::ContainerReader container;
  EXPECT_TRUE(serde::ContainerReader::Open(blob, IndexKind::kSubstring,
                                           &container)
                  .IsCorruption());
}

TEST(SerdeCorruptionTest, UnrecognizedExtraSectionIsIgnored) {
  // Compatibility policy: v1 readers skip sections they do not know, so a
  // same-version writer may append purely-informational sections.
  const UncertainString s = test::RandomUncertain(
      {.length = 12, .alphabet = 2, .theta = 0.5, .seed = 3});
  IndexOptions options;
  options.transform.tau_min = 0.2;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::string blob;
  ASSERT_TRUE(index->Save(&blob, serde::kInterchangeVersion).ok());
  // Re-frame the same sections plus an extra one.
  serde::ContainerReader container;
  ASSERT_TRUE(serde::ContainerReader::Open(blob, IndexKind::kSubstring,
                                           &container)
                  .ok());
  serde::ContainerWriter cw(IndexKind::kSubstring,
                            serde::kInterchangeVersion);
  for (const uint32_t tag :
       {serde::kTagOptions, serde::kTagSource, serde::kTagFactors}) {
    Reader section;
    ASSERT_TRUE(container.Section(tag, &section).ok());
    Writer& w = cw.AddSection(tag);
    std::vector<uint8_t> raw(section.remaining());
    for (auto& b : raw) ASSERT_TRUE(section.GetU8(&b).ok());
    for (const uint8_t b : raw) w.PutU8(b);
  }
  cw.AddSection(0x41525458).PutU64(123);  // "XTRA"
  const std::string extended = std::move(cw).Finish();
  const auto loaded = SubstringIndex::Load(extended);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
}

// ---- Hostile payloads: the decoder validation layer ----
//
// These craft well-framed containers whose *payloads* violate model
// invariants. Several of them are regressions for latent bugs in the old
// SubstringIndex::Load: a corr_positions entry with no matching rule, or a
// non-contiguous pos[] map, decoded fine but crashed (rules.at throw /
// wrong-window reads) at query time.

UncertainString TwoPosSource() {
  UncertainString s;
  s.AddPosition({{'a', 0.5}, {'b', 0.5}});
  s.AddPosition({{'a', 0.5}, {'b', 0.5}});
  return s;
}

void WriteSubstringOptions(Writer& w) {
  w.PutDouble(0.1);              // tau_min
  w.PutU64(uint64_t{1} << 31);   // max_total_length
  w.PutU32(0);                   // max_short_depth
  w.PutU8(0);                    // rmq_engine
  w.PutU8(0);                    // blocking
  w.PutU64(64);                  // scan_cutoff
  w.PutU8(0);                    // compact
}

// A substring container around a hand-written factor section. The factor
// text is the single member "ab" unless the writer says otherwise.
std::string SubstringContainerWithFactors(
    const std::function<void(Writer&)>& write_factors) {
  // The hand-written factor section is the v2 ("FACT") layout, so frame it
  // as an interchange container.
  serde::ContainerWriter cw(IndexKind::kSubstring,
                            serde::kInterchangeVersion);
  WriteSubstringOptions(cw.AddSection(serde::kTagOptions));
  serde::EncodeUncertainString(TwoPosSource(),
                               &cw.AddSection(serde::kTagSource));
  write_factors(cw.AddSection(serde::kTagFactors));
  return std::move(cw).Finish();
}

struct FactorParts {
  std::vector<int32_t> chars = {'a', 'b', 256};
  std::vector<int64_t> starts = {0, 3};
  std::vector<int64_t> pos = {0, 1, -1};
  std::vector<double> logp = {-0.6931471805599453, -0.6931471805599453, 0.0};
  std::vector<int64_t> corr_positions = {};
  int64_t original_length = 2;
  double tau_min = 0.1;
};

void WriteFactorParts(Writer& w, const FactorParts& f) {
  w.PutVector(f.chars);
  w.PutVector(f.starts);
  w.PutVector(f.pos);
  w.PutVector(f.logp);
  w.PutVector(f.corr_positions);
  w.PutI64(f.original_length);
  w.PutDouble(f.tau_min);
}

Status LoadWithFactors(const FactorParts& f) {
  return SubstringIndex::Load(SubstringContainerWithFactors(
                                  [&](Writer& w) { WriteFactorParts(w, f); }))
      .status();
}

TEST(SerdeCorruptionTest, WellFormedHandBuiltFactorsLoad) {
  EXPECT_TRUE(LoadWithFactors(FactorParts{}).ok());
}

TEST(SerdeCorruptionTest, DanglingCorrelatedPositionFails) {
  // corr_positions points at ('a' at S-position 0) but the source has no
  // rule there: query-time evaluation would throw out of rules.at().
  FactorParts f;
  f.corr_positions = {0};
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
}

TEST(SerdeCorruptionTest, CorrelatedPositionOutOfRangeFails) {
  FactorParts f;
  f.corr_positions = {17};
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
  f.corr_positions = {-1};
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
  f.corr_positions = {2};  // the sentinel position
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
}

TEST(SerdeCorruptionTest, UnsortedCorrelatedPositionsFail) {
  FactorParts f;
  f.corr_positions = {1, 0};
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
}

TEST(SerdeCorruptionTest, NonContiguousFactorPositionsFail) {
  // The window-probability math assumes S-positions advance with text
  // positions inside a factor.
  FactorParts f;
  f.pos = {0, 0, -1};
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
  f.pos = {1, 0, -1};
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
}

TEST(SerdeCorruptionTest, FactorPositionOutOfRangeFails) {
  FactorParts f;
  f.pos = {0, 5, -1};
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
  f.pos = {-1, 0, -1};  // -1 on a non-sentinel position
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
}

TEST(SerdeCorruptionTest, SentinelCarryingFactorDataFails) {
  FactorParts f;
  f.pos = {0, 1, 1};
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
  f = FactorParts{};
  f.logp = {-0.5, -0.5, -0.5};
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
}

TEST(SerdeCorruptionTest, OriginalLengthMismatchFails) {
  FactorParts f;
  f.original_length = 5;  // source has 2 positions
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
}

TEST(SerdeCorruptionTest, HostileLogProbabilitiesFail) {
  FactorParts f;
  f.logp = {0.5, -0.5, 0.0};  // log prob above 0 => "probability" > 1
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
  f.logp = {std::nan(""), -0.5, 0.0};
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
}

TEST(SerdeCorruptionTest, HostileFactorTauMinFails) {
  FactorParts f;
  f.tau_min = 0.0;
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
  f.tau_min = 1.5;
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
  f.tau_min = std::nan("");
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
}

TEST(SerdeCorruptionTest, MismatchedFactorArraySizesFail) {
  FactorParts f;
  f.pos = {0, 1};  // one entry short
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
  f = FactorParts{};
  f.logp = {-0.5, 0.0};
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
}

TEST(SerdeCorruptionTest, MalformedTextSentinelsFail) {
  FactorParts f;
  f.chars = {'a', 'b', 257};  // wrong sentinel id for member 0
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
  f = FactorParts{};
  f.chars = {'a', 300, 256};  // out-of-alphabet character inside a member
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
  f = FactorParts{};
  f.starts = {0, 2};  // starts disagree with chars length
  EXPECT_TRUE(LoadWithFactors(f).IsCorruption());
}

// Hostile source payloads exercise the shared DecodeUncertainString.

std::string SubstringContainerWithSource(
    const std::function<void(Writer&)>& write_source) {
  serde::ContainerWriter cw(IndexKind::kSubstring);
  WriteSubstringOptions(cw.AddSection(serde::kTagOptions));
  write_source(cw.AddSection(serde::kTagSource));
  serde::EncodeFactorSet(FactorSet{}, &cw.AddSection(serde::kTagFactors));
  return std::move(cw).Finish();
}

TEST(SerdeCorruptionTest, HostileSourceOptionCountsFail) {
  for (const uint32_t count : {0u, 257u, 0xFFFFFFFFu}) {
    const std::string blob = SubstringContainerWithSource([&](Writer& w) {
      w.PutU64(1);
      w.PutU32(count);
    });
    EXPECT_TRUE(SubstringIndex::Load(blob).status().IsCorruption()) << count;
  }
}

TEST(SerdeCorruptionTest, HostileSourcePositionCountFails) {
  const std::string blob = SubstringContainerWithSource([&](Writer& w) {
    w.PutU64(uint64_t{1} << 62);  // absurd position count
  });
  EXPECT_TRUE(SubstringIndex::Load(blob).status().IsCorruption());
}

TEST(SerdeCorruptionTest, HostileSourceProbabilitiesFail) {
  for (const double prob : {-0.25, 1.5, std::nan("")}) {
    const std::string blob = SubstringContainerWithSource([&](Writer& w) {
      w.PutU64(1);
      w.PutU32(1);
      w.PutU8('a');
      w.PutDouble(prob);
      w.PutU64(0);  // no rules
    });
    EXPECT_TRUE(SubstringIndex::Load(blob).status().IsCorruption()) << prob;
  }
}

TEST(SerdeCorruptionTest, HostileCorrelationRulesFail) {
  // Rule referencing an out-of-range dependency position.
  const std::string blob = SubstringContainerWithSource([&](Writer& w) {
    w.PutU64(1);
    w.PutU32(1);
    w.PutU8('a');
    w.PutDouble(1.0);
    w.PutU64(1);       // one rule
    w.PutI64(0);       // pos
    w.PutU8('a');      // ch
    w.PutI64(12345);   // dep_pos out of range
    w.PutU8('a');
    w.PutDouble(0.5);
    w.PutDouble(0.5);
  });
  EXPECT_TRUE(SubstringIndex::Load(blob).status().IsCorruption());
}

TEST(SerdeCorruptionTest, NonUnitOptionSumsFail) {
  const std::string blob = SubstringContainerWithSource([&](Writer& w) {
    w.PutU64(1);
    w.PutU32(2);
    w.PutU8('a');
    w.PutDouble(0.5);
    w.PutU8('b');
    w.PutDouble(0.1);  // sums to 0.6, no correlation exemption
    w.PutU64(0);
  });
  EXPECT_TRUE(SubstringIndex::Load(blob).status().IsCorruption());
}

// Hostile listing maps exercise the ListingIndex-specific validation.

std::string ListingBlob() {
  ListingOptions options;
  options.transform.tau_min = 0.1;
  const UncertainString s = test::RandomUncertain(
      {.length = 12, .alphabet = 2, .theta = 0.5, .seed = 21});
  const auto index = ListingIndex::Build({s}, options);
  EXPECT_TRUE(index.ok());
  std::string blob;
  EXPECT_TRUE(index->Save(&blob).ok());
  return blob;
}

// Reframes a listing container with one section payload replaced.
std::string ReplaceSection(const std::string& blob, IndexKind kind,
                           uint32_t replaced_tag,
                           const std::function<void(Writer&)>& write) {
  serde::ContainerReader container;
  EXPECT_TRUE(serde::ContainerReader::Open(blob, kind, &container).ok());
  serde::ContainerWriter cw(kind);
  for (const uint32_t tag : {serde::kTagOptions, serde::kTagSource,
                             serde::kTagText, serde::kTagMaps}) {
    Writer& w = cw.AddSection(tag);
    if (tag == replaced_tag) {
      write(w);
      continue;
    }
    Reader section;
    EXPECT_TRUE(container.Section(tag, &section).ok());
    uint8_t b = 0;
    while (!section.AtEnd()) {
      EXPECT_TRUE(section.GetU8(&b).ok());
      w.PutU8(b);
    }
  }
  return std::move(cw).Finish();
}

TEST(SerdeCorruptionTest, HostileListingMapsFail) {
  const std::string blob = ListingBlob();
  const auto original = ListingIndex::Load(blob);
  ASSERT_TRUE(original.ok());
  const size_t n = original->stats().transformed_length;
  ASSERT_GT(n, 1u);

  struct Variant {
    const char* name;
    std::function<void(std::vector<int32_t>&, std::vector<int64_t>&,
                       std::vector<double>&, std::vector<int64_t>&)>
        mutate;
  };
  const std::vector<Variant> variants = {
      {"doc id out of range",
       [](auto& doc_of, auto&, auto&, auto&) { doc_of[0] = 7; }},
      {"doc position out of range",
       [](auto&, auto& pos_in_doc, auto&, auto&) { pos_in_doc[0] = 999; }},
      {"sentinel carries doc data",
       [n = n](auto& doc_of, auto&, auto&, auto&) { doc_of[n - 1] = 0; }},
      {"positive log probability",
       [](auto&, auto&, auto& logp, auto&) { logp[0] = 0.25; }},
      {"NaN log probability",
       [](auto&, auto&, auto& logp, auto&) { logp[0] = std::nan(""); }},
      {"doc base offsets malformed",
       [](auto&, auto&, auto&, auto& doc_base) { doc_base[1] += 3; }},
      {"doc base INT64_MIN (regression: validation must not overflow)",
       [](auto&, auto&, auto&, auto& doc_base) {
         doc_base[1] = std::numeric_limits<int64_t>::min();
       }},
      {"non-contiguous doc positions",
       [](auto&, auto& pos_in_doc, auto&, auto&) {
         pos_in_doc[1] = pos_in_doc[0];
       }},
      {"map size mismatch",
       [](auto& doc_of, auto&, auto&, auto&) { doc_of.pop_back(); }},
  };
  for (const Variant& v : variants) {
    // Decode the genuine maps, mutate one aspect, reframe.
    serde::ContainerReader container;
    ASSERT_TRUE(serde::ContainerReader::Open(blob, IndexKind::kListing,
                                             &container)
                    .ok());
    Reader maps;
    ASSERT_TRUE(container.Section(serde::kTagMaps, &maps).ok());
    std::vector<int32_t> doc_of;
    std::vector<int64_t> pos_in_doc;
    std::vector<double> logp;
    std::vector<int64_t> doc_base;
    ASSERT_TRUE(maps.GetVector(&doc_of).ok());
    ASSERT_TRUE(maps.GetVector(&pos_in_doc).ok());
    ASSERT_TRUE(maps.GetVector(&logp).ok());
    ASSERT_TRUE(maps.GetVector(&doc_base).ok());
    v.mutate(doc_of, pos_in_doc, logp, doc_base);
    const std::string mutated =
        ReplaceSection(blob, IndexKind::kListing, serde::kTagMaps,
                       [&](Writer& w) {
                         w.PutVector(doc_of);
                         w.PutVector(pos_in_doc);
                         w.PutVector(logp);
                         w.PutVector(doc_base);
                       });
    EXPECT_TRUE(ListingIndex::Load(mutated).status().IsCorruption())
        << v.name;
  }
}

TEST(SerdeCorruptionTest, HostileShardManifestsFail) {
  // A hand-built "SHRD" container with one valid nested shard blob and a
  // hostile manifest; every variant must fail the manifest validation (the
  // checksum is recomputed by the writer, so it cannot mask these).
  IndexOptions options;
  options.transform.tau_min = 0.1;
  const auto shard = SubstringIndex::Build(
      test::RandomUncertain({.length = 10, .seed = 3}), options);
  ASSERT_TRUE(shard.ok());
  std::string shard_blob;
  ASSERT_TRUE(shard->Save(&shard_blob).ok());

  struct Variant {
    const char* name;
    std::function<void(Writer&)> manifest;
  };
  const std::vector<Variant> variants = {
      {"zero shards",
       [](Writer& w) {
         w.PutU32(0);
         w.PutU32(4);
         w.PutI64(10);
       }},
      {"unreasonable shard count",
       [](Writer& w) {
         w.PutU32(0xFFFFFFFF);
         w.PutU32(4);
         w.PutI64(10);
       }},
      {"negative original length",
       [](Writer& w) {
         w.PutU32(1);
         w.PutU32(4);
         w.PutI64(-1);
         w.PutI64(0);
       }},
      {"first shard not at zero",
       [](Writer& w) {
         w.PutU32(1);
         w.PutU32(4);
         w.PutI64(10);
         w.PutI64(3);
       }},
      {"begins not increasing",
       [](Writer& w) {
         w.PutU32(2);
         w.PutU32(4);
         w.PutI64(10);
         w.PutI64(0);
         w.PutI64(0);
       }},
      {"begin past the end",
       [](Writer& w) {
         w.PutU32(2);
         w.PutU32(4);
         w.PutI64(10);
         w.PutI64(0);
         w.PutI64(10);
       }},
      {"slice size mismatching manifest",
       [](Writer& w) {
         w.PutU32(1);
         w.PutU32(4);
         w.PutI64(99);  // shard source holds 10 positions, not 99
         w.PutI64(0);
       }},
      {"truncated manifest",
       [](Writer& w) { w.PutU32(1); }},
  };
  for (const Variant& v : variants) {
    serde::ContainerWriter cw(IndexKind::kSharded);
    v.manifest(cw.AddSection(serde::kTagShardManifest));
    cw.AddSection(serde::kTagShardBlobs).PutString(shard_blob);
    const std::string blob = std::move(cw).Finish();
    EXPECT_TRUE(ShardedIndex::Load(blob).status().IsCorruption()) << v.name;
  }
  {
    // Wrong blob count: manifest says two shards, one nested container.
    serde::ContainerWriter cw(IndexKind::kSharded);
    Writer& m = cw.AddSection(serde::kTagShardManifest);
    m.PutU32(2);
    m.PutU32(4);
    m.PutI64(10);
    m.PutI64(0);
    m.PutI64(5);
    cw.AddSection(serde::kTagShardBlobs).PutString(shard_blob);
    EXPECT_TRUE(ShardedIndex::Load(std::move(cw).Finish())
                    .status()
                    .IsCorruption());
  }
  {
    // A nested shard blob that is itself corrupt (truncated container).
    serde::ContainerWriter cw(IndexKind::kSharded);
    Writer& m = cw.AddSection(serde::kTagShardManifest);
    m.PutU32(1);
    m.PutU32(4);
    m.PutI64(10);
    m.PutI64(0);
    cw.AddSection(serde::kTagShardBlobs)
        .PutString(shard_blob.substr(0, shard_blob.size() / 2));
    EXPECT_TRUE(ShardedIndex::Load(std::move(cw).Finish())
                    .status()
                    .IsCorruption());
  }
}

// ---- Hostile suffix-array ("SARR") sections of compact substring blobs ----

std::string CompactBlob(uint32_t version = serde::kContainerVersion) {
  IndexOptions options;
  options.transform.tau_min = 0.1;
  options.compact = true;
  const auto index = SubstringIndex::Build(
      test::RandomUncertain({.length = 30, .alphabet = 3, .theta = 0.5,
                             .seed = 77}),
      options);
  EXPECT_TRUE(index.ok());
  std::string blob;
  EXPECT_TRUE(index->Save(&blob, version).ok());
  return blob;
}

// Reframes a compact substring container, rewriting (or, with nullptr,
// dropping) the suffix-array section. The checksum is recomputed by the
// writer, so these reach the semantic validation layer.
std::string ReframeCompact(const std::string& blob,
                           const std::function<void(Writer&)>* write_sa) {
  serde::ContainerReader container;
  EXPECT_TRUE(serde::ContainerReader::Open(blob, IndexKind::kSubstring,
                                           &container)
                  .ok());
  serde::ContainerWriter cw(IndexKind::kSubstring,
                            serde::kInterchangeVersion);
  for (const uint32_t tag :
       {serde::kTagOptions, serde::kTagSource, serde::kTagFactors}) {
    Reader section;
    EXPECT_TRUE(container.Section(tag, &section).ok());
    Writer& w = cw.AddSection(tag);
    uint8_t b = 0;
    while (!section.AtEnd()) {
      EXPECT_TRUE(section.GetU8(&b).ok());
      w.PutU8(b);
    }
  }
  if (write_sa != nullptr) {
    (*write_sa)(cw.AddSection(serde::kTagSuffixArray));
  }
  return std::move(cw).Finish();
}

std::vector<int32_t> SaOf(const std::string& blob) {
  serde::ContainerReader container;
  EXPECT_TRUE(serde::ContainerReader::Open(blob, IndexKind::kSubstring,
                                           &container)
                  .ok());
  Reader section;
  EXPECT_TRUE(container.Section(serde::kTagSuffixArray, &section).ok());
  std::vector<int32_t> sa;
  EXPECT_TRUE(section.GetVector(&sa).ok());
  return sa;
}

TEST(SerdeCorruptionTest, CompactBlobCarriesSuffixArraySection) {
  const std::string blob = CompactBlob();
  serde::ContainerReader container;
  ASSERT_TRUE(serde::ContainerReader::Open(blob, IndexKind::kSubstring,
                                           &container)
                  .ok());
  EXPECT_EQ(container.version(), serde::kContainerVersion);
  EXPECT_TRUE(container.Has(serde::kTagSuffixArray));
  const auto loaded = SubstringIndex::Load(blob);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(SubstringIndexTestPeer::SaLoadedFromSection(*loaded));
}

TEST(SerdeCorruptionTest, CompactBlobWithoutSaSectionStillLoads) {
  // The section is optional (absent in version-1 files): Load falls back
  // to SA-IS and must answer identically.
  const std::string blob = CompactBlob(serde::kInterchangeVersion);
  const std::string stripped = ReframeCompact(blob, nullptr);
  const auto with_sa = SubstringIndex::Load(blob);
  const auto without_sa = SubstringIndex::Load(stripped);
  ASSERT_TRUE(with_sa.ok());
  ASSERT_TRUE(without_sa.ok()) << without_sa.status().ToString();
  EXPECT_FALSE(SubstringIndexTestPeer::SaLoadedFromSection(*without_sa));
  Rng rng(78);
  for (int q = 0; q < 40; ++q) {
    const std::string pattern =
        test::RandomPattern(3, 1 + rng.Uniform(6), rng.Next());
    std::vector<Match> a, b;
    ASSERT_TRUE(with_sa->Query(pattern, 0.2, &a).ok());
    ASSERT_TRUE(without_sa->Query(pattern, 0.2, &b).ok());
    ASSERT_TRUE(test::SameMatches(a, b, 0.0)) << pattern;
  }
}

TEST(SerdeCorruptionTest, HostileSuffixArraySectionsFail) {
  const std::string blob = CompactBlob(serde::kInterchangeVersion);
  const std::vector<int32_t> sa = SaOf(blob);
  ASSERT_GT(sa.size(), 2u);

  struct Variant {
    const char* name;
    std::function<void(std::vector<int32_t>&)> mutate;
  };
  const std::vector<Variant> variants = {
      {"wrong length (short)",
       [](std::vector<int32_t>& v) { v.pop_back(); }},
      {"wrong length (long)",
       [](std::vector<int32_t>& v) { v.push_back(0); }},
      {"empty array", [](std::vector<int32_t>& v) { v.clear(); }},
      {"entry out of range (high)",
       [](std::vector<int32_t>& v) {
         v[1] = static_cast<int32_t>(v.size());
       }},
      {"entry out of range (negative)",
       [](std::vector<int32_t>& v) { v[1] = -1; }},
      {"entry INT32_MIN",
       [](std::vector<int32_t>& v) {
         v[0] = std::numeric_limits<int32_t>::min();
       }},
      {"duplicate entry (not a permutation)",
       [](std::vector<int32_t>& v) { v[2] = v[0]; }},
  };
  for (const Variant& v : variants) {
    std::vector<int32_t> mutated = sa;
    v.mutate(mutated);
    const std::function<void(Writer&)> write = [&mutated](Writer& w) {
      w.PutVector(mutated);
    };
    EXPECT_TRUE(SubstringIndex::Load(ReframeCompact(blob, &write))
                    .status()
                    .IsCorruption())
        << v.name;
  }
  {
    // Trailing bytes after the vector payload.
    const std::function<void(Writer&)> write = [&sa](Writer& w) {
      w.PutVector(sa);
      w.PutU8(0xAB);
    };
    EXPECT_TRUE(SubstringIndex::Load(ReframeCompact(blob, &write))
                    .status()
                    .IsCorruption());
  }
  {
    // A declared element count far past the section payload.
    const std::function<void(Writer&)> write = [](Writer& w) {
      w.PutU64(uint64_t{1} << 60);
    };
    EXPECT_TRUE(SubstringIndex::Load(ReframeCompact(blob, &write))
                    .status()
                    .IsCorruption());
  }
}

// ---- v3 (aligned zero-copy) hostile framing and derived sections ----

// One section of a raw v3 container: 16-byte header (tag, reserved, length)
// followed by the payload, zero-padded to the next 8-byte boundary.
struct V3Section {
  uint32_t tag = 0;
  size_t header_offset = 0;
  size_t payload_offset = 0;
  uint64_t length = 0;
};

std::vector<V3Section> V3Sections(const std::string& blob) {
  std::vector<V3Section> sections;
  uint32_t count = 0;
  std::memcpy(&count, &blob[kSectionCountOffset], 4);
  size_t off = 16;
  for (uint32_t i = 0; i < count; ++i) {
    V3Section s;
    s.header_offset = off;
    std::memcpy(&s.tag, &blob[off], 4);
    std::memcpy(&s.length, &blob[off + 8], 8);
    s.payload_offset = off + 16;
    off = (s.payload_offset + s.length + 7) & ~size_t{7};
    EXPECT_LE(off, blob.size() - 8);
    sections.push_back(s);
  }
  return sections;
}

const V3Section& FindSection(const std::vector<V3Section>& sections,
                             uint32_t tag) {
  for (const V3Section& s : sections) {
    if (s.tag == tag) return s;
  }
  ADD_FAILURE() << "section not found";
  static const V3Section missing;
  return missing;
}

TEST(SerdeCorruptionTest, V3NonzeroReservedWordFails) {
  const std::string blob = CompactBlob();
  for (const V3Section& s : V3Sections(blob)) {
    const std::string mutated =
        PatchU32(blob, s.header_offset + 4, 0xDEADBEEF);
    EXPECT_TRUE(SubstringIndex::Load(mutated).status().IsCorruption())
        << "tag " << std::hex << s.tag;
  }
}

TEST(SerdeCorruptionTest, V3CompactCarriesDerivedSections) {
  const std::string blob = CompactBlob();
  const auto sections = V3Sections(blob);
  for (const uint32_t tag : {serde::kTagText, serde::kTagMaps,
                             serde::kTagSuffixArray, serde::kTagDerived,
                             serde::kTagActive, serde::kTagFmIndex,
                             serde::kTagRmqBlocks}) {
    EXPECT_NE(FindSection(sections, tag).payload_offset, 0u);
  }
  // The structural alignment invariant every zero-copy view relies on.
  for (const V3Section& s : sections) {
    EXPECT_EQ(s.payload_offset % 8, 0u) << "tag " << std::hex << s.tag;
  }
  const auto loaded = SubstringIndex::Load(blob);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(SubstringIndexTestPeer::DerivedLoadedFromSections(*loaded));
}

// Drops one section from a v3 compact container (checksum refreshed by the
// writer), exercising the incomplete-derived-group validation.
std::string DropV3Section(const std::string& blob, uint32_t dropped) {
  serde::ContainerReader container;
  EXPECT_TRUE(serde::ContainerReader::Open(blob, IndexKind::kSubstring,
                                           &container)
                  .ok());
  serde::ContainerWriter cw(IndexKind::kSubstring);
  for (const uint32_t tag :
       {serde::kTagOptions, serde::kTagSource, serde::kTagText,
        serde::kTagMaps, serde::kTagSuffixArray, serde::kTagDerived,
        serde::kTagActive, serde::kTagFmIndex, serde::kTagRmqBlocks}) {
    if (tag == dropped || !container.Has(tag)) continue;
    Reader section;
    EXPECT_TRUE(container.Section(tag, &section).ok());
    Writer& w = cw.AddSection(tag);
    uint8_t b = 0;
    while (!section.AtEnd()) {
      EXPECT_TRUE(section.GetU8(&b).ok());
      w.PutU8(b);
    }
  }
  return std::move(cw).Finish();
}

TEST(SerdeCorruptionTest, V3IncompleteDerivedGroupFails) {
  const std::string blob = CompactBlob();
  // DERV without ACTV/FMIX (and vice versa) must be rejected up front, not
  // half-initialized.
  for (const uint32_t tag :
       {serde::kTagActive, serde::kTagFmIndex, serde::kTagSuffixArray}) {
    const Status st = SubstringIndex::Load(DropV3Section(blob, tag)).status();
    EXPECT_TRUE(st.IsCorruption()) << std::hex << tag << " " << st.ToString();
  }
  // Dropping the whole derived group (but keeping the SA) must *load*: the
  // sections are an optimization, and the fallback rebuild still works.
  std::string stripped = blob;
  for (const uint32_t tag : {serde::kTagDerived, serde::kTagActive,
                             serde::kTagFmIndex, serde::kTagRmqBlocks}) {
    stripped = DropV3Section(stripped, tag);
  }
  const auto rebuilt = SubstringIndex::Load(stripped);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_FALSE(SubstringIndexTestPeer::DerivedLoadedFromSections(*rebuilt));
}

TEST(SerdeCorruptionTest, V3HostilePrefixSumsFail) {
  const std::string blob = CompactBlob();
  const V3Section derv = FindSection(V3Sections(blob), serde::kTagDerived);
  ASSERT_NE(derv.payload_offset, 0u);
  // DERV payload: u64 count, count doubles (prefix sums C), u64 count,
  // count int32s (remaining-run lengths). C[0] must be exactly 0.
  const double bad_c0 = 0.5;
  EXPECT_TRUE(SubstringIndex::Load(
                  PatchWithValidChecksum(blob, derv.payload_offset + 8,
                                         &bad_c0, sizeof(bad_c0)))
                  .status()
                  .IsCorruption());
  // A remaining-run entry that breaks the exact recurrence
  // rem[q] = 0 (sentinel) | rem[q+1]+1: flip the first entry's value.
  uint64_t c_count = 0;
  std::memcpy(&c_count, &blob[derv.payload_offset], 8);
  const size_t rem_payload = derv.payload_offset + 8 + 8 * c_count;
  int32_t rem0 = 0;
  std::memcpy(&rem0, &blob[rem_payload + 8], 4);
  const int32_t bad_rem = rem0 + 1;
  EXPECT_TRUE(SubstringIndex::Load(
                  PatchWithValidChecksum(blob, rem_payload + 8, &bad_rem,
                                         sizeof(bad_rem)))
                  .status()
                  .IsCorruption());
}

TEST(SerdeCorruptionTest, V3HostileActiveDepthCountFails) {
  const std::string blob = CompactBlob();
  const V3Section actv = FindSection(V3Sections(blob), serde::kTagActive);
  ASSERT_NE(actv.payload_offset, 0u);
  uint32_t depths = 0;
  std::memcpy(&depths, &blob[actv.payload_offset], 4);
  for (const uint32_t forged :
       {depths + 1, depths - 1, uint32_t{0}, uint32_t{0x7FFFFFFF}}) {
    EXPECT_TRUE(SubstringIndex::Load(
                    PatchU32(blob, actv.payload_offset, forged))
                    .status()
                    .IsCorruption())
        << forged;
  }
}

TEST(SerdeCorruptionTest, V3HostileRmqCountsFail) {
  const std::string blob = CompactBlob();
  const V3Section rmqb = FindSection(V3Sections(blob), serde::kTagRmqBlocks);
  ASSERT_NE(rmqb.payload_offset, 0u);
  uint32_t nshort = 0;
  std::memcpy(&nshort, &blob[rmqb.payload_offset], 4);
  for (const uint32_t forged : {nshort + 1, uint32_t{0}}) {
    EXPECT_TRUE(SubstringIndex::Load(
                    PatchU32(blob, rmqb.payload_offset, forged))
                    .status()
                    .IsCorruption())
        << forged;
  }
}

TEST(SerdeCorruptionTest, V3SectionLengthForgeryFails) {
  // Shrinking or growing a section length de-aligns everything after it;
  // the framing walk must fail cleanly (and the checksum is refreshed, so
  // this reaches the framing validation, not the checksum).
  const std::string blob = CompactBlob();
  for (const V3Section& s : V3Sections(blob)) {
    for (const int64_t delta : {int64_t{-1}, int64_t{1}, int64_t{9}}) {
      if (s.length == 0 && delta < 0) continue;
      const std::string mutated = PatchU64(
          blob, s.header_offset + 8,
          static_cast<uint64_t>(static_cast<int64_t>(s.length) + delta));
      EXPECT_FALSE(SubstringIndex::Load(mutated).ok())
          << "tag " << std::hex << s.tag << " delta " << delta;
    }
  }
}

// The v3 sweeps above target the substring container; the generic
// truncation / bit-flip / random-corruption sweeps at the top of this file
// already run over every kind's default-version (v3) blob.

TEST(SerdeCorruptionTest, V3ShardedNestedBlobsStayAligned) {
  ShardedIndexOptions options;
  options.index.transform.tau_min = 0.1;
  options.index.compact = true;
  options.num_shards = 3;
  options.overlap = 4;
  const auto index = ShardedIndex::Build(
      test::RandomUncertain({.length = 40, .alphabet = 3, .theta = 0.5,
                             .seed = 81}),
      options);
  ASSERT_TRUE(index.ok());
  std::string blob;
  ASSERT_TRUE(index->Save(&blob).ok());
  // Nested shard containers must themselves start 8-byte aligned in the
  // outer file, or the shards' zero-copy loads would silently copy.
  const auto loaded = ShardedIndex::Load(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (int32_t k = 0; k < loaded->num_shards(); ++k) {
    EXPECT_TRUE(SubstringIndexTestPeer::DerivedLoadedFromSections(
        loaded->shard(k)))
        << "shard " << k;
  }
}

}  // namespace
}  // namespace pti
