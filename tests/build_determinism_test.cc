// The parallel-construction determinism contract: a T-thread build must
// serialize to bit-identical container bytes (v2 interchange AND v3 native)
// as the 1-thread build, for tree and compact modes, across the same input
// family serialization_test.cc round-trips. Plus the Φ/PLCP-vs-Kasai LCP
// differential sweep backing the parallel LCP stage.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/brute_force.h"
#include "core/serde.h"
#include "core/substring_index.h"
#include "engine/sharded_index.h"
#include "suffix/lcp.h"
#include "suffix/sais.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace pti {
namespace {

enum class InputCase {
  kSmall,
  kCorrelated,
  kEmpty,
  kEmptyFactors,
  kFull,
};

constexpr InputCase kAllCases[] = {InputCase::kSmall, InputCase::kCorrelated,
                                   InputCase::kEmpty, InputCase::kEmptyFactors,
                                   InputCase::kFull};

const char* CaseName(InputCase c) {
  switch (c) {
    case InputCase::kSmall:
      return "Small";
    case InputCase::kCorrelated:
      return "Correlated";
    case InputCase::kEmpty:
      return "Empty";
    case InputCase::kEmptyFactors:
      return "EmptyFactors";
    case InputCase::kFull:
      return "Full";
  }
  return "?";
}

UncertainString AddRule(UncertainString s) {
  EXPECT_TRUE(s.AddCorrelation({.pos = 5,
                                .ch = s.options(5)[0].ch,
                                .dep_pos = 2,
                                .dep_ch = s.options(2)[0].ch,
                                .prob_if_present = 0.75,
                                .prob_if_absent = 0.25})
                  .ok());
  return s;
}

UncertainString HalfHalfString(int64_t length) {
  UncertainString s;
  for (int64_t i = 0; i < length; ++i) {
    s.AddPosition({{static_cast<uint8_t>('a' + i % 2), 0.5},
                   {static_cast<uint8_t>('b' + i % 2), 0.5}});
  }
  return s;
}

UncertainString GeneralString(InputCase c, uint64_t seed) {
  switch (c) {
    case InputCase::kSmall:
      return test::RandomUncertain({.length = 45, .alphabet = 3,
                                    .theta = 0.5, .seed = seed});
    case InputCase::kCorrelated:
      return AddRule(test::RandomUncertain(
          {.length = 45, .alphabet = 3, .theta = 0.5, .seed = seed}));
    case InputCase::kEmpty:
      return UncertainString();
    case InputCase::kEmptyFactors:
      return HalfHalfString(20);
    case InputCase::kFull:
      return test::RandomUncertain({.length = 260, .alphabet = 4,
                                    .theta = 0.6, .max_choices = 4,
                                    .seed = seed});
  }
  return UncertainString();
}

double CaseTauMin(InputCase c) {
  return c == InputCase::kEmptyFactors ? 0.75 : 0.1;
}

std::string SaveAt(const SubstringIndex& index, uint32_t version) {
  std::string blob;
  EXPECT_TRUE(index.Save(&blob, version).ok());
  return blob;
}

std::string SaveAt(const ShardedIndex& index, uint32_t version) {
  std::string blob;
  EXPECT_TRUE(index.Save(&blob, version).ok());
  return blob;
}

// T in {1, 2, 8}: serial reference, the smallest real pool, and a pool wider
// than any stage's natural task count (forces the remainder-handling paths).
constexpr int32_t kThreadCounts[] = {1, 2, 8};

TEST(BuildDeterminismTest, SaveBytesIdenticalAcrossThreadCounts) {
  for (const InputCase c : kAllCases) {
    const UncertainString s = GeneralString(c, 2024);
    for (const bool compact : {false, true}) {
      IndexOptions options;
      options.transform.tau_min = CaseTauMin(c);
      options.compact = compact;
      std::string reference_v2;
      std::string reference_v3;
      for (const int32_t threads : kThreadCounts) {
        SubstringIndex::BuildOptions build;
        build.threads = threads;
        auto index = SubstringIndex::Build(s, options, build);
        ASSERT_TRUE(index.ok())
            << CaseName(c) << " compact=" << compact << " T=" << threads
            << ": " << index.status().ToString();
        const std::string v2 = SaveAt(*index, serde::kInterchangeVersion);
        const std::string v3 = SaveAt(*index, serde::kContainerVersion);
        if (threads == 1) {
          reference_v2 = v2;
          reference_v3 = v3;
          continue;
        }
        EXPECT_EQ(v2, reference_v2)
            << CaseName(c) << " compact=" << compact << " T=" << threads
            << ": v2 bytes diverge from the serial build";
        EXPECT_EQ(v3, reference_v3)
            << CaseName(c) << " compact=" << compact << " T=" << threads
            << ": v3 bytes diverge from the serial build";
      }
    }
  }
}

TEST(BuildDeterminismTest, ShardedSaveBytesIdenticalAcrossThreadCounts) {
  const UncertainString s = test::RandomUncertain(
      {.length = 300, .alphabet = 3, .theta = 0.5, .seed = 77});
  for (const bool compact : {false, true}) {
    std::string reference_v2;
    std::string reference_v3;
    for (const int32_t threads : kThreadCounts) {
      ShardedIndexOptions options;
      options.index.transform.tau_min = 0.1;
      options.index.compact = compact;
      options.num_shards = 3;
      options.num_threads = threads;
      auto index = ShardedIndex::Build(s, options);
      ASSERT_TRUE(index.ok()) << index.status().ToString();
      const std::string v2 = SaveAt(*index, serde::kInterchangeVersion);
      const std::string v3 = SaveAt(*index, serde::kContainerVersion);
      if (threads == 1) {
        reference_v2 = v2;
        reference_v3 = v3;
        continue;
      }
      EXPECT_EQ(v2, reference_v2) << "compact=" << compact << " T=" << threads;
      EXPECT_EQ(v3, reference_v3) << "compact=" << compact << " T=" << threads;
    }
  }
}

TEST(BuildDeterminismTest, ParallelV2LoadRebuildsIdenticalBytes) {
  // The v2 load path re-derives LCP/FM/RMQ; with a thread budget it must
  // land on the same structures the serial rebuild does.
  const UncertainString s = test::RandomUncertain(
      {.length = 120, .alphabet = 3, .theta = 0.5, .seed = 9});
  for (const bool compact : {false, true}) {
    IndexOptions options;
    options.transform.tau_min = 0.1;
    options.compact = compact;
    auto built = SubstringIndex::Build(s, options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    const std::string v2 = SaveAt(*built, serde::kInterchangeVersion);
    for (const int32_t threads : kThreadCounts) {
      SubstringIndex::BuildOptions build;
      build.threads = threads;
      auto loaded = SubstringIndex::Load(v2, nullptr, build);
      ASSERT_TRUE(loaded.ok())
          << "compact=" << compact << " T=" << threads << ": "
          << loaded.status().ToString();
      EXPECT_EQ(SaveAt(*loaded, serde::kInterchangeVersion), v2)
          << "compact=" << compact << " T=" << threads;
    }
  }
}

TEST(BuildDeterminismTest, ParallelBuildAnswersMatchBruteForce) {
  const UncertainString s = test::RandomUncertain(
      {.length = 90, .alphabet = 3, .theta = 0.5, .seed = 41});
  IndexOptions options;
  options.transform.tau_min = 0.1;
  options.compact = true;
  SubstringIndex::BuildOptions build;
  build.threads = 8;
  auto index = SubstringIndex::Build(s, options, build);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  for (int q = 0; q < 40; ++q) {
    const std::string pattern =
        q % 2 == 0 ? test::RandomPattern(3, 1 + q % 6, 100 + q)
                   : test::PatternFromString(s, q % 60, 1 + q % 6, 100 + q);
    const double tau = 0.1 + 0.2 * (q % 4);
    std::vector<Match> got;
    ASSERT_TRUE(index->Query(pattern, tau, &got).ok());
    const std::vector<Match> want = BruteForceSearch(s, pattern, tau);
    EXPECT_TRUE(test::SameMatches(got, want))
        << "pattern=" << pattern << " tau=" << tau << "\n got: "
        << test::MatchesToString(got)
        << "\nwant: " << test::MatchesToString(want);
  }
}

TEST(BuildDeterminismTest, TimingsAccumulateAcrossStages) {
  const UncertainString s = test::RandomUncertain(
      {.length = 260, .alphabet = 4, .theta = 0.6, .max_choices = 4,
       .seed = 7});
  IndexOptions options;
  options.transform.tau_min = 0.1;
  options.compact = true;
  BuildTimings timings;
  SubstringIndex::BuildOptions build;
  build.threads = 2;
  build.timings = &timings;
  auto index = SubstringIndex::Build(s, options, build);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_GE(timings.transform_ms, 0.0);
  EXPECT_GE(timings.sa_ms, 0.0);
  EXPECT_GE(timings.lcp_ms, 0.0);
  EXPECT_GE(timings.fm_ms, 0.0);
  EXPECT_GE(timings.derived_ms, 0.0);
  EXPECT_GE(timings.rmq_ms, 0.0);
  const double total = timings.transform_ms + timings.sa_ms + timings.lcp_ms +
                       timings.fm_ms + timings.derived_ms + timings.rmq_ms;
  EXPECT_GT(total, 0.0);
}

TEST(BuildDeterminismTest, ShardedTimingsSumOverShards) {
  const UncertainString s = test::RandomUncertain(
      {.length = 300, .alphabet = 3, .theta = 0.5, .seed = 55});
  BuildTimings timings;
  ShardedIndexOptions options;
  options.index.transform.tau_min = 0.1;
  options.index.compact = true;
  options.num_shards = 3;
  options.num_threads = 4;
  options.build_timings = &timings;
  auto index = ShardedIndex::Build(s, options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  const double total = timings.transform_ms + timings.sa_ms + timings.lcp_ms +
                       timings.fm_ms + timings.derived_ms + timings.rmq_ms;
  EXPECT_GT(total, 0.0);
}

// ---------------------------------------------------------------------------
// Φ/PLCP vs Kasai.

std::vector<int32_t> RandomText(size_t n, int32_t sigma, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> text(n);
  for (size_t i = 0; i < n; ++i) {
    text[i] = static_cast<int32_t>(rng.Uniform(sigma));
  }
  return text;
}

void ExpectSameLcp(const std::vector<int32_t>& text, ThreadPool* pool,
                   const std::string& label) {
  const Span<const int32_t> t(text.data(), text.size());
  const std::vector<int32_t> sa = BuildSuffixArray(t, 256);
  const Span<const int32_t> sa_span(sa.data(), sa.size());
  const std::vector<int32_t> kasai = BuildLcpArray(t, sa_span);
  const std::vector<int32_t> plcp = BuildLcpArrayParallel(t, sa_span, pool);
  EXPECT_EQ(plcp, kasai) << label;
}

TEST(PlcpLcpTest, MatchesKasaiOnRandomTexts) {
  ThreadPool pool(4);
  for (const size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{17},
                         size_t{100}, size_t{1000}}) {
    for (const int32_t sigma : {1, 2, 4, 16}) {
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        const std::vector<int32_t> text = RandomText(n, sigma, seed * 31 + n);
        ExpectSameLcp(text, &pool,
                      "n=" + std::to_string(n) +
                          " sigma=" + std::to_string(sigma) +
                          " seed=" + std::to_string(seed));
      }
    }
  }
}

TEST(PlcpLcpTest, MatchesKasaiAcrossChunkBoundaries) {
  // Long repetitive text: n spans several 1<<15 chunks and the long runs
  // make PLCP values straddle chunk boundaries, where each chunk's h=0
  // restart must still land on the same (unique) LCP array.
  ThreadPool pool(8);
  std::vector<int32_t> text = RandomText(100000, 2, 1234);
  for (size_t i = 30000; i < 70000; ++i) text[i] = 0;  // a 40k-run
  ExpectSameLcp(text, &pool, "chunked repetitive");
}

TEST(PlcpLcpTest, NullAndSerialPoolFallBackToKasai) {
  const std::vector<int32_t> text = RandomText(500, 3, 99);
  ExpectSameLcp(text, nullptr, "null pool");
  ThreadPool serial(1);
  ExpectSameLcp(text, &serial, "serial pool");
}

}  // namespace
}  // namespace pti
