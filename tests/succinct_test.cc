// Tests for the succinct substrate: BitVector rank/select, WaveletTree
// access/rank, and FmIndex backward search vs the suffix tree.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "succinct/bitvector.h"
#include "succinct/fm_index.h"
#include "succinct/wavelet_tree.h"
#include "suffix/suffix_tree.h"
#include "suffix/text.h"
#include "util/rng.h"

namespace pti {
namespace {

// ---- BitVector ----

BitVector MakeBv(const std::vector<bool>& bits) {
  BitVector bv(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) bv.Set(i);
  }
  bv.Finish();
  return bv;
}

TEST(BitVectorTest, RankMatchesNaive) {
  Rng rng(1);
  for (const size_t n : {size_t{1}, size_t{63}, size_t{64}, size_t{65},
                         size_t{511}, size_t{512}, size_t{513}, size_t{5000}}) {
    std::vector<bool> bits(n);
    for (size_t i = 0; i < n; ++i) bits[i] = rng.Bernoulli(0.4);
    const BitVector bv = MakeBv(bits);
    size_t ones = 0;
    for (size_t i = 0; i <= n; ++i) {
      ASSERT_EQ(bv.Rank1(i), ones) << "n=" << n << " i=" << i;
      ASSERT_EQ(bv.Rank0(i), i - ones);
      if (i < n && bits[i]) ++ones;
    }
    ASSERT_EQ(bv.ones(), ones);
  }
}

TEST(BitVectorTest, SelectMatchesNaive) {
  Rng rng(2);
  for (const size_t n : {size_t{70}, size_t{600}, size_t{4096}}) {
    std::vector<bool> bits(n);
    for (size_t i = 0; i < n; ++i) bits[i] = rng.Bernoulli(0.3);
    const BitVector bv = MakeBv(bits);
    size_t k = 0;
    for (size_t i = 0; i < n; ++i) {
      if (bits[i]) {
        ASSERT_EQ(bv.Select1(k), i) << "n=" << n << " k=" << k;
        ++k;
      }
    }
  }
}

TEST(BitVectorTest, AllZerosAllOnes) {
  const BitVector zeros = MakeBv(std::vector<bool>(100, false));
  EXPECT_EQ(zeros.Rank1(100), 0u);
  const BitVector ones = MakeBv(std::vector<bool>(100, true));
  EXPECT_EQ(ones.Rank1(100), 100u);
  EXPECT_EQ(ones.Select1(99), 99u);
}

// ---- WaveletTree ----

void CheckWavelet(const std::vector<int32_t>& data, int32_t sigma) {
  const WaveletTree wt(data, sigma);
  // Access.
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(wt.Access(i), data[i]) << "i=" << i;
  }
  // Rank for every symbol at every prefix.
  std::map<int32_t, size_t> counts;
  for (size_t i = 0; i <= data.size(); ++i) {
    for (int32_t c = 0; c < sigma; ++c) {
      ASSERT_EQ(wt.Rank(c, i), counts[c]) << "c=" << c << " i=" << i;
    }
    if (i < data.size()) counts[data[i]]++;
  }
}

TEST(WaveletTreeTest, SmallAlphabets) {
  CheckWavelet({0, 1, 0, 1, 1, 0}, 2);
  CheckWavelet({2, 0, 1, 2, 1, 0, 2, 2}, 3);
  CheckWavelet({0}, 1);
  CheckWavelet({}, 4);
}

TEST(WaveletTreeTest, RandomSweep) {
  Rng rng(3);
  for (const int32_t sigma : {2, 5, 16, 100, 1000}) {
    std::vector<int32_t> data(300);
    for (auto& x : data) x = static_cast<int32_t>(rng.Uniform(sigma));
    CheckWavelet(data, sigma);
  }
}

TEST(WaveletTreeTest, NonPowerOfTwoAlphabet) {
  std::vector<int32_t> data;
  for (int i = 0; i < 200; ++i) data.push_back(i % 7);
  CheckWavelet(data, 7);
}

TEST(WaveletTreeTest, LargeRandomRankSpotChecks) {
  Rng rng(5);
  const int32_t sigma = 300;
  std::vector<int32_t> data(20000);
  for (auto& x : data) x = static_cast<int32_t>(rng.Uniform(sigma));
  const WaveletTree wt(data, sigma);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t i = rng.Uniform(data.size() + 1);
    const int32_t c = static_cast<int32_t>(rng.Uniform(sigma));
    size_t want = 0;
    for (size_t k = 0; k < i; ++k) {
      if (data[k] == c) ++want;
    }
    ASSERT_EQ(wt.Rank(c, i), want);
    if (i < data.size()) {
      ASSERT_EQ(wt.Access(i), data[i]);
    }
  }
}

// ---- FmIndex ----

void CheckFmAgainstTree(const Text& text) {
  const SuffixTree st = SuffixTree::Build(&text.chars(), text.alphabet_size());
  const FmIndex fm(text.chars(), st.sa(), text.alphabet_size());
  Rng rng(7);
  // Existing substrings of every length, plus random (often absent) ones.
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<int32_t> pattern;
    const size_t len = 1 + rng.Uniform(8);
    if (trial % 2 == 0 && text.size() > len) {
      size_t start = rng.Uniform(text.size() - len);
      for (size_t k = 0; k < len; ++k) {
        pattern.push_back(text.chars()[start + k]);
      }
    } else {
      for (size_t k = 0; k < len; ++k) {
        pattern.push_back(static_cast<int32_t>('a' + rng.Uniform(3)));
      }
    }
    const auto tree_range = st.FindRange(pattern);
    const auto fm_range = fm.Range(pattern);
    ASSERT_EQ(tree_range.has_value(), fm_range.has_value());
    if (tree_range.has_value()) {
      ASSERT_EQ(fm_range->first, tree_range->begin);
      ASSERT_EQ(fm_range->second, tree_range->end);
    }
  }
  // Empty pattern: full range.
  const auto all = fm.Range({});
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->first, 0);
  EXPECT_EQ(all->second, static_cast<int32_t>(text.size()));
}

TEST(FmIndexTest, SingleMemberText) {
  Text t;
  t.AppendMember(std::string("abracadabraabracadabra"));
  CheckFmAgainstTree(t);
}

TEST(FmIndexTest, MultiMemberTextWithSentinels) {
  Text t;
  t.AppendMember(std::string("abab"));
  t.AppendMember(std::string("babaab"));
  t.AppendMember(std::string("a"));
  t.AppendMember(std::string("bbbb"));
  CheckFmAgainstTree(t);
}

TEST(FmIndexTest, RandomTexts) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    Text t;
    const int members = 1 + static_cast<int>(rng.Uniform(5));
    for (int m = 0; m < members; ++m) {
      std::string s;
      const size_t len = 1 + rng.Uniform(60);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('a' + rng.Uniform(2)));
      }
      t.AppendMember(s);
    }
    CheckFmAgainstTree(t);
  }
}

TEST(FmIndexTest, PatternWithForeignSymbolRejected) {
  Text t;
  t.AppendMember(std::string("abc"));
  const SuffixTree st = SuffixTree::Build(&t.chars(), t.alphabet_size());
  const FmIndex fm(t.chars(), st.sa(), t.alphabet_size());
  EXPECT_FALSE(fm.Range({'z'}).has_value());
  EXPECT_FALSE(fm.Range({'a', 'z'}).has_value());
}

TEST(FmIndexTest, MemorySmallerThanTree) {
  Text t;
  std::string s;
  Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    s.push_back(static_cast<char>('a' + rng.Uniform(4)));
  }
  t.AppendMember(s);
  const SuffixTree st = SuffixTree::Build(&t.chars(), t.alphabet_size());
  const FmIndex fm(t.chars(), st.sa(), t.alphabet_size());
  // The whole point of compact mode: the locator is far smaller than the
  // tree's node arrays.
  EXPECT_LT(fm.MemoryUsage() * 5, st.MemoryUsage());
}

}  // namespace
}  // namespace pti
