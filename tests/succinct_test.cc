// Tests for the succinct substrate: BitVector rank/select, WaveletTree
// access/rank, and FmIndex backward search vs the suffix tree.

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "succinct/bitvector.h"
#include "succinct/fm_index.h"
#include "succinct/wavelet_tree.h"
#include "suffix/suffix_tree.h"
#include "suffix/text.h"
#include "util/rng.h"

namespace pti {
namespace {

// ---- BitVector ----

BitVector MakeBv(const std::vector<bool>& bits) {
  BitVector bv(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) bv.Set(i);
  }
  bv.Finish();
  return bv;
}

TEST(BitVectorTest, RankMatchesNaive) {
  Rng rng(1);
  for (const size_t n : {size_t{1}, size_t{63}, size_t{64}, size_t{65},
                         size_t{511}, size_t{512}, size_t{513}, size_t{5000}}) {
    std::vector<bool> bits(n);
    for (size_t i = 0; i < n; ++i) bits[i] = rng.Bernoulli(0.4);
    const BitVector bv = MakeBv(bits);
    size_t ones = 0;
    for (size_t i = 0; i <= n; ++i) {
      ASSERT_EQ(bv.Rank1(i), ones) << "n=" << n << " i=" << i;
      ASSERT_EQ(bv.Rank0(i), i - ones);
      if (i < n && bits[i]) ++ones;
    }
    ASSERT_EQ(bv.ones(), ones);
  }
}

TEST(BitVectorTest, SelectMatchesNaive) {
  Rng rng(2);
  for (const size_t n : {size_t{70}, size_t{600}, size_t{4096}}) {
    std::vector<bool> bits(n);
    for (size_t i = 0; i < n; ++i) bits[i] = rng.Bernoulli(0.3);
    const BitVector bv = MakeBv(bits);
    size_t k = 0;
    for (size_t i = 0; i < n; ++i) {
      if (bits[i]) {
        ASSERT_EQ(bv.Select1(k), i) << "n=" << n << " k=" << k;
        ++k;
      }
    }
  }
}

TEST(BitVectorTest, AllZerosAllOnes) {
  const BitVector zeros = MakeBv(std::vector<bool>(100, false));
  EXPECT_EQ(zeros.Rank1(100), 0u);
  const BitVector ones = MakeBv(std::vector<bool>(100, true));
  EXPECT_EQ(ones.Rank1(100), 100u);
  EXPECT_EQ(ones.Select1(99), 99u);
}

TEST(BitVectorTest, SelectOutOfRangeReturnsSize) {
  // k >= ones() used to underflow in release builds (the assert compiled
  // out); it must answer size() instead.
  const BitVector zeros = MakeBv(std::vector<bool>(100, false));
  EXPECT_EQ(zeros.Select1(0), 100u);
  EXPECT_EQ(zeros.Select1(7), 100u);
  const BitVector some = MakeBv({true, false, true, false});
  EXPECT_EQ(some.Select1(1), 2u);
  EXPECT_EQ(some.Select1(2), 4u);
  EXPECT_EQ(some.Select1(1000000), 4u);
  const BitVector empty = MakeBv({});
  EXPECT_EQ(empty.Select1(0), 0u);
}

TEST(BitVectorTest, SelectAcrossSampleBoundaries) {
  // Densities chosen so consecutive 512-one samples land several
  // superblocks apart (sparse) or within one (dense).
  Rng rng(21);
  for (const double density : {0.02, 0.5, 0.97}) {
    const size_t n = 200000;
    std::vector<bool> bits(n);
    for (size_t i = 0; i < n; ++i) bits[i] = rng.Bernoulli(density);
    const BitVector bv = MakeBv(bits);
    std::vector<size_t> positions;
    for (size_t i = 0; i < n; ++i) {
      if (bits[i]) positions.push_back(i);
    }
    ASSERT_EQ(bv.ones(), positions.size());
    for (size_t k = 0; k < positions.size();
         k += 1 + k / 64) {  // dense near 0, sparser later
      ASSERT_EQ(bv.Select1(k), positions[k]) << "density=" << density;
    }
    if (!positions.empty()) {
      ASSERT_EQ(bv.Select1(positions.size() - 1), positions.back());
    }
    ASSERT_EQ(bv.Select1(positions.size()), n);
  }
}

TEST(BitVectorTest, RankAtLargeScaleMatchesSampledNaive) {
  Rng rng(22);
  const size_t n = 300000;
  std::vector<bool> bits(n);
  for (size_t i = 0; i < n; ++i) bits[i] = rng.Bernoulli(0.37);
  const BitVector bv = MakeBv(bits);
  std::vector<size_t> prefix(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + (bits[i] ? 1 : 0);
  }
  for (int trial = 0; trial < 20000; ++trial) {
    const size_t i = rng.Uniform(n + 1);
    ASSERT_EQ(bv.Rank1(i), prefix[i]);
  }
}

// ---- WaveletTree ----

void CheckWavelet(const std::vector<int32_t>& data, int32_t sigma) {
  const WaveletTree wt(data, sigma);
  // Access.
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(wt.Access(i), data[i]) << "i=" << i;
  }
  // Rank for every symbol at every prefix.
  std::map<int32_t, size_t> counts;
  for (size_t i = 0; i <= data.size(); ++i) {
    for (int32_t c = 0; c < sigma; ++c) {
      ASSERT_EQ(wt.Rank(c, i), counts[c]) << "c=" << c << " i=" << i;
    }
    if (i < data.size()) counts[data[i]]++;
  }
}

TEST(WaveletTreeTest, SmallAlphabets) {
  CheckWavelet({0, 1, 0, 1, 1, 0}, 2);
  CheckWavelet({2, 0, 1, 2, 1, 0, 2, 2}, 3);
  CheckWavelet({0}, 1);
  CheckWavelet({}, 4);
}

TEST(WaveletTreeTest, RandomSweep) {
  Rng rng(3);
  for (const int32_t sigma : {2, 5, 16, 100, 1000}) {
    std::vector<int32_t> data(300);
    for (auto& x : data) x = static_cast<int32_t>(rng.Uniform(sigma));
    CheckWavelet(data, sigma);
  }
}

TEST(WaveletTreeTest, NonPowerOfTwoAlphabet) {
  std::vector<int32_t> data;
  for (int i = 0; i < 200; ++i) data.push_back(i % 7);
  CheckWavelet(data, 7);
}

TEST(WaveletTreeTest, LargeRandomRankSpotChecks) {
  Rng rng(5);
  const int32_t sigma = 300;
  std::vector<int32_t> data(20000);
  for (auto& x : data) x = static_cast<int32_t>(rng.Uniform(sigma));
  const WaveletTree wt(data, sigma);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t i = rng.Uniform(data.size() + 1);
    const int32_t c = static_cast<int32_t>(rng.Uniform(sigma));
    size_t want = 0;
    for (size_t k = 0; k < i; ++k) {
      if (data[k] == c) ++want;
    }
    ASSERT_EQ(wt.Rank(c, i), want);
    if (i < data.size()) {
      ASSERT_EQ(wt.Access(i), data[i]);
    }
  }
}

TEST(WaveletTreeTest, OutOfAlphabetSymbolsRankZero) {
  // Symbols outside [0, 2^levels) never occur; Rank must say 0 instead of
  // descending a truncated bit path into garbage. The only guard used to
  // live upstream in FmIndex::Range.
  const std::vector<int32_t> data = {2, 0, 1, 2, 1, 0, 2, 2};
  const WaveletTree wt(data, 3);  // levels = 2, symbols in [0, 4)
  for (size_t i = 0; i <= data.size(); ++i) {
    EXPECT_EQ(wt.Rank(4, i), 0u) << i;    // first symbol past 2^levels
    EXPECT_EQ(wt.Rank(100, i), 0u) << i;
    EXPECT_EQ(wt.Rank(-1, i), 0u) << i;   // negative symbols too
    EXPECT_EQ(wt.Rank(std::numeric_limits<int32_t>::min(), i), 0u) << i;
    EXPECT_EQ(wt.Rank(std::numeric_limits<int32_t>::max(), i), 0u) << i;
  }
  // In-alphabet-width but absent symbol 3 (alphabet_size 3 rounds to 4).
  EXPECT_EQ(wt.Rank(3, data.size()), 0u);
  const auto rr = wt.RangeRank(-5, 1, data.size());
  EXPECT_EQ(rr.first, 0u);
  EXPECT_EQ(rr.second, 0u);
}

TEST(WaveletTreeTest, RangeRankMatchesTwoRanks) {
  Rng rng(6);
  for (const int32_t sigma : {2, 7, 30, 300}) {
    std::vector<int32_t> data(5000);
    for (auto& x : data) x = static_cast<int32_t>(rng.Uniform(sigma));
    const WaveletTree wt(data, sigma);
    for (int trial = 0; trial < 3000; ++trial) {
      const size_t i = rng.Uniform(data.size() + 1);
      const size_t j = i + rng.Uniform(data.size() + 1 - i);
      const int32_t c = static_cast<int32_t>(rng.Uniform(sigma + 2)) - 1;
      const auto [ri, rj] = wt.RangeRank(c, i, j);
      ASSERT_EQ(ri, wt.Rank(c, i)) << "sigma=" << sigma << " c=" << c;
      ASSERT_EQ(rj, wt.Rank(c, j)) << "sigma=" << sigma << " c=" << c;
    }
    // Degenerate interval: equal, exact ranks.
    for (int trial = 0; trial < 200; ++trial) {
      const size_t i = rng.Uniform(data.size() + 1);
      const int32_t c = static_cast<int32_t>(rng.Uniform(sigma));
      const auto [ri, rj] = wt.RangeRank(c, i, i);
      ASSERT_EQ(ri, wt.Rank(c, i));
      ASSERT_EQ(rj, ri);
    }
  }
}

// ---- FmIndex ----

void CheckFmAgainstTree(const Text& text) {
  const SuffixTree st = SuffixTree::Build(text.chars(), text.alphabet_size());
  const FmIndex fm(text.chars(), st.sa(), text.alphabet_size());
  Rng rng(7);
  // Existing substrings of every length, plus random (often absent) ones.
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<int32_t> pattern;
    const size_t len = 1 + rng.Uniform(8);
    if (trial % 2 == 0 && text.size() > len) {
      size_t start = rng.Uniform(text.size() - len);
      for (size_t k = 0; k < len; ++k) {
        pattern.push_back(text.chars()[start + k]);
      }
    } else {
      for (size_t k = 0; k < len; ++k) {
        pattern.push_back(static_cast<int32_t>('a' + rng.Uniform(3)));
      }
    }
    const auto tree_range = st.FindRange(pattern);
    const auto fm_range = fm.Range(pattern);
    ASSERT_EQ(tree_range.has_value(), fm_range.has_value());
    if (tree_range.has_value()) {
      ASSERT_EQ(fm_range->first, tree_range->begin);
      ASSERT_EQ(fm_range->second, tree_range->end);
    }
  }
  // Empty pattern: full range.
  const auto all = fm.Range({});
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->first, 0);
  EXPECT_EQ(all->second, static_cast<int32_t>(text.size()));
}

TEST(FmIndexTest, SingleMemberText) {
  Text t;
  t.AppendMember(std::string("abracadabraabracadabra"));
  CheckFmAgainstTree(t);
}

TEST(FmIndexTest, MultiMemberTextWithSentinels) {
  Text t;
  t.AppendMember(std::string("abab"));
  t.AppendMember(std::string("babaab"));
  t.AppendMember(std::string("a"));
  t.AppendMember(std::string("bbbb"));
  CheckFmAgainstTree(t);
}

TEST(FmIndexTest, RandomTexts) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    Text t;
    const int members = 1 + static_cast<int>(rng.Uniform(5));
    for (int m = 0; m < members; ++m) {
      std::string s;
      const size_t len = 1 + rng.Uniform(60);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('a' + rng.Uniform(2)));
      }
      t.AppendMember(s);
    }
    CheckFmAgainstTree(t);
  }
}

TEST(FmIndexTest, PatternWithForeignSymbolRejected) {
  Text t;
  t.AppendMember(std::string("abc"));
  const SuffixTree st = SuffixTree::Build(t.chars(), t.alphabet_size());
  const FmIndex fm(t.chars(), st.sa(), t.alphabet_size());
  EXPECT_FALSE(fm.Range({'z'}).has_value());
  EXPECT_FALSE(fm.Range({'a', 'z'}).has_value());
}

TEST(FmIndexTest, NegativePatternSymbolsRejected) {
  // -1 used to map onto the terminator ($ = 0) and could report a bogus
  // match; any negative symbol must yield "absent", not an occurrence.
  Text t;
  t.AppendMember(std::string("abracadabra"));
  const SuffixTree st = SuffixTree::Build(t.chars(), t.alphabet_size());
  const FmIndex fm(t.chars(), st.sa(), t.alphabet_size());
  EXPECT_FALSE(fm.Range({-1}).has_value());
  EXPECT_FALSE(fm.Range({'a', -1}).has_value());
  EXPECT_FALSE(fm.Range({-1, 'a'}).has_value());
  EXPECT_FALSE(
      fm.Range({std::numeric_limits<int32_t>::min(), 'b'}).has_value());
  EXPECT_FALSE(
      fm.Range({std::numeric_limits<int32_t>::max()}).has_value());
  // The stepwise API enforces the same bounds.
  int64_t sp = 0, ep = static_cast<int64_t>(fm.bwt_size());
  EXPECT_FALSE(fm.ExtendLeft(0, &sp, &ep));   // the terminator itself
  EXPECT_FALSE(fm.ExtendLeft(-1, &sp, &ep));
  EXPECT_FALSE(fm.ExtendLeft(1 << 20, &sp, &ep));
  EXPECT_EQ(sp, 0);  // failed steps leave the range untouched
  EXPECT_EQ(ep, static_cast<int64_t>(fm.bwt_size()));
}

TEST(FmIndexTest, ExtendLeftMatchesRange) {
  Text t;
  t.AppendMember(std::string("abracadabraabracadabra"));
  t.AppendMember(std::string("cadabraabr"));
  const SuffixTree st = SuffixTree::Build(t.chars(), t.alphabet_size());
  const FmIndex fm(t.chars(), st.sa(), t.alphabet_size());
  Rng rng(19);
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<int32_t> pattern;
    const size_t len = 1 + rng.Uniform(7);
    for (size_t k = 0; k < len; ++k) {
      pattern.push_back(static_cast<int32_t>('a' + rng.Uniform(5)));
    }
    // Drive the search one ExtendLeft at a time, right to left.
    int64_t sp = 0, ep = static_cast<int64_t>(fm.bwt_size());
    bool alive = true;
    for (size_t k = pattern.size(); k-- > 0 && alive;) {
      alive = fm.ExtendLeft(int64_t{pattern[k]} + 1, &sp, &ep);
    }
    const auto stepwise =
        alive ? FmIndex::ToSaRange(sp, ep) : std::nullopt;
    const auto oneshot = fm.Range(pattern);
    ASSERT_EQ(stepwise.has_value(), oneshot.has_value());
    if (stepwise.has_value()) {
      ASSERT_EQ(stepwise->first, oneshot->first);
      ASSERT_EQ(stepwise->second, oneshot->second);
    }
  }
  // Resuming from a shared suffix gives the same range as from scratch:
  // extend "bra", then reuse its range for both "abra" and "xbra".
  const auto BwtRange = [&fm](const std::vector<int32_t>& p, int64_t* sp,
                              int64_t* ep) {
    *sp = 0;
    *ep = static_cast<int64_t>(fm.bwt_size());
    for (size_t k = p.size(); k-- > 0;) {
      if (!fm.ExtendLeft(int64_t{p[k]} + 1, sp, ep)) return false;
    }
    return true;
  };
  int64_t sp = 0, ep = 0;
  ASSERT_TRUE(BwtRange({'b', 'r', 'a'}, &sp, &ep));
  int64_t sp2 = sp, ep2 = ep;
  ASSERT_TRUE(fm.ExtendLeft(int64_t{'a'} + 1, &sp2, &ep2));
  const auto resumed = FmIndex::ToSaRange(sp2, ep2);
  const auto direct = fm.Range({'a', 'b', 'r', 'a'});
  ASSERT_TRUE(resumed.has_value());
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(resumed->first, direct->first);
  EXPECT_EQ(resumed->second, direct->second);
  int64_t sp3 = sp, ep3 = ep;
  EXPECT_FALSE(fm.ExtendLeft(int64_t{'x'} + 1, &sp3, &ep3));
}

TEST(FmIndexTest, MemorySmallerThanTree) {
  Text t;
  std::string s;
  Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    s.push_back(static_cast<char>('a' + rng.Uniform(4)));
  }
  t.AppendMember(s);
  const SuffixTree st = SuffixTree::Build(t.chars(), t.alphabet_size());
  const FmIndex fm(t.chars(), st.sa(), t.alphabet_size());
  // The whole point of compact mode: the locator is far smaller than the
  // tree's node arrays.
  EXPECT_LT(fm.MemoryUsage() * 5, st.MemoryUsage());
}

}  // namespace
}  // namespace pti
