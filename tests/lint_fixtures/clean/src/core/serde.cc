// pti-lint fixture: a file exercising every construct the linter must NOT
// flag — the sanctioned counterparts of each violation class, plus banned
// tokens hidden in comments, strings and raw strings (the sanitizer must
// strip them). tests/pti_lint_test.py asserts this tree is finding-free.
//
// Tokens that would be findings if comment stripping broke:
// throw, rand(), time(nullptr), reinterpret_cast<int*>, mu.lock()
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>

namespace pti {

static const char* kHelp =
    "does not throw; no rand() or mu.lock() happens in a string literal";
static const char* kRaw = R"(raw strings may mention reinterpret_cast too)";

Status DecodeCounts(Reader* r, std::map<uint32_t, uint64_t>* out) {
  uint64_t n = 0;
  PTI_RETURN_IF_ERROR(r->GetU64(&n));
  static_assert(sizeof(n) == 8, "static_assert is always allowed");
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t key = 0;
    uint64_t count = 0;
    PTI_RETURN_IF_ERROR(r->GetU32(&key));
    PTI_RETURN_IF_ERROR(r->GetU64(&count));
    (*out)[key] = count;
  }
  return Status::OK();
}

void SaveCounts(const std::map<uint32_t, uint64_t>& counts, Writer* w) {
  // Ordered map: iteration order is the key order, deterministic.
  w->PutU64(counts.size());
  for (const auto& [key, count] : counts) {
    w->PutU32(key);
    w->PutU64(count);
  }
}

static std::mutex mu;
static uint64_t total;

uint64_t AddTimed(uint64_t amount) {
  // steady_clock is fine: timings are diagnostics, never serialized bytes.
  const auto start = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> guard(mu);
  total += amount;
  (void)start;
  return total;
}

Status DecodeLegacyTag(Reader* r, uint8_t* tag) {
  // A justified suppression silences exactly its rule, nothing else.
  // pti-lint: allow(no-assert-in-decode): checked by Open() before dispatch
  assert(r != nullptr);
  return r->GetU8(tag);
}

}  // namespace pti
