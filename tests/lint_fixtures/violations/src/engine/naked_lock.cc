// pti-lint fixture: mutexes must be held via RAII guards.
#include <mutex>

namespace pti {

static std::mutex mu;
static int counter = 0;

void Increment() {
  mu.lock();  // BAD: no-naked-lock
  ++counter;
  mu.unlock();  // BAD: no-naked-lock
}

}  // namespace pti
