// pti-lint fixture: nondeterministic inputs on a build path.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace pti {

uint64_t SeedFromEnvironment() {
  std::random_device rd;  // BAD: no-nondeterminism
  uint64_t seed = rd();
  seed ^= static_cast<uint64_t>(time(nullptr));  // BAD: no-nondeterminism
  seed ^= static_cast<uint64_t>(
      std::chrono::system_clock::now()  // BAD: no-nondeterminism
          .time_since_epoch()
          .count());
  // A mismatched allow() must not hide a different rule:
  seed ^= static_cast<uint64_t>(rand());  // pti-lint: allow(no-throw)
  return seed;
}

}  // namespace pti
