// pti-lint fixture: hash-ordered iteration feeding serialized bytes.
#include <cstdint>
#include <unordered_map>

namespace pti {

void SaveCounts(const std::unordered_map<int64_t, double>& unrelated) {
  std::unordered_map<uint32_t, uint64_t> counts;
  counts[1] = 2;
  Writer w;
  // BAD: unordered-iteration-in-serde — byte order depends on hash layout.
  for (const auto& [key, count] : counts) {
    w.PutU32(key);
    w.PutU64(count);
  }
  // BAD: unordered-iteration-in-serde (iterator-loop form).
  for (auto it = counts.begin(); it != counts.end(); ++it) {
    w.PutU64(it->second);
  }
  (void)unrelated;
}

}  // namespace pti
