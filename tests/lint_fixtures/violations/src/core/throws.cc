// pti-lint fixture: the never-throw contract.
#include <stdexcept>

namespace pti {

void Explode(int k) {
  if (k < 0) {
    throw std::runtime_error("negative");  // BAD: no-throw
  }
}

}  // namespace pti
