// pti-lint fixture: silently dropped Status results.

namespace pti {

void RoundTrip(const SubstringIndex& index, std::string* blob) {
  index.Save(blob);  // BAD: discarded-status
  SubstringIndex loaded;
  loaded.Load(*blob);  // BAD: discarded-status
}

}  // namespace pti
