// pti-lint fixture: decode-path violations. Named serde.cc so it falls in
// the linter's decode-path scope. Never compiled; consumed by
// tests/pti_lint_test.py, which asserts the exact findings below.
#include <cassert>
#include <cstdint>

namespace pti {

Status DecodeHeader(Reader* r, Header* out) {
  r->GetU32(&out->magic);  // BAD: discarded-status
  assert(out->magic == 0x43495450);  // BAD: no-assert-in-decode
  static_assert(sizeof(uint32_t) == 4, "ok: static_assert is allowed");
  const char* p = r->cursor();
  // BAD: no-raw-reinterpret-cast (must use Reader::GetSpan instead)
  out->words = reinterpret_cast<const uint64_t*>(p);
  return Status::OK();
}

}  // namespace pti
