// Zero-copy load equivalence tests: a v3 container loaded through an mmap
// backing, a v3 container loaded from a plain buffer, and a v2 interchange
// container must answer every query bit-identically to the freshly built
// index. Also pins the ownership contract (a loaded index can never dangle
// into the caller's buffer) and the load provenance flags the compact v3
// fast path reports.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/serde.h"
#include "core/substring_index.h"
#include "engine/sharded_index.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace pti {
namespace {

UncertainString TestString(uint64_t seed, int64_t length = 60) {
  test::RandomStringSpec spec;
  spec.length = length;
  spec.alphabet = 3;
  spec.seed = seed;
  UncertainString s = test::RandomUncertain(spec);
  test::AddRandomCorrelations(&s, 3, seed * 31 + 7);
  return s;
}

std::vector<std::string> TestPatterns(const UncertainString& s) {
  std::vector<std::string> patterns;
  for (uint64_t k = 0; k < 8; ++k) {
    const size_t len = 1 + k % 5;
    const int64_t start = static_cast<int64_t>(
        (k * 131) % static_cast<uint64_t>(s.size() - len));
    patterns.push_back(test::PatternFromString(s, start, len, k + 1));
  }
  patterns.push_back("zzz");  // absent
  return patterns;
}

/// Bit-identical match lists: positions and probabilities compare with ==.
void ExpectIdentical(const std::vector<Match>& want,
                     const std::vector<Match>& got, const std::string& label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].position, got[i].position) << label << " entry " << i;
    EXPECT_EQ(want[i].probability, got[i].probability)
        << label << " entry " << i;
  }
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "pti_mmap_load_" + name;
}

void WriteWhole(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();
  ASSERT_TRUE(out.good()) << path;
}

class MmapLoadTest : public ::testing::TestWithParam<bool> {};

// The tentpole acceptance property: v2, v3-from-buffer and v3-from-mmap
// loads agree bit-for-bit with the built index on every query, in both tree
// and compact mode.
TEST_P(MmapLoadTest, QueriesBitIdenticalAcrossFormatsAndBackings) {
  const bool compact = GetParam();
  const UncertainString s = TestString(2026);
  IndexOptions options;
  options.transform.tau_min = 0.05;
  options.compact = compact;
  auto built = SubstringIndex::Build(s, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  std::string v2_blob, v3_blob;
  ASSERT_TRUE(built->Save(&v2_blob, serde::kInterchangeVersion).ok());
  ASSERT_TRUE(built->Save(&v3_blob).ok());
  const std::string path =
      TempPath(compact ? "compact.pti" : "tree.pti");
  WriteWhole(path, v3_blob);

  auto v2 = SubstringIndex::Load(v2_blob);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  auto v3_copy = SubstringIndex::Load(v3_blob);
  ASSERT_TRUE(v3_copy.ok()) << v3_copy.status().ToString();
  auto mapped = serde::MapFile(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  auto v3_mmap = SubstringIndex::Load((*mapped)->view(), *mapped);
  ASSERT_TRUE(v3_mmap.ok()) << v3_mmap.status().ToString();

  for (const std::string& pattern : TestPatterns(s)) {
    for (const double tau : {0.05, 0.2, 0.6}) {
      std::vector<Match> want, got;
      const Status base = built->Query(pattern, tau, &want);
      ASSERT_TRUE(base.ok()) << base.ToString();
      ASSERT_TRUE(v2->Query(pattern, tau, &got).ok());
      ExpectIdentical(want, got, "v2 " + pattern);
      ASSERT_TRUE(v3_copy->Query(pattern, tau, &got).ok());
      ExpectIdentical(want, got, "v3-copy " + pattern);
      ASSERT_TRUE(v3_mmap->Query(pattern, tau, &got).ok());
      ExpectIdentical(want, got, "v3-mmap " + pattern);

      FuzzyParams params;
      params.k = 1;
      std::vector<Match> fwant, fgot;
      const Status fuzzy = built->QueryFuzzy(pattern, tau, params, &fwant);
      if (fuzzy.ok()) {
        ASSERT_TRUE(v2->QueryFuzzy(pattern, tau, params, &fgot).ok());
        ExpectIdentical(fwant, fgot, "fuzzy v2 " + pattern);
        ASSERT_TRUE(v3_mmap->QueryFuzzy(pattern, tau, params, &fgot).ok());
        ExpectIdentical(fwant, fgot, "fuzzy v3-mmap " + pattern);
      }
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(TreeAndCompact, MmapLoadTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Compact" : "Tree";
                         });

// Compact v3 loads must take the validate-and-point fast path (no SA-IS, no
// FM-index rebuild), and report themselves zero-copy; a v2 load of the same
// index rebuilds everything and retains nothing.
TEST(MmapLoadProvenanceTest, CompactV3UsesPersistedDerivedSections) {
  const UncertainString s = TestString(7);
  IndexOptions options;
  options.compact = true;
  auto built = SubstringIndex::Build(s, options);
  ASSERT_TRUE(built.ok());

  std::string v3_blob;
  ASSERT_TRUE(built->Save(&v3_blob).ok());
  auto v3 = SubstringIndex::Load(v3_blob);
  ASSERT_TRUE(v3.ok()) << v3.status().ToString();
  EXPECT_TRUE(SubstringIndexTestPeer::SaLoadedFromSection(*v3));
  EXPECT_TRUE(SubstringIndexTestPeer::DerivedLoadedFromSections(*v3));
  EXPECT_TRUE(SubstringIndexTestPeer::ZeroCopyBacked(*v3));

  std::string v2_blob;
  ASSERT_TRUE(built->Save(&v2_blob, serde::kInterchangeVersion).ok());
  auto v2 = SubstringIndex::Load(v2_blob);
  ASSERT_TRUE(v2.ok());
  EXPECT_FALSE(SubstringIndexTestPeer::DerivedLoadedFromSections(*v2));
  EXPECT_FALSE(SubstringIndexTestPeer::ZeroCopyBacked(*v2));
}

// Tree-mode v3 containers also load their text/maps zero-copy (the suffix
// tree itself is rebuilt, but the big flat arrays are views).
TEST(MmapLoadProvenanceTest, TreeV3TextIsZeroCopy) {
  const UncertainString s = TestString(11);
  auto built = SubstringIndex::Build(s, IndexOptions{});
  ASSERT_TRUE(built.ok());
  std::string blob;
  ASSERT_TRUE(built->Save(&blob).ok());
  auto loaded = SubstringIndex::Load(blob);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(SubstringIndexTestPeer::ZeroCopyBacked(*loaded));
}

// Ownership-by-construction regression: Load from a buffer that is
// destroyed immediately afterwards. The loaded index must have pinned (or
// copied) everything it still references — queries after the source dies
// must answer exactly like the original build. Run under ASan this is the
// use-after-free probe for the whole zero-copy scheme.
TEST(MmapLoadOwnershipTest, LoadedIndexSurvivesItsSourceBuffer) {
  const UncertainString s = TestString(13);
  IndexOptions options;
  options.compact = true;
  auto built = SubstringIndex::Build(s, options);
  ASSERT_TRUE(built.ok());

  StatusOr<SubstringIndex> loaded = [&]() -> StatusOr<SubstringIndex> {
    std::string transient;
    Status saved = built->Save(&transient);
    if (!saved.ok()) return saved;
    return SubstringIndex::Load(transient);
    // `transient` is destroyed here; the index must not care.
  }();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  for (const std::string& pattern : TestPatterns(s)) {
    std::vector<Match> want, got;
    ASSERT_TRUE(built->Query(pattern, 0.1, &want).ok());
    ASSERT_TRUE(loaded->Query(pattern, 0.1, &got).ok());
    ExpectIdentical(want, got, "transient-source " + pattern);
  }
}

// Same regression through the mmap path: the index holds the last reference
// to the mapping once the caller drops its BlobPtr.
TEST(MmapLoadOwnershipTest, IndexKeepsMappingAliveAfterCallerDrops) {
  const UncertainString s = TestString(17);
  IndexOptions options;
  options.compact = true;
  auto built = SubstringIndex::Build(s, options);
  ASSERT_TRUE(built.ok());
  std::string blob;
  ASSERT_TRUE(built->Save(&blob).ok());
  const std::string path = TempPath("pinned.pti");
  WriteWhole(path, blob);

  StatusOr<SubstringIndex> loaded = [&]() -> StatusOr<SubstringIndex> {
    auto mapped = serde::MapFile(path);
    if (!mapped.ok()) return mapped.status();
    return SubstringIndex::Load((*mapped)->view(), *mapped);
    // The local BlobPtr dies here; the index shares ownership.
  }();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(SubstringIndexTestPeer::ZeroCopyBacked(*loaded));

  for (const std::string& pattern : TestPatterns(s)) {
    std::vector<Match> want, got;
    ASSERT_TRUE(built->Query(pattern, 0.1, &want).ok());
    ASSERT_TRUE(loaded->Query(pattern, 0.1, &got).ok());
    ExpectIdentical(want, got, "mmap-pinned " + pattern);
  }
  std::remove(path.c_str());
}

// Sharded containers propagate the backing into every nested shard load;
// all three load paths agree with the built engine.
TEST(MmapLoadShardedTest, ShardsShareTheBackingAndAgree) {
  const UncertainString s = TestString(19, 120);
  ShardedIndexOptions options;
  options.num_shards = 3;
  options.overlap = 12;
  options.index.compact = true;
  auto built = ShardedIndex::Build(s, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  std::string v2_blob, v3_blob;
  ASSERT_TRUE(built->Save(&v2_blob, serde::kInterchangeVersion).ok());
  ASSERT_TRUE(built->Save(&v3_blob).ok());
  const std::string path = TempPath("sharded.pti");
  WriteWhole(path, v3_blob);

  auto v2 = ShardedIndex::Load(v2_blob);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  auto mapped = serde::MapFile(path);
  ASSERT_TRUE(mapped.ok());
  auto v3 = ShardedIndex::Load((*mapped)->view(), 2, *mapped);
  ASSERT_TRUE(v3.ok()) << v3.status().ToString();
  for (int32_t k = 0; k < v3->num_shards(); ++k) {
    EXPECT_TRUE(SubstringIndexTestPeer::ZeroCopyBacked(v3->shard(k)))
        << "shard " << k;
  }

  for (const std::string& pattern : TestPatterns(s)) {
    std::vector<Match> want, got;
    ASSERT_TRUE(built->Query(pattern, 0.1, &want).ok());
    ASSERT_TRUE(v2->Query(pattern, 0.1, &got).ok());
    ExpectIdentical(want, got, "sharded v2 " + pattern);
    ASSERT_TRUE(v3->Query(pattern, 0.1, &got).ok());
    ExpectIdentical(want, got, "sharded v3-mmap " + pattern);
  }
  std::remove(path.c_str());
}

// MapFile diagnoses a missing file as an I/O error (with a cause), never as
// container corruption.
TEST(MmapLoadTestIo, MissingFileIsIoError) {
  auto mapped = serde::MapFile(TempPath("does_not_exist.pti"));
  ASSERT_FALSE(mapped.ok());
  EXPECT_TRUE(mapped.status().IsIOError()) << mapped.status().ToString();
}

}  // namespace
}  // namespace pti
