#!/usr/bin/env python3
"""Smoke test for pti_cli: every subcommand's success, usage and error path.

Usage: cli_smoke_test.py <path-to-pti_cli> [<path-to-pti_client>]

Contract under test (see the header comment of examples/pti_cli.cpp):
  exit 0  success; stdout carries machine-readable results only
  exit 1  operational failure (I/O, corrupt index, failed build or query)
  exit 2  usage error (unknown command, missing/malformed arguments)
Errors and diagnostics must go to stderr, never stdout.

When a pti_client path is given, the loopback serving pair is smoked too:
`pti_cli serve --listen=0` must print its ephemeral port on stdout, answer
a pti_client workload (including !reload under traffic) byte-identically to
the local batch command, and shut down cleanly on stdin EOF.
"""

import os
import subprocess
import sys
import tempfile

CLI = None
FAILURES = []


def run(*args):
    return subprocess.run([CLI, *args], capture_output=True, text=True)


def check(name, result, rc, stdout_has=None, stderr_has=None,
          stdout_empty=False):
    problems = []
    if result.returncode != rc:
        problems.append(f"exit {result.returncode}, want {rc}")
    if stdout_empty and result.stdout:
        problems.append(f"stdout not empty: {result.stdout[:120]!r}")
    if stdout_has is not None and stdout_has not in result.stdout:
        problems.append(f"stdout missing {stdout_has!r}: {result.stdout[:120]!r}")
    if stderr_has is not None and stderr_has not in result.stderr:
        problems.append(f"stderr missing {stderr_has!r}: {result.stderr[:120]!r}")
    if result.returncode != 0 and "error" not in result.stderr and \
            "usage" not in result.stderr:
        problems.append("failure without error/usage text on stderr")
    if problems:
        FAILURES.append(f"{name}: " + "; ".join(problems))
        print(f"FAIL {name}: " + "; ".join(problems))
    else:
        print(f"ok   {name}")


def main():
    global CLI
    if len(sys.argv) not in (2, 3):
        print("usage: cli_smoke_test.py <pti_cli> [<pti_client>]",
              file=sys.stderr)
        return 2
    CLI = sys.argv[1]
    client = sys.argv[2] if len(sys.argv) == 3 else None
    tmp = tempfile.mkdtemp(prefix="pti_cli_smoke.")

    def p(name):
        return os.path.join(tmp, name)

    # ---- no args / unknown command / unknown flag -> usage (exit 2) ----
    check("no-args", run(), 2, stderr_has="usage", stdout_empty=True)
    check("unknown-command", run("frobnicate"), 2,
          stderr_has="unknown command", stdout_empty=True)

    # ---- gen ----
    check("gen", run("gen", "300", "0.3", "7", p("g.pus")), 0,
          stdout_has="wrote 300 positions")
    check("gen-missing-args", run("gen", "300"), 2, stderr_has="usage")
    check("gen-bad-length", run("gen", "30x", "0.3", "7", p("x.pus")), 2,
          stderr_has="bad length")
    check("gen-bad-theta", run("gen", "300", "1.5", "7", p("x.pus")), 2,
          stderr_has="bad theta")
    check("gen-unwritable", run("gen", "10", "0.3", "7", tmp + "/no/dir.pus"),
          1, stderr_has="cannot write")

    # A tiny handwritten string exercising deterministic probabilities.
    with open(p("d.pus"), "w") as f:
        f.write("Q=0.7 S=0.3\nQ=0.3 P=0.7\nP=1.0\nA=0.4 F=0.3 P=0.2 Q=0.1\n")
    with open(p("bad.pus"), "w") as f:
        f.write("Q=0.7 S=0.1\n")  # does not sum to 1

    # ---- build ----
    check("build", run("build", p("g.pus"), p("g.pti"), "0.1"), 0,
          stdout_has="indexed 300 positions")
    check("build-default-tau", run("build", p("d.pus"), p("d.pti")), 0,
          stdout_has="indexed 4 positions")
    check("build-missing-args", run("build", p("g.pus")), 2,
          stderr_has="usage")
    check("build-bad-tau", run("build", p("g.pus"), p("x.pti"), "nope"), 2,
          stderr_has="bad tau_min")
    check("build-missing-input", run("build", p("absent.pus"), p("x.pti")),
          1, stderr_has="cannot read")
    check("build-invalid-pus", run("build", p("bad.pus"), p("x.pti")), 1,
          stderr_has="InvalidArgument")
    # Compact mode: the blob carries the suffix array, queries must agree.
    check("build-compact",
          run("build", p("d.pus"), p("dc.pti"), "0.1", "--compact"), 0,
          stdout_has="compact")
    check("build-inapplicable-flag",
          run("build", p("d.pus"), p("x.pti"), "--shards=2"), 2,
          stderr_has="not supported by this command")

    # ---- build-special / build-approx / build-listing ----
    with open(p("s.pus"), "w") as f:
        f.write("a=0.9\nb=0.5\na=0.7\nb=1.0\n")
    check("build-special", run("build-special", p("s.pus"), p("s.pti")), 0,
          stdout_has="special")
    check("build-special-missing-args", run("build-special", p("s.pus")), 2,
          stderr_has="usage")
    check("build-approx",
          run("build-approx", p("g.pus"), p("a.pti"), "0.1", "0.05"), 0,
          stdout_has="links")
    check("build-approx-bad-epsilon",
          run("build-approx", p("g.pus"), p("a.pti"), "0.1", "eps"), 2,
          stderr_has="bad epsilon")
    check("build-listing",
          run("build-listing", p("l.pti"), "0.1", p("d.pus"), p("d.pus")), 0,
          stdout_has="indexed 2 documents")
    check("build-listing-missing-args", run("build-listing", p("l.pti")), 2,
          stderr_has="usage")
    check("build-listing-bad-tau",
          run("build-listing", p("l.pti"), "x", p("d.pus")), 2,
          stderr_has="bad tau_min")

    # ---- build-sharded ----
    check("build-sharded",
          run("build-sharded", p("g.pus"), p("sh.pti"), "0.1",
              "--shards=4", "--overlap=16", "--threads=2"), 0,
          stdout_has="4 shards")
    check("build-sharded-missing-args", run("build-sharded", p("g.pus")), 2,
          stderr_has="usage")
    check("build-sharded-unknown-flag",
          run("build-sharded", p("g.pus"), p("x.pti"), "--wat=1"), 2,
          stderr_has="unknown flag")
    check("build-sharded-bad-flag-value",
          run("build-sharded", p("g.pus"), p("x.pti"), "--shards=-2"), 2,
          stderr_has="bad value")

    # ---- query (every kind via autodetection) ----
    check("query-substring", run("query", p("d.pti"), "QP", "0.4"), 0,
          stdout_has="0\t0.490000", stderr_has="1 match(es)")
    check("query-compact", run("query", p("dc.pti"), "QP", "0.4"), 0,
          stdout_has="0\t0.490000", stderr_has="1 match(es)")
    check("query-sharded", run("query", p("sh.pti"), "AA", "0.2"), 0,
          stderr_has="match(es)")
    check("query-approx", run("query", p("a.pti"), "AA", "0.2"), 0,
          stderr_has="match(es)")
    check("query-special", run("query", p("s.pti"), "ab", "0.2"), 0,
          stderr_has="match(es)")
    check("query-listing", run("query", p("l.pti"), "QP", "0.4"), 0,
          stdout_has="doc 0", stderr_has="document(s)")
    check("query-missing-args", run("query", p("d.pti"), "QP"), 2,
          stderr_has="usage")
    check("query-bad-tau", run("query", p("d.pti"), "QP", "0.x4"), 2,
          stderr_has="bad tau")
    check("query-tau-below-min", run("query", p("d.pti"), "QP", "0.01"), 1,
          stderr_has="InvalidArgument")
    check("query-missing-index", run("query", p("absent.pti"), "QP", "0.4"),
          1, stderr_has="cannot read")
    # Sharded index rejects patterns beyond the overlap limit.
    check("query-sharded-too-long",
          run("query", p("sh.pti"), "A" * 30, "0.2"), 1,
          stderr_has="NotSupported")

    # Corrupt index file: truncation must be a clean Corruption error.
    with open(p("g.pti"), "rb") as f:
        blob = f.read()
    with open(p("trunc.pti"), "wb") as f:
        f.write(blob[: len(blob) // 2])
    check("query-corrupt-index", run("query", p("trunc.pti"), "AA", "0.2"),
          1, stderr_has="Corruption")

    # ---- fuzzy ----
    # d.pus position 1 only matches "QP" via the 1-mismatch variant "PP"
    # (0.7 * 1.0); position 0 matches exactly at 0.49.
    check("fuzzy-substring", run("fuzzy", p("d.pti"), "QP", "0.4", "--k=1"),
          0, stdout_has="1\t0.700000", stderr_has="2 match(es)")
    check("fuzzy-k0-equals-query",
          run("fuzzy", p("d.pti"), "QP", "0.4", "--k=0"), 0,
          stdout_has="0\t0.490000", stderr_has="1 match(es)")
    check("fuzzy-edit-compact",
          run("fuzzy", p("dc.pti"), "QP", "0.4", "--k=1", "--mode=edit"), 0,
          stderr_has="match(es)")
    check("fuzzy-sharded", run("fuzzy", p("sh.pti"), "AA", "0.2", "--k=1"),
          0, stderr_has="match(es)")
    # Overlap is 16: a 16-char pattern fits exactly but not once edit
    # distance widens the window length range by k.
    check("fuzzy-sharded-widened",
          run("fuzzy", p("sh.pti"), "A" * 16, "0.2", "--k=2", "--mode=edit"),
          1, stderr_has="widened by k=2")
    check("fuzzy-k-too-large", run("fuzzy", p("d.pti"), "QP", "0.4", "--k=9"),
          1, stderr_has="NotSupported")
    check("fuzzy-negative-k", run("fuzzy", p("d.pti"), "QP", "0.4", "--k=-1"),
          2, stderr_has="bad value")
    check("fuzzy-bad-mode",
          run("fuzzy", p("d.pti"), "QP", "0.4", "--mode=hamming"), 2,
          stderr_has="bad value")
    check("fuzzy-missing-args", run("fuzzy", p("d.pti"), "QP"), 2,
          stderr_has="usage")
    check("fuzzy-bad-tau", run("fuzzy", p("d.pti"), "QP", "x"), 2,
          stderr_has="bad tau")
    check("fuzzy-wrong-kind", run("fuzzy", p("l.pti"), "QP", "0.4"), 1,
          stderr_has="requires a substring or sharded")
    check("fuzzy-inapplicable-flag",
          run("fuzzy", p("d.pti"), "QP", "0.4", "--shards=2"), 2,
          stderr_has="not supported by this command")

    # ---- batch ----
    with open(p("pats.txt"), "w") as f:
        f.write("# comment\nQP\nQ 0.6\n\nPP\n")
    check("batch-substring", run("batch", p("d.pti"), p("pats.txt"), "0.3"),
          0, stdout_has="0\t0\t0.490000", stderr_has="3 queries")
    check("batch-sharded",
          run("batch", p("sh.pti"), p("pats.txt"), "0.3", "--threads=2"), 0,
          stderr_has="3 queries")
    check("batch-missing-args", run("batch", p("d.pti")), 2,
          stderr_has="usage")
    check("batch-inapplicable-flag",
          run("batch", p("d.pti"), p("pats.txt"), "0.3", "--overlap=64"), 2,
          stderr_has="not supported by this command")
    check("batch-threads-on-substring",
          run("batch", p("d.pti"), p("pats.txt"), "0.3", "--threads=2"), 1,
          stderr_has="applies to sharded indexes")
    check("build-sharded-overflow-flag",
          run("build-sharded", p("g.pus"), p("x.pti"), "0.1",
              "--shards=4294967298"), 2,
          stderr_has="bad value")
    # Trailing tabs after a per-line tau are trimmed like spaces.
    with open(p("tabpats.txt"), "w") as f:
        f.write("QP 0.3\t\n")
    check("batch-trailing-tab",
          run("batch", p("d.pti"), p("tabpats.txt"), "0.3"), 0,
          stdout_has="0\t0\t0.490000")
    # Indented pattern lines parse like unindented ones.
    with open(p("indent.txt"), "w") as f:
        f.write("  QP 0.3\n\t \n")
    check("batch-indented-line",
          run("batch", p("d.pti"), p("indent.txt"), "0.3"), 0,
          stdout_has="0\t0\t0.490000")
    check("batch-bad-tau", run("batch", p("d.pti"), p("pats.txt"), "x"), 2,
          stderr_has="bad tau")
    check("batch-missing-patterns",
          run("batch", p("d.pti"), p("absent.txt"), "0.3"), 1,
          stderr_has="cannot read")
    check("batch-wrong-kind", run("batch", p("l.pti"), p("pats.txt"), "0.3"),
          1, stderr_has="requires a substring or sharded")
    with open(p("badpats.txt"), "w") as f:
        f.write("QP not-a-tau\n")
    check("batch-bad-line", run("batch", p("d.pti"), p("badpats.txt"), "0.3"),
          1, stderr_has="line 1")

    # ---- serve ----
    # Same patterns file as batch; results must match batch's output lines
    # (input-order i<TAB>pos<TAB>prob) with engine stats on stderr.
    check("serve-substring",
          run("serve", p("d.pti"), p("pats.txt"), "0.3"), 0,
          stdout_has="0\t0\t0.490000", stderr_has="3 queries")
    check("serve-stats-on-stderr",
          run("serve", p("d.pti"), p("pats.txt"), "0.3"), 0,
          stderr_has="serving:")
    check("serve-sharded",
          run("serve", p("sh.pti"), p("pats.txt"), "0.3", "--clients=2",
              "--batch-max=8", "--linger-us=50", "--cache-mb=4",
              "--threads=2"), 0,
          stderr_has="3 queries")
    serve_stdin = subprocess.run(
        [CLI, "serve", p("d.pti"), "-", "0.3"], input="QP\nQ 0.6\n",
        capture_output=True, text=True)
    check("serve-stdin", serve_stdin, 0, stdout_has="0\t0\t0.490000",
          stderr_has="2 queries")
    check("serve-missing-args", run("serve", p("d.pti")), 2,
          stderr_has="usage")
    check("serve-bad-tau", run("serve", p("d.pti"), p("pats.txt"), "x"), 2,
          stderr_has="bad tau")
    check("serve-bad-clients",
          run("serve", p("d.pti"), p("pats.txt"), "0.3", "--clients=0"), 2,
          stderr_has="bad value")
    check("serve-inapplicable-flag",
          run("serve", p("d.pti"), p("pats.txt"), "0.3", "--shards=2"), 2,
          stderr_has="not supported by this command")
    check("serve-wrong-kind", run("serve", p("l.pti"), p("pats.txt"), "0.3"),
          1, stderr_has="requires a substring or sharded")
    check("serve-missing-patterns",
          run("serve", p("d.pti"), p("absent.txt"), "0.3"), 1,
          stderr_has="cannot read")
    # A failing request (tau below tau_min) reports per-request: batch-mates
    # still print, the command exits 1 with the failure on stderr.
    with open(p("mixed.txt"), "w") as f:
        f.write("QP 0.3\nQP 0.01\n")
    check("serve-partial-failure",
          run("serve", p("d.pti"), p("mixed.txt"), "0.3"), 1,
          stdout_has="0\t0\t0.490000", stderr_has="1 request(s) failed")

    # ---- container format pinning and mmap-backed loads ----
    # --format=2 writes the portable interchange layout; query results must
    # be identical to the default (v3) container, mmap'd or not.
    check("build-format-v2",
          run("build", p("d.pus"), p("d2.pti"), "0.1", "--compact",
              "--format=2"), 0, stdout_has="compact")
    check("build-bad-format",
          run("build", p("d.pus"), p("x.pti"), "--format=7"), 2,
          stderr_has="bad value")
    check("build-sharded-format-v2",
          run("build-sharded", p("g.pus"), p("sh2.pti"), "0.1", "--shards=4",
              "--overlap=16", "--format=2"), 0, stdout_has="4 shards")
    v3 = run("query", p("dc.pti"), "QP", "0.4", "--mmap")
    check("query-mmap", v3, 0, stdout_has="0\t0.490000")
    v2 = run("query", p("d2.pti"), "QP", "0.4")
    if v2.stdout != v3.stdout:
        FAILURES.append("format-equivalence: v2 and mmap'd v3 results differ")
        print("FAIL format-equivalence")
    else:
        print("ok   format-equivalence")
    check("fuzzy-mmap",
          run("fuzzy", p("dc.pti"), "QP", "0.4", "--k=1", "--mmap"), 0,
          stderr_has="match(es)")
    check("batch-mmap",
          run("batch", p("sh.pti"), p("pats.txt"), "0.3", "--mmap"), 0,
          stderr_has="3 queries")
    check("stat-mmap", run("stat", p("dc.pti"), "--mmap"), 0,
          stdout_has="(mmap)")
    check("stat-format-v2", run("stat", p("d2.pti")), 0,
          stdout_has="container version    2")
    check("mmap-missing-index", run("query", p("absent.pti"), "QP", "0.4",
                                    "--mmap"), 1, stderr_has="cannot read")

    # ---- serve hot reload ----
    # A !reload directive swaps the served index between segments; every
    # query before and after must still resolve exactly once.
    with open(p("reload.txt"), "w") as f:
        f.write("QP 0.3\n!reload %s\nQP 0.3\nPP 0.3\n" % p("d2.pti"))
    check("serve-reload",
          run("serve", p("d.pti"), p("reload.txt"), "0.3", "--mmap"), 0,
          stdout_has="2\t1\t0.700000", stderr_has="1 reload(s)")
    with open(p("badreload.txt"), "w") as f:
        f.write("QP 0.3\n!reload %s\nQP 0.3\n" % p("absent.pti"))
    # A failed reload keeps the previous generation serving (both queries
    # still answer) and surfaces as an operational failure.
    check("serve-reload-failure",
          run("serve", p("d.pti"), p("badreload.txt"), "0.3"), 1,
          stdout_has="1\t0\t0.490000", stderr_has="reload(s) failed")
    with open(p("baddirective.txt"), "w") as f:
        f.write("!frobnicate\n")
    check("serve-bad-directive",
          run("serve", p("d.pti"), p("baddirective.txt"), "0.3"), 1,
          stderr_has="unknown directive")
    with open(p("pathless.txt"), "w") as f:
        f.write("!reload\n")
    check("serve-reload-no-path",
          run("serve", p("d.pti"), p("pathless.txt"), "0.3"), 1,
          stderr_has="needs an index path")

    # Atomic index writes: a failed build-to-unwritable-path must not leave
    # a file (or .tmp litter) under the target name.
    target = os.path.join(tmp, "no", "dir.pti")
    check("build-unwritable", run("build", p("d.pus"), target), 1,
          stderr_has="cannot write")
    if os.path.exists(target) or os.path.exists(target + ".tmp"):
        FAILURES.append("atomic-write: failed build left files behind")
        print("FAIL atomic-write")
    else:
        print("ok   atomic-write")

    # ---- serve --listen + pti_client: loopback TCP serving ----
    if client:
        def crun(*args, **kw):
            return subprocess.run([client, *args], capture_output=True,
                                  text=True, timeout=60, **kw)

        check("client-usage", crun(), 2, stderr_has="usage")
        check("client-bad-port",
              crun("127.0.0.1", "nope", p("pats.txt"), "0.3"), 2,
              stderr_has="bad port")
        check("client-refused",
              crun("127.0.0.1", "1", p("pats.txt"), "0.3"), 1,
              stderr_has="error")
        check("listen-with-patterns",
              run("serve", p("d.pti"), p("pats.txt"), "0.3", "--listen=0"),
              2, stderr_has="usage")
        check("listen-bad-port", run("serve", p("d.pti"), "--listen=70000"),
              2, stderr_has="bad value")

        server = subprocess.Popen(
            [CLI, "serve", p("d.pti"), "--listen=0", "--mmap"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True)
        try:
            port = server.stdout.readline().strip()
            if not port.isdigit():
                FAILURES.append(f"listen-port: got {port!r} on stdout")
                print("FAIL listen-port")
            else:
                print("ok   listen-port")
                # The networked answers must be byte-identical to the local
                # batch command over the same workload.
                net = crun("127.0.0.1", port, p("pats.txt"), "0.3", "--stats")
                check("client-batch", net, 0, stdout_has="0\t0\t0.490000",
                      stderr_has="3 queries")
                local = run("batch", p("d.pti"), p("pats.txt"), "0.3")
                if net.stdout != local.stdout:
                    FAILURES.append("client-vs-batch: results differ")
                    print("FAIL client-vs-batch")
                else:
                    print("ok   client-vs-batch")
                check("client-stats", net, 0,
                      stderr_has="stat submitted")
                # Hot reload over the wire, mid-workload; d2 answers "PP"
                # via position 1 exactly like the local serve-reload case.
                check("client-reload",
                      crun("127.0.0.1", port, p("reload.txt"), "0.3"), 0,
                      stdout_has="2\t1\t0.700000", stderr_has="reloaded")
                check("client-reload-failure",
                      crun("127.0.0.1", port, p("badreload.txt"), "0.3"), 1,
                      stderr_has="reload")
            out, err = server.communicate(input="", timeout=60)
            if server.returncode != 0:
                FAILURES.append(f"listen-shutdown: exit {server.returncode}")
                print("FAIL listen-shutdown")
            elif "net:" not in err or "serving:" not in err:
                FAILURES.append(f"listen-shutdown: stats missing: {err[:200]!r}")
                print("FAIL listen-shutdown")
            else:
                print("ok   listen-shutdown")
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()

    # ---- topk ----
    check("topk", run("topk", p("d.pti"), "QP", "0.2", "2"), 0,
          stdout_has="0\t0.490000")
    check("topk-missing-args", run("topk", p("d.pti"), "QP", "0.2"), 2,
          stderr_has="usage")
    check("topk-bad-k", run("topk", p("d.pti"), "QP", "0.2", "-1"), 2,
          stderr_has="bad k")
    check("topk-wrong-kind", run("topk", p("l.pti"), "QP", "0.2", "2"), 1,
          stderr_has="requires a substring index")

    # ---- stat (every kind) ----
    for kind, path in [("substring", "g.pti"), ("sharded", "sh.pti"),
                       ("approx", "a.pti"), ("special", "s.pti"),
                       ("listing", "l.pti")]:
        check(f"stat-{kind}", run("stat", p(path)), 0, stdout_has=kind)
    check("stat-compact", run("stat", p("dc.pti")), 0,
          stdout_has="compact (FM-index)")
    check("stat-missing-args", run("stat"), 2, stderr_has="usage")
    check("stat-corrupt", run("stat", p("trunc.pti")), 1,
          stderr_has="Corruption")

    print(f"\n{len(FAILURES)} failure(s)")
    return 1 if FAILURES else 0


if __name__ == "__main__":
    sys.exit(main())
