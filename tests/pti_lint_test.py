#!/usr/bin/env python3
"""Fixture suite for scripts/pti_lint.py.

Runs the linter against the known-bad and known-good trees under
tests/lint_fixtures/, asserting the exact findings (file, line, rule) — so a
regression in any rule, in comment/string stripping, or in suppression
handling fails here, not in a confusing CI run later. Also asserts the real
src/ tree is finding-free (the zero-findings gate) and that freshly injected
violations of each lint class are caught.

Usage: pti_lint_test.py [repo_root]   (default: parent of this file's dir)
Registered as the PtiLint ctest test by tests/CMakeLists.txt.
"""

import os
import shutil
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.abspath(
    sys.argv.pop(1) if len(sys.argv) > 1 and not sys.argv[1].startswith("-")
    else os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
LINT = os.path.join(REPO_ROOT, "scripts", "pti_lint.py")
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint_fixtures")


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, LINT] + list(args),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def parse_findings(stdout):
    """-> set of (relpath, line, rule_id)."""
    findings = set()
    for line in stdout.splitlines():
        if not line.strip():
            continue
        path, line_no, rest = line.split(":", 2)
        rule = rest.strip().split("]", 1)[0].lstrip("[")
        findings.add((path, int(line_no), rule))
    return findings


class ViolationsTreeTest(unittest.TestCase):
    """Every violation class is caught, at the exact line, and nothing else."""

    EXPECTED = {
        ("src/core/serde.cc", 10, "discarded-status"),
        ("src/core/serde.cc", 11, "no-assert-in-decode"),
        ("src/core/serde.cc", 15, "no-raw-reinterpret-cast"),
        ("src/core/throws.cc", 8, "no-throw"),
        ("src/util/entropy.cc", 10, "no-nondeterminism"),
        ("src/util/entropy.cc", 12, "no-nondeterminism"),
        ("src/util/entropy.cc", 14, "no-nondeterminism"),
        ("src/util/entropy.cc", 18, "no-nondeterminism"),
        ("src/engine/naked_lock.cc", 10, "no-naked-lock"),
        ("src/engine/naked_lock.cc", 12, "no-naked-lock"),
        ("src/core/unordered_writer.cc", 12, "unordered-iteration-in-serde"),
        ("src/core/unordered_writer.cc", 17, "unordered-iteration-in-serde"),
        ("src/core/discarded.cc", 6, "discarded-status"),
        ("src/core/discarded.cc", 8, "discarded-status"),
    }

    def test_exact_findings(self):
        code, stdout, _ = run_lint(
            "--root", os.path.join(FIXTURES, "violations"))
        self.assertEqual(code, 1, "violations tree must fail the gate")
        self.assertEqual(parse_findings(stdout), self.EXPECTED)


class CleanTreeTest(unittest.TestCase):
    """Sanctioned constructs, comment/string-hidden tokens and justified
    suppressions produce zero findings and a clean exit."""

    def test_clean_exit(self):
        code, stdout, stderr = run_lint(
            "--root", os.path.join(FIXTURES, "clean"))
        self.assertEqual(code, 0, "clean tree flagged:\n%s%s" % (stdout, stderr))
        self.assertEqual(stdout, "")


class RealTreeTest(unittest.TestCase):
    """The zero-findings gate on the actual repository."""

    def test_src_is_clean(self):
        code, stdout, stderr = run_lint("--root", REPO_ROOT)
        self.assertEqual(code, 0, "src/ has findings:\n%s%s" % (stdout, stderr))


class InjectionTest(unittest.TestCase):
    """A fresh violation of each class, injected into a copy of a real
    source file, is caught — the gate can't be satisfied vacuously."""

    INJECTIONS = {
        "no-throw": "void PtiInjected() { throw 42; }\n",
        "no-nondeterminism":
            "unsigned PtiInjected() { return rand(); }\n",
        "no-raw-reinterpret-cast":
            "const long* PtiInjected(const char* p) {\n"
            "  return reinterpret_cast<const long*>(p);\n}\n",
        "no-naked-lock":
            "void PtiInjected(std::mutex* mu) { mu->lock(); }\n",
        "discarded-status":
            "void PtiInjected(pti::SubstringIndex* i, std::string* b) {\n"
            "  i->Save(b);\n}\n",
        "unordered-iteration-in-serde":
            "void PtiInjected(std::unordered_map<int, int> m) {\n"
            "  Writer w;\n"
            "  for (const auto& [k, v] : m) w.PutU32(k);\n}\n",
    }

    def test_each_class_caught(self):
        real = os.path.join(REPO_ROOT, "src", "core", "substring_index.cc")
        for rule, snippet in self.INJECTIONS.items():
            with self.subTest(rule=rule):
                with tempfile.TemporaryDirectory() as tmp:
                    dst_dir = os.path.join(tmp, "src", "core")
                    os.makedirs(dst_dir)
                    dst = os.path.join(dst_dir, "substring_index.cc")
                    shutil.copy(real, dst)
                    with open(dst, "a") as f:
                        f.write("\n" + snippet)
                    code, stdout, _ = run_lint("--root", tmp)
                    self.assertEqual(code, 1,
                                     "%s injection not caught" % rule)
                    self.assertIn(rule, stdout)


class CliTest(unittest.TestCase):
    def test_list_rules(self):
        code, stdout, _ = run_lint("--list-rules")
        self.assertEqual(code, 0)
        for rule in ["no-throw", "no-nondeterminism", "no-raw-reinterpret-cast",
                     "no-naked-lock", "no-assert-in-decode", "discarded-status",
                     "unordered-iteration-in-serde"]:
            self.assertIn(rule, stdout)

    def test_missing_path_is_usage_error(self):
        code, _, stderr = run_lint("--root", REPO_ROOT, "no/such/dir")
        self.assertNotEqual(code, 0)
        self.assertIn("no such path", stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
