// Tests for the suffix substrate: SA-IS vs naive sort, Kasai LCP vs naive,
// Text invariants, and the suffix tree (locus search, ranges, topology, LCA).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "suffix/lcp.h"
#include "suffix/sais.h"
#include "suffix/suffix_tree.h"
#include "suffix/text.h"
#include "util/rng.h"

namespace pti {
namespace {

std::vector<int32_t> ToInts(const std::string& s) {
  std::vector<int32_t> v;
  for (const char c : s) v.push_back(static_cast<unsigned char>(c));
  return v;
}

void CheckSa(const std::vector<int32_t>& text, int32_t alphabet) {
  const auto got = BuildSuffixArray(text, alphabet);
  const auto want = BuildSuffixArrayNaive(text);
  ASSERT_EQ(got, want) << "text size " << text.size();
}

TEST(SaisTest, EmptyAndSingle) {
  CheckSa({}, 1);
  CheckSa({0}, 1);
  CheckSa({5}, 6);
}

TEST(SaisTest, ClassicBanana) {
  const auto sa = BuildSuffixArray(ToInts("banana"), 256);
  // suffixes sorted: a, ana, anana, banana, na, nana
  EXPECT_EQ(sa, (std::vector<int32_t>{5, 3, 1, 0, 4, 2}));
}

TEST(SaisTest, Mississippi) {
  CheckSa(ToInts("mississippi"), 256);
}

TEST(SaisTest, AllSameCharacter) {
  CheckSa(std::vector<int32_t>(200, 7), 8);
}

TEST(SaisTest, AlternatingPattern) {
  std::vector<int32_t> v;
  for (int i = 0; i < 101; ++i) v.push_back(i % 2);
  CheckSa(v, 2);
}

TEST(SaisTest, ThueMorse) {
  std::vector<int32_t> v = {0};
  while (v.size() < 256) {
    const size_t n = v.size();
    for (size_t i = 0; i < n; ++i) v.push_back(1 - v[i]);
  }
  CheckSa(v, 2);
}

TEST(SaisTest, Fibonacci) {
  std::string a = "a", b = "ab";
  while (b.size() < 300) {
    std::string c = b + a;
    a = std::move(b);
    b = std::move(c);
  }
  CheckSa(ToInts(b), 256);
}

TEST(SaisTest, LargeIntegerAlphabet) {
  Rng rng(5);
  std::vector<int32_t> v(500);
  for (auto& x : v) x = static_cast<int32_t>(rng.Uniform(100000));
  CheckSa(v, 100000);
}

class SaisRandomTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SaisRandomTest, MatchesNaive) {
  const auto [length, alphabet, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 7919 + length * 31 + alphabet);
  std::vector<int32_t> v(length);
  for (auto& x : v) x = static_cast<int32_t>(rng.Uniform(alphabet));
  CheckSa(v, alphabet);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SaisRandomTest,
    ::testing::Combine(::testing::Values(2, 3, 10, 50, 257, 1000),
                       ::testing::Values(1, 2, 4, 26, 256),
                       ::testing::Values(1, 2, 3)));

// ---- LCP ----

std::vector<int32_t> NaiveLcp(const std::vector<int32_t>& text,
                              const std::vector<int32_t>& sa) {
  std::vector<int32_t> lcp(text.size(), 0);
  for (size_t i = 1; i < sa.size(); ++i) {
    int32_t a = sa[i - 1], b = sa[i], k = 0;
    while (a + k < static_cast<int32_t>(text.size()) &&
           b + k < static_cast<int32_t>(text.size()) &&
           text[a + k] == text[b + k]) {
      ++k;
    }
    lcp[i] = k;
  }
  return lcp;
}

TEST(LcpTest, Banana) {
  const auto text = ToInts("banana");
  const auto sa = BuildSuffixArray(text, 256);
  EXPECT_EQ(BuildLcpArray(text, sa), NaiveLcp(text, sa));
}

TEST(LcpTest, RandomStrings) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 1 + static_cast<int>(rng.Uniform(300));
    const int sigma = 1 + static_cast<int>(rng.Uniform(4));
    std::vector<int32_t> text(n);
    for (auto& x : text) x = static_cast<int32_t>(rng.Uniform(sigma));
    const auto sa = BuildSuffixArray(text, sigma);
    ASSERT_EQ(BuildLcpArray(text, sa), NaiveLcp(text, sa));
  }
}

TEST(LcpTest, Empty) {
  EXPECT_TRUE(BuildLcpArray({}, {}).empty());
}

// ---- Text ----

TEST(TextTest, MembersAndSentinels) {
  Text t;
  EXPECT_EQ(t.AppendMember(std::string("abc")), 0);
  EXPECT_EQ(t.AppendMember(std::string("de")), 1);
  EXPECT_EQ(t.num_members(), 2);
  EXPECT_EQ(t.size(), 7u);  // abc$0 de$1
  EXPECT_EQ(t.alphabet_size(), 258);
  EXPECT_FALSE(t.IsSentinel(0));
  EXPECT_TRUE(t.IsSentinel(3));
  EXPECT_TRUE(t.IsSentinel(6));
  EXPECT_EQ(t.chars()[3], 256);
  EXPECT_EQ(t.chars()[6], 257);
  EXPECT_EQ(t.MemberOf(0), 0);
  EXPECT_EQ(t.MemberOf(3), 0);
  EXPECT_EQ(t.MemberOf(4), 1);
  EXPECT_EQ(t.MemberOf(6), 1);
  EXPECT_EQ(t.MemberBegin(1), 4u);
  EXPECT_EQ(t.MemberEnd(1), 6u);
}

TEST(TextTest, FromRawRoundTrip) {
  Text t;
  t.AppendMember(std::string("xy"));
  t.AppendMember(std::string("z"));
  auto copy = Text::FromRaw(
      std::vector<int32_t>(t.chars().begin(), t.chars().end()),
      std::vector<int64_t>(t.member_starts().begin(),
                           t.member_starts().end()));
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy->chars(), t.chars());
  EXPECT_EQ(copy->num_members(), 2);
}

TEST(TextTest, FromRawRejectsBadSentinel) {
  Text t;
  t.AppendMember(std::string("ab"));
  std::vector<int32_t> chars(t.chars().begin(), t.chars().end());
  std::vector<int64_t> starts(t.member_starts().begin(),
                              t.member_starts().end());
  chars[2] = 999;  // clobber the sentinel
  EXPECT_TRUE(Text::FromRaw(std::move(chars), std::move(starts))
                  .status()
                  .IsCorruption());
}

TEST(TextTest, FromRawRejectsBadStarts) {
  Text t;
  t.AppendMember(std::string("ab"));
  const std::vector<int32_t> chars(t.chars().begin(), t.chars().end());
  EXPECT_TRUE(Text::FromRaw(chars, {0}).status().IsCorruption());
  EXPECT_TRUE(Text::FromRaw(chars, {1, 3}).status().IsCorruption());
}

TEST(TextTest, MapPatternHandlesHighBytes) {
  const auto p = Text::MapPattern(std::string("\xff\x01"));
  EXPECT_EQ(p, (std::vector<int32_t>{255, 1}));
}

// ---- SuffixTree ----

// Builds a single-member Text (so the no-prefix-suffix invariant holds).
Text MakeText(const std::string& s) {
  Text t;
  t.AppendMember(s);
  return t;
}

TEST(SuffixTreeTest, FindRangeBasics) {
  const Text t = MakeText("banana");
  const SuffixTree st = SuffixTree::Build(t.chars(), t.alphabet_size());
  // Suffix order: $ a$ ana$ anana$ banana$ na$ nana$ (with $ = sentinel).
  const auto r = st.FindRange(Text::MapPattern("ana"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->count(), 2);
  // All occurrences of "ana": positions 1 and 3.
  std::vector<int32_t> pos;
  for (int32_t i = r->begin; i < r->end; ++i) pos.push_back(st.sa()[i]);
  std::sort(pos.begin(), pos.end());
  EXPECT_EQ(pos, (std::vector<int32_t>{1, 3}));
  EXPECT_FALSE(st.FindRange(Text::MapPattern("nab")).has_value());
  EXPECT_FALSE(st.FindRange(Text::MapPattern("bananaX")).has_value());
}

TEST(SuffixTreeTest, EmptyPatternGivesFullRange) {
  const Text t = MakeText("abc");
  const SuffixTree st = SuffixTree::Build(t.chars(), t.alphabet_size());
  const auto r = st.FindRange({});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->locus, st.root());
  EXPECT_EQ(r->count(), 4);  // 3 chars + sentinel suffix
}

TEST(SuffixTreeTest, EverySubstringIsFound) {
  const std::string s = "mississippi";
  const Text t = MakeText(s);
  const SuffixTree st = SuffixTree::Build(t.chars(), t.alphabet_size());
  for (size_t i = 0; i < s.size(); ++i) {
    for (size_t len = 1; i + len <= s.size(); ++len) {
      const std::string sub = s.substr(i, len);
      const auto r = st.FindRange(Text::MapPattern(sub));
      ASSERT_TRUE(r.has_value()) << sub;
      // Count occurrences naively.
      int want = 0;
      for (size_t j = 0; j + len <= s.size(); ++j) {
        if (s.compare(j, len, sub) == 0) ++want;
      }
      ASSERT_EQ(r->count(), want) << sub;
    }
  }
}

TEST(SuffixTreeTest, PreorderSubtreeInvariants) {
  const Text t = MakeText("abracadabra");
  const SuffixTree st = SuffixTree::Build(t.chars(), t.alphabet_size());
  for (int32_t v = 0; v < st.num_nodes(); ++v) {
    EXPECT_LT(v, st.subtree_end(v));
    EXPECT_LE(st.subtree_end(v), st.num_nodes());
    if (v != st.root()) {
      const int32_t p = st.parent(v);
      EXPECT_TRUE(st.IsAncestor(p, v));
      EXPECT_LT(st.depth(p), st.depth(v));
      EXPECT_LE(st.sa_begin(p), st.sa_begin(v));
      EXPECT_GE(st.sa_end(p), st.sa_end(v));
    }
    // Children partition the parent's SA range.
    if (!st.is_leaf(v)) {
      int32_t at = st.sa_begin(v);
      for (int32_t k = 0; k < st.num_children(v); ++k) {
        const int32_t c = st.child_at(v, k);
        EXPECT_EQ(st.sa_begin(c), at);
        at = st.sa_end(c);
      }
      EXPECT_EQ(at, st.sa_end(v));
      EXPECT_GE(st.num_children(v), 2);
    }
  }
}

TEST(SuffixTreeTest, LeafMapping) {
  const Text t = MakeText("abcabx");
  const SuffixTree st = SuffixTree::Build(t.chars(), t.alphabet_size());
  for (int32_t i = 0; i < static_cast<int32_t>(t.size()); ++i) {
    const int32_t leaf = st.leaf_node(i);
    EXPECT_TRUE(st.is_leaf(leaf));
    EXPECT_EQ(st.sa_begin(leaf), i);
    // Leaf string depth = suffix length.
    EXPECT_EQ(st.depth(leaf),
              static_cast<int32_t>(t.size()) - st.sa()[i]);
  }
}

int32_t NaiveLca(const SuffixTree& st, int32_t u, int32_t v) {
  while (u != v) {
    if (u > v) {
      u = st.parent(u);
    } else {
      v = st.parent(v);
    }
  }
  return u;
}

TEST(SuffixTreeTest, LcaMatchesNaive) {
  const Text t = MakeText("abracadabraabracadabra");
  SuffixTree st = SuffixTree::Build(t.chars(), t.alphabet_size());
  st.BuildLcaSupport();
  Rng rng(3);
  for (int trial = 0; trial < 2000; ++trial) {
    const int32_t u = static_cast<int32_t>(rng.Uniform(st.num_nodes()));
    const int32_t v = static_cast<int32_t>(rng.Uniform(st.num_nodes()));
    ASSERT_EQ(st.Lca(u, v), NaiveLca(st, u, v)) << u << " " << v;
  }
}

TEST(SuffixTreeTest, LcaSurvivesMove) {
  // The Euler-tour accessor must capture move-stable state: moving a tree
  // that already has LCA support must not dangle.
  const Text t = MakeText("bananabandana");
  SuffixTree original = SuffixTree::Build(t.chars(), t.alphabet_size());
  original.BuildLcaSupport();
  const SuffixTree moved = std::move(original);
  Rng rng(41);
  for (int trial = 0; trial < 500; ++trial) {
    const int32_t u = static_cast<int32_t>(rng.Uniform(moved.num_nodes()));
    const int32_t v = static_cast<int32_t>(rng.Uniform(moved.num_nodes()));
    ASSERT_EQ(moved.Lca(u, v), NaiveLca(moved, u, v));
  }
}

TEST(SuffixTreeTest, MultiMemberTextSeparatesMembers) {
  Text t;
  t.AppendMember(std::string("abab"));
  t.AppendMember(std::string("aba"));
  const SuffixTree st = SuffixTree::Build(t.chars(), t.alphabet_size());
  const auto r = st.FindRange(Text::MapPattern("aba"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->count(), 2);  // one occurrence in each member
  // "abab" never crosses into the second member.
  const auto r2 = st.FindRange(Text::MapPattern("abaa"));
  EXPECT_FALSE(r2.has_value());
}

TEST(SuffixTreeTest, RandomTextsFindAllAndOnlySubstrings) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2 + static_cast<int>(rng.Uniform(120));
    std::string s;
    for (int i = 0; i < n; ++i) {
      s.push_back(static_cast<char>('a' + rng.Uniform(2)));
    }
    const Text t = MakeText(s);
    const SuffixTree st = SuffixTree::Build(t.chars(), t.alphabet_size());
    for (int q = 0; q < 50; ++q) {
      const size_t len = 1 + rng.Uniform(6);
      std::string p;
      for (size_t k = 0; k < len; ++k) {
        p.push_back(static_cast<char>('a' + rng.Uniform(2)));
      }
      const bool present = s.find(p) != std::string::npos;
      const auto r = st.FindRange(Text::MapPattern(p));
      ASSERT_EQ(r.has_value(), present) << s << " / " << p;
    }
  }
}

TEST(SuffixTreeTest, EmptyText) {
  const std::vector<int32_t> empty;
  const SuffixTree st = SuffixTree::Build(empty, 1);
  EXPECT_EQ(st.num_nodes(), 1);
  EXPECT_FALSE(st.FindRange(Text::MapPattern("a")).has_value());
}

TEST(SuffixTreeTest, DepthsAreStringDepths) {
  const Text t = MakeText("aaaa");
  const SuffixTree st = SuffixTree::Build(t.chars(), t.alphabet_size());
  // Internal nodes for prefixes a, aa, aaa exist with those depths.
  std::vector<int32_t> internal_depths;
  for (int32_t v = 0; v < st.num_nodes(); ++v) {
    if (!st.is_leaf(v) && v != st.root()) internal_depths.push_back(st.depth(v));
  }
  std::sort(internal_depths.begin(), internal_depths.end());
  EXPECT_EQ(internal_depths, (std::vector<int32_t>{1, 2, 3}));
}

}  // namespace
}  // namespace pti
