// net/server.h + net/client.h: a live loopback listener over a real
// ServingEngine. Round-trips must match the synchronous index exactly;
// pipelined responses come back in FIFO order with the right ids; hostile
// bytes (intact frame / broken framing) produce clean errors without
// stopping service to the connection (intact) or the server (broken);
// reload works over the wire under concurrent query traffic; and under
// overload the bounded batch lane sheds with Unavailable while the
// interactive lane keeps completing. The suite is in the sanitize and tsan
// CI regexes.

#include "net/server.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/substring_index.h"
#include "net/client.h"
#include "net/protocol.h"
#include "test_util.h"
#include "util/serial.h"

namespace pti {
namespace net {
namespace {

constexpr double kTauMin = 0.05;
constexpr const char* kHost = "127.0.0.1";

UncertainString MakeString(int64_t length, uint64_t seed) {
  test::RandomStringSpec spec;
  spec.length = length;
  spec.alphabet = 4;
  spec.seed = seed;
  return test::RandomUncertain(spec);
}

SubstringIndex BuildMono(const UncertainString& s) {
  IndexOptions options;
  options.transform.tau_min = kTauMin;
  auto index = SubstringIndex::Build(s, options);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  return std::move(index).value();
}

// Engine + started server + the synchronous reference index, torn down in
// the right order (server stops before the engine it borrows).
struct LiveServer {
  explicit LiveServer(const UncertainString& s,
                      ServingOptions engine_options = {},
                      NetServerOptions server_options = {})
      : reference(BuildMono(s)),
        engine(BuildMono(s), engine_options),
        server(&engine, server_options) {
    const Status started = server.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~LiveServer() {
    server.Stop();
    engine.Stop();
  }

  SubstringIndex reference;
  ServingEngine engine;
  NetServer server;
};

TEST(NetServerTest, RoundTripMatchesTheSynchronousPath) {
  const UncertainString s = MakeString(300, 11);
  LiveServer live(s);

  NetClient client;
  ASSERT_TRUE(client.Connect(kHost, live.server.port()).ok());
  Rng rng(12);
  for (int q = 0; q < 40; ++q) {
    const size_t len = 1 + rng.Uniform(6);
    Request request;
    request.pattern = test::PatternFromString(
        s, static_cast<int64_t>(rng.Uniform(s.size() - len + 1)), len,
        rng.Next());
    request.tau = (q % 2) ? 0.1 : 0.3;

    std::vector<Match> expected;
    const Status expected_status =
        live.reference.Query(request.pattern, request.tau, &expected);
    std::vector<Match> matches;
    const Status status = client.Query(request, &matches);
    EXPECT_EQ(status.code(), expected_status.code())
        << "query #" << q << ": " << status.ToString();
    // Bit-identical across the wire: doubles travel as their exact bits.
    EXPECT_TRUE(matches == expected) << "query #" << q;
  }
  const auto stats = live.server.stats();
  EXPECT_EQ(stats.queries, 40u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.connections_accepted, 1u);
}

TEST(NetServerTest, InvalidRequestsComeBackAsStatusesNotDisconnects) {
  const UncertainString s = MakeString(200, 21);
  LiveServer live(s);

  NetClient client;
  ASSERT_TRUE(client.Connect(kHost, live.server.port()).ok());
  std::vector<Match> matches;

  // Empty pattern: InvalidArgument from the index, carried over the wire.
  EXPECT_TRUE(client.Query({"", 0.2}, &matches).IsInvalidArgument());
  // k above kMaxFuzzyErrors: answered (NotSupported) without queueing.
  EXPECT_TRUE(client.Query({"ac", 0.2, FuzzyMetric::kMismatch, 7}, &matches)
                  .IsNotSupported());
  // k outside the u8 wire field: rejected client-side before encoding — a
  // masked k=256 would silently go out as an exact-match query.
  EXPECT_TRUE(client.Query({"ac", 0.2, FuzzyMetric::kMismatch, 256}, &matches)
                  .IsInvalidArgument());
  EXPECT_TRUE(client.Query({"ac", 0.2, FuzzyMetric::kMismatch, -1}, &matches)
                  .IsInvalidArgument());
  uint64_t id = 0;
  EXPECT_TRUE(
      client.SendQuery({"ac", 0.2, FuzzyMetric::kMismatch, 256}, &id)
          .IsInvalidArgument());
  // The connection is still serving.
  const std::string pattern = test::PatternFromString(s, 5, 3, 22);
  EXPECT_TRUE(client.Query({pattern, 0.2}, &matches).ok());
}

TEST(NetServerTest, PipelinedResponsesArriveInOrderWithMatchingIds) {
  const UncertainString s = MakeString(250, 31);
  LiveServer live(s);

  NetClient client;
  ASSERT_TRUE(client.Connect(kHost, live.server.port()).ok());

  constexpr size_t kPipelined = 32;
  Rng rng(32);
  std::vector<uint64_t> ids;
  std::vector<Request> requests;
  for (size_t q = 0; q < kPipelined; ++q) {
    const size_t len = 1 + rng.Uniform(5);
    Request request;
    request.pattern = test::PatternFromString(
        s, static_cast<int64_t>(rng.Uniform(s.size() - len + 1)), len,
        rng.Next());
    request.tau = 0.2;
    uint64_t id = 0;
    ASSERT_TRUE(client.SendQuery(request, &id).ok());
    ids.push_back(id);
    requests.push_back(std::move(request));
  }
  for (size_t q = 0; q < kPipelined; ++q) {
    Frame frame;
    ASSERT_TRUE(client.Receive(&frame).ok()) << "response #" << q;
    EXPECT_EQ(frame.type, FrameType::kResult);
    // FIFO: response q answers request q, echoing its id.
    EXPECT_EQ(frame.id, ids[q]);
    std::vector<Match> expected;
    const Status expected_status =
        live.reference.Query(requests[q].pattern, requests[q].tau, &expected);
    EXPECT_EQ(frame.code, expected_status.code());
    EXPECT_TRUE(frame.matches == expected) << "response #" << q;
  }
}

TEST(NetServerTest, HostilePayloadGetsErrorAndConnectionKeepsServing) {
  const UncertainString s = MakeString(200, 41);
  LiveServer live(s);

  NetClient client;
  ASSERT_TRUE(client.Connect(kHost, live.server.port()).ok());

  // A well-framed payload with a hostile body: bad metric tag behind a
  // valid (type, id) prefix. Build the frame by hand.
  Writer payload;
  payload.PutU8(static_cast<uint8_t>(FrameType::kQuery));
  payload.PutU64(907);
  payload.PutDouble(0.5);
  payload.PutU8(9);  // metric out of range
  payload.PutU8(0);
  payload.PutU8(0);
  payload.PutU8(0);
  payload.PutString("ac");
  const std::string body = payload.Take();
  Writer frame;
  frame.PutU32(kFrameMagic);
  frame.PutU32(static_cast<uint32_t>(body.size()));
  const std::string head = frame.Take();
  ASSERT_TRUE(client.SendRaw(head.data(), head.size()).ok());
  ASSERT_TRUE(client.SendRaw(body.data(), body.size()).ok());

  // The server answers with an addressable error and keeps the connection.
  Frame response;
  ASSERT_TRUE(client.Receive(&response).ok());
  EXPECT_EQ(response.type, FrameType::kResult);
  EXPECT_EQ(response.id, 907u);
  EXPECT_EQ(response.code, Status::Code::kCorruption);

  const std::string pattern = test::PatternFromString(s, 5, 3, 42);
  std::vector<Match> matches;
  EXPECT_TRUE(client.Query({pattern, 0.2}, &matches).ok());
  EXPECT_EQ(live.server.stats().protocol_errors, 1u);
}

TEST(NetServerTest, BrokenFramingClosesOnlyTheOffendingConnection) {
  const UncertainString s = MakeString(200, 51);
  LiveServer live(s);
  const std::string pattern = test::PatternFromString(s, 5, 3, 52);

  NetClient honest;
  ASSERT_TRUE(honest.Connect(kHost, live.server.port()).ok());

  {
    NetClient hostile;
    ASSERT_TRUE(hostile.Connect(kHost, live.server.port()).ok());
    const char garbage[16] = {'g', 'a', 'r', 'b', 'a', 'g', 'e', '!',
                              'g', 'a', 'r', 'b', 'a', 'g', 'e', '!'};
    ASSERT_TRUE(hostile.SendRaw(garbage, sizeof(garbage)).ok());
    // Best-effort error (id 0, Corruption), then the stream ends: there is
    // no frame boundary left to resync on.
    Frame response;
    const Status received = hostile.Receive(&response);
    if (received.ok()) {
      EXPECT_EQ(response.id, 0u);
      EXPECT_EQ(response.code, Status::Code::kCorruption);
      EXPECT_TRUE(hostile.Receive(&response).IsIOError());
    }
  }

  // The honest connection (and new ones) never noticed.
  std::vector<Match> matches;
  EXPECT_TRUE(honest.Query({pattern, 0.2}, &matches).ok());
  NetClient late;
  ASSERT_TRUE(late.Connect(kHost, live.server.port()).ok());
  EXPECT_TRUE(late.Query({pattern, 0.2}, &matches).ok());
  EXPECT_GE(live.server.stats().protocol_errors, 1u);
}

TEST(NetServerTest, TruncatedFrameMidPayloadIsACleanDisconnect) {
  const UncertainString s = MakeString(200, 61);
  LiveServer live(s);

  NetClient client;
  ASSERT_TRUE(client.Connect(kHost, live.server.port()).ok());
  // A valid header promising 100 payload bytes, then EOF after 10.
  Writer w;
  w.PutU32(kFrameMagic);
  w.PutU32(100);
  const std::string head = w.Take();
  ASSERT_TRUE(client.SendRaw(head.data(), head.size()).ok());
  ASSERT_TRUE(client.SendRaw("tenbytes!!", 10).ok());
  client.Close();

  // The server shrugs it off; a fresh connection is served.
  NetClient next;
  ASSERT_TRUE(next.Connect(kHost, live.server.port()).ok());
  const std::string pattern = test::PatternFromString(s, 5, 3, 62);
  std::vector<Match> matches;
  EXPECT_TRUE(next.Query({pattern, 0.2}, &matches).ok());
}

TEST(NetServerTest, StatsFrameReportsEngineCounters) {
  const UncertainString s = MakeString(200, 71);
  LiveServer live(s);

  NetClient client;
  ASSERT_TRUE(client.Connect(kHost, live.server.port()).ok());
  const std::string pattern = test::PatternFromString(s, 5, 3, 72);
  std::vector<Match> matches;
  ASSERT_TRUE(client.Query({pattern, 0.2}, &matches).ok());
  ASSERT_TRUE(client.Query({pattern, 0.2}, &matches).ok());

  std::vector<uint64_t> counters;
  ASSERT_TRUE(client.QueryStats(&counters).ok());
  ASSERT_GE(counters.size(), kStatsFields);
  const std::vector<uint64_t> expected = FlattenStats(live.engine.stats());
  EXPECT_EQ(counters, expected);
  EXPECT_EQ(counters[0], 2u);  // submitted
  EXPECT_EQ(counters[1], 2u);  // completed
  EXPECT_EQ(counters[4], 1u);  // cache_hits: the repeat
}

TEST(NetServerTest, ReloadOverTheWireSwapsUnderConcurrentTraffic) {
  const UncertainString s = MakeString(250, 81);
  LiveServer live(s);

  // Serialize a compact build of the same string to disk: either
  // generation answers identically, so traffic during the swap has one
  // right answer.
  const std::string path = ::testing::TempDir() + "pti_net_reload.pti";
  {
    IndexOptions options;
    options.transform.tau_min = kTauMin;
    options.compact = true;
    auto compact = SubstringIndex::Build(s, options);
    ASSERT_TRUE(compact.ok());
    std::string blob;
    ASSERT_TRUE(compact->Save(&blob).ok());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    ASSERT_TRUE(out.good());
  }

  // One connection hammers queries while another issues reloads.
  std::atomic<bool> done{false};
  std::thread traffic([&] {
    NetClient client;
    ASSERT_TRUE(client.Connect(kHost, live.server.port()).ok());
    Rng rng(82);
    while (!done.load(std::memory_order_relaxed)) {
      const size_t len = 1 + rng.Uniform(5);
      Request request;
      request.pattern = test::PatternFromString(
          s, static_cast<int64_t>(rng.Uniform(s.size() - len + 1)), len,
          rng.Next());
      request.tau = 0.2;
      std::vector<Match> expected;
      const Status expected_status =
          live.reference.Query(request.pattern, request.tau, &expected);
      std::vector<Match> matches;
      const Status status = client.Query(request, &matches);
      ASSERT_TRUE(client.connected());
      EXPECT_EQ(status.code(), expected_status.code());
      EXPECT_TRUE(matches == expected);
    }
  });

  NetClient admin;
  ASSERT_TRUE(admin.Connect(kHost, live.server.port()).ok());
  for (int r = 0; r < 5; ++r) {
    const Status reloaded = admin.Reload(path, /*use_mmap=*/true);
    EXPECT_TRUE(reloaded.ok()) << reloaded.ToString();
  }
  // A failed reload is an error status, not a dropped connection, and the
  // serving generation survives.
  EXPECT_FALSE(admin.Reload(path + ".absent", true).ok());
  EXPECT_TRUE(admin.connected());

  done.store(true, std::memory_order_relaxed);
  traffic.join();

  const auto stats = live.engine.stats();
  EXPECT_EQ(stats.reloads, 5u);
  EXPECT_EQ(stats.generation, 6u);
  EXPECT_EQ(live.server.stats().reloads, 6u);  // attempts, incl. the failure
  std::remove(path.c_str());
}

TEST(NetServerTest, OverloadShedsBatchWhileInteractiveCompletes) {
  const UncertainString s = MakeString(200, 91);

  // One worker pinned in a long linger window with room for 2 requests per
  // lane: admission outcomes are decided while the lanes provably hold
  // their requests (same recipe as the engine-level admission tests).
  ServingOptions engine_options;
  engine_options.num_workers = 1;
  engine_options.max_batch = 64;
  engine_options.linger_us = 300000;
  engine_options.cache_bytes = 0;
  engine_options.max_pending = 2;
  LiveServer live(s, engine_options);

  NetClient batch_client;
  ASSERT_TRUE(batch_client.Connect(kHost, live.server.port()).ok());
  NetClient interactive_client;
  ASSERT_TRUE(interactive_client.Connect(kHost, live.server.port()).ok());

  // Pipeline 5 distinct batch-lane queries: 2 occupy the lane, 3 shed.
  std::vector<uint64_t> ids;
  for (int q = 0; q < 5; ++q) {
    Request request;
    request.pattern = test::PatternFromString(s, 4 + 7 * q, 3, 92 + q);
    request.tau = 0.2;
    request.priority = Priority::kBatch;
    uint64_t id = 0;
    ASSERT_TRUE(batch_client.SendQuery(request, &id).ok());
    ids.push_back(id);
  }

  // The interactive lane is bounded independently: this request is
  // admitted and answered even though the batch lane is over capacity.
  const std::string pattern = test::PatternFromString(s, 40, 3, 99);
  std::vector<Match> matches;
  const Status interactive = interactive_client.Query({pattern, 0.2}, &matches);
  EXPECT_TRUE(interactive.ok()) << interactive.ToString();

  size_t ok = 0, unavailable = 0;
  for (size_t q = 0; q < ids.size(); ++q) {
    Frame frame;
    ASSERT_TRUE(batch_client.Receive(&frame).ok());
    EXPECT_EQ(frame.id, ids[q]);
    if (frame.code == Status::Code::kOk) {
      ++ok;
    } else {
      // Load shed is a first-class, retryable wire status.
      EXPECT_EQ(frame.code, Status::Code::kUnavailable);
      ++unavailable;
    }
  }
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(unavailable, 3u);

  const auto stats = live.engine.stats();
  EXPECT_EQ(stats.batch_shed, 3u);
  EXPECT_EQ(stats.interactive_shed, 0u);
  EXPECT_EQ(stats.interactive_completed, 1u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.shed + stats.rejected);
}

TEST(NetServerTest, OversizedResultIsResourceExhaustedNotADisconnect) {
  // A certain unary string: the single-character pattern matches at every
  // position, overflowing the 1 MiB kResult frame cap by construction.
  UncertainString s;
  const int64_t n = static_cast<int64_t>(kMaxResultMatches) + 1000;
  for (int64_t i = 0; i < n; ++i) {
    s.AddPosition({{static_cast<uint8_t>('a'), 1.0}});
  }
  ServingEngine engine(BuildMono(s), {});
  NetServer server(&engine);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect(kHost, server.port()).ok());
  std::vector<Match> matches;
  const Status overflow = client.Query({"a", 0.5}, &matches);
  // The in-process path returns all n matches; one frame cannot carry
  // them, so the wire degrades to a retryable per-request status...
  EXPECT_TRUE(overflow.IsResourceExhausted()) << overflow.ToString();
  EXPECT_TRUE(matches.empty());
  // ...and the connection (not just the server) keeps serving.
  const Status after = client.Query({"b", 0.5}, &matches);
  EXPECT_TRUE(after.ok()) << after.ToString();
  EXPECT_TRUE(matches.empty());
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(server.stats().protocol_errors, 0u);

  server.Stop();
  engine.Stop();
}

TEST(NetServerTest, ConcurrentStopCallsBlockUntilTeardownCompletes) {
  const UncertainString s = MakeString(150, 111);
  auto live = std::make_unique<LiveServer>(s);
  NetClient client;
  ASSERT_TRUE(client.Connect(kHost, live->server.port()).ok());
  const std::string pattern = test::PatternFromString(s, 5, 3, 112);
  std::vector<Match> matches;
  ASSERT_TRUE(client.Query({pattern, 0.2}, &matches).ok());

  // Every Stop() must block until the one that wins has joined all server
  // threads; returning early would let the destructor free the server
  // while another Stop is still mid-join (TSan-checked).
  std::vector<std::thread> stoppers;
  for (int t = 0; t < 4; ++t) {
    stoppers.emplace_back([&] { live->server.Stop(); });
  }
  for (std::thread& th : stoppers) th.join();
  live.reset();
}

TEST(NetServerTest, ServerStopLeavesCleanlyWithClientsConnected) {
  const UncertainString s = MakeString(150, 101);
  auto live = std::make_unique<LiveServer>(s);
  NetClient client;
  ASSERT_TRUE(client.Connect(kHost, live->server.port()).ok());
  const std::string pattern = test::PatternFromString(s, 5, 3, 102);
  std::vector<Match> matches;
  ASSERT_TRUE(client.Query({pattern, 0.2}, &matches).ok());

  live->server.Stop();
  // The client sees a closed stream, not a hang.
  const Status gone = client.Query({pattern, 0.2}, &matches);
  EXPECT_FALSE(gone.ok());
  // Stop is idempotent and destruction after Stop is clean.
  live->server.Stop();
  live.reset();
}

}  // namespace
}  // namespace net
}  // namespace pti
