// Tests for the compact index mode (IndexOptions::compact): FM-index locus
// lookups must give answers identical to the suffix-tree mode, at a fraction
// of the memory, with save/load support.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/brute_force.h"
#include "core/substring_index.h"
#include "datagen/datagen.h"
#include "test_util.h"

namespace pti {
namespace {

TEST(CompactIndexTest, AnswersMatchFullMode) {
  test::RandomStringSpec spec{.length = 150, .alphabet = 3, .theta = 0.5,
                              .seed = 404};
  const UncertainString s = test::RandomUncertain(spec);
  IndexOptions full_options;
  full_options.transform.tau_min = 0.1;
  IndexOptions compact_options = full_options;
  compact_options.compact = true;
  const auto full = SubstringIndex::Build(s, full_options);
  const auto compact = SubstringIndex::Build(s, compact_options);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(compact.ok());
  Rng rng(405);
  for (int q = 0; q < 80; ++q) {
    const size_t len = 1 + rng.Uniform(10);
    std::string pattern;
    if (q % 3 == 0) {
      pattern = test::RandomPattern(3, len, rng.Next());
    } else {
      const int64_t start =
          static_cast<int64_t>(rng.Uniform(s.size() - len + 1));
      pattern = test::PatternFromString(s, start, len, rng.Next());
    }
    for (const double tau : {0.1, 0.25, 0.6}) {
      std::vector<Match> a, b;
      ASSERT_TRUE(full->Query(pattern, tau, &a).ok());
      ASSERT_TRUE(compact->Query(pattern, tau, &b).ok());
      ASSERT_TRUE(test::SameMatches(a, b, 0.0))
          << pattern << " tau=" << tau
          << "\nfull:    " << test::MatchesToString(a)
          << "\ncompact: " << test::MatchesToString(b);
    }
  }
}

TEST(CompactIndexTest, MatchesOracleDirectly) {
  test::RandomStringSpec spec{.length = 120, .alphabet = 2, .theta = 0.6,
                              .seed = 406};
  const UncertainString s = test::RandomUncertain(spec);
  IndexOptions options;
  options.transform.tau_min = 0.1;
  options.compact = true;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  Rng rng(407);
  for (int q = 0; q < 60; ++q) {
    const std::string pattern =
        test::RandomPattern(2, 1 + rng.Uniform(8), rng.Next());
    std::vector<Match> got;
    ASSERT_TRUE(index->Query(pattern, 0.15, &got).ok());
    ASSERT_TRUE(test::SameMatches(got, BruteForceSearch(s, pattern, 0.15)))
        << pattern;
  }
}

TEST(CompactIndexTest, SubstantiallySmallerAtScale) {
  DatasetOptions data;
  data.length = 20000;
  data.theta = 0.3;
  data.seed = 55;
  const UncertainString s = GenerateUncertainString(data);
  IndexOptions full_options;
  full_options.transform.tau_min = 0.1;
  IndexOptions compact_options = full_options;
  compact_options.compact = true;
  const auto full = SubstringIndex::Build(s, full_options);
  const auto compact = SubstringIndex::Build(s, compact_options);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(compact.ok());
  // At this scale the tree is ~40% of the total; the ratio grows with N
  // (see bench_ablation_compact for the at-scale numbers).
  EXPECT_LT(compact->MemoryUsage() * 3, full->MemoryUsage() * 2)
      << "compact " << compact->MemoryUsage() << " vs full "
      << full->MemoryUsage();
  // Same answers on a spot-check workload.
  const auto patterns = SamplePatterns(s, 20, 6, 77);
  for (const auto& p : patterns) {
    std::vector<Match> a, b;
    ASSERT_TRUE(full->Query(p, 0.2, &a).ok());
    ASSERT_TRUE(compact->Query(p, 0.2, &b).ok());
    ASSERT_TRUE(test::SameMatches(a, b, 0.0)) << p;
  }
}

TEST(CompactIndexTest, TopKAndCountWork) {
  test::RandomStringSpec spec{.length = 80, .alphabet = 2, .theta = 0.5,
                              .seed = 408};
  const UncertainString s = test::RandomUncertain(spec);
  IndexOptions options;
  options.transform.tau_min = 0.1;
  options.compact = true;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::vector<Match> all, top;
  ASSERT_TRUE(index->Query("ab", 0.1, &all).ok());
  ASSERT_TRUE(index->QueryTopK("ab", 0.1, 3, &top).ok());
  EXPECT_EQ(top.size(), std::min<size_t>(3, all.size()));
  size_t count = 0;
  ASSERT_TRUE(index->Count("ab", 0.1, &count).ok());
  EXPECT_EQ(count, all.size());
}

TEST(CompactIndexTest, SaveLoadPreservesCompactMode) {
  test::RandomStringSpec spec{.length = 60, .alphabet = 3, .theta = 0.4,
                              .seed = 409};
  const UncertainString s = test::RandomUncertain(spec);
  IndexOptions options;
  options.transform.tau_min = 0.1;
  options.compact = true;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::string blob;
  ASSERT_TRUE(index->Save(&blob).ok());
  const auto loaded = SubstringIndex::Load(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->options().compact);
  Rng rng(410);
  for (int q = 0; q < 30; ++q) {
    const std::string pattern =
        test::RandomPattern(3, 1 + rng.Uniform(6), rng.Next());
    std::vector<Match> a, b;
    ASSERT_TRUE(index->Query(pattern, 0.2, &a).ok());
    ASSERT_TRUE(loaded->Query(pattern, 0.2, &b).ok());
    ASSERT_TRUE(test::SameMatches(a, b, 0.0)) << pattern;
  }
}

// Batch workload mixing duplicates, shared suffixes (the compact batch
// path sorts by reversed pattern and resumes backward search from shared
// suffixes), absent patterns and distinct taus.
std::vector<BatchQuery> MixedBatch(const UncertainString& s, uint64_t seed,
                                   size_t count) {
  Rng rng(seed);
  std::vector<BatchQuery> batch;
  for (size_t k = 0; k < count; ++k) {
    std::string pattern;
    const size_t len = 1 + rng.Uniform(7);
    if (k % 4 == 0) {
      pattern = test::RandomPattern(3, len, rng.Next());
    } else {
      const int64_t start =
          static_cast<int64_t>(rng.Uniform(s.size() - len + 1));
      pattern = test::PatternFromString(s, start, len, rng.Next());
    }
    const double tau = 0.1 + 0.2 * static_cast<double>(rng.Uniform(4));
    batch.push_back({pattern, tau});
    if (k % 5 == 0) {
      // Same pattern again at another tau: group dedup must re-filter.
      batch.push_back({pattern, std::min(1.0, tau + 0.15)});
    }
  }
  return batch;
}

void ExpectSameBatchResults(const std::vector<std::vector<Match>>& a,
                            const std::vector<std::vector<Match>>& b,
                            const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(test::SameMatches(a[i], b[i], 0.0))
        << what << " query #" << i << "\na: " << test::MatchesToString(a[i])
        << "\nb: " << test::MatchesToString(b[i]);
  }
}

TEST(CompactIndexTest, QueryBatchMatchesTreeModeAndQueryLoop) {
  test::RandomStringSpec spec{.length = 200, .alphabet = 3, .theta = 0.5,
                              .seed = 420};
  const UncertainString s = test::RandomUncertain(spec);
  IndexOptions full_options;
  full_options.transform.tau_min = 0.1;
  IndexOptions compact_options = full_options;
  compact_options.compact = true;
  const auto full = SubstringIndex::Build(s, full_options);
  const auto compact = SubstringIndex::Build(s, compact_options);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(compact.ok());
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const auto batch = MixedBatch(s, 421 + seed, 60);
    std::vector<std::vector<Match>> tree_out, compact_out;
    ASSERT_TRUE(full->QueryBatch(batch, &tree_out).ok());
    ASSERT_TRUE(compact->QueryBatch(batch, &compact_out).ok());
    ExpectSameBatchResults(tree_out, compact_out, "tree vs compact batch");
    // And against the one-at-a-time compact path.
    for (size_t i = 0; i < batch.size(); ++i) {
      std::vector<Match> one;
      ASSERT_TRUE(
          compact->Query(batch[i].pattern, batch[i].tau, &one).ok());
      ASSERT_TRUE(test::SameMatches(one, compact_out[i], 0.0))
          << batch[i].pattern << " tau=" << batch[i].tau;
    }
  }
}

TEST(CompactIndexTest, QueryBatchAfterLoadMatchesTreeMode) {
  test::RandomStringSpec spec{.length = 180, .alphabet = 3, .theta = 0.4,
                              .seed = 430};
  const UncertainString s = test::RandomUncertain(spec);
  IndexOptions full_options;
  full_options.transform.tau_min = 0.1;
  IndexOptions compact_options = full_options;
  compact_options.compact = true;
  const auto full = SubstringIndex::Build(s, full_options);
  const auto compact = SubstringIndex::Build(s, compact_options);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(compact.ok());
  std::string blob;
  ASSERT_TRUE(compact->Save(&blob).ok());
  const auto loaded = SubstringIndex::Load(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // The blob carries the suffix array, so Load skipped SA-IS entirely.
  EXPECT_TRUE(SubstringIndexTestPeer::SaLoadedFromSection(*loaded));
  const auto batch = MixedBatch(s, 431, 80);
  std::vector<std::vector<Match>> tree_out, loaded_out;
  ASSERT_TRUE(full->QueryBatch(batch, &tree_out).ok());
  ASSERT_TRUE(loaded->QueryBatch(batch, &loaded_out).ok());
  ExpectSameBatchResults(tree_out, loaded_out, "tree vs loaded compact");
}

TEST(CompactIndexTest, TreeModeLoadDoesNotUseSaSection) {
  test::RandomStringSpec spec{.length = 60, .alphabet = 3, .theta = 0.4,
                              .seed = 440};
  const UncertainString s = test::RandomUncertain(spec);
  IndexOptions options;
  options.transform.tau_min = 0.1;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::string blob;
  ASSERT_TRUE(index->Save(&blob).ok());
  const auto loaded = SubstringIndex::Load(blob);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(SubstringIndexTestPeer::SaLoadedFromSection(*loaded));
}

TEST(CompactIndexTest, EmptyString) {
  IndexOptions options;
  options.compact = true;
  const auto index = SubstringIndex::Build(UncertainString(), options);
  ASSERT_TRUE(index.ok());
  std::vector<Match> out;
  EXPECT_TRUE(index->Query("a", 0.5, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(CompactIndexTest, LongPatternsAllBlockingModes) {
  test::RandomStringSpec spec{.length = 300, .alphabet = 2, .theta = 0.15,
                              .seed = 411};
  const UncertainString s = test::RandomUncertain(spec);
  for (const BlockingMode mode :
       {BlockingMode::kPow2, BlockingMode::kPaperExact,
        BlockingMode::kScanOnly}) {
    IndexOptions options;
    options.transform.tau_min = 0.1;
    options.max_short_depth = 3;
    options.blocking = mode;
    options.scan_cutoff = 2;
    options.compact = true;
    const auto index = SubstringIndex::Build(s, options);
    ASSERT_TRUE(index.ok());
    Rng rng(412);
    for (int q = 0; q < 25; ++q) {
      const size_t len = 4 + rng.Uniform(10);
      const int64_t start =
          static_cast<int64_t>(rng.Uniform(s.size() - len + 1));
      const std::string pattern =
          test::PatternFromString(s, start, len, rng.Next());
      std::vector<Match> got;
      ASSERT_TRUE(index->Query(pattern, 0.12, &got).ok());
      ASSERT_TRUE(test::SameMatches(got, BruteForceSearch(s, pattern, 0.12)))
          << pattern;
    }
  }
}

}  // namespace
}  // namespace pti
