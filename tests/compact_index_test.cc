// Tests for the compact index mode (IndexOptions::compact): FM-index locus
// lookups must give answers identical to the suffix-tree mode, at a fraction
// of the memory, with save/load support.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/brute_force.h"
#include "core/substring_index.h"
#include "datagen/datagen.h"
#include "test_util.h"

namespace pti {
namespace {

TEST(CompactIndexTest, AnswersMatchFullMode) {
  test::RandomStringSpec spec{.length = 150, .alphabet = 3, .theta = 0.5,
                              .seed = 404};
  const UncertainString s = test::RandomUncertain(spec);
  IndexOptions full_options;
  full_options.transform.tau_min = 0.1;
  IndexOptions compact_options = full_options;
  compact_options.compact = true;
  const auto full = SubstringIndex::Build(s, full_options);
  const auto compact = SubstringIndex::Build(s, compact_options);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(compact.ok());
  Rng rng(405);
  for (int q = 0; q < 80; ++q) {
    const size_t len = 1 + rng.Uniform(10);
    std::string pattern;
    if (q % 3 == 0) {
      pattern = test::RandomPattern(3, len, rng.Next());
    } else {
      const int64_t start =
          static_cast<int64_t>(rng.Uniform(s.size() - len + 1));
      pattern = test::PatternFromString(s, start, len, rng.Next());
    }
    for (const double tau : {0.1, 0.25, 0.6}) {
      std::vector<Match> a, b;
      ASSERT_TRUE(full->Query(pattern, tau, &a).ok());
      ASSERT_TRUE(compact->Query(pattern, tau, &b).ok());
      ASSERT_TRUE(test::SameMatches(a, b, 0.0))
          << pattern << " tau=" << tau
          << "\nfull:    " << test::MatchesToString(a)
          << "\ncompact: " << test::MatchesToString(b);
    }
  }
}

TEST(CompactIndexTest, MatchesOracleDirectly) {
  test::RandomStringSpec spec{.length = 120, .alphabet = 2, .theta = 0.6,
                              .seed = 406};
  const UncertainString s = test::RandomUncertain(spec);
  IndexOptions options;
  options.transform.tau_min = 0.1;
  options.compact = true;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  Rng rng(407);
  for (int q = 0; q < 60; ++q) {
    const std::string pattern =
        test::RandomPattern(2, 1 + rng.Uniform(8), rng.Next());
    std::vector<Match> got;
    ASSERT_TRUE(index->Query(pattern, 0.15, &got).ok());
    ASSERT_TRUE(test::SameMatches(got, BruteForceSearch(s, pattern, 0.15)))
        << pattern;
  }
}

TEST(CompactIndexTest, SubstantiallySmallerAtScale) {
  DatasetOptions data;
  data.length = 20000;
  data.theta = 0.3;
  data.seed = 55;
  const UncertainString s = GenerateUncertainString(data);
  IndexOptions full_options;
  full_options.transform.tau_min = 0.1;
  IndexOptions compact_options = full_options;
  compact_options.compact = true;
  const auto full = SubstringIndex::Build(s, full_options);
  const auto compact = SubstringIndex::Build(s, compact_options);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(compact.ok());
  // At this scale the tree is ~40% of the total; the ratio grows with N
  // (see bench_ablation_compact for the at-scale numbers).
  EXPECT_LT(compact->MemoryUsage() * 3, full->MemoryUsage() * 2)
      << "compact " << compact->MemoryUsage() << " vs full "
      << full->MemoryUsage();
  // Same answers on a spot-check workload.
  const auto patterns = SamplePatterns(s, 20, 6, 77);
  for (const auto& p : patterns) {
    std::vector<Match> a, b;
    ASSERT_TRUE(full->Query(p, 0.2, &a).ok());
    ASSERT_TRUE(compact->Query(p, 0.2, &b).ok());
    ASSERT_TRUE(test::SameMatches(a, b, 0.0)) << p;
  }
}

TEST(CompactIndexTest, TopKAndCountWork) {
  test::RandomStringSpec spec{.length = 80, .alphabet = 2, .theta = 0.5,
                              .seed = 408};
  const UncertainString s = test::RandomUncertain(spec);
  IndexOptions options;
  options.transform.tau_min = 0.1;
  options.compact = true;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::vector<Match> all, top;
  ASSERT_TRUE(index->Query("ab", 0.1, &all).ok());
  ASSERT_TRUE(index->QueryTopK("ab", 0.1, 3, &top).ok());
  EXPECT_EQ(top.size(), std::min<size_t>(3, all.size()));
  size_t count = 0;
  ASSERT_TRUE(index->Count("ab", 0.1, &count).ok());
  EXPECT_EQ(count, all.size());
}

TEST(CompactIndexTest, SaveLoadPreservesCompactMode) {
  test::RandomStringSpec spec{.length = 60, .alphabet = 3, .theta = 0.4,
                              .seed = 409};
  const UncertainString s = test::RandomUncertain(spec);
  IndexOptions options;
  options.transform.tau_min = 0.1;
  options.compact = true;
  const auto index = SubstringIndex::Build(s, options);
  ASSERT_TRUE(index.ok());
  std::string blob;
  ASSERT_TRUE(index->Save(&blob).ok());
  const auto loaded = SubstringIndex::Load(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->options().compact);
  Rng rng(410);
  for (int q = 0; q < 30; ++q) {
    const std::string pattern =
        test::RandomPattern(3, 1 + rng.Uniform(6), rng.Next());
    std::vector<Match> a, b;
    ASSERT_TRUE(index->Query(pattern, 0.2, &a).ok());
    ASSERT_TRUE(loaded->Query(pattern, 0.2, &b).ok());
    ASSERT_TRUE(test::SameMatches(a, b, 0.0)) << pattern;
  }
}

TEST(CompactIndexTest, EmptyString) {
  IndexOptions options;
  options.compact = true;
  const auto index = SubstringIndex::Build(UncertainString(), options);
  ASSERT_TRUE(index.ok());
  std::vector<Match> out;
  EXPECT_TRUE(index->Query("a", 0.5, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(CompactIndexTest, LongPatternsAllBlockingModes) {
  test::RandomStringSpec spec{.length = 300, .alphabet = 2, .theta = 0.15,
                              .seed = 411};
  const UncertainString s = test::RandomUncertain(spec);
  for (const BlockingMode mode :
       {BlockingMode::kPow2, BlockingMode::kPaperExact,
        BlockingMode::kScanOnly}) {
    IndexOptions options;
    options.transform.tau_min = 0.1;
    options.max_short_depth = 3;
    options.blocking = mode;
    options.scan_cutoff = 2;
    options.compact = true;
    const auto index = SubstringIndex::Build(s, options);
    ASSERT_TRUE(index.ok());
    Rng rng(412);
    for (int q = 0; q < 25; ++q) {
      const size_t len = 4 + rng.Uniform(10);
      const int64_t start =
          static_cast<int64_t>(rng.Uniform(s.size() - len + 1));
      const std::string pattern =
          test::PatternFromString(s, start, len, rng.Next());
      std::vector<Match> got;
      ASSERT_TRUE(index->Query(pattern, 0.12, &got).ok());
      ASSERT_TRUE(test::SameMatches(got, BruteForceSearch(s, pattern, 0.12)))
          << pattern;
    }
  }
}

}  // namespace
}  // namespace pti
