// util/thread_pool.h: task completion, ParallelFor coverage/inline fallback,
// and the wait/drain guarantees the engine layer depends on.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace pti {
namespace {

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_GE(ResolveThreadCount(0), 1);
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(7), 7);
  EXPECT_EQ(ResolveThreadCount(100000), 256);
  EXPECT_GE(ResolveThreadCount(-3), 1);
}

TEST(ThreadPoolTest, SplitThreadBudgetNeverOversubscribes) {
  // outer * inner <= resolved budget, outer covers min(tasks, budget), and
  // every task gets at least one inner thread.
  for (const int32_t budget : {1, 2, 3, 4, 7, 8, 16, 64}) {
    for (const size_t tasks : {size_t{1}, size_t{2}, size_t{3}, size_t{5},
                               size_t{8}, size_t{100}}) {
      const ThreadBudget b = SplitThreadBudget(budget, tasks);
      EXPECT_GE(b.outer, 1) << budget << "/" << tasks;
      EXPECT_GE(b.inner, 1) << budget << "/" << tasks;
      EXPECT_LE(b.outer * b.inner, ResolveThreadCount(budget))
          << budget << "/" << tasks;
      EXPECT_EQ(b.outer, static_cast<int32_t>(std::min(
                             tasks, static_cast<size_t>(budget))))
          << budget << "/" << tasks;
    }
  }
  // Zero tasks degrades to one serial slot with the whole budget inside.
  const ThreadBudget none = SplitThreadBudget(8, 0);
  EXPECT_EQ(none.outer, 1);
  EXPECT_EQ(none.inner, 8);
  // Fewer tasks than budget: the leftover threads flow inward.
  const ThreadBudget two = SplitThreadBudget(8, 2);
  EXPECT_EQ(two.outer, 2);
  EXPECT_EQ(two.inner, 4);
  // More tasks than budget: one thread each, no nested pools.
  const ThreadBudget many = SplitThreadBudget(4, 100);
  EXPECT_EQ(many.outer, 4);
  EXPECT_EQ(many.inner, 1);
}

TEST(ThreadPoolTest, ConcurrentParallelForsFromDistinctThreads) {
  // Two non-worker threads driving the same pool concurrently: both loops
  // must cover every index exactly once (Wait over-waits but never hangs).
  ThreadPool pool(4);
  std::vector<std::atomic<int>> a(513), b(513);
  std::thread other([&] {
    pool.ParallelFor(b.size(), [&b](size_t i) { b[i].fetch_add(1); });
  });
  pool.ParallelFor(a.size(), [&a](size_t i) { a[i].fetch_add(1); });
  other.join();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].load(), 1) << i;
    EXPECT_EQ(b[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  // The pool is reusable after Wait.
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 101);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForInlineFallbacks) {
  // One thread and one task both degrade to a plain loop.
  ThreadPool serial(1);
  int count = 0;
  serial.ParallelFor(5, [&count](size_t) { ++count; });
  EXPECT_EQ(count, 5);

  ThreadPool pool(4);
  std::atomic<int> one{0};
  pool.ParallelFor(1, [&one](size_t) { one.fetch_add(1); });
  EXPECT_EQ(one.load(), 1);
  pool.ParallelFor(0, [&one](size_t) { one.fetch_add(1); });
  EXPECT_EQ(one.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsSubmittedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait: the destructor must still run everything already submitted.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SubmitAfterStopIsRejectedDeterministically) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  pool.Stop();
  // Rejected tasks never run and never count toward Wait.
  EXPECT_FALSE(pool.Submit([&counter] { counter.fetch_add(1000); }));
  pool.Wait();
  EXPECT_EQ(counter.load(), 20);
  EXPECT_FALSE(pool.Submit([&counter] { counter.fetch_add(1000); }));
  pool.Stop();  // idempotent
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, SubmitRacingStopNeverLosesAnAcceptedTask) {
  // The regression this pins: a Submit that lands after stop_ flips used to
  // enqueue into a pool whose workers may already have drained and exited,
  // silently dropping the task and leaking outstanding_ (a later Wait would
  // hang). Now every Submit either runs to completion or reports rejection.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> executed{0};
    int accepted = 0;
    ThreadPool pool(2);
    std::thread submitter([&] {
      for (int i = 0; i < 200; ++i) {
        if (pool.Submit([&executed] { executed.fetch_add(1); })) ++accepted;
      }
    });
    pool.Stop();
    submitter.join();
    pool.Wait();
    EXPECT_EQ(executed.load(), accepted);
  }
}

TEST(ThreadPoolTest, ParallelForCompletesOnStoppedPool) {
  ThreadPool pool(2);
  pool.Stop();
  std::atomic<int> count{0};
  pool.ParallelFor(5, [&count](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  // With 2 workers, two tasks that rendezvous with each other can only
  // finish if they really run in parallel.
  ThreadPool pool(2);
  std::atomic<int> arrived{0};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&arrived] {
      arrived.fetch_add(1);
      while (arrived.load() < 2) std::this_thread::yield();
    });
  }
  pool.Wait();
  EXPECT_EQ(arrived.load(), 2);
}

}  // namespace
}  // namespace pti
