// util/thread_pool.h: task completion, ParallelFor coverage/inline fallback,
// and the wait/drain guarantees the engine layer depends on.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace pti {
namespace {

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_GE(ResolveThreadCount(0), 1);
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(7), 7);
  EXPECT_EQ(ResolveThreadCount(100000), 256);
  EXPECT_GE(ResolveThreadCount(-3), 1);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  // The pool is reusable after Wait.
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 101);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForInlineFallbacks) {
  // One thread and one task both degrade to a plain loop.
  ThreadPool serial(1);
  int count = 0;
  serial.ParallelFor(5, [&count](size_t) { ++count; });
  EXPECT_EQ(count, 5);

  ThreadPool pool(4);
  std::atomic<int> one{0};
  pool.ParallelFor(1, [&one](size_t) { one.fetch_add(1); });
  EXPECT_EQ(one.load(), 1);
  pool.ParallelFor(0, [&one](size_t) { one.fetch_add(1); });
  EXPECT_EQ(one.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsSubmittedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait: the destructor must still run everything already submitted.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SubmitAfterStopIsRejectedDeterministically) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  pool.Stop();
  // Rejected tasks never run and never count toward Wait.
  EXPECT_FALSE(pool.Submit([&counter] { counter.fetch_add(1000); }));
  pool.Wait();
  EXPECT_EQ(counter.load(), 20);
  EXPECT_FALSE(pool.Submit([&counter] { counter.fetch_add(1000); }));
  pool.Stop();  // idempotent
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, SubmitRacingStopNeverLosesAnAcceptedTask) {
  // The regression this pins: a Submit that lands after stop_ flips used to
  // enqueue into a pool whose workers may already have drained and exited,
  // silently dropping the task and leaking outstanding_ (a later Wait would
  // hang). Now every Submit either runs to completion or reports rejection.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> executed{0};
    int accepted = 0;
    ThreadPool pool(2);
    std::thread submitter([&] {
      for (int i = 0; i < 200; ++i) {
        if (pool.Submit([&executed] { executed.fetch_add(1); })) ++accepted;
      }
    });
    pool.Stop();
    submitter.join();
    pool.Wait();
    EXPECT_EQ(executed.load(), accepted);
  }
}

TEST(ThreadPoolTest, ParallelForCompletesOnStoppedPool) {
  ThreadPool pool(2);
  pool.Stop();
  std::atomic<int> count{0};
  pool.ParallelFor(5, [&count](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  // With 2 workers, two tasks that rendezvous with each other can only
  // finish if they really run in parallel.
  ThreadPool pool(2);
  std::atomic<int> arrived{0};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&arrived] {
      arrived.fetch_add(1);
      while (arrived.load() < 2) std::this_thread::yield();
    });
  }
  pool.Wait();
  EXPECT_EQ(arrived.load(), 2);
}

}  // namespace
}  // namespace pti
